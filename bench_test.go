// Benchmarks regenerating every figure and table of the evaluation (scaled
// for `go test -bench`; cmd/sumbench runs the full-size versions — see
// DESIGN.md §5 and EXPERIMENTS.md).
package parsum_test

import (
	"fmt"
	"testing"

	"parsum"
	"parsum/internal/accum"
	"parsum/internal/baseline"
	"parsum/internal/bench"
	"parsum/internal/core"
	"parsum/internal/extmem"
	"parsum/internal/gen"
	"parsum/internal/mapreduce"
	"parsum/internal/pram"
)

func dataset(d gen.Dist, n int64, delta int) []float64 {
	return gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: 1}).Slice()
}

// BenchmarkFigure1 is the paper's Figure 1 at bench scale: the three
// algorithms across the four distributions at fixed n and δ.
func BenchmarkFigure1(b *testing.B) {
	const n, delta = 1 << 18, 2000
	for _, d := range gen.AllDists {
		xs := dataset(d, n, delta)
		scratch := make([]float64, n)
		b.Run(fmt.Sprintf("%s/iFastSum", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, xs)
				baseline.IFastSumInPlace(scratch)
			}
		})
		for _, kind := range []mapreduce.AccKind{mapreduce.SmallAcc, mapreduce.SparseAcc} {
			b.Run(fmt.Sprintf("%s/%s", d, kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mapreduce.Run(xs, mapreduce.Config{
						Workers: 32, SplitSize: 1 << 14, Acc: kind,
					})
				}
			})
		}
	}
}

// BenchmarkFigure2 sweeps δ on the Sum=Zero dataset (where the paper sees
// the strongest δ dependence).
func BenchmarkFigure2(b *testing.B) {
	const n = 1 << 18
	for _, delta := range []int{10, 100, 1000, 2000} {
		xs := dataset(gen.SumZero, n, delta)
		scratch := make([]float64, n)
		b.Run(fmt.Sprintf("delta=%d/iFastSum", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, xs)
				baseline.IFastSumInPlace(scratch)
			}
		})
		b.Run(fmt.Sprintf("delta=%d/sparse", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mapreduce.Run(xs, mapreduce.Config{Workers: 32, SplitSize: 1 << 14})
			}
		})
	}
}

// BenchmarkFigure3 sweeps the modeled cluster size; b.ReportMetric exposes
// the modeled cluster time, which is what shrinks with cores (wall time on
// this machine does not — one physical core).
func BenchmarkFigure3(b *testing.B) {
	xs := dataset(gen.Random, 1<<18, 2000)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("cores=%d", w), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				r := mapreduce.Run(xs, mapreduce.Config{Workers: w, SplitSize: 1 << 13})
				modeled = r.Stats.ClusterTime().Seconds()
			}
			b.ReportMetric(modeled*1e9, "modeled-ns/job")
		})
	}
}

// BenchmarkPRAMTree regenerates T-PRAM: simulator steps are deterministic,
// so the interesting output is ns/op of the simulation itself plus the
// formula check in the pram tests; here we benchmark simulator throughput.
func BenchmarkPRAMTree(b *testing.B) {
	for _, n := range []int{256, 1024} {
		xs := dataset(gen.Random, int64(n), 1000)
		b.Run(fmt.Sprintf("carryfree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pram.TreeSum(xs, 32, pram.EREW); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("carrypropagate/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pram.TreeSumCarryPropagate(xs, 32, pram.EREW); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptive regenerates T-COND: the condition-number-sensitive
// algorithm against difficulty.
func BenchmarkAdaptive(b *testing.B) {
	for _, d := range gen.AllDists {
		xs := dataset(d, 1<<17, 2000)
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SumAdaptive(xs, core.Options{})
			}
		})
	}
}

// BenchmarkExtMem regenerates T-EM at bench scale.
func BenchmarkExtMem(b *testing.B) {
	xs := dataset(gen.Random, 1<<16, 800)
	b.Run("ScanSum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := extmem.NewModel(256, 4096)
			if _, err := extmem.ScanSum(m, extmem.FromSlice(m, xs), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SortSum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := extmem.NewModel(256, 4096)
			if _, err := extmem.SortSum(m, extmem.FromSlice(m, xs), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCarryFree regenerates T-ABL1's substance as a micro-benchmark:
// Lemma 1 merge vs carry-propagating merge of full-range accumulators.
func BenchmarkCarryFree(b *testing.B) {
	xs := dataset(gen.Random, 1<<14, 2000)
	mkDense := func() *accum.Dense {
		d := accum.NewDense(0)
		d.AddSlice(xs)
		d.Regularize()
		return d
	}
	b.Run("Lemma1Merge", func(b *testing.B) {
		dst, src := mkDense(), mkDense()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.AddRegularized(src)
		}
	})
	b.Run("CarryPropagateMerge", func(b *testing.B) {
		dst := accum.NewSmall()
		src := accum.NewSmall()
		dst.AddSlice(xs)
		src.AddSlice(xs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.Merge(src)
		}
	})
	b.Run("MergeSparse", func(b *testing.B) {
		w := accum.NewWindow(0)
		w.AddSlice(xs)
		s := w.ToSparse()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			accum.MergeSparse(s, s)
		}
	})
}

// BenchmarkRadixSweep regenerates T-ABL2: accumulate throughput by width.
func BenchmarkRadixSweep(b *testing.B) {
	xs := dataset(gen.Random, 1<<16, 1500)
	for _, w := range []uint{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			a := accum.NewWindow(w)
			b.SetBytes(8 << 16)
			for i := 0; i < b.N; i++ {
				a.Reset()
				a.AddSlice(xs)
			}
		})
	}
}

// BenchmarkCombinerAblation regenerates T-ABL3.
func BenchmarkCombinerAblation(b *testing.B) {
	xs := dataset(gen.Random, 1<<18, 800)
	for _, noCombine := range []bool{false, true} {
		name := "combine"
		if noCombine {
			name = "nocombine"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mapreduce.Run(xs, mapreduce.Config{
					Workers: 8, SplitSize: 1 << 14, NoCombine: noCombine,
				})
			}
		})
	}
}

// BenchmarkSequential regenerates T-SEQ: every sequential method on the
// Random dataset.
func BenchmarkSequential(b *testing.B) {
	xs := dataset(gen.Random, 1<<18, 2000)
	scratch := make([]float64, len(xs))
	methods := []struct {
		name string
		f    func([]float64) float64
	}{
		{"naive", baseline.Naive},
		{"kahan", baseline.Kahan},
		{"neumaier", baseline.Neumaier},
		{"pairwise", baseline.Pairwise},
		{"iFastSum", func(v []float64) float64 { copy(scratch, v); return baseline.IFastSumInPlace(scratch) }},
		{"dense-acc", core.Sum},
		{"sparse-acc", core.SumSparse},
		{"small-acc", func(v []float64) float64 { s := accum.NewSmall(); s.AddSlice(v); return s.Round() }},
		{"large-acc", func(v []float64) float64 { l := accum.NewLarge(); l.AddSlice(v); return l.Round() }},
	}
	for _, m := range methods {
		b.Run(m.name, func(b *testing.B) {
			b.SetBytes(int64(8 * len(xs)))
			for i := 0; i < b.N; i++ {
				m.f(xs)
			}
		})
	}
}

// BenchmarkAddSlice measures the block-structured bulk accumulation path
// per representation against the scalar per-element loop it replaced, on
// a wide exponent distribution (general three-digit scatter) and a narrow
// one (where Dense and Small take the exponent-window lane fast path).
// The block/scalar pairs make each path's contribution individually
// visible; see DESIGN.md §3d.
func BenchmarkAddSlice(b *testing.B) {
	const n = 1 << 16
	type acc interface {
		Add(float64)
		AddSlice([]float64)
		Reset()
	}
	dists := []struct {
		name string
		xs   []float64
	}{
		{"wide", dataset(gen.Random, n, 2000)},
		{"narrow", dataset(gen.Random, n, 8)},
	}
	reps := []struct {
		name string
		mk   func() acc
	}{
		{"dense", func() acc { return accum.NewDense(0) }},
		{"small", func() acc { return accum.NewSmall() }},
		{"window", func() acc { return accum.NewWindow(0) }},
	}
	for _, rep := range reps {
		for _, d := range dists {
			a := rep.mk()
			b.Run(fmt.Sprintf("%s/%s/block", rep.name, d.name), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					a.Reset()
					a.AddSlice(d.xs)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/scalar", rep.name, d.name), func(b *testing.B) {
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					a.Reset()
					for _, x := range d.xs {
						a.Add(x)
					}
				}
			})
		}
	}

	// float32 narrow-lane mode: the single-word lane pass (lane) against
	// widening to float64 and running the two-word pass (widen). δ stays
	// inside the binary32 exponent range so no value overflows to +Inf.
	xs32 := make([]float32, n)
	for i, x := range dataset(gen.Random, n, 60) {
		xs32[i] = float32(x)
	}
	d32 := accum.NewDense(0)
	buf := make([]float64, n)
	b.Run("dense/f32/lane", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			d32.Reset()
			d32.AddSlice32(xs32)
		}
	})
	b.Run("dense/f32/widen", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			d32.Reset()
			for j, x := range xs32 {
				buf[j] = float64(x)
			}
			d32.AddSlice(buf)
		}
	})
}

// BenchmarkPublicAPI covers the exported surface.
func BenchmarkPublicAPI(b *testing.B) {
	xs := dataset(gen.Anderson, 1<<18, 1000)
	b.Run("Sum", func(b *testing.B) {
		b.SetBytes(int64(8 * len(xs)))
		for i := 0; i < b.N; i++ {
			parsum.Sum(xs)
		}
	})
	b.Run("SumParallel", func(b *testing.B) {
		b.SetBytes(int64(8 * len(xs)))
		for i := 0; i < b.N; i++ {
			parsum.SumParallel(xs, parsum.Options{Workers: 4})
		}
	})
	b.Run("Accumulator/Add", func(b *testing.B) {
		a := parsum.NewAccumulator()
		for i := 0; i < b.N; i++ {
			a.Add(xs[i&(len(xs)-1)])
		}
	})
}

// TestBenchHarnessSmoke keeps the figure harness itself under test: a tiny
// end-to-end run of every table generator.
func TestBenchHarnessSmoke(t *testing.T) {
	cfg := bench.Defaults()
	cfg.SplitSize = 1 << 12
	for _, tb := range bench.Figure1([]int64{10_000}, 500, cfg) {
		checkTable(t, tb)
	}
	for _, tb := range bench.Figure2(10_000, []int{10, 500}, cfg) {
		checkTable(t, tb)
	}
	for _, tb := range bench.Figure3(10_000, 500, []int{1, 4}, cfg) {
		checkTable(t, tb)
	}
	checkTable(t, bench.PRAMTable([]int{16, 64}, 32))
	checkTable(t, bench.CondTable(500, []int{0, 200}))
	checkTable(t, bench.EMTable([]int64{2000}, 64, 512))
	checkTable(t, bench.CarryTable([]uint{16, 32}, 32))
	checkTable(t, bench.RadixTable([]uint{16, 32}, 10_000))
	checkTable(t, bench.SigmaTable(10_000, []int{10, 500}))
	checkTable(t, bench.CombinerTable(10_000, cfg))
	for _, tb := range bench.SeqTable(10_000, 500) {
		checkTable(t, tb)
	}
}

func checkTable(t *testing.T, tb bench.Table) {
	t.Helper()
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: empty table", tb.Title)
	}
	for _, note := range tb.Notes {
		if len(note) >= 8 && note[:8] == "MISMATCH" {
			t.Fatalf("%s: %s", tb.Title, note)
		}
	}
	if s := tb.Format(); len(s) == 0 {
		t.Fatalf("%s: empty formatting", tb.Title)
	}
	for _, r := range tb.Rows {
		for _, series := range tb.Series {
			if v, ok := r.Values[series]; !ok || v == "" {
				t.Fatalf("%s: row %s missing series %s", tb.Title, r.X, series)
			}
		}
	}
}
