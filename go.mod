module parsum

go 1.23
