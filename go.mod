module parsum

go 1.24
