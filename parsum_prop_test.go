// Metamorphic/property suite at the public API level: the algebraic laws
// that make the library's results *reproducible* rather than merely
// accurate, checked at the rounded-bits level on adversarial generated
// inputs. The engine-layer twin (internal/engine/laws_test.go) sweeps
// every registered engine; this file pins the laws on the exported
// surface: Sum/SumEngine, Accumulator.Sub/SubSlice/SubAccumulator, and
// the sharded ingestion layer's Sub/SubBatch.
package parsum_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"parsum"
	"parsum/internal/gen"
)

func bitEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// propDatasets: the paper's adversarial distributions at two exponent
// spreads, small enough to sweep every engine.
func propDatasets() [][]float64 {
	var out [][]float64
	for _, d := range gen.AllDists {
		for _, delta := range []int{50, 600} {
			out = append(out, gen.New(gen.Config{Dist: d, N: 1500, Delta: delta, Seed: uint64(delta)}).Slice())
		}
	}
	return out
}

// TestPropExactEngineLaws: for every engine declaring Exact or
// CorrectlyRounded, the public SumEngine is permutation-invariant,
// sign-flip antisymmetric, and power-of-two scaling invariant at the bits
// level.
func TestPropExactEngineLaws(t *testing.T) {
	for _, info := range parsum.Engines() {
		if !info.Exact && !info.CorrectlyRounded {
			continue
		}
		name := info.Name
		t.Run(name, func(t *testing.T) {
			for di, xs := range propDatasets() {
				want := parsum.SumEngine(name, xs)

				perm := append([]float64(nil), xs...)
				rand.New(rand.NewSource(int64(di))).Shuffle(len(perm), func(i, j int) {
					perm[i], perm[j] = perm[j], perm[i]
				})
				if got := parsum.SumEngine(name, perm); !bitEq(got, want) {
					t.Fatalf("dataset %d: permutation changed bits: %x != %x",
						di, math.Float64bits(got), math.Float64bits(want))
				}

				neg := make([]float64, len(xs))
				for i, x := range xs {
					neg[i] = -x
				}
				wantNeg := -want
				if want == 0 {
					wantNeg = 0 // exact zero sums normalize to +0
				}
				if got := parsum.SumEngine(name, neg); !bitEq(got, wantNeg) {
					t.Fatalf("dataset %d: sign flip: %x != %x",
						di, math.Float64bits(got), math.Float64bits(wantNeg))
				}

				for _, k := range []int{-8, 8} {
					sc := make([]float64, len(xs))
					for i, x := range xs {
						sc[i] = math.Ldexp(x, k)
					}
					if got := parsum.SumEngine(name, sc); !bitEq(got, math.Ldexp(want, k)) {
						t.Fatalf("dataset %d: scaling 2^%d: %x != %x", di, k,
							math.Float64bits(got), math.Float64bits(math.Ldexp(want, k)))
					}
				}
			}
		})
	}
}

// TestPropAccumulatorGroupLaw: a+b−b == a bitwise through the public
// Accumulator for every Invertible engine, via both Sub/SubSlice and
// SubAccumulator, with non-finite values in the deleted half.
func TestPropAccumulatorGroupLaw(t *testing.T) {
	a := gen.New(gen.Config{Dist: gen.Random, N: 900, Delta: 1400, Seed: 21}).Slice()
	b := gen.New(gen.Config{Dist: gen.Anderson, N: 700, Delta: 900, Seed: 22}).Slice()
	b = append(b, math.Inf(1), math.NaN(), math.Inf(-1), math.MaxFloat64, -math.MaxFloat64, 0x1p-1074)

	sawInvertible := 0
	for _, info := range parsum.Engines() {
		if !info.Invertible {
			continue
		}
		sawInvertible++
		t.Run(info.Name, func(t *testing.T) {
			acc, err := parsum.NewAccumulatorEngine(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !acc.Invertible() {
				t.Fatalf("engine %q declares Invertible but accumulator disagrees", info.Name)
			}
			want := parsum.SumEngine(info.Name, a)

			acc.AddSlice(a)
			acc.AddSlice(b)
			acc.SubSlice(b)
			if got := acc.Round(); !bitEq(got, want) {
				t.Fatalf("SubSlice: %x != %x", math.Float64bits(got), math.Float64bits(want))
			}

			for _, x := range b {
				acc.Add(x)
			}
			for _, x := range b {
				acc.Sub(x)
			}
			if got := acc.Round(); !bitEq(got, want) {
				t.Fatalf("Sub loop: %x != %x", math.Float64bits(got), math.Float64bits(want))
			}

			other, err := parsum.NewAccumulatorEngine(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			other.AddSlice(b)
			acc.Merge(other)
			acc.SubAccumulator(other)
			if got := acc.Round(); !bitEq(got, want) {
				t.Fatalf("SubAccumulator: %x != %x", math.Float64bits(got), math.Float64bits(want))
			}
			// The subtracted accumulator is not consumed.
			if got, want := other.Round(), parsum.SumEngine(info.Name, b); !bitEq(got, want) {
				t.Fatalf("SubAccumulator mutated its argument: %x != %x",
					math.Float64bits(got), math.Float64bits(want))
			}
		})
	}
	if sawInvertible < 4 {
		t.Fatalf("only %d invertible engines visible through Engines(), want >= 4", sawInvertible)
	}
}

// TestPropSubPanicsForNonInvertible pins the failure mode: Sub on an
// engine without exact deletion is a programming error.
func TestPropSubPanicsForNonInvertible(t *testing.T) {
	// No current engine is Streaming but not Invertible, so exercise the
	// panic through an engine-mismatch-free path: every non-streaming
	// engine fails at construction, which NewAccumulatorEngine already
	// reports as an error; the panic path needs an accumulator, so this
	// test only pins that Invertible() and Engines() agree.
	for _, info := range parsum.Engines() {
		if !info.Streaming {
			continue
		}
		acc, err := parsum.NewAccumulatorEngine(info.Name)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if acc.Invertible() != info.Invertible {
			t.Fatalf("%s: Invertible() = %v, Engines() says %v", info.Name, acc.Invertible(), info.Invertible)
		}
	}
}

// TestPropShardedGroupLaw: the sharded ingestion layer honors the group
// law under concurrent adds and deletes — after racing writers add a∪b
// and delete b, the snapshot is bit-identical to the sequential sum of a,
// for any shard count and interleaving.
func TestPropShardedGroupLaw(t *testing.T) {
	a := gen.New(gen.Config{Dist: gen.Random, N: 4000, Delta: 1500, Seed: 31}).Slice()
	b := gen.New(gen.Config{Dist: gen.SumZero, N: 3000, Delta: 1200, Seed: 32}).Slice()
	b = append(b, math.Inf(1), math.Inf(1), math.NaN())
	want := parsum.Sum(a)

	for _, shards := range []int{1, 3, 8} {
		s, err := parsum.NewSharded(parsum.ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Invertible() {
			t.Fatal("dense-backed Sharded must be invertible")
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				w := s.Writer()
				for i := g; i < len(a); i += 4 {
					w.Add(a[i])
				}
				for i := g; i < len(b); i += 4 {
					s.Add(b[i])
				}
				// Delete this goroutine's slice of b again, split between
				// the batch and single-value paths.
				var mine []float64
				for i := g; i < len(b); i += 4 {
					mine = append(mine, b[i])
				}
				half := len(mine) / 2
				s.SubBatch(mine[:half])
				wr := s.Writer()
				for _, x := range mine[half:] {
					wr.Sub(x)
				}
			}(g)
		}
		// Concurrent snapshots while the race runs (values are arbitrary
		// mid-race; the calls must be safe).
		stop := make(chan struct{})
		var snapWg sync.WaitGroup
		snapWg.Add(1)
		go func() {
			defer snapWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Snapshot()
				}
			}
		}()
		wg.Wait()
		close(stop)
		snapWg.Wait()
		if got := s.Sum(); !bitEq(got, want) {
			t.Fatalf("shards=%d: %x != %x", shards, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
