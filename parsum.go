// Package parsum computes exact, correctly rounded sums of floating-point
// numbers, sequentially and in parallel. It is a Go implementation of
// Goodrich & Eldawy, "Parallel Algorithms for Summing Floating-Point
// Numbers" (SPAA 2016): inputs are converted to a carry-free
// (α,β)-regularized superaccumulator representation, summed exactly in that
// representation (in any order, by any number of goroutines, with
// bit-identical results), and rounded once at the end.
//
// Quick start:
//
//	sum := parsum.Sum(xs)                       // exact, correctly rounded
//	sum  = parsum.SumParallel(xs, parsum.Options{Workers: 8})
//
// For streaming accumulation:
//
//	acc := parsum.NewAccumulator()
//	for _, x := range xs { acc.Add(x) }
//	sum := acc.Round()
//
// Accumulators merge exactly, so partial sums computed on different
// goroutines (or machines) combine without any error:
//
//	a.Merge(b)
//
// Every summation strategy is a pluggable engine registered in a
// process-wide registry; Engines() lists them with their capability flags,
// and Options.Engine, SumEngine, or NewAccumulatorEngine select one:
//
//	sum = parsum.SumParallel(xs, parsum.Options{Engine: "sparse"})
//	acc, err := parsum.NewAccumulatorEngine("large")
//
// Beyond the core API, the internal packages implement the paper's PRAM
// simulator, external-memory algorithms, single-round MapReduce engine,
// sequential baselines (including Zhu & Hayes' iFastSum), and the
// evaluation harness; see README.md and DESIGN.md.
package parsum

import (
	"fmt"

	"parsum/internal/baseline"
	"parsum/internal/condition"
	"parsum/internal/core"
	"parsum/internal/engine"
	"parsum/internal/mapreduce"
	"parsum/internal/shard"
)

// Options configures the parallel and adaptive summation algorithms; the
// zero value is ready to use. Options.Engine selects any engine listed by
// Engines(). See core.Options for field documentation.
type Options = core.Options

// AdaptiveStats reports what the condition-number-sensitive algorithm did.
type AdaptiveStats = core.AdaptiveStats

// Sum returns the correctly rounded (round-to-nearest-even, hence also
// faithfully rounded) value of the exact sum of xs. NaN and infinities
// follow IEEE semantics: any NaN, or both +Inf and −Inf, yield NaN; a
// single-signed infinity dominates. The exact sum of an empty or fully
// cancelling input is +0.
func Sum(xs []float64) float64 { return core.Sum(xs) }

// SumParallel is Sum computed by opt.Workers goroutines. The result is
// bit-identical to Sum for every worker count, chunk size, and merge
// order.
func SumParallel(xs []float64, opt Options) float64 { return core.SumParallel(xs, opt) }

// SumAdaptive is the paper's condition-number-sensitive algorithm
// (Theorem 4): it sums with γ-truncated sparse superaccumulators, squaring
// the truncation bound each round until a certified stopping condition
// holds, so well-conditioned inputs cost a single linear-work round. The
// result is a faithful rounding of the exact sum.
func SumAdaptive(xs []float64, opt Options) (float64, AdaptiveStats) {
	return core.SumAdaptive(xs, opt)
}

// IFastSum returns the correctly rounded sum of xs using the sequential
// distillation algorithm of Zhu & Hayes (2009) — the paper's sequential
// comparator, exposed for benchmarking and as a fallback-free EFT-based
// alternative on well-conditioned data.
func IFastSum(xs []float64) float64 { return baseline.IFastSum(xs) }

// ConditionNumber returns C(X) = Σ|xᵢ| / |Σxᵢ|, computed exactly: 1 for
// empty or all-zero input, +Inf for a nonzero input with exact zero sum,
// NaN if the input contains NaN or infinities.
func ConditionNumber(xs []float64) float64 { return condition.Number(xs) }

// EngineInfo describes one registered summation engine: its registry
// name, a one-line description, and its capability flags (see
// internal/engine.Caps for the exact contracts).
type EngineInfo struct {
	Name string
	Doc  string
	// Exact: the accumulation is error-free up to a single final rounding.
	Exact bool
	// CorrectlyRounded: results are the round-to-nearest-even value of the
	// exact sum.
	CorrectlyRounded bool
	// Faithful: results are a faithful rounding of the exact sum.
	Faithful bool
	// DeterministicParallel: SumParallel is bit-identical for every worker
	// count and chunk size.
	DeterministicParallel bool
	// Streaming: NewAccumulatorEngine works for this engine.
	Streaming bool
	// Invertible: the exact sum is a group, so deletion is as exact as
	// insertion — Accumulator.Sub/SubAccumulator and Sharded.Sub/SubBatch
	// work for this engine.
	Invertible bool
}

// Engines lists every registered summation engine, sorted by name. Any
// Name is valid for Options.Engine and (when Streaming) for
// NewAccumulatorEngine.
func Engines() []EngineInfo {
	all := engine.All()
	out := make([]EngineInfo, 0, len(all))
	for _, e := range all {
		c := e.Caps()
		out = append(out, EngineInfo{
			Name:                  e.Name(),
			Doc:                   e.Doc(),
			Exact:                 c.Exact,
			CorrectlyRounded:      c.CorrectlyRounded,
			Faithful:              c.Faithful,
			DeterministicParallel: c.DeterministicParallel,
			Streaming:             c.Streaming,
			Invertible:            c.Invertible,
		})
	}
	return out
}

// SumEngine returns the named engine's sum of xs in one shot; see
// Engines() for the names and their accuracy contracts. It panics on an
// unknown name.
func SumEngine(name string, xs []float64) float64 { return core.SumEngine(name, xs) }

// Accumulator is a streaming summator backed by a registered engine —
// by default the paper's dense (α,β)-regularized superaccumulator
// spanning the full float64 range, which accumulates and merges exactly.
// The zero value is not usable; construct with NewAccumulator,
// NewAccumulatorEngine, or UnmarshalBinary.
type Accumulator struct {
	name string
	a    engine.Accumulator
}

// NewAccumulator returns an empty exact accumulator backed by the dense
// superaccumulator engine.
func NewAccumulator() *Accumulator {
	return &Accumulator{name: core.EngineDense, a: engine.MustGet(core.EngineDense).NewAccumulator()}
}

// NewAccumulatorEngine returns an empty accumulator backed by the named
// engine. It errors when the engine is unknown or not streaming (see
// Engines()).
func NewAccumulatorEngine(name string) (*Accumulator, error) {
	e, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("parsum: unknown engine %q (registered: %v)", name, engine.Names())
	}
	acc := e.NewAccumulator()
	if acc == nil {
		return nil, fmt.Errorf("parsum: engine %q does not support streaming accumulation", name)
	}
	return &Accumulator{name: name, a: acc}, nil
}

// Engine returns the registry name of the engine backing a.
func (a *Accumulator) Engine() string { return a.name }

// MarshalBinary encodes the accumulator's exact partial sum as a
// versioned, endian-stable wire partial tagged with its engine name, so it
// can be shipped to another process and merged there without any rounding
// error — the payload the paper's map-side combiners emit. It implements
// encoding.BinaryMarshaler. Engines whose accumulators cannot serialize
// (none of the built-in streaming engines) return an error.
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	return engine.MarshalPartial(a.name, a.a)
}

// UnmarshalBinary decodes a wire partial into a, replacing its contents
// (including the backing engine, which the payload names). It implements
// encoding.BinaryUnmarshaler, validates everything it reads, and never
// panics on malformed input. Note that the decoded engine is chosen by
// the payload: when the bytes come from an untrusted peer, check Engine()
// before Merge (which panics on mixed engines), or use Sharded.MergeBytes,
// which rejects engine mismatches with an error. It works on a zero
// Accumulator.
func (a *Accumulator) UnmarshalBinary(data []byte) error {
	name, acc, err := engine.UnmarshalPartial(data)
	if err != nil {
		return err
	}
	a.name, a.a = name, acc
	return nil
}

// Add accumulates x exactly.
func (a *Accumulator) Add(x float64) { a.a.Add(x) }

// AddSlice accumulates every element of xs exactly.
func (a *Accumulator) AddSlice(xs []float64) { a.a.AddSlice(xs) }

// AddSlice32 accumulates every element of a float32 slice exactly (each
// binary32 value is exactly representable in every exact engine). Engines
// with a native narrow-lane path — the dense, sparse, and small
// superaccumulators among them — consume the binary32 values directly
// without materializing a float64 copy; other engines widen element-wise.
// Either way the result is bit-identical to widening each element and
// calling Add.
func (a *Accumulator) AddSlice32(xs []float32) {
	if n, ok := a.a.(engine.Adder32); ok {
		n.AddSlice32(xs)
		return
	}
	widen32(xs, a.a.AddSlice)
}

// SubSlice32 deletes every element of a float32 slice exactly — the group
// inverse of AddSlice32. Panics when the engine is not Invertible.
func (a *Accumulator) SubSlice32(xs []float32) {
	inv := a.inverter()
	if n, ok := a.a.(engine.Adder32); ok {
		n.SubSlice32(xs)
		return
	}
	widen32(xs, inv.SubSlice)
}

// widen32 feeds xs through bulk as float64s in stack-buffer batches, for
// engines without a native float32 path.
func widen32(xs []float32, bulk func([]float64)) {
	var buf [256]float64
	for len(xs) > 0 {
		n := min(len(xs), len(buf))
		for i, x := range xs[:n] {
			buf[i] = float64(x)
		}
		bulk(buf[:n])
		xs = xs[n:]
	}
}

// Invertible reports whether the backing engine supports exact deletion
// (Sub, SubSlice, SubAccumulator). The superaccumulator engines all do:
// their signed-digit representation is closed under negation, so the exact
// sum is a group, not just a monoid.
func (a *Accumulator) Invertible() bool {
	_, ok := a.a.(engine.Inverter)
	return ok
}

// inverter returns the deletion surface, panicking for engines that have
// none (a programming error, like Merge's engine mismatch).
func (a *Accumulator) inverter() engine.Inverter {
	inv, ok := a.a.(engine.Inverter)
	if !ok {
		panic(fmt.Sprintf("parsum: engine %q does not support exact deletion (see Engines() for Invertible engines)", a.name))
	}
	return inv
}

// Sub deletes x from the accumulated sum exactly — the inverse of Add.
// Because the representation is exact and rounding happens only at Round,
// a.Add(x); a.Sub(x) restores a's rounded bits exactly, for any x and any
// interleaving with other operations. Deleting a non-finite value removes
// it from the tracked multiset (Sub(+Inf) undoes Add(+Inf); it is not
// Add(-Inf)). Panics when the engine is not Invertible.
func (a *Accumulator) Sub(x float64) { a.inverter().Sub(x) }

// SubSlice deletes every element of xs exactly. Panics when the engine is
// not Invertible.
func (a *Accumulator) SubSlice(xs []float64) { a.inverter().SubSlice(xs) }

// SubAccumulator deletes the exact contents of o from a — the inverse of
// Merge; o's value is unchanged. After a.Merge(o); a.SubAccumulator(o),
// a's rounded bits are exactly what they were before the Merge. Both sides
// must come from the same engine; mixing engines panics, as does a
// non-Invertible engine.
func (a *Accumulator) SubAccumulator(o *Accumulator) {
	if a.name != o.name {
		panic(fmt.Sprintf("parsum: SubAccumulator of %q accumulator with %q accumulator", a.name, o.name))
	}
	a.inverter().SubAccumulator(o.a)
}

// Merge adds the exact contents of o into a; o's value is unchanged.
// Accumulators built from disjoint data merge to exactly the accumulator
// of the combined data, in any order. Both sides must come from the same
// engine; mixing engines panics (decoded accumulators name their engine —
// see UnmarshalBinary).
func (a *Accumulator) Merge(o *Accumulator) {
	if a.name != o.name {
		panic(fmt.Sprintf("parsum: Merge of %q accumulator with %q accumulator", a.name, o.name))
	}
	a.a.Merge(o.a)
}

// Round returns the correctly rounded float64 value of the exact sum
// accumulated so far. The accumulator remains usable.
func (a *Accumulator) Round() float64 { return a.a.Round() }

// Reset empties the accumulator.
func (a *Accumulator) Reset() { a.a.Reset() }

// Clone returns an independent copy.
func (a *Accumulator) Clone() *Accumulator { return &Accumulator{name: a.name, a: a.a.Clone()} }

// ShardedOptions configures NewSharded; the zero value is ready to use
// (dense engine, one shard per P). See shard.Options for field
// documentation.
type ShardedOptions = shard.Options

// Sharded is the concurrent ingestion surface: a sharded, many-writer
// accumulator whose Snapshot/Sum are bit-identical to summing the same
// values sequentially, regardless of shard count, writer interleaving, or
// snapshot timing. Writers stripe across per-shard accumulators (no
// contention in the steady state); snapshots hand each shard a fresh
// pooled accumulator and fold the taken partials through the log-depth
// Lemma 1 merge tree. All methods are safe for concurrent use.
type Sharded struct {
	s *shard.Sharded
}

// NewSharded returns an empty sharded accumulator. It errors when
// opt.Engine is unknown or lacks the Streaming and DeterministicParallel
// capabilities that make sharded ingestion deterministic (see Engines()).
func NewSharded(opt ShardedOptions) (*Sharded, error) {
	s, err := shard.New(opt)
	if err != nil {
		return nil, err
	}
	return &Sharded{s: s}, nil
}

// Engine returns the registry name of the engine backing every shard.
func (s *Sharded) Engine() string { return s.s.Engine() }

// NumShards returns the number of writer stripes.
func (s *Sharded) NumShards() int { return s.s.Shards() }

// Add accumulates x exactly.
func (s *Sharded) Add(x float64) { s.s.Add(x) }

// AddBatch accumulates every element of xs exactly, amortizing the shard
// handoff over the batch — the high-throughput ingestion call.
func (s *Sharded) AddBatch(xs []float64) { s.s.AddBatch(xs) }

// AddBatches accumulates every slice in batches exactly under one
// striped-lock acquisition — the batch.SliceSink flush entry point, so
// a coalesced flush group applies without concatenating request bodies.
func (s *Sharded) AddBatches(batches [][]float64) { s.s.AddBatches(batches) }

// Invertible reports whether the backing engine supports exact deletion
// (Sub/SubBatch).
func (s *Sharded) Invertible() bool { return s.s.Invertible() }

// Sub deletes x from the accumulated sum exactly. Deletion is as exact as
// insertion, so any interleaving of adds and subs that leaves the same
// multiset snapshots to the same bits. Panics when the engine is not
// Invertible.
func (s *Sharded) Sub(x float64) { s.s.Sub(x) }

// SubBatch deletes every element of xs exactly, amortizing the shard
// handoff over the batch. Panics when the engine is not Invertible.
func (s *Sharded) SubBatch(xs []float64) { s.s.SubBatch(xs) }

// SubBatches deletes every slice in batches exactly under one
// striped-lock acquisition — the deletion half of the batch.SliceSink
// flush entry point. Panics when the engine is not Invertible.
func (s *Sharded) SubBatches(batches [][]float64) { s.s.SubBatches(batches) }

// Sum returns the correctly rounded exact sum of everything ingested so
// far; ingestion may continue concurrently.
func (s *Sharded) Sum() float64 { return s.s.Sum() }

// Snapshot is Sum: the correctly rounded exact sum of every Add/AddBatch
// that completed before it, obtained without stalling writers (they block
// only for their own shard's accumulator swap).
func (s *Sharded) Snapshot() float64 { return s.s.Snapshot() }

// Reset empties the accumulator; it remains usable.
func (s *Sharded) Reset() { s.s.Reset() }

// Merge folds the exact contents of o into s; o is unchanged and remains
// usable. Both sides must use the same engine; mixing engines panics.
func (s *Sharded) Merge(o *Sharded) { s.s.Merge(o.s) }

// SnapshotBytes folds everything ingested so far and returns its exact
// value as a wire partial — the payload a worker ships to a remote merge
// service (see cmd/sumd). Ingestion may continue concurrently; the encoded
// value covers every Add/AddBatch that completed before it.
func (s *Sharded) SnapshotBytes() ([]byte, error) { return s.s.SnapshotBytes() }

// MergeBytes decodes a wire partial (produced by Accumulator.MarshalBinary
// or Sharded.SnapshotBytes anywhere — another process, another machine)
// and folds its exact contents in. Malformed or engine-mismatched payloads
// return an error and leave s unchanged. Pushing the same partials in any
// order yields a bit-identical Sum: the merge is exact and rounding
// happens once, at Sum.
func (s *Sharded) MergeBytes(data []byte) error { return s.s.MergeBytes(data) }

// Writer returns an ingestion handle pinned to one shard (assigned
// round-robin), for dedicated long-lived writer goroutines.
func (s *Sharded) Writer() *ShardedWriter { return &ShardedWriter{w: s.s.Writer()} }

// ShardedWriter is a shard-pinned ingestion handle obtained from
// Sharded.Writer.
type ShardedWriter struct {
	w *shard.Writer
}

// Add accumulates x exactly into the writer's shard.
func (w *ShardedWriter) Add(x float64) { w.w.Add(x) }

// AddBatch accumulates every element of xs exactly into the writer's shard.
func (w *ShardedWriter) AddBatch(xs []float64) { w.w.AddBatch(xs) }

// Sub deletes x exactly from the writer's shard. Panics when the engine is
// not Invertible.
func (w *ShardedWriter) Sub(x float64) { w.w.Sub(x) }

// SubBatch deletes every element of xs exactly from the writer's shard.
// Panics when the engine is not Invertible.
func (w *ShardedWriter) SubBatch(xs []float64) { w.w.SubBatch(xs) }

// MRConfig configures MapReduceSum; see the mapreduce package for field
// documentation. The zero value models a single-worker cluster.
type MRConfig = mapreduce.Config

// MRResult is the result of a MapReduceSum job: the exact rounded sum plus
// the modeled cluster statistics.
type MRResult = mapreduce.Result

// MapReduceSum runs the paper's single-round MapReduce summation on the
// in-process simulated cluster and returns the exact rounded sum with job
// statistics (shuffle volume, modeled makespan per phase).
func MapReduceSum(xs []float64, cfg MRConfig) MRResult { return mapreduce.Run(xs, cfg) }

// Sum32 returns the correctly rounded float32 sum of xs. The accumulation
// is exact and the single rounding targets binary32 directly, avoiding the
// double rounding of "sum in float64, then convert".
func Sum32(xs []float32) float32 { return core.Sum32(xs) }

// Round32 returns the correctly rounded float32 value of the exact sum
// accumulated so far (one rounding, directly to binary32) for engines
// whose accumulators can round to binary32 natively — the default dense
// engine among them. Other engines round to float64 first and convert,
// which can double-round near binary32 rounding boundaries.
func (a *Accumulator) Round32() float32 {
	if r, ok := a.a.(engine.Rounder32); ok {
		return r.Round32()
	}
	return float32(a.a.Round())
}
