// Package parsum computes exact, correctly rounded sums of floating-point
// numbers, sequentially and in parallel. It is a Go implementation of
// Goodrich & Eldawy, "Parallel Algorithms for Summing Floating-Point
// Numbers" (SPAA 2016): inputs are converted to a carry-free
// (α,β)-regularized superaccumulator representation, summed exactly in that
// representation (in any order, by any number of goroutines, with
// bit-identical results), and rounded once at the end.
//
// Quick start:
//
//	sum := parsum.Sum(xs)                       // exact, correctly rounded
//	sum  = parsum.SumParallel(xs, parsum.Options{Workers: 8})
//
// For streaming accumulation:
//
//	acc := parsum.NewAccumulator()
//	for _, x := range xs { acc.Add(x) }
//	sum := acc.Round()
//
// Accumulators merge exactly, so partial sums computed on different
// goroutines (or machines) combine without any error:
//
//	a.Merge(b)
//
// Beyond the core API, the internal packages implement the paper's PRAM
// simulator, external-memory algorithms, single-round MapReduce engine,
// sequential baselines (including Zhu & Hayes' iFastSum), and the
// evaluation harness; see README.md and DESIGN.md.
package parsum

import (
	"parsum/internal/accum"
	"parsum/internal/baseline"
	"parsum/internal/condition"
	"parsum/internal/core"
	"parsum/internal/mapreduce"
)

// Options configures the parallel and adaptive summation algorithms; the
// zero value is ready to use. See core.Options for field documentation.
type Options = core.Options

// AdaptiveStats reports what the condition-number-sensitive algorithm did.
type AdaptiveStats = core.AdaptiveStats

// Sum returns the correctly rounded (round-to-nearest-even, hence also
// faithfully rounded) value of the exact sum of xs. NaN and infinities
// follow IEEE semantics: any NaN, or both +Inf and −Inf, yield NaN; a
// single-signed infinity dominates. The exact sum of an empty or fully
// cancelling input is +0.
func Sum(xs []float64) float64 { return core.Sum(xs) }

// SumParallel is Sum computed by opt.Workers goroutines. The result is
// bit-identical to Sum for every worker count, chunk size, and merge
// order.
func SumParallel(xs []float64, opt Options) float64 { return core.SumParallel(xs, opt) }

// SumAdaptive is the paper's condition-number-sensitive algorithm
// (Theorem 4): it sums with γ-truncated sparse superaccumulators, squaring
// the truncation bound each round until a certified stopping condition
// holds, so well-conditioned inputs cost a single linear-work round. The
// result is a faithful rounding of the exact sum.
func SumAdaptive(xs []float64, opt Options) (float64, AdaptiveStats) {
	return core.SumAdaptive(xs, opt)
}

// IFastSum returns the correctly rounded sum of xs using the sequential
// distillation algorithm of Zhu & Hayes (2009) — the paper's sequential
// comparator, exposed for benchmarking and as a fallback-free EFT-based
// alternative on well-conditioned data.
func IFastSum(xs []float64) float64 { return baseline.IFastSum(xs) }

// ConditionNumber returns C(X) = Σ|xᵢ| / |Σxᵢ|, computed exactly: 1 for
// empty or all-zero input, +Inf for a nonzero input with exact zero sum,
// NaN if the input contains NaN or infinities.
func ConditionNumber(xs []float64) float64 { return condition.Number(xs) }

// Accumulator is a streaming exact summator: a dense (α,β)-regularized
// superaccumulator spanning the full float64 range. The zero value is not
// usable; construct with NewAccumulator.
type Accumulator struct {
	d *accum.Dense
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{d: accum.NewDense(0)}
}

// Add accumulates x exactly.
func (a *Accumulator) Add(x float64) { a.d.Add(x) }

// AddSlice accumulates every element of xs exactly.
func (a *Accumulator) AddSlice(xs []float64) { a.d.AddSlice(xs) }

// Merge adds the exact contents of o into a; o is unchanged. Accumulators
// built from disjoint data merge to exactly the accumulator of the
// combined data, in any order.
func (a *Accumulator) Merge(o *Accumulator) { a.d.Merge(o.d.Clone()) }

// Round returns the correctly rounded float64 value of the exact sum
// accumulated so far. The accumulator remains usable.
func (a *Accumulator) Round() float64 { return a.d.Round() }

// Reset empties the accumulator.
func (a *Accumulator) Reset() { a.d.Reset() }

// Clone returns an independent copy.
func (a *Accumulator) Clone() *Accumulator { return &Accumulator{d: a.d.Clone()} }

// MRConfig configures MapReduceSum; see the mapreduce package for field
// documentation. The zero value models a single-worker cluster.
type MRConfig = mapreduce.Config

// MRResult is the result of a MapReduceSum job: the exact rounded sum plus
// the modeled cluster statistics.
type MRResult = mapreduce.Result

// MapReduceSum runs the paper's single-round MapReduce summation on the
// in-process simulated cluster and returns the exact rounded sum with job
// statistics (shuffle volume, modeled makespan per phase).
func MapReduceSum(xs []float64, cfg MRConfig) MRResult { return mapreduce.Run(xs, cfg) }

// Sum32 returns the correctly rounded float32 sum of xs. The accumulation
// is exact and the single rounding targets binary32 directly, avoiding the
// double rounding of "sum in float64, then convert".
func Sum32(xs []float32) float32 { return core.Sum32(xs) }

// Round32 returns the correctly rounded float32 value of the exact sum
// accumulated so far (one rounding, directly to binary32).
func (a *Accumulator) Round32() float32 { return a.d.Round32() }
