package stream_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/stream"
)

// invertibleEngines are the engines a Window can run on.
var invertibleEngines = []string{"dense", "sparse", "small", "large"}

func bitEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// windowModel mirrors a stream.Window with raw values: a ring of value
// slices. It is the from-scratch oracle the bit-identity claim is checked
// against.
type windowModel struct {
	buckets [][]float64
	cur     int
}

func newModel(slots int) *windowModel {
	return &windowModel{buckets: make([][]float64, slots)}
}

func (m *windowModel) add(x float64) {
	m.buckets[m.cur] = append(m.buckets[m.cur], x)
}

func (m *windowModel) advance() {
	m.cur = (m.cur + 1) % len(m.buckets)
	m.buckets[m.cur] = nil
}

func (m *windowModel) live() []float64 {
	var out []float64
	for _, b := range m.buckets {
		out = append(out, b...)
	}
	return out
}

// tickStream builds an adversarial value stream: the paper's generated
// distributions salted with huge cancelling pairs, denormals, and (when
// specials is set) NaN and both infinities, so evicting a bucket must
// exactly un-do non-finite state too.
func tickStream(n int, seed uint64, specials bool) []float64 {
	xs := gen.New(gen.Config{Dist: gen.Random, N: int64(n), Delta: 1800, Seed: seed}).Slice()
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < n/20; i++ {
		j := rng.Intn(n)
		switch rng.Intn(6) {
		case 0:
			xs[j] = math.MaxFloat64
		case 1:
			xs[j] = -math.MaxFloat64
		case 2:
			xs[j] = math.SmallestNonzeroFloat64
		case 3:
			xs[j] = math.Copysign(0, -1)
		case 4:
			if specials {
				xs[j] = math.Inf(1 - 2*rng.Intn(2))
			}
		case 5:
			if specials {
				xs[j] = math.NaN()
			}
		}
	}
	return xs
}

// TestWindowBitIdenticalToScratch is the acceptance property: for
// randomized slot counts, eviction orders, and snapshot timings — with
// specials in the stream — the window's Sum is bit-identical to
// accumulating the live values from scratch, and to the window's own
// MergeTree refold.
func TestWindowBitIdenticalToScratch(t *testing.T) {
	for _, name := range invertibleEngines {
		e := engine.MustGet(name)
		for _, slots := range []int{1, 4, 16} {
			for _, specials := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/slots=%d/specials=%v", name, slots, specials), func(t *testing.T) {
					w, err := stream.New(stream.Options{Engine: name, Slots: slots})
					if err != nil {
						t.Fatal(err)
					}
					m := newModel(slots)
					xs := tickStream(4000, uint64(17*slots), specials)
					rng := rand.New(rand.NewSource(int64(slots)))
					checks := 0
					for i, x := range xs {
						w.Add(x)
						m.add(x)
						// Randomized eviction order: advance with varying
						// cadence, sometimes several buckets at once.
						if rng.Intn(37) == 0 {
							for k := rng.Intn(slots) + 1; k > 0; k-- {
								w.Advance()
								m.advance()
							}
						}
						// Snapshot at arbitrary timings, including right
						// after a burst of advances and mid-bucket.
						if rng.Intn(101) == 0 || i == len(xs)-1 {
							checks++
							live := m.live()
							want := e.Sum(live)
							if got := w.Sum(); !bitEqual(got, want) {
								t.Fatalf("tick %d: window sum %x != scratch %x (%d live values)",
									i, math.Float64bits(got), math.Float64bits(want), len(live))
							}
							if got := w.Resum(); !bitEqual(got, want) {
								t.Fatalf("tick %d: Resum %x != scratch %x", i, math.Float64bits(got), math.Float64bits(want))
							}
							if got, n := w.Stats(); n != int64(len(live)) || !bitEqual(got, want) {
								t.Fatalf("tick %d: Stats=(%x,%d) want (%x,%d)",
									i, math.Float64bits(got), n, math.Float64bits(want), len(live))
							}
						}
					}
					if checks < 10 {
						t.Fatalf("only %d snapshots exercised", checks)
					}
				})
			}
		}
	}
}

// TestWindowRetraction: Sub deletes from the current bucket exactly,
// including non-finite values, and the window stays bit-identical to
// scratch afterwards.
func TestWindowRetraction(t *testing.T) {
	for _, name := range invertibleEngines {
		e := engine.MustGet(name)
		t.Run(name, func(t *testing.T) {
			w, err := stream.New(stream.Options{Engine: name, Slots: 4})
			if err != nil {
				t.Fatal(err)
			}
			m := newModel(4)
			xs := tickStream(1200, 99, true)
			rng := rand.New(rand.NewSource(7))
			for i, x := range xs {
				w.Add(x)
				m.add(x)
				cur := m.buckets[m.cur]
				if rng.Intn(3) == 0 && len(cur) > 0 {
					// Retract a random value added to the current bucket.
					j := rng.Intn(len(cur))
					w.Sub(cur[j])
					m.buckets[m.cur] = append(cur[:j:j], cur[j+1:]...)
				}
				if rng.Intn(29) == 0 {
					w.Advance()
					m.advance()
				}
				if rng.Intn(83) == 0 || i == len(xs)-1 {
					want := e.Sum(m.live())
					if got := w.Sum(); !bitEqual(got, want) {
						t.Fatalf("tick %d: after retractions, sum %x != scratch %x",
							i, math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		})
	}
}

// TestWindowMean pins Mean to the two-rounding definition and the empty
// window to NaN.
func TestWindowMean(t *testing.T) {
	w, err := stream.New(stream.Options{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Mean(); !math.IsNaN(got) {
		t.Fatalf("empty window Mean = %g, want NaN", got)
	}
	xs := []float64{1e100, 1, -1e100, 3}
	for _, x := range xs {
		w.Add(x)
	}
	want := w.Sum() / float64(len(xs))
	if got := w.Mean(); !bitEqual(got, want) {
		t.Fatalf("Mean = %x, want %x", math.Float64bits(got), math.Float64bits(want))
	}
}

// TestWindowFullEviction: advancing through every slot evicts the whole
// window — the running total must return to the exact zero group element
// (+0 bits, zero count), no matter what the stream held. This is the
// strongest interleaving-independent invariant, so the concurrency test
// reuses it after racing writers.
func TestWindowFullEviction(t *testing.T) {
	for _, name := range invertibleEngines {
		t.Run(name, func(t *testing.T) {
			w, err := stream.New(stream.Options{Engine: name, Slots: 5})
			if err != nil {
				t.Fatal(err)
			}
			w.AddBatch(tickStream(500, 3, true))
			w.Advance()
			w.AddBatch(tickStream(300, 4, true))
			for i := 0; i < w.Slots(); i++ {
				w.Advance()
			}
			if got := w.Sum(); math.Float64bits(got) != 0 {
				t.Fatalf("fully evicted window sum = %x, want +0", math.Float64bits(got))
			}
			if n := w.Count(); n != 0 {
				t.Fatalf("fully evicted window count = %d, want 0", n)
			}
		})
	}
}

// TestWindowConcurrent races writers, an advancing goroutine, and
// snapshotters (run under -race in CI). Mid-advance snapshots must never
// tear — every Sum/Resum observation is a linearized exact sum — and after
// quiescing and evicting every bucket the total must be exactly +0.
func TestWindowConcurrent(t *testing.T) {
	for _, name := range []string{"dense", "sparse"} {
		t.Run(name, func(t *testing.T) {
			w, err := stream.New(stream.Options{Engine: name, Slots: 8})
			if err != nil {
				t.Fatal(err)
			}
			const writers = 4
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					xs := tickStream(2000, uint64(100+g), true)
					for i, x := range xs {
						w.Add(x)
						if i%5 == 0 {
							w.Sub(x) // retract some to exercise Sub under race
						}
					}
				}(g)
			}
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					w.Advance()
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 400; i++ {
					// Mid-race observations have no deterministic expected
					// value; taking them exercises the snapshot paths under
					// the race detector.
					_, _ = w.Stats()
					_ = w.Mean()
					_ = w.Resum()
				}
			}()
			wg.Wait()
			for i := 0; i < w.Slots(); i++ {
				w.Advance()
			}
			if got := w.Sum(); math.Float64bits(got) != 0 {
				t.Fatalf("post-race fully evicted sum = %x, want +0", math.Float64bits(got))
			}
		})
	}
}

// TestWindowReset: Reset restores the empty state.
func TestWindowReset(t *testing.T) {
	w, err := stream.New(stream.Options{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	w.AddBatch([]float64{1, 2, math.Inf(1)})
	w.Advance()
	w.Add(5)
	w.Reset()
	if got := w.Sum(); math.Float64bits(got) != 0 {
		t.Fatalf("post-Reset sum = %x, want +0", math.Float64bits(got))
	}
	if w.Count() != 0 || w.Advances() != 0 {
		t.Fatalf("post-Reset count=%d advances=%d, want 0,0", w.Count(), w.Advances())
	}
	w.Add(2.5)
	if got := w.Sum(); got != 2.5 {
		t.Fatalf("window unusable after Reset: sum %g", got)
	}
}

// TestWindowOptionErrors pins the constructor's validation.
func TestWindowOptionErrors(t *testing.T) {
	if _, err := stream.New(stream.Options{Engine: "no-such-engine"}); err == nil {
		t.Error("unknown engine accepted")
	}
	// Non-streaming and non-invertible engines cannot back a window.
	for _, name := range []string{"kahan", "naive", "adaptive", "truncated", "ifastsum"} {
		if _, err := stream.New(stream.Options{Engine: name}); err == nil {
			t.Errorf("engine %q accepted (not invertible)", name)
		}
	}
	if _, err := stream.New(stream.Options{Slots: -1}); err == nil {
		t.Error("negative slot count accepted")
	}
	w, err := stream.New(stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Slots() != stream.DefaultSlots || w.Engine() != "dense" {
		t.Fatalf("zero options: slots=%d engine=%q", w.Slots(), w.Engine())
	}
}
