// Package stream implements exact sliding-window aggregation on top of
// the invertible summation engines: moving sums and means over the last k
// buckets of a value stream, with O(1) amortized cost per bucket advance
// and results that are bit-identical to re-summing the live window from
// scratch — for any slot count, eviction order, or snapshot timing.
//
// No compensated scheme can do this. Kahan/Neumaier-style summaries are
// monoids: a value can be folded in but never taken back out, so a sliding
// window over them must either re-sum the window on every eviction (O(w)
// per advance) or accept drift that depends on the eviction schedule. The
// paper's (α,β)-regularized signed-digit superaccumulator is closed under
// negation — the exact sum is a group — so Window evicts a bucket by
// merging its group inverse into the running total (engine.Inverter's
// SubAccumulator): one exact O(σ) operation, after which the total is the
// same group element as the fold of the surviving buckets, and therefore
// rounds to the same bits. Rounding still happens only when a sum is
// requested.
//
// All methods are safe for concurrent use; a single mutex serializes
// operations, which keeps every snapshot a linearization point (the sum it
// returns is the exact rounded sum of precisely the operations that
// completed before it).
package stream

import (
	"fmt"
	"math"
	"sync"

	"parsum/internal/core"
	"parsum/internal/engine"
)

// DefaultSlots is the slot-ring size used when Options.Slots is 0.
const DefaultSlots = 16

// Options configures a Window; the zero value is ready to use (dense
// engine, DefaultSlots buckets).
type Options struct {
	// Engine names the summation engine backing every bucket and the
	// running total; "" means dense. The engine must declare Streaming,
	// DeterministicParallel, and Invertible — exact eviction is exactly
	// the Invertible contract.
	Engine string
	// Slots is the number of buckets the window covers; 0 means
	// DefaultSlots. The window spans the current bucket plus the Slots−1
	// most recently closed ones.
	Slots int
}

// Window is a sliding window of the last Slots buckets of a value stream.
// Values accumulate into the current bucket; Advance closes it, opens a
// fresh one, and evicts the oldest bucket exactly. The zero value is not
// usable; construct with New.
type Window struct {
	mu     sync.Mutex
	eng    engine.Engine
	slots  []engine.Accumulator // ring of per-bucket accumulators
	counts []int64              // per-bucket value counts (for Mean)
	cur    int                  // ring index of the current bucket
	total  engine.Accumulator   // exact sum of every live bucket
	count  int64                // values in the live window
	adv    uint64               // total Advance calls
}

// New returns an empty Window. It errors when the engine is unknown or
// lacks the Streaming, DeterministicParallel, and Invertible capabilities
// exact sliding-window aggregation requires.
func New(opt Options) (*Window, error) {
	name := opt.Engine
	if name == "" {
		name = core.EngineDense
	}
	e, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("stream: unknown engine %q (registered: %v)", name, engine.Names())
	}
	if caps := e.Caps(); !caps.Streaming || !caps.DeterministicParallel || !caps.Invertible {
		return nil, fmt.Errorf("stream: engine %q cannot back a sliding window (needs Streaming, DeterministicParallel and Invertible; has Streaming=%v DeterministicParallel=%v Invertible=%v)",
			name, caps.Streaming, caps.DeterministicParallel, caps.Invertible)
	}
	n := opt.Slots
	if n == 0 {
		n = DefaultSlots
	}
	if n < 1 {
		return nil, fmt.Errorf("stream: slot count %d < 1", n)
	}
	w := &Window{
		eng:    e,
		slots:  make([]engine.Accumulator, n),
		counts: make([]int64, n),
		total:  e.NewAccumulator(),
	}
	for i := range w.slots {
		w.slots[i] = e.NewAccumulator()
	}
	return w, nil
}

// Engine returns the registry name of the backing engine.
func (w *Window) Engine() string { return w.eng.Name() }

// Slots returns the number of buckets the window covers.
func (w *Window) Slots() int { return len(w.slots) }

// Add accumulates x exactly into the current bucket (and the running
// total).
func (w *Window) Add(x float64) {
	w.mu.Lock()
	w.slots[w.cur].Add(x)
	w.total.Add(x)
	w.counts[w.cur]++
	w.count++
	w.mu.Unlock()
}

// AddBatch accumulates every element of xs exactly into the current
// bucket.
func (w *Window) AddBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	w.mu.Lock()
	w.slots[w.cur].AddSlice(xs)
	w.total.AddSlice(xs)
	w.counts[w.cur] += int64(len(xs))
	w.count += int64(len(xs))
	w.mu.Unlock()
}

// Sub deletes x exactly from the current bucket — a retraction of a value
// added since the last Advance. Deletion is as exact as insertion.
func (w *Window) Sub(x float64) {
	w.mu.Lock()
	w.slots[w.cur].(engine.Inverter).Sub(x)
	w.total.(engine.Inverter).Sub(x)
	w.counts[w.cur]--
	w.count--
	w.mu.Unlock()
}

// SubBatch deletes every element of xs exactly from the current bucket.
func (w *Window) SubBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	w.mu.Lock()
	w.slots[w.cur].(engine.Inverter).SubSlice(xs)
	w.total.(engine.Inverter).SubSlice(xs)
	w.counts[w.cur] -= int64(len(xs))
	w.count -= int64(len(xs))
	w.mu.Unlock()
}

// Advance closes the current bucket and opens the next one, evicting the
// bucket that falls off the back of the window: its exact contents are
// deleted from the running total through the engine's group inverse
// (SubAccumulator) and its accumulator is recycled as the new current
// bucket. The cost is one exact subtraction and a reset — O(1) bucket
// operations regardless of how many values the window holds — and the
// total afterwards is the same group element as the fold of the surviving
// buckets, so every later Sum is bit-identical to re-summing the live
// window from scratch.
func (w *Window) Advance() {
	w.mu.Lock()
	w.cur = (w.cur + 1) % len(w.slots)
	expired := w.slots[w.cur]
	w.total.(engine.Inverter).SubAccumulator(expired)
	w.count -= w.counts[w.cur]
	expired.Reset()
	w.counts[w.cur] = 0
	w.adv++
	w.mu.Unlock()
}

// Advances returns the number of Advance calls so far.
func (w *Window) Advances() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.adv
}

// Count returns the number of values in the live window (additions minus
// deletions and evictions).
func (w *Window) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Sum returns the correctly rounded exact sum of the live window. The
// result is bit-identical to accumulating the window's surviving values
// from scratch in a fresh accumulator, regardless of how many additions,
// retractions, and evictions produced the window.
func (w *Window) Sum() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total.Round()
}

// Mean returns the exactly-rounded moving average: the correctly rounded
// exact sum of the live window divided by its count (one rounding for the
// sum, one for the division — the same two roundings computing a mean of
// the raw values would cost). It returns NaN for an empty window.
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == 0 {
		return math.NaN()
	}
	return w.total.Round() / float64(w.count)
}

// Stats returns the live window's rounded sum and count as one atomic
// observation, so a mean computed from them is consistent.
func (w *Window) Stats() (sum float64, count int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total.Round(), w.count
}

// Reset empties every bucket and the running total; the window remains
// usable.
func (w *Window) Reset() {
	w.mu.Lock()
	for i := range w.slots {
		w.slots[i].Reset()
		w.counts[i] = 0
	}
	w.total.Reset()
	w.count = 0
	w.cur = 0
	w.adv = 0
	w.mu.Unlock()
}

// Resum recomputes the window sum from scratch: it folds clones of the
// live buckets through the log-depth Lemma 1 merge tree (core.MergeTree)
// and rounds once, touching neither the buckets nor the running total.
// It is the from-scratch oracle the determinism claim is verified against
// — Sum() must (and does) return these bits — exported so benchmarks and
// integration tests can check cells without keeping the raw values around.
func (w *Window) Resum() float64 {
	w.mu.Lock()
	parts := make([]engine.Accumulator, len(w.slots))
	for i, s := range w.slots {
		parts[i] = s.Clone()
	}
	w.mu.Unlock()
	return core.MergeTree(parts, func(dst, src engine.Accumulator) engine.Accumulator {
		dst.Merge(src)
		return dst
	}).Round()
}
