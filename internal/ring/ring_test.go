package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := New(Options{Nodes: nodes, VNodes: vnodes})
	if err != nil {
		t.Fatalf("New(%v): %v", nodes, err)
	}
	return r
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty membership: want error")
	}
	if _, err := New(Options{Nodes: []string{"a", ""}}); err == nil {
		t.Error("empty node name: want error")
	}
	if _, err := New(Options{Nodes: []string{"a", "b", "a"}}); err == nil {
		t.Error("duplicate node: want error")
	}
}

// Placement must be a pure function of (membership, key): two rings
// built from the same nodes — in any order — agree on every replica
// set.
func TestDeterministicAcrossInstances(t *testing.T) {
	a := mustRing(t, []string{"n1", "n2", "n3", "n4", "n5"}, 32)
	b := mustRing(t, []string{"n5", "n3", "n1", "n4", "n2"}, 32)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		for n := 1; n <= 5; n++ {
			ra, rb := a.Replicas(key, n), b.Replicas(key, n)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("key %q n=%d: %v vs %v", key, n, ra, rb)
			}
		}
	}
}

func TestReplicasDistinctAndClamped(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r := mustRing(t, nodes, 16)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", key, len(reps))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("key %q: duplicate replica %q in %v", key, n, reps)
			}
			seen[n] = true
		}
		// Asking for more replicas than nodes clamps to the membership.
		if got := r.Replicas(key, 10); len(got) != 3 {
			t.Fatalf("key %q: over-asked replicas %v, want all 3 nodes", key, got)
		}
		if got := r.Replicas(key, 0); got != nil {
			t.Fatalf("key %q: n=0 returned %v, want nil", key, got)
		}
		if r.Owner(key) != reps[0] {
			t.Fatalf("key %q: Owner %q != primary %q", key, r.Owner(key), reps[0])
		}
	}
}

// Replica sets for n and n+1 must agree on their shared prefix — the
// walk is one clockwise pass, so growing R only appends.
func TestReplicaPrefixStability(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c", "d", "e"}, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("p%d", i)
		prev := r.Replicas(key, 1)
		for n := 2; n <= 5; n++ {
			cur := r.Replicas(key, n)
			if !reflect.DeepEqual(cur[:n-1], prev) {
				t.Fatalf("key %q: Replicas(%d)=%v does not extend Replicas(%d)=%v", key, n, cur, n-1, prev)
			}
			prev = cur
		}
	}
}

// With enough virtual nodes the primary-ownership share of each node
// should concentrate around 1/N; this pins a loose bound so a broken
// hash or walk cannot silently skew the cluster.
func TestBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := mustRing(t, nodes, 128)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("balance-key-%d", i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		got := counts[n]
		if got < want/2 || got > want*2 {
			t.Errorf("node %q owns %d of %d keys (uniform share %d): skew beyond 2x", n, got, keys, want)
		}
	}
}

// Consistent hashing's point: adding one node must reassign only about
// 1/(N+1) of the primaries, not reshuffle the world.
func TestMembershipChangeMovesFewKeys(t *testing.T) {
	before := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 128)
	after := mustRing(t, []string{"n1", "n2", "n3", "n4", "n5"}, 128)
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("churn-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			moved++
			// A key that moved must have moved TO the new node; moving
			// between surviving nodes would be gratuitous churn.
			if oa != "n5" {
				t.Fatalf("key %q moved %q -> %q, not to the new node", key, ob, oa)
			}
		}
	}
	// Expect ~1/5 of keys to move; allow a generous band.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d of %d primaries moved when adding a 5th node; want roughly %d", moved, keys, keys/5)
	}
}

func TestAccessors(t *testing.T) {
	r := mustRing(t, []string{"b", "a"}, 0)
	if got := r.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Nodes() = %v, want sorted [a b]", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("VNodes() = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	// Mutating the returned membership must not corrupt the ring.
	r.Nodes()[0] = "zzz"
	if r.Nodes()[0] != "a" {
		t.Error("Nodes() returned shared backing storage")
	}
}

// A membership beyond 64 nodes exercises the map-based dedup path.
func TestManyNodes(t *testing.T) {
	nodes := make([]string, 80)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%03d", i)
	}
	r := mustRing(t, nodes, 8)
	reps := r.Replicas("some-key", 70)
	if len(reps) != 70 {
		t.Fatalf("got %d replicas, want 70", len(reps))
	}
	seen := map[string]bool{}
	for _, n := range reps {
		if seen[n] {
			t.Fatalf("duplicate replica %q", n)
		}
		seen[n] = true
	}
}
