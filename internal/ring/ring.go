// Package ring implements the consistent-hash ring that spreads keys
// over N sumd backends: a deterministic map from every key to an ordered
// replica set of R distinct nodes. The proxy (internal/proxy) routes
// each keyed write to Replicas(key, R) and each read down the same list,
// so placement is a pure function of (membership, key) — two proxies
// configured with the same backends agree on every key's replica set
// with no coordination, and the anti-entropy repair loop can recompute
// ownership offline.
//
// Each node projects VNodes virtual points onto a 64-bit hash circle
// (FNV-1a of "node#i"); a key lands on the circle at FNV-1a(key) and its
// replica set is the next R *distinct* nodes clockwise. Virtual nodes
// smooth the load (the expected share of each node concentrates around
// 1/N as VNodes grows), and consistent hashing bounds churn: adding or
// removing one node moves only the keys adjacent to that node's points,
// which the membership-change test pins quantitatively.
package ring

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per backend when Options
// leaves it zero: enough to keep per-node load within a few tens of
// percent of uniform for small clusters, cheap enough to rebuild on
// every membership change.
const DefaultVNodes = 64

// Options configures New.
type Options struct {
	// Nodes are the member identifiers (the proxy uses backend base
	// URLs). Order does not matter — the ring sorts internally so equal
	// membership always builds an identical ring.
	Nodes []string
	// VNodes is the number of points each node projects onto the hash
	// circle; 0 means DefaultVNodes.
	VNodes int
}

// Ring is an immutable consistent-hash ring. Build one with New; all
// methods are safe for concurrent use (nothing mutates after New).
type Ring struct {
	nodes  []string // sorted, unique
	points []point  // sorted by (hash, node)
	vnodes int
}

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node int32 // index into nodes
}

// fnv1a is the same stable 64-bit FNV-1a the keyed store uses for
// partitioning, finished with a splitmix64-style avalanche: raw FNV of
// short strings with shared prefixes ("node#0", "node#1", …) clusters
// on the circle badly enough to skew ownership 2x, and the finalizer
// disperses it. Nothing on the wire depends on this hash, but
// determinism across processes does.
func fnv1a(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// New builds a ring over opt.Nodes. It errors on an empty membership,
// an empty node name, or duplicate nodes — silent deduplication would
// let two differently-configured proxies believe they agree.
func New(opt Options) (*Ring, error) {
	if len(opt.Nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	vnodes := opt.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	nodes := append([]string(nil), opt.Nodes...)
	sort.Strings(nodes)
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("ring: empty node name")
		}
		if i > 0 && nodes[i-1] == n {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
	}
	r := &Ring{nodes: nodes, vnodes: vnodes, points: make([]point, 0, len(nodes)*vnodes)}
	for ni, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: fnv1a(n, "#", vnodeSuffix(v)), node: int32(ni)})
		}
	}
	// Ties (two points with equal hash) are broken by node index so the
	// walk order is still a pure function of membership.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// vnodeSuffix spells the virtual-node index; fmt.Sprintf in the build
// loop would dominate ring construction for large VNodes.
func vnodeSuffix(v int) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}

// Nodes returns the sorted membership (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the per-node virtual point count.
func (r *Ring) VNodes() int { return r.vnodes }

// Replicas returns the ordered replica set for key: the first n
// distinct nodes clockwise from the key's point on the circle. n is
// clamped to the membership size; n <= 0 returns nil. The first entry
// is the key's primary. The result is freshly allocated — callers may
// keep it.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	var seen uint64 // bitmask over node indices; membership is small
	bigSeen := map[int32]bool(nil)
	if len(r.nodes) > 64 {
		bigSeen = make(map[int32]bool, n)
	}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if bigSeen != nil {
			if bigSeen[p.node] {
				continue
			}
			bigSeen[p.node] = true
		} else {
			bit := uint64(1) << uint(p.node)
			if seen&bit != 0 {
				continue
			}
			seen |= bit
		}
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Owner returns the key's primary node — Replicas(key, 1)[0].
func (r *Ring) Owner(key string) string { return r.Replicas(key, 1)[0] }
