// Conformance for the sharded ingestion layer: Sharded.Sum/Snapshot must
// be bit-identical to the sequential oracle across shard counts,
// randomized writer interleavings, and mid-ingestion snapshots, for every
// engine capable of backing it. Run with -race in CI: the assertions pin
// determinism, the detector pins the handoff protocol.
package engine_test

import (
	"math/rand"
	"sync"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/oracle"
	"parsum/internal/shard"
)

// TestShardedBitIdenticalAcrossShardCounts: for each eligible engine,
// every shard count in {1,2,4,8} and a seeded-random writer interleaving
// must reproduce the oracle's bits, including on adversarial inputs.
func TestShardedBitIdenticalAcrossShardCounts(t *testing.T) {
	for _, e := range engine.All() {
		caps := e.Caps()
		if !caps.Streaming || !caps.DeterministicParallel {
			if _, err := shard.New(shard.Options{Engine: e.Name()}); err == nil {
				t.Errorf("shard.New accepted ineligible engine %q", e.Name())
			}
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range adversarialCases() {
				want := oracle.Sum(tc.xs)
				for _, shards := range []int{1, 2, 4, 8} {
					s, err := shard.New(shard.Options{Engine: e.Name(), Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					// Randomized interleaving: a seeded shuffle deals the
					// input to 2×shards writers in uneven runs.
					rng := rand.New(rand.NewSource(int64(shards)*1000 + int64(len(tc.xs))))
					order := rng.Perm(len(tc.xs))
					writers := 2 * shards
					var wg sync.WaitGroup
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for j := w; j < len(order); j += writers {
								s.Add(tc.xs[order[j]])
							}
						}(w)
					}
					wg.Wait()
					if got := s.Sum(); !bitEqual(got, want) {
						t.Fatalf("%s shards=%d: Sum=%g oracle=%g", tc.name, shards, got, want)
					}
				}
			}
		})
	}
}

// TestShardedStressMidIngestionSnapshots is the race-enabled stress test:
// writer goroutines ingest in phases while a snapshotter races against
// them continuously; at every phase boundary (ingestion paused but far
// from finished) the snapshot must be bit-identical to the sequential
// oracle of exactly the data ingested so far. The racing snapshots make
// the detector sweep the handoff/recycle protocol under load.
func TestShardedStressMidIngestionSnapshots(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 40000, Delta: 1500, Seed: 77}).Slice()
	s, err := shard.New(shard.Options{Engine: "dense", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() { // racing snapshotter: result unused, safety checked by -race
		defer snapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Snapshot()
			}
		}
	}()

	const phases, writers = 8, 6
	per := len(xs) / phases
	for p := 0; p < phases; p++ {
		lo, hi := p*per, (p+1)*per
		if p == phases-1 {
			hi = len(xs)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := lo + w; i < hi; i += writers {
					if i%3 == 0 {
						s.AddBatch(xs[i : i+1])
					} else {
						s.Add(xs[i])
					}
				}
			}(w)
		}
		wg.Wait()
		if got, want := s.Snapshot(), oracle.Sum(xs[:hi]); !bitEqual(got, want) {
			t.Fatalf("phase %d (n=%d): snapshot=%g oracle=%g", p, hi, got, want)
		}
	}
	close(stop)
	snapWg.Wait()
	// Fully cancelling input: the completed ingestion sums to exactly +0.
	if got := s.Sum(); got != 0 {
		t.Fatalf("final Sum=%g, want 0", got)
	}
}
