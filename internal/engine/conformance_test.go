// Conformance suite for the engine registry: every capability flag an
// engine declares is a contract, checked here against the math/big oracle
// on adversarial inputs — huge cancellation, denormals, near-overflow
// magnitudes, ±Inf/NaN — and, for parallel-deterministic engines, for
// bit-identical results across worker counts and chunk sizes.
package engine_test

import (
	"fmt"
	"math"
	"testing"

	_ "parsum/internal/baseline" // register baseline engines
	"parsum/internal/core"       // registers core engines
	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

type testCase struct {
	name string
	xs   []float64
}

// adversarialCases are inputs chosen to break inexact or carelessly merged
// summation: massive cancellation across the full exponent range,
// denormal-only sums, intermediate overflow, and IEEE specials.
func adversarialCases() []testCase {
	var cases []testCase

	// Full-exponent-range cancellation with a denormal residual: powers of
	// two from 2^-1074 to 2^1023 and their negations in a different order.
	var full []float64
	for e := -1074; e <= 1023; e += 11 {
		full = append(full, math.Ldexp(1, e))
	}
	for e := 1023; e >= -1074; e -= 11 {
		full = append(full, -math.Ldexp(1, e))
	}
	full = append(full, math.SmallestNonzeroFloat64)
	cases = append(cases, testCase{"full-range-cancellation", full})

	// Huge cancelling blocks whose naive partial sums overflow.
	var huge []float64
	for i := 0; i < 64; i++ {
		huge = append(huge, math.MaxFloat64, math.MaxFloat64)
	}
	for i := 0; i < 64; i++ {
		huge = append(huge, -math.MaxFloat64, -math.MaxFloat64)
	}
	huge = append(huge, 1.5)
	cases = append(cases, testCase{"overflowing-cancellation", huge})

	// Denormal accumulation crossing into the normal range and back.
	var den []float64
	for i := 0; i < 5000; i++ {
		den = append(den, math.SmallestNonzeroFloat64)
	}
	for i := 0; i < 2499; i++ {
		den = append(den, -2*math.SmallestNonzeroFloat64)
	}
	cases = append(cases, testCase{"denormals", den})

	// The classic motivating example plus half-ulp rounding traps.
	cases = append(cases,
		testCase{"classic", []float64{1e100, 1, -1e100}},
		testCase{"half-ulp", []float64{1, math.Ldexp(1, -53), math.Ldexp(1, -105), -math.Ldexp(1, -105), math.Ldexp(1, -105)}},
		testCase{"empty", nil},
		testCase{"signed-zeros", []float64{0, math.Copysign(0, -1)}},
		testCase{"singleton-denormal", []float64{math.SmallestNonzeroFloat64}},
		testCase{"pos-inf", []float64{1, math.Inf(1), 2}},
		testCase{"neg-inf", []float64{math.Inf(-1), -1}},
		testCase{"both-inf", []float64{math.Inf(1), math.Inf(-1)}},
		testCase{"nan", []float64{1, math.NaN(), 2}},
		testCase{"nan-and-inf", []float64{math.NaN(), math.Inf(1)}},
	)

	// The paper's four generated distributions at a wide exponent range.
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 3000, Delta: 2000, Seed: 41}).Slice()
		cases = append(cases, testCase{fmt.Sprintf("gen-%s", d), xs})
	}
	return cases
}

// bitEqual compares float64 results bit-for-bit, except that any NaN
// matches any NaN.
func bitEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestRegistryPopulated pins the acceptance surface: the engines the
// library ships are registered under their stable names.
func TestRegistryPopulated(t *testing.T) {
	want := []string{"adaptive", "demmel-hida", "dense", "ifastsum", "kahan",
		"large", "naive", "neumaier", "pairwise", "small", "sparse", "truncated"}
	for _, name := range want {
		if _, ok := engine.Get(name); !ok {
			t.Errorf("engine %q not registered", name)
		}
	}
	if n := len(engine.Names()); n < 5 {
		t.Fatalf("registry has %d engines, want >= 5 (%v)", n, engine.Names())
	}
}

// TestExactEnginesMatchOracle: every engine claiming correct rounding must
// be bit-identical to the oracle on every adversarial input; every engine
// claiming faithfulness must pass the oracle's faithfulness check.
func TestExactEnginesMatchOracle(t *testing.T) {
	for _, e := range engine.All() {
		caps := e.Caps()
		if !caps.Faithful {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range adversarialCases() {
				got := e.Sum(tc.xs)
				if caps.CorrectlyRounded {
					if want := oracle.Sum(tc.xs); !bitEqual(got, want) {
						t.Errorf("%s: Sum=%g (bits %x) oracle=%g (bits %x)",
							tc.name, got, math.Float64bits(got), want, math.Float64bits(want))
					}
				} else if !oracle.Faithful(tc.xs, got) {
					t.Errorf("%s: Sum=%g is not a faithful rounding (oracle %g)",
						tc.name, got, oracle.Sum(tc.xs))
				}
			}
		})
	}
}

// TestStreamingEnginesSplitMerge: for every streaming engine, splitting the
// input across accumulators and merging in a skewed order must reproduce
// the one-shot sum bit-for-bit, and Clone/Reset must behave.
func TestStreamingEnginesSplitMerge(t *testing.T) {
	for _, e := range engine.All() {
		if !e.Caps().Streaming {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range adversarialCases() {
				want := e.Sum(tc.xs)

				// Split into 5 uneven parts, merge right-to-left.
				parts := make([]engine.Accumulator, 5)
				for i := range parts {
					parts[i] = e.NewAccumulator()
				}
				for i, x := range tc.xs {
					parts[(i*i)%5].Add(x)
				}
				for i := len(parts) - 1; i > 0; i-- {
					parts[i-1].Merge(parts[i])
				}
				if got := parts[0].Round(); !bitEqual(got, want) {
					t.Errorf("%s: split/merge=%g one-shot=%g", tc.name, got, want)
				}
				// Round must be non-destructive.
				if got := parts[0].Round(); !bitEqual(got, want) {
					t.Errorf("%s: second Round diverged", tc.name)
				}

				// Clone must be independent of its origin.
				c := parts[0].Clone()
				parts[0].Add(1)
				if got := c.Round(); !bitEqual(got, want) {
					t.Errorf("%s: clone changed when origin mutated: %g != %g", tc.name, got, want)
				}
				// Reset must produce an empty accumulator.
				c.Reset()
				if got := c.Round(); got != 0 {
					t.Errorf("%s: Reset then Round = %g, want 0", tc.name, got)
				}
			}
		})
	}
}

// TestAccumulatorAddSliceMatchesAdd pins AddSlice to element-wise Add.
func TestAccumulatorAddSliceMatchesAdd(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 2000, Delta: 900, Seed: 5}).Slice()
	for _, e := range engine.All() {
		if !e.Caps().Streaming {
			continue
		}
		a, b := e.NewAccumulator(), e.NewAccumulator()
		a.AddSlice(xs)
		for _, x := range xs {
			b.Add(x)
		}
		if av, bv := a.Round(), b.Round(); !bitEqual(av, bv) {
			t.Errorf("%s: AddSlice=%g Add loop=%g", e.Name(), av, bv)
		}
	}
}

// TestParallelDeterministicAcrossWorkersAndChunks is the post-rewrite
// guarantee: for every parallel-deterministic engine, SumParallel is
// bit-identical to the sequential sum for every worker count and chunk
// size (including the auto-tuned chunk 0), on both well-behaved and
// fully cancelling data.
func TestParallelDeterministicAcrossWorkersAndChunks(t *testing.T) {
	datasets := map[string][]float64{
		"random":  gen.New(gen.Config{Dist: gen.Random, N: 60000, Delta: 1500, Seed: 9}).Slice(),
		"sumzero": gen.New(gen.Config{Dist: gen.SumZero, N: 60000, Delta: 1500, Seed: 10}).Slice(),
	}
	for _, e := range engine.All() {
		caps := e.Caps()
		if !caps.DeterministicParallel || !caps.Streaming {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			for dn, xs := range datasets {
				want := e.Sum(xs)
				if caps.CorrectlyRounded {
					if w := oracle.Sum(xs); !bitEqual(want, w) {
						t.Fatalf("%s: sequential %g != oracle %g", dn, want, w)
					}
				}
				for _, workers := range []int{1, 2, 3, 4, 8, 16} {
					for _, chunk := range []int{0, 1, 17, 1024, 1 << 16} {
						opt := core.Options{Engine: e.Name(), Workers: workers, ChunkSize: chunk}
						if got := core.SumParallel(xs, opt); !bitEqual(got, want) {
							t.Fatalf("%s workers=%d chunk=%d: %g != %g",
								dn, workers, chunk, got, want)
						}
					}
				}
			}
		})
	}
}

// TestNonStreamingEnginesFallBackSequentially: requesting parallelism from
// an engine without deterministic streaming merges must still return that
// engine's sequential result.
func TestNonStreamingEnginesFallBackSequentially(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 5000, Delta: 100, Seed: 12}).Slice()
	for _, e := range engine.All() {
		caps := e.Caps()
		if caps.DeterministicParallel && caps.Streaming {
			continue
		}
		want := e.Sum(xs)
		got := core.SumParallel(xs, core.Options{Engine: e.Name(), Workers: 8, ChunkSize: 64})
		if !bitEqual(got, want) {
			t.Errorf("%s: parallel fallback %g != sequential %g", e.Name(), got, want)
		}
	}
}

// TestSumParallelUnknownEnginePanics pins the failure mode for a typo'd
// Options.Engine.
func TestSumParallelUnknownEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SumParallel with unknown engine did not panic")
		}
	}()
	core.SumParallel([]float64{1, 2}, core.Options{Engine: "no-such-engine"})
}
