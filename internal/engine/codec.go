package engine

import (
	"encoding"
	"errors"
	"fmt"
)

// Wire envelope for engine partials: the versioned, engine-tagged frame a
// partial sum travels in between processes. The envelope carries only what
// the engine seam needs — which engine's representation follows — and
// delegates the representation itself to the accumulator's own
// BinaryMarshaler (internal/accum's codec for the superaccumulator
// engines), which records width, non-finite state, and components. The
// format is endian-stable: fixed single bytes plus the varint-based inner
// payload.
//
// Layout:
//
//	magic   byte = 0xC7
//	version byte = 1
//	nameLen byte (1..255)
//	name    nameLen bytes (registry name of the engine)
//	payload rest (the accumulator's own MarshalBinary encoding)
//
// Decoding validates the frame, resolves the engine in the registry, and
// rejects payloads whose engine is unknown, cannot stream, or cannot
// unmarshal — arbitrary bytes never panic and never allocate more than
// O(len(data)).

const (
	wireMagic   = 0xC7
	wireVersion = 1
)

// Wire-envelope errors. Inner payload errors come wrapped from the
// accumulator's own codec (accum.ErrCodecTruncated / ErrCodecInvalid for
// the superaccumulator engines).
var (
	ErrWireTruncated = errors.New("engine: truncated partial envelope")
	ErrWireInvalid   = errors.New("engine: invalid partial envelope")
)

// BinaryAccumulator is the interface an accumulator must satisfy for its
// partials to cross a process boundary.
type BinaryAccumulator interface {
	Accumulator
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// CanMarshal reports whether e's accumulators can be serialized as wire
// partials: the engine streams and its accumulator implements both binary
// codec directions.
func CanMarshal(e Engine) bool {
	if !e.Caps().Streaming {
		return false
	}
	_, ok := e.NewAccumulator().(BinaryAccumulator)
	return ok
}

// MarshalPartial encodes a as a wire partial tagged with the engine name
// it must be decoded under. It errors when the accumulator does not
// support binary marshaling or the name cannot fit the envelope.
func MarshalPartial(engineName string, a Accumulator) ([]byte, error) {
	if len(engineName) == 0 || len(engineName) > 255 {
		return nil, fmt.Errorf("%w: engine name length %d outside [1,255]", ErrWireInvalid, len(engineName))
	}
	m, ok := a.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("%w: engine %q accumulator does not support binary marshaling", ErrWireInvalid, engineName)
	}
	payload, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 3+len(engineName)+len(payload))
	buf = append(buf, wireMagic, wireVersion, byte(len(engineName)))
	buf = append(buf, engineName...)
	return append(buf, payload...), nil
}

// UnmarshalPartial decodes a wire partial: it validates the envelope,
// resolves the named engine in the registry, and returns a fresh
// accumulator of that engine holding the decoded partial sum. The inner
// payload is validated by the accumulator's own UnmarshalBinary.
func UnmarshalPartial(data []byte) (engineName string, a Accumulator, err error) {
	if len(data) < 3 {
		return "", nil, ErrWireTruncated
	}
	if data[0] != wireMagic {
		return "", nil, fmt.Errorf("%w: bad magic %#x", ErrWireInvalid, data[0])
	}
	if data[1] != wireVersion {
		return "", nil, fmt.Errorf("%w: unsupported version %d", ErrWireInvalid, data[1])
	}
	nameLen := int(data[2])
	if nameLen == 0 {
		return "", nil, fmt.Errorf("%w: empty engine name", ErrWireInvalid)
	}
	if len(data) < 3+nameLen {
		return "", nil, ErrWireTruncated
	}
	engineName = string(data[3 : 3+nameLen])
	e, ok := Get(engineName)
	if !ok {
		return engineName, nil, fmt.Errorf("%w: unknown engine %q (registered: %v)", ErrWireInvalid, engineName, Names())
	}
	acc := e.NewAccumulator()
	if acc == nil {
		return engineName, nil, fmt.Errorf("%w: engine %q does not stream", ErrWireInvalid, engineName)
	}
	u, ok := acc.(encoding.BinaryUnmarshaler)
	if !ok {
		return engineName, nil, fmt.Errorf("%w: engine %q accumulator does not support binary unmarshaling", ErrWireInvalid, engineName)
	}
	if err := u.UnmarshalBinary(data[3+nameLen:]); err != nil {
		return engineName, nil, err
	}
	return engineName, acc, nil
}
