// Fuzz half of the engine conformance suite: FuzzSumEngines drives every
// accuracy-declaring engine against the math/big oracle on arbitrary
// inputs, and FuzzPartialWire attacks the wire-partial envelope with
// arbitrary bytes while checking valid partials round-trip exactly.
package engine_test

import (
	"encoding/binary"
	"math"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/oracle"
)

// fuzzBytesToFloats reinterprets data as little-endian float64s, capped so
// one execution stays fast (the oracle is exact but slow).
func fuzzBytesToFloats(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return xs
}

func floatsToBytes(xs []float64) []byte {
	data := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(x))
	}
	return data
}

// FuzzSumEngines: every engine claiming CorrectlyRounded must be
// bit-identical to the math/big oracle, and every engine claiming
// Faithful must pass the oracle's faithfulness check, on any input the
// fuzzer invents. Streaming engines must additionally reproduce their
// one-shot sum through a split accumulator merge.
func FuzzSumEngines(f *testing.F) {
	// The adversarial conformance corpus seeds the fuzzer: these are the
	// inputs known to break inexact or carelessly merged summation.
	for _, tc := range adversarialCases() {
		xs := tc.xs
		if len(xs) > 64 {
			xs = xs[:64]
		}
		f.Add(floatsToBytes(xs))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := fuzzBytesToFloats(data, 256)
		want := oracle.Sum(xs)
		for _, e := range engine.All() {
			caps := e.Caps()
			if !caps.Faithful {
				continue
			}
			got := e.Sum(xs)
			if caps.CorrectlyRounded {
				if !bitEqual(got, want) {
					t.Errorf("%s: Sum=%g (bits %x) oracle=%g (bits %x) on %v",
						e.Name(), got, math.Float64bits(got), want, math.Float64bits(want), xs)
				}
			} else if !oracle.Faithful(xs, got) {
				t.Errorf("%s: Sum=%g is not faithful (oracle %g) on %v", e.Name(), got, want, xs)
			}
			if !caps.Streaming {
				continue
			}
			// Split/merge determinism under fuzz: two partials merged must
			// reproduce the one-shot bits.
			a, b := e.NewAccumulator(), e.NewAccumulator()
			mid := len(xs) / 2
			a.AddSlice(xs[:mid])
			b.AddSlice(xs[mid:])
			a.Merge(b)
			if merged := a.Round(); !bitEqual(merged, got) {
				t.Errorf("%s: split/merge=%g one-shot=%g on %v", e.Name(), merged, got, xs)
			}
		}
	})
}

// FuzzPartialWire: arbitrary bytes never panic UnmarshalPartial, and a
// valid partial built from the input round-trips to the same exact value
// through the envelope for every wire-capable engine.
func FuzzPartialWire(f *testing.F) {
	for _, name := range []string{"dense", "sparse", "small", "large"} {
		e := engine.MustGet(name)
		acc := e.NewAccumulator()
		acc.AddSlice([]float64{1e100, 1, -1e100, 0x1p-1074})
		if blob, err := engine.MarshalPartial(name, acc); err == nil {
			f.Add(blob)
		}
	}
	f.Add([]byte{0xC7, 1, 5, 'd', 'e', 'n', 's', 'e'})
	f.Add([]byte{0xC7, 1, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Obligation 1: arbitrary bytes decode or error, never panic, and
		// a successful decode re-marshals to the same exact value.
		if name, acc, err := engine.UnmarshalPartial(data); err == nil {
			want := acc.Round()
			re, err := engine.MarshalPartial(name, acc)
			if err != nil {
				t.Fatalf("decoded partial failed to re-encode: %v", err)
			}
			_, acc2, err := engine.UnmarshalPartial(re)
			if err != nil {
				t.Fatalf("re-encoded partial failed to decode: %v", err)
			}
			if got := acc2.Round(); !bitEqual(got, want) {
				t.Fatalf("re-encode changed value: %g -> %g", want, got)
			}
		}

		// Obligation 2: partials of fuzzer-chosen values round-trip
		// bit-identically for every wire-capable engine.
		xs := fuzzBytesToFloats(data, 64)
		for _, name := range []string{"dense", "sparse", "small", "large"} {
			e := engine.MustGet(name)
			acc := e.NewAccumulator()
			acc.AddSlice(xs)
			want := acc.Round()
			blob, err := engine.MarshalPartial(name, acc)
			if err != nil {
				t.Fatalf("%s: marshal: %v", name, err)
			}
			gotName, dec, err := engine.UnmarshalPartial(blob)
			if err != nil {
				t.Fatalf("%s: unmarshal: %v", name, err)
			}
			if gotName != name {
				t.Fatalf("engine name %q became %q", name, gotName)
			}
			if got := dec.Round(); !bitEqual(got, want) {
				t.Fatalf("%s: wire round-trip %g != %g on %v", name, got, want, xs)
			}
		}
	})
}
