// Package engine defines the pluggable summation-engine seam of the
// library: a uniform interface over every summation strategy (dense and
// sparse superaccumulators, the adaptive Theorem-4 algorithm, iFastSum,
// the carry-propagating Neal accumulators, and the non-exact baselines),
// plus a process-wide registry that the public API, the benchmark harness,
// and the command-line tools enumerate instead of hard-coding strategy
// lists.
//
// The package is dependency-free by design: implementations live next to
// the algorithms they wrap (internal/core, internal/baseline) and register
// themselves in init, so importing either of those packages populates the
// registry without an import cycle. See DESIGN.md §2 for the layer map.
package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Caps are an engine's capability flags. They are declarative contracts,
// enforced by the conformance suite in this package's external tests:
// a CorrectlyRounded engine must be bit-identical to the math/big oracle
// on every input, a Faithful engine must pass the oracle's faithfulness
// check, and a DeterministicParallel engine must return bit-identical
// results for every worker count, chunk size, and merge order.
type Caps struct {
	// Exact: the accumulation itself is error-free (the full sum is held
	// exactly until a single final rounding).
	Exact bool
	// CorrectlyRounded: the result is the round-to-nearest-even value of
	// the exact sum.
	CorrectlyRounded bool
	// Faithful: the result is a faithful rounding of the exact sum (one of
	// the two floats bracketing it; implied by CorrectlyRounded).
	Faithful bool
	// DeterministicParallel: partial accumulators merge exactly, so
	// parallel summation is bit-identical for every worker count and
	// merge order.
	DeterministicParallel bool
	// Streaming: NewAccumulator returns a usable streaming accumulator.
	Streaming bool
	// Invertible: the exact sum is a group, not just a monoid — the
	// engine's accumulators implement Inverter, so deletion is as exact as
	// insertion: a.Add(b); a.Sub(b) restores a's rounded bits exactly, and
	// likewise for SubAccumulator. Implies Streaming. The signed-digit
	// superaccumulator engines all qualify; no compensated scheme can
	// (a correction term cannot be un-absorbed).
	Invertible bool
}

// Accumulator is a streaming partial sum owned by one goroutine. Merge
// panics if o was produced by a different engine (mixing representations
// is a programming error, like the width mismatches internal/accum
// panics on).
type Accumulator interface {
	Add(x float64)
	AddSlice(xs []float64)
	Merge(o Accumulator)
	Round() float64
	Reset()
	Clone() Accumulator
}

// Inverter is the exact-deletion surface of an Invertible engine's
// accumulators. Sub deletes a previously added value (for non-finite
// values this removes the summand from the tracked multiset — it is not
// Add(−x)); SubAccumulator deletes everything a previously merged
// accumulator holds. Both are exact: rounding still happens only at Round,
// so add/sub histories that represent the same multiset round to the same
// bits regardless of order or interleaving. SubAccumulator panics if o was
// produced by a different engine, like Merge.
type Inverter interface {
	Sub(x float64)
	SubSlice(xs []float64)
	SubAccumulator(o Accumulator)
}

// Rounder32 is implemented by accumulators that can round their exact sum
// directly to binary32, avoiding the double rounding of
// float32(Round()).
type Rounder32 interface {
	Round32() float32
}

// Adder32 is implemented by accumulators with a native float32 bulk path:
// AddSlice32 accumulates every element exactly (each binary32 value is
// exactly representable in the accumulator), bit-identical to widening
// each element and calling Add, without materializing a float64 copy.
// SubSlice32 is its group inverse on Invertible engines.
type Adder32 interface {
	AddSlice32(xs []float32)
	SubSlice32(xs []float32)
}

// SigmaCounter is implemented by accumulators that can report σ — the
// number of active superaccumulator components — for diagnostics.
type SigmaCounter interface {
	Sigma() int
}

// Engine is one summation strategy: a one-shot sum, an optional streaming
// accumulator factory, and the capability flags that let callers route
// workloads (exactness requirements, parallelizability) without knowing
// the concrete algorithm.
type Engine interface {
	// Name is the registry key, stable across releases ("dense",
	// "ifastsum", ...).
	Name() string
	// Doc is a one-line human description for listings.
	Doc() string
	// Caps reports the engine's capability flags.
	Caps() Caps
	// Sum returns the engine's sum of xs in one shot.
	Sum(xs []float64) float64
	// NewAccumulator returns a fresh streaming accumulator, or nil when
	// Caps().Streaming is false.
	NewAccumulator() Accumulator
}

// spec is the ready-made Engine implementation used by New.
type spec struct {
	name string
	doc  string
	caps Caps
	sum  func([]float64) float64
	acc  func() Accumulator
}

func (s *spec) Name() string             { return s.name }
func (s *spec) Doc() string              { return s.doc }
func (s *spec) Caps() Caps               { return s.caps }
func (s *spec) Sum(xs []float64) float64 { return s.sum(xs) }

func (s *spec) NewAccumulator() Accumulator {
	if s.acc == nil {
		return nil
	}
	return s.acc()
}

// New builds an Engine from its parts; acc may be nil for non-streaming
// engines (caps.Streaming must agree).
func New(name, doc string, caps Caps, sum func([]float64) float64, acc func() Accumulator) Engine {
	if name == "" || sum == nil {
		panic("engine: New requires a name and a Sum function")
	}
	if caps.Streaming != (acc != nil) {
		panic(fmt.Sprintf("engine %q: Streaming flag (%v) disagrees with accumulator factory", name, caps.Streaming))
	}
	if caps.Invertible {
		if acc == nil {
			panic(fmt.Sprintf("engine %q: Invertible requires a streaming accumulator", name))
		}
		if _, ok := acc().(Inverter); !ok {
			panic(fmt.Sprintf("engine %q: Invertible flag set but accumulator does not implement Inverter", name))
		}
	}
	if caps.CorrectlyRounded {
		caps.Faithful = true // correct rounding implies faithful rounding
	}
	return &spec{name: name, doc: doc, caps: caps, sum: sum, acc: acc}
}

var (
	mu       sync.RWMutex
	registry = map[string]Engine{}
)

// Register adds e to the process-wide registry. It panics on a duplicate
// name: engines register from init functions, so a collision is a build
// mistake, not a runtime condition.
func Register(e Engine) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", e.Name()))
	}
	registry[e.Name()] = e
}

// Get returns the engine registered under name.
func Get(name string) (Engine, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// MustGet is Get, panicking with the list of known names when name is not
// registered.
func MustGet(name string) Engine {
	if e, ok := Get(name); ok {
		return e
	}
	panic(fmt.Sprintf("engine: unknown engine %q (registered: %v)", name, Names()))
}

// Names returns the sorted names of all registered engines.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all registered engines, sorted by name.
func All() []Engine {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Engine, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
