// Metamorphic/property suite for the algebraic laws the exact engines
// promise. The capability flags are contracts about the *value semantics*
// of summation, so each law below must hold at the rounded-bits level:
//
//   - permutation invariance: an Exact or CorrectlyRounded sum depends
//     only on the input multiset, never on its order;
//   - sign-flip antisymmetry: Sum(−xs) is the negation of Sum(xs)
//     (round-to-nearest-even is symmetric about zero; exact zero sums
//     normalize to +0 by the library's convention);
//   - power-of-two scaling invariance: Sum(xs·2^k) = Sum(xs)·2^k when the
//     scaling over/underflows nothing (multiplying by 2^k is exact);
//   - the group laws of Invertible engines: a+b−b == a bit-for-bit,
//     whether b is deleted value-by-value, as a slice, or as a whole
//     accumulator — in any interleaving, including non-finite values and
//     over-deletion (sub before add).
//
// Inputs come from the adversarial generators in internal/gen plus the
// conformance suite's hand-built specials.
package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/gen"
)

// lawDatasets are the generator-driven inputs the laws run on. Deltas stay
// ≤ 600 so the scaling law's 2^k factors cannot push any value (or any
// rounded sum) out of the exact-scaling range.
func lawDatasets() map[string][]float64 {
	out := map[string][]float64{}
	for _, d := range gen.AllDists {
		for _, delta := range []int{40, 600} {
			xs := gen.New(gen.Config{Dist: d, N: 2500, Delta: delta, Seed: uint64(7 + delta)}).Slice()
			out[fmt.Sprintf("%s-δ%d", d, delta)] = xs
		}
	}
	return out
}

// negExpected returns the expected value of −v under the library's
// rounding conventions: exact zero sums are +0, and NaN stays NaN.
func negExpected(v float64) float64 {
	if v == 0 || math.IsNaN(v) {
		return v
	}
	return -v
}

func shuffled(xs []float64, seed int64) []float64 {
	out := append([]float64(nil), xs...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}

func negated(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}

func scaled(xs []float64, k int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Ldexp(x, k)
	}
	return out
}

// exactLawEngines returns every engine whose capability flags promise
// multiset value semantics (Exact or CorrectlyRounded).
func exactLawEngines() []engine.Engine {
	var out []engine.Engine
	for _, e := range engine.All() {
		if c := e.Caps(); c.Exact || c.CorrectlyRounded {
			out = append(out, e)
		}
	}
	return out
}

// TestLawPermutationInvariance: the sum of any permutation of the input is
// bit-identical.
func TestLawPermutationInvariance(t *testing.T) {
	for _, e := range exactLawEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			for name, xs := range lawDatasets() {
				want := e.Sum(xs)
				for seed := int64(1); seed <= 3; seed++ {
					if got := e.Sum(shuffled(xs, seed)); !bitEqual(got, want) {
						t.Fatalf("%s seed %d: %x != %x", name, seed,
							math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		})
	}
}

// TestLawSignFlipAntisymmetry: Sum(−xs) == −Sum(xs) at the bits level
// (with the +0 convention for exact zero sums). Also exercised on the
// conformance suite's specials cases, where −NaN must stay NaN and
// infinities must swap.
func TestLawSignFlipAntisymmetry(t *testing.T) {
	for _, e := range exactLawEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			run := func(name string, xs []float64) {
				want := negExpected(e.Sum(xs))
				if got := e.Sum(negated(xs)); !bitEqual(got, want) {
					t.Fatalf("%s: Sum(-xs)=%x, want %x", name,
						math.Float64bits(got), math.Float64bits(want))
				}
			}
			for name, xs := range lawDatasets() {
				run(name, xs)
			}
			for _, tc := range adversarialCases() {
				run(tc.name, tc.xs)
			}
		})
	}
}

// TestLawPowerOfTwoScaling: Sum(xs·2^k) == Sum(xs)·2^k bitwise, for scale
// factors that keep every value and the rounded sum inside the range where
// multiplication by 2^k is exact.
func TestLawPowerOfTwoScaling(t *testing.T) {
	for _, e := range exactLawEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			for name, xs := range lawDatasets() {
				base := e.Sum(xs)
				for _, k := range []int{-12, -1, 1, 12} {
					want := math.Ldexp(base, k)
					if got := e.Sum(scaled(xs, k)); !bitEqual(got, want) {
						t.Fatalf("%s k=%d: %x != %x", name, k,
							math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		})
	}
}

// invertibleEngines returns every engine declaring the Invertible
// capability, asserting the declared contract (accumulators implement
// Inverter) on the way.
func invertibleEngines(t *testing.T) []engine.Engine {
	t.Helper()
	var out []engine.Engine
	n := 0
	for _, e := range engine.All() {
		caps := e.Caps()
		if !caps.Invertible {
			if caps.Streaming {
				if _, ok := e.NewAccumulator().(engine.Inverter); ok {
					t.Errorf("engine %q implements Inverter but does not declare Invertible", e.Name())
				}
			}
			continue
		}
		n++
		if !caps.Streaming {
			t.Fatalf("engine %q: Invertible without Streaming", e.Name())
		}
		if _, ok := e.NewAccumulator().(engine.Inverter); !ok {
			t.Fatalf("engine %q: Invertible but accumulator lacks Inverter", e.Name())
		}
		out = append(out, e)
	}
	if n < 4 {
		t.Fatalf("only %d invertible engines registered, want the 4 superaccumulator engines", n)
	}
	return out
}

// lawGroupCases builds (a, b) input pairs for the group law, from benign
// to hostile: generated data, massive cancellation, and non-finite values
// in the deleted half.
func lawGroupCases() []struct {
	name string
	a, b []float64
} {
	r := gen.New(gen.Config{Dist: gen.Random, N: 800, Delta: 1500, Seed: 3}).Slice()
	z := gen.New(gen.Config{Dist: gen.SumZero, N: 800, Delta: 1500, Seed: 4}).Slice()
	return []struct {
		name string
		a, b []float64
	}{
		{"random", r[:400], r[400:]},
		{"sumzero", z[:400], z[400:]},
		{"cancelling-b", []float64{1, 0x1p-1074, -1e300}, []float64{math.MaxFloat64, -math.MaxFloat64, 1e300}},
		{"specials-b", []float64{1.5, -2.5}, []float64{math.Inf(1), math.NaN(), math.Inf(-1), 3}},
		{"specials-both", []float64{math.Inf(1), 1}, []float64{math.Inf(-1), math.NaN()}},
		{"empty-a", nil, r[:100]},
		{"empty-b", r[:100], nil},
	}
}

// TestLawGroupAddSubValues: a + b − b == a bitwise when b is deleted
// value-by-value, in forward, reverse, and shuffled order, interleaved or
// not with a's accumulation.
func TestLawGroupAddSubValues(t *testing.T) {
	for _, e := range invertibleEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range lawGroupCases() {
				want := e.Sum(tc.a)

				// Forward deletion after everything accumulated.
				acc := e.NewAccumulator()
				acc.AddSlice(tc.a)
				acc.AddSlice(tc.b)
				inv := acc.(engine.Inverter)
				for _, x := range tc.b {
					inv.Sub(x)
				}
				if got := acc.Round(); !bitEqual(got, want) {
					t.Fatalf("%s forward: %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}

				// Shuffled deletion order.
				acc = e.NewAccumulator()
				acc.AddSlice(tc.b)
				acc.AddSlice(tc.a)
				inv = acc.(engine.Inverter)
				for _, x := range shuffled(tc.b, 11) {
					inv.Sub(x)
				}
				if got := acc.Round(); !bitEqual(got, want) {
					t.Fatalf("%s shuffled: %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}

				// SubSlice must equal the element-wise loop.
				acc = e.NewAccumulator()
				acc.AddSlice(tc.a)
				acc.AddSlice(tc.b)
				acc.(engine.Inverter).SubSlice(tc.b)
				if got := acc.Round(); !bitEqual(got, want) {
					t.Fatalf("%s SubSlice: %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}

				// Over-deletion first: a − b + b == a too (the group is
				// abelian; negative intermediate multiplicities are fine).
				acc = e.NewAccumulator()
				acc.AddSlice(tc.a)
				acc.(engine.Inverter).SubSlice(tc.b)
				acc.AddSlice(tc.b)
				if got := acc.Round(); !bitEqual(got, want) {
					t.Fatalf("%s sub-first: %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}
			}
		})
	}
}

// TestLawGroupSubAccumulator: a.Merge(b) then a.SubAccumulator(b) restores
// a bitwise, and b is left unchanged.
func TestLawGroupSubAccumulator(t *testing.T) {
	for _, e := range invertibleEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range lawGroupCases() {
				want := e.Sum(tc.a)
				a, b := e.NewAccumulator(), e.NewAccumulator()
				a.AddSlice(tc.a)
				b.AddSlice(tc.b)
				bWant := b.Round()

				a.Merge(b)
				a.(engine.Inverter).SubAccumulator(b)
				if got := a.Round(); !bitEqual(got, want) {
					t.Fatalf("%s: merge+subacc %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}
				if got := b.Round(); !bitEqual(got, bWant) {
					t.Fatalf("%s: SubAccumulator mutated its argument: %x != %x",
						tc.name, math.Float64bits(got), math.Float64bits(bWant))
				}

				// Repeating the cycle keeps working (state, not luck).
				a.Merge(b)
				a.(engine.Inverter).SubAccumulator(b)
				if got := a.Round(); !bitEqual(got, want) {
					t.Fatalf("%s: second cycle %x != %x", tc.name, math.Float64bits(got), math.Float64bits(want))
				}
			}
		})
	}
}

// TestLawSubIsDeletionNotAddNeg pins the deletion semantics for
// non-finite values: Sub(+Inf) removes a previously added +Inf (restoring
// the prior state), which is different from Add(−Inf) (which poisons the
// sum to NaN).
func TestLawSubIsDeletionNotAddNeg(t *testing.T) {
	for _, e := range invertibleEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			acc := e.NewAccumulator()
			acc.Add(1)
			acc.Add(math.Inf(1))
			acc.(engine.Inverter).Sub(math.Inf(1))
			if got := acc.Round(); got != 1 {
				t.Fatalf("Add(+Inf);Sub(+Inf) left %g, want 1", got)
			}
			acc.Add(math.Inf(1))
			acc.Add(math.Inf(-1))
			if got := acc.Round(); !math.IsNaN(got) {
				t.Fatalf("opposing infinities: %g, want NaN", got)
			}
			acc.(engine.Inverter).Sub(math.Inf(-1))
			if got := acc.Round(); !math.IsInf(got, 1) {
				t.Fatalf("after deleting -Inf: %g, want +Inf", got)
			}
			acc.(engine.Inverter).Sub(math.Inf(1))
			if got := acc.Round(); got != 1 {
				t.Fatalf("after deleting +Inf: %g, want 1", got)
			}
			// NaN deletion round-trips too.
			acc.Add(math.NaN())
			if got := acc.Round(); !math.IsNaN(got) {
				t.Fatalf("NaN added: %g, want NaN", got)
			}
			acc.(engine.Inverter).Sub(math.NaN())
			if got := acc.Round(); got != 1 {
				t.Fatalf("after deleting NaN: %g, want 1", got)
			}
		})
	}
}
