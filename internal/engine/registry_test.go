package engine

import (
	"testing"
)

// sumNaive is a real (if inaccurate) summation so the test engines
// registered here stay harmless when the conformance suite in
// conformance_test.go enumerates the shared registry.
func sumNaive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestRegisterGetNames(t *testing.T) {
	e := New("test-registry-probe", "probe", Caps{}, sumNaive, nil)
	Register(e)
	got, ok := Get("test-registry-probe")
	if !ok || got.Name() != "test-registry-probe" || got.Doc() != "probe" {
		t.Fatalf("Get after Register: %v %v", got, ok)
	}
	if MustGet("test-registry-probe") != got {
		t.Fatal("MustGet disagrees with Get")
	}
	names := Names()
	found := false
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Names not strictly sorted: %v", names)
		}
		if n == "test-registry-probe" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered name missing from Names: %v", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All()=%d entries, Names()=%d", len(all), len(names))
	}
	for i, e := range all {
		if e.Name() != names[i] {
			t.Fatalf("All/Names order mismatch at %d: %s vs %s", i, e.Name(), names[i])
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(New("test-dup", "first", Caps{}, sumNaive, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(New("test-dup", "second", Caps{}, sumNaive, nil))
}

func TestMustGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on unknown name did not panic")
		}
	}()
	MustGet("test-no-such-engine")
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("test-no-such-engine"); ok {
		t.Fatal("Get returned ok for unknown name")
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { New("", "d", Caps{}, sumNaive, nil) })
	mustPanic("nil sum", func() { New("x", "d", Caps{}, nil, nil) })
	mustPanic("streaming flag without factory", func() {
		New("x", "d", Caps{Streaming: true}, sumNaive, nil)
	})
	mustPanic("factory without streaming flag", func() {
		New("x", "d", Caps{}, sumNaive, func() Accumulator { return nil })
	})
}

func TestCorrectlyRoundedImpliesFaithful(t *testing.T) {
	e := New("test-cr-implies-faithful", "d", Caps{CorrectlyRounded: true}, sumNaive, nil)
	if c := e.Caps(); !c.Faithful {
		t.Fatal("CorrectlyRounded engine must report Faithful")
	}
}

func TestNonStreamingAccumulatorIsNil(t *testing.T) {
	e := New("test-nonstreaming", "d", Caps{}, sumNaive, nil)
	if e.NewAccumulator() != nil {
		t.Fatal("non-streaming engine returned an accumulator")
	}
}
