// FuzzSubRoundTrip drives arbitrary add/delete interleavings through every
// Invertible engine and checks the result against a math/big oracle over
// the *net* multiset — the fuzz half of the group-law suite in
// laws_test.go. The oracle tracks non-finite multiplicities separately
// (deletion removes a summand; it is not addition of the negation), so
// specials, denormals, and over-deletion are all in the tested domain.
package engine_test

import (
	"encoding/binary"
	"math"
	"math/big"
	"testing"

	"parsum/internal/engine"
)

// opRecord is 9 bytes: 1 op byte (bit 0: 0 = add, 1 = sub) + 8 bytes of
// little-endian float64.
const opRecord = 9

// subOpsFromBytes decodes data into (op, value) pairs, capped so one
// execution stays fast.
func subOpsFromBytes(data []byte, max int) (subs []bool, vals []float64) {
	n := len(data) / opRecord
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		rec := data[i*opRecord:]
		subs = append(subs, rec[0]&1 == 1)
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(rec[1:])))
	}
	return subs, vals
}

// netOracle computes the correctly rounded value of the net multiset after
// the op sequence: Σ(finite adds) − Σ(finite subs) in 2200-bit arithmetic,
// with signed multiplicities for NaN/±Inf resolved the way the
// accumulators resolve them (present when the count is positive).
func netOracle(subs []bool, vals []float64) float64 {
	const prec = 2200
	s := new(big.Float).SetPrec(prec)
	var nan, pos, neg int64
	for i, x := range vals {
		sign := int64(1)
		if subs[i] {
			sign = -1
		}
		switch {
		case math.IsNaN(x):
			nan += sign
		case math.IsInf(x, 1):
			pos += sign
		case math.IsInf(x, -1):
			neg += sign
		default:
			v := new(big.Float).SetPrec(prec).SetFloat64(x)
			if sign < 0 {
				s.Sub(s, v)
			} else {
				s.Add(s, v)
			}
		}
	}
	switch {
	case nan > 0, pos > 0 && neg > 0:
		return math.NaN()
	case pos > 0:
		return math.Inf(1)
	case neg > 0:
		return math.Inf(-1)
	}
	f, _ := s.Float64()
	if f == 0 {
		return 0 // exact zero sums normalize to +0, like the engines
	}
	return f
}

// encodeOps builds a fuzz input from an op sequence, for seeding.
func encodeOps(subs []bool, vals []float64) []byte {
	data := make([]byte, 0, len(vals)*opRecord)
	for i, x := range vals {
		var op byte
		if subs[i] {
			op = 1
		}
		var b [opRecord]byte
		b[0] = op
		binary.LittleEndian.PutUint64(b[1:], math.Float64bits(x))
		data = append(data, b[:]...)
	}
	return data
}

func FuzzSubRoundTrip(f *testing.F) {
	// Seeds: cancellation with deletions, specials added and deleted in
	// interleaved orders, denormals, over-deletion, and the classic
	// a+b−b shape. The checked-in corpus under testdata/fuzz mirrors
	// these shapes with mutated values.
	f.Add(encodeOps(
		[]bool{false, false, true, false, true},
		[]float64{1e100, 1, 1e100, 0x1p-1074, 0x1p-1074}))
	f.Add(encodeOps(
		[]bool{false, true, false, true, false, true},
		[]float64{math.Inf(1), math.Inf(1), math.NaN(), math.NaN(), math.Inf(-1), math.Inf(-1)}))
	f.Add(encodeOps(
		[]bool{true, false, true, false},
		[]float64{math.MaxFloat64, math.MaxFloat64, 5e-324, 5e-324}))
	f.Add(encodeOps(
		[]bool{true, true, true},
		[]float64{1.5, math.Inf(1), 0x1p-1050})) // pure over-deletion
	f.Add(encodeOps(
		[]bool{false, false, false, true, true, true},
		[]float64{1, math.Ldexp(1, -600), math.Ldexp(1, 600), math.Ldexp(1, 600), math.Ldexp(1, -600), 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		subs, vals := subOpsFromBytes(data, 128)
		want := netOracle(subs, vals)
		for _, e := range engine.All() {
			if !e.Caps().Invertible {
				continue
			}
			// The interleaved sequence, exactly as decoded.
			acc := e.NewAccumulator()
			inv := acc.(engine.Inverter)
			for i, x := range vals {
				if subs[i] {
					inv.Sub(x)
				} else {
					acc.Add(x)
				}
			}
			if got := acc.Round(); !bitEqual(got, want) {
				t.Errorf("%s: interleaved ops = %g (bits %x), oracle %g (bits %x)",
					e.Name(), got, math.Float64bits(got), want, math.Float64bits(want))
			}

			// The same net multiset through SubAccumulator: adds into one
			// accumulator, deletions into another, subtracted wholesale.
			adds, dels := e.NewAccumulator(), e.NewAccumulator()
			for i, x := range vals {
				if subs[i] {
					dels.Add(x)
				} else {
					adds.Add(x)
				}
			}
			adds.(engine.Inverter).SubAccumulator(dels)
			if got := adds.Round(); !bitEqual(got, want) {
				t.Errorf("%s: SubAccumulator route = %g (bits %x), oracle %g (bits %x)",
					e.Name(), got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	})
}
