package engine_test

import (
	"errors"
	"math"
	"testing"

	_ "parsum/internal/baseline" // register baseline engines
	_ "parsum/internal/core"     // register superaccumulator engines
	"parsum/internal/engine"
	"parsum/internal/oracle"
)

// wireEngines returns every registered engine whose partials can cross a
// process boundary. The four superaccumulator engines must all qualify —
// that set is the acceptance surface of the distributed subsystem.
func wireEngines(t *testing.T) []engine.Engine {
	t.Helper()
	var out []engine.Engine
	for _, e := range engine.All() {
		if engine.CanMarshal(e) {
			out = append(out, e)
		}
	}
	for _, want := range []string{"dense", "sparse", "small", "large"} {
		found := false
		for _, e := range out {
			if e.Name() == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("engine %q cannot marshal wire partials", want)
		}
	}
	return out
}

func TestPartialWireRoundTrip(t *testing.T) {
	for _, e := range wireEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			for _, tc := range adversarialCases() {
				acc := e.NewAccumulator()
				acc.AddSlice(tc.xs)
				want := acc.Round()

				blob, err := engine.MarshalPartial(e.Name(), acc)
				if err != nil {
					t.Fatalf("%s: marshal: %v", tc.name, err)
				}
				name, back, err := engine.UnmarshalPartial(blob)
				if err != nil {
					t.Fatalf("%s: unmarshal: %v", tc.name, err)
				}
				if name != e.Name() {
					t.Fatalf("%s: engine name %q round-tripped as %q", tc.name, e.Name(), name)
				}
				if got := back.Round(); !bitEqual(got, want) {
					t.Errorf("%s: wire round-trip=%g want=%g", tc.name, got, want)
				}
				// The decoded partial must merge exactly with local state.
				local := e.NewAccumulator()
				local.AddSlice(tc.xs)
				local.Merge(back)
				direct := e.NewAccumulator()
				direct.AddSlice(tc.xs)
				direct.AddSlice(tc.xs)
				if got, want := local.Round(), direct.Round(); !bitEqual(got, want) {
					t.Errorf("%s: merge of decoded partial=%g want=%g", tc.name, got, want)
				}
			}
		})
	}
}

// TestPartialWireSplitMergeMatchesOracle is the combiner→reducer story at
// the engine layer: partials of disjoint slices marshaled, decoded, and
// merged must reproduce the oracle bit-for-bit.
func TestPartialWireSplitMergeMatchesOracle(t *testing.T) {
	xs := make([]float64, 0, 4096)
	for i := 0; i < 1024; i++ {
		x := math.Ldexp(float64(i%257)-128, (i*37)%600-300)
		xs = append(xs, x, -x/3, x*1e-30, 1.0/float64(i+1))
	}
	for _, e := range wireEngines(t) {
		if !e.Caps().CorrectlyRounded {
			continue
		}
		root := e.NewAccumulator()
		for lo := 0; lo < len(xs); lo += 300 {
			hi := lo + 300
			if hi > len(xs) {
				hi = len(xs)
			}
			part := e.NewAccumulator()
			part.AddSlice(xs[lo:hi])
			blob, err := engine.MarshalPartial(e.Name(), part)
			if err != nil {
				t.Fatal(err)
			}
			_, dec, err := engine.UnmarshalPartial(blob)
			if err != nil {
				t.Fatal(err)
			}
			root.Merge(dec)
		}
		if got, want := root.Round(), oracle.Sum(xs); !bitEqual(got, want) {
			t.Errorf("%s: distributed merge=%g oracle=%g", e.Name(), got, want)
		}
	}
}

func TestPartialWireRejectsBadEnvelopes(t *testing.T) {
	e := engine.MustGet("dense")
	acc := e.NewAccumulator()
	acc.Add(1.25)
	blob, err := engine.MarshalPartial("dense", acc)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"nil", nil},
		{"short", []byte{0xC7, 1}},
		{"bad-magic", append([]byte{0x00}, blob[1:]...)},
		{"bad-version", append([]byte{0xC7, 9}, blob[2:]...)},
		{"zero-name-len", []byte{0xC7, 1, 0}},
		{"name-truncated", []byte{0xC7, 1, 10, 'd', 'e'}},
		{"unknown-engine", []byte{0xC7, 1, 7, 'n', 'o', '-', 's', 'u', 'c', 'h'}},
		{"non-streaming-engine", []byte{0xC7, 1, 8, 'i', 'f', 'a', 's', 't', 's', 'u', 'm'}},
		{"payload-garbage", append(append([]byte{}, blob[:8]...), 0xDE, 0xAD)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := engine.UnmarshalPartial(tc.data); err == nil {
				t.Fatalf("accepted % x", tc.data)
			}
		})
	}

	// Truncations at every prefix length error, never panic.
	for i := 0; i < len(blob); i++ {
		if _, _, err := engine.UnmarshalPartial(blob[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
}

func TestPartialWireRejectsCrossEngineWidthConfusion(t *testing.T) {
	// A width-16 dense blob re-tagged as a "dense" partial must be rejected:
	// the dense engine runs at the default width and a mismatched partial
	// could never merge with local accumulators.
	// (Constructed by marshaling at the accum layer via a width-16 window
	// is not reachable here; instead corrupt the width byte of a valid
	// payload and expect the inner codec or the engine check to reject.)
	e := engine.MustGet("dense")
	acc := e.NewAccumulator()
	acc.Add(3.5)
	blob, err := engine.MarshalPartial("dense", acc)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope: 3 bytes + "dense"; inner header width byte is at offset
	// 3+5+3.
	bad := append([]byte(nil), blob...)
	bad[3+5+3] = 16
	if _, _, err := engine.UnmarshalPartial(bad); err == nil {
		t.Fatal("width-confused dense partial accepted")
	}
}

func TestMarshalPartialErrors(t *testing.T) {
	e := engine.MustGet("dense")
	acc := e.NewAccumulator()
	if _, err := engine.MarshalPartial("", acc); !errors.Is(err, engine.ErrWireInvalid) {
		t.Errorf("empty name: err=%v", err)
	}
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := engine.MarshalPartial(string(long), acc); !errors.Is(err, engine.ErrWireInvalid) {
		t.Errorf("oversized name: err=%v", err)
	}
}
