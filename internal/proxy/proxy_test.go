package proxy_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parsum"
	"parsum/internal/chaos"
	"parsum/internal/proxy"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

// fleet is a test cluster: n sumd backends, each reachable directly
// (for oracle checks) and through a per-backend chaos injector (the
// proxy's view of it).
type fleet struct {
	names     []string
	direct    map[string]*sumdclient.Client
	injectors map[string]*chaos.Injector
}

func startFleet(t *testing.T, n int, opt sumdsrv.Options) *fleet {
	t.Helper()
	f := &fleet{
		direct:    map[string]*sumdclient.Client{},
		injectors: map[string]*chaos.Injector{},
	}
	for i := 0; i < n; i++ {
		srv, err := sumdsrv.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		f.names = append(f.names, hs.URL)
		f.direct[hs.URL] = sumdclient.New(hs.URL, hs.Client())
		// A quiet injector: no faults until a test partitions or arms it.
		f.injectors[hs.URL] = chaos.New(chaos.Options{Seed: uint64(i) + 1})
	}
	return f
}

// transport is the proxy Options.Transport seam routing each backend
// through its injector.
func (f *fleet) transport(backend string) http.RoundTripper { return f.injectors[backend] }

func newProxy(t *testing.T, f *fleet, mutate func(*proxy.Options)) (*proxy.Proxy, *httptest.Server) {
	t.Helper()
	opt := proxy.Options{
		Backends:    f.names,
		Timeout:     5 * time.Second,
		ReplayEvery: -1, // tests drive replay and repair explicitly
		Transport:   f.transport,
	}
	if mutate != nil {
		mutate(&opt)
	}
	p, err := proxy.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	hs := httptest.NewServer(p)
	t.Cleanup(hs.Close)
	return p, hs
}

// postAdd writes xs to key through the proxy and returns the response.
func postAdd(t *testing.T, base, key string, xs []float64, token string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(struct {
		Values []float64 `json:"values"`
	}{xs})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/add?key="+key, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Idempotency-Key", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drain(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestWriteReplicatesToAllReplicas(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	_, hs := newProxy(t, f, nil)

	xs := []float64{1e16, 3.25, -1e16, 0.125}
	want := math.Float64bits(parsum.Sum(xs))

	resp := postAdd(t, hs.URL, "alpha", xs, "")
	body := drain(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"acked":true`) || !strings.Contains(body, `"ok":3`) {
		t.Fatalf("ack response: %s", body)
	}

	for _, name := range f.names {
		v, ok, err := f.direct[name].SumKey(context.Background(), "alpha")
		if err != nil || !ok {
			t.Fatalf("%s: SumKey ok=%t err=%v", name, ok, err)
		}
		if got := math.Float64bits(v); got != want {
			t.Errorf("%s: bits %016x, want %016x", name, got, want)
		}
	}

	// The proxy's read agrees bit for bit.
	rr, err := http.Get(hs.URL + "/v1/sum?key=alpha")
	if err != nil {
		t.Fatal(err)
	}
	rb := drain(t, rr)
	if !strings.Contains(rb, fmt.Sprintf(`"bits":"%016x"`, want)) {
		t.Fatalf("proxy read: %s", rb)
	}
}

func TestWriteValidation(t *testing.T) {
	f := startFleet(t, 1, sumdsrv.Options{})
	_, hs := newProxy(t, f, nil)

	resp, err := http.Post(hs.URL+"/v1/add", "application/json", strings.NewReader(`{"values":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing key: %d, want 400", resp.StatusCode)
	}

	long := strings.Repeat("k", 5000)
	resp = postAdd(t, hs.URL, long, []float64{1}, "")
	if drain(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized key: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(hs.URL+"/v1/add?key=k", "application/json", strings.NewReader(`{"values":`))
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(hs.URL+"/v1/add?key=k", "application/octet-stream", strings.NewReader("12345"))
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged octet body: %d, want 400", resp.StatusCode)
	}
}

func TestReadFailover(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	p, hs := newProxy(t, f, nil)

	resp := postAdd(t, hs.URL, "k", []float64{2.5}, "")
	if drain(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d", resp.StatusCode)
	}

	replicas := p.Ring().Replicas("k", p.Replication())
	f.injectors[replicas[0]].Partition()

	rr, err := http.Get(hs.URL + "/v1/sum?key=k")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, rr)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("failover read: %d %s", rr.StatusCode, body)
	}
	if strings.Contains(body, fmt.Sprintf("%q", replicas[0])) {
		t.Fatalf("read served by the partitioned primary: %s", body)
	}

	// Unknown key on a live fleet is a 404, not a 503.
	rr, err = http.Get(hs.URL + "/v1/sum?key=nope")
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, rr); rr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: %d, want 404", rr.StatusCode)
	}

	// All replicas dark: 503.
	for _, name := range replicas {
		f.injectors[name].Partition()
	}
	rr, err = http.Get(hs.URL + "/v1/sum?key=k")
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, rr); rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("dark fleet read: %d, want 503", rr.StatusCode)
	}
}

func TestAckModes(t *testing.T) {
	for _, tc := range []struct {
		mode       string
		partitions int
		wantAck    bool
	}{
		{proxy.AckQuorum, 1, true},
		{proxy.AckQuorum, 2, false},
		{proxy.AckAll, 1, false},
		{proxy.AckOne, 2, true},
	} {
		t.Run(fmt.Sprintf("%s_%ddown", tc.mode, tc.partitions), func(t *testing.T) {
			f := startFleet(t, 3, sumdsrv.Options{})
			_, hs := newProxy(t, f, func(o *proxy.Options) { o.AckMode = tc.mode })
			for i := 0; i < tc.partitions; i++ {
				f.injectors[f.names[i]].Partition()
			}
			resp := postAdd(t, hs.URL, "k", []float64{1}, "")
			body := drain(t, resp)
			if tc.wantAck && resp.StatusCode != http.StatusOK {
				t.Fatalf("want ack, got %d %s", resp.StatusCode, body)
			}
			if !tc.wantAck && resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("want 503, got %d %s", resp.StatusCode, body)
			}
		})
	}
}

func TestHintedHandoffReplaysAfterHeal(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	// Background replay on a tight loop; repair stays manual.
	p, hs := newProxy(t, f, func(o *proxy.Options) { o.ReplayEvery = 5 * time.Millisecond })

	down := f.names[2]
	f.injectors[down].Partition()

	xs := []float64{0.1, 0.2, 0.7}
	want := math.Float64bits(parsum.Sum(xs))
	resp := postAdd(t, hs.URL, "h", xs, "")
	body := drain(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"hinted":1`) {
		t.Fatalf("add: %d %s (want acked with one hint)", resp.StatusCode, body)
	}
	if _, ok, _ := f.direct[down].SumKey(context.Background(), "h"); ok {
		t.Fatal("partitioned backend saw the write")
	}

	f.injectors[down].Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := f.direct[down].SumKey(context.Background(), "h")
		if err == nil && ok {
			if got := math.Float64bits(v); got != want {
				t.Fatalf("replayed bits %016x, want %016x", got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hint never replayed after heal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = p
}

func TestRepairRestoresWipedReplica(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	p, hs := newProxy(t, f, nil)

	keys := []string{"a", "b", "c", "d", "e"}
	oracle := map[string]uint64{}
	for i, k := range keys {
		xs := []float64{float64(i) + 0.5, 1e-30, -0.25}
		oracle[k] = math.Float64bits(parsum.Sum(xs))
		resp := postAdd(t, hs.URL, k, xs, "")
		if drain(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("add %s: %d", k, resp.StatusCode)
		}
	}

	// Wipe one backend outright — kill -9 plus lost disk, in effect.
	wiped := f.names[1]
	if err := f.direct[wiped].Reset(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ks, _ := f.direct[wiped].Keys(context.Background(), "", ""); len(ks) != 0 {
		t.Fatalf("reset left keys: %v", ks)
	}

	stats := p.RepairNow(context.Background())
	if stats.Errors > 0 || len(stats.Unreachable) > 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if stats.Diffs == 0 {
		t.Fatalf("repair pushed no diffs: %+v", stats)
	}

	for _, name := range f.names {
		for _, k := range keys {
			v, ok, err := f.direct[name].SumKey(context.Background(), k)
			if err != nil || !ok {
				t.Fatalf("%s %s: ok=%t err=%v", name, k, ok, err)
			}
			if got := math.Float64bits(v); got != oracle[k] {
				t.Errorf("%s %s: bits %016x, want %016x", name, k, got, oracle[k])
			}
		}
	}

	// A second round finds nothing to fix.
	stats = p.RepairNow(context.Background())
	if stats.Diffs != 0 || stats.Skipped != 0 {
		t.Fatalf("second round not a no-op: %+v", stats)
	}
}

func TestTopologyEndpoint(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	_, hs := newProxy(t, f, nil)

	rr, err := http.Get(hs.URL + "/v1/topology?key=zeta")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Nodes       []string          `json:"nodes"`
		Replication int               `json:"replication"`
		AckMode     string            `json:"ack_mode"`
		NeedAcks    int               `json:"need_acks"`
		Breakers    map[string]string `json:"breakers"`
		Replicas    []string          `json:"replicas"`
	}
	if err := json.Unmarshal([]byte(drain(t, rr)), &topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || topo.Replication != 3 || topo.AckMode != "quorum" || topo.NeedAcks != 2 {
		t.Fatalf("topology: %+v", topo)
	}
	if len(topo.Replicas) != 3 {
		t.Fatalf("key replicas: %v", topo.Replicas)
	}
	for name, st := range topo.Breakers {
		if st != "closed" {
			t.Errorf("breaker %s = %s, want closed", name, st)
		}
	}
}

func TestMetricsAndHealth(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	_, hs := newProxy(t, f, nil)

	resp := postAdd(t, hs.URL, "m", []float64{1, 2}, "")
	drain(t, resp)
	rr, err := http.Get(hs.URL + "/v1/sum?key=m")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rr)

	rr, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, rr)
	for _, want := range []string{
		"sumproxy_up 1",
		"sumproxy_backends 3",
		"sumproxy_writes_total 1",
		"sumproxy_writes_acked_total 1",
		`sumproxy_write_legs_total{outcome="ok"} 3`,
		"sumproxy_reads_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	rr, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body = drain(t, rr); rr.StatusCode != http.StatusOK || !strings.Contains(body, `"live":3`) {
		t.Errorf("healthz: %d %s", rr.StatusCode, body)
	}
	rr, err = http.Get(hs.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if drain(t, rr); rr.StatusCode != http.StatusOK {
		t.Errorf("readyz: %d", rr.StatusCode)
	}
}

func TestReadyzDegradesWhenFleetDies(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	_, hs := newProxy(t, f, func(o *proxy.Options) {
		o.BreakerThreshold = 1
		o.BreakerCooldown = time.Minute
	})
	for _, name := range f.names {
		f.injectors[name].Partition()
	}
	// One failed write opens every breaker (threshold 1).
	resp := postAdd(t, hs.URL, "k", []float64{1}, "")
	if drain(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dark write: %d, want 503", resp.StatusCode)
	}
	rr, err := http.Get(hs.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := drain(t, rr); rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %d %s", rr.StatusCode, body)
	}
	rr, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := drain(t, rr); !strings.Contains(body, `"live":0`) {
		t.Fatalf("healthz live count: %s", body)
	}
}

func TestIdempotentProxyRetry(t *testing.T) {
	f := startFleet(t, 3, sumdsrv.Options{})
	_, hs := newProxy(t, f, nil)

	xs := []float64{4.25}
	want := math.Float64bits(parsum.Sum(xs))
	token := sumdclient.NewIdemToken()
	// The same logical write delivered three times end to end — one
	// application on every replica.
	for i := 0; i < 3; i++ {
		resp := postAdd(t, hs.URL, "idem", xs, token)
		if drain(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: %d", i, resp.StatusCode)
		}
	}
	for _, name := range f.names {
		v, ok, err := f.direct[name].SumKey(context.Background(), "idem")
		if err != nil || !ok {
			t.Fatalf("%s: ok=%t err=%v", name, ok, err)
		}
		if got := math.Float64bits(v); got != want {
			t.Errorf("%s: bits %016x, want %016x (write applied more than once?)", name, got, want)
		}
	}
}

func TestProxyNewValidation(t *testing.T) {
	if _, err := proxy.New(proxy.Options{}); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := proxy.New(proxy.Options{Backends: []string{"http://x"}, AckMode: "most"}); err == nil {
		t.Error("unknown ack mode accepted")
	}
	if _, err := proxy.New(proxy.Options{Backends: []string{"http://x"}, Engine: "no-such"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := proxy.New(proxy.Options{Backends: []string{"http://x"}, Engine: "kahan"}); err == nil {
		t.Error("non-invertible engine accepted")
	}
}
