package proxy_test

// The chaos gauntlet: the whole replicated write path driven through
// seeded fault injectors, then checked against the exact oracle. The
// invariants under test are the system's two promises:
//
//  1. No acked write is lost — every logical write a writer got a 200
//     for is in the final per-key sums.
//  2. After heal + repair, every replica's per-key sum is bit-identical
//     to summing that key's values sequentially (the parsum oracle).
//
// Writers behave like correct clients: one idempotency token per
// logical write, retried until acked. Everything else — drops, resets
// (applied but unacked), 5xx bursts, latency, a mid-run partition — is
// the injectors' business.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"parsum"
	"parsum/internal/chaos"
	"parsum/internal/proxy"
	"parsum/internal/sumdsrv"
)

func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gauntlet is seconds-long; skipped in -short")
	}
	cases := []struct {
		name      string
		seed      uint64
		async     bool
		partition bool // partition one backend mid-run, heal before repair
	}{
		{"sync_seed1", 1, false, false},
		{"sync_seed2_partition", 2, false, true},
		{"async_seed3", 3, true, false},
		{"async_seed4_partition", 4, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runGauntlet(t, tc.seed, tc.async, tc.partition)
		})
	}
}

func runGauntlet(t *testing.T, seed uint64, async, partition bool) {
	opt := sumdsrv.Options{}
	if async {
		opt.Async = true
		opt.QueueLen = 256
		opt.MaxBatch = 64
		opt.MaxDelay = time.Millisecond
	}
	f := startFleet(t, 3, opt)
	// Re-arm each backend's injector with a real fault mix. Distinct
	// seeds per backend keep their schedules uncorrelated.
	for i, name := range f.names {
		f.injectors[name] = chaos.New(chaos.Options{
			Seed:     seed*100 + uint64(i),
			PDrop:    0.08,
			PReset:   0.04,
			P5xx:     0.08,
			PLatency: 0.10,
			Latency:  2 * time.Millisecond,
			BurstLen: 2,
		})
	}
	p, hs := newProxy(t, f, func(o *proxy.Options) {
		o.Timeout = 2 * time.Second
		o.BreakerThreshold = 4
		o.BreakerCooldown = 20 * time.Millisecond
		o.ReplayEvery = 10 * time.Millisecond
	})

	const (
		writers         = 4
		writesPerWriter = 20
		keyspace        = 6
		maxRetries      = 300
		retryBackoff    = 2 * time.Millisecond
	)

	// Oracle: every acked write's values, per key. Order is irrelevant —
	// exact summation is commutative.
	var (
		mu     sync.Mutex
		oracle = map[string][]float64{}
	)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWriter; i++ {
				key := fmt.Sprintf("k%d", (w*writesPerWriter+i)%keyspace)
				// Values with real cancellation so an approximate sum
				// would get the bits wrong.
				xs := []float64{1e16, float64(w) + 0.5, -1e16, float64(i) * 0.0625}
				token := fmt.Sprintf("gauntlet-%d-%d-%d", seed, w, i)
				acked := false
				for try := 0; try < maxRetries; try++ {
					resp := postAdd(t, hs.URL, key, xs, token)
					code := resp.StatusCode
					drain(t, resp)
					if code == http.StatusOK {
						acked = true
						break
					}
					time.Sleep(retryBackoff)
				}
				if !acked {
					t.Errorf("writer %d write %d never acked", w, i)
					return
				}
				mu.Lock()
				oracle[key] = append(oracle[key], xs...)
				mu.Unlock()
			}
		}(w)
	}

	if partition {
		// Cut one backend off mid-ingest; its acked writes ride hints
		// and repair.
		time.Sleep(20 * time.Millisecond)
		f.injectors[f.names[1]].Partition()
		time.Sleep(50 * time.Millisecond)
		f.injectors[f.names[1]].Heal()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce the faults, heal any partition, and converge.
	for _, name := range f.names {
		f.injectors[name].Quiesce()
		f.injectors[name].Heal()
	}
	// A backend's breaker can still be inside its cooldown right after
	// heal, so a single round may find it "unreachable" — exactly the
	// case the background repair loop handles by running again. Converge
	// the same way: rounds until one comes back clean.
	var stats proxy.RepairStats
	clean := false
	for round := 0; round < 50 && !clean; round++ {
		stats = p.RepairNow(context.Background())
		clean = len(stats.Unreachable) == 0 && stats.Errors == 0
		if !clean {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !clean {
		t.Fatalf("repair never converged after heal: %+v", stats)
	}

	// Every replica, every key: bit-identical to the exact oracle.
	for key, xs := range oracle {
		want := math.Float64bits(parsum.Sum(xs))
		for _, name := range f.names {
			v, ok, err := f.direct[name].SumKey(context.Background(), key)
			if err != nil || !ok {
				t.Fatalf("%s %s: ok=%t err=%v", name, key, ok, err)
			}
			if got := math.Float64bits(v); got != want {
				t.Errorf("%s %s: bits %016x, want %016x (%d values)", name, key, got, want, len(xs))
			}
		}
	}

	// The injectors did inject: a gauntlet that saw no faults proves
	// nothing.
	var faults int64
	for _, name := range f.names {
		c := f.injectors[name].Counts()
		faults += c.Drops + c.Resets + c.Errs5xx + c.Partitioned
	}
	if faults == 0 {
		t.Error("no faults injected — the gauntlet ran on a calm sea")
	}
}
