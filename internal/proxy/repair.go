package proxy

// Hinted handoff and anti-entropy repair: the two convergence
// mechanisms behind the write path. Hints are the fast path — a failed
// replica leg of an acked write is redelivered (same token, same
// envelope) when the backend returns. Repair is the backstop that
// needs no memory of what was missed: majority-vote every key's bits
// across its replicas and push dissenters the exact group difference.

import (
	"context"
	"math"
	"time"

	"parsum"
	"parsum/internal/engine"
	"parsum/internal/keyed"
	"parsum/internal/sumdclient"
)

// enqueueHint queues one failed-but-acked leg for redelivery. At the
// cap the oldest hint drops (counted): repair reconverges whatever the
// queue forgets, so bounded memory wins over perfect redelivery.
func (p *Proxy) enqueueHint(conn *backendConn, token string, blob []byte) {
	dropped := false
	conn.mu.Lock()
	if len(conn.hints) >= p.hintCap {
		conn.hints = conn.hints[1:]
		conn.dropped++
		dropped = true
	}
	conn.hints = append(conn.hints, hint{token: token, blob: blob})
	conn.mu.Unlock()
	p.mu.Lock()
	p.c.hintsQueued++
	if dropped {
		p.c.hintsDropped++
	}
	p.mu.Unlock()
}

// replayConn delivers conn's queued hints in order, stopping at the
// first failure (the backend is still down — keep the rest for the
// next round). Caller holds p.cut (shared or exclusive).
func (p *Proxy) replayConn(ctx context.Context, conn *backendConn) int {
	played := 0
	for {
		conn.mu.Lock()
		if len(conn.hints) == 0 {
			conn.mu.Unlock()
			break
		}
		h := conn.hints[0]
		conn.mu.Unlock()
		// The push rides the hint's original token, so a hint racing a
		// client retry of the same write deduplicates on the backend.
		if _, err := conn.c.PushKeyedIdem(ctx, h.token, h.blob); err != nil {
			break
		}
		conn.mu.Lock()
		// The queue only grows at the tail; head slot 0 is still h.
		conn.hints = conn.hints[1:]
		conn.mu.Unlock()
		played++
	}
	if played > 0 {
		p.mu.Lock()
		p.c.hintsPlayed += int64(played)
		p.mu.Unlock()
	}
	return played
}

// replayLoop retries queued hints in the background. Open breakers are
// skipped — State() flips to half-open when the cooldown lapses, and
// the replay push doubles as the probe.
func (p *Proxy) replayLoop(every time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.cut.RLock()
			for _, name := range p.order {
				conn := p.backends[name]
				if conn.br.State() == sumdclient.BreakerOpen {
					continue
				}
				p.replayConn(context.Background(), conn)
			}
			p.cut.RUnlock()
		case <-p.stop:
			return
		}
	}
}

func (p *Proxy) repairLoop(every time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.RepairNow(context.Background())
		case <-p.stop:
			return
		}
	}
}

// RepairStats summarizes one anti-entropy round.
type RepairStats struct {
	Backends     int      `json:"backends"`
	Unreachable  []string `json:"unreachable,omitempty"` // backends whose state could not be pulled
	HintsFlushed int      `json:"hints_flushed"`
	Keys         int      `json:"keys"`    // distinct keys examined
	Diffs        int      `json:"diffs"`   // correction partials pushed
	Skipped      int      `json:"skipped"` // keys without a reachable majority
	Errors       int      `json:"errors"`  // failed pulls and pushes
}

// replicaView is one backend's clone of one key (nil acc = the backend
// lacks the key).
type replicaView struct {
	name string
	acc  engine.Accumulator
}

// vote is the equality class a replica's state falls into: presence
// plus the correctly rounded bits. Voting on Round() matches the
// system's observable: two replicas agree exactly when their exact
// group elements are equal, and the rounded bits of the exact sum are
// the bit-identity the acceptance oracle checks.
type vote struct {
	present bool
	bits    uint64
}

func viewVote(v replicaView) vote {
	if v.acc == nil {
		return vote{}
	}
	return vote{present: true, bits: math.Float64bits(v.acc.Round())}
}

// RepairNow runs one anti-entropy round and returns what it did.
//
// Phase 1, under the exclusive write cut: flush every queued hint
// (tokened, so a hint racing its own earlier in-flight delivery
// dedups), then pull each backend's full keyed state. The cut makes
// the pulls a consistent snapshot — no write lands between two pulls
// and shows up on one replica but not another.
//
// Phase 2, outside the cut: per key, majority-vote the replicas'
// rounded bits; the majority member is the donor, and every dissenter
// is pushed donor − dissenter as an exact wire partial. Writes racing
// phase 2 commute past the pushes (both donor and dissenter receive
// them), so the end state is donor ⊕ new-writes on every replica.
// Keys whose reachable replicas have no majority are skipped and
// counted — another round after the fleet heals finishes the job.
func (p *Proxy) RepairNow(ctx context.Context) RepairStats {
	stats := RepairStats{Backends: len(p.order)}

	p.cut.Lock()
	for _, name := range p.order {
		stats.HintsFlushed += p.replayConn(ctx, p.backends[name])
	}
	states := make(map[string]*keyed.Store, len(p.order))
	for _, name := range p.order {
		blob, err := p.backends[name].c.PullKeyed(ctx, "", "")
		if err != nil {
			stats.Unreachable = append(stats.Unreachable, name)
			stats.Errors++
			continue
		}
		st, err := keyed.New(keyed.Options{Engine: p.engName, Partitions: 1})
		if err == nil {
			err = st.ImportMerge(blob)
		}
		if err != nil {
			stats.Unreachable = append(stats.Unreachable, name)
			stats.Errors++
			continue
		}
		states[name] = st
	}
	p.cut.Unlock()

	union := map[string]bool{}
	for _, st := range states {
		for _, k := range st.Keys() {
			union[k] = true
		}
	}

	pushes := map[string][]parsum.KeyPartial{}
	for key := range union {
		stats.Keys++
		var views []replicaView
		for _, name := range p.ring.Replicas(key, p.r) {
			st, ok := states[name]
			if !ok {
				continue // unreachable this round
			}
			acc, _ := st.CloneAcc(key)
			views = append(views, replicaView{name: name, acc: acc})
		}
		need := len(views)/2 + 1
		counts := map[vote]int{}
		for _, v := range views {
			counts[viewVote(v)]++
		}
		var winner vote
		found := false
		for v, n := range counts {
			if n >= need && len(views) > 0 {
				winner, found = v, true
				break
			}
		}
		if !found {
			stats.Skipped++
			continue
		}
		// The donor is any majority member; donor − dissenter is the
		// exact correction that lands the dissenter on the donor's group
		// element. An absent-majority winner makes the "donor" the empty
		// element: dissenters are pushed their own negation.
		var donor engine.Accumulator
		for _, v := range views {
			if viewVote(v) == winner && v.acc != nil {
				donor = v.acc
				break
			}
		}
		for _, v := range views {
			if viewVote(v) == winner {
				continue
			}
			diff := p.eng.NewAccumulator()
			if donor != nil {
				diff.Merge(donor.Clone())
			}
			if v.acc != nil {
				diff.(engine.Inverter).SubAccumulator(v.acc.Clone())
			}
			blob, err := engine.MarshalPartial(p.engName, diff)
			if err != nil {
				stats.Errors++
				continue
			}
			pushes[v.name] = append(pushes[v.name], parsum.KeyPartial{Key: key, Blob: blob})
		}
	}

	for name, ps := range pushes {
		if _, err := p.backends[name].c.PushKeyedPartials(ctx, ps); err != nil {
			stats.Errors++
			continue
		}
		stats.Diffs += len(ps)
	}

	p.mu.Lock()
	p.c.repairRounds++
	p.c.repairKeys += int64(stats.Keys)
	p.c.repairDiffs += int64(stats.Diffs)
	p.c.repairSkips += int64(stats.Skipped)
	p.c.repairErrors += int64(stats.Errors)
	p.mu.Unlock()
	return stats
}
