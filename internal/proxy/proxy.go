// Package proxy is the fault-tolerant routing/replication front-end
// over a fleet of sumd backends: keys spread over the fleet by a
// consistent-hash ring (internal/ring), every keyed write fanned out to
// R replicas, reads failing over down the replica list, and the whole
// thing held bit-exact by the algebra underneath — each replica's
// per-key state is a group element of the exact-summation group, so
// replicated writes, retries, hint replays, and repair diffs all
// commute, and convergence is checkable bit for bit.
//
// # Write path
//
// POST /v1/add?key=K (and /v1/sub) turns the request's values into a
// single-key keyed envelope, stamps it with an idempotency token, and
// pushes it to every replica of K concurrently. The SAME token rides
// every replica leg, every retry, and every hint replay of that write,
// so each backend applies the write exactly once no matter how many
// deliveries it takes (the backends' PR-9 token windows dedup). The
// client may supply its own Idempotency-Key header — a writer that
// retries a whole proxy request reuses its token and stays
// exactly-once end to end.
//
// Acks follow Options.AckMode: "quorum" (default) answers 200 once
// ⌊R/2⌋+1 replicas acked, "all" demands every replica, "one" is
// best-effort. Failed legs of an ACKED write queue a hinted handoff —
// the (token, envelope) pair — replayed to the backend when it returns;
// failed writes below the ack bar answer 503 and queue nothing (the
// write is the caller's to retry, with the same token).
//
// # Circuit breakers and degradation
//
// Each backend client carries a consecutive-failure circuit breaker
// (sumdclient.Breaker): a dead backend costs ErrBreakerOpen per leg —
// microseconds, not timeouts — until a half-open probe readmits it.
// Reads (GET /v1/sum?key=K) walk the replica list in ring order and
// serve the first answer.
//
// # Anti-entropy repair
//
// RepairNow (POST /v1/repair, or the background Options.RepairEvery
// loop) re-converges replicas after faults: under a brief write cut it
// flushes pending hints and pulls every backend's full keyed state,
// then — outside the cut — majority-votes each key's rounded bits
// across its replicas and pushes each dissenter the exact difference
// (donor − dissenter) as a wire partial. Because ImportMerge ADDS group
// elements, the diff lands the dissenter exactly on the donor's state,
// and writes racing the push commute past it (both replicas see them).
// Repair assumes settled writes for the keys it fixes: a write fanning
// out mid-pull is cut off by the lock, and unacked partial writes are
// outvoted and erased. A wiped replica (kill -9, lost disk) is restored
// the same way — donor minus empty is the donor's full state.
package proxy

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"parsum/internal/batch"
	"parsum/internal/engine"
	"parsum/internal/keyed"
	"parsum/internal/ring"
	"parsum/internal/sumdclient"
)

// MaxBodyBytes is the default request-body cap.
const MaxBodyBytes = 64 << 20

// Ack modes.
const (
	AckQuorum = "quorum" // ⌊R/2⌋+1 replicas must ack (default)
	AckAll    = "all"    // every replica must ack
	AckOne    = "one"    // best-effort: one ack suffices
)

// Options configures New. Backends is required; everything else
// defaults sanely.
type Options struct {
	// Backends are the sumd base URLs forming the ring membership.
	Backends []string
	// Replication is R, the replicas per key; 0 means min(3, len(Backends)).
	Replication int
	// VNodes is the ring's virtual-node count per backend; 0 means
	// ring.DefaultVNodes.
	VNodes int
	// AckMode is "quorum" (default), "all", or "one".
	AckMode string
	// Engine names the summation engine, which must match the backends';
	// "" means dense. It must be invertible (repair pushes differences).
	Engine string
	// Timeout is each backend client's per-attempt deadline; 0 means 5s.
	Timeout time.Duration
	// Retry429 is each backend client's 429-shed retry budget.
	Retry429 int
	// BreakerThreshold and BreakerCooldown configure each backend's
	// circuit breaker (0 = the breaker defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HintCap bounds each backend's hinted-handoff queue; beyond it the
	// oldest hint is dropped (and counted — repair remains the
	// backstop). 0 means 1024.
	HintCap int
	// ReplayEvery is the hint-replay loop period; 0 means 500ms,
	// negative disables the background loop (hints then flush only via
	// repair or ReplayHintsNow).
	ReplayEvery time.Duration
	// RepairEvery runs a background anti-entropy round this often;
	// 0 disables (repair on demand via POST /v1/repair).
	RepairEvery time.Duration
	// MaxBodyBytes caps request bodies; 0 means the package default.
	MaxBodyBytes int64
	// Transport, when set, supplies each backend's http.RoundTripper —
	// the chaos harness's seam. nil means http.DefaultTransport.
	Transport func(backend string) http.RoundTripper
}

// counters is the proxy's ledger; one mutex, snapshotted whole.
type counters struct {
	writes       int64 // write requests admitted (decoded, fanned out)
	writeValues  int64 // float64s in them
	acked        int64 // writes acked at or above the ack bar
	ackFailed    int64 // writes answered 503 (below the bar)
	legsOK       int64 // replica legs that acked
	legsFailed   int64 // replica legs that errored
	reads        int64 // keyed sum reads served
	readFailover int64 // reads served by a non-primary replica
	readMisses   int64 // reads answered 404
	hintsQueued  int64
	hintsPlayed  int64
	hintsDropped int64
	repairRounds int64
	repairKeys   int64 // keys examined across rounds
	repairDiffs  int64 // correction partials pushed
	repairSkips  int64 // keys skipped (no reachable majority)
	repairErrors int64
}

// backendConn is one backend: its client (breaker installed) and its
// hinted-handoff queue.
type backendConn struct {
	name string
	c    *sumdclient.Client
	br   *sumdclient.Breaker

	mu      sync.Mutex
	hints   []hint // FIFO; bounded by Options.HintCap
	dropped int64
}

// hint is one failed-but-acked replica leg: the envelope and the token
// under which every delivery attempt of that write runs.
type hint struct {
	token string
	blob  []byte
}

// Proxy is the HTTP front-end. Construct with New; serve via
// ServeHTTP; Close stops the background loops.
type Proxy struct {
	opt     Options
	ring    *ring.Ring
	eng     engine.Engine
	engName string
	r       int // replication factor
	need    int // acks required per write
	maxBody int64
	hintCap int

	backends map[string]*backendConn
	order    []string // sorted backend names
	mux      *http.ServeMux
	start    time.Time

	// cut is the write/repair exclusion: write fanouts and hint replays
	// hold it shared; repair's flush-and-pull holds it exclusively so
	// its cross-backend snapshot is a consistent cut of the write
	// history.
	cut sync.RWMutex

	mu sync.Mutex
	c  counters

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New validates opt, builds the ring and the per-backend clients, and
// starts the background hint-replay (and, when configured, repair)
// loops.
func New(opt Options) (*Proxy, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("proxy: no backends")
	}
	rg, err := ring.New(ring.Options{Nodes: opt.Backends, VNodes: opt.VNodes})
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	engName := opt.Engine
	if engName == "" {
		engName = "dense"
	}
	eng, ok := engine.Get(engName)
	if !ok {
		return nil, fmt.Errorf("proxy: unknown engine %q (registered: %v)", engName, engine.Names())
	}
	if !eng.Caps().Invertible {
		return nil, fmt.Errorf("proxy: engine %q is not invertible; anti-entropy repair needs exact differences", engName)
	}
	r := opt.Replication
	if r <= 0 {
		r = 3
	}
	if r > rg.Len() {
		r = rg.Len()
	}
	var need int
	switch opt.AckMode {
	case "", AckQuorum:
		need = r/2 + 1
	case AckAll:
		need = r
	case AckOne:
		need = 1
	default:
		return nil, fmt.Errorf("proxy: unknown ack mode %q (want quorum, all, or one)", opt.AckMode)
	}
	timeout := opt.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	maxBody := opt.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = MaxBodyBytes
	}
	hintCap := opt.HintCap
	if hintCap <= 0 {
		hintCap = 1024
	}

	p := &Proxy{
		opt: opt, ring: rg, eng: eng, engName: engName,
		r: r, need: need, maxBody: maxBody, hintCap: hintCap,
		backends: make(map[string]*backendConn, rg.Len()),
		order:    rg.Nodes(),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	for _, name := range p.order {
		hc := http.DefaultClient
		if opt.Transport != nil {
			hc = &http.Client{Transport: opt.Transport(name)}
		}
		c := sumdclient.New(name, hc)
		c.Timeout = timeout
		c.Retry429 = opt.Retry429
		br := &sumdclient.Breaker{Threshold: opt.BreakerThreshold, Cooldown: opt.BreakerCooldown}
		c.Breaker = br
		p.backends[name] = &backendConn{name: name, c: c, br: br}
	}

	p.mux.HandleFunc("POST /v1/add", func(w http.ResponseWriter, r *http.Request) { p.handleWrite(w, r, false) })
	p.mux.HandleFunc("POST /v1/sub", func(w http.ResponseWriter, r *http.Request) { p.handleWrite(w, r, true) })
	p.mux.HandleFunc("GET /v1/sum", p.handleSum)
	p.mux.HandleFunc("GET /v1/keys", p.handleKeys)
	p.mux.HandleFunc("GET /v1/topology", p.handleTopology)
	p.mux.HandleFunc("POST /v1/repair", p.handleRepair)
	p.mux.HandleFunc("GET /v1/healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /v1/readyz", p.handleReadyz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)

	replay := opt.ReplayEvery
	if replay == 0 {
		replay = 500 * time.Millisecond
	}
	if replay > 0 {
		p.wg.Add(1)
		go p.replayLoop(replay)
	}
	if opt.RepairEvery > 0 {
		p.wg.Add(1)
		go p.repairLoop(opt.RepairEvery)
	}
	return p, nil
}

// Close stops the background loops. Pending hints are not flushed —
// they are delivery optimizations; repair reconverges regardless.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
	})
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Ring exposes the placement function (read-only).
func (p *Proxy) Ring() *ring.Ring { return p.ring }

// Replication returns R.
func (p *Proxy) Replication() int { return p.r }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}

// decodeValues reads the request body as raw little-endian float64s
// (application/octet-stream) or JSON {"values":[...]}.
func (p *Proxy) decodeValues(w http.ResponseWriter, r *http.Request) ([]float64, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, p.maxBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	if int64(len(body)) > p.maxBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", p.maxBody)
		return nil, false
	}
	if ct := r.Header.Get("Content-Type"); ct == "application/json" {
		var req struct {
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding JSON body: %v", err)
			return nil, false
		}
		return req.Values, true
	}
	if len(body)%8 != 0 {
		writeErr(w, http.StatusBadRequest, "octet-stream body length %d is not a multiple of 8", len(body))
		return nil, false
	}
	xs := make([]float64, len(body)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return xs, true
}

// envelope builds the single-key keyed envelope carrying xs (negated
// when sub) — the unit every replica leg, retry, and hint replay of
// this write delivers under one token.
func (p *Proxy) envelope(key string, xs []float64, sub bool) ([]byte, error) {
	st, err := keyed.New(keyed.Options{Engine: p.engName, Partitions: 1})
	if err != nil {
		return nil, err
	}
	if sub {
		st.Sub(key, xs)
	} else {
		st.Add(key, xs)
	}
	return st.ExportAll()
}

func (p *Proxy) handleWrite(w http.ResponseWriter, r *http.Request, sub bool) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key parameter (the proxy routes keyed writes only)")
		return
	}
	if len(key) > keyed.MaxKeyLen {
		writeErr(w, http.StatusBadRequest, "key length %d exceeds %d", len(key), keyed.MaxKeyLen)
		return
	}
	xs, ok := p.decodeValues(w, r)
	if !ok {
		return
	}
	blob, err := p.envelope(key, xs, sub)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "building envelope: %v", err)
		return
	}
	// The client's token when it sent one (an end-to-end retry), a
	// fresh one otherwise. Either way it is pinned to this envelope for
	// the write's whole delivery lifetime.
	token := r.Header.Get("Idempotency-Key")
	if token == "" {
		token = sumdclient.NewIdemToken()
	}

	replicas := p.ring.Replicas(key, p.r)
	type legResult struct {
		name string
		err  error
	}
	results := make([]legResult, len(replicas))

	p.cut.RLock()
	var wg sync.WaitGroup
	for i, name := range replicas {
		wg.Add(1)
		go func(i int, conn *backendConn) {
			defer wg.Done()
			_, err := conn.c.PushKeyedIdem(r.Context(), token, blob)
			results[i] = legResult{name: conn.name, err: err}
		}(i, p.backends[name])
	}
	wg.Wait()

	okLegs := 0
	for _, res := range results {
		if res.err == nil {
			okLegs++
		}
	}
	acked := okLegs >= p.need
	hinted := 0
	if acked {
		// Failed legs of an acked write become hints: the ack promised
		// the write is in the system, so the proxy owns completing the
		// missing replicas. (Unacked writes stay the caller's to retry —
		// queuing them would promote a 503 into a silent maybe.)
		for _, res := range results {
			if res.err != nil {
				p.enqueueHint(p.backends[res.name], token, blob)
				hinted++
			}
		}
	}
	p.cut.RUnlock()

	p.mu.Lock()
	p.c.writes++
	p.c.writeValues += int64(len(xs))
	p.c.legsOK += int64(okLegs)
	p.c.legsFailed += int64(len(replicas) - okLegs)
	if acked {
		p.c.acked++
	} else {
		p.c.ackFailed++
	}
	p.mu.Unlock()

	if !acked {
		firstErr := ""
		for _, res := range results {
			if res.err != nil {
				firstErr = res.err.Error()
				break
			}
		}
		writeErr(w, http.StatusServiceUnavailable, "write not acked: %d/%d replicas (need %d): %s",
			okLegs, len(replicas), p.need, firstErr)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Acked    bool   `json:"acked"`
		Key      string `json:"key"`
		Replicas int    `json:"replicas"`
		OK       int    `json:"ok"`
		Hinted   int    `json:"hinted"`
	}{Acked: true, Key: key, Replicas: len(replicas), OK: okLegs, Hinted: hinted})
}

func (p *Proxy) handleSum(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	replicas := p.ring.Replicas(key, p.r)
	sawAlive := false
	var lastErr error
	for i, name := range replicas {
		v, ok, err := p.backends[name].c.SumKey(r.Context(), key)
		if err != nil {
			lastErr = err
			continue
		}
		sawAlive = true
		if !ok {
			// This replica is live but lacks the key; a stale replica is
			// possible mid-heal, so keep walking before declaring a miss.
			continue
		}
		p.mu.Lock()
		p.c.reads++
		if i > 0 {
			p.c.readFailover++
		}
		p.mu.Unlock()
		bits := math.Float64bits(v)
		writeJSON(w, http.StatusOK, struct {
			Key     string `json:"key"`
			Sum     string `json:"sum"`
			Bits    string `json:"bits"`
			Replica string `json:"replica"`
		}{Key: key, Sum: strconv.FormatFloat(v, 'g', -1, 64), Bits: fmt.Sprintf("%016x", bits), Replica: name})
		return
	}
	if sawAlive {
		p.mu.Lock()
		p.c.readMisses++
		p.mu.Unlock()
		writeErr(w, http.StatusNotFound, "key %q not found on any live replica", key)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, "no live replica for key %q: %v", key, lastErr)
}

func (p *Proxy) handleKeys(w http.ResponseWriter, r *http.Request) {
	lo, hi := r.URL.Query().Get("lo"), r.URL.Query().Get("hi")
	union := map[string]bool{}
	live := 0
	for _, name := range p.order {
		ks, err := p.backends[name].c.Keys(r.Context(), lo, hi)
		if err != nil {
			continue
		}
		live++
		for _, k := range ks {
			union[k] = true
		}
	}
	if live == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no backend answered")
		return
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, struct {
		Keys     []string `json:"keys"`
		Count    int      `json:"count"`
		Backends int      `json:"backends"`
	}{Keys: keys, Count: len(keys), Backends: live})
}

func (p *Proxy) handleTopology(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Nodes       []string          `json:"nodes"`
		Replication int               `json:"replication"`
		AckMode     string            `json:"ack_mode"`
		NeedAcks    int               `json:"need_acks"`
		VNodes      int               `json:"vnodes"`
		Engine      string            `json:"engine"`
		Breakers    map[string]string `json:"breakers"`
		Key         string            `json:"key,omitempty"`
		Replicas    []string          `json:"replicas,omitempty"`
	}{
		Nodes:       p.ring.Nodes(),
		Replication: p.r,
		AckMode:     p.ackModeName(),
		NeedAcks:    p.need,
		VNodes:      p.ring.VNodes(),
		Engine:      p.engName,
		Breakers:    map[string]string{},
	}
	for _, name := range p.order {
		resp.Breakers[name] = p.backends[name].br.State().String()
	}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Key = key
		resp.Replicas = p.ring.Replicas(key, p.r)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (p *Proxy) ackModeName() string {
	if p.opt.AckMode == "" {
		return AckQuorum
	}
	return p.opt.AckMode
}

// liveBackends counts backends whose breaker is not open — known-dead
// nodes are exactly the open ones.
func (p *Proxy) liveBackends() int {
	n := 0
	for _, name := range p.order {
		if p.backends[name].br.State() != sumdclient.BreakerOpen {
			n++
		}
	}
	return n
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK       bool `json:"ok"`
		Backends int  `json:"backends"`
		Live     int  `json:"live"`
	}{OK: true, Backends: len(p.order), Live: p.liveBackends()})
}

// handleReadyz is ready when enough backends are live to ack a write.
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	live := p.liveBackends()
	if live < p.need {
		http.Error(w, fmt.Sprintf("degraded: %d live backends, need %d to ack", live, p.need), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (p *Proxy) handleRepair(w http.ResponseWriter, r *http.Request) {
	stats := p.RepairNow(r.Context())
	status := http.StatusOK
	if stats.Errors > 0 || len(stats.Unreachable) > 0 {
		status = http.StatusAccepted // partial repair; another round will finish
	}
	writeJSON(w, status, stats)
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	c := p.c
	p.mu.Unlock()
	pending := int64(0)
	for _, name := range p.order {
		conn := p.backends[name]
		conn.mu.Lock()
		pending += int64(len(conn.hints))
		conn.mu.Unlock()
	}
	var pw batch.PromWriter
	pw.Gauge("sumproxy_up", "Whether the proxy is serving (always 1 when scraped).", 1)
	pw.Gauge("sumproxy_uptime_seconds", "Seconds since the proxy was constructed.", time.Since(p.start).Seconds())
	pw.Gauge("sumproxy_backends", "Configured backend count.", float64(len(p.order)))
	pw.Gauge("sumproxy_backends_live", "Backends whose circuit breaker is not open.", float64(p.liveBackends()))
	pw.Gauge("sumproxy_replication", "Replicas per key (R).", float64(p.r))
	pw.Gauge("sumproxy_need_acks", "Replica acks required per write.", float64(p.need))
	pw.Counter("sumproxy_writes_total", "Keyed write requests fanned out.", float64(c.writes))
	pw.Counter("sumproxy_write_values_total", "Raw float64s in fanned-out writes.", float64(c.writeValues))
	pw.Counter("sumproxy_writes_acked_total", "Writes acked at or above the ack bar.", float64(c.acked))
	pw.Counter("sumproxy_writes_failed_total", "Writes answered 503 below the ack bar.", float64(c.ackFailed))
	pw.CounterVec("sumproxy_write_legs_total", "Replica legs by outcome.", "outcome", map[string]float64{
		"ok": float64(c.legsOK), "error": float64(c.legsFailed),
	})
	pw.Counter("sumproxy_reads_total", "Keyed sum reads served.", float64(c.reads))
	pw.Counter("sumproxy_read_failovers_total", "Reads served by a non-primary replica.", float64(c.readFailover))
	pw.Counter("sumproxy_read_misses_total", "Keyed sum reads answered 404.", float64(c.readMisses))
	pw.Gauge("sumproxy_hints_pending", "Hinted-handoff envelopes awaiting replay.", float64(pending))
	pw.Counter("sumproxy_hints_queued_total", "Hints queued for failed legs of acked writes.", float64(c.hintsQueued))
	pw.Counter("sumproxy_hints_replayed_total", "Hints delivered to their backend.", float64(c.hintsPlayed))
	pw.Counter("sumproxy_hints_dropped_total", "Hints dropped at the queue cap (repair is the backstop).", float64(c.hintsDropped))
	pw.Counter("sumproxy_repair_rounds_total", "Anti-entropy rounds completed.", float64(c.repairRounds))
	pw.Counter("sumproxy_repair_keys_total", "Keys examined by repair.", float64(c.repairKeys))
	pw.Counter("sumproxy_repair_diffs_total", "Correction partials pushed by repair.", float64(c.repairDiffs))
	pw.Counter("sumproxy_repair_skipped_total", "Keys skipped for want of a reachable majority.", float64(c.repairSkips))
	pw.Counter("sumproxy_repair_errors_total", "Repair pulls or pushes that failed.", float64(c.repairErrors))
	w.Header().Set("Content-Type", batch.PromContentType)
	_, _ = w.Write(pw.Bytes())
}
