package fpnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeKnown(t *testing.T) {
	cases := []struct {
		x   float64
		neg bool
		m   uint64
		e   int
	}{
		{1, false, 1 << 52, -52},
		{-1, true, 1 << 52, -52},
		{2, false, 1 << 52, -51},
		{0.5, false, 1 << 52, -53},
		{3, false, 3 << 51, -51},
		{math.SmallestNonzeroFloat64, false, 1, -1074},
		{-math.SmallestNonzeroFloat64, true, 1, -1074},
		{math.MaxFloat64, false, 1<<53 - 1, 971},
		{0x1p-1022, false, 1 << 52, -1074},     // smallest normal
		{0x1p-1022 / 2, false, 1 << 51, -1074}, // subnormal
	}
	for _, c := range cases {
		neg, m, e := Decompose(c.x)
		if neg != c.neg || m != c.m || e != c.e {
			t.Errorf("Decompose(%g) = (%v, %#x, %d), want (%v, %#x, %d)",
				c.x, neg, m, e, c.neg, c.m, c.e)
		}
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	f := func(b uint64) bool {
		x := math.Float64frombits(b)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		neg, m, e := Decompose(x)
		return Compose(neg, m, e) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeValueIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := math.Float64frombits(r.Uint64())
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		neg, m, e := Decompose(x)
		v := math.Ldexp(float64(m), e) // exact: m has ≤53 bits
		if neg {
			v = -v
		}
		if v != x {
			t.Fatalf("Decompose(%g): m·2^e = %g", x, v)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		x float64
		c Class
	}{
		{0, ClassZero},
		{math.Copysign(0, -1), ClassZero},
		{1, ClassFinite},
		{math.SmallestNonzeroFloat64, ClassFinite},
		{math.MaxFloat64, ClassFinite},
		{math.Inf(1), ClassPosInf},
		{math.Inf(-1), ClassNegInf},
		{math.NaN(), ClassNaN},
	}
	for _, c := range cases {
		if got := Classify(c.x); got != c.c {
			t.Errorf("Classify(%g) = %v, want %v", c.x, got, c.c)
		}
	}
}

func TestUlp(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0x1p-52},
		{2, 0x1p-51},
		{1.5, 0x1p-52},
		{0, math.SmallestNonzeroFloat64},
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64},
		{0x1p-1022, 0x1p-1074},
		{math.MaxFloat64, 0x1p971},
		{-1, 0x1p-52},
	}
	for _, c := range cases {
		if got := Ulp(c.x); got != c.want {
			t.Errorf("Ulp(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Ulp(math.Inf(1))) || !math.IsNaN(Ulp(math.NaN())) {
		t.Errorf("Ulp of non-finite should be NaN")
	}
}

func TestHalfUlpNeverZero(t *testing.T) {
	if HalfUlp(math.SmallestNonzeroFloat64) == 0 {
		t.Fatal("HalfUlp saturated to zero")
	}
	if HalfUlp(1) != 0x1p-53 {
		t.Fatalf("HalfUlp(1) = %g", HalfUlp(1))
	}
}

func TestExpOfLSBAndMSB(t *testing.T) {
	cases := []struct {
		x        float64
		lsb, msb int
	}{
		{1, 0, 0},
		{3, 0, 1},
		{6, 1, 2},
		{0.75, -2, -1},
		{math.MaxFloat64, 971, 1023},
		{math.SmallestNonzeroFloat64, -1074, -1074},
	}
	for _, c := range cases {
		if got := ExpOfLSB(c.x); got != c.lsb {
			t.Errorf("ExpOfLSB(%g) = %d, want %d", c.x, got, c.lsb)
		}
		if got := ExpOfMSB(c.x); got != c.msb {
			t.Errorf("ExpOfMSB(%g) = %d, want %d", c.x, got, c.msb)
		}
	}
}

func TestRoundFromParts(t *testing.T) {
	// Exact value, no rounding.
	if got := RoundFromParts(false, 1<<52, -52, false, false); got != 1 {
		t.Fatalf("exact 1: got %g", got)
	}
	// Round bit set, sticky clear, even significand: ties to even stays.
	if got := RoundFromParts(false, 1<<52, -52, true, false); got != 1 {
		t.Fatalf("tie at 1: got %g", got)
	}
	// Round bit set, odd significand: rounds up.
	if got := RoundFromParts(false, 1<<52|1, -52, true, false); got != 1+0x1p-51 {
		t.Fatalf("tie at 1+2^-52: got %g", got)
	}
	// Round + sticky: rounds up regardless of parity.
	if got := RoundFromParts(false, 1<<52, -52, true, true); got != 1+0x1p-52 {
		t.Fatalf("above tie: got %g", got)
	}
	// Carry out of rounding: all-ones significand increments exponent.
	if got := RoundFromParts(false, 1<<53-1, -52, true, true); got != 2 {
		t.Fatalf("carry out: got %g", got)
	}
	// Overflow to Inf.
	if got := RoundFromParts(false, 1<<53-1, 971, true, false); !math.IsInf(got, 1) {
		t.Fatalf("overflow: got %g", got)
	}
	// Negative zero of an empty significand.
	if got := RoundFromParts(true, 0, 0, false, false); math.Signbit(got) != true || got != 0 {
		t.Fatalf("neg zero: got %g (signbit %v)", got, math.Signbit(got))
	}
	// Subnormal rounding at the bottom of the range.
	if got := RoundFromParts(false, 1, -1074, true, true); got != 0x1p-1073 {
		t.Fatalf("subnormal round up: got %g", got)
	}
	if got := RoundFromParts(false, 1, -1074, true, false); got != 0x1p-1073 {
		// tie: significand 1 is odd → rounds to 2 (even)
		t.Fatalf("subnormal tie: got %g", got)
	}
	if got := RoundFromParts(false, 2, -1074, true, false); got != 0x1p-1073 {
		// tie: significand 2 is even → stays
		t.Fatalf("subnormal tie even: got %g", got)
	}
}
