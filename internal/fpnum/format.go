package fpnum

import "math"

// Format describes a binary floating-point destination format for rounding:
// the paper's algorithms are precision-independent (parameterized by the
// significand width t and exponent width l), and the final
// round-to-nearest-even step can target any such format. The fields mirror
// the ±m·2^e integral decomposition used throughout this package.
type Format struct {
	// SigBits is the number of significand bits including the implicit
	// bit (t+1 in the paper's notation; 53 for float64, 24 for float32).
	SigBits int
	// MinExp is the binary weight of the least significant representable
	// bit (−1074 for float64, −149 for float32).
	MinExp int
	// MaxExp is the largest value of e in the ±m·2^e decomposition with
	// m < 2^SigBits (971 for float64, 104 for float32).
	MaxExp int
}

// Binary64 and Binary32 are the two IEEE 754 formats this library rounds
// to natively. Any other Format (e.g. binary16 or a custom width) works
// with RoundToFormat; only the float64-valued return type limits the
// magnitude range to binary64's.
var (
	Binary64 = Format{SigBits: 53, MinExp: -1074, MaxExp: 971}
	Binary32 = Format{SigBits: 24, MinExp: -149, MaxExp: 104}
)

// RoundToFormat assembles the correctly rounded (round-to-nearest-even)
// value of ±(sig + ε)·2^e in the destination format f, returned as a
// float64 that is exactly representable in f (or ±Inf on overflow). Here
// sig is the significand aligned so its least significant bit has weight
// e, round is the bit of weight e−1, and sticky reports whether any
// lower-weight bit is nonzero. Callers must present sig already reduced to
// at most f.SigBits bits with e ≥ f.MinExp (the generic digit-string
// rounder in internal/accum does this).
func RoundToFormat(f Format, neg bool, sig uint64, e int, round, sticky bool) float64 {
	if sig >= 1<<uint(f.SigBits) {
		panic("fpnum: RoundToFormat significand too wide")
	}
	if round && (sticky || sig&1 != 0) {
		sig++
		if sig == 1<<uint(f.SigBits) {
			sig >>= 1
			e++
		}
	}
	if sig == 0 {
		if neg {
			return math.Copysign(0, -1)
		}
		return 0
	}
	// Normalize against the format's bounds to detect overflow.
	ms := sig
	me := e
	for ms < 1<<uint(f.SigBits-1) && me > f.MinExp {
		ms <<= 1
		me--
	}
	if me > f.MaxExp {
		return math.Inf(sign(neg))
	}
	v := math.Ldexp(float64(sig), e) // exact: sig ≤ 2^53 and e within range
	if neg {
		return -v
	}
	return v
}
