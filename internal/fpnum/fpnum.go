// Package fpnum provides bit-level utilities for IEEE 754 double-precision
// floating-point numbers: decomposition into integer significand and
// exponent, reassembly with round-to-nearest-even, ulp arithmetic, and the
// classification helpers the superaccumulator representations are built on.
//
// Throughout this package a finite nonzero float64 x is written as
//
//	x = ±m · 2^e
//
// with integer significand m in [1, 2^53) and e in [MinExp, MaxExp]. This is
// the "integral" decomposition: e is the binary weight of the least
// significant bit of m, not the IEEE biased exponent.
package fpnum

import "math"

const (
	// MantBits is the number of stored significand bits of a float64.
	MantBits = 52
	// SigBits is the number of significant bits including the implicit bit.
	SigBits = 53
	// ExpBits is the number of exponent bits of a float64.
	ExpBits = 11
	// Bias is the IEEE 754 double-precision exponent bias.
	Bias = 1023
	// MinExp is the smallest value of e in the ±m·2^e decomposition
	// (the weight of the least significant subnormal bit).
	MinExp = -1074
	// MaxExp is the largest value of e in the ±m·2^e decomposition:
	// the largest double is (2^53−1)·2^971.
	MaxExp = 971
	// MaxBitPos is the highest binary weight any finite double occupies
	// (the most significant bit of MaxFloat64 has weight 1023).
	MaxBitPos = 1023
	// MinNormalExp is the unbiased exponent of the smallest normal double.
	MinNormalExp = -1022
)

const (
	signMask = 1 << 63
	expMask  = 0x7FF << MantBits
	fracMask = 1<<MantBits - 1
)

// Decompose splits a finite, nonzero float64 into a sign, an integer
// significand m in [1, 2^53), and an exponent e such that x = ±m·2^e.
// The significand of a subnormal has fewer than 53 bits; the significand is
// not normalized (its low bit may be zero).
//
// Decompose must not be called with 0, ±Inf, or NaN; use Class to screen.
func Decompose(x float64) (neg bool, m uint64, e int) {
	b := math.Float64bits(x)
	neg = b&signMask != 0
	biased := int(b>>MantBits) & 0x7FF
	m = b & fracMask
	if biased == 0 {
		// Subnormal: no implicit bit, fixed exponent.
		return neg, m, MinExp
	}
	return neg, m | 1<<MantBits, biased - Bias - MantBits
}

// Class describes a float64 for the purposes of exact accumulation.
type Class int

// Classification of float64 values.
const (
	ClassFinite Class = iota // finite and nonzero
	ClassZero                // +0 or −0
	ClassPosInf
	ClassNegInf
	ClassNaN
)

// Classify reports which accumulation class x falls into.
func Classify(x float64) Class {
	b := math.Float64bits(x)
	if b&expMask != expMask {
		if b&^uint64(signMask) == 0 {
			return ClassZero
		}
		return ClassFinite
	}
	if b&fracMask != 0 {
		return ClassNaN
	}
	if b&signMask != 0 {
		return ClassNegInf
	}
	return ClassPosInf
}

// Compose builds the float64 with value m·2^e (times −1 if neg), assuming the
// value is exactly representable: m < 2^53 and no rounding required. It is
// the inverse of Decompose. Values that overflow return ±Inf; values whose
// low-order bits would be lost panic (callers must pre-round).
func Compose(neg bool, m uint64, e int) float64 {
	if m == 0 {
		if neg {
			return math.Copysign(0, -1)
		}
		return 0
	}
	if m >= 1<<SigBits {
		panic("fpnum: Compose significand overflow")
	}
	// Normalize so the implicit bit is set, or construct a subnormal.
	for m < 1<<MantBits && e > MinExp {
		m <<= 1
		e--
	}
	for m >= 1<<SigBits {
		if m&1 != 0 {
			panic("fpnum: Compose would lose bits")
		}
		m >>= 1
		e++
	}
	if e > MaxExp {
		return math.Inf(sign(neg))
	}
	var b uint64
	if m < 1<<MantBits {
		// Subnormal (only valid at e == MinExp).
		if e != MinExp {
			panic("fpnum: Compose subnormal with wrong exponent")
		}
		b = m
	} else {
		b = uint64(e+Bias+MantBits)<<MantBits | (m & fracMask)
	}
	if neg {
		b |= signMask
	}
	return math.Float64frombits(b)
}

func sign(neg bool) int {
	if neg {
		return -1
	}
	return 1
}

// Ulp returns the unit in the last place of x: the gap between |x| and the
// next float64 of larger magnitude. Ulp of 0 is the smallest subnormal.
// Ulp of ±Inf or NaN is NaN.
func Ulp(x float64) float64 {
	switch Classify(x) {
	case ClassNaN, ClassPosInf, ClassNegInf:
		return math.NaN()
	case ClassZero:
		return math.Float64frombits(1)
	}
	_, _, e := Decompose(x)
	_ = e
	biased := int(math.Float64bits(x)>>MantBits) & 0x7FF
	if biased == 0 {
		return math.Float64frombits(1)
	}
	ue := biased - Bias - MantBits
	if ue < MinExp {
		ue = MinExp
	}
	return math.Ldexp(1, ue)
}

// HalfUlp returns Ulp(x)/2, saturating at the smallest subnormal so the
// result is never zero for finite x. It bounds the roundoff of a single
// floating-point addition whose result is x.
func HalfUlp(x float64) float64 {
	u := Ulp(x)
	h := u / 2
	if h == 0 {
		return u
	}
	return h
}

// ExpOfLSB returns the binary weight of the least significant set bit of the
// finite nonzero x (the largest k such that x is an integer multiple of 2^k).
func ExpOfLSB(x float64) int {
	_, m, e := Decompose(x)
	for m&1 == 0 {
		m >>= 1
		e++
	}
	return e
}

// ExpOfMSB returns the binary weight of the most significant set bit of the
// finite nonzero x, i.e. floor(log2 |x|).
func ExpOfMSB(x float64) int {
	_, m, e := Decompose(x)
	n := 0
	for m > 1 {
		m >>= 1
		n++
	}
	return e + n
}

// RoundFromParts assembles the correctly rounded (round-to-nearest-even)
// float64 for the exact value ±(sig + tail·2^-∞)·2^e, where sig is a 53-bit
// significand aligned so that its least significant bit has weight e, round
// is the bit of weight e−1, and sticky reports whether any lower-weight bit
// is nonzero. It handles carries out of rounding, overflow to ±Inf, and
// subnormal callers (sig may have fewer than 53 significant bits when the
// caller has already right-aligned a subnormal result).
func RoundFromParts(neg bool, sig uint64, e int, round, sticky bool) float64 {
	if round && (sticky || sig&1 != 0) {
		sig++
		if sig == 1<<SigBits {
			sig >>= 1
			e++
		}
	}
	if sig == 0 {
		if neg {
			return math.Copysign(0, -1)
		}
		return 0
	}
	if e > MaxExp || (e == MaxExp && sig >= 1<<SigBits) {
		return math.Inf(sign(neg))
	}
	return Compose(neg, sig, e)
}
