package wal

// FuzzWALReplay feeds hostile bytes to recovery as a segment file — the
// PR-3 codec-gauntlet treatment for the durability path. Recovery must
// never panic and never error on corruption (truncate-and-continue is
// the contract), and the records it does accept must round-trip: re-
// journaling them into a fresh log and recovering again yields the
// same records. A second property pins the physical truncation: after
// a torn recovery the log must accept appends and recover cleanly.

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func FuzzWALReplay(f *testing.F) {
	// Seed 1: a clean log with every record type.
	f.Add(buildSeg(f, func(l *Log) {
		for _, r := range sampleRecords() {
			appendRecord(l, r)
		}
	}))
	// Seed 2: a clean log followed by garbage (torn tail).
	f.Add(append(buildSeg(f, func(l *Log) {
		l.AppendBatch([]float64{1, math.Inf(-1)}, false)
	}), 0xDE, 0xAD, 0xBE, 0xEF))
	// Seed 3: a frame with a corrupted CRC byte.
	flipped := buildSeg(f, func(l *Log) {
		l.AppendKeyed("k", []float64{2}, true)
		l.AppendBlob(RecPartial, "tok", []byte{0xC7, 1})
	})
	flipped[5] ^= 0x40
	f.Add(flipped)
	// Seed 4: a hostile length field.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 9, 9, 9})
	// Seed 5: empty file.
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(Options{Dir: dir, Fsync: PolicyOff})
		if err != nil {
			t.Fatalf("Open on hostile segment errored (must truncate instead): %v", err)
		}
		if rec.Stats.TruncatedBytes > int64(len(data)) {
			t.Fatalf("truncated %d bytes of a %d-byte segment", rec.Stats.TruncatedBytes, len(data))
		}

		// The accepted prefix must be appendable: journal one more
		// record, recover, and see prefix + 1.
		l.AppendBatch([]float64{3.5}, false)
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit after hostile recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		_, rec2, err := Open(Options{Dir: dir, Fsync: PolicyOff})
		if err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("after append: recovered %d records, want %d", len(rec2.Records), len(rec.Records)+1)
		}

		// Round-trip: re-journal the accepted records into a fresh log;
		// recovery must reproduce them bit for bit.
		dir2 := t.TempDir()
		l2, _, err := Open(Options{Dir: dir2, Fsync: PolicyOff})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Records {
			appendRecord(l2, r)
		}
		if err := l2.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec3, err := Open(Options{Dir: dir2, Fsync: PolicyOff})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec3.Records) != len(rec.Records) {
			t.Fatalf("round-trip recovered %d records, want %d", len(rec3.Records), len(rec.Records))
		}
		for i := range rec.Records {
			if !recordsEqual(rec3.Records[i], rec.Records[i]) {
				t.Fatalf("round-trip record %d = %+v, want %+v", i, rec3.Records[i], rec.Records[i])
			}
		}
	})
}

// buildSeg journals records via fn and returns the raw segment bytes.
func buildSeg(f *testing.F, fn func(*Log)) []byte {
	f.Helper()
	dir := f.TempDir()
	l, _, err := Open(Options{Dir: dir, Fsync: PolicyOff})
	if err != nil {
		f.Fatal(err)
	}
	fn(l)
	if err := l.Commit(); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return data
}
