package wal

// Snapshot files bound replay. One file captures the full service
// state at a cut point:
//
//	magic "PSWS" | version 1 | base(u64 LE) |
//	len(global) global | len(keyed) keyed |
//	ntokens { len(token) token }* |
//	crc(u32 LE over everything before it)
//
// (lengths and counts are unsigned varints). Global is the sharded
// accumulator's wire partial (Sharded.SnapshotBytes), Keyed the keyed
// store's envelope (Keyed.ExportAll) — both already exact, versioned,
// hardened codecs, so the snapshot inherits their bit-exactness and
// their hostile-input validation. Tokens is the idempotency-dedup
// window in FIFO order, so a retried push deduplicates identically
// before and after recovery.
//
// Snapshots are written to a temp file, fsynced, renamed into place,
// and the directory fsynced; recovery takes the newest file that
// passes magic, version, base, and CRC checks, and ignores (then
// deletes) anything else. A crash at any point therefore leaves either
// the old snapshot, the new one, or a junk temp file — never a state
// that replays incorrectly.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot is the logical content of one snapshot file. Empty Global
// or Keyed means that store held no state at the cut.
type Snapshot struct {
	Global []byte   // Sharded.SnapshotBytes wire partial
	Keyed  []byte   // Keyed.ExportAll envelope
	Tokens []string // idempotency-dedup window, oldest first
}

var snapMagic = [4]byte{'P', 'S', 'W', 'S'}

const snapVersion = 1

func writeSnapshot(dir, name string, base int64, snap *Snapshot) error {
	b := make([]byte, 0, 16+len(snap.Global)+len(snap.Keyed))
	b = append(b, snapMagic[:]...)
	b = append(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(base))
	b = binary.AppendUvarint(b, uint64(len(snap.Global)))
	b = append(b, snap.Global...)
	b = binary.AppendUvarint(b, uint64(len(snap.Keyed)))
	b = append(b, snap.Keyed...)
	b = binary.AppendUvarint(b, uint64(len(snap.Tokens)))
	for _, t := range snap.Tokens {
		b = binary.AppendUvarint(b, uint64(len(t)))
		b = append(b, t...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))

	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	return nil
}

// loadSnapshot reads and validates one snapshot file. Any structural
// problem is an error; the caller treats it as "this snapshot does not
// exist" and falls back to an older one or a full replay.
func loadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < 4+1+8+4 || [4]byte(b[:4]) != snapMagic || b[4] != snapVersion {
		return nil, fmt.Errorf("wal: %s: bad snapshot header", path)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: %s: snapshot CRC mismatch", path)
	}
	p := body[4+1+8:]
	snap := &Snapshot{}
	if snap.Global, p, err = snapBytes(p); err != nil {
		return nil, fmt.Errorf("wal: %s: global section: %w", path, err)
	}
	if snap.Keyed, p, err = snapBytes(p); err != nil {
		return nil, fmt.Errorf("wal: %s: keyed section: %w", path, err)
	}
	n, m := binary.Uvarint(p)
	if m <= 0 || n > uint64(len(p)) {
		return nil, fmt.Errorf("wal: %s: token count", path)
	}
	p = p[m:]
	for i := uint64(0); i < n; i++ {
		var tok []byte
		if tok, p, err = snapBytes(p); err != nil {
			return nil, fmt.Errorf("wal: %s: token %d: %w", path, i, err)
		}
		snap.Tokens = append(snap.Tokens, string(tok))
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wal: %s: trailing bytes", path)
	}
	return snap, nil
}

func snapBytes(p []byte) (section []byte, rest []byte, err error) {
	n, m := binary.Uvarint(p)
	if m <= 0 || n > uint64(len(p)-m) {
		return nil, nil, errBadFrame
	}
	return p[m : m+int(n)], p[m+int(n):], nil
}
