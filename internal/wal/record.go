package wal

// Record types and the frame codec. Every journaled mutation is one
// record, encoded as one frame in the active segment:
//
//	frame   := length(u32 LE) crc(u32 LE) payload
//	crc     := CRC32C (Castagnoli) of payload
//	payload := type(1 byte) body
//
// Bodies (all integers are unsigned varints, floats are raw IEEE-754
// little-endian bits — the same exact representation the wire protocol
// uses, so journaling is lossless for every value including ±Inf, NaN
// payloads, and signed zeros):
//
//	RecAdd / RecSub                n, then n float64s
//	RecKeyedAdd / RecKeyedSub      len(key), key, n, then n float64s
//	RecPartial / RecKeyedEnvelope /
//	RecKeyedJSON                   len(token), token, len(blob), blob
//	RecReset                       (empty)
//
// The CRC covers the payload only: a corrupted length field either
// points past the end of the segment (torn tail) or frames a span whose
// CRC cannot match, so recovery rejects it either way. Records after
// the first bad frame are never replayed — the log's logical content is
// the longest valid frame prefix.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Type tags one journaled record.
type Type uint8

const (
	// RecAdd journals an unkeyed value batch accepted via /v1/add.
	RecAdd Type = 1 + iota
	// RecSub journals an unkeyed exact deletion accepted via /v1/sub.
	RecSub
	// RecKeyedAdd journals a keyed value batch.
	RecKeyedAdd
	// RecKeyedSub journals a keyed exact deletion.
	RecKeyedSub
	// RecPartial journals a merged wire partial (POST /v1/partial); the
	// body carries the client's idempotency token (possibly empty) and
	// the raw partial blob.
	RecPartial
	// RecKeyedEnvelope journals a merged keyed envelope
	// (POST /v1/keyed/partial, binary form), token + blob like RecPartial.
	RecKeyedEnvelope
	// RecReset journals POST /v1/reset, so replay wipes state at the
	// same point in the history the live process did.
	RecReset
	// RecKeyedJSON journals the JSON form of POST /v1/keyed/partial:
	// the blob is the validated request body, replayed by decoding it
	// the same way the handler did. Token + blob like RecPartial.
	RecKeyedJSON

	recMax = RecKeyedJSON
)

func (t Type) String() string {
	switch t {
	case RecAdd:
		return "add"
	case RecSub:
		return "sub"
	case RecKeyedAdd:
		return "keyed-add"
	case RecKeyedSub:
		return "keyed-sub"
	case RecPartial:
		return "partial"
	case RecKeyedEnvelope:
		return "keyed-envelope"
	case RecReset:
		return "reset"
	case RecKeyedJSON:
		return "keyed-json"
	}
	return fmt.Sprintf("wal.Type(%d)", uint8(t))
}

// Record is one decoded journal entry. Values and Blob alias the
// recovery read buffer only until the next record is decoded; recovery
// copies are made by the scanner, so holding on to a Record is safe.
type Record struct {
	Type   Type
	Key    string    // RecKeyedAdd / RecKeyedSub
	Token  string    // RecPartial / RecKeyedEnvelope; "" when none given
	Values []float64 // RecAdd / RecSub / RecKeyedAdd / RecKeyedSub
	Blob   []byte    // RecPartial / RecKeyedEnvelope
}

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64, and the conventional WAL checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderLen = 8
	// maxFrameLen rejects hostile length fields before any allocation;
	// it comfortably exceeds the largest legitimate record (a request
	// body is capped upstream by the server's MaxBodyBytes).
	maxFrameLen = 1 << 30
	// MaxKeyLen mirrors the keyed store's key bound; decode rejects
	// larger claimed key lengths before allocating.
	maxRecKeyLen = 1 << 16
	maxRecToken  = 1 << 12
)

var errBadFrame = errors.New("wal: bad frame")

// appendUvarint / float encoding helpers keep the append hot path free
// of per-record allocations: callers reuse one scratch buffer.

func appendFloats(b []byte, xs []float64) []byte {
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func encodeBatch(b []byte, t Type, key string, xs []float64) []byte {
	b = append(b, byte(t))
	if t == RecKeyedAdd || t == RecKeyedSub {
		b = binary.AppendUvarint(b, uint64(len(key)))
		b = append(b, key...)
	}
	b = binary.AppendUvarint(b, uint64(len(xs)))
	return appendFloats(b, xs)
}

func encodeBlob(b []byte, t Type, token string, blob []byte) []byte {
	b = append(b, byte(t))
	b = binary.AppendUvarint(b, uint64(len(token)))
	b = append(b, token...)
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

// decodeRecord parses one frame payload into a Record, copying every
// span out of the input so the caller may reuse its buffer.
func decodeRecord(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", errBadFrame)
	}
	t := Type(p[0])
	p = p[1:]
	switch t {
	case RecAdd, RecSub:
		xs, rest, err := decodeFloats(p)
		if err != nil || len(rest) != 0 {
			return Record{}, fmt.Errorf("%w: %s body", errBadFrame, t)
		}
		return Record{Type: t, Values: xs}, nil
	case RecKeyedAdd, RecKeyedSub:
		key, rest, err := decodeString(p, maxRecKeyLen)
		if err != nil {
			return Record{}, fmt.Errorf("%w: %s key", errBadFrame, t)
		}
		xs, rest, err := decodeFloats(rest)
		if err != nil || len(rest) != 0 {
			return Record{}, fmt.Errorf("%w: %s body", errBadFrame, t)
		}
		return Record{Type: t, Key: key, Values: xs}, nil
	case RecPartial, RecKeyedEnvelope, RecKeyedJSON:
		token, rest, err := decodeString(p, maxRecToken)
		if err != nil {
			return Record{}, fmt.Errorf("%w: %s token", errBadFrame, t)
		}
		n, m := binary.Uvarint(rest)
		if m <= 0 || n > uint64(len(rest)-m) {
			return Record{}, fmt.Errorf("%w: %s blob length", errBadFrame, t)
		}
		rest = rest[m:]
		if uint64(len(rest)) != n {
			return Record{}, fmt.Errorf("%w: %s trailing bytes", errBadFrame, t)
		}
		blob := make([]byte, n)
		copy(blob, rest)
		return Record{Type: t, Token: token, Blob: blob}, nil
	case RecReset:
		if len(p) != 0 {
			return Record{}, fmt.Errorf("%w: reset body not empty", errBadFrame)
		}
		return Record{Type: RecReset}, nil
	}
	return Record{}, fmt.Errorf("%w: unknown type %d", errBadFrame, uint8(t))
}

func decodeString(p []byte, limit uint64) (s string, rest []byte, err error) {
	n, m := binary.Uvarint(p)
	if m <= 0 || n > limit || n > uint64(len(p)-m) {
		return "", nil, errBadFrame
	}
	return string(p[m : m+int(n)]), p[m+int(n):], nil
}

func decodeFloats(p []byte) (xs []float64, rest []byte, err error) {
	n, m := binary.Uvarint(p)
	if m <= 0 {
		return nil, nil, errBadFrame
	}
	p = p[m:]
	if n > uint64(len(p))/8 {
		return nil, nil, errBadFrame
	}
	xs = make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return xs, p[8*n:], nil
}

// putFrameHeader writes the 8-byte frame header (length + CRC32C) for
// payload into hdr.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
}

// scanFrames walks data frame by frame, calling fn with each valid
// payload, and returns how many bytes formed the valid prefix. A length
// field pointing past the end, an over-limit length, a CRC mismatch, or
// an undecodable payload all end the scan there — the remainder is the
// torn tail. fn's error aborts the scan and is returned as-is.
func scanFrames(data []byte, fn func(payload []byte) error) (valid int64, err error) {
	off := 0
	for len(data)-off >= frameHeaderLen {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > maxFrameLen || n > len(data)-off-frameHeaderLen {
			break
		}
		want := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		// Reject frames whose payload does not decode: a frame that
		// passes CRC but not the record grammar was written by a
		// different version or is corrupt in a way CRC cannot see;
		// either way nothing after it can be trusted.
		if _, derr := decodeRecord(payload); derr != nil {
			break
		}
		if err := fn(payload); err != nil {
			return int64(off), err
		}
		off += frameHeaderLen + n
	}
	return int64(off), nil
}
