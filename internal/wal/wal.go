// Package wal is the durability layer behind sumd: an append-only,
// CRC32C-framed segment log that journals every state-mutating ingest
// before it is acknowledged, plus periodic snapshots that bound replay.
//
// The design leans on the central property of the accumulator it
// protects: exact summation is a commutative group, so replaying the
// journaled multiset — in journal order, in any grouping — reproduces
// the pre-crash sums bit for bit. Durability therefore needs no
// physical byte-identity of state files, only the logical multiset of
// accepted mutations; the log records exactly that.
//
// # Layout
//
// A log directory holds numbered segment files and at most one live
// snapshot:
//
//	wal-0000000000000001.seg
//	wal-0000000000000002.seg      ← active (append) segment
//	snap-0000000000000002.snap    ← covers every segment below 2
//
// Records append to the active segment; when it exceeds Options.SegBytes
// the log rotates to the next index. A snapshot captures the full
// service state (global partial + keyed envelope + idempotency tokens),
// names the first segment index NOT covered, and lets every lower
// segment and older snapshot be deleted.
//
// # Recovery
//
// Open loads the newest valid snapshot, then replays segments from the
// snapshot's base index in order, frame by frame. The first bad frame —
// torn length, CRC mismatch, or undecodable payload — ends the log: the
// segment is truncated there, later segments are removed, and the valid
// prefix is returned for the caller to apply. This is exactly the
// contract a crash mid-append requires: an acknowledged mutation was
// durably framed before the ack, so it is in the prefix; an in-flight
// mutation may fall either side, which is the standard "unacked is
// unknown" durability semantics.
//
// # Fsync
//
// Commit durability is configurable: PolicyAlways fsyncs on every
// Commit (each acknowledged request, or each async group commit — the
// batcher's flush is the natural group fsync); PolicyInterval fsyncs in
// the background every Options.Interval; PolicyOff never fsyncs. Note
// that even PolicyOff survives process death (the OS holds the written
// pages); the policy only chooses exposure to machine death.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Policy selects when the log fsyncs the active segment.
type Policy int

const (
	// PolicyAlways fsyncs on every Commit — full single-request
	// durability; the safest and slowest.
	PolicyAlways Policy = iota
	// PolicyInterval fsyncs in the background every Options.Interval;
	// a machine crash can lose at most the last interval of acks.
	PolicyInterval
	// PolicyOff never fsyncs the segment files. Process crashes lose
	// nothing (the OS holds every committed write); machine crashes may.
	PolicyOff
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("wal.Policy(%d)", int(p))
}

// ParsePolicy maps the flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures Open. Dir is required; everything else has a
// usable default.
type Options struct {
	// Dir is the log directory; created if absent.
	Dir string
	// SegBytes is the segment rotation threshold: a Commit that finds
	// the active segment at or above it rotates first. 0 means 64 MiB.
	SegBytes int64
	// Fsync is the commit durability policy (see Policy).
	Fsync Policy
	// Interval is the background fsync period under PolicyInterval.
	// 0 means 100ms.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegBytes <= 0 {
		o.SegBytes = 64 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Metrics is a point-in-time copy of the log's counters, all
// monotonically non-decreasing over the process lifetime (Segments is
// the current segment-file count, a gauge).
type Metrics struct {
	Records   int64 // records journaled
	Bytes     int64 // frame bytes written (headers included)
	Commits   int64 // Commit calls that wrote
	Fsyncs    int64 // fsyncs issued (any path)
	Rotations int64 // segment rotations
	Snapshots int64 // snapshots written
	Errors    int64 // write/fsync/rotate/snapshot failures
	Segments  int64 // live segment files (gauge)
	LastError string
}

// RecoveryStats describes what Open found and replayed.
type RecoveryStats struct {
	SnapshotLoaded bool  // a valid snapshot seeded the state
	SnapshotSeg    int64 // its base segment index (first replayed)
	Segments       int   // segment files scanned
	Records        int   // records in the valid prefix
	TruncatedBytes int64 // torn-tail bytes dropped
	Torn           bool  // a bad frame ended the scan early
}

// Recovered is everything Open reconstructed: the snapshot to seed
// state from (nil when none), the journaled records after it, in
// order, and the scan statistics.
type Recovered struct {
	Snapshot *Snapshot
	Records  []Record
	Stats    RecoveryStats
}

// Log is the append side. Append* methods buffer frames; Commit writes
// them to the active segment and applies the fsync policy. All methods
// are safe for concurrent use; a Commit makes every previously
// buffered frame durable (group commit), whichever goroutine buffered
// it.
type Log struct {
	opt Options

	mu       sync.Mutex
	f        *os.File
	seg      int64
	size     int64
	pend     []byte // encoded frames awaiting Commit
	pendN    int64
	scratch  []byte // payload encode buffer
	dirty    bool   // written since last fsync
	degraded bool   // last durability operation failed; see Degraded
	closed   bool
	m        Metrics

	stop chan struct{}
	wg   sync.WaitGroup
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(i int64) string  { return fmt.Sprintf("%s%016d%s", segPrefix, i, segSuffix) }
func snapName(i int64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, i, snapSuffix) }

func parseIndex(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	i, err := strconv.ParseInt(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// Open recovers the log in opt.Dir (creating it when absent) and
// returns the append handle positioned after the last valid frame.
// Corruption is never an error from Open: the log is truncated to its
// longest valid prefix and the damage is reported in Recovered.Stats.
// Errors are reserved for real I/O failures and unreadable directories.
func Open(opt Options) (*Log, *Recovered, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, nil, errors.New("wal: no directory given")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", opt.Dir, err)
	}
	entries, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", opt.Dir, err)
	}
	var segs, snaps []int64
	for _, e := range entries {
		if i, ok := parseIndex(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, i)
		}
		if i, ok := parseIndex(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, i)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovered{}
	// Newest valid snapshot wins; invalid ones are skipped (and cleaned
	// up below once a newer valid one or none is chosen).
	base := int64(1)
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := loadSnapshot(filepath.Join(opt.Dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		rec.Snapshot = snap
		rec.Stats.SnapshotLoaded = true
		rec.Stats.SnapshotSeg = snaps[i]
		base = snaps[i]
		break
	}

	// Replay segments from base upward; the first bad frame truncates
	// the log there and removes everything after it.
	active := base
	torn := false
	for _, si := range segs {
		if si < base {
			continue
		}
		if torn {
			_ = os.Remove(filepath.Join(opt.Dir, segName(si)))
			continue
		}
		path := filepath.Join(opt.Dir, segName(si))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading segment %s: %w", path, err)
		}
		rec.Stats.Segments++
		valid, _ := scanFrames(data, func(payload []byte) error {
			r, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			rec.Records = append(rec.Records, r)
			rec.Stats.Records++
			return nil
		})
		active = si
		if valid < int64(len(data)) {
			rec.Stats.TruncatedBytes += int64(len(data)) - valid
			rec.Stats.Torn = true
			torn = true
			if err := os.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
		}
	}

	// Drop segments below the snapshot base and superseded snapshots
	// (best-effort; a crash between snapshot and cleanup leaves strays
	// that are simply ignored and re-deleted here).
	for _, si := range segs {
		if si < base {
			_ = os.Remove(filepath.Join(opt.Dir, segName(si)))
		}
	}
	for _, si := range snaps {
		if rec.Stats.SnapshotLoaded && si == base {
			continue
		}
		_ = os.Remove(filepath.Join(opt.Dir, snapName(si)))
	}

	l := &Log{opt: opt, seg: active}
	if err := l.openSegment(active); err != nil {
		return nil, nil, err
	}
	l.countSegments()
	if opt.Fsync == PolicyInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.fsyncLoop()
	}
	return l, rec, nil
}

func (l *Log) openSegment(i int64) error {
	f, err := os.OpenFile(filepath.Join(l.opt.Dir, segName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment %d: %w", i, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment %d: %w", i, err)
	}
	l.f, l.seg, l.size = f, i, st.Size()
	return nil
}

func (l *Log) countSegments() {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return
	}
	n := int64(0)
	for _, e := range entries {
		if _, ok := parseIndex(e.Name(), segPrefix, segSuffix); ok {
			n++
		}
	}
	l.m.Segments = n
}

func (l *Log) fsyncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				if err := l.f.Sync(); err != nil {
					l.noteErr(err)
				} else {
					l.m.Fsyncs++
					l.dirty = false
					// The durability pipeline is proven whole again.
					l.degraded = false
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// noteErr records a failure on the metrics ledger and marks the log
// degraded; callers hold l.mu.
func (l *Log) noteErr(err error) {
	l.m.Errors++
	l.m.LastError = err.Error()
	l.degraded = true
}

// Degraded reports whether the log's most recent durability operation
// failed — a failed write, fsync, rotation, or snapshot whose damage
// has not yet been repaired by a subsequent success. While degraded,
// "acked ⇒ durable" cannot be promised, so the serving layer flips
// health to 503 instead of silently acking writes it may lose. The
// string is the last error for the health payload.
func (l *Log) Degraded() (bool, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded, l.m.LastError
}

// Metrics returns a copy of the counters.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m
}

// AppendBatch buffers an unkeyed add (or, with sub, exact-deletion)
// batch. Buffering cannot fail; durability is decided at Commit.
func (l *Log) AppendBatch(xs []float64, sub bool) {
	t := RecAdd
	if sub {
		t = RecSub
	}
	l.mu.Lock()
	l.scratch = encodeBatch(l.scratch[:0], t, "", xs)
	l.frameLocked()
	l.mu.Unlock()
}

// AppendKeyed buffers a keyed add/sub batch.
func (l *Log) AppendKeyed(key string, xs []float64, sub bool) {
	t := RecKeyedAdd
	if sub {
		t = RecKeyedSub
	}
	l.mu.Lock()
	l.scratch = encodeBatch(l.scratch[:0], t, key, xs)
	l.frameLocked()
	l.mu.Unlock()
}

// AppendBlob buffers a merged partial (RecPartial) or keyed envelope
// (RecKeyedEnvelope) with its idempotency token ("" when none).
func (l *Log) AppendBlob(t Type, token string, blob []byte) {
	l.mu.Lock()
	l.scratch = encodeBlob(l.scratch[:0], t, token, blob)
	l.frameLocked()
	l.mu.Unlock()
}

// AppendReset buffers a reset marker.
func (l *Log) AppendReset() {
	l.mu.Lock()
	l.scratch = append(l.scratch[:0], byte(RecReset))
	l.frameLocked()
	l.mu.Unlock()
}

// frameLocked wraps l.scratch in a frame onto the pending buffer.
func (l *Log) frameLocked() {
	payload := l.scratch
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], payload)
	l.pend = append(l.pend, hdr[:]...)
	l.pend = append(l.pend, payload...)
	l.pendN++
}

// Commit writes every buffered frame to the active segment in one
// write, rotating first when the segment is full, and applies the
// fsync policy. A nil return means every record buffered before this
// call is at least OS-durable (and disk-durable under PolicyAlways).
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	if len(l.pend) == 0 {
		return nil
	}
	if l.size >= l.opt.SegBytes {
		if err := l.rotateLocked(); err != nil {
			l.noteErr(err)
			return err
		}
	}
	n, err := l.f.Write(l.pend)
	l.size += int64(n)
	if err != nil {
		l.noteErr(err)
		return fmt.Errorf("wal: appending: %w", err)
	}
	l.m.Bytes += int64(len(l.pend))
	l.m.Records += l.pendN
	l.m.Commits++
	l.pend = l.pend[:0]
	l.pendN = 0
	if l.opt.Fsync == PolicyAlways {
		if err := l.f.Sync(); err != nil {
			l.noteErr(err)
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.m.Fsyncs++
	} else {
		l.dirty = true
	}
	// A fully successful commit repairs the degraded flag — except under
	// PolicyInterval, where the outstanding fsync obligation belongs to
	// the background loop and only its success proves durability again.
	if l.opt.Fsync != PolicyInterval {
		l.degraded = false
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one. Under
// the fsyncing policies the sealed segment is fsynced first: its frames
// must not be reordered past frames in the new segment by the page
// cache on a machine crash. PolicyOff has already conceded machine
// crashes, so it skips the barrier.
func (l *Log) rotateLocked() error {
	if l.opt.Fsync != PolicyOff {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync before rotate: %w", err)
		}
		l.m.Fsyncs++
		l.dirty = false
	}
	// Open the successor before closing the sealed segment: openSegment
	// only swaps l.f in on success, so a failed rotation (disk full,
	// directory gone) leaves the log appending to the old segment — a
	// degraded but recoverable state — instead of wedged on a closed
	// file handle.
	old, oldSeg := l.f, l.seg
	if err := l.openSegment(l.seg + 1); err != nil {
		return err
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %d: %w", oldSeg, err)
	}
	l.m.Rotations++
	l.m.Segments++
	l.syncDir()
	return nil
}

// syncDir fsyncs the log directory so renames/creates are durable;
// best-effort (some filesystems reject directory fsync).
func (l *Log) syncDir() {
	d, err := os.Open(l.opt.Dir)
	if err != nil {
		return
	}
	if d.Sync() == nil {
		l.m.Fsyncs++
	}
	d.Close()
}

// WriteSnapshot makes snap the log's new base: pending frames are
// committed and the active segment sealed, the snapshot is written
// (temp file + rename + directory fsync), and every segment and
// snapshot it supersedes is deleted. After a successful return,
// recovery loads snap and replays only records journaled after this
// call. The caller must guarantee snap captures every record committed
// so far (i.e. hold its apply lock across state capture and this
// call).
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.commitLocked(); err != nil {
		return err
	}
	// Seal the active segment so the snapshot's base is a fresh file.
	if err := l.rotateLocked(); err != nil {
		l.noteErr(err)
		return err
	}
	base := l.seg
	if err := writeSnapshot(l.opt.Dir, snapName(base), base, snap); err != nil {
		l.noteErr(err)
		return err
	}
	l.syncDir()
	l.m.Snapshots++
	// Everything below base is superseded; so are older snapshots.
	entries, err := os.ReadDir(l.opt.Dir)
	if err == nil {
		for _, e := range entries {
			if i, ok := parseIndex(e.Name(), segPrefix, segSuffix); ok && i < base {
				if os.Remove(filepath.Join(l.opt.Dir, e.Name())) == nil {
					l.m.Segments--
				}
			}
			if i, ok := parseIndex(e.Name(), snapPrefix, snapSuffix); ok && i < base {
				_ = os.Remove(filepath.Join(l.opt.Dir, e.Name()))
			}
		}
	}
	return nil
}

// Close commits pending frames, fsyncs (policies other than off), and
// closes the active segment. Safe to call more than once; the log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.commitLocked()
	if l.opt.Fsync != PolicyOff {
		if serr := l.f.Sync(); serr == nil {
			l.m.Fsyncs++
		}
	}
	cerr := l.f.Close()
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
	}
	if err != nil {
		return err
	}
	return cerr
}
