package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opt Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(opt)
	if err != nil {
		t.Fatalf("Open(%+v): %v", opt, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func sampleRecords() []Record {
	return []Record{
		{Type: RecAdd, Values: []float64{1, -2.5, math.Inf(1), math.Copysign(0, -1)}},
		{Type: RecSub, Values: []float64{math.NaN(), 1e300}},
		{Type: RecKeyedAdd, Key: "eu-west", Values: []float64{3.25}},
		{Type: RecKeyedSub, Key: "ap-south", Values: nil},
		{Type: RecPartial, Token: "tok-1", Blob: []byte{0xC7, 1, 2, 3}},
		{Type: RecKeyedEnvelope, Token: "", Blob: []byte{0xC9, 9}},
		{Type: RecReset},
	}
}

func appendRecord(l *Log, r Record) {
	switch r.Type {
	case RecAdd:
		l.AppendBatch(r.Values, false)
	case RecSub:
		l.AppendBatch(r.Values, true)
	case RecKeyedAdd:
		l.AppendKeyed(r.Key, r.Values, false)
	case RecKeyedSub:
		l.AppendKeyed(r.Key, r.Values, true)
	case RecPartial, RecKeyedEnvelope:
		l.AppendBlob(r.Type, r.Token, r.Blob)
	case RecReset:
		l.AppendReset()
	}
}

// recordsEqual compares bit patterns, not float values: NaN != NaN under
// ==, but the journal must preserve the exact bits.
func recordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.Key != b.Key || a.Token != b.Token || !bytes.Equal(a.Blob, b.Blob) {
		return false
	}
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	return true
}

func checkRecovered(t *testing.T, got []Record, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		if w.Values == nil {
			w.Values = []float64{}
		}
		g := got[i]
		if g.Values == nil {
			g.Values = []float64{}
		}
		if !recordsEqual(g, w) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestRoundTripAllRecordTypes(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, Options{Dir: dir, Fsync: PolicyAlways})
	if rec.Stats.Records != 0 || rec.Stats.SnapshotLoaded {
		t.Fatalf("fresh dir recovered %+v", rec.Stats)
	}
	want := sampleRecords()
	for _, r := range want {
		appendRecord(l, r)
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	m := l.Metrics()
	if m.Records != int64(len(want)) || m.Commits != int64(len(want)) || m.Fsyncs < int64(len(want)) {
		t.Fatalf("metrics after %d records: %+v", len(want), m)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec2 := mustOpen(t, Options{Dir: dir})
	checkRecovered(t, rec2.Records, want)
	if rec2.Stats.Torn || rec2.Stats.TruncatedBytes != 0 {
		t.Fatalf("clean log reported torn recovery: %+v", rec2.Stats)
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	l.AppendBatch([]float64{1}, false)
	l.AppendKeyed("k", []float64{2}, false)
	l.AppendBatch([]float64{3}, true)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Commits != 1 || m.Records != 3 {
		t.Fatalf("group commit metrics: %+v", m)
	}
	l.Close()
	_, rec := mustOpen(t, Options{Dir: dir})
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
}

// TestTornTailTruncates drives every prefix: for a log of n records the
// segment is truncated at each byte boundary; recovery must replay the
// longest valid frame prefix and never error, and appending after a
// torn recovery must produce a clean log again.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	want := sampleRecords()
	var boundaries []int64
	seg := filepath.Join(dir, segName(1))
	for _, r := range want {
		appendRecord(l, r)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Size())
	}
	l.Close()
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for i, b := range boundaries {
		// Exactly at the frame boundary: records 0..i survive.
		tdir := t.TempDir()
		writeSeg(t, tdir, 1, full[:b])
		_, rec := mustOpen(t, Options{Dir: tdir})
		checkRecovered(t, rec.Records, want[:i+1])

		// Mid-frame (3 bytes short): the torn record is dropped.
		tdir = t.TempDir()
		writeSeg(t, tdir, 1, full[:b-3])
		l2, rec2 := mustOpen(t, Options{Dir: tdir})
		checkRecovered(t, rec2.Records, want[:i])
		if !rec2.Stats.Torn || rec2.Stats.TruncatedBytes == 0 {
			t.Fatalf("boundary %d: torn tail not reported: %+v", i, rec2.Stats)
		}
		// The tail was physically truncated: appending and recovering
		// again must yield prefix + the new record, nothing else.
		l2.AppendBatch([]float64{42}, false)
		if err := l2.Commit(); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		_, rec3 := mustOpen(t, Options{Dir: tdir})
		checkRecovered(t, rec3.Records, append(append([]Record{}, want[:i]...), Record{Type: RecAdd, Values: []float64{42}}))
	}
}

func writeSeg(t *testing.T, dir string, idx int64, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, segName(idx)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionMidHistory flips a byte in the FIRST of two segments:
// replay must stop at the corrupt frame and drop the later segment —
// the valid prefix is the log.
func TestCorruptionMidHistory(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff, SegBytes: 1})
	// SegBytes 1 forces a rotation at every commit: record i lands in
	// segment i+1.
	for i := 0; i < 4; i++ {
		l.AppendBatch([]float64{float64(i)}, false)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Corrupt segment 2 (the second record).
	seg2 := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	checkRecovered(t, rec.Records, []Record{{Type: RecAdd, Values: []float64{0}}})
	if !rec.Stats.Torn {
		t.Fatalf("mid-history corruption not reported: %+v", rec.Stats)
	}
	// The segments after the corruption are gone.
	for i := int64(3); i <= 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, segName(i))); !os.IsNotExist(err) {
			t.Errorf("segment %d survived a mid-history truncation", i)
		}
	}
}

func TestRotationAndReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff, SegBytes: 64})
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Type: RecAdd, Values: []float64{float64(i)}}
		want = append(want, r)
		appendRecord(l, r)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if m := l.Metrics(); m.Rotations == 0 || m.Segments < 2 {
		t.Fatalf("no rotation at SegBytes=64: %+v", m)
	}
	l.Close()
	_, rec := mustOpen(t, Options{Dir: dir})
	checkRecovered(t, rec.Records, want)
	if rec.Stats.Segments < 2 {
		t.Fatalf("replay did not cross segments: %+v", rec.Stats)
	}
}

func TestSnapshotTruncatesReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	l.AppendBatch([]float64{1, 2}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Global: []byte{0xC7, 9, 9}, Keyed: []byte{0xC9}, Tokens: []string{"a", "b"}}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	l.AppendBatch([]float64{3}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Snapshots != 1 {
		t.Fatalf("snapshot metrics: %+v", m)
	}
	l.Close()

	_, rec := mustOpen(t, Options{Dir: dir})
	if !rec.Stats.SnapshotLoaded {
		t.Fatal("snapshot not loaded")
	}
	if !reflect.DeepEqual(rec.Snapshot, snap) {
		t.Fatalf("snapshot = %+v, want %+v", rec.Snapshot, snap)
	}
	checkRecovered(t, rec.Records, []Record{{Type: RecAdd, Values: []float64{3}}})
	// The pre-snapshot segment is deleted.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Error("pre-snapshot segment survived")
	}
}

// TestCorruptSnapshotFallsBack verifies that a damaged snapshot file is
// ignored: with no older snapshot, recovery replays the full log.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	l.AppendBatch([]float64{7}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A snapshot claiming base 9 that fails its CRC must not hide the
	// segments (nor make recovery error).
	if err := os.WriteFile(filepath.Join(dir, snapName(9)), []byte("PSWSgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.Stats.SnapshotLoaded {
		t.Fatal("corrupt snapshot loaded")
	}
	checkRecovered(t, rec.Records, []Record{{Type: RecAdd, Values: []float64{7}}})
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": PolicyAlways, "always": PolicyAlways,
		"interval": PolicyInterval, "off": PolicyOff,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestIntervalPolicyFsyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyInterval, Interval: time.Millisecond})
	l.AppendBatch([]float64{1}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Metrics().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

// TestAppendCommitHotPathZeroAlloc is the journal hot-path guard: once
// the scratch buffers are warm, journaling a batch and committing it
// (fsync off) must not allocate.
func TestAppendCommitHotPathZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64(i) * 1.5
	}
	// Warm the scratch and pending buffers.
	for i := 0; i < 4; i++ {
		l.AppendBatch(xs, false)
		l.AppendKeyed("warm-key", xs[:8], true)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		l.AppendBatch(xs, false)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendBatch+Commit allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		l.AppendKeyed("warm-key", xs[:8], false)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendKeyed+Commit allocates %.1f times per op, want 0", n)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	l, _ := mustOpen(t, Options{Dir: t.TempDir()})
	l.Close()
	l.AppendBatch([]float64{1}, false)
	if err := l.Commit(); err == nil {
		t.Fatal("Commit after Close succeeded")
	}
}

func TestTypeAndPolicyStrings(t *testing.T) {
	want := map[Type]string{
		RecAdd: "add", RecSub: "sub",
		RecKeyedAdd: "keyed-add", RecKeyedSub: "keyed-sub",
		RecPartial: "partial", RecKeyedEnvelope: "keyed-envelope",
		RecReset: "reset", RecKeyedJSON: "keyed-json",
		Type(200): "wal.Type(200)",
	}
	for typ, s := range want {
		if got := typ.String(); got != s {
			t.Errorf("Type(%d).String() = %q, want %q", uint8(typ), got, s)
		}
	}
	pols := map[Policy]string{
		PolicyAlways: "always", PolicyInterval: "interval", PolicyOff: "off",
		Policy(9): "wal.Policy(9)",
	}
	for pol, s := range pols {
		if got := pol.String(); got != s {
			t.Errorf("Policy(%d).String() = %q, want %q", int(pol), got, s)
		}
	}
}

// A snapshot with a valid header but flipped payload byte must fail its
// CRC and be skipped in favor of a full replay — the mid-file twin of
// TestCorruptSnapshotFallsBack's truncated-header case.
func TestSnapshotCRCMismatchFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: PolicyOff})
	l.AppendBatch([]float64{1, 2}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&Snapshot{Global: []byte("g"), Tokens: []string{"tok"}}); err != nil {
		t.Fatal(err)
	}
	l.AppendBatch([]float64{3}, false)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var snapPath string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == snapSuffix {
			snapPath = filepath.Join(dir, e.Name())
		}
	}
	if snapPath == "" {
		t.Fatal("no snapshot written")
	}
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, Options{Dir: dir})
	if rec.Stats.SnapshotLoaded {
		t.Fatal("CRC-broken snapshot loaded")
	}
	// The pre-snapshot segment was truncated away when the snapshot was
	// written, so a fallback replay sees only the tail records. Losing a
	// snapshot to corruption after truncation is detectable, not
	// silently wrong: recovery reports no snapshot.
	checkRecovered(t, rec.Records, []Record{{Type: RecAdd, Values: []float64{3}}})
}
