package core

import (
	"math"
	"testing"

	"parsum/internal/gen"
	"parsum/internal/oracle"
)

// TestSumTruncatedFaithful: the fixed-γ engine must produce a faithful
// rounding on well-conditioned data (certified, one truncated pass) and on
// hostile data that defeats the certificate (exact fallback) alike.
func TestSumTruncatedFaithful(t *testing.T) {
	cases := map[string][]float64{
		"empty":     nil,
		"singleton": {0x1p-1074},
		"well-conditioned": gen.New(gen.Config{
			Dist: gen.CondOne, N: 50000, Delta: 30, Seed: 3}).Slice(),
		"huge-kappa": gen.New(gen.Config{
			Dist: gen.SumZero, N: 50000, Delta: 2000, Seed: 4}).Slice(),
		"anderson": gen.New(gen.Config{
			Dist: gen.Anderson, N: 50000, Delta: 1200, Seed: 5}).Slice(),
	}
	// Full-range alternating cancellation: σ exceeds truncGamma, so the
	// truncated pass drops components and the certificate must arbitrate.
	var full []float64
	for e := -1074; e <= 1023; e += 3 {
		full = append(full, math.Ldexp(1, e), -math.Ldexp(1, e))
	}
	full = append(full, 1.5, math.SmallestNonzeroFloat64)
	cases["full-range"] = full

	for name, xs := range cases {
		got := SumTruncated(xs)
		if !oracle.Faithful(xs, got) {
			t.Errorf("%s: SumTruncated=%g is not faithful (oracle %g)", name, got, oracle.Sum(xs))
		}
	}
	if got := SumTruncated(nil); math.Float64bits(got) != 0 {
		t.Errorf("empty input: bits %x, want +0", math.Float64bits(got))
	}
}

// TestSumTruncatedSpecials: IEEE semantics survive truncation.
func TestSumTruncatedSpecials(t *testing.T) {
	if got := SumTruncated([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("with +Inf: %g", got)
	}
	if got := SumTruncated([]float64{math.Inf(1), math.Inf(-1)}); !math.IsNaN(got) {
		t.Errorf("opposing infinities: %g", got)
	}
	if got := SumTruncated([]float64{math.NaN(), 1}); !math.IsNaN(got) {
		t.Errorf("NaN: %g", got)
	}
}
