package core

import (
	"parsum/internal/accum"
)

// AdaptiveStats reports what the condition-number-sensitive algorithm did:
// how many truncation rounds ran, the final truncation bound r, the total
// work (superaccumulator components processed across all merges and
// rounds — the quantity Theorem 4 bounds by O(n·log C(X))), and whether the
// result was certified by the stopping condition or by exactness (nothing
// ever truncated).
type AdaptiveStats struct {
	Rounds    int
	FinalR    int
	Work      int64
	Exact     bool // final round truncated nothing — result is exact
	Certified bool // stopping condition held (always true on return)
}

// SumAdaptive implements the paper's Section 4 algorithm: bottom-up
// summation over an implicit binary tree using r-truncated sparse
// superaccumulators, starting at r = 2 and squaring r each round until the
// stopping condition certifies a faithfully rounded result or nothing is
// truncated (making the sum exact). Returns the rounded sum and statistics.
//
// For well-conditioned inputs the first round (r = 2) already certifies, so
// the total work is linear — matching the paper's observation that the
// method is condition-number sensitive.
func SumAdaptive(xs []float64, opt Options) (float64, AdaptiveStats) {
	var st AdaptiveStats
	n := len(xs)
	if n == 0 {
		st.Certified = true
		st.Exact = true
		return 0, st
	}
	w := opt.Width
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 1 << 16 // exact-leaf block size; the tree only matters above it
	}
	for r := 2; ; r = r * r {
		st.Rounds++
		st.FinalR = r
		t := adaptiveMerge(xs, r, w, chunk, &st.Work)
		if !t.Truncated {
			st.Exact = true
			st.Certified = true
			return t.S.Round(), st
		}
		if t.StopFloat(n) && t.StopStrict() {
			st.Certified = true
			return t.S.Round(), st
		}
		// Squaring r beyond any possible accumulator size means the next
		// round cannot truncate; loop once more and exit via !Truncated.
	}
}

// adaptiveMerge performs the bottom-up truncated merge over xs[lo:hi],
// recursing like the paper's summation tree. Leaves are converted in
// blocks (an exact window accumulation of a chunk, truncated afterwards)
// rather than one float at a time; this is the same tree with its lowest
// log₂(chunk) levels collapsed, and it truncates strictly less than the
// per-element tree would, so the stopping-condition soundness argument is
// unchanged.
func adaptiveMerge(xs []float64, r int, width uint, chunk int, work *int64) *accum.Truncated {
	if len(xs) <= chunk {
		a := accum.NewWindow(width)
		a.AddSlice(xs)
		*work += int64(len(xs))
		s := a.ToSparse()
		*work += int64(s.Len())
		return accum.NewTruncated(s, r)
	}
	mid := len(xs) / 2
	left := adaptiveMerge(xs[:mid], r, width, chunk, work)
	right := adaptiveMerge(xs[mid:], r, width, chunk, work)
	*work += int64(left.S.Len() + right.S.Len())
	return accum.MergeTruncated(left, right, r)
}
