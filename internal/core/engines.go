package core

import (
	"fmt"

	"parsum/internal/accum"
	"parsum/internal/engine"
)

// Registry names of the engines this package provides. EngineDense and
// EngineSparse have specialized parallel hot paths (pooled accumulators,
// Lemma 1 tree merge); the others run through the generic engine path.
const (
	EngineDense     = "dense"
	EngineSparse    = "sparse"
	EngineAdaptive  = "adaptive"
	EngineSmall     = "small"
	EngineLarge     = "large"
	EngineTruncated = "truncated"
)

func init() {
	exactParallel := engine.Caps{
		Exact:                 true,
		CorrectlyRounded:      true,
		DeterministicParallel: true,
		Streaming:             true,
		// The signed-digit representations are closed under negation, so
		// every superaccumulator engine supports exact deletion.
		Invertible: true,
	}
	engine.Register(engine.New(EngineDense,
		"full-range (α,β)-regularized dense superaccumulator with carry-free Lemma 1 merges",
		exactParallel, Sum,
		func() engine.Accumulator { return &denseAcc{d: accum.NewDense(0)} }))
	engine.Register(engine.New(EngineSparse,
		"active-window sparse superaccumulator (σ(n)-proportional state, carry-free merges)",
		exactParallel, SumSparse,
		func() engine.Accumulator { return &windowAcc{w: accum.NewWindow(0)} }))
	engine.Register(engine.New(EngineSmall,
		"Neal-style small superaccumulator (carry-propagating merge baseline)",
		exactParallel,
		func(xs []float64) float64 { s := accum.NewSmall(); s.AddSlice(xs); return s.Round() },
		func() engine.Accumulator { return &smallAcc{s: accum.NewSmall()} }))
	engine.Register(engine.New(EngineLarge,
		"Neal-style large superaccumulator (one bin per exponent, fastest sequential accumulate)",
		exactParallel,
		func(xs []float64) float64 { l := accum.NewLarge(); l.AddSlice(xs); return l.Round() },
		func() engine.Accumulator { return &largeAcc{l: accum.NewLarge()} }))
	engine.Register(engine.New(EngineAdaptive,
		"condition-number-sensitive γ-truncated summation (Theorem 4; faithful rounding)",
		engine.Caps{Faithful: true},
		func(xs []float64) float64 { v, _ := SumAdaptive(xs, Options{}); return v },
		nil))
	engine.Register(engine.New(EngineTruncated,
		"fixed-γ truncated sparse summation (Section 4) with certified exact fallback",
		engine.Caps{Faithful: true},
		SumTruncated,
		nil))
}

// denseAcc adapts accum.Dense to the engine.Accumulator interface.
type denseAcc struct{ d *accum.Dense }

func (a *denseAcc) Add(x float64)              { a.d.Add(x) }
func (a *denseAcc) AddSlice(xs []float64)      { a.d.AddSlice(xs) }
func (a *denseAcc) AddSlice32(xs []float32)    { a.d.AddSlice32(xs) }
func (a *denseAcc) Sub(x float64)              { a.d.Sub(x) }
func (a *denseAcc) SubSlice(xs []float64)      { a.d.SubSlice(xs) }
func (a *denseAcc) SubSlice32(xs []float32)    { a.d.SubSlice32(xs) }
func (a *denseAcc) Merge(o engine.Accumulator) { a.d.Merge(o.(*denseAcc).d) }

func (a *denseAcc) SubAccumulator(o engine.Accumulator) { a.d.AddNeg(o.(*denseAcc).d) }
func (a *denseAcc) Round() float64                      { return a.d.Round() }
func (a *denseAcc) Round32() float32                    { return a.d.Round32() }
func (a *denseAcc) Reset()                              { a.d.Reset() }
func (a *denseAcc) Clone() engine.Accumulator           { return &denseAcc{d: a.d.Clone()} }
func (a *denseAcc) Sigma() int                          { return a.d.ToSparse().Len() }

// MarshalBinary implements the wire-partial codec for the dense engine.
func (a *denseAcc) MarshalBinary() ([]byte, error) { return a.d.MarshalBinary() }

// UnmarshalBinary decodes a wire partial, enforcing the engine's canonical
// digit width: the dense engine always runs at accum.DefaultWidth, and a
// partial of any other width could not merge with local accumulators.
func (a *denseAcc) UnmarshalBinary(data []byte) error {
	var d accum.Dense
	if err := d.UnmarshalBinary(data); err != nil {
		return err
	}
	if d.Width() != a.d.Width() {
		return fmt.Errorf("engine %q: partial has digit width %d, engine runs at %d", EngineDense, d.Width(), a.d.Width())
	}
	*a.d = d
	return nil
}

// windowAcc adapts accum.Window to the engine.Accumulator interface.
type windowAcc struct{ w *accum.Window }

func (a *windowAcc) Add(x float64)              { a.w.Add(x) }
func (a *windowAcc) AddSlice(xs []float64)      { a.w.AddSlice(xs) }
func (a *windowAcc) AddSlice32(xs []float32)    { a.w.AddSlice32(xs) }
func (a *windowAcc) Sub(x float64)              { a.w.Sub(x) }
func (a *windowAcc) SubSlice(xs []float64)      { a.w.SubSlice(xs) }
func (a *windowAcc) SubSlice32(xs []float32)    { a.w.SubSlice32(xs) }
func (a *windowAcc) Merge(o engine.Accumulator) { a.w.Merge(o.(*windowAcc).w) }

func (a *windowAcc) SubAccumulator(o engine.Accumulator) { a.w.AddNeg(o.(*windowAcc).w) }
func (a *windowAcc) Round() float64                      { return a.w.Round() }
func (a *windowAcc) Round32() float32                    { return a.w.Round32() }
func (a *windowAcc) Reset()                              { a.w.Reset() }
func (a *windowAcc) Clone() engine.Accumulator           { return &windowAcc{w: a.w.Clone()} }
func (a *windowAcc) Sigma() int                          { return a.w.ToSparse().Len() }

// MarshalBinary implements the wire-partial codec for the sparse engine.
func (a *windowAcc) MarshalBinary() ([]byte, error) { return a.w.MarshalBinary() }

// UnmarshalBinary decodes a wire partial, enforcing the engine's canonical
// digit width (see denseAcc.UnmarshalBinary).
func (a *windowAcc) UnmarshalBinary(data []byte) error {
	var w accum.Window
	if err := w.UnmarshalBinary(data); err != nil {
		return err
	}
	if w.Width() != a.w.Width() {
		return fmt.Errorf("engine %q: partial has digit width %d, engine runs at %d", EngineSparse, w.Width(), a.w.Width())
	}
	*a.w = w
	return nil
}

// smallAcc adapts accum.Small to the engine.Accumulator interface.
type smallAcc struct{ s *accum.Small }

func (a *smallAcc) Add(x float64)              { a.s.Add(x) }
func (a *smallAcc) AddSlice(xs []float64)      { a.s.AddSlice(xs) }
func (a *smallAcc) AddSlice32(xs []float32)    { a.s.AddSlice32(xs) }
func (a *smallAcc) Sub(x float64)              { a.s.Sub(x) }
func (a *smallAcc) SubSlice(xs []float64)      { a.s.SubSlice(xs) }
func (a *smallAcc) SubSlice32(xs []float32)    { a.s.SubSlice32(xs) }
func (a *smallAcc) Merge(o engine.Accumulator) { a.s.Merge(o.(*smallAcc).s) }

func (a *smallAcc) SubAccumulator(o engine.Accumulator) { a.s.AddNeg(o.(*smallAcc).s) }
func (a *smallAcc) Round() float64                      { return a.s.Round() }
func (a *smallAcc) Reset()                              { a.s.Reset() }
func (a *smallAcc) Clone() engine.Accumulator           { return &smallAcc{s: a.s.Clone()} }

// MarshalBinary implements the wire-partial codec for the small engine;
// Small's chunk spacing is fixed, so no width enforcement is needed beyond
// the accum codec's own.
func (a *smallAcc) MarshalBinary() ([]byte, error) { return a.s.MarshalBinary() }

// UnmarshalBinary implements the wire-partial codec for the small engine.
func (a *smallAcc) UnmarshalBinary(data []byte) error { return a.s.UnmarshalBinary(data) }

// largeAcc adapts accum.Large to the engine.Accumulator interface.
type largeAcc struct{ l *accum.Large }

func (a *largeAcc) Add(x float64)              { a.l.Add(x) }
func (a *largeAcc) AddSlice(xs []float64)      { a.l.AddSlice(xs) }
func (a *largeAcc) Sub(x float64)              { a.l.Sub(x) }
func (a *largeAcc) SubSlice(xs []float64)      { a.l.SubSlice(xs) }
func (a *largeAcc) Merge(o engine.Accumulator) { a.l.Merge(o.(*largeAcc).l) }

func (a *largeAcc) SubAccumulator(o engine.Accumulator) { a.l.AddNeg(o.(*largeAcc).l) }
func (a *largeAcc) Round() float64                      { return a.l.Round() }
func (a *largeAcc) Reset()                              { a.l.Reset() }
func (a *largeAcc) Clone() engine.Accumulator           { return &largeAcc{l: a.l.Clone()} }

// MarshalBinary implements the wire-partial codec for the large engine;
// Large's base width is fixed, enforced by the accum codec.
func (a *largeAcc) MarshalBinary() ([]byte, error) { return a.l.MarshalBinary() }

// UnmarshalBinary implements the wire-partial codec for the large engine.
func (a *largeAcc) UnmarshalBinary(data []byte) error { return a.l.UnmarshalBinary(data) }
