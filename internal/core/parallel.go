package core

import (
	"sync"
	"sync/atomic"

	"parsum/internal/accum"
	"parsum/internal/engine"
)

// The parallel hot path: workers pull fixed-size chunks off a shared
// atomic cursor, accumulate them exactly into pooled per-worker
// superaccumulators, and the partials combine in a log-depth merge tree.
// Because every partial is exact, none of this — pool reuse, chunk size,
// merge shape — can change the result; it only changes the speed.

const (
	minAutoChunk    = 1 << 12
	maxAutoChunk    = 1 << 17
	chunksPerWorker = 8
)

// AutoChunk returns the chunk size the parallel paths use when
// Options.ChunkSize is zero: about chunksPerWorker chunks per worker so
// the dynamic scheduler can balance uneven progress, bounded below so the
// per-chunk scheduling cost stays negligible and above so a chunk's
// working set stays cache-resident. Exported so the benchmark harness can
// record the effective tuning alongside its measurements.
func AutoChunk(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	c := n / (workers * chunksPerWorker)
	if c < minAutoChunk {
		return minAutoChunk
	}
	if c > maxAutoChunk {
		return maxAutoChunk
	}
	return c
}

// densePools recycles full-range dense superaccumulators, one pool per
// digit width. A dense accumulator is a multi-KiB digit array, so reusing
// one across chunks, workers, and SumParallel calls keeps the hot path
// allocation-free after warm-up.
var densePools [accum.MaxWidth + 1]sync.Pool

func getDense(w uint) *accum.Dense {
	w = accum.CheckedWidth(w)
	if v := densePools[w].Get(); v != nil {
		d := v.(*accum.Dense)
		d.Reset()
		return d
	}
	return accum.NewDense(w)
}

func putDense(d *accum.Dense) { densePools[d.Width()].Put(d) }

// chunkCursor hands out half-open element ranges of an n-element input in
// chunk-sized steps, safely from any number of goroutines.
type chunkCursor struct {
	next  atomic.Int64
	chunk int
	n     int
}

func (c *chunkCursor) take() (lo, hi int, ok bool) {
	lo = int(c.next.Add(int64(c.chunk))) - c.chunk
	if lo >= c.n {
		return 0, 0, false
	}
	hi = lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	return lo, hi, true
}

// fanOut runs p workers over a shared chunk cursor on xs; each worker
// produces one partial via the worker function (which pulls ranges off
// cur until it is drained).
func fanOut[T any](xs []float64, p, chunk int, worker func(cur *chunkCursor) T) []T {
	cur := &chunkCursor{chunk: chunk, n: len(xs)}
	parts := make([]T, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts[w] = worker(cur)
		}(w)
	}
	wg.Wait()
	return parts
}

// MergeTree reduces partials in ⌈log2 p⌉ parallel levels (replacing the
// linear merge chain): level k combines parts[i] with parts[i+half] for
// all i concurrently. merge must be safe to run on disjoint pairs in
// parallel and may consume its second argument. Exported so other layers
// that hold exact partials (the sharded ingestion layer in
// internal/shard) combine them through the same log-depth Lemma 1 tree.
// parts must be non-empty; the slice is clobbered.
func MergeTree[T any](parts []T, merge func(dst, src T) T) T {
	for len(parts) > 1 {
		half := (len(parts) + 1) / 2
		var wg sync.WaitGroup
		for i := 0; i+half < len(parts); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				parts[i] = merge(parts[i], parts[i+half])
			}(i)
		}
		wg.Wait()
		parts = parts[:half]
	}
	return parts[0]
}

// parallelDense fans chunk accumulation out to p goroutines over pooled
// dense accumulators, then combines the regularized partials in a
// log-depth tree of Lemma 1 carry-free merges (AddRegularized leaves its
// result regularized, so levels compose). Consumed partials return to the
// pool as soon as they are merged.
func parallelDense(xs []float64, p, chunk int, width uint) float64 {
	parts := fanOut(xs, p, chunk, func(cur *chunkCursor) *accum.Dense {
		d := getDense(width)
		for {
			lo, hi, ok := cur.take()
			if !ok {
				break
			}
			d.AddSlice(xs[lo:hi])
		}
		d.Regularize()
		return d
	})
	root := MergeTree(parts, func(dst, src *accum.Dense) *accum.Dense {
		dst.AddRegularized(src)
		putDense(src)
		return dst
	})
	v := root.Round()
	putDense(root)
	return v
}

// parallelSparse is the same shape with window accumulators at the leaves
// and carry-free sparse merges up the tree.
func parallelSparse(xs []float64, p, chunk int, width uint) float64 {
	parts := fanOut(xs, p, chunk, func(cur *chunkCursor) *accum.Sparse {
		a := accum.NewWindow(width)
		for {
			lo, hi, ok := cur.take()
			if !ok {
				break
			}
			a.AddSlice(xs[lo:hi])
		}
		return a.ToSparse()
	})
	return MergeTree(parts, accum.MergeSparse).Round()
}

// parallelEngine is the generic parallel path for any registered engine
// whose capabilities promise a streaming accumulator with deterministic
// (exact) merges: per-worker accumulators over the shared chunk cursor,
// then the same log-depth merge tree through the engine interface.
func parallelEngine(xs []float64, e engine.Engine, p, chunk int) float64 {
	parts := fanOut(xs, p, chunk, func(cur *chunkCursor) engine.Accumulator {
		a := e.NewAccumulator()
		for {
			lo, hi, ok := cur.take()
			if !ok {
				break
			}
			a.AddSlice(xs[lo:hi])
		}
		return a
	})
	return MergeTree(parts, func(dst, src engine.Accumulator) engine.Accumulator {
		dst.Merge(src)
		return dst
	}).Round()
}
