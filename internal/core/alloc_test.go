package core

import (
	"testing"

	"parsum/internal/gen"
)

// TestParallelChunkLoopZeroAlloc asserts the parallel hot path's per-chunk
// work — pulling ranges off the shared cursor and bulk-accumulating them —
// allocates nothing once a worker holds its pooled accumulator. Goroutine
// spawn and pool traffic are excluded: they are per-call, not per-chunk.
func TestParallelChunkLoopZeroAlloc(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 1 << 14, Delta: 2000, Seed: 5}).Slice()
	d := getDense(0)
	defer putDense(d)
	cur := &chunkCursor{chunk: 1 << 12, n: len(xs)}
	if avg := testing.AllocsPerRun(10, func() {
		cur.next.Store(0)
		for {
			lo, hi, ok := cur.take()
			if !ok {
				break
			}
			d.AddSlice(xs[lo:hi])
		}
	}); avg != 0 {
		t.Fatalf("parallel chunk loop allocates %.1f times per drain, want 0", avg)
	}
}
