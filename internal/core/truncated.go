package core

// The Section-4 γ-truncated sparse superaccumulator as a standalone
// engine: where SumAdaptive searches for the smallest sufficient γ
// (squaring from 2), SumTruncated commits to one fixed γ — the paper's
// single-round configuration — and checks the stopping certificates once.
// When the certificate fails (or nothing can be certified), it falls back
// to an untruncated exact pass, so the declared Faithful capability holds
// unconditionally while well-conditioned inputs pay only the truncated
// cost.

// truncGamma is the fixed component budget. 64 components cover the full
// exponent spread of most realistic data at DefaultWidth (σ ≤ ⌈2098/32⌉+1
// = 67 only for inputs spanning the entire double range), so truncation —
// and with it the fallback — is rare off adversarial inputs.
const truncGamma = 64

// truncChunk is the exact-leaf block size of the merge tree, matching
// SumAdaptive's default.
const truncChunk = 1 << 16

// SumTruncated returns a faithfully rounded sum of xs computed with
// γ-truncated sparse superaccumulators at the fixed γ above. The result is
// certified: if the bottom-up truncated merge dropped anything, the
// stopping conditions of Section 4 must both hold, and when they do not
// the input is re-summed exactly (untruncated), so the returned value is
// always a faithful rounding of the exact sum — correctly rounded whenever
// nothing was truncated or the fallback ran.
func SumTruncated(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var work int64
	t := adaptiveMerge(xs, truncGamma, 0, truncChunk, &work)
	if !t.Truncated {
		return t.S.Round()
	}
	if t.StopFloat(len(xs)) && t.StopStrict() {
		return t.S.Round()
	}
	return SumSparse(xs)
}
