package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/condition"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func genData(d gen.Dist, n int64, delta int, seed uint64) []float64 {
	return gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: seed}).Slice()
}

func TestSumMatchesOracleOnDistributions(t *testing.T) {
	for _, d := range gen.AllDists {
		for _, delta := range []int{10, 500, 2000} {
			xs := genData(d, 4000, delta, 31)
			want := oracle.Sum(xs)
			if got := Sum(xs); got != want {
				t.Fatalf("%v δ=%d: Sum=%g oracle=%g", d, delta, got, want)
			}
			if got := SumSparse(xs); got != want {
				t.Fatalf("%v δ=%d: SumSparse=%g oracle=%g", d, delta, got, want)
			}
		}
	}
}

func TestSumParallelDeterministicAcrossWorkers(t *testing.T) {
	xs := genData(gen.Random, 200000, 1500, 17)
	want := Sum(xs)
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, sparse := range []bool{false, true} {
			opt := Options{Workers: workers, ChunkSize: 1024, UseSparse: sparse}
			if got := SumParallel(xs, opt); got != want {
				t.Fatalf("workers=%d sparse=%v: %g != %g", workers, sparse, got, want)
			}
		}
	}
}

func TestSumParallelMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(5000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1600)-800)
		}
		want := oracle.Sum(xs)
		opt := Options{Workers: 1 + r.Intn(8), ChunkSize: 64 + r.Intn(512), UseSparse: r.Intn(2) == 0}
		if got := SumParallel(xs, opt); got != want {
			t.Fatalf("trial %d: parallel=%g oracle=%g", trial, got, want)
		}
	}
}

func TestSumEmptyAndTiny(t *testing.T) {
	if Sum(nil) != 0 || SumSparse(nil) != 0 || SumParallel(nil, Options{}) != 0 {
		t.Fatal("empty sum must be +0")
	}
	if Sum([]float64{3.5}) != 3.5 {
		t.Fatal("singleton")
	}
	v, st := SumAdaptive(nil, Options{})
	if v != 0 || !st.Certified {
		t.Fatal("adaptive empty")
	}
}

func TestSumAdaptiveFaithfulOnDistributions(t *testing.T) {
	for _, d := range gen.AllDists {
		for _, delta := range []int{10, 500, 2000} {
			xs := genData(d, 4000, delta, 33)
			got, st := SumAdaptive(xs, Options{ChunkSize: 128})
			if !st.Certified {
				t.Fatalf("%v δ=%d: not certified", d, delta)
			}
			if !oracle.Faithful(xs, got) {
				t.Fatalf("%v δ=%d: adaptive result %g not faithful (oracle %g)",
					d, delta, got, oracle.Sum(xs))
			}
		}
	}
}

func TestSumAdaptiveWellConditionedStopsEarly(t *testing.T) {
	xs := genData(gen.CondOne, 50000, 40, 3)
	got, st := SumAdaptive(xs, Options{})
	if got != oracle.Sum(xs) {
		t.Fatalf("adaptive=%g oracle=%g", got, oracle.Sum(xs))
	}
	if st.Rounds > 2 {
		t.Fatalf("well-conditioned data took %d rounds (r=%d)", st.Rounds, st.FinalR)
	}
}

func TestSumAdaptiveWorkGrowsWithConditionNumber(t *testing.T) {
	// Parametric cancellation: two large opposite blocks plus a small
	// residual; shifting the block exponent raises C(X).
	mk := func(blockExp int) []float64 {
		n := 4000
		xs := make([]float64, 0, 2*n+1)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			v := math.Ldexp(1+r.Float64(), blockExp)
			xs = append(xs, v, -v)
		}
		xs = append(xs, 1)
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		return xs
	}
	easy := mk(5)   // C ≈ 2^7·n
	hard := mk(500) // C ≈ 2^502·n
	ge, se := SumAdaptive(easy, Options{ChunkSize: 64})
	gh, sh := SumAdaptive(hard, Options{ChunkSize: 64})
	if ge != 1 || gh != 1 {
		t.Fatalf("cancellation sums: easy=%g hard=%g, want 1", ge, gh)
	}
	le := condition.Log2(easy)
	lh := condition.Log2(hard)
	if !(lh > le+300) {
		t.Fatalf("setup broken: logC easy=%g hard=%g", le, lh)
	}
	if sh.Rounds < se.Rounds {
		t.Fatalf("rounds: easy=%d hard=%d — should not decrease with C(X)", se.Rounds, sh.Rounds)
	}
}

func TestSumAdaptiveQuickFaithful(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]float64, 0, len(raw))
		for _, b := range raw {
			x := math.Float64frombits(b)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		got, st := SumAdaptive(xs, Options{ChunkSize: 8})
		return st.Certified && oracle.Faithful(xs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoChunkBounds(t *testing.T) {
	if got := AutoChunk(100, 4); got != minAutoChunk {
		t.Fatalf("tiny input: chunk %d, want floor %d", got, minAutoChunk)
	}
	if got := AutoChunk(1<<30, 2); got != maxAutoChunk {
		t.Fatalf("huge input: chunk %d, want ceiling %d", got, maxAutoChunk)
	}
	if got, want := AutoChunk(1<<21, 4), (1<<21)/(4*chunksPerWorker); got != want || got == minAutoChunk || got == maxAutoChunk {
		t.Fatalf("mid input: chunk %d, want unclamped %d", got, want)
	}
	if got := AutoChunk(1<<20, 0); got < minAutoChunk || got > maxAutoChunk {
		t.Fatalf("zero workers: chunk %d out of bounds", got)
	}
}

// TestSumParallelPoolReuse exercises the sync.Pool hot path across many
// calls with different data, widths, and worker counts: stale digits or
// special flags leaking between pooled accumulators would corrupt results.
func TestSumParallelPoolReuse(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(20000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1600)-800)
		}
		opt := Options{
			Workers:   1 + r.Intn(8),
			ChunkSize: 1 + r.Intn(2048),
			Width:     uint(8 + 8*r.Intn(4)),
		}
		want := oracle.Sum(xs)
		if got := SumParallel(xs, opt); got != want {
			t.Fatalf("trial %d (w=%d): %g != oracle %g", trial, opt.Width, got, want)
		}
	}
	// A NaN-poisoned run must not leak its special flags into the pool.
	if got := SumParallel([]float64{1, math.NaN(), 2}, Options{Workers: 2, ChunkSize: 1}); !math.IsNaN(got) {
		t.Fatalf("NaN input: got %g", got)
	}
	if got := SumParallel([]float64{1, 2, 3}, Options{Workers: 2, ChunkSize: 1}); got != 6 {
		t.Fatalf("after NaN run: got %g, want 6", got)
	}
	if got := Sum([]float64{4, 5}); got != 9 {
		t.Fatalf("sequential after NaN run: got %g, want 9", got)
	}
}

func TestSumEngineDispatch(t *testing.T) {
	xs := genData(gen.Random, 3000, 800, 51)
	want := oracle.Sum(xs)
	for _, name := range []string{"", EngineDense, EngineSparse, EngineSmall, EngineLarge} {
		if got := SumEngine(name, xs); got != want {
			t.Fatalf("SumEngine(%q)=%g oracle=%g", name, got, want)
		}
	}
	if got := SumParallel(xs, Options{Engine: EngineLarge, Workers: 4, ChunkSize: 256}); got != want {
		t.Fatalf("SumParallel(large)=%g oracle=%g", got, want)
	}
}

func TestSumHandlesSpecials(t *testing.T) {
	if got := Sum([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Fatalf("got %g", got)
	}
	if got := SumParallel([]float64{math.Inf(1), math.Inf(-1)}, Options{Workers: 2, ChunkSize: 1}); !math.IsNaN(got) {
		t.Fatalf("got %g, want NaN", got)
	}
}
