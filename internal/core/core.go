// Package core implements the paper's summation algorithms on top of the
// superaccumulator representations in internal/accum:
//
//   - Sum / SumSparse: sequential exact summation (convert, accumulate
//     exactly, round once) — the paper's Section 3 sequential building
//     block, used by the MapReduce combiners.
//   - SumParallel: the shared-memory parallel summation tree. Chunks of the
//     input are accumulated exactly by a pool of goroutines and the partial
//     superaccumulators are merged carry-free (Lemma 1), so the result is
//     the same exact, correctly rounded value for every worker count and
//     every merge order.
//   - SumAdaptive: the condition-number-sensitive algorithm of Section 4,
//     using γ-truncated sparse superaccumulators with the truncation bound
//     squared every round until a certified stopping condition holds.
package core

import (
	"runtime"
	"sync"

	"parsum/internal/accum"
)

// Options configures the parallel and adaptive algorithms. The zero value
// is ready to use.
type Options struct {
	// Width is the superaccumulator digit width W (radix 2^W); 0 means
	// accum.DefaultWidth.
	Width uint
	// Workers is the number of concurrent goroutines; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of elements accumulated per leaf task;
	// 0 means a default sized for cache friendliness.
	ChunkSize int
	// UseSparse selects window/sparse accumulators for the leaves instead
	// of dense ones (trades fixed footprint for σ(n)-proportional state).
	UseSparse bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 1 << 16
}

// Sum returns the correctly rounded (hence faithfully rounded) sum of xs,
// computed exactly with a dense superaccumulator.
func Sum(xs []float64) float64 {
	d := accum.NewDense(0)
	d.AddSlice(xs)
	return d.Round()
}

// SumSparse returns the correctly rounded sum of xs computed exactly with a
// sparse (active-window) superaccumulator.
func SumSparse(xs []float64) float64 {
	w := accum.NewWindow(0)
	w.AddSlice(xs)
	return w.Round()
}

// SumParallel returns the correctly rounded sum of xs computed exactly by
// opt.Workers goroutines. The result is bit-identical for every worker
// count, chunk size, and merge order, because every partial result is an
// exact superaccumulator.
func SumParallel(xs []float64, opt Options) float64 {
	p := opt.workers()
	if p <= 1 || len(xs) <= opt.chunkSize() {
		if opt.UseSparse {
			return SumSparse(xs)
		}
		return Sum(xs)
	}
	if opt.UseSparse {
		return parallelSparse(xs, p, opt)
	}
	return parallelDense(xs, p, opt)
}

// parallelDense fans chunk accumulation out to p goroutines, each owning
// one dense accumulator, then merges the partials.
func parallelDense(xs []float64, p int, opt Options) float64 {
	chunk := opt.chunkSize()
	var next int
	var mu sync.Mutex
	parts := make([]*accum.Dense, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := accum.NewDense(opt.Width)
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= len(xs) {
					break
				}
				hi := lo + chunk
				if hi > len(xs) {
					hi = len(xs)
				}
				d.AddSlice(xs[lo:hi])
			}
			parts[w] = d
		}(w)
	}
	wg.Wait()
	root := parts[0]
	root.Regularize()
	for _, d := range parts[1:] {
		d.Regularize()
		root.AddRegularized(d) // Lemma 1 carry-free merge
	}
	return root.Round()
}

// parallelSparse is parallelDense with window accumulators at the leaves
// and carry-free sparse merges at the root.
func parallelSparse(xs []float64, p int, opt Options) float64 {
	chunk := opt.chunkSize()
	var next int
	var mu sync.Mutex
	parts := make([]*accum.Sparse, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := accum.NewWindow(opt.Width)
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= len(xs) {
					break
				}
				hi := lo + chunk
				if hi > len(xs) {
					hi = len(xs)
				}
				a.AddSlice(xs[lo:hi])
			}
			parts[w] = a.ToSparse()
		}(w)
	}
	wg.Wait()
	root := parts[0]
	for _, s := range parts[1:] {
		root = accum.MergeSparse(root, s)
	}
	return root.Round()
}

// Sum32 returns the correctly rounded float32 value of the exact sum of
// xs. Each float32 converts to float64 exactly, the sum is accumulated
// exactly, and a single rounding targets binary32 — so there is no double
// rounding (summing in float64 and converting would misround near
// binary32 rounding boundaries).
func Sum32(xs []float32) float32 {
	d := accum.NewDense(0)
	for _, x := range xs {
		d.Add(float64(x))
	}
	return d.Round32()
}
