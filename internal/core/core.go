// Package core implements the paper's summation algorithms on top of the
// superaccumulator representations in internal/accum, and registers each
// of them as a pluggable engine (see internal/engine):
//
//   - Sum / SumSparse: sequential exact summation (convert, accumulate
//     exactly, round once) — the paper's Section 3 sequential building
//     block, used by the MapReduce combiners.
//   - SumParallel: the shared-memory parallel summation tree. Chunks of the
//     input are pulled off a shared cursor by a pool of goroutines,
//     accumulated exactly into pooled superaccumulators, and the partials
//     are combined carry-free (Lemma 1) in a log-depth merge tree, so the
//     result is the same exact, correctly rounded value for every worker
//     count, chunk size, and merge order. Options.Engine routes the same
//     machinery through any registered engine whose capabilities allow it.
//   - SumAdaptive: the condition-number-sensitive algorithm of Section 4,
//     using γ-truncated sparse superaccumulators with the truncation bound
//     squared every round until a certified stopping condition holds.
package core

import (
	"runtime"

	"parsum/internal/accum"
	"parsum/internal/engine"
)

// Options configures the parallel and adaptive algorithms. The zero value
// is ready to use.
type Options struct {
	// Width is the superaccumulator digit width W (radix 2^W); 0 means
	// accum.DefaultWidth. It applies to the built-in dense/sparse engines;
	// other engines use their own representations.
	Width uint
	// Workers is the number of concurrent goroutines; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of elements accumulated per leaf task;
	// 0 auto-tunes from the input length and worker count (see AutoChunk).
	ChunkSize int
	// UseSparse selects window/sparse accumulators for the leaves instead
	// of dense ones (trades fixed footprint for σ(n)-proportional state).
	// It is shorthand for Engine == EngineSparse and is ignored when
	// Engine is set.
	UseSparse bool
	// Engine selects a registered summation engine by name; "" means
	// EngineDense (or EngineSparse when UseSparse is set). Unknown names
	// panic with the list of registered engines. Engines that are not
	// streaming or whose merges are not deterministic fall back to their
	// sequential one-shot Sum under SumParallel.
	Engine string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkFor resolves the leaf chunk size for an n-element input summed by
// p workers, auto-tuning when no explicit ChunkSize is set.
func (o Options) chunkFor(n, p int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return AutoChunk(n, p)
}

// engineName resolves which registered engine the options select.
func (o Options) engineName() string {
	if o.Engine != "" {
		return o.Engine
	}
	if o.UseSparse {
		return EngineSparse
	}
	return EngineDense
}

// Sum returns the correctly rounded (hence faithfully rounded) sum of xs,
// computed exactly with a dense superaccumulator.
func Sum(xs []float64) float64 {
	d := getDense(0)
	d.AddSlice(xs)
	v := d.Round()
	putDense(d)
	return v
}

// SumSparse returns the correctly rounded sum of xs computed exactly with a
// sparse (active-window) superaccumulator.
func SumSparse(xs []float64) float64 {
	w := accum.NewWindow(0)
	w.AddSlice(xs)
	return w.Round()
}

// SumEngine returns the one-shot sum of xs by the named registered engine
// ("" selects the dense default). It panics on an unknown name; use
// engine.Get for a checked lookup.
func SumEngine(name string, xs []float64) float64 {
	if name == "" {
		name = EngineDense
	}
	return engine.MustGet(name).Sum(xs)
}

// SumParallel returns the selected engine's sum of xs computed by
// opt.Workers goroutines. For engines with deterministic merges (all the
// exact superaccumulator engines) the result is bit-identical for every
// worker count, chunk size, and merge order, because every partial result
// is exact; engines without streaming deterministic merges are computed
// sequentially with their one-shot Sum.
func SumParallel(xs []float64, opt Options) float64 {
	name := opt.engineName()
	p := opt.workers()
	chunk := opt.chunkFor(len(xs), p)
	sequential := p <= 1 || len(xs) <= chunk
	switch name {
	case EngineDense:
		if sequential {
			d := getDense(opt.Width)
			d.AddSlice(xs)
			v := d.Round()
			putDense(d)
			return v
		}
		return parallelDense(xs, p, chunk, opt.Width)
	case EngineSparse:
		if sequential {
			a := accum.NewWindow(opt.Width)
			a.AddSlice(xs)
			return a.Round()
		}
		return parallelSparse(xs, p, chunk, opt.Width)
	}
	e := engine.MustGet(name)
	caps := e.Caps()
	if sequential || !caps.Streaming || !caps.DeterministicParallel {
		return e.Sum(xs)
	}
	return parallelEngine(xs, e, p, chunk)
}

// Sum32 returns the correctly rounded float32 value of the exact sum of
// xs. Each float32 converts to float64 exactly, the sum is accumulated
// exactly, and a single rounding targets binary32 — so there is no double
// rounding (summing in float64 and converting would misround near
// binary32 rounding boundaries).
func Sum32(xs []float32) float32 {
	d := getDense(0)
	// The narrow-lane pass consumes the binary32 values directly: no
	// widened float64 copy is ever materialized, and the lane updates are
	// single-word (a binary32 significand shifted into digit position
	// fits one uint64), so this runs faster than the float64 bulk path.
	d.AddSlice32(xs)
	v := d.Round32()
	putDense(d)
	return v
}
