package accum

import (
	"encoding"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/oracle"
)

var (
	_ encoding.BinaryMarshaler   = (*Sparse)(nil)
	_ encoding.BinaryUnmarshaler = (*Sparse)(nil)
	_ encoding.BinaryMarshaler   = (*Dense)(nil)
	_ encoding.BinaryUnmarshaler = (*Dense)(nil)
)

func TestSparseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(60), true)
		s := sparseOf(xs, w)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Sparse
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		g1, g2 := s.Round(), back.Round()
		if g1 != g2 && !(math.IsNaN(g1) && math.IsNaN(g2)) {
			t.Fatalf("roundtrip value changed: %g vs %g", g1, g2)
		}
		if back.Width() != w || back.Len() != s.Len() {
			t.Fatalf("roundtrip shape changed")
		}
	}
}

func TestDenseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(60), true)
		d := NewDense(w)
		d.AddSlice(xs)
		data, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Dense
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		want := oracle.Sum(xs)
		if got := back.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("roundtrip=%g oracle=%g", got, want)
		}
		// Decoded accumulators must remain usable.
		back.Add(1.5)
		d2 := NewDense(w)
		d2.AddSlice(xs)
		d2.Add(1.5)
		ga, gb := back.Round(), d2.Round()
		if ga != gb && !(math.IsNaN(ga) && math.IsNaN(gb)) {
			t.Fatalf("decoded accumulator diverged after Add")
		}
	}
}

func TestCodecSpecialsSurvive(t *testing.T) {
	for _, xs := range [][]float64{
		{math.Inf(1), 1},
		{math.Inf(-1)},
		{math.Inf(1), math.Inf(-1)},
		{math.NaN()},
	} {
		s := NewSparse(0)
		for _, x := range xs {
			s.Add(x)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Sparse
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		a, b := s.Round(), back.Round()
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("specials lost: %g vs %g", a, b)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := sparseOf([]float64{1.5, -3e40, 0x1p-300}, 32)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sparse
	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(data); i++ {
		if err := back.UnmarshalBinary(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Header corruptions.
	for _, mut := range []struct {
		pos int
		val byte
	}{
		{0, 0x00}, // magic
		{1, 'X'},  // kind
		{2, 99},   // version
		{3, 64},   // width out of range
		{4, 0xFF}, // unknown flags
	} {
		bad := append([]byte(nil), data...)
		bad[mut.pos] = mut.val
		if err := back.UnmarshalBinary(bad); err == nil {
			t.Fatalf("corruption at %d accepted", mut.pos)
		}
	}
	// Trailing garbage.
	if err := back.UnmarshalBinary(append(append([]byte(nil), data...), 1, 2, 3)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Kind confusion: a sparse blob must not decode as dense.
	var dd Dense
	if err := dd.UnmarshalBinary(data); err == nil {
		t.Fatal("sparse decoded as dense")
	}
}

func TestCodecQuickNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var s Sparse
		_ = s.UnmarshalBinary(data) // must not panic; error is fine
		var d Dense
		_ = d.UnmarshalBinary(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCrossProcessMergeScenario(t *testing.T) {
	// The distributed-reducer story: partial sums marshaled, shipped,
	// unmarshaled, merged — exact end to end.
	r := rand.New(rand.NewSource(3))
	xs := randValues(r, 300, true)
	var blobs [][]byte
	for lo := 0; lo < len(xs); lo += 50 {
		hi := lo + 50
		if hi > len(xs) {
			hi = len(xs)
		}
		part := sparseOf(xs[lo:hi], 32)
		b, err := part.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	root := NewSparse(32)
	for _, b := range blobs {
		var p Sparse
		if err := p.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		root = MergeSparse(root, &p)
	}
	want := oracle.Sum(xs)
	if got := root.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("distributed merge=%g oracle=%g", got, want)
	}
}
