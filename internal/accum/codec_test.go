package accum

import (
	"encoding"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"parsum/internal/oracle"
)

var (
	_ encoding.BinaryMarshaler   = (*Sparse)(nil)
	_ encoding.BinaryUnmarshaler = (*Sparse)(nil)
	_ encoding.BinaryMarshaler   = (*Dense)(nil)
	_ encoding.BinaryUnmarshaler = (*Dense)(nil)
	_ encoding.BinaryMarshaler   = (*Window)(nil)
	_ encoding.BinaryUnmarshaler = (*Window)(nil)
	_ encoding.BinaryMarshaler   = (*Small)(nil)
	_ encoding.BinaryUnmarshaler = (*Small)(nil)
	_ encoding.BinaryMarshaler   = (*Large)(nil)
	_ encoding.BinaryUnmarshaler = (*Large)(nil)
)

func TestSparseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(60), true)
		s := sparseOf(xs, w)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Sparse
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		g1, g2 := s.Round(), back.Round()
		if g1 != g2 && !(math.IsNaN(g1) && math.IsNaN(g2)) {
			t.Fatalf("roundtrip value changed: %g vs %g", g1, g2)
		}
		if back.Width() != w || back.Len() != s.Len() {
			t.Fatalf("roundtrip shape changed")
		}
	}
}

func TestDenseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(60), true)
		d := NewDense(w)
		d.AddSlice(xs)
		data, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Dense
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		want := oracle.Sum(xs)
		if got := back.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("roundtrip=%g oracle=%g", got, want)
		}
		// Decoded accumulators must remain usable.
		back.Add(1.5)
		d2 := NewDense(w)
		d2.AddSlice(xs)
		d2.Add(1.5)
		ga, gb := back.Round(), d2.Round()
		if ga != gb && !(math.IsNaN(ga) && math.IsNaN(gb)) {
			t.Fatalf("decoded accumulator diverged after Add")
		}
	}
}

func TestCodecSpecialsSurvive(t *testing.T) {
	for _, xs := range [][]float64{
		{math.Inf(1), 1},
		{math.Inf(-1)},
		{math.Inf(1), math.Inf(-1)},
		{math.NaN()},
	} {
		s := NewSparse(0)
		for _, x := range xs {
			s.Add(x)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Sparse
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		a, b := s.Round(), back.Round()
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("specials lost: %g vs %g", a, b)
		}
	}
}

// TestCodecSpecialMultiplicities: the extended-counts form preserves the
// exact signed multiplicity of every special, so deleting a non-finite
// value after a wire hop is still exact: an accumulator holding two +Infs
// must survive a round trip and one deletion as +Inf, not as finite; a
// net deletion (count −1) must survive and later cancel an addition.
func TestCodecSpecialMultiplicities(t *testing.T) {
	s := NewSparse(0)
	s.Add(1.5)
	s.Add(math.Inf(1))
	s.Add(math.Inf(1))
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sparse
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	back.Sub(math.Inf(1))
	if got := back.Round(); !math.IsInf(got, 1) {
		t.Fatalf("after deleting 1 of 2 decoded +Infs: %g, want +Inf", got)
	}
	back.Sub(math.Inf(1))
	if got := back.Round(); got != 1.5 {
		t.Fatalf("after deleting both: %g, want 1.5", got)
	}

	// Net deletion: a combiner that only retracted a NaN ships count −1,
	// which must cancel a NaN on the receiving side after a round trip.
	d := NewDense(0)
	d.Sub(math.NaN())
	data, err = d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dback Dense
	if err := dback.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	dback.Add(2.5)
	if got := dback.Round(); got != 2.5 {
		t.Fatalf("net NaN deletion decoded wrong: %g, want 2.5", got)
	}
	dback.Add(math.NaN())
	if got := dback.Round(); got != 2.5 {
		t.Fatalf("decoded NaN deficit did not cancel: %g, want 2.5", got)
	}

	// Ordinary states (multiplicities in {0,1}) keep the legacy presence
	// encoding: byte-identical header, no extension.
	p := NewSparse(0)
	p.Add(math.NaN())
	data, err = p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 1 {
		t.Fatalf("single NaN should use presence flags, got flags %#x", data[4])
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := sparseOf([]float64{1.5, -3e40, 0x1p-300}, 32)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sparse
	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(data); i++ {
		if err := back.UnmarshalBinary(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Header corruptions.
	for _, mut := range []struct {
		pos int
		val byte
	}{
		{0, 0x00}, // magic
		{1, 'X'},  // kind
		{2, 99},   // version
		{3, 64},   // width out of range
		{4, 0xFF}, // unknown flags
	} {
		bad := append([]byte(nil), data...)
		bad[mut.pos] = mut.val
		if err := back.UnmarshalBinary(bad); err == nil {
			t.Fatalf("corruption at %d accepted", mut.pos)
		}
	}
	// Trailing garbage.
	if err := back.UnmarshalBinary(append(append([]byte(nil), data...), 1, 2, 3)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Kind confusion: a sparse blob must not decode as dense.
	var dd Dense
	if err := dd.UnmarshalBinary(data); err == nil {
		t.Fatal("sparse decoded as dense")
	}
}

func TestCodecQuickNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var s Sparse
		_ = s.UnmarshalBinary(data) // must not panic; error is fine
		var d Dense
		_ = d.UnmarshalBinary(data)
		var w Window
		_ = w.UnmarshalBinary(data)
		var sm Small
		_ = sm.UnmarshalBinary(data)
		l := NewLarge()
		_ = l.UnmarshalBinary(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// streamCodec is the shape every streaming accumulator codec shares, so
// the round-trip tests below can run one table over all of them.
type streamCodec interface {
	Add(x float64)
	Round() float64
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

func streamCodecs(w uint) map[string]func() streamCodec {
	return map[string]func() streamCodec{
		"window": func() streamCodec { return NewWindow(w) },
		"small":  func() streamCodec { return NewSmall() },
		"large":  func() streamCodec { return NewLarge() },
	}
}

func TestStreamingCodecsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, mk := range streamCodecs(0) {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				xs := randValues(r, 1+r.Intn(80), true)
				a := mk()
				for _, x := range xs {
					a.Add(x)
				}
				want := a.Round()
				data, err := a.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				back := mk()
				if err := back.UnmarshalBinary(data); err != nil {
					t.Fatal(err)
				}
				got := back.Round()
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("roundtrip=%g want=%g", got, want)
				}
				// Re-encoding the decoded value must round-trip again
				// (decode(encode) is idempotent on the represented value).
				data2, err := back.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				back2 := mk()
				if err := back2.UnmarshalBinary(data2); err != nil {
					t.Fatal(err)
				}
				if g2 := back2.Round(); g2 != want && !(math.IsNaN(g2) && math.IsNaN(want)) {
					t.Fatalf("second roundtrip=%g want=%g", g2, want)
				}
				// Decoded accumulators stay usable.
				back.Add(0.375)
				a.Add(0.375)
				ga, gb := back.Round(), a.Round()
				if ga != gb && !(math.IsNaN(ga) && math.IsNaN(gb)) {
					t.Fatalf("decoded accumulator diverged after Add: %g vs %g", ga, gb)
				}
			}
		})
	}
}

func TestWindowSparseShareWireKind(t *testing.T) {
	// A Window blob decodes as Sparse and vice versa: both are the 'S'
	// sparse-component payload.
	xs := []float64{1e100, 1, -1e100, 0x1p-1040}
	w := NewWindow(0)
	w.AddSlice(xs)
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s Sparse
	if err := s.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Round(), oracle.Sum(xs); got != want {
		t.Fatalf("window→sparse=%g want=%g", got, want)
	}
	data2, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var w2 Window
	if err := w2.UnmarshalBinary(data2); err != nil {
		t.Fatal(err)
	}
	if got, want := w2.Round(), oracle.Sum(xs); got != want {
		t.Fatalf("sparse→window=%g want=%g", got, want)
	}
}

// TestCodecMalformedPayloads is the table of crafted payloads the decoder
// must reject with an error (never a panic, never a giant allocation):
// the bug class a networked merge service turns security-relevant.
func TestCodecMalformedPayloads(t *testing.T) {
	// A valid minimal header for kind 'S', width 32, no specials.
	head := func(kind byte, w byte, flags byte) []byte {
		return []byte{0xA5, kind, 1, w, flags}
	}
	var varintOverflow = []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"header-only-truncated", []byte{0xA5, 'S', 1, 32}},
		{"missing-count", head('S', 32, 0)},
		{"count-overflows-uint64", append(head('S', 32, 0), varintOverflow...)},
		{"count-exceeds-buffer", append(head('S', 32, 0), 0x20)},                                                    // 32 components, 0 bytes
		{"count-exceeds-digit-range", append(head('S', 8, 0), append([]byte{0xAC, 0x02}, make([]byte, 600)...)...)}, // 300 components at W=8
		{"component-truncated-mid-pair", append(head('S', 32, 0), 1, 2)},
		{"index-varint-overflow", append(head('S', 32, 0), append([]byte{1}, varintOverflow...)...)},
		{"digit-varint-overflow", append(head('S', 32, 0), append([]byte{1, 2}, varintOverflow...)...)},
		{"index-below-range", append(head('S', 32, 0), 1, 0xFF, 0x7F, 2)},      // idx = −8192
		{"index-above-range", append(head('S', 32, 0), 1, 0xFE, 0x7F, 2)},      // idx = +8191
		{"indices-not-ascending", append(head('S', 32, 0), 2, 4, 2, 4, 2)},     // idx 2 twice
		{"digit-out-of-alpha-beta", append(head('S', 8, 0), 1, 2, 0x80, 0x04)}, // dig = 256 at W=8
		{"trailing-bytes", append(head('S', 32, 0), 1, 2, 2, 0xEE)},            //
		{"unknown-flags", append(head('S', 32, 0x09), 0)},                      // bit 3 with presence bits set
		{"unknown-flags-high", append(head('S', 32, 0x1F), 0)},                 //
		{"extended-counts-truncated", head('S', 32, 0x08)},                     // bit 3 but no varints
		{"extended-counts-partial", append(head('S', 32, 0x08), 2, 0)},         // 2 of 3 counts
		{"extended-count-overflow", append(head('S', 32, 0x08), varintOverflow...)},
		{"bad-width-low", append(head('S', 7, 0), 0)},                            //
		{"bad-width-high", append(head('S', 33, 0), 0)},                          //
		{"small-wrong-width", append(head('N', 16, 0), 0)},                       // Small is fixed W=32
		{"large-wrong-width", append(head('L', 16, 0), 0)},                       // Large base is fixed W=32
		{"sparse-as-dense-kind-confusion", append(head('S', 32, 0), 0)},          // decoded below as Dense
		{"count-lies-buffer-has-fewer", append(head('S', 32, 0), 3, 1, 2, 2, 2)}, // 3 claimed, 2 present
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sparse
			if tc.name == "sparse-as-dense-kind-confusion" {
				var d Dense
				if err := d.UnmarshalBinary(tc.data); err == nil {
					t.Fatal("kind confusion accepted")
				}
				return
			}
			var w Window
			var sm Small
			l := NewLarge()
			errs := []error{
				s.UnmarshalBinary(tc.data),
				w.UnmarshalBinary(tc.data),
				sm.UnmarshalBinary(tc.data),
				l.UnmarshalBinary(tc.data),
			}
			for i, err := range errs {
				if err == nil {
					// Only the decoder whose kind byte matches could legally
					// accept; none of these payloads is valid for any kind.
					t.Fatalf("decoder %d accepted malformed payload % x", i, tc.data)
				}
			}
		})
	}
}

// TestCodecHostileCountNoHugeAlloc pins the truncation fix: a tiny payload
// claiming 2^24 components must be rejected without allocating component
// storage for them.
func TestCodecHostileCountNoHugeAlloc(t *testing.T) {
	payload := []byte{0xA5, 'S', 1, 32, 0, 0x80, 0x80, 0x80, 0x08} // count = 2^24
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var s Sparse
	if err := s.UnmarshalBinary(payload); err == nil {
		t.Fatal("hostile count accepted")
	}
	runtime.ReadMemStats(&after)
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 1<<20 {
		t.Fatalf("decoder allocated %d bytes for a %d-byte hostile payload", grown, len(payload))
	}
}

func TestCodecCrossProcessMergeScenario(t *testing.T) {
	// The distributed-reducer story: partial sums marshaled, shipped,
	// unmarshaled, merged — exact end to end.
	r := rand.New(rand.NewSource(3))
	xs := randValues(r, 300, true)
	var blobs [][]byte
	for lo := 0; lo < len(xs); lo += 50 {
		hi := lo + 50
		if hi > len(xs) {
			hi = len(xs)
		}
		part := sparseOf(xs[lo:hi], 32)
		b, err := part.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	root := NewSparse(32)
	for _, b := range blobs {
		var p Sparse
		if err := p.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		root = MergeSparse(root, &p)
	}
	want := oracle.Sum(xs)
	if got := root.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("distributed merge=%g oracle=%g", got, want)
	}
}
