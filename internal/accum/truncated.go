package accum

import (
	"math"

	"parsum/internal/fpnum"
)

// Truncated is the paper's γ-truncated sparse superaccumulator (Section 4):
// the γ most-significant active components of a sparse superaccumulator,
// together with the bookkeeping the condition-number-sensitive algorithm
// needs for its stopping condition — whether anything was ever dropped, and
// the least-significant retained index.
type Truncated struct {
	S         *Sparse
	Gamma     int
	Truncated bool // whether any component has been dropped by truncation

	// DropCount and MaxDropIdx track the dropped components across the
	// whole merge history: at most DropCount components were dropped, each
	// of magnitude < R^(MaxDropIdx+1). They feed StopStrict, a
	// self-contained certificate that complements the paper's ε_min
	// argument.
	DropCount  int64
	MaxDropIdx int32
}

// NewTruncated wraps s, truncating it to its γ most-significant components.
func NewTruncated(s *Sparse, gamma int) *Truncated {
	t := &Truncated{S: s, Gamma: gamma}
	t.truncate()
	return t
}

// truncate drops components from the least-significant end until at most
// γ remain, recording what was dropped.
func (t *Truncated) truncate() {
	if t.Gamma <= 0 || len(t.S.idx) <= t.Gamma {
		return
	}
	drop := len(t.S.idx) - t.Gamma
	// Components are stored in ascending index order, so the least
	// significant are at the front.
	for k, v := range t.S.dig[:drop] {
		if v != 0 {
			if !t.Truncated || t.S.idx[k] > t.MaxDropIdx {
				t.MaxDropIdx = t.S.idx[k]
			}
			t.Truncated = true
			t.DropCount++
		}
	}
	t.S.idx = append(t.S.idx[:0], t.S.idx[drop:]...)
	t.S.dig = append(t.S.dig[:0], t.S.dig[drop:]...)
}

// MergeTruncated merges two γ-truncated sparse superaccumulators: a full
// Lemma 1 carry-free sparse merge followed by re-truncation to γ components.
func MergeTruncated(a, b *Truncated, gamma int) *Truncated {
	t := &Truncated{
		S:         MergeSparse(a.S, b.S),
		Gamma:     gamma,
		Truncated: a.Truncated || b.Truncated,
		DropCount: a.DropCount + b.DropCount,
	}
	if a.Truncated {
		t.MaxDropIdx = a.MaxDropIdx
	}
	if b.Truncated && (!a.Truncated || b.MaxDropIdx > t.MaxDropIdx) {
		t.MaxDropIdx = b.MaxDropIdx
	}
	t.truncate()
	return t
}

// LeastExponent returns the binary weight 2^e of the smallest value
// representable in the least-significant retained component (the paper's
// ε_min = ε·2^{E_{i_r}}, with the smallest mantissa ε = 1), and ok = false
// when the accumulator is empty.
func (t *Truncated) LeastExponent() (e int, ok bool) {
	if len(t.S.idx) == 0 {
		return 0, false
	}
	return int(t.S.idx[0]) * int(t.S.w), true
}

// StopFloat reports whether the paper's primary stopping condition holds
// for a summation of n inputs: letting y be the rounded value of the
// truncated sum and ε_min the least representable magnitude of the last
// retained component, y must be unchanged by a floating-point addition or
// subtraction of n·ε_min — i.e. everything that could have been truncated
// (strictly less than n·ε_min in total magnitude) cannot move the result.
// If nothing was ever truncated the sum is exact and the condition holds
// trivially.
func (t *Truncated) StopFloat(n int) bool {
	if !t.Truncated {
		return true
	}
	e, ok := t.LeastExponent()
	if !ok {
		return false // everything truncated away; cannot certify
	}
	y := t.S.Round()
	if math.IsNaN(y) {
		return true // NaN comes from input specials, which are never truncated
	}
	if math.IsInf(y, 0) {
		// A truncated sum that rounds to ±Inf cannot be certified: the
		// dropped mass could pull the exact sum back into finite range.
		return false
	}
	// The ⊕/⊖ test with the raw bound B certifies only B ≤ gap/2 (ties
	// included), which still allows the exact sum to land exactly one
	// float beyond y (unfaithful by a hair). Testing with 2B enforces
	// B ≤ gap/4 < gap/2 strictly, which guarantees faithfulness.
	bound := math.Ldexp(float64(n), e+1)
	if math.IsInf(bound, 0) {
		return false
	}
	return y == y+bound && y == y-bound
}

// StopStrict is a self-contained alternative certificate: the total dropped
// mass is bounded by DropCount components each below R^(MaxDropIdx+1), with
// an extra factor of two absorbing the float arithmetic of the bound
// itself. It does not depend on the relationship between dropped indices
// and the retained ones that the paper's ε_min argument uses.
func (t *Truncated) StopStrict() bool {
	if !t.Truncated {
		return true
	}
	y := t.S.Round()
	if math.IsNaN(y) {
		return true
	}
	if math.IsInf(y, 0) {
		return false
	}
	// +1 absorbs the float arithmetic of the bound itself; the further +1
	// enforces the strict bound < gap/2 that faithfulness needs (see
	// StopFloat).
	bound := math.Ldexp(float64(t.DropCount), (int(t.MaxDropIdx)+1)*int(t.S.w)+2)
	if math.IsInf(bound, 0) {
		return false
	}
	return y == y+bound && y == y-bound
}

// StopExponentGap reports the paper's simplified alternative stopping
// condition: the exponent of the least significant bit of y is at least
// ⌈log₂ n⌉ greater than E_{i_r}.
func (t *Truncated) StopExponentGap(n int) bool {
	if !t.Truncated {
		return true
	}
	e, ok := t.LeastExponent()
	if !ok {
		return false
	}
	y := t.S.Round()
	if math.IsNaN(y) {
		return true
	}
	if math.IsInf(y, 0) {
		return false
	}
	if y == 0 {
		return false // a truncated sum that rounds to zero proves nothing
	}
	logn := 0
	for v := 1; v < n; v <<= 1 {
		logn++
	}
	// +2 bits of margin for the same strictness reason as StopFloat.
	return fpnum.ExpOfLSB(y) >= e+logn+2
}
