package accum

import "math"

// Large is a Neal-style "large superaccumulator": one 64-bit bin per IEEE
// biased exponent value, so accumulating a double is a single signed add of
// its significand into the bin selected by its exponent — no splitting at
// all. Bins are folded into a Dense accumulator before they can overflow
// and on demand for rounding. It is the fastest sequential accumulate path
// and serves as an extension baseline (the paper's experiments use the
// small variant).
type Large struct {
	bins [2048]int64 // indexed by the 11-bit biased exponent
	nAdd int
	base *Dense
	sp   special
}

// maxLargeAdds bounds adds between folds: each add changes a bin by less
// than 2^53, so 2^10 adds keep |bin| < 2^63.
const maxLargeAdds = 1 << 10

// NewLarge returns an empty large superaccumulator.
func NewLarge() *Large {
	return &Large{base: NewDense(DefaultWidth)}
}

// Add accumulates x exactly with a single bin update.
func (l *Large) Add(x float64) {
	b := math.Float64bits(x)
	exp := int(b>>52) & 0x7FF
	if exp == 0x7FF { // Inf or NaN
		switch {
		case b<<12 != 0:
			l.sp.nan = true
		case b>>63 != 0:
			l.sp.negInf = true
		default:
			l.sp.posInf = true
		}
		return
	}
	if l.nAdd >= maxLargeAdds {
		l.fold()
	}
	l.nAdd++
	m := int64(b & (1<<52 - 1))
	if exp > 0 {
		m |= 1 << 52
	}
	if b>>63 != 0 {
		m = -m
	}
	l.bins[exp] += m
}

// AddSlice accumulates every element of xs exactly.
func (l *Large) AddSlice(xs []float64) {
	for _, x := range xs {
		l.Add(x)
	}
}

// fold drains every bin into the dense base accumulator.
func (l *Large) fold() {
	for exp, v := range l.bins {
		if v == 0 {
			continue
		}
		// A bin with biased exponent E > 0 holds significands weighted
		// 2^(E−Bias−52); the subnormal bin (E == 0) is weighted 2^−1074.
		e := exp - 1075
		if exp == 0 {
			e = -1074
		}
		l.base.addInt64(v, e)
		l.bins[exp] = 0
	}
	l.nAdd = 0
}

// Merge adds o into l.
func (l *Large) Merge(o *Large) {
	l.sp.merge(o.sp)
	o.fold()
	l.fold()
	l.base.Merge(o.base)
}

// Reset empties the accumulator, retaining its storage.
func (l *Large) Reset() {
	l.bins = [2048]int64{}
	l.nAdd = 0
	l.base.Reset()
	l.sp = special{}
}

// Clone returns an independent copy of l.
func (l *Large) Clone() *Large {
	c := *l
	c.base = l.base.Clone()
	return &c
}

// Round returns the correctly rounded float64 value of the exact sum.
func (l *Large) Round() float64 {
	if v, ok := l.sp.resolved(); ok {
		return v
	}
	l.fold()
	return l.base.Round()
}
