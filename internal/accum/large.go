package accum

import "math"

// Large is a Neal-style "large superaccumulator": one 64-bit bin per IEEE
// biased exponent value, so accumulating a double is a single signed add of
// its significand into the bin selected by its exponent — no splitting at
// all. Bins are folded into a Dense accumulator before they can overflow
// and on demand for rounding. It is the fastest sequential accumulate path
// and serves as an extension baseline (the paper's experiments use the
// small variant).
type Large struct {
	bins [2048]int64 // indexed by the 11-bit biased exponent
	nAdd int
	base *Dense
	sp   special
}

// maxLargeAdds bounds adds between folds: each add changes a bin by less
// than 2^53, so 2^10 adds keep |bin| < 2^63.
const maxLargeAdds = 1 << 10

// NewLarge returns an empty large superaccumulator.
func NewLarge() *Large {
	return &Large{base: NewDense(DefaultWidth)}
}

// Add accumulates x exactly with a single bin update.
func (l *Large) Add(x float64) { l.apply(x, 1) }

// Sub deletes x from the accumulated sum exactly — the group inverse of
// Add, a single signed bin update. Non-finite values are deleted from the
// out-of-band multiset (see Dense.Sub).
func (l *Large) Sub(x float64) { l.apply(x, -1) }

// apply adds (sign = +1) or deletes (sign = −1) x with one bin update.
func (l *Large) apply(x float64, sign int64) {
	b := math.Float64bits(x)
	exp := int(b>>52) & 0x7FF
	if exp == 0x7FF { // Inf or NaN
		switch {
		case b<<12 != 0:
			l.sp.nan += sign
		case b>>63 != 0:
			l.sp.negInf += sign
		default:
			l.sp.posInf += sign
		}
		return
	}
	if l.nAdd >= maxLargeAdds {
		l.fold()
	}
	l.nAdd++
	m := int64(b & (1<<52 - 1))
	if exp > 0 {
		m |= 1 << 52
	}
	if b>>63 != 0 {
		m = -m
	}
	l.bins[exp] += sign * m
}

// AddSlice accumulates every element of xs exactly.
func (l *Large) AddSlice(xs []float64) {
	for _, x := range xs {
		l.Add(x)
	}
}

// SubSlice deletes every element of xs exactly.
func (l *Large) SubSlice(xs []float64) {
	for _, x := range xs {
		l.Sub(x)
	}
}

// Neg negates the represented value in place: every exponent bin and every
// digit of the dense base flips sign, and the infinity multiplicities swap.
func (l *Large) Neg() {
	for i := range l.bins {
		l.bins[i] = -l.bins[i]
	}
	l.base.Neg()
	l.sp.negate()
}

// AddNeg subtracts o's exact contents from l — the group inverse of Merge.
// Like Merge it folds o's bins into o's base as a side effect (o's value is
// unchanged). Special multiplicities are subtracted, not sign-swapped
// (AddNeg deletes o's summands).
func (l *Large) AddNeg(o *Large) {
	l.sp.unmerge(o.sp)
	o.fold()
	l.fold()
	l.base.AddNeg(o.base)
}

// fold drains every bin into the dense base accumulator.
func (l *Large) fold() {
	for exp, v := range l.bins {
		if v == 0 {
			continue
		}
		// A bin with biased exponent E > 0 holds significands weighted
		// 2^(E−Bias−52); the subnormal bin (E == 0) is weighted 2^−1074.
		e := exp - 1075
		if exp == 0 {
			e = -1074
		}
		l.base.addInt64(v, e)
		l.bins[exp] = 0
	}
	l.nAdd = 0
}

// Merge adds o into l.
func (l *Large) Merge(o *Large) {
	l.sp.merge(o.sp)
	o.fold()
	l.fold()
	l.base.Merge(o.base)
}

// Reset empties the accumulator, retaining its storage.
func (l *Large) Reset() {
	l.bins = [2048]int64{}
	l.nAdd = 0
	l.base.Reset()
	l.sp = special{}
}

// Clone returns an independent copy of l.
func (l *Large) Clone() *Large {
	c := *l
	c.base = l.base.Clone()
	return &c
}

// Round returns the correctly rounded float64 value of the exact sum.
func (l *Large) Round() float64 {
	if v, ok := l.sp.resolved(); ok {
		return v
	}
	l.fold()
	return l.base.Round()
}
