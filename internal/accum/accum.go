// Package accum implements the number representations at the heart of
// Goodrich & Eldawy, "Parallel Algorithms for Summing Floating-Point
// Numbers" (SPAA 2016):
//
//   - Dense: an (α,β)-regularized superaccumulator over the full
//     double-precision exponent range, with α = β = R−1 for radix R = 2^W
//     (the paper's generalized-signed-digit extension to floating point).
//     Addition of two regularized accumulators is carry-free in the sense of
//     Lemma 1: every carry moves to the adjacent component and no further,
//     so all components of a sum can be produced independently in parallel.
//   - Sparse: the paper's sparse superaccumulator — the vector of active
//     (index, signed mantissa) components — with a carry-free merge.
//   - Window: a contiguous-active-range accumulate buffer used to build
//     sparse superaccumulators at streaming speed.
//   - Truncated: the γ-truncated sparse superaccumulator of Section 4.
//   - Small, Large: Neal-style carry-propagating superaccumulators, the
//     baselines the paper's MapReduce experiments compare variants against.
//
// All representations store the running sum exactly; Round converts the
// exact value to the correctly rounded (round-to-nearest-even, hence also
// faithfully rounded) float64, following steps 6–7 of the paper's PRAM
// algorithm: signed-carry propagation to a non-redundant form, then a
// single rounding at the end.
package accum

import (
	"math"

	"parsum/internal/fpnum"
)

const (
	// MinWidth and MaxWidth bound the configurable digit width W (R = 2^W).
	// W ≥ 8 keeps per-float chunk counts small; W ≤ 32 keeps the Lemma 1
	// component sums Pᵢ ∈ [−2α, 2β] comfortably inside int64.
	MinWidth = 8
	MaxWidth = 32
	// DefaultWidth is the digit width used when callers pass 0.
	DefaultWidth = 32
)

// special tracks non-finite summands out of band of the digit string as
// signed multiplicities, so the accumulator is a group rather than just a
// monoid: deleting a previously added NaN or infinity (Sub/AddNeg)
// decrements its counter and exactly restores the prior state. Resolution
// follows IEEE semantics on the counters: any present NaN poisons the sum;
// +Inf and −Inf both present make NaN; otherwise a present infinity
// dominates every finite value. A counter is "present" when positive;
// deleting a special that was never added drives its counter negative,
// which reads as absent and cancels only against a later matching addition
// (the group laws still hold exactly).
type special struct {
	nan    int64
	posInf int64
	negInf int64
}

func (s *special) merge(o special) {
	s.nan += o.nan
	s.posInf += o.posInf
	s.negInf += o.negInf
}

// unmerge subtracts o's multiplicities — the group inverse of merge, used
// by AddNeg to delete a previously merged accumulator exactly.
func (s *special) unmerge(o special) {
	s.nan -= o.nan
	s.posInf -= o.posInf
	s.negInf -= o.negInf
}

// negate maps the tracked multiset through x ↦ −x: the infinity counters
// swap and NaN stays NaN.
func (s *special) negate() {
	s.posInf, s.negInf = s.negInf, s.posInf
}

// resolved returns the non-finite result and true if the accumulated
// specials force one, else (0, false).
func (s *special) resolved() (float64, bool) {
	switch {
	case s.nan > 0, s.posInf > 0 && s.negInf > 0:
		return nan(), true
	case s.posInf > 0:
		return inf(1), true
	case s.negInf > 0:
		return inf(-1), true
	}
	return 0, false
}

func (s *special) any() bool { return s.nan != 0 || s.posInf != 0 || s.negInf != 0 }

// note records a non-finite summand classified by fpnum.Classify.
func (s *special) note(c fpnum.Class) {
	switch c {
	case fpnum.ClassNaN:
		s.nan++
	case fpnum.ClassPosInf:
		s.posInf++
	case fpnum.ClassNegInf:
		s.negInf++
	}
}

// unnote deletes one previously noted non-finite summand — the inverse of
// note, used by Sub. Deletion removes the summand itself: Sub(+Inf) after
// Add(+Inf) restores the empty state (it does not add a −Inf).
func (s *special) unnote(c fpnum.Class) {
	switch c {
	case fpnum.ClassNaN:
		s.nan--
	case fpnum.ClassPosInf:
		s.posInf--
	case fpnum.ClassNegInf:
		s.negInf--
	}
}

// floorDiv returns ⌊a/b⌋ for b > 0 (truncated division adjusted for
// negative numerators). Digit indices are floor(bit position / W), and bit
// positions of double-precision values go as low as −1074.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// DigitBounds returns the digit index range [minIdx, maxIdx] that a
// full-range accumulator of width w covers (see digitBounds); exported for
// the PRAM simulator's memory layout.
func DigitBounds(w uint) (minIdx, maxIdx int) {
	return digitBounds(widthOrDefault(w))
}

// digitBounds returns the digit index range [minIdx, maxIdx] an accumulator
// of width w must cover to hold any sum of up to 2^64 doubles: the lowest
// double bit has weight −1074; the highest has weight 1023; headroom above
// absorbs the ≤ 64 bits of magnitude growth from accumulating up to 2^64
// summands (the paper's "one additional component" observation, sized for
// the lazy-regularization scheme below).
func digitBounds(w uint) (minIdx, maxIdx int) {
	minIdx = floorDiv(fpnum.MinExp, int(w))
	maxIdx = floorDiv(fpnum.MaxBitPos+64, int(w)) + 2
	return minIdx, maxIdx
}

// CheckedWidth validates w, mapping 0 to DefaultWidth and panicking
// outside [MinWidth, MaxWidth]; exported for callers that index their own
// state by digit width and need the same diagnostic as the constructors.
func CheckedWidth(w uint) uint { return widthOrDefault(w) }

// widthOrDefault validates w, mapping 0 to DefaultWidth.
func widthOrDefault(w uint) uint {
	if w == 0 {
		return DefaultWidth
	}
	if w < MinWidth || w > MaxWidth {
		panic("accum: digit width out of range [8,32]")
	}
	return w
}

// maxLazyAdds returns how many raw float64 additions may be applied to a
// regularized digit string before any digit could overflow int64. Each add
// contributes at most R−1 < 2^w per digit on top of a regularized digit in
// [−(R−1), R−1], so 2^(62−w) adds keep |digit| < 2^62 + 2^w < 2^63.
func maxLazyAdds(w uint) int {
	return 1 << (62 - w)
}

func nan() float64      { return math.NaN() }
func inf(s int) float64 { return math.Inf(s) }
