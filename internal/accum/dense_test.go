package accum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/fpnum"
	"parsum/internal/oracle"
)

// interestingValues are edge-case doubles that every accumulator test mixes
// into its inputs.
var interestingValues = []float64{
	0, math.Copysign(0, -1),
	1, -1, 0.5, -0.5, 1.5,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	math.MaxFloat64 / 2, -math.MaxFloat64 / 2,
	0x1p-1022, -0x1p-1022, // smallest normals
	0x1p-1022 / 2, // subnormal
	0x1p1023, 0x1p-1074, -0x1p-1074,
	1e308, -1e308, 1e-308, 3.14159265358979, -2.718281828459045,
	0x1.fffffffffffffp52, // largest odd significand at weight 1
	6755399441055744.0,   // 3·2^51, integer boundary
}

func randValues(r *rand.Rand, n int, wild bool) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(4) {
		case 0:
			xs[i] = interestingValues[r.Intn(len(interestingValues))]
			if !wild && math.Abs(xs[i]) > 1e300 {
				xs[i] /= 1e20 // avoid overflowing exact sums in shape tests
			}
		case 1:
			xs[i] = r.NormFloat64()
		case 2:
			e := r.Intn(600) - 300
			xs[i] = math.Ldexp(r.Float64()*2-1, e)
		default:
			xs[i] = float64(r.Int63n(1<<53)) - 1<<52
		}
	}
	return xs
}

func TestDenseSingleValueRoundTrip(t *testing.T) {
	for _, w := range []uint{8, 13, 16, 24, 29, 32} {
		for _, x := range interestingValues {
			d := NewDense(w)
			d.Add(x)
			got := d.Round()
			want := x
			if x == 0 {
				want = 0 // −0 normalizes to +0 through the exact sum
			}
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("w=%d roundtrip(%g) = %g", w, x, got)
			}
		}
	}
}

func TestDenseMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		xs := randValues(r, n, true)
		d := NewDense(uint(8 + r.Intn(25)))
		d.AddSlice(xs)
		got := d.Round()
		want := oracle.Sum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d (n=%d): Dense=%g oracle=%g\nxs=%v", trial, n, got, want, xs)
		}
	}
}

func TestDenseCancellation(t *testing.T) {
	// Massive cancellation: pairs that annihilate exactly plus a tiny residue.
	d := NewDense(0)
	const n = 10000
	for i := 0; i < n; i++ {
		v := math.Ldexp(1+float64(i), 900-i%1800)
		d.Add(v)
		d.Add(-v)
	}
	d.Add(0x1p-1074)
	if got := d.Round(); got != 0x1p-1074 {
		t.Fatalf("residue after cancellation = %g, want smallest subnormal", got)
	}
}

func TestDenseSpecials(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, math.Inf(1)}, math.Inf(1)},
		{[]float64{math.Inf(-1), -1}, math.Inf(-1)},
		{[]float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
		{[]float64{math.NaN(), 1}, math.NaN()},
		{[]float64{math.Inf(1), math.NaN()}, math.NaN()},
	}
	for _, c := range cases {
		d := NewDense(0)
		d.AddSlice(c.xs)
		got := d.Round()
		if got != c.want && !(math.IsNaN(got) && math.IsNaN(c.want)) {
			t.Errorf("sum%v = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestDenseOverflowToInf(t *testing.T) {
	d := NewDense(0)
	d.Add(math.MaxFloat64)
	d.Add(math.MaxFloat64)
	if got := d.Round(); !math.IsInf(got, 1) {
		t.Fatalf("2·MaxFloat64 = %g, want +Inf", got)
	}
	d.Reset()
	d.Add(-math.MaxFloat64)
	d.Add(-math.MaxFloat64)
	if got := d.Round(); !math.IsInf(got, -1) {
		t.Fatalf("−2·MaxFloat64 = %g, want −Inf", got)
	}
	// The exact boundary: MaxFloat64 + ulp/2 rounds to +Inf (ties away
	// would; to-even rounds to Inf since the candidate 2^1024 is even and
	// MaxFloat64's significand is odd). MaxFloat64 + ulp/4 rounds back down.
	d.Reset()
	d.Add(math.MaxFloat64)
	d.Add(0x1p970) // half the gap to 2^1024
	if got := d.Round(); !math.IsInf(got, 1) {
		t.Fatalf("MaxFloat64 + 2^970 = %g, want +Inf (round half to even)", got)
	}
	d.Reset()
	d.Add(math.MaxFloat64)
	d.Add(0x1p969)
	if got := d.Round(); got != math.MaxFloat64 {
		t.Fatalf("MaxFloat64 + 2^969 = %g, want MaxFloat64", got)
	}
}

func TestDenseSubnormalResults(t *testing.T) {
	// Differences of normals landing in the subnormal range, with rounding.
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{0x1p-1022, -0x1p-1023}, 0x1p-1023},
		{[]float64{0x1p-1070, 0x1p-1074}, 0x1p-1070 + 0x1p-1074},
		{[]float64{0x1p-1074, 0x1p-1074}, 0x1p-1073},
		{[]float64{0x1.8p-1073, -0x1p-1074}, 0x1p-1073},
	}
	for _, c := range cases {
		d := NewDense(0)
		d.AddSlice(c.xs)
		if got := d.Round(); got != c.want {
			t.Errorf("sum%v = %g (%b), want %g (%b)", c.xs, got, got, c.want, c.want)
		}
	}
}

func TestDenseRoundHalfEven(t *testing.T) {
	// 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: rounds to 1 (even).
	d := NewDense(0)
	d.Add(1)
	d.Add(0x1p-53)
	if got := d.Round(); got != 1 {
		t.Fatalf("1 + 2^-53 = %g, want 1", got)
	}
	// (1+2^-52) + 2^-53 is halfway and rounds up to 1+2^-51 (even significand).
	d.Reset()
	d.Add(1 + 0x1p-52)
	d.Add(0x1p-53)
	if got := d.Round(); got != 1+0x1p-51 {
		t.Fatalf("(1+2^-52) + 2^-53 = %g, want 1+2^-51", got)
	}
	// A sticky bit below the half breaks the tie upward.
	d.Reset()
	d.Add(1)
	d.Add(0x1p-53)
	d.Add(0x1p-1074)
	if got := d.Round(); got != 1+0x1p-52 {
		t.Fatalf("1 + 2^-53 + 2^-1074 = %g, want 1+2^-52", got)
	}
}

func TestDenseLemma1Invariant(t *testing.T) {
	// After Regularize and after AddRegularized, every digit must be in
	// [−α, β] = [−(R−1), R−1] (Lemma 1), and the value must be preserved.
	r := rand.New(rand.NewSource(2))
	for _, w := range []uint{8, 16, 27, 32} {
		for trial := 0; trial < 40; trial++ {
			xs := randValues(r, 1+r.Intn(40), true)
			ys := randValues(r, 1+r.Intn(40), true)
			a, b := NewDense(w), NewDense(w)
			a.AddSlice(xs)
			b.AddSlice(ys)
			a.Regularize()
			b.Regularize()
			if !a.IsRegularized() || !b.IsRegularized() {
				t.Fatalf("w=%d: Regularize violated (α,β) range", w)
			}
			a.AddRegularized(b)
			if !a.IsRegularized() {
				t.Fatalf("w=%d: AddRegularized violated (α,β) range", w)
			}
			got := a.Round()
			want := oracle.Sum(append(append([]float64(nil), xs...), ys...))
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("w=%d: AddRegularized=%g oracle=%g", w, got, want)
			}
		}
	}
}

func TestDenseMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		xs := randValues(r, 1+r.Intn(100), true)
		cut := r.Intn(len(xs) + 1)
		a, b, c := NewDense(0), NewDense(0), NewDense(0)
		a.AddSlice(xs[:cut])
		b.AddSlice(xs[cut:])
		c.AddSlice(xs)
		a.Merge(b)
		if ga, gc := a.Round(), c.Round(); ga != gc && !(math.IsNaN(ga) && math.IsNaN(gc)) {
			t.Fatalf("merge=%g sequential=%g", ga, gc)
		}
	}
}

func TestDenseLazyRegularizationOverflow(t *testing.T) {
	// Exceed the lazy-add budget with same-sign maximal contributions and
	// confirm the forced regularization keeps the value exact. Width 8
	// makes the budget small enough to cross quickly (2^54 would be too
	// slow; instead check the trigger fires by lowering it).
	d := NewDense(8)
	d.maxAdd = 100
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 255 // R−1 at w=8: worst-case per-digit contribution
	}
	d.AddSlice(xs)
	if got := d.Round(); got != 255000 {
		t.Fatalf("lazy overflow: got %g want 255000", got)
	}
}

func TestDenseQuickFaithful(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(raw []uint64) bool {
		xs := make([]float64, 0, len(raw))
		for _, b := range raw {
			x := math.Float64frombits(b)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		d := NewDense(0)
		d.AddSlice(xs)
		return d.Round() == oracle.Sum(xs)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestComposeDecompose(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		x := math.Float64frombits(r.Uint64())
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		neg, m, e := fpnum.Decompose(x)
		if got := fpnum.Compose(neg, m, e); got != x {
			t.Fatalf("Compose(Decompose(%g)) = %g", x, got)
		}
	}
}
