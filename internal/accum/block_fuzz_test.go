package accum

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// FuzzBlockVsScalar is the differential obligation of the block-structured
// bulk paths: for arbitrary float blocks — specials, zeros, denormals, and
// any block-boundary split included — AddSlice/SubSlice must leave Dense,
// Small, and Window in a state bit-identical to the scalar Add/Sub oracle
// loop. States are compared canonically: regularized digit strings plus
// the out-of-band special multiplicities, and the rounded result bits.
//
// Input layout: data[0] picks the AddSlice split point (so the fuzzer
// exercises blocks cut at every boundary), data[1] picks how much of the
// tail is deleted again via SubSlice, and the rest reinterprets as
// little-endian float64s.
func FuzzBlockVsScalar(f *testing.F) {
	seed := func(split, sub byte, xs ...float64) {
		data := []byte{split, sub}
		for _, x := range xs {
			data = binary.LittleEndian.AppendUint64(data, math.Float64bits(x))
		}
		f.Add(data)
	}
	seed(0, 0)
	seed(1, 0, 1, 2, 3)
	seed(128, 64, 1e100, 1, -1e100, 0.5)
	seed(3, 200, math.Inf(1), math.NaN(), math.Inf(-1), 1.25, math.Inf(1))
	seed(77, 10, 0, math.Copysign(0, -1), 1e-310, math.SmallestNonzeroFloat64)
	seed(200, 100, math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64)
	// A multi-block narrow-spread run: the lane fast path across a split.
	narrow := make([]float64, 300)
	for i := range narrow {
		narrow[i] = 1 + float64(i)/512
	}
	seed(150, 30, narrow...)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		split, sub := int(data[0]), int(data[1])
		xs := fuzzBytesToFloats(data[2:], 1024)
		p := 0
		if len(xs) > 0 {
			p = split % (len(xs) + 1)
		}
		nsub := 0
		if n := len(xs) - p; n > 0 {
			nsub = sub % (n + 1)
		}
		del := xs[len(xs)-nsub:]

		bd, od := NewDense(0), NewDense(0)
		bs, os := NewSmall(), NewSmall()
		bw, ow := NewWindow(0), NewWindow(0)

		// Block paths: two bulk adds around the split, one bulk delete.
		for _, a := range []interface {
			AddSlice([]float64)
			SubSlice([]float64)
		}{bd, bs, bw} {
			a.AddSlice(xs[:p])
			a.AddSlice(xs[p:])
			a.SubSlice(del)
		}
		// Scalar oracle loops.
		for _, x := range xs {
			od.Add(x)
			os.Add(x)
			ow.Add(x)
		}
		for _, x := range del {
			od.Sub(x)
			os.Sub(x)
			ow.Sub(x)
		}

		bd.Regularize()
		od.Regularize()
		if !slices.Equal(bd.dig, od.dig) || bd.sp != od.sp {
			t.Fatalf("dense block path diverges from scalar oracle\nblock:  %v\nscalar: %v", bd, od)
		}
		bs.Propagate()
		os.Propagate()
		if !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
			t.Fatal("small block path diverges from scalar oracle")
		}
		bsp, osp := bw.ToSparse(), ow.ToSparse()
		if !slices.Equal(bsp.idx, osp.idx) || !slices.Equal(bsp.dig, osp.dig) || bsp.sp != osp.sp {
			t.Fatalf("window block path diverges from scalar oracle\nblock:  %v\nscalar: %v", bsp, osp)
		}
		for _, pair := range [][2]float64{{bd.Round(), od.Round()}, {bs.Round(), os.Round()}, {bw.Round(), ow.Round()}} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("Round bits diverge: block %x, scalar %x", math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
	})
}
