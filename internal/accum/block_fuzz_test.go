package accum

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// FuzzBlockVsScalar is the differential obligation of the bulk lane-cache
// paths: for arbitrary float blocks — specials, zeros, denormals, and
// any block-boundary split included — AddSlice/SubSlice must leave Dense,
// Small, and Window in a state bit-identical to the scalar Add/Sub oracle
// loop. States are compared canonically: regularized digit strings plus
// the out-of-band special multiplicities, and the rounded result bits.
//
// Input layout: data[0] picks the AddSlice split point (so the fuzzer
// exercises blocks cut at every boundary), data[1] picks how much of the
// tail is deleted again via SubSlice, data[2] picks a lane-cache add
// budget (so flushes fire mid-slice, between the alternating AddSlice /
// SubSlice calls, and around specials), and the rest reinterprets as
// little-endian float64s — and, independently, as little-endian float32s
// for the AddSlice32 narrow-lane differential.
func FuzzBlockVsScalar(f *testing.F) {
	seed := func(split, sub, budget byte, xs ...float64) {
		data := []byte{split, sub, budget}
		for _, x := range xs {
			data = binary.LittleEndian.AppendUint64(data, math.Float64bits(x))
		}
		f.Add(data)
	}
	seed(0, 0, 0)
	seed(1, 0, 0, 1, 2, 3)
	seed(128, 64, 0, 1e100, 1, -1e100, 0.5)
	seed(3, 200, 0, math.Inf(1), math.NaN(), math.Inf(-1), 1.25, math.Inf(1))
	seed(77, 10, 0, 0, math.Copysign(0, -1), 1e-310, math.SmallestNonzeroFloat64)
	seed(200, 100, 0, math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64)
	// A multi-block narrow-spread run crossing an AddSlice split.
	narrow := make([]float64, 300)
	for i := range narrow {
		narrow[i] = 1 + float64(i)/512
	}
	seed(150, 30, 0, narrow...)
	// Lane-flush boundary seeds: tiny budgets force flushes mid-slice,
	// with direction changes and specials straddling them.
	seed(150, 30, 1, narrow...)
	seed(100, 80, 2, narrow[:40]...)
	seed(5, 3, 3, 1e300, -1e-300, math.Inf(-1), 1e300, math.NaN(), -1e300, 2.5)
	seed(9, 4, 4, math.MaxFloat64, math.Inf(1), -math.MaxFloat64, math.Inf(1), 1e-310)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		split, sub := int(data[0]), int(data[1])
		// data[2] == 0 keeps the production budget; other values force
		// budget-exhaustion flushes at fuzz scale.
		if sel := data[2] % 8; sel != 0 {
			old := laneMaxAdds
			laneMaxAdds = []int64{0, 1, 2, 3, 5, 17, 63, 256}[sel]
			defer func() { laneMaxAdds = old }()
		}
		xs := fuzzBytesToFloats(data[3:], 1024)
		p := 0
		if len(xs) > 0 {
			p = split % (len(xs) + 1)
		}
		nsub := 0
		if n := len(xs) - p; n > 0 {
			nsub = sub % (n + 1)
		}
		del := xs[len(xs)-nsub:]

		bd, od := NewDense(0), NewDense(0)
		bs, os := NewSmall(), NewSmall()
		bw, ow := NewWindow(0), NewWindow(0)

		// Block paths: two bulk adds around the split, one bulk delete.
		for _, a := range []interface {
			AddSlice([]float64)
			SubSlice([]float64)
		}{bd, bs, bw} {
			a.AddSlice(xs[:p])
			a.AddSlice(xs[p:])
			a.SubSlice(del)
		}
		// Scalar oracle loops.
		for _, x := range xs {
			od.Add(x)
			os.Add(x)
			ow.Add(x)
		}
		for _, x := range del {
			od.Sub(x)
			os.Sub(x)
			ow.Sub(x)
		}

		bd.Regularize()
		od.Regularize()
		if !slices.Equal(bd.dig, od.dig) || bd.sp != od.sp {
			t.Fatalf("dense block path diverges from scalar oracle\nblock:  %v\nscalar: %v", bd, od)
		}
		bs.Propagate()
		os.Propagate()
		if !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
			t.Fatal("small block path diverges from scalar oracle")
		}
		bsp, osp := bw.ToSparse(), ow.ToSparse()
		if !slices.Equal(bsp.idx, osp.idx) || !slices.Equal(bsp.dig, osp.dig) || bsp.sp != osp.sp {
			t.Fatalf("window block path diverges from scalar oracle\nblock:  %v\nscalar: %v", bsp, osp)
		}
		for _, pair := range [][2]float64{{bd.Round(), od.Round()}, {bs.Round(), os.Round()}, {bw.Round(), ow.Round()}} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("Round bits diverge: block %x, scalar %x", math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}

		// float32 narrow-lane differential over the same raw bytes.
		xs32 := fuzzBytesToFloat32s(data[3:], 1024)
		p32 := 0
		if len(xs32) > 0 {
			p32 = split % (len(xs32) + 1)
		}
		b32, o32 := NewDense(0), NewDense(0)
		b32.AddSlice32(xs32[:p32])
		b32.AddSlice32(xs32[p32:])
		b32.SubSlice32(xs32[:p32])
		for _, x := range xs32 {
			o32.Add(float64(x))
		}
		for _, x := range xs32[:p32] {
			o32.Sub(float64(x))
		}
		b32.Regularize()
		o32.Regularize()
		if !slices.Equal(b32.dig, o32.dig) || b32.sp != o32.sp {
			t.Fatalf("f32 lane path diverges from scalar oracle\nlane:   %v\nscalar: %v", b32, o32)
		}
		if g, want := b32.Round32(), o32.Round32(); math.Float32bits(g) != math.Float32bits(want) {
			t.Fatalf("f32 Round32 bits diverge: lane %x, scalar %x", math.Float32bits(g), math.Float32bits(want))
		}
	})
}

// fuzzBytesToFloat32s reinterprets data as little-endian float32s,
// capped at limit elements.
func fuzzBytesToFloat32s(data []byte, limit int) []float32 {
	n := min(len(data)/4, limit)
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return xs
}
