package accum

import (
	"math"
	"testing"

	"parsum/internal/oracle"
)

// negCases are value sets whose negation/deletion must round exactly.
func negCases() map[string][]float64 {
	return map[string][]float64{
		"mixed":      {1e100, 1, -1e100, 0x1p-1074, -3.5, math.MaxFloat64, -math.MaxFloat64},
		"denormals":  {5e-324, 5e-324, -1.5e-323, 2.5e-323},
		"specials":   {math.Inf(1), 1, math.NaN(), math.Inf(-1)},
		"zeros":      {0, math.Copysign(0, -1), 1.25},
		"cancelling": {math.Ldexp(1, 1000), -math.Ldexp(1, 1000), math.Ldexp(1, -1000)},
	}
}

func negOf(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}

// expectNeg is the rounded value of the negated multiset (exact zero sums
// round to +0; NaN stays NaN).
func expectNeg(xs []float64) float64 {
	return oracle.Sum(negOf(xs))
}

// accOps abstracts the five representations for the shared law checks.
type accOps struct {
	add    func(x float64)
	sub    func(x float64)
	neg    func()
	addNeg func(other string) // builds an accumulator of the named case and AddNegs it
	round  func() float64
}

func eachRep(t *testing.T, f func(name string, mk func() accOps)) {
	build := map[string]func() accOps{
		"dense": func() accOps {
			d := NewDense(0)
			return accOps{d.Add, d.Sub, d.Neg, func(cs string) {
				o := NewDense(0)
				o.AddSlice(negCases()[cs])
				d.AddNeg(o)
			}, d.Round}
		},
		"sparse": func() accOps {
			s := NewSparse(0)
			return accOps{s.Add, s.Sub, s.Neg, func(cs string) {
				o := NewSparse(0)
				for _, x := range negCases()[cs] {
					o.Add(x)
				}
				s.AddNeg(o)
			}, s.Round}
		},
		"window": func() accOps {
			w := NewWindow(0)
			return accOps{w.Add, w.Sub, w.Neg, func(cs string) {
				o := NewWindow(0)
				o.AddSlice(negCases()[cs])
				w.AddNeg(o)
			}, w.Round}
		},
		"small": func() accOps {
			s := NewSmall()
			return accOps{s.Add, s.Sub, s.Neg, func(cs string) {
				o := NewSmall()
				o.AddSlice(negCases()[cs])
				s.AddNeg(o)
			}, s.Round}
		},
		"large": func() accOps {
			l := NewLarge()
			return accOps{l.Add, l.Sub, l.Neg, func(cs string) {
				o := NewLarge()
				o.AddSlice(negCases()[cs])
				l.AddNeg(o)
			}, l.Round}
		},
	}
	for name, mk := range build {
		f(name, mk)
	}
}

func bitsEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestNegMatchesNegatedOracle: Neg flips the represented value exactly —
// the rounded result equals the oracle sum of the negated multiset
// (infinities swap, NaN stays NaN).
func TestNegMatchesNegatedOracle(t *testing.T) {
	eachRep(t, func(rep string, mk func() accOps) {
		for cs, xs := range negCases() {
			a := mk()
			for _, x := range xs {
				a.add(x)
			}
			a.neg()
			if got, want := a.round(), expectNeg(xs); !bitsEq(got, want) {
				t.Errorf("%s/%s: Neg rounds to %x, want %x", rep, cs,
					math.Float64bits(got), math.Float64bits(want))
			}
			// Neg is an involution.
			a.neg()
			if got, want := a.round(), oracle.Sum(xs); !bitsEq(got, want) {
				t.Errorf("%s/%s: double Neg rounds to %x, want %x", rep, cs,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	})
}

// TestSubDeletesExactly: adding a case then deleting it value-by-value
// restores the empty state (+0 bits), from any base.
func TestSubDeletesExactly(t *testing.T) {
	base := []float64{2.5, -0x1p-1074, 1e200}
	eachRep(t, func(rep string, mk func() accOps) {
		for cs, xs := range negCases() {
			a := mk()
			for _, x := range base {
				a.add(x)
			}
			want := a.round()
			for _, x := range xs {
				a.add(x)
			}
			for _, x := range xs {
				a.sub(x)
			}
			if got := a.round(); !bitsEq(got, want) {
				t.Errorf("%s/%s: add+sub left %x, want %x", rep, cs,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	})
}

// TestAddNegDeletesMergedAccumulator: AddNeg is the group inverse of
// Merge — deleting a whole accumulator restores the prior rounded bits.
func TestAddNegDeletesMergedAccumulator(t *testing.T) {
	base := []float64{1, math.Ldexp(1, 700), -math.Ldexp(1, -700)}
	eachRep(t, func(rep string, mk func() accOps) {
		for cs := range negCases() {
			a := mk()
			for _, x := range base {
				a.add(x)
			}
			want := a.round()
			for _, x := range negCases()[cs] {
				a.add(x)
			}
			a.addNeg(cs)
			if got := a.round(); !bitsEq(got, want) {
				t.Errorf("%s/%s: AddNeg left %x, want %x", rep, cs,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	})
}

// TestSubLazyBudget: a long alternating add/sub stream must regularize on
// schedule rather than overflow digits (exercises the lazy-add accounting
// on the deletion path).
func TestSubLazyBudget(t *testing.T) {
	d := NewDense(MaxWidth) // smallest lazy budget: 2^(62-32) adds
	w := NewWindow(MaxWidth)
	const n = 5000
	for i := 0; i < n; i++ {
		d.Add(math.MaxFloat64)
		d.Sub(math.MaxFloat64 / 2)
		w.Add(math.MaxFloat64)
		w.Sub(math.MaxFloat64 / 2)
	}
	// The exact net sum is n × MaxFloat64/2, far beyond the float64 range.
	dv, wv := d.Round(), w.Round()
	if !bitsEq(dv, wv) {
		t.Fatalf("dense %x != window %x", math.Float64bits(dv), math.Float64bits(wv))
	}
	if !math.IsInf(dv, 1) {
		t.Fatalf("n/2 × MaxFloat64 should round to +Inf, got %g", dv)
	}
}

// TestSparseSubViaMerge: Sparse.Sub on a representation built through
// MergeSparse keeps components regularized.
func TestSparseSubViaMerge(t *testing.T) {
	a := FromFloat64(1e100, 0)
	b := FromFloat64(-1, 0)
	m := MergeSparse(a, b)
	m.Sub(1e100)
	if got := m.Round(); got != -1 {
		t.Fatalf("after Sub: %g, want -1", got)
	}
	if !m.IsRegularized() {
		t.Fatal("Sub left sparse unregularized")
	}
	m.Sub(math.Inf(1)) // over-deletion of a special reads as absent
	if got := m.Round(); got != -1 {
		t.Fatalf("over-deleted special changed value: %g", got)
	}
	m.Add(math.Inf(1)) // cancels the deficit, still absent
	if got := m.Round(); got != -1 {
		t.Fatalf("special deficit did not cancel: %g", got)
	}
}
