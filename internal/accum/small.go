package accum

import "parsum/internal/fpnum"

// Small is a Neal-style "small superaccumulator" (Neal 2015, as used by the
// paper's MapReduce experiments): a dense array of 64-bit signed chunks at a
// fixed 32-bit spacing covering the full double-precision range. Unlike
// Dense it maintains no (α,β) GSD invariant: merging two accumulators
// requires a full sequential carry-propagation pass, which is exactly the
// carry chain the paper's representation eliminates (see the carry-depth
// ablation in internal/pram).
type Small struct {
	dig    []int64
	minIdx int
	nAdd   int
	maxAdd int
	sp     special
	lc     laneCache
}

const smallWidth = 32

// NewSmall returns an empty small superaccumulator.
func NewSmall() *Small {
	minIdx, maxIdx := digitBounds(smallWidth)
	return &Small{
		dig:    make([]int64, maxIdx-minIdx+1),
		minIdx: minIdx,
		maxAdd: maxLazyAdds(smallWidth),
	}
}

// Add accumulates x exactly.
func (s *Small) Add(x float64) {
	c := fpnum.Classify(x)
	if c != fpnum.ClassFinite {
		s.sp.note(c)
		return
	}
	if s.nAdd >= s.maxAdd {
		s.Propagate()
	}
	s.nAdd++
	neg, m, e := fpnum.Decompose(x)
	s.addChunks(neg, m, e)
}

// addChunks splits the significand m·2^e into 32-bit chunks and adds them
// (subtracts when neg) to the chunk array.
func (s *Small) addChunks(neg bool, m uint64, e int) {
	k := floorDiv(e, smallWidth)
	off := uint(e - k*smallWidth)
	lo := m << off
	hi := uint64(0)
	if off != 0 {
		hi = m >> (64 - off)
	}
	i := k - s.minIdx
	if neg {
		for lo != 0 || hi != 0 {
			s.dig[i] -= int64(lo & 0xFFFFFFFF)
			lo = lo>>smallWidth | hi<<smallWidth
			hi >>= smallWidth
			i++
		}
		return
	}
	for lo != 0 || hi != 0 {
		s.dig[i] += int64(lo & 0xFFFFFFFF)
		lo = lo>>smallWidth | hi<<smallWidth
		hi >>= smallWidth
		i++
	}
}

// AddSlice accumulates every element of xs exactly through the carry-save
// lane pass (see lanes.go): Small's chunk spacing is the canonical 32-bit
// width, so it shares the L1-resident lane cache machinery with Dense —
// the only difference is where a flush drains to. The result is
// bit-identical to calling Add per element.
func (s *Small) AddSlice(xs []float64) {
	laneSlice(s, xs, 0)
}

// AddSlice32 accumulates every element of a float32 slice exactly via the
// narrow-lane float32 pass.
func (s *Small) AddSlice32(xs []float32) {
	laneSlice32(s, xs, 0)
}

// SubSlice32 deletes every element of a float32 slice exactly — the group
// inverse of AddSlice32.
func (s *Small) SubSlice32(xs []float32) {
	laneSlice32(s, xs, 1)
}

// laneHost adapters.
func (s *Small) lanes() *laneCache { return &s.lc }

// flushLanes drains every pending lane-cache window into the chunk array
// (three exact pieces per dirty window) and zeroes the cache, paying at
// most one carry pass up front so the drain cannot recurse.
func (s *Small) flushLanes() {
	if s.lc.n == 0 {
		return
	}
	if s.nAdd+3*laneWindows > s.maxAdd {
		s.carryPass()
	}
	for i := range s.lc.lane {
		p := &s.lc.lane[i]
		if p.lo == 0 && p.hi == 0 {
			continue
		}
		e := (i - laneKBias) * smallWidth
		p0, p1, hiNeg, hiMag := lanePieces(*p)
		if p0 != 0 {
			s.nAdd++
			s.addChunks(false, p0, e)
		}
		if p1 != 0 {
			s.nAdd++
			s.addChunks(false, p1, e+smallWidth)
		}
		if hiMag != 0 {
			s.nAdd++
			s.addChunks(hiNeg, hiMag, e+64)
		}
		*p = lane128{}
	}
	s.lc.n = 0
}

// addInt64 accumulates the exact value v·2^e. Each chunk receives less
// than 2^32 regardless of the magnitude of v, so the lazy-add accounting
// of Add applies unchanged.
func (s *Small) addInt64(v int64, e int) {
	if v == 0 {
		return
	}
	if s.nAdd >= s.maxAdd {
		s.Propagate()
	}
	s.nAdd++
	neg := v < 0
	m := uint64(v)
	if neg {
		m = -m
	}
	s.addChunks(neg, m, e)
}

// Sub deletes x from the accumulated sum exactly — the group inverse of
// Add. Non-finite values are deleted from the out-of-band multiset (see
// Dense.Sub).
func (s *Small) Sub(x float64) {
	c := fpnum.Classify(x)
	if c != fpnum.ClassFinite {
		s.sp.unnote(c)
		return
	}
	if s.nAdd >= s.maxAdd {
		s.Propagate()
	}
	s.nAdd++
	neg, m, e := fpnum.Decompose(x)
	s.addChunks(!neg, m, e)
}

// SubSlice deletes every element of xs exactly, through the same lane
// pass as AddSlice with the direction sign folded into the update mask.
func (s *Small) SubSlice(xs []float64) {
	laneSlice(s, xs, 1)
}

// Neg negates the represented value in place: every chunk flips sign and
// the infinity multiplicities swap. Chunks may leave the canonical
// [0, 2^32) form; the next Propagate restores it.
func (s *Small) Neg() {
	for i := range s.dig {
		s.dig[i] = -s.dig[i]
	}
	s.lc.negate()
	s.sp.negate()
}

// AddNeg subtracts o's exact contents from s — the group inverse of Merge,
// leaving o unmodified. Special multiplicities are subtracted, not
// sign-swapped (AddNeg deletes o's summands).
func (s *Small) AddNeg(o *Small) {
	s.sp.unmerge(o.sp)
	if s.nAdd+o.nAdd+1 > s.maxAdd {
		s.Propagate() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	if s.lc.n+o.lc.n > laneMaxAdds {
		s.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	s.lc.unmerge(&o.lc)
	for i, v := range o.dig {
		s.dig[i] -= v
	}
	s.Propagate()
}

// Propagate performs the full sequential carry-propagation pass, leaving
// every chunk but the topmost in [0, 2^32), draining any pending
// lane-cache contributions first. This is the inherently sequential step
// the paper's carry-free representation avoids.
func (s *Small) Propagate() {
	s.flushLanes()
	s.carryPass()
}

// carryPass is Propagate's carry step over the chunks alone.
func (s *Small) carryPass() {
	var c int64
	last := len(s.dig) - 1
	for i := 0; i < last; i++ {
		v := s.dig[i] + c
		s.dig[i] = v & 0xFFFFFFFF
		c = v >> smallWidth
	}
	s.dig[last] += c
	s.nAdd = 0
}

// Merge adds o into s, propagating carries eagerly (the carry-propagating
// baseline behaviour).
func (s *Small) Merge(o *Small) {
	s.sp.merge(o.sp)
	if s.nAdd+o.nAdd+1 > s.maxAdd {
		s.Propagate() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	if s.lc.n+o.lc.n > laneMaxAdds {
		s.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	s.lc.merge(&o.lc)
	for i, v := range o.dig {
		s.dig[i] += v
	}
	s.Propagate()
}

// Round returns the correctly rounded float64 value of the exact sum.
func (s *Small) Round() float64 {
	if v, ok := s.sp.resolved(); ok {
		return v
	}
	s.Propagate()
	return roundDigits(s.dig, s.minIdx, smallWidth)
}

// Reset returns the accumulator to the empty state.
func (s *Small) Reset() {
	for i := range s.dig {
		s.dig[i] = 0
	}
	s.nAdd = 0
	s.sp = special{}
	s.lc.reset()
}

// Clone returns an independent copy of s.
func (s *Small) Clone() *Small {
	c := *s
	c.dig = append([]int64(nil), s.dig...)
	return &c
}

// EncodedSize returns the bytes a dense binary encoding would occupy; used
// by the MapReduce engine to account shuffle volume.
func (s *Small) EncodedSize() int { return 8 * len(s.dig) }
