package accum

import (
	"fmt"

	"parsum/internal/fpnum"
)

// Dense is an (α,β)-regularized superaccumulator covering the entire
// double-precision exponent range. The value it represents is
//
//	Σ_i dig[i] · R^(minIdx+i),   R = 2^W, α = β = R−1,
//
// plus any non-finite summands tracked out of band. The zero value is not
// usable; construct with NewDense.
//
// Additions of raw float64 values are applied lazily: digits are allowed to
// drift outside [−α, β] for up to maxLazyAdds(W) additions before a
// regularization pass restores the invariant (this is the paper's
// observation that a mantissa holds Ω(log n) slack bits, so carries need not
// be resolved per addition). AddRegularized implements the carry-free
// Lemma 1 addition used by the parallel algorithms.
//
// Bulk additions at the canonical width go one tier higher: AddSlice and
// SubSlice accumulate into the embedded carry-save lane cache (lanes.go),
// an L1-resident 128-bit-per-window mirror of the digit string, and the
// digits see the contribution only when the cache drains (flushLanes) — on
// Regularize, Round, Merge, marshal, or lane-budget saturation. The
// represented value is always digits + pending lanes; every consumer of
// the digit string flushes first, and a flush is value-preserving, so the
// canonical regularized digit string is bit-identical to the scalar
// path's regardless of where flushes fall relative to the input stream.
type Dense struct {
	w      uint
	radix  int64
	mask   int64
	minIdx int
	dig    []int64
	nAdd   int
	maxAdd int
	sp     special
	lc     laneCache
}

// NewDense returns an empty dense superaccumulator with digit width w
// (0 means DefaultWidth).
func NewDense(w uint) *Dense {
	w = widthOrDefault(w)
	minIdx, maxIdx := digitBounds(w)
	return &Dense{
		w:      w,
		radix:  1 << w,
		mask:   1<<w - 1,
		minIdx: minIdx,
		dig:    make([]int64, maxIdx-minIdx+1),
		maxAdd: maxLazyAdds(w),
	}
}

// Width returns the digit width W (the radix is 2^W).
func (d *Dense) Width() uint { return d.w }

// Reset returns the accumulator to the empty (zero-sum) state.
func (d *Dense) Reset() {
	for i := range d.dig {
		d.dig[i] = 0
	}
	d.nAdd = 0
	d.sp = special{}
	d.lc.reset()
}

// Add accumulates x exactly. NaN and ±Inf are tracked with IEEE semantics.
func (d *Dense) Add(x float64) {
	c := fpnum.Classify(x)
	if c != fpnum.ClassFinite {
		d.sp.note(c)
		return
	}
	if d.nAdd >= d.maxAdd {
		d.Regularize()
	}
	d.nAdd++
	neg, m, e := fpnum.Decompose(x)
	d.addChunks(neg, m, e)
}

// AddSlice accumulates every element of xs exactly. It is the bulk
// streaming entry point used by every bulk consumer — the sequential
// one-shot Sum, the parallel chunk workers, sharded AddBatch, stream
// bucket fills, and the sumd ingest path — and, at the canonical digit
// width, runs the carry-save lane pass of lanes.go: one branch-free
// 128-bit window update per element into the L1-resident lane cache,
// drained into the dense digits only at flush points. The result is
// bit-identical to calling Add per element.
func (d *Dense) AddSlice(xs []float64) {
	if d.w != blockWidth {
		for _, x := range xs {
			d.Add(x)
		}
		return
	}
	laneSlice(d, xs, 0)
}

// AddSlice32 accumulates every element of a float32 slice exactly (every
// float32 value is a float64 value; no widening conversion is
// materialized). It runs the narrow-lane float32 pass — a 24-bit
// significand never splits across lo words, so the per-element work is
// strictly smaller than AddSlice's.
func (d *Dense) AddSlice32(xs []float32) {
	if d.w != blockWidth {
		for _, x := range xs {
			d.Add(float64(x))
		}
		return
	}
	laneSlice32(d, xs, 0)
}

// SubSlice32 deletes every element of a float32 slice exactly — the group
// inverse of AddSlice32.
func (d *Dense) SubSlice32(xs []float32) {
	if d.w != blockWidth {
		for _, x := range xs {
			d.Sub(float64(x))
		}
		return
	}
	laneSlice32(d, xs, 1)
}

// laneHost adapters.
func (d *Dense) lanes() *laneCache { return &d.lc }

// flushLanes drains every pending lane-cache window into the dense digit
// string (three exact pieces per dirty window) and zeroes the cache. It
// charges the lazy-add budget per piece, paying at most one carry pass up
// front so the drain itself cannot recurse into Regularize.
func (d *Dense) flushLanes() {
	if d.lc.n == 0 {
		return
	}
	if d.nAdd+3*laneWindows > d.maxAdd {
		d.carryPass()
	}
	for i := range d.lc.lane {
		p := &d.lc.lane[i]
		if p.lo == 0 && p.hi == 0 {
			continue
		}
		e := (i - laneKBias) * blockWidth
		p0, p1, hiNeg, hiMag := lanePieces(*p)
		if p0 != 0 {
			d.nAdd++
			d.addChunks(false, p0, e)
		}
		if p1 != 0 {
			d.nAdd++
			d.addChunks(false, p1, e+blockWidth)
		}
		if hiMag != 0 {
			d.nAdd++
			d.addChunks(hiNeg, hiMag, e+64)
		}
		*p = lane128{}
	}
	d.lc.n = 0
}

// addChunks splits the 53-bit significand m·2^e into W-bit digit-aligned
// chunks and adds them (subtracts when neg) to the digit string. The
// shifted significand occupies at most 53+W−1 ≤ 84 bits, held in hi:lo.
func (d *Dense) addChunks(neg bool, m uint64, e int) {
	k := floorDiv(e, int(d.w))
	off := uint(e - k*int(d.w))
	lo := m << off
	hi := uint64(0)
	if off != 0 {
		hi = m >> (64 - off)
	}
	i := k - d.minIdx
	w := d.w
	um := uint64(d.mask)
	if neg {
		for lo != 0 || hi != 0 {
			d.dig[i] -= int64(lo & um)
			lo = lo>>w | hi<<(64-w)
			hi >>= w
			i++
		}
		return
	}
	for lo != 0 || hi != 0 {
		d.dig[i] += int64(lo & um)
		lo = lo>>w | hi<<(64-w)
		hi >>= w
		i++
	}
}

// Sub deletes x from the accumulated sum exactly — the group inverse of
// Add, made possible by the signed-digit representation: the digit updates
// are the sign-flipped chunks of x, so a+x−x is bit-for-bit a. Non-finite
// values are deleted from the out-of-band multiset (Sub(+Inf) after
// Add(+Inf) restores the prior state; it is not Add(−Inf)).
func (d *Dense) Sub(x float64) {
	c := fpnum.Classify(x)
	if c != fpnum.ClassFinite {
		d.sp.unnote(c)
		return
	}
	if d.nAdd >= d.maxAdd {
		d.Regularize()
	}
	d.nAdd++
	neg, m, e := fpnum.Decompose(x)
	d.addChunks(!neg, m, e)
}

// SubSlice deletes every element of xs exactly, through the same lane
// pass as AddSlice with the direction sign folded into the update mask.
func (d *Dense) SubSlice(xs []float64) {
	if d.w != blockWidth {
		for _, x := range xs {
			d.Sub(x)
		}
		return
	}
	laneSlice(d, xs, 1)
}

// Neg negates the represented value in place: every digit flips sign (the
// signed-digit string of −v) and the tracked infinity multiplicities swap.
// A regularized accumulator stays regularized — the (α,β) range is
// symmetric — and the lazy-add budget is unchanged.
func (d *Dense) Neg() {
	for i := range d.dig {
		d.dig[i] = -d.dig[i]
	}
	d.lc.negate()
	d.sp.negate()
}

// AddNeg subtracts o's exact contents from d — the group inverse of Merge,
// leaving o unmodified. Deleting a previously merged accumulator restores
// the prior state bit-for-bit, including the out-of-band special
// multiplicities (which are subtracted, not sign-swapped: AddNeg deletes
// o's summands rather than merging their negations). Widths must match.
func (d *Dense) AddNeg(o *Dense) {
	if d.w != o.w {
		panic("accum: width mismatch in AddNeg")
	}
	d.sp.unmerge(o.sp)
	if d.nAdd+o.nAdd+1 > d.maxAdd {
		d.Regularize() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	if d.lc.n+o.lc.n > laneMaxAdds {
		d.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	d.lc.unmerge(&o.lc)
	for i, v := range o.dig {
		d.dig[i] -= v
	}
	d.nAdd += o.nAdd + 1
}

// addInt64 accumulates the exact value v·2^e. Each digit receives at most
// R−1 regardless of the magnitude of v, so the lazy-add accounting of Add
// applies unchanged.
func (d *Dense) addInt64(v int64, e int) {
	if v == 0 {
		return
	}
	if d.nAdd >= d.maxAdd {
		d.Regularize()
	}
	d.nAdd++
	neg := v < 0
	m := uint64(v)
	if neg {
		m = -m
	}
	d.addChunks(neg, m, e)
}

// Regularize restores every digit to the (α,β) range [−(R−1), R−1] without
// changing the represented value, draining any pending lane-cache
// contributions first so the digit string is the complete value. The carry
// step is a single low-to-high signed-carry pass: dᵢ ← v mod R (in
// [0, R−1]) with carry ⌊v/R⌋ into the next digit; the topmost digit keeps
// its carry unreduced (the headroom digits guarantee it stays small, and a
// globally negative value leaves the top digit negative).
func (d *Dense) Regularize() {
	d.flushLanes()
	d.carryPass()
}

// carryPass is Regularize's carry step over the digits alone; callers
// other than Regularize use it when the lane cache is being handled
// separately (flushLanes pays one up front to make headroom).
func (d *Dense) carryPass() {
	var c int64
	last := len(d.dig) - 1
	for i := 0; i < last; i++ {
		v := d.dig[i] + c
		d.dig[i] = v & d.mask
		c = v >> d.w
	}
	d.dig[last] += c
	d.nAdd = 0
}

// AddRegularized adds o into d using the paper's Lemma 1 carry-free
// parallel addition. Both accumulators must be regularized (all digits in
// [−α, β]); the result is again regularized, with every output digit
// computable independently given only its own component sum and its lower
// neighbor's — the property that makes superaccumulator addition O(1)-depth
// on a PRAM. Widths must match.
func (d *Dense) AddRegularized(o *Dense) {
	if d.w != o.w {
		panic("accum: width mismatch in AddRegularized")
	}
	// Pending lanes mean the digit string is not the complete value, so
	// the side is not regularized; restore the precondition. (Callers on
	// the parallel merge path regularize first, making these no-ops.)
	if d.lc.dirty() {
		d.Regularize()
	}
	if o.lc.dirty() {
		o.Regularize()
	}
	d.sp.merge(o.sp)
	r := d.radix
	var carryIn int64
	for i := range d.dig {
		p := d.dig[i] + o.dig[i] // Pᵢ ∈ [−2α, 2β]
		var carryOut int64
		switch {
		case p >= r-1:
			carryOut = 1
		case p <= -r+1:
			carryOut = -1
		}
		w := p - carryOut*r // Wᵢ ∈ [−(α−1), β−1]
		d.dig[i] = w + carryIn
		carryIn = carryOut
	}
	if carryIn != 0 {
		panic("accum: carry out of top superaccumulator component")
	}
	d.nAdd = 0
}

// Merge adds o into d without requiring either side to be regularized,
// regularizing first if the combined lazy-add budget would overflow.
func (d *Dense) Merge(o *Dense) {
	if d.w != o.w {
		panic("accum: width mismatch in Merge")
	}
	d.sp.merge(o.sp)
	if d.nAdd+o.nAdd+1 > d.maxAdd {
		d.Regularize() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	if d.lc.n+o.lc.n > laneMaxAdds {
		d.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	d.lc.merge(&o.lc)
	for i, v := range o.dig {
		d.dig[i] += v
	}
	d.nAdd += o.nAdd + 1
}

// IsRegularized reports whether every digit lies in the (α,β) range
// [−(R−1), R−1]. It is the Lemma 1 invariant checked by the property
// tests. Pending lane-cache contributions mean the digit string is not
// the complete value, so a dirty cache reads as not regularized.
func (d *Dense) IsRegularized() bool {
	if d.lc.dirty() {
		return false
	}
	for _, v := range d.dig {
		if v <= -d.radix || v >= d.radix {
			return false
		}
	}
	return true
}

// IsZero reports whether the accumulated exact sum is zero (and no
// non-finite summand was seen).
func (d *Dense) IsZero() bool {
	if d.sp.any() {
		return false
	}
	d.flushLanes()
	for _, v := range d.dig {
		if v != 0 {
			return false
		}
	}
	return true
}

// Round returns the correctly rounded (round-to-nearest-even) float64 value
// of the exact accumulated sum, implementing steps 6–7 of the paper's PRAM
// algorithm. The accumulator is left regularized but its value is unchanged.
func (d *Dense) Round() float64 {
	if v, ok := d.sp.resolved(); ok {
		return v
	}
	d.Regularize()
	return roundDigits(d.dig, d.minIdx, d.w)
}

// Clone returns an independent copy of d.
func (d *Dense) Clone() *Dense {
	c := *d
	c.dig = make([]int64, len(d.dig))
	copy(c.dig, d.dig)
	return &c
}

// ToSparse converts d to the sparse (active components) representation.
// The accumulator is regularized as a side effect.
func (d *Dense) ToSparse() *Sparse {
	d.Regularize()
	s := &Sparse{w: d.w, sp: d.sp}
	for i, v := range d.dig {
		if v != 0 {
			s.idx = append(s.idx, int32(d.minIdx+i))
			s.dig = append(s.dig, v)
		}
	}
	return s
}

// EncodedSize returns the bytes a dense binary encoding would occupy; used
// by the MapReduce engine to account shuffle volume.
func (d *Dense) EncodedSize() int { return 8 * len(d.dig) }

// Digits returns the digit string and the index of its first element, for
// inspection by tests and the PRAM simulator, draining any pending lane
// contributions first. The slice aliases d's state.
func (d *Dense) Digits() ([]int64, int) {
	d.flushLanes()
	return d.dig, d.minIdx
}

// String renders the nonzero digits for debugging.
func (d *Dense) String() string {
	d.flushLanes()
	out := "Dense{"
	first := true
	for i := len(d.dig) - 1; i >= 0; i-- {
		if d.dig[i] != 0 {
			if !first {
				out += " "
			}
			out += fmt.Sprintf("%d:%d", d.minIdx+i, d.dig[i])
			first = false
		}
	}
	return out + "}"
}
