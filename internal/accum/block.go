package accum

import (
	"math"

	"parsum/internal/fpnum"
)

// Block-structured bulk accumulation. The scalar Add path pays a full
// per-float toll — a branchy classification, a Decompose call, a floor
// division to find the digit index, and a data-dependent carry loop with a
// bounds check per digit. The paper's Lemma 1 lazy-carry design exists
// precisely so the per-addition work can collapse to a few straight-line
// integer operations; this file implements that collapse for bulk inserts:
//
//  1. A whole block of blockLen floats is classified in one branch-free
//     prescan over the raw IEEE bits: non-finite summands divert the block
//     to the scalar out-of-line path (they are rare and carry out-of-band
//     state), zeros are detected so an all-zero block costs nothing, and
//     the biased-exponent range of the nonzero elements is computed for
//     the exponent-window fast path.
//  2. Decomposition is inlined and branch-free: the implicit bit and the
//     subnormal exponent pinning are arithmetic on the biased exponent
//     field, and the floorDiv of the scalar path becomes an arithmetic
//     shift (digit width 32 = 2^5, the canonical width every engine runs).
//  3. A 53-bit significand shifted by at most W−1 spans at most
//     ⌈(52+W)/W⌉ = 3 digits at W = 32, so the digit-carry loop becomes a
//     fixed three-element scatter with a single bounds-check hint per
//     float, signed through a ±1 multiplier instead of duplicated
//     add/subtract loops.
//  4. When a block's nonzero exponents fall within laneSpread of each
//     other, the significands accumulate into three int64 lanes held in
//     registers and are flushed into the superaccumulator once per block —
//     regularization bookkeeping is amortized per block, not per float.
//
// Exactness is untouched: every operation below is integer arithmetic on
// the same digit decomposition the scalar path produces, so the block and
// scalar paths represent bit-identical exact sums (FuzzBlockVsScalar and
// the block differential tests pin this, specials and denormals included).

const (
	// blockWidth is the digit width the block paths specialize for: 2^5,
	// so digit indexing is a shift, and wide enough that a shifted
	// significand spans exactly three digits. It is accum.DefaultWidth —
	// the width every registered engine runs at; other widths take the
	// scalar path.
	blockWidth = 32
	// blockLen is the number of floats per block. Large enough to amortize
	// the prescan and budget check, small enough that a block's int64
	// lanes cannot overflow (each element contributes < 2^32 per lane, so
	// any blockLen < 2^31 is safe) and the block stays cache-resident.
	blockLen = 256
	// laneSpread is the maximum biased-exponent spread (≈ log2 of the
	// dynamic range) a block may have for the exponent-window fast path:
	// the anchor digit is exponent-aligned downward by up to 31 bits, and
	// 53 + 31 + laneSpread must fit the 96 bits three 32-bit lanes hold.
	laneSpread = 12

	expField = 0x7FF                       // biased-exponent field mask
	fracBits = 1<<52 - 1                   // stored-significand field mask
	expBias  = fpnum.Bias + fpnum.MantBits // e = biased − expBias for normals
)

// scalarAdder is the per-element Add/Sub surface every representation
// already has; the block dispatchers divert special-containing blocks
// through it, so the scalar path stays the single oracle for out-of-band
// state.
type scalarAdder interface {
	Add(x float64)
	Sub(x float64)
}

// scalarBlock applies a block through the scalar Add/Sub oracle path.
func scalarBlock(a scalarAdder, blk []float64, dir int64) {
	if dir < 0 {
		for _, x := range blk {
			a.Sub(x)
		}
		return
	}
	for _, x := range blk {
		a.Add(x)
	}
}

// fullRange32 is the seam the shared block dispatcher drives: a
// full-range accumulator at the canonical 32-bit digit spacing (Dense at
// blockWidth, Small). The methods are one-line adapters, called once per
// block, so the interface costs nothing measurable on the hot path.
type fullRange32 interface {
	scalarAdder
	// digits32 exposes the digit string and the index of its first digit.
	digits32() (dig []int64, minIdx int)
	// lazyBudget exposes the lazy-add counter and its bound.
	lazyBudget() (nAdd *int, maxAdd int)
	// normalize restores the digit invariant (Regularize / Propagate).
	normalize()
	// flushInt64 accumulates the exact value v·2^e, charging the budget.
	flushInt64(v int64, e int)
}

// addBlocks32 is the bulk dispatcher behind AddSlice (dir = +1) and
// SubSlice (dir = −1) for the full-range representations: it walks xs in
// blocks of blockLen, prescans each block once, and routes it to the
// cheapest exact path — skip (all zeros), int64 lanes (narrow exponent
// window, flushed once per block), the unrolled scatter (general finite
// block, budget charged once for the whole block), or the scalar
// out-of-line path (a non-finite summand is present).
func addBlocks32(a fullRange32, xs []float64, dir int64) {
	for len(xs) > 0 {
		n := min(len(xs), blockLen)
		blk := xs[:n]
		xs = xs[n:]
		sc := prescanBlock(blk)
		switch {
		case sc.special:
			// Non-finite summands are rare and carry out-of-band state;
			// divert the whole block to the scalar oracle path.
			scalarBlock(a, blk, dir)
		case sc.allZero:
			// Zeros contribute nothing and charge nothing.
		case sc.bmax-sc.bmin <= laneSpread:
			eb := ((sc.bmin - expBias) >> 5) << 5
			l0, l1, l2 := lanes32(blk, eb, dir)
			a.flushInt64(l0, eb)
			a.flushInt64(l1, eb+32)
			a.flushInt64(l2, eb+64)
		default:
			nAdd, maxAdd := a.lazyBudget()
			if *nAdd+n > maxAdd {
				a.normalize()
			}
			*nAdd += n
			dig, minIdx := a.digits32()
			scatter32(dig, minIdx, blk, dir)
		}
	}
}

// blockScan is the result of one branch-free prescan over a block.
type blockScan struct {
	special bool // at least one ±Inf or NaN present
	allZero bool // every element is ±0
	bmin    int  // min effective biased exponent over nonzero elements
	bmax    int  // max effective biased exponent over nonzero elements
}

// prescanBlock classifies blk in one pass over the raw float bits:
// specials are detected by the saturated exponent field, zeros by the
// sign-cleared bits — both as branch-free mask arithmetic — and the
// min/max fold excludes zeros (a zero contributes nothing, so it must not
// drag the exponent window down). The min/max updates are the loop's only
// data-dependent branches; they are deliberately branches rather than
// mask arithmetic because they fire at most a handful of times per block
// (predicted nearly free), whereas a masked min/max would put its
// dependency chain on every element. Effective biased exponents are
// clamped to ≥ 1, matching the subnormal exponent pinning of Decompose.
func prescanBlock(blk []float64) blockScan {
	var orSpec, orNZ uint64
	minB, maxB := expField, 0
	for _, x := range blk {
		b := math.Float64bits(x)
		be := int(b>>52) & expField
		orSpec |= uint64(be+1) >> 11 // 1 iff be == 0x7FF
		u := b << 1                  // sign cleared: 0 iff x is ±0
		nz := (u | -u) >> 63         // 1 iff x != ±0
		orNZ |= nz
		beMin := be | int(nz-1)&expField // zeros read as 0x7FF for the min
		if beMin < minB {
			minB = beMin
		}
		if be > maxB {
			maxB = be
		}
	}
	return blockScan{
		special: orSpec != 0,
		allZero: orNZ == 0,
		bmin:    max(minB, 1),
		bmax:    max(maxB, 1),
	}
}

// scatter32 adds (dir = +1) or deletes (dir = −1) every element of a
// special-free block into the full-range width-32 digit string dig whose
// first element has digit index minIdx. A full-range accumulator covers
// every digit a finite double can touch (a zero's index −34 is minIdx
// itself), so the window form's clamp never fires.
func scatter32(dig []int64, minIdx int, blk []float64, dir int64) {
	scatterWin32(dig, minIdx, minIdx, blk, dir)
}

// scatterWin32 adds (dir = +1) or deletes (dir = −1) every element of a
// special-free block into the digit string win, whose first element has
// digit index base and which covers digit indices [kmin, kmax+2] for the
// block's exponent range (the caller has grown it). Per float it is
// straight-line: branch-free decompose (implicit bit and subnormal
// exponent pinning as arithmetic on the exponent field), shift-based
// digit index, and a fixed three-digit scatter behind a single
// bounds-check hint, signed through a ±1 multiplier. Zeros decompose to a
// zero significand and scatter nothing; their digit index −34 may fall
// below a spread-proportional window, so the (no-op) scatter is clamped
// up to kmin — a compare that never fires for nonzero elements.
func scatterWin32(win []int64, base, kmin int, blk []float64, dir int64) {
	for _, x := range blk {
		b := math.Float64bits(x)
		be := int(b>>52) & expField
		nz := uint64(be+expField) >> 11 // 1 for normals, 0 for subnormals/zeros
		m := b&fracBits | nz<<52
		e := be + int(1-nz) - expBias
		k := e >> 5
		if k < kmin {
			k = kmin // only zeros: m == 0, any covered digit absorbs nothing
		}
		off := uint(e) & 31
		lo := m << off
		hi := m >> (64 - off) // off == 0 shifts by 64: defined, yields 0
		s := dir * (1 - 2*int64(b>>63))
		t := win[k-base:]
		_ = t[2]
		t[0] += s * int64(lo&0xFFFFFFFF)
		t[1] += s * int64(lo>>32)
		t[2] += s * int64(hi)
	}
}

// lanes32 accumulates a special-free block whose nonzero biased exponents
// all lie within laneSpread of eb's block (eb is the digit-aligned anchor
// exponent, eb = 32⌊emin/32⌋) into three signed 32-bit-stride lanes:
// lane j holds the exact sum of bits [32j, 32j+32) of every m·2^(e−eb).
// Shifts stay ≤ 31 + laneSpread = 43, so 53-bit significands fit the
// 96 lane bits; |lane| grows by < 2^32 per element, so a block of
// blockLen < 2^31 elements cannot overflow int64. Zeros have m == 0 and
// contribute nothing regardless of their wrapped shift count.
func lanes32(blk []float64, eb int, dir int64) (l0, l1, l2 int64) {
	for _, x := range blk {
		b := math.Float64bits(x)
		be := int(b>>52) & expField
		nz := uint64(be+expField) >> 11
		m := b&fracBits | nz<<52
		e := be + int(1-nz) - expBias
		off := uint(e - eb)
		lo := m << off
		hi := m >> (64 - off)
		s := dir * (1 - 2*int64(b>>63))
		l0 += s * int64(lo&0xFFFFFFFF)
		l1 += s * int64(lo>>32)
		l2 += s * int64(hi)
	}
	return l0, l1, l2
}
