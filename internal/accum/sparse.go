package accum

import (
	"fmt"

	"parsum/internal/fpnum"
)

// Sparse is the paper's sparse superaccumulator: the vector of active
// components (yᵢⱼ, …, yᵢ₀) of an (α,β)-regularized superaccumulator, stored
// as parallel arrays of ascending digit indices and signed mantissas. An
// index is active once it has held a component (merging preserves activity
// even when a component becomes zero, per the paper's definition).
//
// All digits of a well-formed Sparse lie in [−(R−1), R−1], so MergeSparse
// can use the Lemma 1 carry-free addition.
type Sparse struct {
	w   uint
	idx []int32
	dig []int64
	sp  special
}

// NewSparse returns an empty sparse superaccumulator of width w
// (0 means DefaultWidth).
func NewSparse(w uint) *Sparse {
	return &Sparse{w: widthOrDefault(w)}
}

// FromFloat64 returns the sparse superaccumulator equivalent to the single
// float64 x — the paper's step 2 conversion, splitting x into O(1)
// components whose exponents are multiples of W (0 means DefaultWidth).
func FromFloat64(x float64, w uint) *Sparse {
	w = widthOrDefault(w)
	s := NewSparse(w)
	c := fpnum.Classify(x)
	if c == fpnum.ClassZero {
		return s
	}
	if c != fpnum.ClassFinite {
		s.sp.note(c)
		return s
	}
	neg, m, e := fpnum.Decompose(x)
	k := floorDiv(e, int(w))
	off := uint(e - k*int(w))
	lo := m << off
	hi := uint64(0)
	if off != 0 {
		hi = m >> (64 - off)
	}
	mask := uint64(1)<<w - 1
	for lo != 0 || hi != 0 {
		d := int64(lo & mask)
		if neg {
			d = -d
		}
		if d != 0 {
			s.idx = append(s.idx, int32(k))
			s.dig = append(s.dig, d)
		}
		lo = lo>>w | hi<<(64-w)
		hi >>= w
		k++
	}
	return s
}

// Width returns the digit width W.
func (s *Sparse) Width() uint { return s.w }

// Len returns the number of active components — the paper's σ measure.
func (s *Sparse) Len() int { return len(s.idx) }

// Components returns the active indices and digits (aliasing s's storage).
func (s *Sparse) Components() ([]int32, []int64) { return s.idx, s.dig }

// IsRegularized reports whether every digit lies in [−(R−1), R−1].
func (s *Sparse) IsRegularized() bool {
	r := int64(1) << s.w
	for _, v := range s.dig {
		if v <= -r || v >= r {
			return false
		}
	}
	return true
}

// MergeSparse returns the carry-free sum of two sparse superaccumulators,
// the core parallel primitive of the paper. For every merged index i it
// forms Pᵢ = Yᵢ + Zᵢ, reduces with a signed carry Cᵢ₊₁ ∈ {−1, 0, +1} chosen
// per Lemma 1 so Wᵢ = Pᵢ − Cᵢ₊₁·R ∈ [−(α−1), β−1], and emits
// Sᵢ = Wᵢ + Cᵢ ∈ [−α, β]. A carry into an inactive index activates it;
// carries never cascade, so a single pass suffices. Inputs are unmodified.
func MergeSparse(a, b *Sparse) *Sparse {
	if a.w != b.w {
		panic("accum: width mismatch in MergeSparse")
	}
	out := &Sparse{
		w:   a.w,
		idx: make([]int32, 0, len(a.idx)+len(b.idx)+1),
		dig: make([]int64, 0, len(a.idx)+len(b.idx)+1),
		sp:  a.sp,
	}
	out.sp.merge(b.sp)
	r := int64(1) << a.w
	var carry int64
	var carryAt int32
	i, j := 0, 0
	for i < len(a.idx) || j < len(b.idx) {
		var ix int32
		var p int64
		switch {
		case j >= len(b.idx) || (i < len(a.idx) && a.idx[i] < b.idx[j]):
			ix, p = a.idx[i], a.dig[i]
			i++
		case i >= len(a.idx) || b.idx[j] < a.idx[i]:
			ix, p = b.idx[j], b.dig[j]
			j++
		default: // equal indices
			ix, p = a.idx[i], a.dig[i]+b.dig[j]
			i++
			j++
		}
		if carry != 0 && carryAt < ix {
			// Carry into an index inactive in both inputs: Pᵢ = 0 there,
			// so the component is just the carry itself.
			out.idx = append(out.idx, carryAt)
			out.dig = append(out.dig, carry)
			carry = 0
		}
		var carryIn int64
		if carry != 0 && carryAt == ix {
			carryIn = carry
			carry = 0
		}
		var carryOut int64
		switch {
		case p >= r-1:
			carryOut = 1
		case p <= -r+1:
			carryOut = -1
		}
		out.idx = append(out.idx, ix)
		out.dig = append(out.dig, p-carryOut*r+carryIn)
		if carryOut != 0 {
			carry = carryOut
			carryAt = ix + 1
		}
	}
	if carry != 0 {
		out.idx = append(out.idx, carryAt)
		out.dig = append(out.dig, carry)
	}
	return out
}

// Add accumulates a single float64 by merging its O(1)-component
// superaccumulator. It costs O(Len) per call; bulk construction should use
// Window (streaming) or Dense.ToSparse instead.
func (s *Sparse) Add(x float64) {
	m := MergeSparse(s, FromFloat64(x, s.w))
	s.idx, s.dig, s.sp = m.idx, m.dig, m.sp
}

// Sub deletes x from the accumulated sum exactly — the group inverse of
// Add: it merges the sign-flipped components of x, so a+x−x is bit-for-bit
// a. Non-finite values are deleted from the out-of-band multiset (see
// Dense.Sub). It costs O(Len) per call, like Add.
func (s *Sparse) Sub(x float64) {
	c := fpnum.Classify(x)
	if c != fpnum.ClassFinite {
		s.sp.unnote(c)
		return
	}
	m := MergeSparse(s, FromFloat64(-x, s.w)) // x is finite, so −x decomposes to the sign-flipped components
	s.idx, s.dig = m.idx, m.dig
}

// Neg negates the represented value in place: every component flips sign
// (staying in the symmetric (α,β) range) and the infinity multiplicities
// swap.
func (s *Sparse) Neg() {
	for k := range s.dig {
		s.dig[k] = -s.dig[k]
	}
	s.sp.negate()
}

// AddNeg subtracts o's exact contents from s — the group inverse of
// MergeSparse, leaving o unmodified. Special multiplicities are subtracted,
// not sign-swapped: AddNeg deletes o's summands rather than merging their
// negations. Widths must match.
func (s *Sparse) AddNeg(o *Sparse) {
	t := &Sparse{w: o.w, idx: o.idx, dig: make([]int64, len(o.dig))}
	for k, v := range o.dig {
		t.dig[k] = -v
	}
	m := MergeSparse(s, t)
	s.idx, s.dig = m.idx, m.dig
	s.sp.unmerge(o.sp)
}

// Compact removes zero components (deactivating them). The represented
// value is unchanged; activity bookkeeping is reset. Used when shrinking
// shuffle payloads matters more than the active-index semantics.
func (s *Sparse) Compact() {
	outI, outD := s.idx[:0], s.dig[:0]
	for k, v := range s.dig {
		if v != 0 {
			outI = append(outI, s.idx[k])
			outD = append(outD, v)
		}
	}
	s.idx, s.dig = outI, outD
}

// Round returns the correctly rounded float64 value of the exact
// accumulated sum (round-to-nearest-even; in particular a faithful
// rounding in the paper's sense).
func (s *Sparse) Round() float64 {
	if v, ok := s.sp.resolved(); ok {
		return v
	}
	if len(s.idx) == 0 {
		return 0
	}
	lo, hi := int(s.idx[0]), int(s.idx[len(s.idx)-1])
	win := make([]int64, hi-lo+2)
	for k, ix := range s.idx {
		win[int(ix)-lo] += s.dig[k]
	}
	return roundDigits(win, lo, s.w)
}

// ToDense converts s to a full-range dense accumulator. Panics if any
// component index lies outside the double-precision digit range (which
// cannot happen for accumulators built from float64 summands).
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.w)
	d.sp = s.sp
	for k, ix := range s.idx {
		d.dig[int(ix)-d.minIdx] += s.dig[k]
	}
	d.nAdd = 1
	return d
}

// Clone returns an independent copy of s.
func (s *Sparse) Clone() *Sparse {
	c := &Sparse{w: s.w, sp: s.sp}
	c.idx = append([]int32(nil), s.idx...)
	c.dig = append([]int64(nil), s.dig...)
	return c
}

// EncodedSize returns the number of bytes a component-wise binary encoding
// of s would occupy (4-byte index + 8-byte digit per component); the
// MapReduce engine uses it to account shuffle volume.
func (s *Sparse) EncodedSize() int { return 12 * len(s.idx) }

// String renders the components most-significant first for debugging.
func (s *Sparse) String() string {
	out := "Sparse{"
	for k := len(s.idx) - 1; k >= 0; k-- {
		if k < len(s.idx)-1 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", s.idx[k], s.dig[k])
	}
	return out + "}"
}
