package accum

import (
	"math"
	"math/bits"

	"parsum/internal/fpnum"
)

// Carry-save lane cache: the L1-resident middle tier of the digit
// hierarchy (see DESIGN.md §3e). The canonical dense digit array spans 70
// int64 digits (560 B) but a bulk insert touches it at data-dependent
// offsets, so wide-exponent streams turn accumulation into scattered
// read-modify-writes plus per-block classification. The lane cache
// replaces that with a fixed, full-range mirror sized to stay hot in L1:
// one 128-bit two's-complement accumulator per 32-bit exponent window,
//
//	laneWindows = 65 windows × 16 B = 1040 B (padded to lanePad = 128),
//
// covering every window index k = ⌊e/32⌋ ∈ [−34, 30] a finite double (or
// the saturated exponent field of a special) can decompose to. Every
// element of a bulk slice — regardless of exponent spread — lands in
// exactly one window with three straight-line updates:
//
//	lo += m<<off (with carry), hi += m>>(64−off) + carry
//
// negated through a mask when the element (or the slice direction) is
// negative. There is no per-block prescan, no zero test (a zero decomposes
// to m = 0 and adds nothing), no min/max exponent fold, and no branch: the
// single data-dependent quantity is the window index, and the whole window
// array is always resident.
//
// Specials are handled optimistically: ±Inf and NaN have the saturated
// biased exponent 0x7FF, which the branch-free decompose maps to window
// index 64 — in bounds — so the hot loop just ORs a saturation flag. If
// the flag is set after a block, a repair pass subtracts the bogus lane
// contribution of each non-finite element and routes it through the scalar
// Add/Sub path, whose out-of-band special accounting is the oracle.
//
// Exactness: a finite x = ±m·2^e with window k = ⌊e/32⌋ and off = e − 32k
// contributes exactly ±(m<<off) · 2^(32k) — at most 53+31 = 84 bits, so it
// fits a 128-bit window accumulator with 2^43 headroom. The cache as a
// whole represents Σ_k window_k · 2^(32k) in two's complement; draining a
// window into the canonical digits (flushLanes on each representation)
// splits it into three exact pieces — lo's two 32-bit halves and the
// signed hi — so a flush is value-preserving by construction, and the
// post-Regularize digit string is bit-identical to the scalar path's.
const (
	// blockWidth is the digit width the lane cache specializes for: 2^5,
	// so window indexing is a shift. It is accum.DefaultWidth — the width
	// every registered engine runs at; other widths take the scalar path.
	blockWidth = 32
	// blockLen is the granularity of special repair and budget checks in
	// laneSlice. Large enough to amortize the per-block bookkeeping to
	// noise, small enough that a special-containing block's repair rescan
	// stays cheap and cache-resident.
	blockLen = 256

	// laneWindows covers window indices ⌊−1074/32⌋ = −34 through
	// ⌊972/32⌋ = 30 (972 is where the saturated exponent field of a
	// special decomposes to; finite doubles stop at ⌊971/32⌋ = 30).
	laneWindows = 65
	// lanePad is the allocated window count: the next power of two above
	// laneWindows, so the hot loop's lane[t>>32&(lanePad-1)] indexing is
	// provably in bounds and compiles without a per-element bounds check.
	// Entries laneWindows..lanePad−1 are never written (every table entry
	// carries an index ≤ 64) and cost 1 KiB of always-zero padding.
	lanePad = 128
	// laneKBias maps window index k to array index k + laneKBias.
	laneKBias = 34

	expField = 0x7FF                       // biased-exponent field mask
	fracBits = 1<<52 - 1                   // stored-significand field mask
	expBias  = fpnum.Bias + fpnum.MantBits // e = biased − expBias for normals
)

// laneTab precomputes, per biased exponent field be, everything the hot
// loop needs that depends only on be:
//
//	bits  0-31  2^off — the window-offset multiplier (off = e mod 32 ≤ 31)
//	bits 32-38  k + laneKBias — the window array index, in [0, 64]
//	bit  39     nz — 0 for the denormal exponent, 1 otherwise
//	bit  40     spec — 1 iff be is saturated (±Inf or NaN)
//
// The multiplier turns the digit-alignment shifts into one widening
// multiply: m·2^off < 2^84, so bits.Mul64(m, 2^off) yields exactly the
// (hi, lo) = (m >> (64−off), m << off) pair the window update needs,
// without the variable shifts (three of them, each with a wrap guard on
// the default amd64 target) the shift formulation costs. One 16 KiB table
// replaces the whole per-element exponent ALU chain with a single load.
var laneTab = func() *[2048]uint64 {
	var t [2048]uint64
	for be := 0; be < 2048; be++ {
		nz := 1
		if be == 0 {
			nz = 0
		}
		e := be + (1 - nz) - expBias
		k := (e >> 5) + laneKBias
		off := uint(e) & 31
		v := uint64(1)<<off | uint64(k)<<32 | uint64(nz)<<39
		if be == expField {
			v |= 1 << 40
		}
		t[be] = v
	}
	return &t
}()

// laneMaxAdds bounds how many elements a lane cache may absorb between
// flushes. Each element grows some window's |hi| by at most 2^20 + 1
// (m>>(64−off) ≤ 2^(84−64), plus the lo carry), so 2^41 adds keep
// |hi| < 2^61 + 2^41 — two bits of headroom below int64 overflow. It is a
// variable, not a constant, only so the flush-boundary tests can force
// budget exhaustion mid-slice without 2^41-element inputs.
var laneMaxAdds = int64(1) << 41

// lane128 is one window's two's-complement 128-bit accumulator.
type lane128 struct {
	lo uint64
	hi int64
}

// laneCache is the lane array plus its add budget. The zero value is the
// empty cache; it is embedded by value in Dense, Small, and Window so a
// struct copy (Clone, decode-and-swap) copies the pending lanes with it.
type laneCache struct {
	lane [lanePad]lane128
	n    int64 // elements absorbed since the last flush; ≤ laneMaxAdds
}

// dirty reports whether the cache may hold pending contributions (n is
// charged per element, so n == 0 means every lane is zero).
func (lc *laneCache) dirty() bool { return lc.n != 0 }

func (lc *laneCache) reset() { *lc = laneCache{} }

// accum folds every element of blk into the lane array: add when
// dirNeg == 0, delete (the group inverse) when dirNeg == 1. It returns
// nonzero iff blk contains a non-finite element, whose bogus lane
// contribution the caller must undo via repair. The caller charges lc.n.
func (lc *laneCache) accum(blk []float64, dirNeg uint64) uint64 {
	var orAcc uint64
	tab := laneTab
	for _, x := range blk {
		b := math.Float64bits(x)
		t := tab[int(b>>52)&expField]
		orAcc |= t // bit 40 records any saturated exponent
		m := b&fracBits | (t&(1<<39))<<13
		hi, lo := bits.Mul64(m, t&0xFFFFFFFF) // exactly m<<off, m>>(64-off)
		k := (t >> 32) & (lanePad - 1)
		sgn := (b >> 63) ^ dirNeg
		smask := -sgn
		p := &lc.lane[k]
		var c uint64
		p.lo, c = bits.Add64(p.lo, lo^smask, sgn)
		p.hi += int64(hi^smask) + int64(c)
	}
	return orAcc >> 40 & 1
}

// repair rescans blk after accum reported a saturated exponent: each
// non-finite element's lane contribution is subtracted back out (the same
// decompose with the direction flipped) and the element is replayed
// through the scalar Add/Sub path, which tracks it out of band.
func (lc *laneCache) repair(blk []float64, dirNeg uint64, sc scalarAdder) {
	for _, x := range blk {
		b := math.Float64bits(x)
		be := int(b>>52) & expField
		if be != expField {
			continue
		}
		m := b&fracBits | 1<<52
		e := be - expBias
		k := (e >> 5) + laneKBias
		off := uint(e) & 31
		lo := m << off
		hi := m >> (64 - off)
		sgn := (b >> 63) ^ dirNeg ^ 1 // flipped: undo the accum update
		smask := -sgn
		p := &lc.lane[k]
		var c uint64
		p.lo, c = bits.Add64(p.lo, lo^smask, sgn)
		p.hi += int64(hi^smask) + int64(c)
		if dirNeg == 0 {
			sc.Add(x)
		} else {
			sc.Sub(x)
		}
	}
}

// laneTab32 is laneTab for the binary32 exponent field (same layout, nz at
// bit 39 scaled for the 23-bit fraction): e = be − 150 ∈ [−149, 105], so
// every f32 window index lands in [29, 37] — nine windows, 144 B of hot
// state — and m·2^off ≤ 2^55 always fits the low word alone.
var laneTab32 = func() *[256]uint64 {
	var t [256]uint64
	for be := 0; be < 256; be++ {
		nz := 1
		if be == 0 {
			nz = 0
		}
		e := be + (1 - nz) - f32ExpBias
		k := (e >> 5) + laneKBias
		off := uint(e) & 31
		v := uint64(1)<<off | uint64(k)<<32 | uint64(nz)<<39
		if be == 0xFF {
			v |= 1 << 40
		}
		t[be] = v
	}
	return &t
}()

// accum32 is the float32 narrow-lane pass: the same window geometry with a
// 24-bit significand, single-word updates (the shifted significand never
// reaches the high word, so hi moves only through the sign mask and
// carry), and a 2 KiB exponent table.
func (lc *laneCache) accum32(blk []float32, dirNeg uint64) uint32 {
	var orAcc uint64
	tab := laneTab32
	for _, x := range blk {
		b := math.Float32bits(x)
		t := tab[b>>23&0xFF]
		orAcc |= t
		m := uint64(b&0x7FFFFF) | (t&(1<<39))>>16
		v := m * (t & 0xFFFFFFFF) // exactly m<<off: m·2^off ≤ 2^55
		k := (t >> 32) & (lanePad - 1)
		sgn := uint64(b>>31) ^ dirNeg
		smask := -sgn
		p := &lc.lane[k]
		var c uint64
		p.lo, c = bits.Add64(p.lo, v^smask, sgn)
		p.hi += int64(smask) + int64(c)
	}
	return uint32(orAcc >> 40 & 1)
}

// repair32 is repair for the float32 pass; widening a non-finite float32
// preserves its class, so the scalar float64 path remains the oracle.
func (lc *laneCache) repair32(blk []float32, dirNeg uint64, sc scalarAdder) {
	for _, x := range blk {
		b := math.Float32bits(x)
		be := int(b>>23) & 0xFF
		if be != 0xFF {
			continue
		}
		m := uint64(b&0x7FFFFF) | 1<<23
		e := be - f32ExpBias
		k := (e >> 5) + laneKBias
		off := uint(e) & 31
		v := m << off
		sgn := uint64(b>>31) ^ dirNeg ^ 1
		smask := -sgn
		p := &lc.lane[k]
		var c uint64
		p.lo, c = bits.Add64(p.lo, v^smask, sgn)
		p.hi += int64(smask) + int64(c)
		if dirNeg == 0 {
			sc.Add(float64(x))
		} else {
			sc.Sub(float64(x))
		}
	}
}

// f32ExpBias: e = biased − 127 − 23 for normal float32s.
const f32ExpBias = 150

// merge folds o's pending lanes into lc (128-bit adds per window). The
// caller maintains the budget invariant (flushing first when
// lc.n + o.n > laneMaxAdds) and charges lc.n.
func (lc *laneCache) merge(o *laneCache) {
	if o.n == 0 {
		return
	}
	for i := range lc.lane {
		p, q := &lc.lane[i], &o.lane[i]
		var c uint64
		p.lo, c = bits.Add64(p.lo, q.lo, 0)
		p.hi += q.hi + int64(c)
	}
	lc.n += o.n
}

// unmerge subtracts o's pending lanes from lc — the group inverse of
// merge, used by AddNeg. Magnitudes still add, so the caller charges the
// budget exactly as for merge.
func (lc *laneCache) unmerge(o *laneCache) {
	if o.n == 0 {
		return
	}
	for i := range lc.lane {
		p, q := &lc.lane[i], &o.lane[i]
		var bw uint64
		p.lo, bw = bits.Sub64(p.lo, q.lo, 0)
		p.hi -= q.hi + int64(bw)
	}
	lc.n += o.n
}

// negate maps every pending window through v ↦ −v in 128-bit two's
// complement.
func (lc *laneCache) negate() {
	if lc.n == 0 {
		return
	}
	for i := range lc.lane {
		p := &lc.lane[i]
		var bw uint64
		p.lo, bw = bits.Sub64(0, p.lo, 0)
		p.hi = -p.hi - int64(bw)
	}
}

// laneHost is the seam laneSlice drives: a full-range accumulator at the
// canonical 32-bit window spacing that owns a lane cache and can drain it
// into its digit representation.
type laneHost interface {
	scalarAdder
	lanes() *laneCache
	// flushLanes drains every dirty window into the canonical digits and
	// zeroes the cache; a no-op when the cache is clean.
	flushLanes()
}

// scalarAdder is the per-element Add/Sub surface every representation
// already has; the lane paths replay non-finite elements through it, so
// the scalar path stays the single oracle for out-of-band state.
type scalarAdder interface {
	Add(x float64)
	Sub(x float64)
}

// laneSlice is the bulk dispatcher behind AddSlice (dirNeg = 0) and
// SubSlice (dirNeg = 1) at the canonical width: accumulate blocks of up to
// blockLen elements into the lane cache, flushing only when the add budget
// would be exceeded. Block granularity exists solely to localize special
// repair and budget checks; the lanes themselves persist across blocks,
// slices, and calls until a flush point (Regularize/Propagate/regularize,
// and hence Round, Merge, ToSparse, Marshal).
func laneSlice(h laneHost, xs []float64, dirNeg uint64) {
	lc := h.lanes()
	for len(xs) > 0 {
		n := min(len(xs), blockLen)
		if r := laneMaxAdds - lc.n; int64(n) > r {
			if r <= 0 {
				h.flushLanes()
				continue
			}
			n = int(r)
		}
		blk := xs[:n]
		xs = xs[n:]
		lc.n += int64(n)
		if lc.accum(blk, dirNeg) != 0 {
			lc.repair(blk, dirNeg, h)
		}
	}
}

// laneSlice32 is laneSlice for float32 input.
func laneSlice32(h laneHost, xs []float32, dirNeg uint64) {
	lc := h.lanes()
	for len(xs) > 0 {
		n := min(len(xs), blockLen)
		if r := laneMaxAdds - lc.n; int64(n) > r {
			if r <= 0 {
				h.flushLanes()
				continue
			}
			n = int(r)
		}
		blk := xs[:n]
		xs = xs[n:]
		lc.n += int64(n)
		if lc.accum32(blk, dirNeg) != 0 {
			lc.repair32(blk, dirNeg, h)
		}
	}
}

// lanePieces splits one window's 128-bit value into its three exact drain
// pieces: lo's two 32-bit halves (non-negative) and the signed hi, with
// exponents e0, e0+32, e0+64 for window array index i (e0 = 32(i −
// laneKBias)). Shared by every representation's flushLanes.
func lanePieces(p lane128) (p0, p1 uint64, hiNeg bool, hiMag uint64) {
	p0 = p.lo & 0xFFFFFFFF
	p1 = p.lo >> 32
	hiNeg = p.hi < 0
	hiMag = uint64(p.hi)
	if hiNeg {
		hiMag = -hiMag
	}
	return
}
