package accum

import "parsum/internal/fpnum"

// Window is a streaming builder for sparse superaccumulators: a contiguous
// digit window covering only the active index range seen so far, grown on
// demand. It gives Dense-like O(1) amortized accumulation while keeping
// memory proportional to the data's exponent spread (the paper's σ(n)),
// which is what makes the MapReduce combiner cheap when δ is small.
type Window struct {
	w      uint
	base   int // digit index of win[0]; meaningful only when len(win) > 0
	win    []int64
	nAdd   int
	maxAdd int
	sp     special
	lc     laneCache
}

// NewWindow returns an empty window accumulator of width w
// (0 means DefaultWidth).
func NewWindow(w uint) *Window {
	w = widthOrDefault(w)
	return &Window{w: w, maxAdd: maxLazyAdds(w)}
}

// Width returns the digit width W.
func (a *Window) Width() uint { return a.w }

// Span returns the number of digits the active window currently covers,
// draining any pending lane contributions first so the answer reflects
// the full accumulated value.
func (a *Window) Span() int {
	a.flushLanes()
	return len(a.win)
}

// Reset empties the accumulator, retaining its storage.
func (a *Window) Reset() {
	a.win = a.win[:0]
	a.nAdd = 0
	a.sp = special{}
	a.lc.reset()
}

// Add accumulates x exactly, growing the window as needed.
func (a *Window) Add(x float64) {
	c := fpnum.Classify(x)
	if c == fpnum.ClassZero {
		return
	}
	if c != fpnum.ClassFinite {
		a.sp.note(c)
		return
	}
	if a.nAdd >= a.maxAdd {
		a.regularize()
	}
	a.nAdd++
	neg, m, e := fpnum.Decompose(x)
	a.addChunks(neg, m, e)
}

// addChunks splits the significand m·2^e into W-bit digit-aligned chunks
// and adds them (subtracts when neg) to the window, growing it as needed.
func (a *Window) addChunks(neg bool, m uint64, e int) {
	k := floorDiv(e, int(a.w))
	off := uint(e - k*int(a.w))
	lo := m << off
	hi := uint64(0)
	if off != 0 {
		hi = m >> (64 - off)
	}
	// The shifted significand spans at most ⌈84/W⌉+1 digits.
	nd := int(84/a.w) + 2
	a.ensure(k, k+nd-1)
	i := k - a.base
	mask := uint64(1)<<a.w - 1
	if neg {
		for lo != 0 || hi != 0 {
			a.win[i] -= int64(lo & mask)
			lo = lo>>a.w | hi<<(64-a.w)
			hi >>= a.w
			i++
		}
		return
	}
	for lo != 0 || hi != 0 {
		a.win[i] += int64(lo & mask)
		lo = lo>>a.w | hi<<(64-a.w)
		hi >>= a.w
		i++
	}
}

// AddSlice accumulates every element of xs exactly. At the canonical
// digit width it runs the carry-save lane pass of lanes.go, sharing the
// L1-resident lane cache machinery with Dense and Small; the active
// window grows to cover the drained digit range only at flush time, so a
// bulk insert never grows or classifies per element. The result is
// bit-identical to calling Add per element.
func (a *Window) AddSlice(xs []float64) {
	if a.w != blockWidth {
		for _, x := range xs {
			a.Add(x)
		}
		return
	}
	laneSlice(a, xs, 0)
}

// AddSlice32 accumulates every element of a float32 slice exactly via the
// narrow-lane float32 pass.
func (a *Window) AddSlice32(xs []float32) {
	if a.w != blockWidth {
		for _, x := range xs {
			a.Add(float64(x))
		}
		return
	}
	laneSlice32(a, xs, 0)
}

// SubSlice32 deletes every element of a float32 slice exactly — the group
// inverse of AddSlice32.
func (a *Window) SubSlice32(xs []float32) {
	if a.w != blockWidth {
		for _, x := range xs {
			a.Sub(float64(x))
		}
		return
	}
	laneSlice32(a, xs, 1)
}

// laneHost adapters.
func (a *Window) lanes() *laneCache { return &a.lc }

// flushLanes drains every pending lane-cache window into the active digit
// window (growing it as needed through addChunks) and zeroes the cache,
// paying at most one carry pass up front so the drain cannot recurse.
func (a *Window) flushLanes() {
	if a.lc.n == 0 {
		return
	}
	if a.nAdd+3*laneWindows > a.maxAdd {
		a.carryPass()
	}
	for i := range a.lc.lane {
		p := &a.lc.lane[i]
		if p.lo == 0 && p.hi == 0 {
			continue
		}
		e := (i - laneKBias) * blockWidth
		p0, p1, hiNeg, hiMag := lanePieces(*p)
		if p0 != 0 {
			a.nAdd++
			a.addChunks(false, p0, e)
		}
		if p1 != 0 {
			a.nAdd++
			a.addChunks(false, p1, e+blockWidth)
		}
		if hiMag != 0 {
			a.nAdd++
			a.addChunks(hiNeg, hiMag, e+64)
		}
		*p = lane128{}
	}
	a.lc.n = 0
}

// Sub deletes x from the accumulated sum exactly — the group inverse of
// Add: the digit updates are the sign-flipped chunks of x. Non-finite
// values are deleted from the out-of-band multiset (see Dense.Sub).
func (a *Window) Sub(x float64) {
	c := fpnum.Classify(x)
	if c == fpnum.ClassZero {
		return
	}
	if c != fpnum.ClassFinite {
		a.sp.unnote(c)
		return
	}
	if a.nAdd >= a.maxAdd {
		a.regularize()
	}
	a.nAdd++
	neg, m, e := fpnum.Decompose(x)
	a.addChunks(!neg, m, e)
}

// SubSlice deletes every element of xs exactly, through the same lane
// pass as AddSlice with the direction sign folded into the update mask.
func (a *Window) SubSlice(xs []float64) {
	if a.w != blockWidth {
		for _, x := range xs {
			a.Sub(x)
		}
		return
	}
	laneSlice(a, xs, 1)
}

// Neg negates the represented value in place: every window digit flips
// sign and the infinity multiplicities swap. The lazy-add budget is
// unchanged (the digit bound is symmetric).
func (a *Window) Neg() {
	for i := range a.win {
		a.win[i] = -a.win[i]
	}
	a.lc.negate()
	a.sp.negate()
}

// AddNeg subtracts o's exact contents from a — the group inverse of Merge,
// leaving o unmodified. Special multiplicities are subtracted, not
// sign-swapped (AddNeg deletes o's summands). Widths must match.
func (a *Window) AddNeg(o *Window) {
	if a.w != o.w {
		panic("accum: width mismatch in Window.AddNeg")
	}
	a.sp.unmerge(o.sp)
	if a.lc.n+o.lc.n > laneMaxAdds {
		a.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	a.lc.unmerge(&o.lc)
	if len(o.win) == 0 {
		return
	}
	if a.nAdd+o.nAdd+1 > a.maxAdd {
		a.regularize() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	a.ensure(o.base, o.base+len(o.win)-1)
	off := o.base - a.base
	for i, v := range o.win {
		a.win[off+i] -= v
	}
	a.nAdd += o.nAdd + 1
}

// ensure grows the window to cover digit indices [lo, hi], padding a little
// on each side to amortize regrowth.
func (a *Window) ensure(lo, hi int) {
	const pad = 4
	if len(a.win) == 0 {
		a.base = lo - pad
		a.win = make([]int64, hi-lo+1+2*pad)
		return
	}
	if lo >= a.base && hi < a.base+len(a.win) {
		return
	}
	nb := a.base
	if lo < nb {
		nb = lo - pad
	}
	top := a.base + len(a.win) - 1
	if hi > top {
		top = hi + pad
	}
	nw := make([]int64, top-nb+1)
	copy(nw[a.base-nb:], a.win)
	a.base, a.win = nb, nw
}

// regularize drains any pending lane contributions and runs the
// signed-carry pass over the window; a final carry extends the window by
// as many digits as it needs. Every resulting digit is in [0, R−1] except
// possibly a single trailing −1 when the represented value is negative
// (all within the (α,β) range).
func (a *Window) regularize() {
	a.flushLanes()
	a.carryPass()
}

// carryPass is regularize's carry step over the window digits alone.
func (a *Window) carryPass() {
	if len(a.win) == 0 {
		a.nAdd = 0
		return
	}
	mask := int64(1)<<a.w - 1
	var c int64
	for i := range a.win {
		v := a.win[i] + c
		a.win[i] = v & mask
		c = v >> a.w
	}
	for c != 0 {
		if c == -1 {
			// Arithmetic shift of a negative carry converges to −1, which
			// is the signed top digit of a negative value.
			a.win = append(a.win, -1)
			break
		}
		a.win = append(a.win, c&mask)
		c >>= a.w
	}
	// A negative total propagates the −1 carry through every padded zero
	// digit, leaving a run (R−1, R−1, …, −1) at the top. Collapse it back
	// to a single −1 digit (−R^t + Σ(R−1)R^j = −R^s), so the active range
	// never exceeds the content range by more than one digit.
	if top := len(a.win) - 1; top >= 0 && a.win[top] == -1 {
		s := top
		for s > 0 && a.win[s-1] == mask {
			s--
		}
		if s < top {
			a.win[s] = -1
			a.win = a.win[:s+1]
		}
	}
	a.nAdd = 0
}

// Merge adds o into a exactly, growing the window to cover o's active
// range. Like Dense.Merge it is a digit-wise addition that regularizes
// first only when the combined lazy-add budget would overflow; o is not
// modified. Widths must match.
func (a *Window) Merge(o *Window) {
	if a.w != o.w {
		panic("accum: width mismatch in Window.Merge")
	}
	a.sp.merge(o.sp)
	if a.lc.n+o.lc.n > laneMaxAdds {
		a.flushLanes() // o.lc.n ≤ laneMaxAdds by construction
	}
	a.lc.merge(&o.lc)
	if len(o.win) == 0 {
		return
	}
	if a.nAdd+o.nAdd+1 > a.maxAdd {
		a.regularize() // o.nAdd ≤ maxAdd by construction, so this suffices
	}
	a.ensure(o.base, o.base+len(o.win)-1)
	off := o.base - a.base
	for i, v := range o.win {
		a.win[off+i] += v
	}
	a.nAdd += o.nAdd + 1
}

// Clone returns an independent copy of a.
func (a *Window) Clone() *Window {
	c := *a
	c.win = append([]int64(nil), a.win...)
	return &c
}

// ToSparse converts the window to the canonical sparse representation,
// skipping zero digits. The window is regularized as a side effect.
func (a *Window) ToSparse() *Sparse {
	a.regularize()
	s := &Sparse{w: a.w, sp: a.sp}
	for i, v := range a.win {
		if v != 0 {
			s.idx = append(s.idx, int32(a.base+i))
			s.dig = append(s.dig, v)
		}
	}
	return s
}

// Round returns the correctly rounded float64 value of the exact sum.
func (a *Window) Round() float64 {
	if v, ok := a.sp.resolved(); ok {
		return v
	}
	a.flushLanes()
	if len(a.win) == 0 {
		return 0
	}
	return roundDigits(a.win, a.base, a.w)
}
