package accum

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// Differential tests for the bulk lane-cache paths (lanes.go): on every
// input class, AddSlice/SubSlice must leave each representation in a
// state bit-identical to the scalar Add/Sub oracle loop — compared on the
// canonical (regularized) digit string, the out-of-band special
// multiplicities, and the rounded bits.

// blockCases are the adversarial input classes the bulk paths must agree
// with the scalar oracle on, each built at several lengths so blocks split
// at every boundary shape (empty, sub-block, exact multiple, remainder).
func blockCases(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	lens := []int{0, 1, 3, 255, 256, 257, 1000}
	cases := map[string][]float64{}
	add := func(name string, n int, gen func() float64) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen()
		}
		cases[name] = xs
	}
	for _, n := range lens {
		// Wide exponent spread: scatter path.
		add(tname("wide", n), n, func() float64 {
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(1200)-600)
		})
		// Narrow spread: the exponent-window lane path.
		add(tname("narrow", n), n, func() float64 {
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(4))
		})
		// Zeros of both signs mixed into a narrow block.
		add(tname("zeros", n), n, func() float64 {
			switch rng.Intn(4) {
			case 0:
				return 0
			case 1:
				return math.Copysign(0, -1)
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(3))
		})
		// Denormals, alone and mixed with small normals.
		add(tname("denormal", n), n, func() float64 {
			v := math.Float64frombits(uint64(rng.Int63()) & (1<<52 - 1))
			if rng.Intn(2) == 0 {
				v = -v
			}
			if rng.Intn(3) == 0 {
				v = math.Ldexp(rng.Float64(), -1022)
			}
			return v
		})
		// Specials sprinkled into finite data: blocks divert out of line.
		add(tname("special", n), n, func() float64 {
			switch rng.Intn(8) {
			case 0:
				return math.Inf(1)
			case 1:
				return math.Inf(-1)
			case 2:
				return math.NaN()
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(600)-300)
		})
		// Raw random bit patterns: everything at once.
		add(tname("bits", n), n, func() float64 {
			return math.Float64frombits(rng.Uint64())
		})
		// Extremes: near-overflow magnitudes and the subnormal floor.
		add(tname("extreme", n), n, func() float64 {
			switch rng.Intn(4) {
			case 0:
				return math.MaxFloat64 * (rng.Float64()*2 - 1)
			case 1:
				return math.SmallestNonzeroFloat64 * float64(rng.Intn(5)-2)
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(2040)-1070)
		})
	}
	return cases
}

func tname(kind string, n int) string {
	return fmt.Sprintf("%s/%d", kind, n)
}

// splitSlices applies bulk adds of xs (in two arbitrary pieces, exercising
// block-boundary splits) followed by bulk deletes of the second piece's
// reverse — a mixed add/sub history.
func splitSlices(xs []float64) (a, b, sub []float64) {
	p := len(xs) / 3
	a, b = xs[:p], xs[p:]
	sub = make([]float64, 0, len(b)/2)
	for i := len(b) - 1; i >= 0; i -= 2 {
		sub = append(sub, b[i])
	}
	return a, b, sub
}

func TestBlockVsScalarDense(t *testing.T) {
	for _, w := range []uint{8, 20, 32} {
		for name, xs := range blockCases(t) {
			a, b, sub := splitSlices(xs)
			blk := NewDense(w)
			blk.AddSlice(a)
			blk.AddSlice(b)
			blk.SubSlice(sub)

			ora := NewDense(w)
			for _, x := range xs {
				ora.Add(x)
			}
			for _, x := range sub {
				ora.Sub(x)
			}

			blk.Regularize()
			ora.Regularize()
			if !slices.Equal(blk.dig, ora.dig) || blk.sp != ora.sp {
				t.Fatalf("W=%d %s: block path state diverges from scalar oracle\nblock:  %v\nscalar: %v", w, name, blk, ora)
			}
			if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
				t.Fatalf("W=%d %s: Round %x != scalar %x", w, name, math.Float64bits(g), math.Float64bits(want))
			}
		}
	}
}

func TestBlockVsScalarSmall(t *testing.T) {
	for name, xs := range blockCases(t) {
		a, b, sub := splitSlices(xs)
		blk := NewSmall()
		blk.AddSlice(a)
		blk.AddSlice(b)
		blk.SubSlice(sub)

		ora := NewSmall()
		for _, x := range xs {
			ora.Add(x)
		}
		for _, x := range sub {
			ora.Sub(x)
		}

		blk.Propagate()
		ora.Propagate()
		if !slices.Equal(blk.dig, ora.dig) || blk.sp != ora.sp {
			t.Fatalf("%s: small block path state diverges from scalar oracle", name)
		}
		if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
			t.Fatalf("%s: Round %x != scalar %x", name, math.Float64bits(g), math.Float64bits(want))
		}
	}
}

func TestBlockVsScalarWindow(t *testing.T) {
	for _, w := range []uint{8, 20, 32} {
		for name, xs := range blockCases(t) {
			a, b, sub := splitSlices(xs)
			blk := NewWindow(w)
			blk.AddSlice(a)
			blk.AddSlice(b)
			blk.SubSlice(sub)

			ora := NewWindow(w)
			for _, x := range xs {
				ora.Add(x)
			}
			for _, x := range sub {
				ora.Sub(x)
			}

			// The two paths may grow the window differently; ToSparse is
			// the canonical (regularized, zero-skipping) view.
			bs, os := blk.ToSparse(), ora.ToSparse()
			if !slices.Equal(bs.idx, os.idx) || !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
				t.Fatalf("W=%d %s: window block path state diverges from scalar oracle\nblock:  %v\nscalar: %v", w, name, bs, os)
			}
			if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
				t.Fatalf("W=%d %s: Round %x != scalar %x", w, name, math.Float64bits(g), math.Float64bits(want))
			}
		}
	}
}

// TestLaneFastPathEngages pins the dispatch policy via the two budgets: a
// bulk insert at the canonical width — wide or narrow exponent spread
// alike — lands entirely in the lane cache (lc.n charged per element, no
// lazy digit adds), and only a flush point moves the contribution into
// the digits (at most three pieces per dirty window). Non-canonical
// widths take the scalar path and never touch the cache.
func TestLaneFastPathEngages(t *testing.T) {
	wide := make([]float64, 1000)
	for i := range wide {
		wide[i] = math.Ldexp(1+float64(i%7)/8, (i%40)*20-400)
	}
	d := NewDense(0)
	d.AddSlice(wide)
	if d.lc.n != int64(len(wide)) {
		t.Fatalf("wide slice charged %d lane adds, want %d (lane cache did not engage)", d.lc.n, len(wide))
	}
	if d.nAdd != 0 {
		t.Fatalf("wide slice charged %d lazy digit adds before any flush, want 0", d.nAdd)
	}
	d.Regularize()
	if d.lc.n != 0 || d.lc.dirty() {
		t.Fatalf("Regularize left %d pending lane adds, want 0", d.lc.n)
	}

	d8 := NewDense(8)
	d8.AddSlice(wide)
	if d8.lc.n != 0 {
		t.Fatalf("non-canonical width charged %d lane adds, want 0 (scalar path)", d8.lc.n)
	}

	// Specials divert only themselves: the finite elements stay in the
	// lane cache, the special lands out of band via the repair pass.
	mixed := append(append([]float64{1.5}, math.Inf(1)), 2.5, math.NaN())
	dm := NewDense(0)
	dm.AddSlice(mixed)
	if dm.lc.n != int64(len(mixed)) {
		t.Fatalf("mixed slice charged %d lane adds, want %d", dm.lc.n, len(mixed))
	}
	if dm.sp.posInf != 1 || dm.sp.nan != 1 {
		t.Fatalf("specials not repaired out of band: %+v", dm.sp)
	}
	if g := dm.Round(); !math.IsNaN(g) {
		t.Fatalf("Round after mixed specials = %v, want NaN", g)
	}
}

// forceLaneBudget lowers the lane-cache add budget so flushes fire
// mid-slice at test scale, restoring it on cleanup.
func forceLaneBudget(t *testing.T, n int64) {
	t.Helper()
	old := laneMaxAdds
	laneMaxAdds = n
	t.Cleanup(func() { laneMaxAdds = old })
}

// TestLaneFlushBoundaries is the flush-boundary differential layer: with
// the lane budget forced down to a handful of elements, every bulk insert
// crosses many budget-exhaustion flushes mid-slice, Add and Sub alternate
// across flushes, and specials land between flushes — and the final state
// must still be bit-identical to the scalar oracle on all three
// representations.
func TestLaneFlushBoundaries(t *testing.T) {
	for _, budget := range []int64{1, 3, 7, 100, 256, 257} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			forceLaneBudget(t, budget)
			for name, xs := range blockCases(t) {
				a, b, sub := splitSlices(xs)

				bd, od := NewDense(0), NewDense(0)
				bs, os := NewSmall(), NewSmall()
				bw, ow := NewWindow(0), NewWindow(0)
				for _, acc := range []interface {
					AddSlice([]float64)
					SubSlice([]float64)
				}{bd, bs, bw} {
					// Alternate Add and Sub so direction changes straddle
					// budget-exhaustion flushes.
					acc.AddSlice(a)
					acc.SubSlice(sub)
					acc.AddSlice(b)
					acc.SubSlice(sub)
					acc.AddSlice(sub)
				}
				for _, x := range xs {
					od.Add(x)
					os.Add(x)
					ow.Add(x)
				}
				for _, x := range sub {
					od.Sub(x)
					os.Sub(x)
					ow.Sub(x)
				}

				bd.Regularize()
				od.Regularize()
				if !slices.Equal(bd.dig, od.dig) || bd.sp != od.sp {
					t.Fatalf("%s: dense flush-boundary state diverges from scalar oracle", name)
				}
				bs.Propagate()
				os.Propagate()
				if !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
					t.Fatalf("%s: small flush-boundary state diverges from scalar oracle", name)
				}
				bsp, osp := bw.ToSparse(), ow.ToSparse()
				if !slices.Equal(bsp.idx, osp.idx) || !slices.Equal(bsp.dig, osp.dig) || bsp.sp != osp.sp {
					t.Fatalf("%s: window flush-boundary state diverges from scalar oracle", name)
				}
			}
		})
	}
}

// blockCases32 are the float32 analogues of blockCases for the
// narrow-lane AddSlice32 path.
func blockCases32(t *testing.T) map[string][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	cases := map[string][]float32{}
	add := func(name string, n int, gen func() float32) {
		xs := make([]float32, n)
		for i := range xs {
			xs[i] = gen()
		}
		cases[name] = xs
	}
	for _, n := range []int{0, 1, 3, 255, 256, 257, 1000} {
		add(tname("wide32", n), n, func() float32 {
			return float32(math.Ldexp(rng.Float64()*2-1, rng.Intn(250)-125))
		})
		add(tname("denormal32", n), n, func() float32 {
			v := math.Float32frombits(rng.Uint32() & 0x7FFFFF)
			if rng.Intn(2) == 0 {
				v = -v
			}
			return v
		})
		add(tname("special32", n), n, func() float32 {
			switch rng.Intn(8) {
			case 0:
				return float32(math.Inf(1))
			case 1:
				return float32(math.Inf(-1))
			case 2:
				return float32(math.NaN())
			case 3:
				return float32(math.Copysign(0, -1))
			}
			return float32(math.Ldexp(rng.Float64()*2-1, rng.Intn(60)-30))
		})
		add(tname("bits32", n), n, func() float32 {
			return math.Float32frombits(rng.Uint32())
		})
		add(tname("extreme32", n), n, func() float32 {
			switch rng.Intn(4) {
			case 0:
				return math.MaxFloat32 * float32(rng.Float64()*2-1)
			case 1:
				return math.SmallestNonzeroFloat32 * float32(rng.Intn(5)-2)
			}
			return float32(math.Ldexp(rng.Float64()*2-1, rng.Intn(276)-149))
		})
	}
	return cases
}

// TestLane32VsScalar: AddSlice32/SubSlice32 must leave every
// representation bit-identical to the scalar float64 oracle (every
// float32 is exactly a float64, so Add(float64(x)) is the ground truth),
// at the default budget and across forced mid-slice flushes.
func TestLane32VsScalar(t *testing.T) {
	for _, budget := range []int64{0, 5, 256} { // 0 = default
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			if budget > 0 {
				forceLaneBudget(t, budget)
			}
			for name, xs := range blockCases32(t) {
				p := len(xs) / 3
				sub := xs[:p]

				bd, od := NewDense(0), NewDense(0)
				bs, os := NewSmall(), NewSmall()
				bw, ow := NewWindow(0), NewWindow(0)
				for _, acc := range []interface {
					AddSlice32([]float32)
					SubSlice32([]float32)
				}{bd, bs, bw} {
					acc.AddSlice32(xs[:p])
					acc.AddSlice32(xs[p:])
					acc.SubSlice32(sub)
				}
				for _, x := range xs {
					od.Add(float64(x))
					os.Add(float64(x))
					ow.Add(float64(x))
				}
				for _, x := range sub {
					od.Sub(float64(x))
					os.Sub(float64(x))
					ow.Sub(float64(x))
				}

				bd.Regularize()
				od.Regularize()
				if !slices.Equal(bd.dig, od.dig) || bd.sp != od.sp {
					t.Fatalf("%s: dense f32 lane path diverges from scalar oracle\nlane:   %v\nscalar: %v", name, bd, od)
				}
				bs.Propagate()
				os.Propagate()
				if !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
					t.Fatalf("%s: small f32 lane path diverges from scalar oracle", name)
				}
				bsp, osp := bw.ToSparse(), ow.ToSparse()
				if !slices.Equal(bsp.idx, osp.idx) || !slices.Equal(bsp.dig, osp.dig) || bsp.sp != osp.sp {
					t.Fatalf("%s: window f32 lane path diverges from scalar oracle", name)
				}
				if g, want := bd.Round32(), od.Round32(); math.Float32bits(g) != math.Float32bits(want) {
					t.Fatalf("%s: Round32 %x != scalar %x", name, math.Float32bits(g), math.Float32bits(want))
				}
			}
		})
	}
}

// TestLanePendingConsumers: every consumer of an accumulator's value must
// observe pending lane contributions — Merge, AddNeg, Neg, Clone,
// MarshalBinary, IsZero, Digits, ToSparse, AddRegularized — without an
// explicit Regularize in between.
func TestLanePendingConsumers(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Ldexp(1+float64(i%9)/16, (i%50)*13-300)
	}

	// Merge with both sides dirty.
	a, b := NewDense(0), NewDense(0)
	a.AddSlice(xs[:200])
	b.AddSlice(xs[200:])
	a.Merge(b)
	want := NewDense(0)
	for _, x := range xs {
		want.Add(x)
	}
	if g, w := a.Round(), want.Round(); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("Merge with dirty lanes: %x != %x", math.Float64bits(g), math.Float64bits(w))
	}

	// AddNeg with both sides dirty cancels exactly.
	c, d := NewDense(0), NewDense(0)
	c.AddSlice(xs)
	d.AddSlice(xs)
	c.AddNeg(d)
	if !c.IsZero() {
		t.Fatal("AddNeg with dirty lanes did not cancel to zero")
	}

	// Neg of a dirty accumulator.
	e := NewDense(0)
	e.AddSlice(xs)
	e.Neg()
	f := NewDense(0)
	for _, x := range xs {
		f.Add(-x)
	}
	if g, w := e.Round(), f.Round(); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("Neg with dirty lanes: %x != %x", math.Float64bits(g), math.Float64bits(w))
	}

	// Clone must copy pending lanes; mutating the clone leaves the
	// original intact.
	g := NewDense(0)
	g.AddSlice(xs)
	h := g.Clone()
	h.AddSlice(xs)
	if gv, wv := g.Round(), want.Round(); math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("Clone did not carry pending lanes: %x != %x", math.Float64bits(gv), math.Float64bits(wv))
	}

	// MarshalBinary round-trips the pending value.
	m := NewDense(0)
	m.AddSlice(xs)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Dense
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if gv, wv := back.Round(), want.Round(); math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("marshal with dirty lanes: %x != %x", math.Float64bits(gv), math.Float64bits(wv))
	}

	// AddRegularized regularizes a dirty side rather than reading stale
	// digits.
	p, q := NewDense(0), NewDense(0)
	p.AddSlice(xs[:100])
	p.Regularize()
	q.AddSlice(xs[100:])
	p.AddRegularized(q)
	if gv, wv := p.Round(), want.Round(); math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("AddRegularized with dirty operand: %x != %x", math.Float64bits(gv), math.Float64bits(wv))
	}

	// Window: Merge/ToSparse with dirty lanes.
	wa, wb := NewWindow(0), NewWindow(0)
	wa.AddSlice(xs[:200])
	wb.AddSlice(xs[200:])
	wa.Merge(wb)
	if gv, wv := wa.Round(), want.Round(); math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("Window.Merge with dirty lanes: %x != %x", math.Float64bits(gv), math.Float64bits(wv))
	}

	// Small: Merge with dirty lanes.
	sa, sb := NewSmall(), NewSmall()
	sa.AddSlice(xs[:200])
	sb.AddSlice(xs[200:])
	sa.Merge(sb)
	if gv, wv := sa.Round(), want.Round(); math.Float64bits(gv) != math.Float64bits(wv) {
		t.Fatalf("Small.Merge with dirty lanes: %x != %x", math.Float64bits(gv), math.Float64bits(wv))
	}
}

// TestDenseAddSliceZeroAlloc asserts the bulk hot path allocates nothing:
// the block pipeline runs entirely on the accumulator's existing digit
// array and stack-resident lanes.
func TestDenseAddSliceZeroAlloc(t *testing.T) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = math.Ldexp(rng.Float64()*2-1, rng.Intn(1000)-500)
	}
	d := NewDense(0)
	if avg := testing.AllocsPerRun(20, func() { d.AddSlice(xs) }); avg != 0 {
		t.Fatalf("Dense.AddSlice allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { d.SubSlice(xs) }); avg != 0 {
		t.Fatalf("Dense.SubSlice allocates %.1f times per call, want 0", avg)
	}
	xs32 := make([]float32, 4096)
	for i := range xs32 {
		xs32[i] = float32(rng.Float64()*2 - 1)
	}
	if avg := testing.AllocsPerRun(20, func() { d.AddSlice32(xs32) }); avg != 0 {
		t.Fatalf("Dense.AddSlice32 allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { d.SubSlice32(xs32) }); avg != 0 {
		t.Fatalf("Dense.SubSlice32 allocates %.1f times per call, want 0", avg)
	}
}
