package accum

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// Differential tests for the block-structured bulk paths (block.go): on
// every input class, AddSlice/SubSlice must leave each representation in a
// state bit-identical to the scalar Add/Sub oracle loop — compared on the
// canonical (regularized) digit string, the out-of-band special
// multiplicities, and the rounded bits.

// blockCases are the adversarial input classes the bulk paths must agree
// with the scalar oracle on, each built at several lengths so blocks split
// at every boundary shape (empty, sub-block, exact multiple, remainder).
func blockCases(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	lens := []int{0, 1, 3, 255, 256, 257, 1000}
	cases := map[string][]float64{}
	add := func(name string, n int, gen func() float64) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen()
		}
		cases[name] = xs
	}
	for _, n := range lens {
		// Wide exponent spread: scatter path.
		add(tname("wide", n), n, func() float64 {
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(1200)-600)
		})
		// Narrow spread: the exponent-window lane path.
		add(tname("narrow", n), n, func() float64 {
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(4))
		})
		// Zeros of both signs mixed into a narrow block.
		add(tname("zeros", n), n, func() float64 {
			switch rng.Intn(4) {
			case 0:
				return 0
			case 1:
				return math.Copysign(0, -1)
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(3))
		})
		// Denormals, alone and mixed with small normals.
		add(tname("denormal", n), n, func() float64 {
			v := math.Float64frombits(uint64(rng.Int63()) & (1<<52 - 1))
			if rng.Intn(2) == 0 {
				v = -v
			}
			if rng.Intn(3) == 0 {
				v = math.Ldexp(rng.Float64(), -1022)
			}
			return v
		})
		// Specials sprinkled into finite data: blocks divert out of line.
		add(tname("special", n), n, func() float64 {
			switch rng.Intn(8) {
			case 0:
				return math.Inf(1)
			case 1:
				return math.Inf(-1)
			case 2:
				return math.NaN()
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(600)-300)
		})
		// Raw random bit patterns: everything at once.
		add(tname("bits", n), n, func() float64 {
			return math.Float64frombits(rng.Uint64())
		})
		// Extremes: near-overflow magnitudes and the subnormal floor.
		add(tname("extreme", n), n, func() float64 {
			switch rng.Intn(4) {
			case 0:
				return math.MaxFloat64 * (rng.Float64()*2 - 1)
			case 1:
				return math.SmallestNonzeroFloat64 * float64(rng.Intn(5)-2)
			}
			return math.Ldexp(rng.Float64()*2-1, rng.Intn(2040)-1070)
		})
	}
	return cases
}

func tname(kind string, n int) string {
	return fmt.Sprintf("%s/%d", kind, n)
}

// splitSlices applies bulk adds of xs (in two arbitrary pieces, exercising
// block-boundary splits) followed by bulk deletes of the second piece's
// reverse — a mixed add/sub history.
func splitSlices(xs []float64) (a, b, sub []float64) {
	p := len(xs) / 3
	a, b = xs[:p], xs[p:]
	sub = make([]float64, 0, len(b)/2)
	for i := len(b) - 1; i >= 0; i -= 2 {
		sub = append(sub, b[i])
	}
	return a, b, sub
}

func TestBlockVsScalarDense(t *testing.T) {
	for _, w := range []uint{8, 20, 32} {
		for name, xs := range blockCases(t) {
			a, b, sub := splitSlices(xs)
			blk := NewDense(w)
			blk.AddSlice(a)
			blk.AddSlice(b)
			blk.SubSlice(sub)

			ora := NewDense(w)
			for _, x := range xs {
				ora.Add(x)
			}
			for _, x := range sub {
				ora.Sub(x)
			}

			blk.Regularize()
			ora.Regularize()
			if !slices.Equal(blk.dig, ora.dig) || blk.sp != ora.sp {
				t.Fatalf("W=%d %s: block path state diverges from scalar oracle\nblock:  %v\nscalar: %v", w, name, blk, ora)
			}
			if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
				t.Fatalf("W=%d %s: Round %x != scalar %x", w, name, math.Float64bits(g), math.Float64bits(want))
			}
		}
	}
}

func TestBlockVsScalarSmall(t *testing.T) {
	for name, xs := range blockCases(t) {
		a, b, sub := splitSlices(xs)
		blk := NewSmall()
		blk.AddSlice(a)
		blk.AddSlice(b)
		blk.SubSlice(sub)

		ora := NewSmall()
		for _, x := range xs {
			ora.Add(x)
		}
		for _, x := range sub {
			ora.Sub(x)
		}

		blk.Propagate()
		ora.Propagate()
		if !slices.Equal(blk.dig, ora.dig) || blk.sp != ora.sp {
			t.Fatalf("%s: small block path state diverges from scalar oracle", name)
		}
		if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
			t.Fatalf("%s: Round %x != scalar %x", name, math.Float64bits(g), math.Float64bits(want))
		}
	}
}

func TestBlockVsScalarWindow(t *testing.T) {
	for _, w := range []uint{8, 20, 32} {
		for name, xs := range blockCases(t) {
			a, b, sub := splitSlices(xs)
			blk := NewWindow(w)
			blk.AddSlice(a)
			blk.AddSlice(b)
			blk.SubSlice(sub)

			ora := NewWindow(w)
			for _, x := range xs {
				ora.Add(x)
			}
			for _, x := range sub {
				ora.Sub(x)
			}

			// The two paths may grow the window differently; ToSparse is
			// the canonical (regularized, zero-skipping) view.
			bs, os := blk.ToSparse(), ora.ToSparse()
			if !slices.Equal(bs.idx, os.idx) || !slices.Equal(bs.dig, os.dig) || bs.sp != os.sp {
				t.Fatalf("W=%d %s: window block path state diverges from scalar oracle\nblock:  %v\nscalar: %v", w, name, bs, os)
			}
			if g, want := blk.Round(), ora.Round(); math.Float64bits(g) != math.Float64bits(want) {
				t.Fatalf("W=%d %s: Round %x != scalar %x", w, name, math.Float64bits(g), math.Float64bits(want))
			}
		}
	}
}

// TestLaneFastPathEngages pins the dispatch policy via the lazy-add
// accounting: a narrow-spread block flushes through at most three
// addInt64 calls, while a wide-spread block charges one lazy add per
// element. This is the observable difference between the exponent-window
// lane path and the general scatter.
func TestLaneFastPathEngages(t *testing.T) {
	narrow := make([]float64, blockLen)
	for i := range narrow {
		narrow[i] = 1.0 + float64(i)/blockLen
	}
	d := NewDense(0)
	d.AddSlice(narrow)
	if d.nAdd > 3 {
		t.Fatalf("narrow block charged %d lazy adds, want <= 3 (lane path did not engage)", d.nAdd)
	}

	wide := make([]float64, blockLen)
	for i := range wide {
		wide[i] = math.Ldexp(1+float64(i%7)/8, (i%40)*20-400)
	}
	d2 := NewDense(0)
	d2.AddSlice(wide)
	if d2.nAdd != blockLen {
		t.Fatalf("wide block charged %d lazy adds, want %d (scatter path)", d2.nAdd, blockLen)
	}
}

// TestDenseAddSliceZeroAlloc asserts the bulk hot path allocates nothing:
// the block pipeline runs entirely on the accumulator's existing digit
// array and stack-resident lanes.
func TestDenseAddSliceZeroAlloc(t *testing.T) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = math.Ldexp(rng.Float64()*2-1, rng.Intn(1000)-500)
	}
	d := NewDense(0)
	if avg := testing.AllocsPerRun(20, func() { d.AddSlice(xs) }); avg != 0 {
		t.Fatalf("Dense.AddSlice allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { d.SubSlice(xs) }); avg != 0 {
		t.Fatalf("Dense.SubSlice allocates %.1f times per call, want 0", avg)
	}
}
