package accum

import (
	"math/bits"

	"parsum/internal/fpnum"
)

// RoundDigitString returns the correctly rounded float64 value of the
// exact quantity Σ dig[i]·2^(w·(minIdx+i)) for arbitrary int64 digits. It
// is the rounding primitive shared by every representation in this package
// and by the external-memory simulator's streaming rounder.
func RoundDigitString(dig []int64, minIdx int, w uint) float64 {
	return roundDigits(dig, minIdx, widthOrDefault(w))
}

// RoundDigitStringTo rounds the same exact quantity to an arbitrary
// destination format (the paper's algorithms are precision-independent;
// only the final rounding step mentions the output precision). The result
// is a float64 exactly representable in f.
func RoundDigitStringTo(dig []int64, minIdx int, w uint, f fpnum.Format) float64 {
	return roundDigitsTo(dig, minIdx, widthOrDefault(w), f)
}

// roundDigits converts a digit string to the correctly rounded float64 of
// its exact value Σ dig[i]·2^(w·(minIdx+i)).
func roundDigits(src []int64, minIdx int, w uint) float64 {
	return roundDigitsTo(src, minIdx, w, fpnum.Binary64)
}

// roundDigitsTo implements steps 6–7 of the paper's PRAM algorithm for an
// arbitrary destination format: a signed-carry propagation to a
// non-redundant form, then a single round-to-nearest-even using the top
// f.SigBits bits plus guard and sticky information.
//
// The paper's step 6 asks for a ((R/2)−1, (R/2)−1)-regularized form; that
// digit set has R−1 < R values and is not complete for even R, so we
// canonicalize to the complete non-redundant form [0, R−1] with a signed top
// digit instead (same asymptotics, see DESIGN.md). The input digits may be
// arbitrary int64 values; a headroom digit is added internally.
func roundDigitsTo(src []int64, minIdx int, w uint, f fpnum.Format) float64 {
	dig := make([]int64, len(src)+1)
	copy(dig, src)
	canonicalize(dig, w)

	top := len(dig) - 1
	for top >= 0 && dig[top] == 0 {
		top--
	}
	if top < 0 {
		return 0 // exact zero rounds to +0
	}
	neg := dig[top] < 0
	if neg {
		for i := range dig {
			dig[i] = -dig[i]
		}
		canonicalize(dig, w)
		for top = len(dig) - 1; top >= 0 && dig[top] == 0; top-- {
		}
	}

	// Relative bit positions: bit b of digit i has position i·w + b and
	// binary weight minIdx·w + i·w + b.
	msb := top*int(w) + bits.Len64(uint64(dig[top])) - 1
	lsb := msb - (f.SigBits - 1)
	baseWeight := minIdx * int(w)
	if baseWeight+lsb < f.MinExp {
		lsb = f.MinExp - baseWeight // subnormal result: right-align at 2^MinExp
	}
	sig := extractBits(dig, w, lsb, msb)
	var round, sticky bool
	if r := lsb - 1; r >= 0 {
		round = extractBits(dig, w, r, r) != 0
		sticky = anyBelow(dig, w, r)
	}
	return fpnum.RoundToFormat(f, neg, sig, baseWeight+lsb, round, sticky)
}

// canonicalize performs a low-to-high signed-carry pass leaving every digit
// but the last in [0, R−1]; the final carry lands unreduced in the last
// digit. The represented value is unchanged.
func canonicalize(dig []int64, w uint) {
	mask := int64(1)<<w - 1
	var c int64
	last := len(dig) - 1
	for i := 0; i < last; i++ {
		v := dig[i] + c
		dig[i] = v & mask
		c = v >> w
	}
	dig[last] += c
}

// extractBits returns the value of bit positions [lo, hi] (hi−lo ≤ 63) of a
// canonical non-negative digit string. Positions outside the array read as
// zero.
func extractBits(dig []int64, w uint, lo, hi int) uint64 {
	var out uint64
	iw := int(w)
	first := floorDiv(lo, iw)
	last := floorDiv(hi, iw)
	if first < 0 {
		first = 0
	}
	if last > len(dig)-1 {
		last = len(dig) - 1
	}
	for i := first; i <= last; i++ {
		base := i * iw
		from := lo
		if base > from {
			from = base
		}
		to := hi
		if base+iw-1 < to {
			to = base + iw - 1
		}
		if to < from {
			continue
		}
		chunk := uint64(dig[i]) >> uint(from-base)
		nb := uint(to - from + 1)
		if nb < 64 {
			chunk &= 1<<nb - 1
		}
		out |= chunk << uint(from-lo)
	}
	return out
}

// anyBelow reports whether any bit at a position strictly less than pos is
// nonzero in a canonical non-negative digit string.
func anyBelow(dig []int64, w uint, pos int) bool {
	iw := int(w)
	k := floorDiv(pos, iw)
	stop := k
	if stop > len(dig) {
		stop = len(dig)
	}
	for i := 0; i < stop; i++ {
		if dig[i] != 0 {
			return true
		}
	}
	if k >= 0 && k < len(dig) {
		nb := uint(pos - k*iw) // bits [k·iw, pos) within digit k
		if uint64(dig[k])&(1<<nb-1) != 0 {
			return true
		}
	}
	return false
}

// Round32 variants: the paper's precision-independence means any
// accumulator can round its exact value to a narrower format; these are
// the float32 conveniences used by the public Sum32 API.

// Round32 returns the correctly rounded float32 value of d's exact sum.
func (d *Dense) Round32() float32 {
	if v, ok := d.sp.resolved(); ok {
		return float32(v)
	}
	d.Regularize()
	return float32(roundDigitsTo(d.dig, d.minIdx, d.w, fpnum.Binary32))
}

// Round32 returns the correctly rounded float32 value of a's exact sum.
func (a *Window) Round32() float32 {
	if v, ok := a.sp.resolved(); ok {
		return float32(v)
	}
	a.flushLanes()
	if len(a.win) == 0 {
		return 0
	}
	return float32(roundDigitsTo(a.win, a.base, a.w, fpnum.Binary32))
}

// Round32 returns the correctly rounded float32 value of s's exact sum.
func (s *Sparse) Round32() float32 {
	if v, ok := s.sp.resolved(); ok {
		return float32(v)
	}
	if len(s.idx) == 0 {
		return 0
	}
	lo, hi := int(s.idx[0]), int(s.idx[len(s.idx)-1])
	win := make([]int64, hi-lo+2)
	for k, ix := range s.idx {
		win[int(ix)-lo] += s.dig[k]
	}
	return float32(roundDigitsTo(win, lo, s.w, fpnum.Binary32))
}
