package accum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/oracle"
)

func sparseOf(xs []float64, w uint) *Sparse {
	win := NewWindow(w)
	win.AddSlice(xs)
	return win.ToSparse()
}

func TestFromFloat64Components(t *testing.T) {
	for _, w := range []uint{8, 16, 29, 32} {
		for _, x := range interestingValues {
			s := FromFloat64(x, w)
			if !s.IsRegularized() {
				t.Fatalf("w=%d FromFloat64(%g) not regularized: %v", w, x, s)
			}
			want := x
			if x == 0 {
				want = 0
			}
			if got := s.Round(); got != want {
				t.Errorf("w=%d FromFloat64(%g).Round() = %g", w, x, got)
			}
			// O(1) components: at most ⌈84/W⌉+1.
			if max := int(84/w) + 2; s.Len() > max {
				t.Errorf("w=%d FromFloat64(%g) has %d components (> %d)", w, x, s.Len(), max)
			}
		}
	}
}

func TestMergeSparseMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 150; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(50), true)
		ys := randValues(r, 1+r.Intn(50), true)
		m := MergeSparse(sparseOf(xs, w), sparseOf(ys, w))
		if !m.IsRegularized() {
			t.Fatalf("w=%d merged sparse not (α,β)-regularized", w)
		}
		got := m.Round()
		want := oracle.Sum(append(append([]float64(nil), xs...), ys...))
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("w=%d merge=%g oracle=%g", w, got, want)
		}
	}
}

func TestMergeSparseCarryActivation(t *testing.T) {
	// Two components at the same index whose sum forces a carry into an
	// index inactive in both inputs.
	w := uint(8)
	a := sparseOf([]float64{255}, w) // digit 255 at index 0
	b := sparseOf([]float64{255}, w)
	m := MergeSparse(a, b)
	if got := m.Round(); got != 510 {
		t.Fatalf("255+255 = %g", got)
	}
	if !m.IsRegularized() {
		t.Fatalf("carry-activated merge not regularized: %v", m)
	}
	// P₀ = 510 ≥ R−1 ⟹ carry into index 1, which was inactive.
	idx, _ := m.Components()
	found := false
	for _, ix := range idx {
		if ix == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("carry did not activate index 1: %v", m)
	}
}

func TestMergeSparseKeepsActiveZeros(t *testing.T) {
	// x + (−x) leaves components active with zero digits (the paper's
	// active-index semantics), and Compact prunes them.
	s := MergeSparse(sparseOf([]float64{1.5}, 32), sparseOf([]float64{-1.5}, 32))
	if s.Round() != 0 {
		t.Fatalf("1.5−1.5 = %g", s.Round())
	}
	if s.Len() == 0 {
		t.Fatalf("cancelled components should stay active")
	}
	s.Compact()
	if s.Len() != 0 {
		t.Fatalf("Compact left %d components", s.Len())
	}
}

func TestMergeSparseCommutesAndAssociates(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		w := uint(8 + r.Intn(25))
		a := sparseOf(randValues(r, 1+r.Intn(30), true), w)
		b := sparseOf(randValues(r, 1+r.Intn(30), true), w)
		c := sparseOf(randValues(r, 1+r.Intn(30), true), w)
		ab := MergeSparse(a, b)
		ba := MergeSparse(b, a)
		if ab.Round() != ba.Round() && !(math.IsNaN(ab.Round()) && math.IsNaN(ba.Round())) {
			t.Fatalf("merge not commutative in value")
		}
		l := MergeSparse(MergeSparse(a, b), c).Round()
		rr := MergeSparse(a, MergeSparse(b, c)).Round()
		if l != rr && !(math.IsNaN(l) && math.IsNaN(rr)) {
			t.Fatalf("merge not associative in value: %g vs %g", l, rr)
		}
	}
}

func TestSparseAddIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := randValues(r, 40, true)
	s := NewSparse(0)
	for _, x := range xs {
		s.Add(x)
	}
	got, want := s.Round(), oracle.Sum(xs)
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("incremental sparse=%g oracle=%g", got, want)
	}
}

func TestSparseDenseEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(80), true)
		d := NewDense(w)
		d.AddSlice(xs)
		s := sparseOf(xs, w)
		dv, sv := d.Round(), s.Round()
		if dv != sv && !(math.IsNaN(dv) && math.IsNaN(sv)) {
			t.Fatalf("w=%d dense=%g sparse=%g", w, dv, sv)
		}
		// Conversions agree too.
		if c := d.ToSparse().Round(); c != dv && !(math.IsNaN(c) && math.IsNaN(dv)) {
			t.Fatalf("ToSparse changed value: %g vs %g", c, dv)
		}
		if c := s.ToDense().Round(); c != sv && !(math.IsNaN(c) && math.IsNaN(sv)) {
			t.Fatalf("ToDense changed value: %g vs %g", c, sv)
		}
	}
}

func TestWindowMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		w := uint(8 + r.Intn(25))
		xs := randValues(r, 1+r.Intn(200), true)
		a := NewWindow(w)
		a.AddSlice(xs)
		got, want := a.Round(), oracle.Sum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("w=%d window=%g oracle=%g", w, got, want)
		}
	}
}

func TestWindowGrowthBothDirections(t *testing.T) {
	a := NewWindow(32)
	a.Add(1)         // around index 0
	a.Add(0x1p500)   // grow upward
	a.Add(0x1p-500)  // grow downward
	a.Add(-0x1p500)  // cancel the top
	a.Add(-0x1p-500) // cancel the bottom
	if got := a.Round(); got != 1 {
		t.Fatalf("window growth sum = %g, want 1", got)
	}
	if a.Span() == 0 {
		t.Fatalf("window should have grown")
	}
}

func TestWindowNegativeTotals(t *testing.T) {
	a := NewWindow(8)
	a.Add(-1e30)
	a.Add(1)
	s := a.ToSparse()
	if !s.IsRegularized() {
		t.Fatalf("negative-total sparse not regularized: %v", s)
	}
	want := oracle.Sum([]float64{-1e30, 1})
	if got := s.Round(); got != want {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestWindowQuick(t *testing.T) {
	f := func(raw []uint64, wseed uint8) bool {
		w := uint(8 + int(wseed)%25)
		xs := make([]float64, 0, len(raw))
		for _, b := range raw {
			x := math.Float64frombits(b)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		a := NewWindow(w)
		a.AddSlice(xs)
		return a.Round() == oracle.Sum(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedExactWhenUntruncated(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	xs := randValues(r, 30, false)
	tr := NewTruncated(sparseOf(xs, 32), 1000)
	if tr.Truncated {
		t.Fatalf("γ=1000 should not truncate %d components", tr.S.Len())
	}
	if !tr.StopFloat(len(xs)) || !tr.StopExponentGap(len(xs)) {
		t.Fatalf("untruncated accumulator must satisfy stopping conditions")
	}
}

func TestTruncatedDropsLowComponents(t *testing.T) {
	// 2^200, 2^100, 1 give one component each at W=32 (indices 6, 3, 0).
	// γ=2 drops the least-significant one.
	s := sparseOf([]float64{0x1p200, 0x1p100, 1}, 32)
	if s.Len() != 3 {
		t.Fatalf("setup: want 3 components, have %v", s)
	}
	tr := NewTruncated(s, 2)
	if !tr.Truncated {
		t.Fatalf("expected truncation, have %d components", tr.S.Len())
	}
	// The rounded value is unaffected (2^100 and 1 are far below the ulp
	// of 2^200), and the stopping condition certifies it: ε_min = 2^96,
	// n·ε_min = 3·2^96 ≪ ulp(2^200)/2 = 2^147.
	if got := tr.S.Round(); got != 0x1p200 {
		t.Fatalf("truncated round = %g", got)
	}
	if !tr.StopFloat(3) {
		t.Fatalf("stop condition should certify 3·2^96 ≪ ulp(2^200)")
	}
	if !tr.StopExponentGap(3) {
		t.Fatalf("exponent-gap stop condition should certify as well")
	}
	// With γ=1 the retained component is index 6 and ε_min = 2^192 exceeds
	// ulp(2^200): certification must fail even though the value happens to
	// round identically — the bound cannot prove it.
	s2 := sparseOf([]float64{0x1p200, 0x1p100, 1}, 32)
	tr1 := NewTruncated(s2, 1)
	if !tr1.Truncated {
		t.Fatalf("γ=1 must truncate")
	}
	if tr1.StopFloat(3) {
		t.Fatalf("γ=1 certification should fail: n·ε_min = 3·2^192 ≫ ulp(2^200)")
	}
}

func TestTruncatedStoppingConditionRejects(t *testing.T) {
	// Two nearly-cancelling huge values whose difference is small: with a
	// tiny γ the truncated result cannot be certified.
	xs := []float64{0x1p300, -0x1p300 + 0x1p240, 1}
	s := sparseOf(xs, 32)
	tr := NewTruncated(s, 1)
	if !tr.Truncated {
		t.Skipf("no truncation at this width; components=%d", s.Len())
	}
	if tr.StopFloat(len(xs)) {
		t.Fatalf("stop condition must reject: dropped mass can move the result")
	}
}

func TestMergeTruncatedBoundsSize(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 40; trial++ {
		gamma := 1 + r.Intn(6)
		a := NewTruncated(sparseOf(randValues(r, 20, false), 32), gamma)
		b := NewTruncated(sparseOf(randValues(r, 20, false), 32), gamma)
		m := MergeTruncated(a, b, gamma)
		if m.S.Len() > gamma {
			t.Fatalf("γ=%d but %d components survived", gamma, m.S.Len())
		}
	}
}

func TestSmallMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		xs := randValues(r, 1+r.Intn(100), true)
		s := NewSmall()
		s.AddSlice(xs)
		got, want := s.Round(), oracle.Sum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("small=%g oracle=%g", got, want)
		}
	}
}

func TestSmallMerge(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 40; trial++ {
		xs := randValues(r, 1+r.Intn(60), true)
		cut := r.Intn(len(xs) + 1)
		a, b := NewSmall(), NewSmall()
		a.AddSlice(xs[:cut])
		b.AddSlice(xs[cut:])
		a.Merge(b)
		got, want := a.Round(), oracle.Sum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("small merge=%g oracle=%g", got, want)
		}
	}
}

func TestLargeMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		xs := randValues(r, 1+r.Intn(100), true)
		l := NewLarge()
		l.AddSlice(xs)
		got, want := l.Round(), oracle.Sum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("large=%g oracle=%g", got, want)
		}
	}
}

func TestLargeFoldThreshold(t *testing.T) {
	// Force many folds with same-exponent values.
	l := NewLarge()
	const n = 5 * maxLargeAdds
	for i := 0; i < n; i++ {
		l.Add(1.5)
	}
	if got := l.Round(); got != 1.5*n {
		t.Fatalf("fold threshold sum = %g, want %g", got, 1.5*float64(n))
	}
}

func TestLargeMergeAndSpecials(t *testing.T) {
	a, b := NewLarge(), NewLarge()
	a.Add(1)
	a.Add(math.Inf(1))
	b.Add(2)
	a.Merge(b)
	if got := a.Round(); !math.IsInf(got, 1) {
		t.Fatalf("merge with +Inf = %g", got)
	}
	c, d := NewLarge(), NewLarge()
	c.Add(math.Inf(1))
	d.Add(math.Inf(-1))
	c.Merge(d)
	if got := c.Round(); !math.IsNaN(got) {
		t.Fatalf("+Inf + −Inf = %g, want NaN", got)
	}
}

func TestAllRepresentationsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 60; trial++ {
		xs := randValues(r, 1+r.Intn(120), true)
		want := oracle.Sum(xs)
		d := NewDense(0)
		d.AddSlice(xs)
		wv := NewWindow(0)
		wv.AddSlice(xs)
		sm := NewSmall()
		sm.AddSlice(xs)
		lg := NewLarge()
		lg.AddSlice(xs)
		for name, got := range map[string]float64{
			"dense": d.Round(), "window": wv.Round(), "small": sm.Round(), "large": lg.Round(),
		} {
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s=%g oracle=%g", name, got, want)
			}
		}
	}
}
