package accum

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format for superaccumulators, so partial sums can be
// exchanged between processes — the role the paper's reducers' "write the
// resulting sparse superaccumulator to the output" plays on HDFS. The
// format is endian-stable by construction: every multi-byte quantity is a
// varint, so the same bytes decode to the same value on any platform.
//
// Layout (little-endian varints):
//
//	magic   byte = 0xA5
//	kind    byte ('S' sparse/window, 'D' dense, 'N' Neal small, 'L' Neal large)
//	version byte = 1
//	width   byte (digit width W)
//	flags   byte (bit 0 NaN, bit 1 +Inf, bit 2 −Inf, bit 3 extended counts)
//	[flags bit 3 only] 3 × zigzag-varint (NaN, +Inf, −Inf multiplicities)
//	count   uvarint (number of components)
//	count × { idx zigzag-varint, dig zigzag-varint }
//
// Non-finite summands are tracked as signed multiplicities (deletion is a
// decrement — see the special type). When every multiplicity is 0 or 1
// the flags byte carries them as presence bits, bit-identical to the
// pre-group encoding; any other multiplicity (several NaNs, or a net
// deletion) sets flags bit 3 — with bits 0–2 clear — and ships the three
// signed counts as zigzag varints, so exact deletion survives the wire.
//
// Components must be strictly ascending by index, every index must lie in
// the digit range a width-W accumulator over float64 sums can populate
// (digitBounds), and digits must lie in the (α,β) range. Decoding
// validates everything it reads before allocating anything proportional
// to it, so arbitrary untrusted bytes can neither panic the decoder nor
// make it allocate more than O(len(data)).

const (
	codecMagic   = 0xA5
	codecVersion = 1
)

// Codec errors.
var (
	ErrCodecTruncated = errors.New("accum: truncated encoding")
	ErrCodecInvalid   = errors.New("accum: invalid encoding")
)

// appendHeader emits the fixed header. Special multiplicities in {0, 1}
// encode as presence bits (the historical layout, so partials of ordinary
// sums are byte-identical to the pre-group format); anything else — a
// repeated special, or a net deletion — switches to the extended-counts
// form (flags bit 3 + three zigzag varints), keeping the wire
// value-faithful for every reachable accumulator state.
func appendHeader(buf []byte, kind byte, w uint, sp special) []byte {
	inPresenceRange := func(c int64) bool { return c == 0 || c == 1 }
	if !inPresenceRange(sp.nan) || !inPresenceRange(sp.posInf) || !inPresenceRange(sp.negInf) {
		buf = append(buf, codecMagic, kind, codecVersion, byte(w), 8)
		buf = binary.AppendVarint(buf, sp.nan)
		buf = binary.AppendVarint(buf, sp.posInf)
		return binary.AppendVarint(buf, sp.negInf)
	}
	var flags byte
	if sp.nan > 0 {
		flags |= 1
	}
	if sp.posInf > 0 {
		flags |= 2
	}
	if sp.negInf > 0 {
		flags |= 4
	}
	return append(buf, codecMagic, kind, codecVersion, byte(w), flags)
}

func parseHeader(data []byte, wantKind byte) (w uint, sp special, rest []byte, err error) {
	if len(data) < 5 {
		return 0, sp, nil, ErrCodecTruncated
	}
	if data[0] != codecMagic {
		return 0, sp, nil, fmt.Errorf("%w: bad magic %#x", ErrCodecInvalid, data[0])
	}
	if data[1] != wantKind {
		return 0, sp, nil, fmt.Errorf("%w: kind %q, want %q", ErrCodecInvalid, data[1], wantKind)
	}
	if data[2] != codecVersion {
		return 0, sp, nil, fmt.Errorf("%w: unsupported version %d", ErrCodecInvalid, data[2])
	}
	w = uint(data[3])
	if w < MinWidth || w > MaxWidth {
		return 0, sp, nil, fmt.Errorf("%w: width %d out of range", ErrCodecInvalid, w)
	}
	flags := data[4]
	if flags > 8 {
		// Bits 0–2 are presence bits, bit 3 selects the extended-counts
		// form with bits 0–2 clear; every other combination is invalid.
		return 0, sp, nil, fmt.Errorf("%w: unknown flags %#x", ErrCodecInvalid, flags)
	}
	rest = data[5:]
	if flags == 8 {
		for _, dst := range []*int64{&sp.nan, &sp.posInf, &sp.negInf} {
			c, n := binary.Varint(rest)
			if n == 0 {
				return 0, special{}, nil, ErrCodecTruncated
			}
			if n < 0 {
				return 0, special{}, nil, fmt.Errorf("%w: special count varint overflows int64", ErrCodecInvalid)
			}
			*dst = c
			rest = rest[n:]
		}
		return w, sp, rest, nil
	}
	if flags&1 != 0 {
		sp.nan = 1
	}
	if flags&2 != 0 {
		sp.posInf = 1
	}
	if flags&4 != 0 {
		sp.negInf = 1
	}
	return w, sp, rest, nil
}

func appendComponents(buf []byte, idx []int32, dig []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	for k := range idx {
		buf = binary.AppendVarint(buf, int64(idx[k]))
		buf = binary.AppendVarint(buf, dig[k])
	}
	return buf
}

func parseComponents(data []byte, w uint) (idx []int32, dig []int64, err error) {
	count, n := binary.Uvarint(data)
	if n == 0 {
		return nil, nil, ErrCodecTruncated
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("%w: component count varint overflows uint64", ErrCodecInvalid)
	}
	data = data[n:]
	// Every component costs at least two bytes (one per varint), so a count
	// the remaining buffer cannot possibly hold is a lie about the input
	// length — reject it before sizing any allocation from it.
	if count > uint64(len(data))/2 {
		return nil, nil, fmt.Errorf("%w: %d components claimed but only %d bytes follow", ErrCodecTruncated, count, len(data))
	}
	// Strictly ascending indices confined to the width-W digit range also
	// bound the component count by that range's span.
	minIdx, maxIdx := digitBounds(w)
	if count > uint64(maxIdx-minIdx+1) {
		return nil, nil, fmt.Errorf("%w: %d components cannot be strictly ascending in digit range [%d,%d]", ErrCodecInvalid, count, minIdx, maxIdx)
	}
	r := int64(1) << w
	idx = make([]int32, 0, count)
	dig = make([]int64, 0, count)
	prev := int64(minIdx) - 1
	for k := uint64(0); k < count; k++ {
		i, n := binary.Varint(data)
		if n == 0 {
			return nil, nil, ErrCodecTruncated
		}
		if n < 0 {
			return nil, nil, fmt.Errorf("%w: component index varint overflows int64", ErrCodecInvalid)
		}
		data = data[n:]
		d, n := binary.Varint(data)
		if n == 0 {
			return nil, nil, ErrCodecTruncated
		}
		if n < 0 {
			return nil, nil, fmt.Errorf("%w: digit varint overflows int64", ErrCodecInvalid)
		}
		data = data[n:]
		if i < int64(minIdx) || i > int64(maxIdx) {
			return nil, nil, fmt.Errorf("%w: component index %d outside digit range [%d,%d] for W=%d", ErrCodecInvalid, i, minIdx, maxIdx, w)
		}
		if i <= prev {
			return nil, nil, fmt.Errorf("%w: component indices not strictly ascending", ErrCodecInvalid)
		}
		if d <= -r || d >= r {
			return nil, nil, fmt.Errorf("%w: digit %d outside (α,β) range for W=%d", ErrCodecInvalid, d, w)
		}
		prev = i
		idx = append(idx, int32(i))
		dig = append(dig, d)
	}
	if len(data) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCodecInvalid, len(data))
	}
	return idx, dig, nil
}

// MarshalBinary encodes s. It implements encoding.BinaryMarshaler.
func (s *Sparse) MarshalBinary() ([]byte, error) {
	if !s.IsRegularized() {
		return nil, fmt.Errorf("%w: accumulator not regularized", ErrCodecInvalid)
	}
	buf := appendHeader(nil, 'S', s.w, s.sp)
	return appendComponents(buf, s.idx, s.dig), nil
}

// UnmarshalBinary decodes into s, replacing its contents. It implements
// encoding.BinaryUnmarshaler and validates the full encoding.
func (s *Sparse) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'S')
	if err != nil {
		return err
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	s.w, s.sp, s.idx, s.dig = w, sp, idx, dig
	return nil
}

// MarshalBinary encodes d compactly (nonzero digits only). The accumulator
// is regularized as a side effect. It implements encoding.BinaryMarshaler.
func (d *Dense) MarshalBinary() ([]byte, error) {
	d.Regularize()
	var idx []int32
	var dig []int64
	for i, v := range d.dig {
		if v != 0 {
			idx = append(idx, int32(d.minIdx+i))
			dig = append(dig, v)
		}
	}
	buf := appendHeader(nil, 'D', d.w, d.sp)
	return appendComponents(buf, idx, dig), nil
}

// UnmarshalBinary decodes into d, replacing its contents. Components
// outside the double-precision digit range are rejected. It implements
// encoding.BinaryUnmarshaler.
func (d *Dense) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'D')
	if err != nil {
		return err
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	nd := NewDense(w)
	for k, ix := range idx {
		i := int(ix) - nd.minIdx
		if i < 0 || i >= len(nd.dig) {
			return fmt.Errorf("%w: component index %d outside dense range", ErrCodecInvalid, ix)
		}
		nd.dig[i] = dig[k]
	}
	nd.sp = sp
	nd.nAdd = 1
	*d = *nd
	return nil
}

// MarshalBinary encodes a's value as the sparse-component ('S') payload —
// a Window is a sparse superaccumulator with contiguous storage, so the two
// share a wire kind and decode into each other. The window is regularized
// as a side effect. It implements encoding.BinaryMarshaler.
func (a *Window) MarshalBinary() ([]byte, error) {
	return a.ToSparse().MarshalBinary()
}

// UnmarshalBinary decodes a sparse-component payload into a, replacing its
// contents. The decoded index span is bounded by digitBounds, so a
// malicious payload cannot force a large window allocation. It implements
// encoding.BinaryUnmarshaler.
func (a *Window) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'S')
	if err != nil {
		return err
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	a.w, a.sp, a.maxAdd, a.nAdd = w, sp, maxLazyAdds(w), 1
	a.win, a.base = a.win[:0], 0
	a.lc.reset()
	if len(idx) > 0 {
		lo, hi := int(idx[0]), int(idx[len(idx)-1])
		a.base = lo
		a.win = append(a.win, make([]int64, hi-lo+1)...)
		for k, ix := range idx {
			a.win[int(ix)-lo] = dig[k]
		}
	}
	return nil
}

// MarshalBinary encodes s compactly (nonzero chunks only, kind 'N'). The
// accumulator's carries are propagated as a side effect. It implements
// encoding.BinaryMarshaler.
func (s *Small) MarshalBinary() ([]byte, error) {
	s.Propagate()
	var idx []int32
	var dig []int64
	for i, v := range s.dig {
		if v != 0 {
			idx = append(idx, int32(s.minIdx+i))
			dig = append(dig, v)
		}
	}
	buf := appendHeader(nil, 'N', smallWidth, s.sp)
	return appendComponents(buf, idx, dig), nil
}

// UnmarshalBinary decodes into s, replacing its contents. It implements
// encoding.BinaryUnmarshaler.
func (s *Small) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'N')
	if err != nil {
		return err
	}
	if w != smallWidth {
		return fmt.Errorf("%w: small superaccumulator width %d, want %d", ErrCodecInvalid, w, smallWidth)
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	ns := NewSmall()
	for k, ix := range idx {
		i := int(ix) - ns.minIdx
		if i < 0 || i >= len(ns.dig) {
			return fmt.Errorf("%w: component index %d outside small range", ErrCodecInvalid, ix)
		}
		ns.dig[i] = dig[k]
	}
	ns.sp = sp
	ns.nAdd = 1
	*s = *ns
	return nil
}

// MarshalBinary encodes l's value (kind 'L') by folding every exponent bin
// into the dense base and emitting its nonzero digits. It implements
// encoding.BinaryMarshaler.
func (l *Large) MarshalBinary() ([]byte, error) {
	l.fold()
	l.base.Regularize()
	var idx []int32
	var dig []int64
	for i, v := range l.base.dig {
		if v != 0 {
			idx = append(idx, int32(l.base.minIdx+i))
			dig = append(dig, v)
		}
	}
	sp := l.sp
	sp.merge(l.base.sp)
	buf := appendHeader(nil, 'L', l.base.w, sp)
	return appendComponents(buf, idx, dig), nil
}

// UnmarshalBinary decodes into l, replacing its contents. It implements
// encoding.BinaryUnmarshaler.
func (l *Large) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'L')
	if err != nil {
		return err
	}
	if w != DefaultWidth {
		return fmt.Errorf("%w: large superaccumulator base width %d, want %d", ErrCodecInvalid, w, DefaultWidth)
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	nl := NewLarge()
	for k, ix := range idx {
		i := int(ix) - nl.base.minIdx
		if i < 0 || i >= len(nl.base.dig) {
			return fmt.Errorf("%w: component index %d outside dense range", ErrCodecInvalid, ix)
		}
		nl.base.dig[i] = dig[k]
	}
	nl.base.nAdd = 1
	nl.sp = sp
	*l = *nl
	return nil
}
