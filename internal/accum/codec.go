package accum

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format for superaccumulators, so partial sums can be
// exchanged between processes — the role the paper's reducers' "write the
// resulting sparse superaccumulator to the output" plays on HDFS.
//
// Layout (little-endian varints):
//
//	magic   byte = 0xA5
//	kind    byte ('S' sparse, 'D' dense)
//	version byte = 1
//	width   byte (digit width W)
//	flags   byte (bit 0 NaN, bit 1 +Inf, bit 2 −Inf)
//	count   uvarint (number of components)
//	count × { idx zigzag-varint, dig zigzag-varint }
//
// Components must be strictly ascending by index; digits must lie in the
// (α,β) range. Decoding validates everything it reads.

const (
	codecMagic   = 0xA5
	codecVersion = 1
)

// Codec errors.
var (
	ErrCodecTruncated = errors.New("accum: truncated encoding")
	ErrCodecInvalid   = errors.New("accum: invalid encoding")
)

func appendHeader(buf []byte, kind byte, w uint, sp special) []byte {
	var flags byte
	if sp.nan {
		flags |= 1
	}
	if sp.posInf {
		flags |= 2
	}
	if sp.negInf {
		flags |= 4
	}
	return append(buf, codecMagic, kind, codecVersion, byte(w), flags)
}

func parseHeader(data []byte, wantKind byte) (w uint, sp special, rest []byte, err error) {
	if len(data) < 5 {
		return 0, sp, nil, ErrCodecTruncated
	}
	if data[0] != codecMagic {
		return 0, sp, nil, fmt.Errorf("%w: bad magic %#x", ErrCodecInvalid, data[0])
	}
	if data[1] != wantKind {
		return 0, sp, nil, fmt.Errorf("%w: kind %q, want %q", ErrCodecInvalid, data[1], wantKind)
	}
	if data[2] != codecVersion {
		return 0, sp, nil, fmt.Errorf("%w: unsupported version %d", ErrCodecInvalid, data[2])
	}
	w = uint(data[3])
	if w < MinWidth || w > MaxWidth {
		return 0, sp, nil, fmt.Errorf("%w: width %d out of range", ErrCodecInvalid, w)
	}
	flags := data[4]
	if flags > 7 {
		return 0, sp, nil, fmt.Errorf("%w: unknown flags %#x", ErrCodecInvalid, flags)
	}
	sp.nan = flags&1 != 0
	sp.posInf = flags&2 != 0
	sp.negInf = flags&4 != 0
	return w, sp, data[5:], nil
}

func appendComponents(buf []byte, idx []int32, dig []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(idx)))
	for k := range idx {
		buf = binary.AppendVarint(buf, int64(idx[k]))
		buf = binary.AppendVarint(buf, dig[k])
	}
	return buf
}

func parseComponents(data []byte, w uint) (idx []int32, dig []int64, err error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, ErrCodecTruncated
	}
	data = data[n:]
	if count > 1<<24 {
		return nil, nil, fmt.Errorf("%w: absurd component count %d", ErrCodecInvalid, count)
	}
	r := int64(1) << w
	idx = make([]int32, 0, count)
	dig = make([]int64, 0, count)
	var prev int64 = -1 << 40
	for k := uint64(0); k < count; k++ {
		i, n := binary.Varint(data)
		if n <= 0 {
			return nil, nil, ErrCodecTruncated
		}
		data = data[n:]
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, nil, ErrCodecTruncated
		}
		data = data[n:]
		if i <= prev {
			return nil, nil, fmt.Errorf("%w: component indices not strictly ascending", ErrCodecInvalid)
		}
		if i < -1<<30 || i > 1<<30 {
			return nil, nil, fmt.Errorf("%w: component index %d out of range", ErrCodecInvalid, i)
		}
		if d <= -r || d >= r {
			return nil, nil, fmt.Errorf("%w: digit %d outside (α,β) range for W=%d", ErrCodecInvalid, d, w)
		}
		prev = i
		idx = append(idx, int32(i))
		dig = append(dig, d)
	}
	if len(data) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCodecInvalid, len(data))
	}
	return idx, dig, nil
}

// MarshalBinary encodes s. It implements encoding.BinaryMarshaler.
func (s *Sparse) MarshalBinary() ([]byte, error) {
	if !s.IsRegularized() {
		return nil, fmt.Errorf("%w: accumulator not regularized", ErrCodecInvalid)
	}
	buf := appendHeader(nil, 'S', s.w, s.sp)
	return appendComponents(buf, s.idx, s.dig), nil
}

// UnmarshalBinary decodes into s, replacing its contents. It implements
// encoding.BinaryUnmarshaler and validates the full encoding.
func (s *Sparse) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'S')
	if err != nil {
		return err
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	s.w, s.sp, s.idx, s.dig = w, sp, idx, dig
	return nil
}

// MarshalBinary encodes d compactly (nonzero digits only). The accumulator
// is regularized as a side effect. It implements encoding.BinaryMarshaler.
func (d *Dense) MarshalBinary() ([]byte, error) {
	d.Regularize()
	var idx []int32
	var dig []int64
	for i, v := range d.dig {
		if v != 0 {
			idx = append(idx, int32(d.minIdx+i))
			dig = append(dig, v)
		}
	}
	buf := appendHeader(nil, 'D', d.w, d.sp)
	return appendComponents(buf, idx, dig), nil
}

// UnmarshalBinary decodes into d, replacing its contents. Components
// outside the double-precision digit range are rejected. It implements
// encoding.BinaryUnmarshaler.
func (d *Dense) UnmarshalBinary(data []byte) error {
	w, sp, rest, err := parseHeader(data, 'D')
	if err != nil {
		return err
	}
	idx, dig, err := parseComponents(rest, w)
	if err != nil {
		return err
	}
	nd := NewDense(w)
	for k, ix := range idx {
		i := int(ix) - nd.minIdx
		if i < 0 || i >= len(nd.dig) {
			return fmt.Errorf("%w: component index %d outside dense range", ErrCodecInvalid, ix)
		}
		nd.dig[i] = dig[k]
	}
	nd.sp = sp
	nd.nAdd = 1
	*d = *nd
	return nil
}
