package accum

import (
	"math/big"
	"math/rand"
	"testing"
)

// These tests exercise Lemma 1 directly on synthetic (α,β)-regularized
// digit strings — arbitrary signed digits in [−(R−1), R−1] at arbitrary
// indices — rather than on accumulators built from float64 inputs, so the
// merge is validated over the representation's full state space.

// sparseBigValue computes the exact value of a sparse accumulator as a
// big.Float (digits may sit at any index).
func sparseBigValue(s *Sparse, t *testing.T) *big.Float {
	t.Helper()
	v := new(big.Float).SetPrec(8192)
	idx, dig := s.Components()
	for k := range idx {
		d := new(big.Float).SetPrec(8192).SetInt64(dig[k])
		m := new(big.Float).SetPrec(8192)
		e0 := d.MantExp(m)
		if m.Sign() != 0 {
			d.SetMantExp(m, e0+int(idx[k])*int(s.w))
		}
		v.Add(v, d)
	}
	return v
}

// randRegularizedSparse builds a random well-formed sparse accumulator:
// strictly ascending indices, digits in [−(R−1), R−1].
func randRegularizedSparse(r *rand.Rand, w uint, maxLen int) *Sparse {
	s := NewSparse(w)
	mask := int64(1)<<w - 1
	idx := int32(-60 + r.Intn(30))
	n := r.Intn(maxLen)
	for k := 0; k < n; k++ {
		idx += int32(1 + r.Intn(4))
		d := r.Int63() & mask
		if r.Intn(2) == 0 {
			d = -d
		}
		s.idx = append(s.idx, idx)
		s.dig = append(s.dig, d)
	}
	return s
}

func TestLemma1SyntheticMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		w := uint(8 + r.Intn(25))
		a := randRegularizedSparse(r, w, 40)
		b := randRegularizedSparse(r, w, 40)
		va := sparseBigValue(a, t)
		vb := sparseBigValue(b, t)
		m := MergeSparse(a, b)
		if !m.IsRegularized() {
			t.Fatalf("trial %d w=%d: merge violated (α,β) regularity", trial, w)
		}
		want := new(big.Float).SetPrec(8192).Add(va, vb)
		if got := sparseBigValue(m, t); got.Cmp(want) != 0 {
			t.Fatalf("trial %d w=%d: merge value wrong", trial, w)
		}
		// Inputs untouched.
		if va.Cmp(sparseBigValue(a, t)) != 0 || vb.Cmp(sparseBigValue(b, t)) != 0 {
			t.Fatalf("trial %d: merge mutated an input", trial)
		}
	}
}

func TestLemma1WorstCaseDigits(t *testing.T) {
	// All digits at the extreme β = R−1 in both inputs: every component
	// sum is 2β, every position carries, and the result must still be
	// regularized with no cascading.
	for _, w := range []uint{8, 16, 32} {
		mask := int64(1)<<w - 1
		a, b := NewSparse(w), NewSparse(w)
		for i := int32(0); i < 20; i++ {
			a.idx = append(a.idx, i)
			a.dig = append(a.dig, mask)
			b.idx = append(b.idx, i)
			b.dig = append(b.dig, mask)
		}
		m := MergeSparse(a, b)
		if !m.IsRegularized() {
			t.Fatalf("w=%d: worst-case all-β merge not regularized: %v", w, m)
		}
		want := new(big.Float).SetPrec(8192).Add(sparseBigValue(a, t), sparseBigValue(b, t))
		if got := sparseBigValue(m, t); got.Cmp(want) != 0 {
			t.Fatalf("w=%d: worst-case value wrong", w)
		}
		// And the extreme negative −α case.
		for k := range a.dig {
			a.dig[k] = -mask
			b.dig[k] = -mask
		}
		m = MergeSparse(a, b)
		if !m.IsRegularized() {
			t.Fatalf("w=%d: worst-case all-(−α) merge not regularized", w)
		}
		// Alternating ±: maximal carry sign flipping.
		for k := range a.dig {
			if k%2 == 0 {
				a.dig[k], b.dig[k] = mask, mask
			} else {
				a.dig[k], b.dig[k] = -mask, -mask
			}
		}
		want = new(big.Float).SetPrec(8192).Add(sparseBigValue(a, t), sparseBigValue(b, t))
		m = MergeSparse(a, b)
		if !m.IsRegularized() {
			t.Fatalf("w=%d: alternating merge not regularized", w)
		}
		if got := sparseBigValue(m, t); got.Cmp(want) != 0 {
			t.Fatalf("w=%d: alternating value wrong", w)
		}
	}
}

func TestLemma1CaseBoundaries(t *testing.T) {
	// Pᵢ = R−1 is the paper's case-1 boundary (C=1), Pᵢ = −R+1 case 2
	// (C=−1), and Pᵢ = R−2 / −R+2 the no-carry extremes. Each digit pair
	// below hits one boundary exactly.
	w := uint(8)
	r := int64(256)
	pairs := [][2]int64{
		{r - 2, 1},           // P = R−1 → carry 1, W = −1
		{-(r - 2), -1},       // P = −R+1 → carry −1, W = 1
		{r - 2, 0},           // P = R−2 → no carry
		{-(r - 2), 0},        // P = −R+2 → no carry
		{r - 1, r - 1},       // P = 2β
		{-(r - 1), -(r - 1)}, // P = −2α
	}
	for _, p := range pairs {
		a, b := NewSparse(w), NewSparse(w)
		a.idx, a.dig = []int32{0}, []int64{p[0]}
		b.idx, b.dig = []int32{0}, []int64{p[1]}
		m := MergeSparse(a, b)
		if !m.IsRegularized() {
			t.Fatalf("P=%d: not regularized: %v", p[0]+p[1], m)
		}
		want := new(big.Float).SetPrec(200).SetInt64(p[0] + p[1])
		if got := sparseBigValue(m, t); got.Cmp(want) != 0 {
			t.Fatalf("P=%d: value wrong: %v", p[0]+p[1], m)
		}
	}
}
