package accum

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/fpnum"
)

// oracle32 computes the correctly rounded float32 sum with big.Float.
func oracle32(xs []float32) float32 {
	s := new(big.Float).SetPrec(600)
	var pos, neg, nan bool
	for _, x := range xs {
		switch {
		case x != x:
			nan = true
		case math.IsInf(float64(x), 1):
			pos = true
		case math.IsInf(float64(x), -1):
			neg = true
		default:
			s.Add(s, new(big.Float).SetPrec(600).SetFloat64(float64(x)))
		}
	}
	if nan || (pos && neg) {
		return float32(math.NaN())
	}
	if pos {
		return float32(math.Inf(1))
	}
	if neg {
		return float32(math.Inf(-1))
	}
	f, _ := s.Float32()
	return f
}

func sum32(xs []float32) float32 {
	d := NewDense(0)
	for _, x := range xs {
		d.Add(float64(x))
	}
	return d.Round32()
}

func TestRound32Simple(t *testing.T) {
	cases := []struct {
		xs   []float32
		want float32
	}{
		{nil, 0},
		{[]float32{1, 2, 3}, 6},
		{[]float32{1e30, 1, -1e30}, 1},
		{[]float32{math.MaxFloat32, math.MaxFloat32}, float32(math.Inf(1))},
		{[]float32{-math.MaxFloat32, -math.MaxFloat32}, float32(math.Inf(-1))},
		{[]float32{1.401298464324817e-45}, 1.401298464324817e-45}, // smallest subnormal
	}
	for _, c := range cases {
		if got := sum32(c.xs); got != c.want {
			t.Errorf("sum32(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestRound32AvoidsDoubleRounding(t *testing.T) {
	// 1 + 2^-24 + 2^-50: in float64 the sum is 1 + 2^-24 + 2^-50 exactly
	// representable? 1+2^-24 rounds in float32 to a tie; the 2^-50 sticky
	// must break it upward. Converting the correctly rounded float64
	// (1.0000000596046448) to float32 would hit the tie without the sticky
	// information and round to even (1.0), which is wrong.
	xs := []float32{1, 0x1p-24}
	tiny := []float32{0x1p-50, 0x1p-50} // two halves sum to 2^-49 exactly
	all := append(append([]float32(nil), xs...), tiny...)
	want := oracle32(all)
	if got := sum32(all); got != want {
		t.Fatalf("sticky tie: got %g want %g", got, want)
	}
	// Explicit double-rounding probe: exact value 1 + 2^-24 (an exact tie)
	// must round to even = 1; with any positive dust it must round up.
	if got := sum32([]float32{1, 0x1p-24}); got != 1 {
		t.Fatalf("exact tie: got %g want 1", got)
	}
	d := NewDense(0)
	d.Add(1)
	d.Add(0x1p-24)
	d.Add(0x1p-1074) // dust far below float32 range, still must matter
	if got := d.Round32(); got != 1+0x1p-23 {
		t.Fatalf("dust-broken tie: got %g want %g", got, 1+0x1p-23)
	}
}

func TestRound32Subnormals(t *testing.T) {
	// float32 subnormal arithmetic at the very bottom of the range.
	den := float32(math.Ldexp(1, -149))
	cases := []struct {
		xs   []float32
		want float32
	}{
		{[]float32{den, den}, 2 * den},
		{[]float32{den / 1, -den}, 0},
		{[]float32{0x1p-126, -0x1p-127}, 0x1p-127}, // normal − half = subnormal boundary
	}
	for _, c := range cases {
		if got := sum32(c.xs); got != c.want {
			t.Errorf("sum32(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
	// A float64-scale value far below float32 subnormals rounds to zero,
	// but a half-boundary value with sticky rounds to the smallest
	// subnormal.
	d := NewDense(0)
	d.Add(0x1p-151) // quarter of the smallest float32 subnormal step
	if got := d.Round32(); got != 0 {
		t.Fatalf("far-below: got %g want 0", got)
	}
	d.Reset()
	d.Add(0x1p-150) // exactly half the smallest subnormal: tie to even (0)
	if got := d.Round32(); got != 0 {
		t.Fatalf("half tie: got %g want 0", got)
	}
	d.Reset()
	d.Add(0x1p-150)
	d.Add(0x1p-200) // sticky breaks the tie
	if got := d.Round32(); got != den {
		t.Fatalf("half+dust: got %g want %g", got, den)
	}
}

func TestRound32MatchesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(100)
		xs := make([]float32, n)
		for i := range xs {
			xs[i] = float32(math.Ldexp(r.Float64()*2-1, r.Intn(260)-130))
		}
		got, want := sum32(xs), oracle32(xs)
		if got != want && !(got != got && want != want) { // NaN == NaN here
			t.Fatalf("trial %d: sum32=%g oracle=%g", trial, got, want)
		}
	}
}

func TestRound32Quick(t *testing.T) {
	f := func(raw []uint32) bool {
		xs := make([]float32, 0, len(raw))
		for _, b := range raw {
			x := math.Float32frombits(b)
			if x != x || math.IsInf(float64(x), 0) {
				continue
			}
			xs = append(xs, x)
		}
		return sum32(xs) == oracle32(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRound32AllRepresentations(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(200)
		xs64 := make([]float64, n)
		xs32 := make([]float32, n)
		for i := range xs64 {
			xs32[i] = float32(math.Ldexp(r.Float64()*2-1, r.Intn(200)-100))
			xs64[i] = float64(xs32[i])
		}
		want := oracle32(xs32)
		d := NewDense(uint(8 + r.Intn(25)))
		d.AddSlice(xs64)
		if got := d.Round32(); got != want {
			t.Fatalf("dense.Round32=%g oracle=%g", got, want)
		}
		w := NewWindow(0)
		w.AddSlice(xs64)
		if got := w.Round32(); got != want {
			t.Fatalf("window.Round32=%g oracle=%g", got, want)
		}
		if got := w.ToSparse().Round32(); got != want {
			t.Fatalf("sparse.Round32=%g oracle=%g", got, want)
		}
	}
}

func TestRoundToFormatConsistentWithRoundFromParts(t *testing.T) {
	// For Binary64 the generic rounder must agree with the historical one.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		sig := r.Uint64() & (1<<53 - 1)
		e := r.Intn(2000) - 1074
		round := r.Intn(2) == 1
		sticky := r.Intn(2) == 1
		neg := r.Intn(2) == 1
		a := fpnum.RoundFromParts(neg, sig, e, round, sticky)
		b := fpnum.RoundToFormat(fpnum.Binary64, neg, sig, e, round, sticky)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("sig=%#x e=%d r=%v s=%v: RoundFromParts=%g RoundToFormat=%g",
				sig, e, round, sticky, a, b)
		}
	}
}

func TestRoundToFormatCustomWidth(t *testing.T) {
	// A made-up binary16-like format (11 significand bits): check a few
	// hand-computed roundings.
	f16 := fpnum.Format{SigBits: 11, MinExp: -24, MaxExp: 5}
	d := NewDense(0)
	d.Add(1)
	d.Add(0x1p-11) // exact tie at 11-bit significand: to even = 1
	d.Regularize()
	dig, minIdx := d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); got != 1 {
		t.Fatalf("f16 tie: got %g want 1", got)
	}
	d.Add(0x1p-30) // sticky
	d.Regularize()
	dig, minIdx = d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); got != 1+0x1p-10 {
		t.Fatalf("f16 tie+sticky: got %g want %g", got, 1+0x1p-10)
	}
	// Within range: binary16's largest finite value is (2^11−1)·2^5 = 65504.
	d.Reset()
	d.Add(65504)
	d.Regularize()
	dig, minIdx = d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); got != 65504 {
		t.Fatalf("f16 max: got %g want 65504", got)
	}
	// Overflow for the tiny format: 2^17 exceeds 65504 decisively.
	d.Reset()
	d.Add(0x1p17)
	d.Regularize()
	dig, minIdx = d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); !math.IsInf(got, 1) {
		t.Fatalf("f16 overflow: got %g want +Inf", got)
	}
	// The boundary: 65504 + 16 = 65520 is the exact tie to 2^16, which
	// rounds (to even) up to infinity, while 65504 + 15.9… rounds back.
	d.Reset()
	d.Add(65504)
	d.Add(16)
	d.Regularize()
	dig, minIdx = d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); !math.IsInf(got, 1) {
		t.Fatalf("f16 tie at overflow: got %g want +Inf", got)
	}
	d.Reset()
	d.Add(65504)
	d.Add(15)
	d.Regularize()
	dig, minIdx = d.Digits()
	if got := RoundDigitStringTo(dig, minIdx, d.Width(), f16); got != 65504 {
		t.Fatalf("f16 below tie: got %g want 65504", got)
	}
}
