package accum

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzBytesToFloats reinterprets data as little-endian float64s, capped so
// a large fuzz input cannot make one execution arbitrarily slow.
func fuzzBytesToFloats(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return xs
}

// FuzzCodecRoundTrip is the codec half of the fuzz gauntlet, with two
// obligations per input:
//
//  1. Arbitrary bytes never panic any decoder — they either decode or
//     error. When a Sparse payload does decode, re-encoding it must
//     round-trip to the same exact value.
//  2. Accumulators built from the input (reinterpreted as float64s, with
//     a width byte) must encode and decode to bit-identical values for
//     every representation: sparse, dense, window, small, large.
func FuzzCodecRoundTrip(f *testing.F) {
	// Valid encodings, truncations, and garbage seed the "decode anything"
	// path; float payloads seed the build-encode-decode path.
	seed := func(xs []float64, w uint) {
		win := NewWindow(w)
		win.AddSlice(xs)
		if data, err := win.ToSparse().MarshalBinary(); err == nil {
			f.Add(data)
		}
		d := NewDense(w)
		d.AddSlice(xs)
		if data, err := d.MarshalBinary(); err == nil {
			f.Add(data)
		}
	}
	seed(nil, 32)
	seed([]float64{1e100, 1, -1e100}, 32)
	seed([]float64{math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64}, 16)
	seed([]float64{math.SmallestNonzeroFloat64, -2 * math.SmallestNonzeroFloat64}, 8)
	seed([]float64{math.Inf(1), math.NaN()}, 24)
	f.Add([]byte{})
	f.Add([]byte{0xA5})
	f.Add([]byte{0xA5, 'S', 1, 32, 0, 0x80, 0x80, 0x80, 0x08})
	f.Add([]byte{0xA5, 'D', 1, 64, 0, 0})
	f.Add([]byte{0xA5, 'N', 1, 32, 7, 1, 2, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Obligation 1: decoding arbitrary bytes never panics, and a
		// successful Sparse decode re-encodes to the same exact value.
		var s Sparse
		if err := s.UnmarshalBinary(data); err == nil {
			want := s.Round()
			re, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("decoded payload failed to re-encode: %v", err)
			}
			var s2 Sparse
			if err := s2.UnmarshalBinary(re); err != nil {
				t.Fatalf("re-encoded payload failed to decode: %v", err)
			}
			got := s2.Round()
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("re-encode changed value: %g -> %g", want, got)
			}
		}
		var d Dense
		_ = d.UnmarshalBinary(data)
		var w Window
		_ = w.UnmarshalBinary(data)
		var sm Small
		_ = sm.UnmarshalBinary(data)
		l := NewLarge()
		_ = l.UnmarshalBinary(data)

		// Obligation 2: encode(build(floats)) decodes bit-identically.
		if len(data) < 9 {
			return
		}
		width := uint(8 + int(data[0])%25) // [8, 32]
		xs := fuzzBytesToFloats(data[1:], 128)

		check := func(name string, enc func() ([]byte, error), dec func([]byte) (float64, error), want float64) {
			blob, err := enc()
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			got, err := dec(blob)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s: round-trip %g != %g (width %d, xs %v)", name, got, want, width, xs)
			}
		}

		win := NewWindow(width)
		win.AddSlice(xs)
		want := win.Round()
		check("window", win.MarshalBinary, func(b []byte) (float64, error) {
			var w2 Window
			if err := w2.UnmarshalBinary(b); err != nil {
				return 0, err
			}
			return w2.Round(), nil
		}, want)

		sp := win.ToSparse()
		check("sparse", sp.MarshalBinary, func(b []byte) (float64, error) {
			var s2 Sparse
			if err := s2.UnmarshalBinary(b); err != nil {
				return 0, err
			}
			return s2.Round(), nil
		}, want)

		dd := NewDense(width)
		dd.AddSlice(xs)
		check("dense", dd.MarshalBinary, func(b []byte) (float64, error) {
			var d2 Dense
			if err := d2.UnmarshalBinary(b); err != nil {
				return 0, err
			}
			return d2.Round(), nil
		}, want)

		ss := NewSmall()
		ss.AddSlice(xs)
		check("small", ss.MarshalBinary, func(b []byte) (float64, error) {
			var s2 Small
			if err := s2.UnmarshalBinary(b); err != nil {
				return 0, err
			}
			return s2.Round(), nil
		}, want)

		ll := NewLarge()
		ll.AddSlice(xs)
		check("large", ll.MarshalBinary, func(b []byte) (float64, error) {
			l2 := NewLarge()
			if err := l2.UnmarshalBinary(b); err != nil {
				return 0, err
			}
			return l2.Round(), nil
		}, want)
	})
}
