package httpd

import (
	"flag"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServerDefaults(t *testing.T) {
	hs := Timeouts{}.Server(http.NotFoundHandler())
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", hs.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if hs.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", hs.ReadTimeout, DefaultReadTimeout)
	}
	if hs.WriteTimeout != DefaultWriteTimeout {
		t.Errorf("WriteTimeout = %v, want %v", hs.WriteTimeout, DefaultWriteTimeout)
	}
	if hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", hs.IdleTimeout, DefaultIdleTimeout)
	}
	if hs.Handler == nil {
		t.Error("Handler not installed")
	}
}

func TestServerOverridesAndDisables(t *testing.T) {
	hs := Timeouts{ReadHeader: time.Second, Read: -1, Write: 2 * time.Second, Idle: -1}.Server(nil)
	if hs.ReadHeaderTimeout != time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 1s", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != 0 {
		t.Errorf("ReadTimeout = %v, want 0 (negative disables)", hs.ReadTimeout)
	}
	if hs.WriteTimeout != 2*time.Second {
		t.Errorf("WriteTimeout = %v, want 2s", hs.WriteTimeout)
	}
	if hs.IdleTimeout != 0 {
		t.Errorf("IdleTimeout = %v, want 0 (negative disables)", hs.IdleTimeout)
	}
}

func TestFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tmo := Flags(fs)
	if err := fs.Parse([]string{"-read-timeout", "5s", "-idle-timeout", "-1s"}); err != nil {
		t.Fatal(err)
	}
	if tmo.Read != 5*time.Second || tmo.Idle != -time.Second || tmo.ReadHeader != 0 || tmo.Write != 0 {
		t.Fatalf("parsed %+v", *tmo)
	}
	hs := tmo.Server(nil)
	if hs.ReadTimeout != 5*time.Second || hs.IdleTimeout != 0 || hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Fatalf("server %+v", hs)
	}
}
