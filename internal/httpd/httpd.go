// Package httpd centralizes the hardened http.Server configuration the
// daemons share. A bare http.Server has no timeouts at all: a peer that
// sends headers and then stalls (slowloris), trickles a body forever,
// or never reads its response pins a connection and its goroutine
// indefinitely. cmd/sumd and cmd/sumproxy both serve untrusted
// networks, so they take the same four knobs, with the same flag names
// and the same defaults, from here.
package httpd

import (
	"flag"
	"net/http"
	"time"
)

// Defaults. ReadTimeout and WriteTimeout are generous because legal
// requests carry multi-MiB keyed envelopes; they exist to bound
// malice, not to police slow-but-live clients.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 60 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// Timeouts is the connection-lifecycle configuration for one server.
// The zero value means "library defaults" for every field; a negative
// field disables that timeout explicitly.
type Timeouts struct {
	// ReadHeader bounds reading one request's header block.
	ReadHeader time.Duration
	// Read bounds reading one whole request, body included.
	Read time.Duration
	// Write bounds writing one whole response, measured from the end of
	// header reading.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests.
	Idle time.Duration
}

func pick(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0 // explicit "no timeout"
	case v == 0:
		return def
	default:
		return v
	}
}

// Flags registers the four timeout flags on fs and returns the Timeouts
// they fill. Call before fs.Parse; read after.
func Flags(fs *flag.FlagSet) *Timeouts {
	t := &Timeouts{}
	fs.DurationVar(&t.ReadHeader, "read-header-timeout", 0, "server: limit on reading a request's headers (0 = 10s, negative = none)")
	fs.DurationVar(&t.Read, "read-timeout", 0, "server: limit on reading a whole request including its body (0 = 60s, negative = none)")
	fs.DurationVar(&t.Write, "write-timeout", 0, "server: limit on writing a whole response (0 = 60s, negative = none)")
	fs.DurationVar(&t.Idle, "idle-timeout", 0, "server: limit on an idle keep-alive connection (0 = 120s, negative = none)")
	return t
}

// Server returns an http.Server for h with the timeouts applied.
func (t Timeouts) Server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: pick(t.ReadHeader, DefaultReadHeaderTimeout),
		ReadTimeout:       pick(t.Read, DefaultReadTimeout),
		WriteTimeout:      pick(t.Write, DefaultWriteTimeout),
		IdleTimeout:       pick(t.Idle, DefaultIdleTimeout),
	}
}
