// End-to-end tests of the async ingestion front-end over real HTTP:
// group-commit exactness under concurrent clients, forced 429s with
// retrying clients, the backpressure contract (429 leaves no trace),
// and the Prometheus exposition (lint conformance + cross-scrape
// monotonicity — the CI metrics-lint gate).
package sumdsrv_test

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/gen"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

// TestAsyncE2E drives N concurrent clients through the batched ingest
// path for several shard counts, with a queue tight enough to force
// 429s and a latency budget short enough to force deadline flushes.
// Clients retry shed requests with jittered backoff; whatever subset
// ends up accepted, the served sum must be bit-identical to parsum.Sum
// over exactly that multiset — and the client-side retry ledger must
// reconcile with the server's rejection ledger.
func TestAsyncE2E(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 12000, Delta: 1200, Seed: 31}).Slice()
	for _, shards := range []int{1, 4, 8} {
		for _, retries := range []int{0, 25} {
			c, hs := startService(t, sumdsrv.Options{
				Shards:   shards,
				Async:    true,
				QueueLen: 2, // tight: concurrent clients WILL collide
				MaxBatch: 512,
				MaxDelay: time.Millisecond,
				Flushers: 2,
			})
			c.Retry429 = retries
			c.RetryBase = 200 * time.Microsecond

			const clients = 8
			parts := splitSlices(xs, clients)
			accepted := make([][]float64, clients)
			rejectedReqs := make([]int64, clients)
			manual429s := make([]int64, clients)
			ctx := context.Background()
			var wg sync.WaitGroup
			for w, part := range parts {
				wg.Add(1)
				go func(w int, part []float64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(7*w + shards)))
					for len(part) > 0 {
						n := 1 + r.Intn(64)
						if n > len(part) {
							n = len(part)
						}
						chunk := part[:n]
						part = part[n:]
						var err error
						if w%3 == 2 && r.Intn(4) == 0 {
							// Deletions ride the same batcher; subtracting
							// chunk then adding it twice nets one insertion
							// of the chunk, keeping the oracle simple while
							// exercising the sub path end-to-end.
							err = c.SubBatch(ctx, chunk)
							if err == nil {
								absorbed, err2 := addUntilAccepted(ctx, c, chunk)
								manual429s[w] += absorbed
								if err2 != nil {
									t.Errorf("client %d: re-add after sub: %v", w, err2)
									return
								}
							}
						}
						if err == nil {
							err = c.AddBatch(ctx, chunk)
						}
						if err == nil {
							accepted[w] = append(accepted[w], chunk...)
						} else {
							rejectedReqs[w]++
						}
					}
				}(w, part)
			}
			wg.Wait()

			var multiset []float64
			var totalRejected, totalManual int64
			for w := range accepted {
				multiset = append(multiset, accepted[w]...)
				totalRejected += rejectedReqs[w]
				totalManual += manual429s[w]
			}
			want := parsum.Sum(multiset)
			got, err := c.Sum(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("shards=%d retries=%d: served sum %g (%016x) != parsum.Sum over accepted multiset %g (%016x)",
					shards, retries, got, math.Float64bits(got), want, math.Float64bits(want))
			}

			st := fetchStats(t, hs.URL)
			if st.Async == nil {
				t.Fatalf("shards=%d: async server served no async stats", shards)
			}
			// Every 429 the server recorded was either retried by the
			// client's backoff loop, absorbed by a manual retry, or
			// surfaced as a permanently rejected request.
			if got, wantLedger := st.Async.Rejected, c.Retried429()+totalManual+totalRejected; got > wantLedger {
				t.Errorf("shards=%d retries=%d: server rejected %d > client retries %d + manual %d + failures %d",
					shards, retries, got, c.Retried429(), totalManual, totalRejected)
			}
			if retries > 0 && st.Async.DeadlineFlushes == 0 && st.Async.SizeFlushes == 0 {
				t.Errorf("shards=%d: no flushes recorded at all: %+v", shards, st.Async)
			}
			if st.Async.FlushedRequests != st.Async.Enqueued || st.Async.QueueDepth != 0 {
				t.Errorf("shards=%d: quiescent ledger not drained: %+v", shards, st.Async)
			}
		}
	}
}

// addUntilAccepted retries an AddBatch past the client's own retry
// budget — used where the test must guarantee acceptance to keep its
// oracle bookkeeping exact. It returns how many 429s it absorbed, so
// the caller can reconcile the server's rejection ledger.
func addUntilAccepted(ctx context.Context, c *sumdclient.Client, xs []float64) (int64, error) {
	var absorbed int64
	for {
		err := c.AddBatch(ctx, xs)
		if err == nil {
			return absorbed, nil
		}
		// sumdclient renders non-2xx as "sumd: HTTP <code>: ...".
		if !strings.Contains(err.Error(), "HTTP 429") {
			return absorbed, err
		}
		absorbed++
		time.Sleep(200 * time.Microsecond)
	}
}

func fetchStats(t *testing.T, base string) sumdsrv.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sumdsrv.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func scrape(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != batch.PromContentType {
		t.Fatalf("Content-Type %q, want %q", ct, batch.PromContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMetricsLint is the CI metrics-lint gate run in-process: two
// scrapes of a loaded async server (and one of a sync server) must pass
// the format linter, and every counter series must be monotone across
// the scrapes.
func TestMetricsLint(t *testing.T) {
	c, hs := startService(t, sumdsrv.Options{
		Shards: 2, Async: true, QueueLen: 4, MaxBatch: 64, MaxDelay: time.Millisecond,
	})
	ctx := context.Background()
	c.Retry429 = 50
	c.RetryBase = 100 * time.Microsecond
	xs := gen.New(gen.Config{Dist: gen.Random, N: 2000, Delta: 300, Seed: 5}).Slice()
	for _, chunk := range splitSlices(xs, 40) {
		if err := c.AddBatch(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}
	first, err := batch.LintProm(scrape(t, hs.URL))
	if err != nil {
		t.Fatalf("first scrape failed lint: %v", err)
	}
	for _, name := range []string{
		"sumd_up", "sumd_values_total", "sumd_ingest_enqueued_total",
		"sumd_ingest_flush_cause_total", "sumd_ingest_flush_size",
		"sumd_ingest_flush_latency_seconds", "sumd_ingest_queue_depth",
	} {
		if first[name] == nil {
			t.Errorf("async exposition is missing family %s", name)
		}
	}
	for _, chunk := range splitSlices(xs, 40) {
		if err := c.AddBatch(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Sum(ctx); err != nil {
		t.Fatal(err)
	}
	second, err := batch.LintProm(scrape(t, hs.URL))
	if err != nil {
		t.Fatalf("second scrape failed lint: %v", err)
	}
	if err := batch.CheckMonotone(first, second); err != nil {
		t.Fatalf("counters not monotone across scrapes: %v", err)
	}

	// Sync mode must also serve a conformant (smaller) exposition.
	_, syncSrv := startService(t, sumdsrv.Options{Shards: 1})
	fams, err := batch.LintProm(scrape(t, syncSrv.URL))
	if err != nil {
		t.Fatalf("sync exposition failed lint: %v", err)
	}
	if fams["sumd_ingest_enqueued_total"] != nil {
		t.Error("sync exposition leaked async-only families")
	}
}

// gatedSink wraps the real accumulator and parks the first AddBatch on
// a gate, holding that flush open until the test releases it. While it
// is parked the flusher cannot drain, so the bounded queue wedges
// deterministically.
type gatedSink struct {
	real    batch.Sink
	entered chan struct{} // closed once a flush is parked on the gate
	gate    chan struct{} // close to release the parked flush
	once    sync.Once
}

func (g *gatedSink) AddBatch(xs []float64) {
	g.once.Do(func() {
		close(g.entered)
		<-g.gate
	})
	g.real.AddBatch(xs)
}

func (g *gatedSink) SubBatch(xs []float64) { g.real.SubBatch(xs) }

// TestRejectedRequestLeavesServiceUntouched pins the 429 contract over
// real HTTP, deterministically: a gated sink holds request A's flush
// open, request B fills the single queue slot, so request C MUST be
// shed — with a usable Retry-After, and without leaving any trace in
// the sum or the accepted ledger.
func TestRejectedRequestLeavesServiceUntouched(t *testing.T) {
	gs := &gatedSink{entered: make(chan struct{}), gate: make(chan struct{})}
	c, hs := startService(t, sumdsrv.Options{
		Shards: 1, Async: true,
		QueueLen: 1,
		MaxBatch: 1, // flush each request alone, immediately
		MaxDelay: time.Second,
		WrapSink: func(real batch.Sink) batch.Sink { gs.real = real; return gs },
	})
	ctx := context.Background()

	// A is picked up by the flusher and parks inside the sink.
	resA := make(chan error, 1)
	go func() { resA <- c.AddBatch(ctx, []float64{1}) }()
	select {
	case <-gs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flush of request A never reached the sink")
	}

	// B occupies the single queue slot behind the parked flush.
	resB := make(chan error, 1)
	go func() { resB <- c.AddBatch(ctx, []float64{2}) }()
	deadline := time.Now().Add(5 * time.Second)
	for fetchStats(t, hs.URL).Async.Enqueued < 2 {
		if time.Now().After(deadline) {
			t.Fatal("request B was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// C finds the queue full and must be shed without side effects.
	resp, err := http.Post(hs.URL+"/v1/add", "application/json", bytesReader([]byte(`{"values":[99]}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("wedged add: got %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After (got %q)", ra)
	}

	close(gs.gate) // release the parked flush; A and B must now commit
	for i, ch := range []chan error{resA, resB} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("parked request %d failed: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("parked request %d never completed after release", i)
		}
	}

	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := parsum.Sum([]float64{1, 2}); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("sum %g includes the rejected batch (want %g)", got, want)
	}
	st := fetchStats(t, hs.URL)
	if st.Rejected != 1 || st.Async.Rejected != 1 {
		t.Fatalf("rejection ledgers: server=%d batcher=%d, want 1 and 1", st.Rejected, st.Async.Rejected)
	}
	if st.Values != 2 || st.Batches != 2 {
		t.Fatalf("accepted ledger polluted by the 429: %+v", st)
	}
}

// TestResetRacingFlushes races POST /v1/reset against in-flight async
// adds (every value lands exactly once and a reset wipes whatever had
// landed, so no interleaving can corrupt state — the race detector
// checks the locking, the ledger check the accounting), then pins the
// quiesced semantics: after a drain + reset, the served sum covers
// exactly the post-reset adds.
func TestResetRacingFlushes(t *testing.T) {
	c, hs := startService(t, sumdsrv.Options{
		Shards: 4, Async: true,
		QueueLen: 16, MaxBatch: 64, MaxDelay: 200 * time.Microsecond,
	})
	ctx := context.Background()
	c.Retry429 = 100
	c.RetryBase = 100 * time.Microsecond

	// Phase 1: adds racing resets.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.AddBatch(ctx, []float64{float64(g), 1e100, -1e100}); err != nil {
					t.Errorf("racing add: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Post(hs.URL+"/v1/reset", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	// Quiesce: every admitted request flushed, queue empty — the racing
	// phase must not have dropped or double-counted a batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fetchStats(t, hs.URL).Async
		if st.QueueDepth == 0 && st.FlushedRequests == st.Enqueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batcher never quiesced after racing resets: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 2, deterministic: reset the quiescent service, then the sum
	// must cover exactly what was added afterwards.
	resp, err := http.Post(hs.URL+"/v1/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	xs := gen.New(gen.Config{Dist: gen.Random, N: 5000, Delta: 600, Seed: 17}).Slice()
	for _, chunk := range splitSlices(xs, 25) {
		if err := c.AddBatch(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := parsum.Sum(xs); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("post-reset sum %g (%016x) != parsum.Sum of post-reset adds %g (%016x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestStatsSnapshotConsistency is the torn-read regression test: the
// server-level counters must come from one lock-consistent snapshot, so
// a /v1/stats racing accepted 1-value adds can never report
// values != batches — which the old per-field atomics allowed.
func TestStatsSnapshotConsistency(t *testing.T) {
	c, hs := startService(t, sumdsrv.Options{Shards: 2})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.AddBatch(ctx, []float64{float64(g)}); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(g)
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := fetchStats(t, hs.URL)
		if st.Values != st.Batches {
			t.Fatalf("torn stats snapshot: values=%d batches=%d (1-value batches, so they must match)",
				st.Values, st.Batches)
		}
	}
	close(stop)
	wg.Wait()
}
