// Crash-injection matrix for the durability contract: every acked
// mutation must survive a process kill at any point at or after the ack.
// The harness snapshots the WAL directory's bytes after each acked
// operation — exactly what a kill -9 at that instant would leave on disk
// (fsync=off keeps the page cache coherent with what a same-machine
// restart reads) — then recovers a fresh server from each snapshot and
// compares the served bits against an exact oracle over the acked
// prefix. A torn variant shaves bytes off the newest segment to land
// mid-frame: recovery must truncate the torn frame and reproduce the
// previous prefix exactly, never error and never invent values.
package sumdsrv_test

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/gen"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

// walBytes reads every file in the WAL directory into memory — the
// simulated on-disk state at a kill point.
func walBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[string][]byte, len(ents))
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		state[e.Name()] = data
	}
	return state
}

// restoreWAL materializes a captured directory state into a fresh dir.
func restoreWAL(t *testing.T, state map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range state {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// shaveTail cuts n bytes off the newest segment in state, simulating a
// kill mid-frame-write. Returns false when no segment has n bytes to
// lose.
func shaveTail(state map[string][]byte, n int) bool {
	newest := ""
	for name := range state {
		if strings.HasSuffix(name, ".seg") && name > newest {
			newest = name
		}
	}
	if newest == "" || len(state[newest]) < n {
		return false
	}
	state[newest] = state[newest][:len(state[newest])-n]
	return true
}

// crashOp is one acked mutation plus the oracle bits after it.
type crashOp struct {
	wantSum  uint64            // global sum bits after this op
	wantKeys map[string]uint64 // per-key sum bits after this op
}

func TestCrashRecoveryMatrix(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 240, Delta: 60, Seed: 401}).Slice()
	chunks := splitSlices(xs, 8)
	keys := []string{"alpha", "beta", "gamma"}

	for _, tc := range []struct {
		name  string
		async bool
		keyed bool
	}{
		{"sync-plain", false, false},
		{"sync-keyed", false, true},
		{"async-plain", true, false},
		{"async-keyed", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opt := sumdsrv.Options{
				Shards:   2,
				WALDir:   dir,
				WALFsync: "off",
			}
			if tc.keyed {
				opt.KeyPartitions = 2
			}
			if tc.async {
				opt.Async = true
				opt.QueueLen = 16
				opt.MaxBatch = 64
				opt.MaxDelay = time.Millisecond
			}
			c, _ := startService(t, opt)
			ctx := context.Background()

			// Drive the acked sequence, capturing the WAL bytes and the
			// oracle after every ack. Plain cells alternate add/sub so
			// retraction frames are replayed too; keyed cells rotate keys.
			oracle, err := parsum.NewAccumulatorEngine("dense")
			if err != nil {
				t.Fatal(err)
			}
			keyOracle := map[string]*parsum.Accumulator{}
			var states []map[string][]byte
			var ops []crashOp
			for i, chunk := range chunks {
				if tc.keyed {
					key := keys[i%len(keys)]
					if err := c.AddKeyed(ctx, key, chunk); err != nil {
						t.Fatal(err)
					}
					if keyOracle[key] == nil {
						keyOracle[key], _ = parsum.NewAccumulatorEngine("dense")
					}
					keyOracle[key].AddSlice(chunk)
				} else if i%3 == 2 {
					if err := c.SubBatch(ctx, chunk); err != nil {
						t.Fatal(err)
					}
					oracle.SubSlice(chunk)
				} else {
					if err := c.AddBatch(ctx, chunk); err != nil {
						t.Fatal(err)
					}
					oracle.AddSlice(chunk)
				}
				op := crashOp{wantSum: math.Float64bits(oracle.Round())}
				if tc.keyed {
					op.wantKeys = map[string]uint64{}
					for k, acc := range keyOracle {
						op.wantKeys[k] = math.Float64bits(acc.Round())
					}
				}
				states = append(states, walBytes(t, dir))
				ops = append(ops, op)
			}

			// Kill at every frame boundary: the state captured after ack i
			// must recover to exactly the prefix ops[0..i].
			for i, state := range states {
				verifyRecovered(t, restoreWAL(t, state), tc.keyed, ops[i], false)
			}

			// Kill mid-frame: shaving 3 bytes off the newest segment tears
			// the last frame, so recovery must land on the previous ack's
			// bits and report the torn tail. (Each acked op appends one
			// frame; no snapshots run in this test.)
			for i := 1; i < len(states); i++ {
				st := make(map[string][]byte, len(states[i]))
				for k, v := range states[i] {
					st[k] = append([]byte(nil), v...)
				}
				if !shaveTail(st, 3) {
					t.Fatalf("op %d: no segment bytes to shave", i)
				}
				verifyRecovered(t, restoreWAL(t, st), tc.keyed, ops[i-1], true)
			}
		})
	}
}

// verifyRecovered opens a fresh server on the recovered WAL directory
// and compares every served bit against the oracle for that prefix.
func verifyRecovered(t *testing.T, dir string, keyed bool, want crashOp, torn bool) {
	t.Helper()
	opt := sumdsrv.Options{Shards: 2, WALDir: dir, WALFsync: "off"}
	if keyed {
		opt.KeyPartitions = 2
	}
	srv, err := sumdsrv.New(opt)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	t.Cleanup(srv.Close)
	if torn && !srv.Recovery().Torn {
		t.Error("recovery did not report the torn tail")
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := sumdclient.New(hs.URL, hs.Client())
	ctx := context.Background()
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != want.wantSum {
		t.Errorf("recovered sum %x, want %x", math.Float64bits(got), want.wantSum)
	}
	for key, bits := range want.wantKeys {
		kv, ok, err := c.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("recovered SumKey(%q): ok=%t err=%v", key, ok, err)
		}
		if math.Float64bits(kv) != bits {
			t.Errorf("recovered key %q: %x, want %x", key, math.Float64bits(kv), bits)
		}
	}
}

// TestCountersMonotoneAcrossReset is the ledger contract: /v1/reset
// wipes the accumulated state but never the observability counters, so
// a scrape before the reset and a scrape after must still satisfy the
// CI monotonicity gate.
func TestCountersMonotoneAcrossReset(t *testing.T) {
	dir := t.TempDir()
	c, hs := startService(t, sumdsrv.Options{
		Shards: 2, KeyPartitions: 2, WALDir: dir, WALFsync: "off",
	})
	ctx := context.Background()
	xs := gen.New(gen.Config{Dist: gen.Random, N: 500, Delta: 100, Seed: 9}).Slice()
	if err := c.AddBatch(ctx, xs); err != nil {
		t.Fatal(err)
	}
	if err := c.AddKeyed(ctx, "k", xs[:10]); err != nil {
		t.Fatal(err)
	}
	before, err := batch.LintProm(scrape(t, hs.URL))
	if err != nil {
		t.Fatalf("pre-reset scrape failed lint: %v", err)
	}
	if err := c.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatch(ctx, xs[:3]); err != nil {
		t.Fatal(err)
	}
	after, err := batch.LintProm(scrape(t, hs.URL))
	if err != nil {
		t.Fatalf("post-reset scrape failed lint: %v", err)
	}
	if err := batch.CheckMonotone(before, after); err != nil {
		t.Fatalf("reset rewound a counter: %v", err)
	}
	// And the reset itself must be journaled: a restart on the same WAL
	// must come back empty-plus-the-post-reset-adds, not resurrect the
	// wiped values.
	verifyRecovered(t, restoreWAL(t, walBytes(t, dir)), false,
		crashOp{wantSum: math.Float64bits(parsum.Sum(xs[:3]))}, false)
}
