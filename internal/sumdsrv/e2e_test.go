// End-to-end test of the distributed aggregation subsystem: a sumd
// service started in-process via httptest, driven by concurrent
// sumdclient workers pushing serialized partials over real HTTP. The
// acceptance property is the paper's reproducibility claim carried across
// the socket: the final sum is bit-identical to parsum.Sum of the
// concatenated input, for every shard count, client count, and push
// interleaving exercised here.
package sumdsrv_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func startService(t *testing.T, opt sumdsrv.Options) (*sumdclient.Client, *httptest.Server) {
	t.Helper()
	srv, err := sumdsrv.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return sumdclient.New(hs.URL, hs.Client()), hs
}

// splitSlices cuts xs into n contiguous slices of roughly equal length.
func splitSlices(xs []float64, n int) [][]float64 {
	out := make([][]float64, 0, n)
	per := len(xs) / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = len(xs)
		}
		out = append(out, xs[lo:hi])
	}
	return out
}

func TestE2EDistributedSumBitIdentical(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 30000, Delta: 1500, Seed: 77}).Slice()
	want := parsum.Sum(xs)
	ctx := context.Background()

	for _, shards := range []int{1, 3} {
		for _, clients := range []int{1, 2, 4, 8} {
			c, _ := startService(t, sumdsrv.Options{Shards: shards})
			slices := splitSlices(xs, clients)
			var wg sync.WaitGroup
			for w, part := range slices {
				wg.Add(1)
				go func(w int, part []float64) {
					defer wg.Done()
					co, err := c.NewCombiner("")
					if err != nil {
						t.Error(err)
						return
					}
					// Vary the flush cadence per worker so pushes interleave
					// mid-stream, not only at the end.
					r := rand.New(rand.NewSource(int64(1000*w + clients)))
					for len(part) > 0 {
						n := 1 + r.Intn(len(part))
						co.AddSlice(part[:n])
						part = part[n:]
						if err := co.Flush(ctx); err != nil {
							t.Error(err)
							return
						}
					}
				}(w, part)
			}
			wg.Wait()
			got, err := c.Sum(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("shards=%d clients=%d: distributed=%g (bits %x) sequential=%g (bits %x)",
					shards, clients, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestE2EPushOrderings pins order-independence deterministically: the same
// set of partials pushed in several permutations yields the same bits.
func TestE2EPushOrderings(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 9000, Delta: 1200, Seed: 78}).Slice()
	want := parsum.Sum(xs)
	ctx := context.Background()

	// Pre-serialize one partial per slice.
	var blobs [][]byte
	for _, part := range splitSlices(xs, 9) {
		acc := parsum.NewAccumulator()
		acc.AddSlice(part)
		blob, err := acc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 5; trial++ {
		c, _ := startService(t, sumdsrv.Options{Shards: 2})
		order := r.Perm(len(blobs))
		for _, i := range order {
			if err := c.PushPartial(ctx, blobs[i]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := c.Sum(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("order %v: %g != %g", order, got, want)
		}
	}
}

// TestE2EMixedIngestAndPartialsWithSpecials drives raw binary batches
// (including non-finite values) and partials concurrently with mid-flight
// sums.
func TestE2EMixedIngestAndPartialsWithSpecials(t *testing.T) {
	ctx := context.Background()
	c, _ := startService(t, sumdsrv.Options{Shards: 4})

	xs := []float64{1e308, -1e308, 0x1p-1074, 3.5, math.Inf(1), -2.25}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		if err := c.AddBatch(ctx, xs[:3]); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		co, err := c.NewCombiner("dense")
		if err != nil {
			t.Error(err)
			return
		}
		co.AddSlice(xs[3:])
		if err := co.Flush(ctx); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := c.Sum(ctx); err != nil { // mid-flight sum must not disturb state
			t.Error(err)
		}
	}()
	wg.Wait()
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("sum with +Inf summand = %g, want +Inf", got)
	}
}

// TestE2EChainedReducers: sumd instances compose — a leaf service's
// GET /v1/partial feeds a root service's POST /v1/partial, and the root
// still serves the oracle's bits (the paper's reduction tree over real
// sockets).
func TestE2EChainedReducers(t *testing.T) {
	ctx := context.Background()
	xs := gen.New(gen.Config{Dist: gen.Random, N: 8000, Delta: 900, Seed: 80}).Slice()
	want := parsum.Sum(xs)

	root, _ := startService(t, sumdsrv.Options{Shards: 2})
	for _, part := range splitSlices(xs, 3) {
		leaf, _ := startService(t, sumdsrv.Options{Shards: 2})
		if err := leaf.AddBatch(ctx, part); err != nil {
			t.Fatal(err)
		}
		blob, err := leaf.SnapshotPartial(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.PushPartial(ctx, blob); err != nil {
			t.Fatal(err)
		}
	}
	got, err := root.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("chained=%g want=%g", got, want)
	}
}

func TestE2EEngineSelectionAndReset(t *testing.T) {
	ctx := context.Background()
	for _, eng := range []string{"dense", "sparse", "small", "large"} {
		c, _ := startService(t, sumdsrv.Options{Engine: eng, Shards: 2})
		co, err := c.NewCombiner(eng)
		if err != nil {
			t.Fatal(err)
		}
		co.AddSlice([]float64{1.5, 2.5, -0.5})
		if err := co.Flush(ctx); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		got, err := c.Sum(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got != 3.5 {
			t.Fatalf("%s: sum=%g want 3.5", eng, got)
		}
		if err := c.Reset(ctx); err != nil {
			t.Fatal(err)
		}
		got, err = c.Sum(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("%s: sum after reset=%g", eng, got)
		}
	}
}

func TestE2ERejections(t *testing.T) {
	ctx := context.Background()
	c, hs := startService(t, sumdsrv.Options{})

	// Garbage partial → 400, and state is untouched.
	if err := c.PushPartial(ctx, []byte{0xDE, 0xAD, 0xBE, 0xEF}); err == nil {
		t.Error("garbage partial accepted")
	}
	// Cross-engine partial → 409.
	sp, err := parsum.NewAccumulatorEngine("sparse")
	if err != nil {
		t.Fatal(err)
	}
	sp.Add(1)
	blob, err := sp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	err = c.PushPartial(ctx, blob)
	if err == nil {
		t.Error("cross-engine partial accepted")
	}
	// Misaligned binary batch → 400.
	resp, err := hs.Client().Post(hs.URL+"/v1/add", "application/octet-stream",
		bytesReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("misaligned batch: status %d, want 400", resp.StatusCode)
	}
	// Wrong method → 405.
	resp, err = hs.Client().Get(hs.URL + "/v1/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /v1/add: status %d, want 405", resp.StatusCode)
	}
	// Unknown engine at construction.
	if _, err := sumdsrv.New(sumdsrv.Options{Engine: "no-such"}); err == nil {
		t.Error("unknown engine accepted")
	}
	// Non-sharded-capable engine at construction.
	if _, err := sumdsrv.New(sumdsrv.Options{Engine: "kahan"}); err == nil {
		t.Error("kahan-backed service accepted")
	}
	// State survived all rejections.
	if got, err := c.Sum(ctx); err != nil || got != 0 {
		t.Errorf("state disturbed by rejected requests: sum=%g err=%v", got, err)
	}
}

// TestE2EBinaryAddWithContentTypeParams: media-type parameters are legal
// (RFC 9110) and must not re-route a binary batch to the JSON parser.
func TestE2EBinaryAddWithContentTypeParams(t *testing.T) {
	ctx := context.Background()
	c, hs := startService(t, sumdsrv.Options{})
	body := make([]byte, 16)
	binary.LittleEndian.PutUint64(body, math.Float64bits(1.25))
	binary.LittleEndian.PutUint64(body[8:], math.Float64bits(2.25))
	resp, err := hs.Client().Post(hs.URL+"/v1/add",
		"application/octet-stream; charset=binary", bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("parameterized octet-stream: status %d", resp.StatusCode)
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 {
		t.Fatalf("sum=%g, want 3.5", got)
	}
}

func TestE2EJSONAddAndStats(t *testing.T) {
	ctx := context.Background()
	c, hs := startService(t, sumdsrv.Options{})
	resp, err := hs.Client().Post(hs.URL+"/v1/add", "application/json",
		bytesReader([]byte(`{"values":[0.1,0.2,0.3]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("JSON add: status %d", resp.StatusCode)
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := parsum.Sum([]float64{0.1, 0.2, 0.3}); got != want {
		t.Fatalf("JSON-ingested sum=%g want=%g", got, want)
	}
	// Trailing content after the JSON batch is rejected, not silently
	// dropped.
	resp, err = hs.Client().Post(hs.URL+"/v1/add", "application/json",
		bytesReader([]byte(`{"values":[1]}{"values":[2]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("concatenated JSON batches: status %d, want 400", resp.StatusCode)
	}
	if got2, err := c.Sum(ctx); err != nil || got2 != got {
		t.Fatalf("rejected batch changed the sum: %g -> %g (err %v)", got, got2, err)
	}

	resp, err = hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	resp, err = hs.Client().Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}
