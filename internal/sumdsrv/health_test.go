// Degraded-health e2e: a WAL durability failure must flip /v1/healthz
// and /v1/readyz to 503 — "acked ⇒ durable" is never silently violated
// — and a subsequent durable success must restore 200.
package sumdsrv_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"parsum/internal/sumdsrv"
)

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthDegradesOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	// SegBytes 1 forces a rotation on every commit, so removing the log
	// directory makes the next journaled write fail (the rotation cannot
	// create the next segment file) — a real durability failure without
	// resorting to permission tricks, which root would ignore.
	_, c, hs := startServer(t, sumdsrv.Options{WALDir: dir, WALFsync: "always", WALSegBytes: 1})
	ctx := context.Background()

	if st, body := getStatus(t, hs.URL+"/v1/healthz"); st != http.StatusOK {
		t.Fatalf("healthy healthz = %d (%s), want 200", st, body)
	}
	if st, body := getStatus(t, hs.URL+"/v1/readyz"); st != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy readyz = %d (%q), want 200 ok", st, body)
	}

	if err := c.AddBatch(ctx, []float64{1, 2}); err != nil {
		t.Fatalf("first add: %v", err)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatch(ctx, []float64{3}); err == nil {
		t.Fatal("add with a destroyed WAL directory must fail")
	}

	st, body := getStatus(t, hs.URL+"/v1/healthz")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d (%s), want 503", st, body)
	}
	var h struct {
		OK       bool   `json:"ok"`
		Degraded bool   `json:"degraded"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("decoding healthz %q: %v", body, err)
	}
	if h.OK || !h.Degraded || h.Error == "" {
		t.Fatalf("degraded healthz payload = %+v, want ok=false degraded=true with an error", h)
	}
	if st, body := getStatus(t, hs.URL+"/v1/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded readyz = %d (%q), want 503 degraded", st, body)
	}
	// The alerting counter must have recorded the failure.
	if ws := walStats(t, hs.URL); ws.Errors == 0 || ws.LastError == "" {
		t.Fatalf("wal stats after failure = %+v, want Errors > 0", ws)
	}

	// Restore the directory: the next durable commit repairs health.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatch(ctx, []float64{4}); err != nil {
		t.Fatalf("add after restoring the WAL directory: %v", err)
	}
	if st, body := getStatus(t, hs.URL+"/v1/healthz"); st != http.StatusOK {
		t.Fatalf("recovered healthz = %d (%s), want 200", st, body)
	}
	if st, _ := getStatus(t, hs.URL+"/v1/readyz"); st != http.StatusOK {
		t.Fatalf("recovered readyz = %d, want 200", st)
	}
}

// A server without a WAL has nothing to degrade: readyz mirrors
// healthz at 200.
func TestReadyzWithoutWAL(t *testing.T) {
	_, _, hs := startServer(t, sumdsrv.Options{})
	if st, body := getStatus(t, hs.URL+"/v1/readyz"); st != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("readyz = %d (%q), want 200 ok", st, body)
	}
}
