// End-to-end tests of the keyed aggregation surface over real HTTP:
// per-key bit-identity to parsum.Sum through both the sync and async
// ingest paths, the keyed anti-entropy exchange (binary and JSON, both
// push orders converging), key-range pulls, the rejection gauntlet
// (400/404/409/501), and the keyed stats/metrics families.
package sumdsrv_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/gen"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

// TestKeyedE2EBitIdentical is the acceptance property of the keyed
// store carried across the socket: concurrent clients spraying keyed
// adds (and keyed deletions) over both body forms, for several
// partition counts and through both the sync and async ingest paths —
// then every key's served sum must be bit-identical to parsum.Sum over
// exactly that key's surviving multiset, and the global sum must be
// untouched by any of it.
func TestKeyedE2EBitIdentical(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 8000, Delta: 1000, Seed: 41}).Slice()
	for _, async := range []bool{false, true} {
		for _, partitions := range []int{1, 4} {
			opt := sumdsrv.Options{Shards: 2, KeyPartitions: partitions}
			if async {
				opt.Async = true
				opt.QueueLen = 256
				opt.MaxBatch = 64
				opt.MaxDelay = time.Millisecond
			}
			c, hs := startService(t, opt)
			ctx := context.Background()

			const clients = 6
			const keys = 9
			parts := splitSlices(xs, clients)
			oracles := make([]map[string][]float64, clients)
			var wg sync.WaitGroup
			for w, part := range parts {
				wg.Add(1)
				oracles[w] = make(map[string][]float64)
				go func(w int, part []float64, mine map[string][]float64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(13*w + partitions)))
					for len(part) > 0 {
						n := 1 + r.Intn(32)
						if n > len(part) {
							n = len(part)
						}
						chunk := part[:n]
						part = part[n:]
						key := fmt.Sprintf("key-%03d", r.Intn(keys))
						var err error
						switch r.Intn(3) {
						case 0: // binary body, key in the query
							err = c.AddKeyed(ctx, key, chunk)
						case 1: // JSON body carrying the key field
							body, _ := jsonBatch(key, chunk)
							var resp *http.Response
							resp, err = hs.Client().Post(hs.URL+"/v1/add", "application/json", bytesReader(body))
							if err == nil {
								resp.Body.Close()
								if resp.StatusCode != 200 {
									err = fmt.Errorf("JSON keyed add: status %d", resp.StatusCode)
								}
							}
						default: // net insertion via the sub path: -chunk, then +chunk twice
							err = c.SubKeyed(ctx, key, chunk)
							if err == nil {
								err = c.AddKeyed(ctx, key, chunk)
							}
							if err == nil {
								err = c.AddKeyed(ctx, key, chunk)
							}
						}
						if err != nil {
							t.Errorf("client %d: %v", w, err)
							return
						}
						mine[key] = append(mine[key], chunk...)
					}
				}(w, part, oracles[w])
			}
			wg.Wait()

			want := make(map[string][]float64)
			for _, mine := range oracles {
				for key, vs := range mine {
					want[key] = append(want[key], vs...)
				}
			}
			for key, vs := range want {
				got, ok, err := c.SumKey(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("async=%v partitions=%d: key %q missing", async, partitions, key)
				}
				ref := parsum.Sum(vs)
				if math.Float64bits(got) != math.Float64bits(ref) {
					t.Errorf("async=%v partitions=%d key=%s: served %x != parsum.Sum %x",
						async, partitions, key, math.Float64bits(got), math.Float64bits(ref))
				}
			}
			// Keyed traffic must not leak into the global accumulator.
			if global, err := c.Sum(ctx); err != nil || global != 0 {
				t.Errorf("async=%v: global sum disturbed by keyed traffic: %g err=%v", async, global, err)
			}
			listed, err := c.Keys(ctx, "", "")
			if err != nil {
				t.Fatal(err)
			}
			if len(listed) != len(want) {
				t.Errorf("async=%v: /v1/keys lists %d keys, oracle has %d", async, len(listed), len(want))
			}

			st := fetchStats(t, hs.URL)
			if st.Keyed.Partitions == 0 || st.Keyed.Keys != len(want) {
				t.Errorf("keyed stats: %+v, want %d keys", st.Keyed, len(want))
			}
			if st.Keyed.Values == 0 || st.Keyed.Batches == 0 || st.Keyed.Removed == 0 {
				t.Errorf("keyed counters never moved: %+v", st.Keyed)
			}
			if async {
				if st.Async == nil || st.Async.KeyedEnqueued == 0 ||
					st.Async.KeyedFlushedRequests != st.Async.KeyedEnqueued {
					t.Errorf("async keyed ledger not drained: %+v", st.Async)
				}
			}
		}
	}
}

func jsonBatch(key string, xs []float64) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `{"key":%q,"values":[`, key)
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteString("]}")
	return []byte(b.String()), nil
}

// TestKeyedE2EExchangeConverges drives the anti-entropy loop between
// real servers: A and B hold overlapping keyed state (specials
// included), exchange pre-exported envelopes in opposite orders, and
// must converge to bit-identical per-key sums — which also must match
// parsum.Sum of the unioned multisets. A third server fed the same
// state through the JSON partial form must land on the same bits.
func TestKeyedE2EExchangeConverges(t *testing.T) {
	ctx := context.Background()
	ca, _ := startService(t, sumdsrv.Options{Shards: 1, KeyPartitions: 3})
	cb, _ := startService(t, sumdsrv.Options{Shards: 2, KeyPartitions: 5})

	dataA := map[string][]float64{
		"acct-1": {1e300, 1, -1e300},
		"acct-2": {math.Inf(1), 1e9},
		"shared": {0x1p-1074, 2.5},
	}
	dataB := map[string][]float64{
		"acct-3": {math.Inf(-1), -42},
		"shared": {-2.5, 0x1p-1074, 7},
	}
	for key, vs := range dataA {
		if err := ca.AddKeyed(ctx, key, vs); err != nil {
			t.Fatal(err)
		}
	}
	for key, vs := range dataB {
		if err := cb.AddKeyed(ctx, key, vs); err != nil {
			t.Fatal(err)
		}
	}

	// Export both sides BEFORE any merge, then push in opposite orders.
	blobA, err := ca.PullKeyed(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := cb.PullKeyed(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ca.PushKeyed(ctx, blobB); err != nil || n != len(dataB) {
		t.Fatalf("push B into A: merged=%d err=%v", n, err)
	}
	if n, err := cb.PushKeyed(ctx, blobA); err != nil || n != len(dataA) {
		t.Fatalf("push A into B: merged=%d err=%v", n, err)
	}

	union := map[string][]float64{}
	for _, data := range []map[string][]float64{dataA, dataB} {
		for key, vs := range data {
			union[key] = append(union[key], vs...)
		}
	}
	for key, vs := range union {
		want := parsum.Sum(vs)
		for name, c := range map[string]*sumdclient.Client{"A": ca, "B": cb} {
			got, ok, err := c.SumKey(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("server %s: key %q missing after exchange", name, key)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("server %s key %s: %x, want %x (parsum.Sum of union)",
					name, key, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}

	// JSON path: a third server fed both sides' partials converges too.
	cc, _ := startService(t, sumdsrv.Options{Shards: 1, KeyPartitions: 7})
	engine, psA, err := ca.PullKeyedPartials(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if engine != "dense" {
		t.Fatalf("pulled engine %q", engine)
	}
	// A already merged B, so A's partials alone carry the whole union.
	if n, err := cc.PushKeyedPartials(ctx, psA); err != nil || n != len(union) {
		t.Fatalf("JSON push into C: merged=%d err=%v", n, err)
	}
	for key, vs := range union {
		got, ok, err := cc.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("server C key %q: ok=%v err=%v", key, ok, err)
		}
		if want := parsum.Sum(vs); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("server C key %s: %x, want %x", key, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestKeyedE2ERangePull pins the rebalance hop: a range pull ships
// exactly the keys in [lo, hi), and pushing it to a fresh server
// reproduces exactly those keys.
func TestKeyedE2ERangePull(t *testing.T) {
	ctx := context.Background()
	src, _ := startService(t, sumdsrv.Options{KeyPartitions: 4})
	for i := 0; i < 10; i++ {
		if err := src.AddKeyed(ctx, fmt.Sprintf("k%02d", i), []float64{float64(i) + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := src.Keys(ctx, "k03", "k07")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 || keys[0] != "k03" || keys[3] != "k06" {
		t.Fatalf("ranged /v1/keys = %v", keys)
	}
	blob, err := src.PullKeyed(ctx, "k03", "k07")
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := startService(t, sumdsrv.Options{KeyPartitions: 1})
	if n, err := dst.PushKeyed(ctx, blob); err != nil || n != 4 {
		t.Fatalf("range push: merged=%d err=%v", n, err)
	}
	got, err := dst.Keys(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != "k03" || got[3] != "k06" {
		t.Fatalf("destination keys = %v", got)
	}
	if v, ok, err := dst.SumKey(ctx, "k05"); err != nil || !ok || v != 5.5 {
		t.Fatalf("rebalanced k05 = (%v, %v, %v)", v, ok, err)
	}
}

// TestKeyedE2ERejections is the keyed failure gauntlet: every rejection
// carries the right status code and leaves the keyed store untouched.
func TestKeyedE2ERejections(t *testing.T) {
	ctx := context.Background()
	c, hs := startService(t, sumdsrv.Options{KeyPartitions: 2})
	if err := c.AddKeyed(ctx, "good", []float64{1.5}); err != nil {
		t.Fatal(err)
	}

	post := func(path, ct, body string) int {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+path, ct, bytesReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Query key disagreeing with the body key → 400.
	if got := post("/v1/add?key=a", "application/json", `{"key":"b","values":[1]}`); got != 400 {
		t.Errorf("conflicting keys: status %d, want 400", got)
	}
	// Over-length key → 400 at the edge, not a store panic.
	long := strings.Repeat("k", parsum.MaxKeyLen+1)
	if got := post("/v1/add?key="+long, "application/octet-stream", ""); got != 400 {
		t.Errorf("oversized key: status %d, want 400", got)
	}
	if got := get("/v1/sum?key=" + long); got != 400 {
		t.Errorf("oversized key sum: status %d, want 400", got)
	}
	// Unknown key → 404.
	if _, ok, err := c.SumKey(ctx, "never-seen"); err != nil || ok {
		t.Errorf("unknown key: ok=%v err=%v, want miss", ok, err)
	}
	// Garbage envelope → 400; truncated-but-magic envelope → 400.
	if got := post("/v1/keyed/partial", "application/octet-stream", "\xDE\xAD\xBE\xEF"); got != 400 {
		t.Errorf("garbage envelope: status %d, want 400", got)
	}
	if got := post("/v1/keyed/partial", "application/octet-stream", "\xC9\x01\x05dense"); got != 400 {
		t.Errorf("truncated envelope: status %d, want 400", got)
	}
	// Engine mismatch → 409: a sparse server's envelope pushed here.
	sparse, _ := startService(t, sumdsrv.Options{Engine: "sparse"})
	if err := sparse.AddKeyed(ctx, "x", []float64{2}); err != nil {
		t.Fatal(err)
	}
	blob, err := sparse.PullKeyed(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := post("/v1/keyed/partial", "application/octet-stream", string(blob)); got != 409 {
		t.Errorf("cross-engine envelope: status %d, want 409", got)
	}
	// Malformed JSON partials → 400 (unknown field, trailing data, bad blob).
	if got := post("/v1/keyed/partial", "application/json", `{"partials":[],"extra":1}`); got != 400 {
		t.Errorf("unknown JSON field: status %d, want 400", got)
	}
	if got := post("/v1/keyed/partial", "application/json", `{"partials":[]}{}`); got != 400 {
		t.Errorf("trailing JSON: status %d, want 400", got)
	}
	if got := post("/v1/keyed/partial", "application/json", `{"partials":[{"key":"k","blob":"3q2+7w=="}]}`); got != 400 {
		t.Errorf("garbage JSON blob: status %d, want 400", got)
	}
	// Unknown pull format → 400.
	if got := get("/v1/keyed/partial?format=xml"); got != 400 {
		t.Errorf("unknown format: status %d, want 400", got)
	}

	// Nothing above may have disturbed the store.
	if v, ok, err := c.SumKey(ctx, "good"); err != nil || !ok || v != 1.5 {
		t.Errorf("keyed state disturbed by rejections: (%v, %v, %v)", v, ok, err)
	}
	if keys, err := c.Keys(ctx, "", ""); err != nil || len(keys) != 1 {
		t.Errorf("key set disturbed by rejections: %v err=%v", keys, err)
	}

	// Reset wipes keyed state alongside the global accumulator.
	if err := c.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if keys, err := c.Keys(ctx, "", ""); err != nil || len(keys) != 0 {
		t.Errorf("reset left keyed state: %v err=%v", keys, err)
	}
}

// plainOnlySink forwards the global Sink surface and deliberately hides
// KeyedSink — the WrapSink shape that must degrade async keyed
// ingestion to 501 without breaking unkeyed traffic.
type plainOnlySink struct{ real batch.Sink }

func (p plainOnlySink) AddBatch(xs []float64) { p.real.AddBatch(xs) }
func (p plainOnlySink) SubBatch(xs []float64) { p.real.SubBatch(xs) }

func TestKeyedE2EAsync501WhenSinkHidesKeyed(t *testing.T) {
	ctx := context.Background()
	c, _ := startService(t, sumdsrv.Options{
		Async: true, QueueLen: 8, MaxBatch: 8, MaxDelay: time.Millisecond,
		WrapSink: func(real batch.Sink) batch.Sink { return plainOnlySink{real: real} },
	})
	err := c.AddKeyed(ctx, "k", []float64{1})
	if err == nil || !strings.Contains(err.Error(), "HTTP 501") {
		t.Errorf("keyed add through keyless sink: err = %v, want HTTP 501", err)
	}
	// Unkeyed ingestion through the same wrapped sink still works.
	if err := c.AddBatch(ctx, []float64{2.5}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Sum(ctx)
	if err != nil || got != 2.5 {
		t.Fatalf("unkeyed path broken by wrapped sink: %g err=%v", got, err)
	}
}

// TestKeyedE2ECombiner: the keyed map-side combiner — workers
// accumulate disjoint slices of every key locally and flush whole
// stores; the service must serve parsum.Sum bits per key however the
// flushes interleaved.
func TestKeyedE2ECombiner(t *testing.T) {
	ctx := context.Background()
	c, hs := startService(t, sumdsrv.Options{KeyPartitions: 3})
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 6000, Delta: 800, Seed: 42}).Slice()

	const clients = 4
	const keys = 5
	var wg sync.WaitGroup
	for w, part := range splitSlices(xs, clients) {
		wg.Add(1)
		go func(w int, part []float64) {
			defer wg.Done()
			co, err := c.NewKeyedCombiner("")
			if err != nil {
				t.Error(err)
				return
			}
			r := rand.New(rand.NewSource(int64(900 + w)))
			for i, x := range part {
				co.Add(fmt.Sprintf("key-%d", i%keys), []float64{x})
				if r.Intn(200) == 0 {
					if _, err := co.Flush(ctx); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if _, err := co.Flush(ctx); err != nil {
				t.Error(err)
			}
		}(w, part)
	}
	wg.Wait()

	// Rebuild the oracle exactly as the workers dealt values to keys.
	want := make(map[string][]float64)
	for _, part := range splitSlices(xs, clients) {
		for i, x := range part {
			key := fmt.Sprintf("key-%d", i%keys)
			want[key] = append(want[key], x)
		}
	}
	for key, vs := range want {
		got, ok, err := c.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("key %q: ok=%v err=%v", key, ok, err)
		}
		if ref := parsum.Sum(vs); math.Float64bits(got) != math.Float64bits(ref) {
			t.Errorf("combiner key %s: %x, want %x", key, math.Float64bits(got), math.Float64bits(ref))
		}
	}
	st := fetchStats(t, hs.URL)
	if st.Keyed.Partials == 0 {
		t.Error("combiner flushes never moved the keyed partial counter")
	}

	// The keyed metric families are exposed and lint clean.
	fams, err := batch.LintProm(scrape(t, hs.URL))
	if err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	for _, name := range []string{
		"sumd_keyed_partitions", "sumd_keyed_keys", "sumd_keyed_values_total",
		"sumd_keyed_partials_total", "sumd_keyed_sums_served_total",
	} {
		if fams[name] == nil {
			t.Errorf("exposition is missing keyed family %s", name)
		}
	}
}
