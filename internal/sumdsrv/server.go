// Package sumdsrv implements the HTTP merge service behind cmd/sumd: a
// network-facing reducer backed by a parsum.Sharded accumulator. Workers
// anywhere combine their slice of the input locally (the paper's map-side
// combiner), serialize the exact partial with the versioned wire codec,
// and POST it here; the service merges partials carry-free and rounds once
// when a sum is requested. Because every exchange is an exact
// superaccumulator partial, the served sum is bit-identical to summing the
// concatenated input sequentially — regardless of how the input was
// partitioned across workers, the order partials arrive, or how many
// shards the service runs.
//
// Endpoints (all under /v1, plus the conventional /metrics):
//
//	POST /v1/add      raw little-endian float64s (application/octet-stream)
//	                  or JSON {"values":[...]} — ingest values directly
//	POST /v1/sub      same body formats — delete previously ingested values
//	                  exactly (the superaccumulator group inverse); the
//	                  served sum is bit-identical to summing the surviving
//	                  multiset from scratch
//	POST /v1/partial  a wire partial (Accumulator.MarshalBinary /
//	                  Sharded.SnapshotBytes) — merge a remote partial
//	GET  /v1/partial  the service's own state as a wire partial, so sumd
//	                  instances can chain into reduction trees
//	GET  /v1/sum      {"sum":"<decimal>","bits":"<hex>",...} — rounded once
//	POST /v1/reset    empty the accumulator
//	GET  /v1/stats    ingestion counters (JSON; includes the async
//	                  batcher's counters when async mode is on)
//	GET  /v1/healthz  liveness + configuration; 503 while durability is
//	                  degraded (a WAL write or fsync failure not yet
//	                  followed by a durable success)
//	GET  /v1/readyz   the same degradation check as a terse text probe
//	GET  /metrics     the same counters in Prometheus text format
//
// Malformed payloads are rejected with 400 (decode error) or 409 (engine
// mismatch) and never disturb accumulated state; bodies are size-capped.
//
// # Async ingestion
//
// With Options.Async, /v1/add and /v1/sub stop walking the accumulator
// under the request goroutine and instead enqueue into an internal/batch
// Batcher: a bounded queue drained by flusher goroutines on a
// size-or-deadline trigger (Options.MaxBatch, Options.MaxDelay). The
// handler replies 200 only after the flush containing its values has
// completed (group commit), so "accepted" still means "applied": any sum
// requested after a 200 observes those values, and the exactness
// guarantee is unchanged — batching only regroups additions inside a
// commutative group. When the queue is full the request is rejected
// immediately with 429 and a Retry-After hint, accumulated state
// untouched, so ingest overload degrades to shed load rather than to
// unbounded queueing.
package sumdsrv

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/shard"
	"parsum/internal/wal"
)

// MaxBodyBytes is the default request-body cap (64 MiB ≈ 8M float64s per
// batch); Options.MaxBodyBytes overrides it per server.
const MaxBodyBytes = 64 << 20

// Options configures a Server; the zero value is ready to use (dense
// engine, one shard per P, 64 MiB body cap).
type Options struct {
	// Engine names the summation engine backing the service; "" means
	// dense. It must be streaming, deterministic-parallel, and
	// wire-marshalable (the four superaccumulator engines qualify).
	Engine string
	// Shards is the writer-stripe count of the backing Sharded; 0 means
	// GOMAXPROCS.
	Shards int
	// MaxBodyBytes caps every request body; a request exceeding it gets
	// 413 and never disturbs accumulated state. 0 means the MaxBodyBytes
	// constant; negative is rejected by New.
	MaxBodyBytes int64
	// KeyPartitions is the partition count of the keyed store behind the
	// key-addressed endpoints (/v1/add with a key, /v1/sum?key=,
	// /v1/keyed/partial); 0 means GOMAXPROCS. The keyed store shares the
	// server's engine.
	KeyPartitions int
	// Async routes /v1/add and /v1/sub through the batched ingestion
	// front-end (see the package comment). Off by default: the sync
	// path remains the escape hatch.
	Async bool
	// QueueLen, MaxBatch, MaxDelay and Flushers configure the batcher
	// when Async is set (0 means the internal/batch defaults: 256
	// requests, 4096 values, 2ms, 1 flusher). Ignored in sync mode.
	QueueLen int
	MaxBatch int
	MaxDelay time.Duration
	Flushers int
	// WrapSink, when non-nil, wraps the accumulator before the batcher
	// attaches to it. Test seam: e2e tests interpose a gated sink to
	// hold a flush open and pin the full-queue 429 contract
	// deterministically. Ignored in sync mode. When the wrapped sink does
	// not implement batch.KeyedSink, async keyed ingestion answers 501.
	WrapSink func(batch.Sink) batch.Sink
	// WALDir enables the write-ahead log: every state-mutating request
	// is journaled to this directory and committed before it is
	// acknowledged, and New replays the directory so the server restarts
	// with its pre-crash state. Empty disables durability (the previous
	// behaviour).
	WALDir string
	// WALFsync is the journal's fsync policy: "always" (the default —
	// fsync before every ack), "interval" (background fsync; a machine
	// crash can lose the last ~100ms), or "off" (page-cache durability
	// only: safe across process crashes, not machine crashes).
	WALFsync string
	// WALSegBytes is the journal's segment rotation threshold in bytes
	// (0 = 64 MiB).
	WALSegBytes int64
	// WALSnapshotEvery writes a state snapshot — truncating the replayed
	// log — every N journaled mutations; 0 disables automatic snapshots
	// (the log then grows until the process writes one some other way).
	WALSnapshotEvery int
	// DedupWindow caps the idempotency window remembering the
	// Idempotency-Key tokens of recently acknowledged partial pushes, so
	// a client retrying a push whose response was lost cannot
	// double-apply it. 0 means 1024 tokens; negative disables dedup.
	DedupWindow int
}

// counters is the server-level ingestion ledger. One mutex guards every
// field and Snapshot copies them under the same mutex, so a /v1/stats
// response can never tear — e.g. report a batch whose values are not
// counted yet. (These were independent atomics once; a scrape landing
// between two atomic increments could observe batches > 0 with values
// still 0.)
//
// Every field is a monotone process-lifetime counter: POST /v1/reset
// wipes accumulated *state*, never the ledger. Prometheus rate() and
// increase() stay correct across resets, and the only event that may
// legitimately move a sumd_*_total series backwards is a process
// restart (which scrapers already treat as a counter reset).
type counters struct {
	mu         sync.Mutex
	values     int64 // raw float64s ingested via keyless /v1/add
	batches    int64 // keyless /v1/add requests
	removed    int64 // raw float64s deleted via keyless /v1/sub
	subBatches int64 // keyless /v1/sub requests
	partials   int64 // wire partials merged via POST /v1/partial
	sums       int64 // /v1/sum and GET /v1/partial responses
	rejected   int64 // /v1/add + /v1/sub requests shed with 429
	deduped    int64 // partial pushes answered from the idempotency window

	keyedValues     int64 // raw float64s ingested via keyed /v1/add
	keyedBatches    int64 // keyed /v1/add requests
	keyedRemoved    int64 // raw float64s deleted via keyed /v1/sub
	keyedSubBatches int64 // keyed /v1/sub requests
	keyedPartials   int64 // keys merged via POST /v1/keyed/partial
	keyedSums       int64 // keyed sum / keyed partial-export responses
}

func (c *counters) addBatch(n int, keyed bool) {
	c.mu.Lock()
	if keyed {
		c.keyedBatches++
		c.keyedValues += int64(n)
	} else {
		c.batches++
		c.values += int64(n)
	}
	c.mu.Unlock()
}

func (c *counters) subBatch(n int, keyed bool) {
	c.mu.Lock()
	if keyed {
		c.keyedSubBatches++
		c.keyedRemoved += int64(n)
	} else {
		c.subBatches++
		c.removed += int64(n)
	}
	c.mu.Unlock()
}

func (c *counters) addKeyedPartials(n int) {
	c.mu.Lock()
	c.keyedPartials += int64(n)
	c.mu.Unlock()
}

func (c *counters) bump(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// counterSnap is a consistent copy of the ledger (no lock inside, so it
// can be passed around by value).
type counterSnap struct {
	values, batches, removed, subBatches, partials, sums, rejected,
	deduped int64

	keyedValues, keyedBatches, keyedRemoved, keyedSubBatches,
	keyedPartials, keyedSums int64
}

func (c *counters) snapshot() counterSnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return counterSnap{
		values: c.values, batches: c.batches,
		removed: c.removed, subBatches: c.subBatches,
		partials: c.partials, sums: c.sums, rejected: c.rejected,
		deduped:     c.deduped,
		keyedValues: c.keyedValues, keyedBatches: c.keyedBatches,
		keyedRemoved: c.keyedRemoved, keyedSubBatches: c.keyedSubBatches,
		keyedPartials: c.keyedPartials, keyedSums: c.keyedSums,
	}
}

// Server is the merge service. It implements http.Handler and is safe for
// concurrent use.
type Server struct {
	sh      *parsum.Sharded
	keyed   *parsum.Keyed
	bat     *batch.Batcher // nil in sync mode
	mux     *http.ServeMux
	start   time.Time
	maxBody int64
	// retryAfter is the precomputed Retry-After header value for 429
	// responses: the queue drains at least every MaxDelay, so waiting
	// that long (rounded up to the header's 1s granularity) is always
	// enough.
	retryAfter string

	// Durability (nil / zero when Options.WALDir is empty). applyMu is
	// held shared around every journal+apply pair and exclusively by
	// reset and snapshot capture; see internal/sumdsrv/wal.go.
	wal       *wal.Log
	applyMu   sync.RWMutex
	walSince  atomic.Int64 // mutations journaled since the last snapshot
	snapEvery int64
	walFsync  wal.Policy
	recovery  WALRecovery

	// tokens is the idempotency-dedup window (non-nil even without a
	// WAL: response-loss retries are a transport hazard, not a crash
	// hazard).
	tokens *tokenWindow

	st counters
}

// New returns a Server backed by a fresh Sharded accumulator. It errors
// when the engine cannot back a deterministic sharded accumulator or its
// partials cannot cross the wire.
func New(opt Options) (*Server, error) {
	if opt.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("sumd: negative body cap %d", opt.MaxBodyBytes)
	}
	maxBody := opt.MaxBodyBytes
	if maxBody == 0 {
		maxBody = MaxBodyBytes
	}
	sh, err := parsum.NewSharded(parsum.ShardedOptions{Engine: opt.Engine, Shards: opt.Shards})
	if err != nil {
		return nil, err
	}
	// Fail at construction, not first snapshot, if partials cannot ship.
	if _, err := sh.SnapshotBytes(); err != nil {
		return nil, fmt.Errorf("sumd: engine %q cannot serve wire partials: %w", sh.Engine(), err)
	}
	ks, err := parsum.NewKeyed(parsum.KeyedOptions{Engine: opt.Engine, Partitions: opt.KeyPartitions})
	if err != nil {
		return nil, err
	}
	s := &Server{sh: sh, keyed: ks, mux: http.NewServeMux(), start: time.Now(), maxBody: maxBody}
	switch {
	case opt.DedupWindow == 0:
		s.tokens = newTokenWindow(1024)
	case opt.DedupWindow > 0:
		s.tokens = newTokenWindow(opt.DedupWindow)
	}
	if opt.WALDir != "" {
		pol, err := wal.ParsePolicy(opt.WALFsync)
		if err != nil {
			return nil, err
		}
		wlog, recovered, err := wal.Open(wal.Options{Dir: opt.WALDir, SegBytes: opt.WALSegBytes, Fsync: pol})
		if err != nil {
			return nil, err
		}
		s.walFsync = pol
		s.snapEvery = int64(opt.WALSnapshotEvery)
		if err := s.recover(recovered); err != nil {
			_ = wlog.Close()
			return nil, err
		}
		// Arm the journal only after replay: recovery applies records
		// that are already in the log.
		s.wal = wlog
	}
	if opt.Async {
		// The batcher's sink pairs the global accumulator with the keyed
		// store, so one queue and one group-commit flush serve both kinds
		// of traffic.
		var sink batch.Sink = dualSink{sh: sh, keyed: ks}
		if opt.WrapSink != nil {
			sink = opt.WrapSink(sink)
		}
		if s.wal != nil {
			// Interpose the journal outermost so a flush group is durable
			// before it is applied and acknowledged. The keyed-capable
			// wrapper is chosen only when the wrapped sink itself is keyed
			// capable, preserving the 501 contract for seams that hide it.
			ws := walSink{s: s, inner: sink}
			ws.slice, _ = sink.(batch.SliceSink)
			if kd, ok := sink.(batch.KeyedSink); ok {
				sink = walKeyedSink{walSink: ws, keyed: kd}
			} else {
				sink = ws
			}
		}
		s.bat = batch.New(sink, batch.Options{
			QueueLen: opt.QueueLen,
			MaxBatch: opt.MaxBatch,
			MaxDelay: opt.MaxDelay,
			Flushers: opt.Flushers,
		})
		secs := int64(math.Ceil((2 * s.bat.Options().MaxDelay).Seconds()))
		if secs < 1 {
			secs = 1
		}
		s.retryAfter = strconv.FormatInt(secs, 10)
	}
	s.mux.HandleFunc("POST /v1/add", s.handleAdd)
	s.mux.HandleFunc("POST /v1/sub", s.handleSub)
	s.mux.HandleFunc("POST /v1/partial", s.handlePushPartial)
	s.mux.HandleFunc("GET /v1/partial", s.handleGetPartial)
	s.mux.HandleFunc("GET /v1/sum", s.handleSum)
	s.mux.HandleFunc("POST /v1/reset", s.handleReset)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("POST /v1/keyed/partial", s.handlePushKeyed)
	s.mux.HandleFunc("GET /v1/keyed/partial", s.handleGetKeyed)
	return s, nil
}

// dualSink is the async sink: the global Sharded accumulator (Sink +
// SliceSink) joined with the keyed store (KeyedSink).
type dualSink struct {
	sh    *parsum.Sharded
	keyed *parsum.Keyed
}

func (d dualSink) AddBatch(xs []float64)                  { d.sh.AddBatch(xs) }
func (d dualSink) SubBatch(xs []float64)                  { d.sh.SubBatch(xs) }
func (d dualSink) AddBatches(batches [][]float64)         { d.sh.AddBatches(batches) }
func (d dualSink) SubBatches(batches [][]float64)         { d.sh.SubBatches(batches) }
func (d dualSink) AddKeyedBatches(bs []parsum.KeyedBatch) { d.keyed.AddKeyedBatches(bs) }
func (d dualSink) SubKeyedBatches(bs []parsum.KeyedBatch) { d.keyed.SubKeyedBatches(bs) }

// Engine returns the registry name of the backing engine.
func (s *Server) Engine() string { return s.sh.Engine() }

// Async reports whether the batched ingestion front-end is on.
func (s *Server) Async() bool { return s.bat != nil }

// Durable reports whether the write-ahead log is journaling ingests.
func (s *Server) Durable() bool { return s.wal != nil }

// Recovery reports what WAL recovery found at construction (the zero
// value when the WAL is off).
func (s *Server) Recovery() WALRecovery { return s.recovery }

// Close drains and stops the async batcher (flushing every admitted
// batch) so accepted requests are never dropped on shutdown, then seals
// the journal. Safe to call more than once.
func (s *Server) Close() {
	if s.bat != nil {
		s.bat.Close()
	}
	if s.wal != nil {
		_ = s.wal.Close()
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	s.mux.ServeHTTP(w, r)
}

// SumResponse is the GET /v1/sum payload. Sum is the shortest decimal
// that round-trips to the exact float64 ("NaN", "+Inf", "-Inf" for
// non-finite results); Bits is its IEEE-754 bit pattern in hex — the
// field distributed bit-identity checks should compare.
type SumResponse struct {
	Sum    string `json:"sum"`
	Bits   string `json:"bits"`
	Engine string `json:"engine"`
	Shards int    `json:"shards"`
	// Key names the keyed-store entry this sum belongs to; empty for the
	// global sum.
	Key string `json:"key,omitempty"`
}

// StatsResponse is the GET /v1/stats payload. The server-level counters
// are one consistent snapshot (taken under one lock); Async, when
// present, is a second consistent snapshot of the batcher's ledger.
//
// Every counter is monotone over the process lifetime: POST /v1/reset
// clears accumulated state, not the ledger. Only a process restart
// starts the counters over.
type StatsResponse struct {
	Engine        string      `json:"engine"`
	Shards        int         `json:"shards"`
	Values        int64       `json:"values"`
	Batches       int64       `json:"batches"`
	Removed       int64       `json:"removed"`
	SubBatches    int64       `json:"sub_batches"`
	Partials      int64       `json:"partials"`
	SumsServed    int64       `json:"sums_served"`
	Rejected      int64       `json:"rejected"`
	Deduped       int64       `json:"deduped"`
	UptimeSeconds int64       `json:"uptime_seconds"`
	Keyed         KeyedStats  `json:"keyed"`
	Async         *AsyncStats `json:"async,omitempty"`
	WAL           *WALStats   `json:"wal,omitempty"`
}

// KeyedStats is the keyed store's configuration and counter snapshot
// inside StatsResponse.
type KeyedStats struct {
	Partitions int   `json:"partitions"`
	Keys       int   `json:"keys"`
	Values     int64 `json:"values"`
	Batches    int64 `json:"batches"`
	Removed    int64 `json:"removed"`
	SubBatches int64 `json:"sub_batches"`
	Partials   int64 `json:"partials"`
	SumsServed int64 `json:"sums_served"`
}

// AsyncStats is the batcher's configuration and counter snapshot inside
// StatsResponse (async mode only).
type AsyncStats struct {
	QueueLen   int     `json:"queue_len"`
	MaxBatch   int     `json:"max_batch"`
	MaxDelayMs float64 `json:"max_delay_ms"`
	Flushers   int     `json:"flushers"`

	Enqueued        int64 `json:"enqueued"`
	EnqueuedValues  int64 `json:"enqueued_values"`
	Rejected        int64 `json:"rejected"`
	Flushes         int64 `json:"flushes"`
	FlushedRequests int64 `json:"flushed_requests"`
	FlushedValues   int64 `json:"flushed_values"`
	SizeFlushes     int64 `json:"size_flushes"`
	DeadlineFlushes int64 `json:"deadline_flushes"`
	DrainFlushes    int64 `json:"drain_flushes"`
	QueueDepth      int64 `json:"queue_depth"`
	FlushNsTotal    int64 `json:"flush_ns_total"`

	KeyedEnqueued        int64 `json:"keyed_enqueued"`
	KeyedFlushedRequests int64 `json:"keyed_flushed_requests"`
}

// AddRequest is the JSON form of POST /v1/add and /v1/sub. The binary form
// (application/octet-stream, raw little-endian float64s) is preferred for
// bulk and is the only way to ship non-finite values. A non-empty Key
// routes the values into that key's accumulator in the keyed store
// instead of the global sum; the binary form carries the key in the
// ?key= query parameter instead. Setting both to different values is a
// 400.
type AddRequest struct {
	Values []float64 `json:"values"`
	Key    string    `json:"key,omitempty"`
}

// AddResponse is the POST /v1/add payload. Key echoes the target key on
// keyed requests.
type AddResponse struct {
	Added int    `json:"added"`
	Key   string `json:"key,omitempty"`
}

// SubResponse is the POST /v1/sub payload.
type SubResponse struct {
	Removed int    `json:"removed"`
	Key     string `json:"key,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// readBody drains a size-capped request body, mapping the cap being hit
// to 413 (split and retry) rather than 400 (malformed payload).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return nil, false
	}
	return body, true
}

// decodeBatch parses the shared /v1/add and /v1/sub body formats: raw
// little-endian float64s (application/octet-stream) or a single JSON
// {"values":[...],"key":...} document, and resolves the target key from
// the ?key= query parameter and/or the JSON field. It writes the error
// response itself and reports ok = false on malformed payloads.
func decodeBatch(w http.ResponseWriter, r *http.Request, body []byte) (xs []float64, key string, ok bool) {
	queryKey := r.URL.Query().Get("key")
	// Content-Type may carry parameters (RFC 9110); route on the media
	// type alone.
	mediaType := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(mediaType); err == nil {
		mediaType = mt
	}
	if mediaType == "application/octet-stream" {
		if len(body)%8 != 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("binary batch length %d is not a multiple of 8", len(body)))
			return nil, "", false
		}
		if !checkKeyParam(w, queryKey) {
			return nil, "", false
		}
		xs = make([]float64, len(body)/8)
		for i := range xs {
			xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return xs, queryKey, true
	}
	var req AddRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON batch: %w", err))
		return nil, "", false
	}
	// A batch is one JSON value; trailing content would otherwise be
	// silently dropped data.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON batch"))
		return nil, "", false
	}
	key = req.Key
	if queryKey != "" {
		if key != "" && key != queryKey {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("key %q in query disagrees with key %q in body", queryKey, key))
			return nil, "", false
		}
		key = queryKey
	}
	if !checkKeyParam(w, key) {
		return nil, "", false
	}
	return req.Values, key, true
}

// checkKeyParam rejects over-length keys at the network edge with 400
// (the store itself treats them as programming errors and panics).
func checkKeyParam(w http.ResponseWriter, key string) bool {
	if len(key) > parsum.MaxKeyLen {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("key length %d exceeds limit %d", len(key), parsum.MaxKeyLen))
		return false
	}
	return true
}

// ingest applies one decoded batch through the configured path: the
// batcher in async mode (waiting for its flush — group commit), the
// accumulator or keyed store directly otherwise. A non-empty key routes
// to the keyed store. It reports whether the batch was accepted, writing
// the shed-load or failure response itself when not.
func (s *Server) ingest(w http.ResponseWriter, r *http.Request, key string, xs []float64, sub bool) bool {
	if s.bat == nil {
		s.applyMu.RLock()
		if s.wal != nil {
			// Journal-then-apply: a decoded raw batch cannot fail, so the
			// record can be made durable before the state moves. A commit
			// failure rejects the request with state untouched.
			if key != "" {
				s.wal.AppendKeyed(key, xs, sub)
			} else {
				s.wal.AppendBatch(xs, sub)
			}
			if err := s.wal.Commit(); err != nil {
				s.applyMu.RUnlock()
				writeError(w, http.StatusInternalServerError, fmt.Errorf("journaling batch: %w", err))
				return false
			}
		}
		switch {
		case key != "" && sub:
			s.keyed.Sub(key, xs)
		case key != "":
			s.keyed.Add(key, xs)
		case sub:
			s.sh.SubBatch(xs)
		default:
			s.sh.AddBatch(xs)
		}
		s.applyMu.RUnlock()
		s.noteMutations(1)
		return true
	}
	var err error
	switch {
	case key != "" && sub:
		err = s.bat.SubKeyed(r.Context(), key, xs)
	case key != "":
		err = s.bat.AddKeyed(r.Context(), key, xs)
	case sub:
		err = s.bat.Sub(r.Context(), xs)
	default:
		err = s.bat.Add(r.Context(), xs)
	}
	switch {
	case err == nil:
		return true
	case errors.Is(err, batch.ErrNoKeyedSink):
		// A WrapSink seam hid the keyed store from the batcher.
		writeError(w, http.StatusNotImplemented, err)
		return false
	case errors.Is(err, batch.ErrQueueFull):
		// Fail fast, state untouched: the client should back off and
		// retry after the queue has had a chance to drain.
		s.st.bump(&s.st.rejected)
		w.Header().Set("Retry-After", s.retryAfter)
		writeError(w, http.StatusTooManyRequests, err)
		return false
	case errors.Is(err, batch.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return false
	default:
		// The client abandoned the request mid-wait; the batch is
		// admitted and will still be flushed, but there is nobody to
		// tell. 499-style situations get a plain 503.
		writeError(w, http.StatusServiceUnavailable, err)
		return false
	}
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	xs, key, ok := decodeBatch(w, r, body)
	if !ok {
		return
	}
	if !s.ingest(w, r, key, xs, false) {
		return
	}
	s.st.addBatch(len(xs), key != "")
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, AddResponse{Added: len(xs), Key: key})
}

func (s *Server) handleSub(w http.ResponseWriter, r *http.Request) {
	if !s.sh.Invertible() {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("engine %q does not support exact deletion", s.sh.Engine()))
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	xs, key, ok := decodeBatch(w, r, body)
	if !ok {
		return
	}
	if !s.ingest(w, r, key, xs, true) {
		return
	}
	s.st.subBatch(len(xs), key != "")
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, SubResponse{Removed: len(xs), Key: key})
}

func (s *Server) handlePushPartial(w http.ResponseWriter, r *http.Request) {
	blob, ok := readBody(w, r)
	if !ok {
		return
	}
	tok, ok := s.reserveIdem(w, r.Header.Get("Idempotency-Key"))
	if !ok {
		return
	}
	// Apply-then-journal: MergeBytes validates the whole blob before
	// touching state, so only accepted partials reach the log.
	s.applyMu.RLock()
	err := s.sh.MergeBytes(blob)
	var jerr error
	if err == nil {
		jerr = s.journalBlob(wal.RecPartial, tok, blob)
	}
	s.applyMu.RUnlock()
	if err != nil {
		s.releaseIdem(tok)
		status := http.StatusBadRequest
		if errors.Is(err, shard.ErrEngineMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	if jerr != nil {
		// Applied but not durable: the token stays reserved so a retry
		// does not double-apply, and the failure is on the WAL error
		// ledger.
		writeError(w, http.StatusInternalServerError, jerr)
		return
	}
	s.st.bump(&s.st.partials)
	s.noteMutations(1)
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, mergedResponse{Merged: 1})
}

func (s *Server) handleGetPartial(w http.ResponseWriter, r *http.Request) {
	blob, err := s.sh.SnapshotBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.st.bump(&s.st.sums)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	_, _ = w.Write(blob)
}

func (s *Server) handleSum(w http.ResponseWriter, r *http.Request) {
	if key := r.URL.Query().Get("key"); key != "" {
		if !checkKeyParam(w, key) {
			return
		}
		v, ok := s.keyed.Sum(key)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown key %q", key))
			return
		}
		s.st.bump(&s.st.keyedSums)
		writeJSON(w, http.StatusOK, SumResponse{
			Sum:    strconv.FormatFloat(v, 'g', -1, 64),
			Bits:   strconv.FormatUint(math.Float64bits(v), 16),
			Engine: s.keyed.Engine(),
			Shards: s.sh.NumShards(),
			Key:    key,
		})
		return
	}
	v := s.sh.Sum()
	s.st.bump(&s.st.sums)
	writeJSON(w, http.StatusOK, SumResponse{
		Sum:    strconv.FormatFloat(v, 'g', -1, 64),
		Bits:   strconv.FormatUint(math.Float64bits(v), 16),
		Engine: s.sh.Engine(),
		Shards: s.sh.NumShards(),
	})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	// Exclusive: a reset must not interleave with a journal+apply pair,
	// or replay could order the wipe differently than the live process
	// did. The reset record itself is journaled so recovery wipes state
	// at the same point in the history. The idempotency window survives
	// (see tokenWindow); so do the stats counters (monotone ledger).
	s.applyMu.Lock()
	s.sh.Reset()
	s.keyed.Reset()
	var jerr error
	if s.wal != nil {
		s.wal.AppendReset()
		jerr = s.wal.Commit()
	}
	s.applyMu.Unlock()
	if jerr != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reset applied but journal commit failed: %w", jerr))
		return
	}
	s.noteMutations(1)
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, struct {
		Reset bool `json:"reset"`
	}{Reset: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	c := s.st.snapshot()
	resp := StatsResponse{
		Engine:        s.sh.Engine(),
		Shards:        s.sh.NumShards(),
		Values:        c.values,
		Batches:       c.batches,
		Removed:       c.removed,
		SubBatches:    c.subBatches,
		Partials:      c.partials,
		SumsServed:    c.sums,
		Rejected:      c.rejected,
		Deduped:       c.deduped,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Keyed: KeyedStats{
			Partitions: s.keyed.Partitions(),
			Keys:       s.keyed.Len(),
			Values:     c.keyedValues,
			Batches:    c.keyedBatches,
			Removed:    c.keyedRemoved,
			SubBatches: c.keyedSubBatches,
			Partials:   c.keyedPartials,
			SumsServed: c.keyedSums,
		},
	}
	if s.bat != nil {
		m := s.bat.Metrics()
		o := s.bat.Options()
		resp.Async = &AsyncStats{
			QueueLen:   o.QueueLen,
			MaxBatch:   o.MaxBatch,
			MaxDelayMs: float64(o.MaxDelay) / float64(time.Millisecond),
			Flushers:   o.Flushers,

			Enqueued:        m.Enqueued,
			EnqueuedValues:  m.EnqueuedValues,
			Rejected:        m.Rejected,
			Flushes:         m.Flushes,
			FlushedRequests: m.FlushedRequests,
			FlushedValues:   m.FlushedValues,
			SizeFlushes:     m.SizeFlushes,
			DeadlineFlushes: m.DeadlineFlushes,
			DrainFlushes:    m.DrainFlushes,
			QueueDepth:      m.QueueDepth,
			FlushNsTotal:    m.FlushNs,

			KeyedEnqueued:        m.KeyedEnqueued,
			KeyedFlushedRequests: m.KeyedFlushedRequests,
		}
	}
	if s.wal != nil {
		m := s.wal.Metrics()
		resp.WAL = &WALStats{
			Fsync:     s.walFsync.String(),
			Records:   m.Records,
			Bytes:     m.Bytes,
			Commits:   m.Commits,
			Fsyncs:    m.Fsyncs,
			Rotations: m.Rotations,
			Snapshots: m.Snapshots,
			Errors:    m.Errors,
			Segments:  m.Segments,
			LastError: m.LastError,
			Recovery:  s.recovery,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves every counter in Prometheus text format. Counter
// families come from consistent snapshots (the server ledger under its
// one lock, the batcher ledger under its one lock), so no series in a
// scrape can contradict another from the same ledger.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.st.snapshot()
	var p batch.PromWriter
	p.Gauge("sumd_up", "Whether the service is serving (always 1 when scraped).", 1)
	p.Gauge("sumd_shards", "Writer-stripe count of the backing sharded accumulator.", float64(s.sh.NumShards()))
	p.Gauge("sumd_async", "Whether the batched async ingestion front-end is enabled.", b2f(s.bat != nil))
	p.Gauge("sumd_uptime_seconds", "Seconds since the server was constructed.", time.Since(s.start).Seconds())
	p.Counter("sumd_values_total", "Raw float64s accepted via /v1/add.", float64(c.values))
	p.Counter("sumd_batches_total", "Accepted /v1/add requests.", float64(c.batches))
	p.Counter("sumd_removed_total", "Raw float64s deleted via /v1/sub.", float64(c.removed))
	p.Counter("sumd_sub_batches_total", "Accepted /v1/sub requests.", float64(c.subBatches))
	p.Counter("sumd_partials_total", "Wire partials merged via POST /v1/partial.", float64(c.partials))
	p.Counter("sumd_sums_served_total", "Sum and partial-snapshot responses served.", float64(c.sums))
	p.Counter("sumd_rejected_total", "Ingest requests shed with 429 (queue full).", float64(c.rejected))
	p.Counter("sumd_dedup_hits_total", "Partial pushes answered from the idempotency window without re-merging.", float64(c.deduped))
	p.Gauge("sumd_keyed_partitions", "Partition count of the keyed store.", float64(s.keyed.Partitions()))
	p.Gauge("sumd_keyed_keys", "Live keys in the keyed store.", float64(s.keyed.Len()))
	p.Counter("sumd_keyed_values_total", "Raw float64s accepted via keyed /v1/add.", float64(c.keyedValues))
	p.Counter("sumd_keyed_batches_total", "Accepted keyed /v1/add requests.", float64(c.keyedBatches))
	p.Counter("sumd_keyed_removed_total", "Raw float64s deleted via keyed /v1/sub.", float64(c.keyedRemoved))
	p.Counter("sumd_keyed_sub_batches_total", "Accepted keyed /v1/sub requests.", float64(c.keyedSubBatches))
	p.Counter("sumd_keyed_partials_total", "Keys merged via POST /v1/keyed/partial.", float64(c.keyedPartials))
	p.Counter("sumd_keyed_sums_served_total", "Keyed sum and keyed partial-export responses served.", float64(c.keyedSums))
	if s.bat != nil {
		m := s.bat.Metrics()
		o := s.bat.Options()
		p.Gauge("sumd_ingest_queue_len", "Capacity of the bounded ingest queue (requests).", float64(o.QueueLen))
		p.Gauge("sumd_ingest_max_batch", "Pending-value count that triggers a flush.", float64(o.MaxBatch))
		p.Gauge("sumd_ingest_max_delay_seconds", "Latency budget before a deadline flush.", o.MaxDelay.Seconds())
		p.Gauge("sumd_ingest_queue_depth", "Requests admitted but not yet flushed.", float64(m.QueueDepth))
		p.Counter("sumd_ingest_enqueued_total", "Requests admitted to the ingest queue.", float64(m.Enqueued))
		p.Counter("sumd_ingest_enqueued_values_total", "Float64s admitted to the ingest queue.", float64(m.EnqueuedValues))
		p.Counter("sumd_ingest_rejected_total", "Requests refused because the ingest queue was full.", float64(m.Rejected))
		p.Counter("sumd_ingest_flushes_total", "Coalesced flushes applied to the accumulator.", float64(m.Flushes))
		p.Counter("sumd_ingest_flushed_values_total", "Float64s applied to the accumulator by flushes.", float64(m.FlushedValues))
		p.Counter("sumd_ingest_keyed_enqueued_total", "Keyed requests admitted to the ingest queue.", float64(m.KeyedEnqueued))
		p.Counter("sumd_ingest_keyed_flushed_requests_total", "Keyed requests completed by flushes.", float64(m.KeyedFlushedRequests))
		p.CounterVec("sumd_ingest_flush_cause_total", "Flushes by trigger.", "cause", map[string]float64{
			"size":     float64(m.SizeFlushes),
			"deadline": float64(m.DeadlineFlushes),
			"drain":    float64(m.DrainFlushes),
		})
		p.Histogram("sumd_ingest_flush_size", "Values per flush.",
			batch.SizeBuckets[:], m.SizeHist[:], float64(m.FlushedValues))
		p.Histogram("sumd_ingest_flush_latency_seconds", "Wall time inside accumulator flush calls.",
			batch.LatencyBuckets[:], m.LatencyHist[:], float64(m.FlushNs)/1e9)
	}
	bad, _ := s.degraded()
	p.Gauge("sumd_degraded", "Whether durability is degraded (healthz serving 503).", b2f(bad))
	p.Gauge("sumd_wal_enabled", "Whether the write-ahead log is journaling ingests.", b2f(s.wal != nil))
	if s.wal != nil {
		m := s.wal.Metrics()
		p.Counter("sumd_wal_records_total", "Mutation records journaled.", float64(m.Records))
		p.Counter("sumd_wal_bytes_total", "Frame bytes written to the journal (headers included).", float64(m.Bytes))
		p.Counter("sumd_wal_commits_total", "Journal commits (group commits in async mode).", float64(m.Commits))
		p.Counter("sumd_wal_fsyncs_total", "Fsyncs issued by the journal.", float64(m.Fsyncs))
		p.Counter("sumd_wal_rotations_total", "Segment rotations.", float64(m.Rotations))
		p.Counter("sumd_wal_snapshots_total", "State snapshots written (each truncates replayed segments).", float64(m.Snapshots))
		p.Counter("sumd_wal_errors_total", "Journal write, fsync, rotate, or snapshot failures.", float64(m.Errors))
		p.Gauge("sumd_wal_segments", "Live journal segment files.", float64(m.Segments))
		p.Gauge("sumd_wal_recovered_records", "Records replayed at startup.", float64(s.recovery.Records))
		p.Gauge("sumd_wal_recovered_truncated_bytes", "Torn-tail bytes dropped at startup.", float64(s.recovery.TruncatedBytes))
		p.Gauge("sumd_wal_recovered_snapshot", "Whether a snapshot seeded recovery at startup.", b2f(s.recovery.SnapshotLoaded))
	}
	w.Header().Set("Content-Type", batch.PromContentType)
	_, _ = w.Write(p.Bytes())
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// degraded reports whether the service can no longer keep its
// durability promise: a WAL write/fsync/rotate/snapshot failure that
// has not been followed by a durable success. While degraded, an ack
// might not survive a crash, so health flips to 503 — a monitor or load
// balancer pulls the node instead of feeding it writes it may lose.
func (s *Server) degraded() (bool, string) {
	if s.wal == nil {
		return false, ""
	}
	bad, lastErr := s.wal.Degraded()
	if !bad {
		return false, ""
	}
	return true, lastErr
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bad, lastErr := s.degraded()
	status := http.StatusOK
	if bad {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		OK       bool   `json:"ok"`
		Engine   string `json:"engine"`
		Shards   int    `json:"shards"`
		Degraded bool   `json:"degraded,omitempty"`
		Error    string `json:"error,omitempty"`
	}{OK: !bad, Engine: s.sh.Engine(), Shards: s.sh.NumShards(), Degraded: bad, Error: lastErr})
}

// handleReadyz is the readiness probe: identical degradation logic to
// /v1/healthz but with the conventional terse text body, so ingress
// health checks that expect "ok" can consume it directly.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if bad, lastErr := s.degraded(); bad {
		http.Error(w, "degraded: "+lastErr, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
