// Package sumdsrv implements the HTTP merge service behind cmd/sumd: a
// network-facing reducer backed by a parsum.Sharded accumulator. Workers
// anywhere combine their slice of the input locally (the paper's map-side
// combiner), serialize the exact partial with the versioned wire codec,
// and POST it here; the service merges partials carry-free and rounds once
// when a sum is requested. Because every exchange is an exact
// superaccumulator partial, the served sum is bit-identical to summing the
// concatenated input sequentially — regardless of how the input was
// partitioned across workers, the order partials arrive, or how many
// shards the service runs.
//
// Endpoints (all under /v1):
//
//	POST /v1/add      raw little-endian float64s (application/octet-stream)
//	                  or JSON {"values":[...]} — ingest values directly
//	POST /v1/sub      same body formats — delete previously ingested values
//	                  exactly (the superaccumulator group inverse); the
//	                  served sum is bit-identical to summing the surviving
//	                  multiset from scratch
//	POST /v1/partial  a wire partial (Accumulator.MarshalBinary /
//	                  Sharded.SnapshotBytes) — merge a remote partial
//	GET  /v1/partial  the service's own state as a wire partial, so sumd
//	                  instances can chain into reduction trees
//	GET  /v1/sum      {"sum":"<decimal>","bits":"<hex>",...} — rounded once
//	POST /v1/reset    empty the accumulator
//	GET  /v1/stats    ingestion counters
//	GET  /v1/healthz  liveness + configuration
//
// Malformed payloads are rejected with 400 (decode error) or 409 (engine
// mismatch) and never disturb accumulated state; bodies are size-capped.
package sumdsrv

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parsum"
	"parsum/internal/shard"
)

// MaxBodyBytes is the default request-body cap (64 MiB ≈ 8M float64s per
// batch); Options.MaxBodyBytes overrides it per server.
const MaxBodyBytes = 64 << 20

// Options configures a Server; the zero value is ready to use (dense
// engine, one shard per P, 64 MiB body cap).
type Options struct {
	// Engine names the summation engine backing the service; "" means
	// dense. It must be streaming, deterministic-parallel, and
	// wire-marshalable (the four superaccumulator engines qualify).
	Engine string
	// Shards is the writer-stripe count of the backing Sharded; 0 means
	// GOMAXPROCS.
	Shards int
	// MaxBodyBytes caps every request body; a request exceeding it gets
	// 413 and never disturbs accumulated state. 0 means the MaxBodyBytes
	// constant; negative is rejected by New.
	MaxBodyBytes int64
}

// Server is the merge service. It implements http.Handler and is safe for
// concurrent use.
type Server struct {
	sh      *parsum.Sharded
	mux     *http.ServeMux
	start   time.Time
	maxBody int64

	values     atomic.Int64 // raw float64s ingested via /v1/add
	batches    atomic.Int64 // /v1/add requests
	removed    atomic.Int64 // raw float64s deleted via /v1/sub
	subBatches atomic.Int64 // /v1/sub requests
	partials   atomic.Int64 // wire partials merged via POST /v1/partial
	sums       atomic.Int64 // /v1/sum and GET /v1/partial responses
}

// New returns a Server backed by a fresh Sharded accumulator. It errors
// when the engine cannot back a deterministic sharded accumulator or its
// partials cannot cross the wire.
func New(opt Options) (*Server, error) {
	if opt.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("sumd: negative body cap %d", opt.MaxBodyBytes)
	}
	maxBody := opt.MaxBodyBytes
	if maxBody == 0 {
		maxBody = MaxBodyBytes
	}
	sh, err := parsum.NewSharded(parsum.ShardedOptions{Engine: opt.Engine, Shards: opt.Shards})
	if err != nil {
		return nil, err
	}
	// Fail at construction, not first snapshot, if partials cannot ship.
	if _, err := sh.SnapshotBytes(); err != nil {
		return nil, fmt.Errorf("sumd: engine %q cannot serve wire partials: %w", sh.Engine(), err)
	}
	s := &Server{sh: sh, mux: http.NewServeMux(), start: time.Now(), maxBody: maxBody}
	s.mux.HandleFunc("POST /v1/add", s.handleAdd)
	s.mux.HandleFunc("POST /v1/sub", s.handleSub)
	s.mux.HandleFunc("POST /v1/partial", s.handlePushPartial)
	s.mux.HandleFunc("GET /v1/partial", s.handleGetPartial)
	s.mux.HandleFunc("GET /v1/sum", s.handleSum)
	s.mux.HandleFunc("POST /v1/reset", s.handleReset)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s, nil
}

// Engine returns the registry name of the backing engine.
func (s *Server) Engine() string { return s.sh.Engine() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	s.mux.ServeHTTP(w, r)
}

// SumResponse is the GET /v1/sum payload. Sum is the shortest decimal
// that round-trips to the exact float64 ("NaN", "+Inf", "-Inf" for
// non-finite results); Bits is its IEEE-754 bit pattern in hex — the
// field distributed bit-identity checks should compare.
type SumResponse struct {
	Sum    string `json:"sum"`
	Bits   string `json:"bits"`
	Engine string `json:"engine"`
	Shards int    `json:"shards"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Engine        string `json:"engine"`
	Shards        int    `json:"shards"`
	Values        int64  `json:"values"`
	Batches       int64  `json:"batches"`
	Removed       int64  `json:"removed"`
	SubBatches    int64  `json:"sub_batches"`
	Partials      int64  `json:"partials"`
	SumsServed    int64  `json:"sums_served"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// AddRequest is the JSON form of POST /v1/add and /v1/sub. The binary form
// (application/octet-stream, raw little-endian float64s) is preferred for
// bulk and is the only way to ship non-finite values.
type AddRequest struct {
	Values []float64 `json:"values"`
}

// AddResponse is the POST /v1/add payload.
type AddResponse struct {
	Added int `json:"added"`
}

// SubResponse is the POST /v1/sub payload.
type SubResponse struct {
	Removed int `json:"removed"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// readBody drains a size-capped request body, mapping the cap being hit
// to 413 (split and retry) rather than 400 (malformed payload).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return nil, false
	}
	return body, true
}

// decodeBatch parses the shared /v1/add and /v1/sub body formats: raw
// little-endian float64s (application/octet-stream) or a single JSON
// {"values":[...]} document. It writes the error response itself and
// reports ok = false on malformed payloads.
func decodeBatch(w http.ResponseWriter, r *http.Request, body []byte) (xs []float64, ok bool) {
	// Content-Type may carry parameters (RFC 9110); route on the media
	// type alone.
	mediaType := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(mediaType); err == nil {
		mediaType = mt
	}
	if mediaType == "application/octet-stream" {
		if len(body)%8 != 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("binary batch length %d is not a multiple of 8", len(body)))
			return nil, false
		}
		xs = make([]float64, len(body)/8)
		for i := range xs {
			xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return xs, true
	}
	var req AddRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON batch: %w", err))
		return nil, false
	}
	// A batch is one JSON value; trailing content would otherwise be
	// silently dropped data.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON batch"))
		return nil, false
	}
	return req.Values, true
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	xs, ok := decodeBatch(w, r, body)
	if !ok {
		return
	}
	s.sh.AddBatch(xs)
	s.batches.Add(1)
	s.values.Add(int64(len(xs)))
	writeJSON(w, http.StatusOK, AddResponse{Added: len(xs)})
}

func (s *Server) handleSub(w http.ResponseWriter, r *http.Request) {
	if !s.sh.Invertible() {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("engine %q does not support exact deletion", s.sh.Engine()))
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	xs, ok := decodeBatch(w, r, body)
	if !ok {
		return
	}
	s.sh.SubBatch(xs)
	s.subBatches.Add(1)
	s.removed.Add(int64(len(xs)))
	writeJSON(w, http.StatusOK, SubResponse{Removed: len(xs)})
}

func (s *Server) handlePushPartial(w http.ResponseWriter, r *http.Request) {
	blob, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := s.sh.MergeBytes(blob); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, shard.ErrEngineMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	s.partials.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Merged int `json:"merged"`
	}{Merged: 1})
}

func (s *Server) handleGetPartial(w http.ResponseWriter, r *http.Request) {
	blob, err := s.sh.SnapshotBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.sums.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	_, _ = w.Write(blob)
}

func (s *Server) handleSum(w http.ResponseWriter, r *http.Request) {
	v := s.sh.Sum()
	s.sums.Add(1)
	writeJSON(w, http.StatusOK, SumResponse{
		Sum:    strconv.FormatFloat(v, 'g', -1, 64),
		Bits:   strconv.FormatUint(math.Float64bits(v), 16),
		Engine: s.sh.Engine(),
		Shards: s.sh.NumShards(),
	})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.sh.Reset()
	writeJSON(w, http.StatusOK, struct {
		Reset bool `json:"reset"`
	}{Reset: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Engine:        s.sh.Engine(),
		Shards:        s.sh.NumShards(),
		Values:        s.values.Load(),
		Batches:       s.batches.Load(),
		Removed:       s.removed.Load(),
		SubBatches:    s.subBatches.Load(),
		Partials:      s.partials.Load(),
		SumsServed:    s.sums.Load(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK     bool   `json:"ok"`
		Engine string `json:"engine"`
		Shards int    `json:"shards"`
	}{OK: true, Engine: s.sh.Engine(), Shards: s.sh.NumShards()})
}
