// End-to-end tests for the deletion half of the protocol: POST /v1/sub
// deletes previously ingested values exactly, so the served sum after any
// add/sub history over HTTP is bit-identical to parsum.Sum of the
// surviving multiset — including non-finite values, which the service's
// in-memory group representation deletes without a trace.
package sumdsrv_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/sumdsrv"
)

func TestE2ESubRestoresBits(t *testing.T) {
	keep := gen.New(gen.Config{Dist: gen.Random, N: 20000, Delta: 1500, Seed: 81}).Slice()
	churn := gen.New(gen.Config{Dist: gen.Anderson, N: 15000, Delta: 900, Seed: 82}).Slice()
	churn = append(churn, math.Inf(1), math.NaN(), math.Inf(-1), math.MaxFloat64)
	want := parsum.Sum(keep)

	for _, engineName := range []string{"dense", "sparse", "small", "large"} {
		c, _ := startService(t, sumdsrv.Options{Engine: engineName, Shards: 3})
		ctx := context.Background()

		// Concurrent workers: each adds its slice of keep∪churn, then
		// deletes its slice of churn again over the socket.
		var wg sync.WaitGroup
		for _, part := range splitSlices(keep, 4) {
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				if err := c.AddBatch(ctx, part); err != nil {
					t.Error(err)
				}
			}(part)
		}
		for _, part := range splitSlices(churn, 3) {
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				if err := c.AddBatch(ctx, part); err != nil {
					t.Error(err)
				}
				if err := c.SubBatch(ctx, part); err != nil {
					t.Error(err)
				}
			}(part)
		}
		wg.Wait()

		got, err := c.Sum(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: served %x, want %x", engineName,
				math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestE2ESubSpecialsRecover: an infinity spike ingested over HTTP and then
// deleted over HTTP leaves a finite, exact sum — the property no sticky
// special tracking could provide.
func TestE2ESubSpecialsRecover(t *testing.T) {
	c, _ := startService(t, sumdsrv.Options{Shards: 2})
	ctx := context.Background()
	if err := c.AddBatch(ctx, []float64{1e100, 1, -1e100, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("with live spike: %g, want +Inf", got)
	}
	if err := c.SubBatch(ctx, []float64{math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if got, err = c.Sum(ctx); err != nil || got != 1 {
		t.Fatalf("after deleting spike: %g (%v), want 1", got, err)
	}
}

// TestE2ESubSpecialMultiplicityAcrossWire: special multiplicities survive
// the partial codec, so deleting a non-finite value that arrived via a
// flushed combiner partial is still exact — two NaNs shipped in one
// partial need two deletions, not one.
func TestE2ESubSpecialMultiplicityAcrossWire(t *testing.T) {
	c, _ := startService(t, sumdsrv.Options{})
	ctx := context.Background()
	co, err := c.NewCombiner("")
	if err != nil {
		t.Fatal(err)
	}
	co.AddSlice([]float64{7, math.NaN(), math.NaN()})
	if err := co.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.SubBatch(ctx, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got) {
		t.Fatalf("one NaN deleted of two shipped: %g, want NaN (a NaN survives)", got)
	}
	if err := c.SubBatch(ctx, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if got, err = c.Sum(ctx); err != nil || got != 7 {
		t.Fatalf("both NaNs deleted: %g (%v), want 7", got, err)
	}

	// The reverse direction: a combiner that only retracted an Inf ships
	// a −1 multiplicity that must cancel a live Inf on the service.
	if err := c.AddBatch(ctx, []float64{math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	co2, err := c.NewCombiner("")
	if err != nil {
		t.Fatal(err)
	}
	co2.Sub(math.Inf(1))
	if err := co2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err = c.Sum(ctx); err != nil || got != 7 {
		t.Fatalf("net-negative Inf partial did not cancel: %g (%v), want 7", got, err)
	}
}

// TestE2ESubJSONAndStats: the JSON body form works on /v1/sub, the
// response reports the removed count, and the deletion counters surface in
// /v1/stats.
func TestE2ESubJSONAndStats(t *testing.T) {
	c, hs := startService(t, sumdsrv.Options{})
	ctx := context.Background()
	if err := c.AddBatch(ctx, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Post(hs.URL+"/v1/sub", "application/json",
		strings.NewReader(`{"values":[2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr sumdsrv.SubResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Removed != 2 {
		t.Fatalf("removed = %d, want 2", sr.Removed)
	}

	if got, err := c.Sum(ctx); err != nil || got != 1 {
		t.Fatalf("after JSON sub: %g (%v), want 1", got, err)
	}

	stats, err := hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var st sumdsrv.StatsResponse
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.SubBatches != 1 {
		t.Fatalf("stats removed=%d sub_batches=%d, want 2,1", st.Removed, st.SubBatches)
	}
}

// TestE2ESubRejections: malformed deletion payloads are rejected with 400
// and leave the accumulated state untouched.
func TestE2ESubRejections(t *testing.T) {
	c, hs := startService(t, sumdsrv.Options{})
	ctx := context.Background()
	if err := c.AddBatch(ctx, []float64{7}); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]struct {
		ct   string
		data string
	}{
		"odd-binary":    {"application/octet-stream", "abc"},
		"bad-json":      {"application/json", `{"values":[1,`},
		"trailing-json": {"application/json", `{"values":[1]} {"values":[2]}`},
		"unknown-field": {"application/json", `{"value":[1]}`},
	} {
		resp, err := hs.Client().Post(hs.URL+"/v1/sub", body.ct, strings.NewReader(body.data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if got, err := c.Sum(ctx); err != nil || got != 7 {
		t.Fatalf("state disturbed by rejected payloads: %g (%v), want 7", got, err)
	}
}
