package sumdsrv

// Keyed endpoints: the network surface of the multi-key exact
// aggregation store.
//
//	POST /v1/add?key=K    (or JSON {"key":K,...}) — ingest into key K
//	POST /v1/sub?key=K    — delete from key K exactly
//	GET  /v1/sum?key=K    — key K's sum, rounded once (404 when absent)
//	GET  /v1/keys         — sorted live keys; ?lo=&hi= select a range
//	GET  /v1/keyed/partial — the keyed state as one binary keyed
//	                  envelope (?lo=&hi= select a key range;
//	                  ?format=json returns per-key wire partials in JSON)
//	POST /v1/keyed/partial — merge a keyed envelope (octet-stream) or a
//	                  JSON {"partials":[{"key":...,"blob":...}]} document
//
// The push/pull pair is the anti-entropy loop: two sumd instances that
// exchange GET→POST in either order converge to bit-identical per-key
// sums (the keyed store's CRDT property), and a pull of [lo, hi)
// followed by a remote push and a local reset of that range is an exact
// key-range rebalance. Malformed or engine-mismatched payloads are
// rejected (400/409) without disturbing any key.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"

	"parsum"
	"parsum/internal/keyed"
	"parsum/internal/wal"
)

// KeysResponse is the GET /v1/keys payload.
type KeysResponse struct {
	Keys  []string `json:"keys"`
	Count int      `json:"count"`
}

// KeyedPartialsRequest is the JSON form of POST /v1/keyed/partial; each
// blob is a base64-encoded engine wire partial (the bytes of
// Accumulator.MarshalBinary).
type KeyedPartialsRequest struct {
	Partials []parsum.KeyPartial `json:"partials"`
}

// KeyedPartialsResponse is the JSON form of GET /v1/keyed/partial.
type KeyedPartialsResponse struct {
	Engine   string              `json:"engine"`
	Partials []parsum.KeyPartial `json:"partials"`
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lo, hi := q.Get("lo"), q.Get("hi")
	keys := s.keyed.KeysRange(lo, hi)
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, KeysResponse{Keys: keys, Count: len(keys)})
}

// handleGetKeyed serves the keyed state — the pull half of the keyed
// exchange. Default is the binary keyed envelope; ?format=json serves
// per-key wire partials for consumers that cannot carry binary bodies.
func (s *Server) handleGetKeyed(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lo, hi := q.Get("lo"), q.Get("hi")
	switch format := q.Get("format"); format {
	case "", "binary":
		blob, err := s.keyed.ExportRange(lo, hi)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.st.bump(&s.st.keyedSums)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		_, _ = w.Write(blob)
	case "json":
		ps, err := s.keyed.ExportPartials(lo, hi)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if ps == nil {
			ps = []parsum.KeyPartial{}
		}
		s.st.bump(&s.st.keyedSums)
		writeJSON(w, http.StatusOK, KeyedPartialsResponse{Engine: s.keyed.Engine(), Partials: ps})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want binary or json)", format))
	}
}

// handlePushKeyed merges remote keyed state — the push half of the keyed
// exchange. Both body forms validate the entire payload before touching
// any key, so a rejected push leaves the store bit-for-bit unchanged —
// which is also why the journal records the body only after the merge
// accepted it (apply-then-journal, like /v1/partial). An Idempotency-Key
// header deduplicates retried pushes through the token window.
func (s *Server) handlePushKeyed(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	mediaType := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(mediaType); err == nil {
		mediaType = mt
	}
	tok, ok := s.reserveIdem(w, r.Header.Get("Idempotency-Key"))
	if !ok {
		return
	}
	var merged int
	var jerr error
	if mediaType == "application/octet-stream" {
		s.applyMu.RLock()
		err := s.keyed.ImportMerge(body)
		if err == nil {
			jerr = s.journalBlob(wal.RecKeyedEnvelope, tok, body)
		}
		s.applyMu.RUnlock()
		if err != nil {
			s.releaseIdem(tok)
			writeKeyedMergeError(w, err)
			return
		}
		// The envelope was validated whole; count its entries the cheap
		// way (a second decode would double the work): every entry is one
		// key merged.
		merged = countEnvelopeEntries(body)
	} else {
		var req KeyedPartialsRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.releaseIdem(tok)
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding keyed partials: %w", err))
			return
		}
		if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
			s.releaseIdem(tok)
			writeError(w, http.StatusBadRequest, errors.New("trailing data after keyed partials"))
			return
		}
		s.applyMu.RLock()
		err := s.keyed.MergeKeyPartials(req.Partials)
		if err == nil {
			jerr = s.journalBlob(wal.RecKeyedJSON, tok, body)
		}
		s.applyMu.RUnlock()
		if err != nil {
			s.releaseIdem(tok)
			writeKeyedMergeError(w, err)
			return
		}
		merged = len(req.Partials)
	}
	if jerr != nil {
		// Applied but not durable; the token stays reserved so a retry is
		// a no-op (see handlePushPartial).
		writeError(w, http.StatusInternalServerError, jerr)
		return
	}
	s.st.addKeyedPartials(merged)
	s.noteMutations(1)
	s.maybeSnapshot()
	writeJSON(w, http.StatusOK, mergedResponse{Merged: merged})
}

func writeKeyedMergeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, keyed.ErrEngineMismatch) {
		status = http.StatusConflict
	}
	writeError(w, status, err)
}

// countEnvelopeEntries returns the entry count claimed by an
// already-validated keyed envelope (magic, version, engLen, engine name,
// then the count uvarint).
func countEnvelopeEntries(blob []byte) int {
	if len(blob) < 3 {
		return 0
	}
	rest := blob[3+int(blob[2]):]
	n := 0
	shift := 0
	for _, b := range rest {
		n |= int(b&0x7F) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	return n
}
