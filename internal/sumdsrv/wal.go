package sumdsrv

// Durability wiring: the glue between the HTTP surface and internal/wal.
//
// Every state-mutating request is journaled and committed before its 200
// is written, so "acknowledged" implies "recoverable". The two ingestion
// paths meet the journal differently:
//
//   - Raw value batches (/v1/add, /v1/sub) cannot fail validation once
//     decoded, so the sync path journals first and applies second; in
//     async mode the walSink wrapper journals each flush group and
//     commits once per flush — the batcher's group commit doubles as a
//     group fsync.
//   - Partial/envelope pushes validate inside the accumulator merge, so
//     they apply first (keeping garbage out of the log) and journal the
//     already-accepted blob second.
//
// Both orders preserve the contract: an acknowledged mutation is in the
// log; an unacknowledged one may land on either side of a crash.
//
// applyMu serializes mutations against whole-state captures: every
// journal+apply pair holds it shared, while reset and snapshot capture
// hold it exclusively, so a snapshot is a clean cut of the history —
// everything journaled before the snapshot's base segment is inside it,
// everything after replays on top.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"parsum"
	"parsum/internal/batch"
	"parsum/internal/wal"
)

// maxIdemToken bounds the Idempotency-Key header; longer tokens are
// rejected at the network edge (the journal's own token bound is higher,
// so an accepted token always round-trips through recovery).
const maxIdemToken = 256

// tokenWindow is the bounded idempotency-dedup window: the most recent
// cap tokens from acknowledged partial pushes. A retried push whose
// token is still in the window is answered 200 without re-merging, so a
// client that lost a response cannot double-apply a partial. Tokens ride
// the journal and snapshots, so the window survives recovery, and they
// deliberately survive /v1/reset: a pre-reset push retried after the
// reset must not re-apply state the reset wiped.
type tokenWindow struct {
	mu   sync.Mutex
	cap  int
	set  map[string]struct{}
	fifo []string // oldest first
}

func newTokenWindow(capacity int) *tokenWindow {
	return &tokenWindow{cap: capacity, set: make(map[string]struct{}, capacity)}
}

// reserve claims tok, evicting the oldest entry when full. It reports
// false when tok is already in the window (a duplicate).
func (t *tokenWindow) reserve(tok string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.set[tok]; dup {
		return false
	}
	if len(t.fifo) >= t.cap {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		delete(t.set, old)
	}
	t.set[tok] = struct{}{}
	t.fifo = append(t.fifo, tok)
	return true
}

// release drops a reservation made for a push that then failed, so a
// corrected retry with the same token is not treated as a duplicate.
func (t *tokenWindow) release(tok string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.set[tok]; !ok {
		return
	}
	delete(t.set, tok)
	for i := len(t.fifo) - 1; i >= 0; i-- { // newest first: releases undo fresh reservations
		if t.fifo[i] == tok {
			t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
			break
		}
	}
}

// snapshot copies the window, oldest first, for inclusion in a WAL
// snapshot.
func (t *tokenWindow) snapshot() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.fifo))
	copy(out, t.fifo)
	return out
}

// load seeds the window from a recovered snapshot (oldest first).
func (t *tokenWindow) load(toks []string) {
	for _, tok := range toks {
		t.reserve(tok)
	}
}

// WALStats is the journal's health and recovery report inside
// StatsResponse (WAL-enabled servers only). The counter fields are
// monotone over the process lifetime, like every other stats counter.
type WALStats struct {
	Fsync     string `json:"fsync"`
	Records   int64  `json:"records"`
	Bytes     int64  `json:"bytes"`
	Commits   int64  `json:"commits"`
	Fsyncs    int64  `json:"fsyncs"`
	Rotations int64  `json:"rotations"`
	Snapshots int64  `json:"snapshots"`
	Errors    int64  `json:"errors"`
	Segments  int64  `json:"segments"`
	LastError string `json:"last_error,omitempty"`

	Recovery WALRecovery `json:"recovery"`
}

// WALRecovery describes what Open found when this process started.
type WALRecovery struct {
	SnapshotLoaded bool  `json:"snapshot_loaded"`
	Segments       int   `json:"segments"`
	Records        int   `json:"records"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	Torn           bool  `json:"torn"`
}

// mergedResponse is the POST /v1/partial and /v1/keyed/partial payload.
// Duplicate marks a retry answered from the idempotency window: the
// original push is already applied, nothing was merged again.
type mergedResponse struct {
	Merged    int  `json:"merged"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// reserveIdem claims the request's Idempotency-Key token. ok=false means
// the response has already been written — either a 400 (over-long token)
// or the duplicate short-circuit. The empty token means "no idempotency
// requested" and is never deduplicated.
func (s *Server) reserveIdem(w http.ResponseWriter, tok string) (string, bool) {
	if tok == "" {
		return "", true
	}
	if len(tok) > maxIdemToken {
		writeError(w, http.StatusBadRequest, fmt.Errorf("idempotency token length %d exceeds limit %d", len(tok), maxIdemToken))
		return "", false
	}
	if s.tokens != nil && !s.tokens.reserve(tok) {
		s.st.bump(&s.st.deduped)
		writeJSON(w, http.StatusOK, mergedResponse{Merged: 0, Duplicate: true})
		return "", false
	}
	return tok, true
}

// releaseIdem undoes a reservation after the push it covered failed.
func (s *Server) releaseIdem(tok string) {
	if tok != "" && s.tokens != nil {
		s.tokens.release(tok)
	}
}

// journalBlob appends one already-applied blob record and commits. The
// caller holds applyMu (shared). A nil error means the record is durable
// per the fsync policy.
func (s *Server) journalBlob(t wal.Type, tok string, blob []byte) error {
	if s.wal == nil {
		return nil
	}
	s.wal.AppendBlob(t, tok, blob)
	if err := s.wal.Commit(); err != nil {
		return fmt.Errorf("merged but journal commit failed: %w", err)
	}
	return nil
}

// noteMutations advances the snapshot trigger counter.
func (s *Server) noteMutations(n int64) {
	if s.wal != nil {
		s.walSince.Add(n)
	}
}

// maybeSnapshot writes a WAL snapshot when enough mutations accumulated
// since the last one. It takes applyMu exclusively, so the captured
// state is a clean cut; call it only from request goroutines that hold
// no locks (never from inside a flush, which runs under applyMu shared).
func (s *Server) maybeSnapshot() {
	if s.wal == nil || s.snapEvery <= 0 || s.walSince.Load() < s.snapEvery {
		return
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.walSince.Load() < s.snapEvery { // lost the race to another snapshotter
		return
	}
	snap, err := s.captureState()
	if err != nil {
		return // engines that cannot snapshot were rejected by New
	}
	if err := s.wal.WriteSnapshot(snap); err != nil {
		return // counted in the journal's error ledger
	}
	s.walSince.Store(0)
}

// captureState serializes the full service state. Callers hold applyMu
// exclusively.
func (s *Server) captureState() (*wal.Snapshot, error) {
	global, err := s.sh.SnapshotBytes()
	if err != nil {
		return nil, err
	}
	keyedBlob, err := s.keyed.ExportAll()
	if err != nil {
		return nil, err
	}
	snap := &wal.Snapshot{Global: global, Keyed: keyedBlob}
	if s.tokens != nil {
		snap.Tokens = s.tokens.snapshot()
	}
	return snap, nil
}

// recover seeds the server from what wal.Open reconstructed: snapshot
// first, then the journaled records in order. Replay errors are
// construction errors — they mean the directory belongs to a different
// configuration (e.g. another engine), and silently dropping records
// would break the durability contract.
func (s *Server) recover(rec *wal.Recovered) error {
	if snap := rec.Snapshot; snap != nil {
		if len(snap.Global) > 0 {
			if err := s.sh.MergeBytes(snap.Global); err != nil {
				return fmt.Errorf("sumd: wal snapshot global state: %w", err)
			}
		}
		if len(snap.Keyed) > 0 {
			if err := s.keyed.ImportMerge(snap.Keyed); err != nil {
				return fmt.Errorf("sumd: wal snapshot keyed state: %w", err)
			}
		}
		if s.tokens != nil {
			s.tokens.load(snap.Tokens)
		}
	}
	for i, r := range rec.Records {
		if err := s.applyRecord(r); err != nil {
			return fmt.Errorf("sumd: wal replay record %d (%s): %w", i, r.Type, err)
		}
	}
	s.recovery = WALRecovery{
		SnapshotLoaded: rec.Stats.SnapshotLoaded,
		Segments:       rec.Stats.Segments,
		Records:        rec.Stats.Records,
		TruncatedBytes: rec.Stats.TruncatedBytes,
		Torn:           rec.Stats.Torn,
	}
	return nil
}

// applyRecord replays one journaled mutation during recovery.
func (s *Server) applyRecord(r wal.Record) error {
	switch r.Type {
	case wal.RecAdd:
		s.sh.AddBatch(r.Values)
	case wal.RecSub:
		if !s.sh.Invertible() {
			return fmt.Errorf("engine %q cannot replay deletions", s.sh.Engine())
		}
		s.sh.SubBatch(r.Values)
	case wal.RecKeyedAdd, wal.RecKeyedSub:
		if err := checkRecKey(r.Key); err != nil {
			return err
		}
		if r.Type == wal.RecKeyedSub {
			if !s.keyed.Invertible() {
				return fmt.Errorf("engine %q cannot replay keyed deletions", s.keyed.Engine())
			}
			s.keyed.Sub(r.Key, r.Values)
		} else {
			s.keyed.Add(r.Key, r.Values)
		}
	case wal.RecPartial:
		if err := s.sh.MergeBytes(r.Blob); err != nil {
			return err
		}
		s.reserveReplayed(r.Token)
	case wal.RecKeyedEnvelope:
		if err := s.keyed.ImportMerge(r.Blob); err != nil {
			return err
		}
		s.reserveReplayed(r.Token)
	case wal.RecKeyedJSON:
		var req KeyedPartialsRequest
		if err := json.Unmarshal(r.Blob, &req); err != nil {
			return err
		}
		if err := s.keyed.MergeKeyPartials(req.Partials); err != nil {
			return err
		}
		s.reserveReplayed(r.Token)
	case wal.RecReset:
		s.sh.Reset()
		s.keyed.Reset()
	default:
		return fmt.Errorf("unknown record type %d", r.Type)
	}
	return nil
}

func (s *Server) reserveReplayed(tok string) {
	if tok != "" && s.tokens != nil {
		s.tokens.reserve(tok)
	}
}

func checkRecKey(key string) error {
	if key == "" {
		return fmt.Errorf("keyed record with empty key")
	}
	if len(key) > parsum.MaxKeyLen {
		return fmt.Errorf("keyed record key length %d exceeds limit %d", len(key), parsum.MaxKeyLen)
	}
	return nil
}

// walSink interposes the journal between the batcher and the real sink.
// Each flush group is journaled and committed in one Commit before it is
// applied — group commit in the batcher is group commit in the journal —
// and the whole journal+apply pair holds applyMu shared so snapshots cut
// between flushes, never through one. A journal-commit failure here
// cannot fail the flush (the batch API has no error path back to the
// waiting requests); it is recorded on the journal's error ledger and
// surfaces as sumd_wal_errors_total.
type walSink struct {
	s     *Server
	inner batch.Sink
	slice batch.SliceSink // non-nil when inner batches natively
}

func (ws walSink) AddBatch(xs []float64) {
	ws.s.applyMu.RLock()
	ws.s.wal.AppendBatch(xs, false)
	_ = ws.s.wal.Commit()
	ws.inner.AddBatch(xs)
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(1)
}

func (ws walSink) SubBatch(xs []float64) {
	ws.s.applyMu.RLock()
	ws.s.wal.AppendBatch(xs, true)
	_ = ws.s.wal.Commit()
	ws.inner.SubBatch(xs)
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(1)
}

func (ws walSink) AddBatches(batches [][]float64) {
	ws.s.applyMu.RLock()
	for _, xs := range batches {
		ws.s.wal.AppendBatch(xs, false)
	}
	_ = ws.s.wal.Commit()
	if ws.slice != nil {
		ws.slice.AddBatches(batches)
	} else {
		for _, xs := range batches {
			ws.inner.AddBatch(xs)
		}
	}
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(int64(len(batches)))
}

func (ws walSink) SubBatches(batches [][]float64) {
	ws.s.applyMu.RLock()
	for _, xs := range batches {
		ws.s.wal.AppendBatch(xs, true)
	}
	_ = ws.s.wal.Commit()
	if ws.slice != nil {
		ws.slice.SubBatches(batches)
	} else {
		for _, xs := range batches {
			ws.inner.SubBatch(xs)
		}
	}
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(int64(len(batches)))
}

// walKeyedSink extends walSink with the keyed flush path. It exists as a
// separate type so that wrapping a sink that does NOT implement the
// keyed interface yields a wrapper that does not either — the batcher's
// 501 contract for keyed-less sinks must survive the journal interposer.
type walKeyedSink struct {
	walSink
	keyed batch.KeyedSink
}

func (ws walKeyedSink) AddKeyedBatches(batches []parsum.KeyedBatch) {
	ws.s.applyMu.RLock()
	for _, b := range batches {
		ws.s.wal.AppendKeyed(b.Key, b.Values, false)
	}
	_ = ws.s.wal.Commit()
	ws.keyed.AddKeyedBatches(batches)
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(int64(len(batches)))
}

func (ws walKeyedSink) SubKeyedBatches(batches []parsum.KeyedBatch) {
	ws.s.applyMu.RLock()
	for _, b := range batches {
		ws.s.wal.AppendKeyed(b.Key, b.Values, true)
	}
	_ = ws.s.wal.Commit()
	ws.keyed.SubKeyedBatches(batches)
	ws.s.applyMu.RUnlock()
	ws.s.walSince.Add(int64(len(batches)))
}
