// Tests of the configurable request-body cap: an oversized batch must be
// rejected with 413 before any of it reaches the accumulator, so a
// worker that hits the cap can split and retry without having partially
// ingested the batch.
package sumdsrv_test

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parsum/internal/sumdsrv"
)

// postBinary POSTs raw little-endian float64s to path on hs.
func postBinary(t *testing.T, hs *httptest.Server, path string, xs []float64) *http.Response {
	t.Helper()
	body := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(x))
	}
	resp, err := hs.Client().Post(hs.URL+path, "application/octet-stream", bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func sumBits(t *testing.T, hs *httptest.Server) string {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + "/v1/sum")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr sumdsrv.SumResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.Bits
}

func TestMaxBodyBytesConfigurable(t *testing.T) {
	// A cap of 80 bytes admits batches of up to 10 float64s.
	srv, err := sumdsrv.New(sumdsrv.Options{MaxBodyBytes: 80})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	small := []float64{1, 2, 3}
	if resp := postBinary(t, hs, "/v1/add", small); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch under the cap: got %d, want 200", resp.StatusCode)
	}
	before := sumBits(t, hs)

	// 11 values = 88 bytes: one byte class over the cap. The whole batch
	// must be refused and the accumulated state untouched.
	big := make([]float64, 11)
	for i := range big {
		big[i] = 1e100
	}
	for _, path := range []string{"/v1/add", "/v1/sub", "/v1/partial"} {
		resp := postBinary(t, hs, path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s over the cap: got %d, want 413", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if after := sumBits(t, hs); after != before {
		t.Fatalf("rejected batches disturbed state: sum bits %s -> %s", before, after)
	}

	// The default-cap server still takes the same 88-byte batch.
	srvDef, err := sumdsrv.New(sumdsrv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hsDef := httptest.NewServer(srvDef)
	defer hsDef.Close()
	if resp := postBinary(t, hsDef, "/v1/add", big); resp.StatusCode != http.StatusOK {
		t.Fatalf("default cap rejected an 88-byte batch: got %d", resp.StatusCode)
	}
}

func TestMaxBodyBytesNegativeRejected(t *testing.T) {
	_, err := sumdsrv.New(sumdsrv.Options{MaxBodyBytes: -1})
	if err == nil || !strings.Contains(err.Error(), "body cap") {
		t.Fatalf("negative cap: got err %v, want body-cap error", err)
	}
}
