// End-to-end durability tests beyond the crash matrix: snapshot-and-
// truncate cycles, journaled blob pushes (plain partials, binary keyed
// envelopes, keyed JSON) replayed bit-exactly, idempotency tokens
// surviving snapshots and restarts, and concurrent async ingest whose
// whole acked multiset must come back after a restart.
package sumdsrv_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parsum"
	"parsum/internal/gen"
	"parsum/internal/sumdclient"
	"parsum/internal/sumdsrv"
)

// startServer is startService but keeps the *Server handle, for tests
// that read recovery state or WAL metrics directly.
func startServer(t *testing.T, opt sumdsrv.Options) (*sumdsrv.Server, *sumdclient.Client, *httptest.Server) {
	t.Helper()
	srv, err := sumdsrv.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, sumdclient.New(hs.URL, hs.Client()), hs
}

func walStats(t *testing.T, base string) sumdsrv.WALStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		WAL *sumdsrv.WALStats `json:"wal"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding stats %s: %v", data, err)
	}
	if st.WAL == nil {
		t.Fatalf("stats of a WAL-enabled server lack the wal section: %s", data)
	}
	return *st.WAL
}

// TestWALSnapshotsAndBlobReplay drives every journaled record shape —
// raw batches, plain partial blobs, binary keyed envelopes, keyed JSON —
// through a server snapshotting every few mutations, then restarts from
// the directory and demands identical bits. It also proves the
// idempotency window rides snapshots: a pre-restart push retried after
// the restart must be recognized as a duplicate.
func TestWALSnapshotsAndBlobReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	srv, c, hs := startServer(t, sumdsrv.Options{
		Shards: 2, KeyPartitions: 2,
		WALDir: dir, WALFsync: "off", WALSnapshotEvery: 5,
	})
	if !srv.Durable() || srv.Async() {
		t.Fatalf("Durable=%t Async=%t, want durable sync server", srv.Durable(), srv.Async())
	}
	if srv.Engine() == "" {
		t.Fatal("server reports no engine")
	}

	xs := gen.New(gen.Config{Dist: gen.Random, N: 300, Delta: 80, Seed: 17}).Slice()
	oracle, _ := parsum.NewAccumulatorEngine("dense")

	// Five raw mutations — exactly one snapshot cycle, so everything
	// below it lands in the replayed tail.
	if err := c.AddBatch(ctx, xs[:100]); err != nil {
		t.Fatal(err)
	}
	oracle.AddSlice(xs[:100])
	if err := c.SubBatch(ctx, xs[:20]); err != nil {
		t.Fatal(err)
	}
	oracle.SubSlice(xs[:20])
	if err := c.AddKeyed(ctx, "raw", xs[200:260]); err != nil {
		t.Fatal(err)
	}
	if err := c.SubKeyed(ctx, "raw", xs[200:230]); err != nil {
		t.Fatal(err)
	}
	rawOracle, _ := parsum.NewAccumulatorEngine("dense")
	rawOracle.AddSlice(xs[200:260])
	rawOracle.SubSlice(xs[200:230])
	if err := c.AddBatch(ctx, xs[260:]); err != nil {
		t.Fatal(err)
	}
	oracle.AddSlice(xs[260:])

	// A plain partial blob, pushed with an explicit idempotency token so
	// the same bytes can be retried across the restart below. This and
	// the keyed blobs after it sit past the snapshot: recovery must
	// replay them (and re-arm the token) from the journal itself.
	staged, _ := parsum.NewAccumulatorEngine("dense")
	staged.AddSlice(xs[100:150])
	blob, err := staged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	oracle.AddSlice(xs[100:150])
	const token = "e2e-idem-token-0001"
	if code := postIdem(t, hs.URL+"/v1/partial", "application/octet-stream", token, blob); code != 200 {
		t.Fatalf("tokened partial push: %d", code)
	}

	// A binary keyed envelope and the keyed JSON form.
	kc, err := c.NewKeyedCombiner("")
	if err != nil {
		t.Fatal(err)
	}
	kc.Add("env", xs[150:200])
	if _, err := kc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	engine, ps, err := c.PullKeyedPartials(ctx, "env", "env\x00")
	if err != nil || len(ps) != 1 {
		t.Fatalf("pulling key env: engine=%q n=%d err=%v", engine, len(ps), err)
	}
	if _, err := c.PushKeyedPartials(ctx, []parsum.KeyPartial{{Key: "json", Blob: ps[0].Blob}}); err != nil {
		t.Fatal(err)
	}
	keyWant := math.Float64bits(parsum.Sum(xs[150:200]))

	// Five raw mutations at snapshot-every-5: exactly one snapshot ran,
	// and the three blob pushes above stayed in the replayed tail.
	st := walStats(t, hs.URL)
	if st.Snapshots < 1 {
		t.Fatalf("snapshots = %d, want >= 1", st.Snapshots)
	}
	if st.Errors != 0 {
		t.Fatalf("journal errors: %d (%s)", st.Errors, st.LastError)
	}
	wantSum := math.Float64bits(oracle.Round())

	// Restart from the directory bytes.
	srv2, c2, hs2 := startServer(t, sumdsrv.Options{
		Shards: 2, KeyPartitions: 2,
		WALDir: restoreWAL(t, walBytes(t, dir)), WALFsync: "off", WALSnapshotEvery: 5,
	})
	if !srv2.Recovery().SnapshotLoaded {
		t.Error("recovery did not load the snapshot")
	}
	got, err := c2.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != wantSum {
		t.Errorf("recovered sum %x, want %x", math.Float64bits(got), wantSum)
	}
	for _, key := range []string{"env", "json"} {
		kv, ok, err := c2.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("recovered SumKey(%q): ok=%t err=%v", key, ok, err)
		}
		if math.Float64bits(kv) != keyWant {
			t.Errorf("recovered key %q: %x, want %x", key, math.Float64bits(kv), keyWant)
		}
	}
	kv, ok, err := c2.SumKey(ctx, "raw")
	if err != nil || !ok {
		t.Fatalf("recovered SumKey(raw): ok=%t err=%v", ok, err)
	}
	if want := math.Float64bits(rawOracle.Round()); math.Float64bits(kv) != want {
		t.Errorf("recovered key raw: %x, want %x", math.Float64bits(kv), want)
	}

	// The pre-restart token must still dedupe: retrying the identical
	// push against the recovered server leaves the bits unchanged.
	if code := postIdem(t, hs2.URL+"/v1/partial", "application/octet-stream", token, blob); code != 200 {
		t.Fatalf("retried tokened push after restart: %d", code)
	}
	got, err = c2.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != wantSum {
		t.Errorf("retried push re-applied across restart: sum %x, want %x",
			math.Float64bits(got), wantSum)
	}
}

// TestIdemTokenReleasedOnRejectedPush: a token attached to a push the
// service rejects must not be burned — the same token with a valid body
// must then apply. And over-long tokens are a 400, not a silent accept.
func TestIdemTokenReleasedOnRejectedPush(t *testing.T) {
	ctx := context.Background()
	_, c, hs := startServer(t, sumdsrv.Options{Shards: 1})

	const token = "retry-after-reject"
	if code := postIdem(t, hs.URL+"/v1/partial", "application/octet-stream", token, []byte("garbage")); code != 400 {
		t.Fatalf("garbage partial: %d, want 400", code)
	}
	acc, _ := parsum.NewAccumulatorEngine("dense")
	acc.AddSlice([]float64{1.5, 2.25})
	blob, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if code := postIdem(t, hs.URL+"/v1/partial", "application/octet-stream", token, blob); code != 200 {
		t.Fatalf("valid push reusing the rejected token: %d, want 200", code)
	}
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.75 {
		t.Fatalf("sum %v, want 3.75 (rejected push burned the token)", got)
	}
	long := strings.Repeat("x", 300)
	if code := postIdem(t, hs.URL+"/v1/partial", "application/octet-stream", long, blob); code != 400 {
		t.Fatalf("over-long token: %d, want 400", code)
	}
}

func postIdem(t *testing.T, url, contentType, token string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Idempotency-Key", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestWALAsyncConcurrentDurability hammers a WAL-enabled async server
// with concurrent plain and keyed traffic (adds and retractions), then
// restarts from the directory: the recovered bits must equal the exact
// oracle over everything that was acked. Group commit means multi-item
// flush groups journal as one commit — this is the test that exercises
// the slice and keyed sink paths under contention.
func TestWALAsyncConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c, _ := startServer(t, sumdsrv.Options{
		Shards: 2, KeyPartitions: 2,
		Async: true, QueueLen: 64, MaxBatch: 32, MaxDelay: time.Millisecond, Flushers: 2,
		WALDir: dir, WALFsync: "off",
	})

	xs := gen.New(gen.Config{Dist: gen.Random, N: 4000, Delta: 400, Seed: 23}).Slice()
	parts := splitSlices(xs, 8)
	keys := []string{"a", "b", "c"}
	// One goroutine per operation: 40 simultaneous submissions against a
	// deep queue force multi-request flush groups, so group commit
	// journals several frames per fsyncless Commit.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w, part := range parts {
		for i, chunk := range splitSlices(part, 5) {
			wg.Add(1)
			go func(w, i int, chunk []float64) {
				defer wg.Done()
				var err error
				switch {
				case w%2 == 1:
					key := keys[(w+i)%len(keys)]
					if i%3 == 2 {
						err = c.SubKeyed(ctx, key, chunk)
					} else {
						err = c.AddKeyed(ctx, key, chunk)
					}
				case i%3 == 2:
					err = c.SubBatch(ctx, chunk)
				default:
					err = c.AddBatch(ctx, chunk)
				}
				if err != nil {
					errs <- err
				}
			}(w, i, chunk)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Replay the same deterministic schedule into exact oracles — order
	// does not matter, only the acked multiset.
	oracle, _ := parsum.NewAccumulatorEngine("dense")
	keyOracle := map[string]*parsum.Accumulator{}
	for w, part := range parts {
		for i, chunk := range splitSlices(part, 5) {
			switch {
			case w%2 == 1:
				key := keys[(w+i)%len(keys)]
				if keyOracle[key] == nil {
					keyOracle[key], _ = parsum.NewAccumulatorEngine("dense")
				}
				if i%3 == 2 {
					keyOracle[key].SubSlice(chunk)
				} else {
					keyOracle[key].AddSlice(chunk)
				}
			case i%3 == 2:
				oracle.SubSlice(chunk)
			default:
				oracle.AddSlice(chunk)
			}
		}
	}

	_, c2, _ := startServer(t, sumdsrv.Options{
		Shards: 2, KeyPartitions: 2,
		WALDir: restoreWAL(t, walBytes(t, dir)), WALFsync: "off",
	})
	got, err := c2.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Round(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("recovered async sum %x, want %x", math.Float64bits(got), math.Float64bits(want))
	}
	for key, acc := range keyOracle {
		kv, ok, err := c2.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("recovered SumKey(%q): ok=%t err=%v", key, ok, err)
		}
		if want := acc.Round(); math.Float64bits(kv) != math.Float64bits(want) {
			t.Errorf("recovered key %q: %x, want %x", key, math.Float64bits(kv), math.Float64bits(want))
		}
	}
}
