// Package chaos is the fault-injection harness behind the multi-node
// robustness gauntlet: an http.RoundTripper wrapper that subjects every
// request to a deterministic seeded schedule of network pathologies —
// drops, connection resets, 5xx bursts, latency spikes, and full
// partitions — so the proxy/replication stack can be driven through
// crash-and-heal scenarios that are reproducible bit for bit.
//
// The five faults map onto the distinct failure semantics a distributed
// writer must survive:
//
//   - Drop: the request never reaches the backend (connection refused).
//     NOT applied; the client sees a transport error.
//   - Reset: the request reaches the backend and is fully processed,
//     but the response is destroyed (connection reset after send).
//     APPLIED but unacknowledged — the case idempotency tokens exist
//     for: a blind retry must not double-apply.
//   - Err5xx: the harness answers 503 without forwarding (an overloaded
//     or crashing backend). NOT applied. Bursty: one draw infects the
//     next BurstLen-1 requests, modeling correlated failure.
//   - Latency: the request is delayed by a seeded duration, then
//     forwarded normally. APPLIED, slowly — the fault that trips
//     timeouts and circuit breakers on otherwise healthy traffic.
//   - Partition: while set, every request fails unsent (a severed
//     link). NOT applied. Toggled explicitly (Partition/Heal) so tests
//     and schedules control exactly when a backend disappears and
//     returns.
//
// Determinism: every request consumes exactly two draws from the seeded
// generator (fault selector, latency fraction) whatever the outcome, so
// the fault schedule is a pure function of (seed, request index). Under
// sequential load the injected sequence is exactly reproducible; under
// concurrent load the per-request decisions are serialized by an
// internal mutex, so the multiset of injected faults for a given seed
// and request count is still reproducible even when arrival order is
// not.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Faults injected by the harness. Both satisfy errors.Is against
// themselves after the %w wrapping RoundTrip applies.
var (
	// ErrDropped is returned for a dropped request: never sent, nothing
	// applied.
	ErrDropped = errors.New("chaos: request dropped")
	// ErrReset is returned for a connection reset: the request WAS
	// delivered and processed; only the response was lost.
	ErrReset = errors.New("chaos: connection reset by peer")
	// ErrPartitioned is returned while the injector is partitioned:
	// never sent, nothing applied.
	ErrPartitioned = errors.New("chaos: network partitioned")
)

// Options configures an Injector. Probabilities are per-request and
// evaluated in order drop, reset, 5xx, latency from a single uniform
// draw, so their sum must be at most 1.
type Options struct {
	// Seed fixes the fault schedule. The same seed and request sequence
	// reproduce the same faults; two injectors with different seeds are
	// independent.
	Seed uint64
	// PDrop, PReset, P5xx, PLatency are the per-request fault
	// probabilities in [0,1], summing to at most 1.
	PDrop, PReset, P5xx, PLatency float64
	// Latency is the maximum injected delay; an injected spike sleeps a
	// seeded uniform draw from [Latency/2, Latency). 0 means 10ms.
	Latency time.Duration
	// BurstLen makes 5xx faults bursty: a 5xx draw also infects the
	// following BurstLen-1 requests. 0 or 1 means independent 5xxs.
	BurstLen int
	// Next is the wrapped transport; nil means http.DefaultTransport.
	Next http.RoundTripper
}

// Counts is a point-in-time copy of the injector's ledger. Requests is
// the total seen; the remaining fields partition it.
type Counts struct {
	Requests    int64 // every RoundTrip call
	Passed      int64 // forwarded untouched
	Drops       int64 // failed unsent (ErrDropped)
	Resets      int64 // forwarded, response destroyed (ErrReset)
	Errs5xx     int64 // answered 503 without forwarding
	Latencies   int64 // delayed, then forwarded
	Partitioned int64 // failed unsent while partitioned (ErrPartitioned)
}

// ClientErrors returns how many requests surfaced as transport errors
// to the client: drops, resets, and partition rejections. (5xxs arrive
// as responses, latency and passes as successes.)
func (c Counts) ClientErrors() int64 { return c.Drops + c.Resets + c.Partitioned }

// Delivered returns how many requests actually reached the backend:
// passes, latency-delayed passes, and resets (delivered, unacked).
func (c Counts) Delivered() int64 { return c.Passed + c.Latencies + c.Resets }

// Injector is the fault-injecting RoundTripper. Create one per backend
// (each with its own seed) and install it as that backend's
// http.Client transport. Safe for concurrent use.
type Injector struct {
	opt  Options
	next http.RoundTripper

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	part      bool
	c         Counts
}

// New returns an Injector for opt. It panics when the probabilities are
// malformed — a misconfigured harness must fail the test loudly, not
// skew its schedule silently.
func New(opt Options) *Injector {
	for _, p := range []float64{opt.PDrop, opt.PReset, opt.P5xx, opt.PLatency} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("chaos: probability %v outside [0,1]", p))
		}
	}
	if s := opt.PDrop + opt.PReset + opt.P5xx + opt.PLatency; s > 1 {
		panic(fmt.Sprintf("chaos: probabilities sum to %v > 1", s))
	}
	if opt.Latency <= 0 {
		opt.Latency = 10 * time.Millisecond
	}
	next := opt.Next
	if next == nil {
		next = http.DefaultTransport
	}
	return &Injector{
		opt:  opt,
		next: next,
		rng:  rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x9e3779b97f4a7c15)),
	}
}

// Partition severs the link: every subsequent request fails unsent
// until Heal.
func (in *Injector) Partition() {
	in.mu.Lock()
	in.part = true
	in.mu.Unlock()
}

// Heal restores the link.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.part = false
	in.mu.Unlock()
}

// Partitioned reports whether the link is currently severed.
func (in *Injector) Partitioned() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.part
}

// Quiesce stops injecting faults for the rest of the injector's life
// (heals a partition too): the "fault window is over, let the system
// converge" switch the e2e gauntlet flips before asserting recovery.
func (in *Injector) Quiesce() {
	in.mu.Lock()
	in.part = false
	in.opt.PDrop, in.opt.PReset, in.opt.P5xx, in.opt.PLatency = 0, 0, 0, 0
	in.burstLeft = 0
	in.mu.Unlock()
}

// Counts returns a copy of the ledger.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.c
}

// verdict is one scheduled decision.
type verdict int

const (
	vPass verdict = iota
	vDrop
	vReset
	v5xx
	vLatency
	vPartitioned
)

// decide consumes exactly two draws and returns the verdict plus the
// latency to apply (vLatency only).
func (in *Injector) decide() (verdict, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.c.Requests++
	// Two draws per request, always, so the schedule depends only on
	// (seed, request index) — never on earlier verdicts or timing.
	u := in.rng.Float64()
	lf := in.rng.Float64()
	if in.part {
		in.c.Partitioned++
		return vPartitioned, 0
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		in.c.Errs5xx++
		return v5xx, 0
	}
	switch {
	case u < in.opt.PDrop:
		in.c.Drops++
		return vDrop, 0
	case u < in.opt.PDrop+in.opt.PReset:
		in.c.Resets++
		return vReset, 0
	case u < in.opt.PDrop+in.opt.PReset+in.opt.P5xx:
		in.c.Errs5xx++
		if in.opt.BurstLen > 1 {
			in.burstLeft = in.opt.BurstLen - 1
		}
		return v5xx, 0
	case u < in.opt.PDrop+in.opt.PReset+in.opt.P5xx+in.opt.PLatency:
		in.c.Latencies++
		d := in.opt.Latency/2 + time.Duration(lf*float64(in.opt.Latency/2))
		return vLatency, d
	default:
		in.c.Passed++
		return vPass, 0
	}
}

// RoundTrip implements http.RoundTripper under the fault schedule.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	v, delay := in.decide()
	switch v {
	case vPartitioned:
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrPartitioned)
	case vDrop:
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrDropped)
	case v5xx:
		return synthesized503(req), nil
	case vLatency:
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
		return in.next.RoundTrip(req)
	case vReset:
		// Deliver the request — the backend processes it — then destroy
		// the response: the applied-but-unacknowledged case.
		resp, err := in.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrReset)
	default:
		return in.next.RoundTrip(req)
	}
}

// synthesized503 fabricates the overloaded-backend response without
// touching the backend.
func synthesized503(req *http.Request) *http.Response {
	const body = `{"error":"chaos: injected backend failure"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
