package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, hc *http.Client, url string) (*http.Response, error) {
	t.Helper()
	resp, err := hc.Get(url)
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return resp, err
}

// The same seed over the same sequential request sequence must yield
// the same verdict sequence — not just the same totals.
func TestSeededScheduleReproducible(t *testing.T) {
	var arrivals1, arrivals2 atomic.Int64
	run := func(arrivals *atomic.Int64) ([]string, Counts) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			arrivals.Add(1)
			w.WriteHeader(http.StatusOK)
		}))
		defer srv.Close()
		in := New(Options{
			Seed:     42,
			PDrop:    0.15,
			PReset:   0.15,
			P5xx:     0.15,
			PLatency: 0.15,
			Latency:  2 * time.Millisecond,
		})
		hc := &http.Client{Transport: in}
		var verdicts []string
		for i := 0; i < 400; i++ {
			resp, err := get(t, hc, srv.URL)
			switch {
			case err == nil && resp.StatusCode == http.StatusOK:
				verdicts = append(verdicts, "ok")
			case err == nil && resp.StatusCode == http.StatusServiceUnavailable:
				verdicts = append(verdicts, "5xx")
			case errors.Is(err, ErrDropped):
				verdicts = append(verdicts, "drop")
			case errors.Is(err, ErrReset):
				verdicts = append(verdicts, "reset")
			default:
				t.Fatalf("request %d: unexpected outcome resp=%v err=%v", i, resp, err)
			}
		}
		return verdicts, in.Counts()
	}

	v1, c1 := run(&arrivals1)
	v2, c2 := run(&arrivals2)
	if len(v1) != len(v2) {
		t.Fatalf("verdict counts differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("request %d: verdict %q vs %q — schedule not reproducible", i, v1[i], v2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("counts differ across runs: %+v vs %+v", c1, c2)
	}
	if arrivals1.Load() != arrivals2.Load() {
		t.Fatalf("server arrivals differ: %d vs %d", arrivals1.Load(), arrivals2.Load())
	}
	// With p=0.15 each over 400 requests, every class must have fired.
	if c1.Drops == 0 || c1.Resets == 0 || c1.Errs5xx == 0 || c1.Latencies == 0 || c1.Passed == 0 {
		t.Fatalf("schedule never exercised some fault class: %+v", c1)
	}
}

// Different seeds must produce different schedules — otherwise every
// backend in the gauntlet fails in lockstep.
func TestSeedsIndependent(t *testing.T) {
	draw := func(seed uint64) []verdict {
		in := New(Options{Seed: seed, PDrop: 0.25, PReset: 0.25, P5xx: 0.25})
		out := make([]verdict, 64)
		for i := range out {
			out[i], _ = in.decide()
		}
		return out
	}
	a, b := draw(1), draw(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 produced identical 64-verdict schedules")
	}
}

// The ledger must reconcile exactly with what the client and the server
// each observed: server arrivals == Delivered(), client transport
// errors == ClientErrors(), and the categories partition Requests.
func TestCountsMatchObservations(t *testing.T) {
	var arrivals atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	in := New(Options{
		Seed:     7,
		PDrop:    0.2,
		PReset:   0.2,
		P5xx:     0.1,
		PLatency: 0.1,
		Latency:  time.Millisecond,
	})
	hc := &http.Client{Transport: in}

	var clientErrs, ok200, got5xx int64
	const n = 500
	for i := 0; i < n; i++ {
		resp, err := get(t, hc, srv.URL)
		switch {
		case err != nil:
			clientErrs++
		case resp.StatusCode == http.StatusOK:
			ok200++
		case resp.StatusCode == http.StatusServiceUnavailable:
			got5xx++
		default:
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
	}

	c := in.Counts()
	if c.Requests != n {
		t.Errorf("Requests = %d, want %d", c.Requests, n)
	}
	if sum := c.Passed + c.Drops + c.Resets + c.Errs5xx + c.Latencies + c.Partitioned; sum != c.Requests {
		t.Errorf("categories sum to %d, want Requests=%d", sum, c.Requests)
	}
	if got := arrivals.Load(); got != c.Delivered() {
		t.Errorf("server saw %d arrivals, ledger Delivered()=%d (Passed=%d Latencies=%d Resets=%d)",
			got, c.Delivered(), c.Passed, c.Latencies, c.Resets)
	}
	if clientErrs != c.ClientErrors() {
		t.Errorf("client saw %d transport errors, ledger ClientErrors()=%d", clientErrs, c.ClientErrors())
	}
	if got5xx != c.Errs5xx {
		t.Errorf("client saw %d 5xx responses, ledger Errs5xx=%d", got5xx, c.Errs5xx)
	}
	if ok200 != c.Passed+c.Latencies {
		t.Errorf("client saw %d 200s, ledger Passed+Latencies=%d", ok200, c.Passed+c.Latencies)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	var arrivals atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
	}))
	defer srv.Close()
	in := New(Options{Seed: 1}) // no probabilistic faults
	hc := &http.Client{Transport: in}

	if _, err := get(t, hc, srv.URL); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	in.Partition()
	if !in.Partitioned() {
		t.Fatal("Partitioned() false after Partition()")
	}
	for i := 0; i < 5; i++ {
		if _, err := get(t, hc, srv.URL); !errors.Is(err, ErrPartitioned) {
			t.Fatalf("partitioned request %d: err=%v, want ErrPartitioned", i, err)
		}
	}
	in.Heal()
	if in.Partitioned() {
		t.Fatal("Partitioned() true after Heal()")
	}
	if _, err := get(t, hc, srv.URL); err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	c := in.Counts()
	if c.Partitioned != 5 || c.Passed != 2 {
		t.Fatalf("counts %+v, want Partitioned=5 Passed=2", c)
	}
	if arrivals.Load() != 2 {
		t.Fatalf("server saw %d arrivals, want 2 — partitioned requests must not be delivered", arrivals.Load())
	}
}

// A 5xx draw with BurstLen=4 must infect exactly the next three
// requests, modeling correlated backend failure.
func TestBurst5xx(t *testing.T) {
	// Find a seed offset by scanning: force a 5xx via P5xx=1 on the
	// first request, then drop the probability and watch the burst tail.
	in := New(Options{Seed: 3, P5xx: 1, BurstLen: 4})
	v, _ := in.decide()
	if v != v5xx {
		t.Fatalf("first verdict %v, want v5xx", v)
	}
	in.mu.Lock()
	in.opt.P5xx = 0 // only the burst can produce further 5xxs
	in.mu.Unlock()
	for i := 0; i < 3; i++ {
		if v, _ := in.decide(); v != v5xx {
			t.Fatalf("burst request %d: verdict %v, want v5xx", i, v)
		}
	}
	if v, _ := in.decide(); v != vPass {
		t.Fatalf("post-burst verdict %v, want vPass", v)
	}
	if c := in.Counts(); c.Errs5xx != 4 {
		t.Fatalf("Errs5xx = %d, want 4", c.Errs5xx)
	}
}

func TestQuiesce(t *testing.T) {
	in := New(Options{Seed: 9, PDrop: 1})
	if v, _ := in.decide(); v != vDrop {
		t.Fatalf("verdict %v, want vDrop", v)
	}
	in.Partition()
	in.Quiesce()
	if in.Partitioned() {
		t.Fatal("Quiesce must heal a partition")
	}
	for i := 0; i < 10; i++ {
		if v, _ := in.decide(); v != vPass {
			t.Fatalf("post-quiesce verdict %v, want vPass", v)
		}
	}
}

// Reset semantics: the backend processes the request (arrival counted,
// handler side effects happen) but the client sees a transport error.
func TestResetDeliversThenErrors(t *testing.T) {
	var arrivals atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
	}))
	defer srv.Close()
	in := New(Options{Seed: 5, PReset: 1})
	hc := &http.Client{Transport: in}
	_, err := get(t, hc, srv.URL)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if arrivals.Load() != 1 {
		t.Fatalf("server saw %d arrivals, want 1 — a reset request must still be delivered", arrivals.Load())
	}
}

// An injected latency spike must respect the request context.
func TestLatencyHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in := New(Options{Seed: 11, PLatency: 1, Latency: 5 * time.Second})
	hc := &http.Client{Transport: in}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := hc.Do(req)
	if err == nil {
		t.Fatal("want context deadline error, got nil")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled latency spike took %v — timer not interrupted", elapsed)
	}
}

func TestOptionValidation(t *testing.T) {
	for _, opt := range []Options{
		{PDrop: -0.1},
		{PReset: 1.5},
		{PDrop: 0.5, PReset: 0.5, P5xx: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", opt)
				}
			}()
			New(opt)
		}()
	}
}

// Concurrent use must be race-free and keep the ledger consistent.
func TestConcurrentLedgerConsistent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in := New(Options{Seed: 13, PDrop: 0.2, PReset: 0.2, PLatency: 0.1, Latency: time.Millisecond})
	hc := &http.Client{Transport: in}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := hc.Get(srv.URL)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	c := in.Counts()
	if c.Requests != workers*per {
		t.Fatalf("Requests = %d, want %d", c.Requests, workers*per)
	}
	if sum := c.Passed + c.Drops + c.Resets + c.Errs5xx + c.Latencies + c.Partitioned; sum != c.Requests {
		t.Fatalf("categories sum to %d, want %d", sum, c.Requests)
	}
}
