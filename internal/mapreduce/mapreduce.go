// Package mapreduce implements the paper's single-round MapReduce
// summation (Section 6) on an in-process engine that mirrors the Spark
// pipeline the paper used:
//
//	input splits (HDFS blocks) → map + combine on cluster workers
//	→ shuffle by reducer key → reduce → driver post-process.
//
// The combiner sums each split into one superaccumulator with the
// sequential algorithm of Section 3; reducers merge the superaccumulators
// assigned to their key; the driver merges the p reducer outputs and
// converts the final superaccumulator to a correctly rounded float64.
//
// # Cluster simulation
//
// The paper ran on a 32-core machine; this engine executes every task for
// real (and exactly), but decouples *execution* concurrency from the
// *modeled* cluster size: tasks run on at most GOMAXPROCS goroutines so
// per-task timing is clean, and a greedy list-scheduling simulation places
// the measured task durations onto cfg.Workers virtual workers. The
// resulting makespan (Stats.ClusterTime) is the modeled end-to-end time on
// a cfg.Workers-core cluster — the quantity Figures 1–3 plot — while
// Stats.MeasuredWall is the actual wall-clock spent. See DESIGN.md
// ("Substitutions") for why this preserves the paper's comparisons.
package mapreduce

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"parsum/internal/accum"
)

// AccKind selects the superaccumulator representation used by combiners and
// reducers.
type AccKind int

// The paper's two experimental variants plus two extension baselines.
const (
	SparseAcc AccKind = iota // sparse superaccumulator (the paper's method)
	SmallAcc                 // Neal-style small superaccumulator
	DenseAcc                 // dense (α,β)-regularized superaccumulator
	LargeAcc                 // Neal-style large superaccumulator
)

// String names the variant as in the paper's figure legends.
func (k AccKind) String() string {
	switch k {
	case SparseAcc:
		return "Sparse Superaccumulator"
	case SmallAcc:
		return "Small Superaccumulator"
	case DenseAcc:
		return "Dense Superaccumulator"
	case LargeAcc:
		return "Large Superaccumulator"
	}
	return fmt.Sprintf("AccKind(%d)", int(k))
}

// Config describes a job. The zero value of optional fields picks defaults.
type Config struct {
	// Workers is the modeled cluster size (the paper's "number of cores").
	Workers int
	// Reducers is the paper's p; 0 means Workers.
	Reducers int
	// SplitSize is the number of float64s per input split. The paper's
	// HDFS blocks are 128 MB = 16M doubles; the default is 1M so that
	// modest inputs still exercise multi-split behaviour.
	SplitSize int
	// Acc selects the accumulator representation.
	Acc AccKind
	// NoCombine disables the map-side combiner, shuffling raw elements to
	// reducers instead (the unoptimized Section 6.1 algorithm; ablation).
	NoCombine bool
	// Width is the digit width for Sparse/Dense accumulators (0 = default).
	Width uint
	// Seed drives the random reducer assignment r(x).
	Seed uint64
	// ExecParallelism caps the number of goroutines that actually execute
	// tasks (0 = GOMAXPROCS). Timing is per task, so the model is
	// insensitive to this; it exists for tests.
	ExecParallelism int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

func (c Config) reducers() int {
	if c.Reducers > 0 {
		return c.Reducers
	}
	return c.workers()
}

func (c Config) splitSize() int {
	if c.SplitSize > 0 {
		return c.SplitSize
	}
	return 1 << 20
}

func (c Config) exec() int {
	if c.ExecParallelism > 0 {
		return c.ExecParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports what the job did and the modeled cluster timing.
type Stats struct {
	Splits         int
	Reducers       int
	ShuffleRecords int   // key-value pairs shuffled
	ShuffleBytes   int64 // encoded payload volume shuffled

	MapMakespan    time.Duration // modeled map+combine phase time
	ReduceMakespan time.Duration // modeled reduce phase time
	PostProcess    time.Duration // driver merge + final rounding (serial)
	MeasuredWall   time.Duration // actual wall-clock of the whole job

	FinalComponents int // σ of the final superaccumulator (sparse kinds)
}

// ClusterTime is the modeled end-to-end job time on the configured cluster:
// map makespan + reduce makespan + serial driver post-processing.
func (s Stats) ClusterTime() time.Duration {
	return s.MapMakespan + s.ReduceMakespan + s.PostProcess
}

// Result is a completed job.
type Result struct {
	Sum   float64
	Stats Stats
}

// Run executes the single-round MapReduce summation of xs under cfg and
// returns the correctly rounded exact sum with job statistics.
func Run(xs []float64, cfg Config) Result {
	start := time.Now()
	nSplits := (len(xs) + cfg.splitSize() - 1) / cfg.splitSize()
	if nSplits == 0 {
		nSplits = 1
	}
	p := cfg.reducers()

	var st Stats
	st.Splits = nSplits
	st.Reducers = p

	// --- Map + combine phase -------------------------------------------
	// One task per split. Each task produces payloads keyed by reducer.
	type keyed struct {
		key int
		pay payload
	}
	mapOut := make([][]keyed, nSplits)
	mapTasks := make([]func(), nSplits)
	mapDur := make([]time.Duration, nSplits)
	for i := 0; i < nSplits; i++ {
		i := i
		lo := i * cfg.splitSize()
		hi := lo + cfg.splitSize()
		if hi > len(xs) {
			hi = len(xs)
		}
		split := xs[lo:hi]
		mapTasks[i] = func() {
			t0 := time.Now()
			if cfg.NoCombine {
				// Shuffle raw elements: partition the split by per-element
				// random key.
				buckets := make([][]float64, p)
				for j, x := range split {
					k := int(splitmix(cfg.Seed^uint64(lo+j)*0x9E3779B97F4A7C15) % uint64(p))
					buckets[k] = append(buckets[k], x)
				}
				for k, b := range buckets {
					if len(b) > 0 {
						mapOut[i] = append(mapOut[i], keyed{k, payload{raw: b}})
					}
				}
			} else {
				pay := combine(split, cfg)
				k := int(splitmix(cfg.Seed+uint64(i)) % uint64(p))
				mapOut[i] = append(mapOut[i], keyed{k, pay})
			}
			mapDur[i] = time.Since(t0)
		}
	}
	runTasks(mapTasks, cfg.exec())
	st.MapMakespan = makespan(mapDur, cfg.workers())

	// --- Shuffle ---------------------------------------------------------
	byKey := make([][]payload, p)
	for _, out := range mapOut {
		for _, kv := range out {
			byKey[kv.key] = append(byKey[kv.key], kv.pay)
			st.ShuffleRecords++
			st.ShuffleBytes += int64(kv.pay.size())
		}
	}

	// --- Reduce phase ----------------------------------------------------
	redOut := make([]payload, p)
	redTasks := make([]func(), p)
	redDur := make([]time.Duration, p)
	for k := 0; k < p; k++ {
		k := k
		redTasks[k] = func() {
			t0 := time.Now()
			redOut[k] = reduce(byKey[k], cfg)
			redDur[k] = time.Since(t0)
		}
	}
	runTasks(redTasks, cfg.exec())
	st.ReduceMakespan = makespan(redDur, cfg.workers())

	// --- Driver post-process ---------------------------------------------
	t0 := time.Now()
	sum, comps := finish(redOut, cfg)
	st.PostProcess = time.Since(t0)
	st.FinalComponents = comps
	st.MeasuredWall = time.Since(start)
	return Result{Sum: sum, Stats: st}
}

// runTasks executes the tasks on up to par goroutines, pulling dynamically.
func runTasks(tasks []func(), par int) {
	if par > len(tasks) {
		par = len(tasks)
	}
	if par <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}

// makespan models greedy dynamic scheduling (each of w workers pulls the
// next task when idle) of the measured task durations, in submission
// order: every task goes to the currently least-loaded worker. The result
// is the modeled phase duration on a w-worker cluster.
func makespan(durs []time.Duration, w int) time.Duration {
	if w < 1 {
		w = 1
	}
	load := make([]time.Duration, w)
	for _, d := range durs {
		min := 0
		for i := 1; i < w; i++ {
			if load[i] < load[min] {
				min = i
			}
		}
		load[min] += d
	}
	var max time.Duration
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// splitmix is the splitmix64 mixer (duplicated from internal/gen to keep
// the engine self-contained).
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// payload is a shuffle record: exactly one field is set.
type payload struct {
	sparse *accum.Sparse
	small  *accum.Small
	dense  *accum.Dense
	large  *accum.Large
	raw    []float64
}

func (p payload) size() int {
	switch {
	case p.sparse != nil:
		return p.sparse.EncodedSize()
	case p.small != nil:
		return p.small.EncodedSize()
	case p.dense != nil:
		return p.dense.EncodedSize()
	case p.large != nil:
		return 8 * 2048
	default:
		return 8 * len(p.raw)
	}
}

// combine runs the map-side combiner: the sequential exact summation of one
// split into a single superaccumulator (the paper's Section 6.2 combine).
func combine(split []float64, cfg Config) payload {
	switch cfg.Acc {
	case SparseAcc:
		w := accum.NewWindow(cfg.Width)
		w.AddSlice(split)
		return payload{sparse: w.ToSparse()}
	case SmallAcc:
		s := accum.NewSmall()
		s.AddSlice(split)
		return payload{small: s}
	case DenseAcc:
		d := accum.NewDense(cfg.Width)
		d.AddSlice(split)
		return payload{dense: d}
	case LargeAcc:
		l := accum.NewLarge()
		l.AddSlice(split)
		return payload{large: l}
	}
	panic("mapreduce: unknown AccKind")
}

// reduce merges the payloads assigned to one reducer into a single payload.
// Raw payloads (NoCombine mode) are accumulated with the sequential exact
// algorithm; accumulator payloads merge (carry-free for the sparse kind).
func reduce(ps []payload, cfg Config) payload {
	switch cfg.Acc {
	case SparseAcc:
		var root *accum.Sparse
		var win *accum.Window
		for _, p := range ps {
			if p.raw != nil {
				if win == nil {
					win = accum.NewWindow(cfg.Width)
				}
				win.AddSlice(p.raw)
				continue
			}
			if root == nil {
				root = p.sparse
			} else {
				root = accum.MergeSparse(root, p.sparse)
			}
		}
		if win != nil {
			if s := win.ToSparse(); root == nil {
				root = s
			} else {
				root = accum.MergeSparse(root, s)
			}
		}
		if root == nil {
			root = accum.NewSparse(cfg.Width)
		}
		return payload{sparse: root}
	case SmallAcc:
		root := accum.NewSmall()
		for _, p := range ps {
			if p.raw != nil {
				root.AddSlice(p.raw)
			} else {
				root.Merge(p.small)
			}
		}
		return payload{small: root}
	case DenseAcc:
		root := accum.NewDense(cfg.Width)
		for _, p := range ps {
			if p.raw != nil {
				root.AddSlice(p.raw)
			} else {
				root.Merge(p.dense)
			}
		}
		return payload{dense: root}
	case LargeAcc:
		root := accum.NewLarge()
		for _, p := range ps {
			if p.raw != nil {
				root.AddSlice(p.raw)
			} else {
				root.Merge(p.large)
			}
		}
		return payload{large: root}
	}
	panic("mapreduce: unknown AccKind")
}

// finish merges the reducer outputs on the driver and rounds once.
func finish(ps []payload, cfg Config) (float64, int) {
	switch cfg.Acc {
	case SparseAcc:
		var root *accum.Sparse
		for _, p := range ps {
			if p.sparse == nil {
				continue
			}
			if root == nil {
				root = p.sparse
			} else {
				root = accum.MergeSparse(root, p.sparse)
			}
		}
		if root == nil {
			return 0, 0
		}
		return root.Round(), root.Len()
	case SmallAcc:
		root := accum.NewSmall()
		for _, p := range ps {
			if p.small != nil {
				root.Merge(p.small)
			}
		}
		return root.Round(), 0
	case DenseAcc:
		root := accum.NewDense(cfg.Width)
		for _, p := range ps {
			if p.dense != nil {
				root.Merge(p.dense)
			}
		}
		return root.Round(), 0
	case LargeAcc:
		root := accum.NewLarge()
		for _, p := range ps {
			if p.large != nil {
				root.Merge(p.large)
			}
		}
		return root.Round(), 0
	}
	panic("mapreduce: unknown AccKind")
}
