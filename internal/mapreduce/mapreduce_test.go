package mapreduce

import (
	"math"
	"testing"
	"time"

	"parsum/internal/gen"
	"parsum/internal/oracle"
)

var allKinds = []AccKind{SparseAcc, SmallAcc, DenseAcc, LargeAcc}

func TestRunExactOnDistributions(t *testing.T) {
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 50000, Delta: 1200, Seed: 41}).Slice()
		want := oracle.Sum(xs)
		for _, kind := range allKinds {
			res := Run(xs, Config{Workers: 4, SplitSize: 4096, Acc: kind})
			if res.Sum != want {
				t.Fatalf("%v/%v: got %g want %g", d, kind, res.Sum, want)
			}
		}
	}
}

func TestRunDeterministicAcrossClusterSizes(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 100000, Delta: 1800, Seed: 5}).Slice()
	want := Run(xs, Config{Workers: 1, SplitSize: 1 << 12}).Sum
	for _, w := range []int{2, 4, 8, 32} {
		for _, kind := range allKinds {
			got := Run(xs, Config{Workers: w, SplitSize: 1 << 12, Acc: kind}).Sum
			if got != want {
				t.Fatalf("workers=%d kind=%v: %g != %g", w, kind, got, want)
			}
		}
	}
}

func TestNoCombineShufflesRawRecords(t *testing.T) {
	// Splits must be large enough that one accumulator payload beats raw
	// records for every kind (the Large accumulator encodes to 16 KB).
	xs := gen.New(gen.Config{Dist: gen.Random, N: 40000, Delta: 300, Seed: 6}).Slice()
	want := oracle.Sum(xs)
	for _, kind := range allKinds {
		withC := Run(xs, Config{Workers: 4, SplitSize: 4096, Acc: kind})
		without := Run(xs, Config{Workers: 4, SplitSize: 4096, Acc: kind, NoCombine: true})
		if withC.Sum != want || without.Sum != want {
			t.Fatalf("%v: combine=%g nocombine=%g want %g", kind, withC.Sum, without.Sum, want)
		}
		if without.Stats.ShuffleBytes <= withC.Stats.ShuffleBytes {
			t.Fatalf("%v: combiner should shrink shuffle volume (%d vs %d bytes)",
				kind, withC.Stats.ShuffleBytes, without.Stats.ShuffleBytes)
		}
		// With a combiner, shuffle records = #splits.
		if withC.Stats.ShuffleRecords != withC.Stats.Splits {
			t.Fatalf("%v: %d shuffle records for %d splits",
				kind, withC.Stats.ShuffleRecords, withC.Stats.Splits)
		}
	}
}

func TestMakespanModel(t *testing.T) {
	durs := []time.Duration{4, 3, 3, 2, 2, 2} // greedy on 2 workers → 8
	if got := makespan(durs, 2); got != 8 {
		t.Fatalf("makespan = %d, want 8", got)
	}
	if got := makespan(durs, 1); got != 16 {
		t.Fatalf("serial makespan = %d, want 16", got)
	}
	if got := makespan(durs, 100); got != 4 {
		t.Fatalf("wide makespan = %d, want max task = 4", got)
	}
	if got := makespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
}

func TestClusterTimeShrinksWithWorkers(t *testing.T) {
	// With many equal splits, the modeled map makespan must scale ~1/w.
	// Task durations are wall-clock measurements, so a busy host can
	// inflate individual tasks; retry a few times before declaring the
	// scheduling model broken.
	xs := gen.New(gen.Config{Dist: gen.CondOne, N: 1 << 18, Delta: 200, Seed: 8}).Slice()
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		t1 := Run(xs, Config{Workers: 1, SplitSize: 1 << 12}).Stats
		t8 := Run(xs, Config{Workers: 8, SplitSize: 1 << 12}).Stats
		r := float64(t1.MapMakespan) / float64(t8.MapMakespan)
		if r > best {
			best = r
		}
		if best >= 4 {
			return
		}
	}
	t.Fatalf("8-worker map makespan only %.1fx better than 1-worker after retries", best)
}

func TestSpecialsPropagate(t *testing.T) {
	xs := []float64{1, 2, math.Inf(1), 3}
	for _, kind := range allKinds {
		res := Run(xs, Config{Workers: 2, SplitSize: 2, Acc: kind})
		if !math.IsInf(res.Sum, 1) {
			t.Fatalf("%v: got %g want +Inf", kind, res.Sum)
		}
	}
	xs = []float64{math.Inf(1), math.Inf(-1)}
	for _, kind := range allKinds {
		res := Run(xs, Config{Workers: 2, SplitSize: 1, Acc: kind})
		if !math.IsNaN(res.Sum) {
			t.Fatalf("%v: got %g want NaN", kind, res.Sum)
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, kind := range allKinds {
		if res := Run(nil, Config{Acc: kind}); res.Sum != 0 {
			t.Fatalf("%v: empty sum = %g", kind, res.Sum)
		}
		if res := Run([]float64{1.25}, Config{Workers: 16, Acc: kind}); res.Sum != 1.25 {
			t.Fatalf("%v: singleton = %g", kind, res.Sum)
		}
	}
}

func TestReducerCountIndependence(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 30000, Delta: 900, Seed: 10}).Slice()
	for _, p := range []int{1, 3, 7, 64} {
		res := Run(xs, Config{Workers: 4, Reducers: p, SplitSize: 512})
		if res.Sum != 0 {
			t.Fatalf("p=%d: got %g want 0", p, res.Sum)
		}
		if res.Stats.Reducers != p {
			t.Fatalf("p=%d not honored", p)
		}
	}
}

func TestSeedChangesAssignmentNotResult(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Anderson, N: 20000, Delta: 100, Seed: 11}).Slice()
	want := oracle.Sum(xs)
	for seed := uint64(0); seed < 5; seed++ {
		res := Run(xs, Config{Workers: 4, SplitSize: 512, Seed: seed})
		if res.Sum != want {
			t.Fatalf("seed %d changed result: %g != %g", seed, res.Sum, want)
		}
	}
}

func TestFinalComponentsTracksSigma(t *testing.T) {
	// Narrow-δ data: few active components; wide-δ: many.
	narrow := gen.New(gen.Config{Dist: gen.Random, N: 20000, Delta: 10, Seed: 12}).Slice()
	wide := gen.New(gen.Config{Dist: gen.Random, N: 20000, Delta: 2000, Seed: 12}).Slice()
	rn := Run(narrow, Config{Workers: 2, SplitSize: 4096, Acc: SparseAcc})
	rw := Run(wide, Config{Workers: 2, SplitSize: 4096, Acc: SparseAcc})
	if rn.Stats.FinalComponents >= rw.Stats.FinalComponents {
		t.Fatalf("σ(narrow)=%d should be < σ(wide)=%d",
			rn.Stats.FinalComponents, rw.Stats.FinalComponents)
	}
}
