package keyed

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parsum/internal/oracle"
)

// TestCRDTConvergence is the keyed store's central claim: per-key exact
// partials form a state-based CRDT, so two replicas that exchange their
// exported partials — in different orders, split into different range
// pieces — converge to bit-identical per-key sums, specials included.
// The algebra doing the work: exact merge is commutative and
// associative, every partial is delivered exactly once, and rounding
// happens only at the read.
func TestCRDTConvergence(t *testing.T) {
	for _, eng := range testEngines {
		t.Run(eng, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			// Two replicas ingest overlapping key sets with disjoint
			// multisets, including non-finite and cancelling values.
			localA := testValues(r, 12, 15)
			localB := testValues(rand.New(rand.NewSource(22)), 12, 15)
			localA["inf"] = []float64{math.Inf(1), 1e300}
			localB["inf"] = []float64{math.Inf(1), -1e300}
			localA["nan"] = []float64{math.NaN()}
			localB["nan"] = []float64{2.5}
			localA["inf-cancel"] = []float64{math.Inf(1)}
			localB["inf-cancel"] = []float64{math.Inf(-1)}
			localA["only-a"] = []float64{1e-308, 1e-308}
			localB["only-b"] = []float64{math.MaxFloat64, -math.MaxFloat64 / 2}

			a := mustNew(t, eng, 3)
			b := mustNew(t, eng, 5)
			for k, xs := range localA {
				a.Add(k, xs)
			}
			for k, xs := range localB {
				b.Add(k, xs)
			}

			// Each replica exports its state split at a different key
			// boundary, and each imports the peer's pieces in the
			// opposite order.
			a1, err := a.ExportRange("", "key-006")
			if err != nil {
				t.Fatal(err)
			}
			a2, err := a.ExportRange("key-006", "")
			if err != nil {
				t.Fatal(err)
			}
			b1, err := b.ExportRange("", "n")
			if err != nil {
				t.Fatal(err)
			}
			b2, err := b.ExportRange("n", "")
			if err != nil {
				t.Fatal(err)
			}
			for _, blob := range [][]byte{b2, b1} { // A gets B's pieces high-then-low
				if err := a.ImportMerge(blob); err != nil {
					t.Fatal(err)
				}
			}
			for _, blob := range [][]byte{a1, a2} { // B gets A's pieces low-then-high
				if err := b.ImportMerge(blob); err != nil {
					t.Fatal(err)
				}
			}

			// Both replicas now hold the union; their snapshots must be
			// element- and bit-identical, and match the oracle over the
			// union multiset per key.
			snapA, snapB := a.Snapshot(), b.Snapshot()
			if len(snapA) != len(snapB) {
				t.Fatalf("replica key counts differ: %d vs %d", len(snapA), len(snapB))
			}
			union := make(map[string][]float64)
			for k, xs := range localA {
				union[k] = append(union[k], xs...)
			}
			for k, xs := range localB {
				union[k] = append(union[k], xs...)
			}
			for i := range snapA {
				if snapA[i].Key != snapB[i].Key {
					t.Fatalf("key order diverged at %d: %q vs %q", i, snapA[i].Key, snapB[i].Key)
				}
				ab, bb := math.Float64bits(snapA[i].Sum), math.Float64bits(snapB[i].Sum)
				if ab != bb {
					t.Errorf("key %q: replicas diverged: %x vs %x", snapA[i].Key, ab, bb)
				}
				want := oracle.Sum(union[snapA[i].Key])
				got := snapA[i].Sum
				if math.IsNaN(want) {
					if !math.IsNaN(got) {
						t.Errorf("key %q = %v, oracle NaN", snapA[i].Key, got)
					}
					continue
				}
				if ab != math.Float64bits(want) {
					t.Errorf("key %q = %x, oracle %x", snapA[i].Key, ab, math.Float64bits(want))
				}
			}

			// A third replica that receives both states in yet another
			// order (whole-store envelopes, B first) lands on the same
			// bits — associativity across envelope granularities. Note
			// the exports must predate the exchange; re-exporting now
			// would double-count. Use fresh exports of the disjoint
			// locals via a rebuilt pair.
			fa, fb := mustNew(t, eng, 2), mustNew(t, eng, 2)
			for k, xs := range localA {
				fa.Add(k, xs)
			}
			for k, xs := range localB {
				fb.Add(k, xs)
			}
			ea, err := fa.ExportAll()
			if err != nil {
				t.Fatal(err)
			}
			eb, err := fb.ExportAll()
			if err != nil {
				t.Fatal(err)
			}
			c := mustNew(t, eng, 7)
			if err := c.ImportMerge(eb); err != nil {
				t.Fatal(err)
			}
			if err := c.ImportMerge(ea); err != nil {
				t.Fatal(err)
			}
			snapC := c.Snapshot()
			if len(snapC) != len(snapA) {
				t.Fatalf("third replica key count %d, want %d", len(snapC), len(snapA))
			}
			for i := range snapC {
				if snapC[i].Key != snapA[i].Key ||
					math.Float64bits(snapC[i].Sum) != math.Float64bits(snapA[i].Sum) {
					t.Errorf("third replica diverged at %q", snapC[i].Key)
				}
			}
		})
	}
}

// TestConvergenceUnderConcurrentExchange drives the anti-entropy loop
// while ingestion continues: exports taken mid-ingestion are exact
// partials of a prefix, and delivering each exactly once still converges
// both replicas on the final bits.
func TestConvergenceUnderConcurrentExchange(t *testing.T) {
	a := mustNew(t, "dense", 4)
	b := mustNew(t, "dense", 4)
	r := rand.New(rand.NewSource(33))
	var historyA, historyB []Batch
	for round := 0; round < 5; round++ {
		// Each replica ingests a burst, then ships a delta to the peer.
		// Deltas here are "everything so far" exports into fresh peers,
		// modeling snapshot-shipping with exactly-once delivery: the
		// receiving side resets its copy of the peer state first.
		burst := func(history []Batch) []Batch {
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", r.Intn(9))
				xs := []float64{math.Ldexp(r.Float64()*2-1, r.Intn(400)-200)}
				history = append(history, Batch{Key: key, Values: xs})
			}
			return history
		}
		historyA = burst(historyA)
		historyB = burst(historyB)
		a.Reset()
		b.Reset()
		a.AddKeyedBatches(historyA)
		b.AddKeyedBatches(historyB)
		ea, err := a.ExportAll()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.ExportAll()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.ImportMerge(eb); err != nil {
			t.Fatal(err)
		}
		if err := b.ImportMerge(ea); err != nil {
			t.Fatal(err)
		}
		snapA, snapB := a.Snapshot(), b.Snapshot()
		if len(snapA) != len(snapB) {
			t.Fatalf("round %d: key counts differ", round)
		}
		for i := range snapA {
			if snapA[i].Key != snapB[i].Key ||
				math.Float64bits(snapA[i].Sum) != math.Float64bits(snapB[i].Sum) {
				t.Fatalf("round %d: replicas diverged at %q", round, snapA[i].Key)
			}
		}
	}
}
