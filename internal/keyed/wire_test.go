package keyed

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/oracle"
)

func snapshotsEqual(t *testing.T, a, b []KeySum, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: snapshot sizes differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || math.Float64bits(a[i].Sum) != math.Float64bits(b[i].Sum) {
			t.Errorf("%s: entry %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	for _, eng := range testEngines {
		t.Run(eng, func(t *testing.T) {
			src := mustNew(t, eng, 4)
			data := testValues(rand.New(rand.NewSource(7)), 15, 25)
			for key, xs := range data {
				src.Add(key, xs)
			}
			src.Add("specials", []float64{math.Inf(1), 1, math.Inf(1)})

			blob, err := src.ExportAll()
			if err != nil {
				t.Fatal(err)
			}
			dst := mustNew(t, eng, 7) // different partition count on purpose
			if err := dst.ImportMerge(blob); err != nil {
				t.Fatal(err)
			}
			snapshotsEqual(t, src.Snapshot(), dst.Snapshot(), "round trip")
			for key, xs := range data {
				got, ok := dst.Sum(key)
				if !ok {
					t.Fatalf("imported key %q missing", key)
				}
				if want := oracle.Sum(xs); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("imported Sum(%q) = %x, oracle %x", key, math.Float64bits(got), math.Float64bits(want))
				}
			}
			if v, _ := dst.Sum("specials"); !math.IsInf(v, 1) {
				t.Errorf("specials key = %v, want +Inf", v)
			}

			// The export is a deterministic function of the state: two
			// exports of the same store are byte-identical.
			blob2, err := src.ExportAll()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Error("two exports of unchanged state differ")
			}
		})
	}
}

func TestExportRangeSelectsAndRebalances(t *testing.T) {
	src := mustNew(t, "dense", 4)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		src.Add(k, []float64{float64(k[0])})
	}
	blob, err := src.ExportRange("b", "d")
	if err != nil {
		t.Fatal(err)
	}
	dst := mustNew(t, "dense", 2)
	if err := dst.ImportMerge(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.Keys(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("imported range keys = %v, want [b c]", got)
	}
	// The rebalance pattern: export a range, ship it, delete it locally.
	// No key is lost or double-counted.
	if n := src.DeleteRange("b", "d"); n != 2 {
		t.Fatalf("DeleteRange removed %d, want 2", n)
	}
	total := append(src.Snapshot(), dst.Snapshot()...)
	if len(total) != 5 {
		t.Fatalf("after rebalance the union has %d keys, want 5", len(total))
	}

	// An empty range is a valid, importable envelope.
	empty, err := src.ExportRange("zz", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportMerge(empty); err != nil {
		t.Errorf("empty-range envelope rejected: %v", err)
	}
}

func TestImportMergeRejectsEngineMismatchUntouched(t *testing.T) {
	src := mustNew(t, "sparse", 2)
	src.Add("k", []float64{1, 2})
	blob, err := src.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	dst := mustNew(t, "dense", 2)
	dst.Add("k", []float64{10})
	before := dst.Snapshot()
	if err := dst.ImportMerge(blob); !errors.Is(err, ErrEngineMismatch) {
		t.Fatalf("engine mismatch: err = %v, want ErrEngineMismatch", err)
	}
	snapshotsEqual(t, before, dst.Snapshot(), "state after rejected mismatch")
}

// validEnvelope builds a well-formed single-entry dense envelope to
// mutate in the malformed-payload table.
func validEnvelope(t *testing.T) []byte {
	t.Helper()
	s := mustNew(t, "dense", 1)
	s.Add("ab", []float64{1.5, -0.25})
	blob, err := s.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestMalformedEnvelopesRejectedStateUntouched(t *testing.T) {
	valid := validEnvelope(t)
	mangle := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{keyedMagic, keyedVersion}},
		{"bad magic", mangle(func(b []byte) []byte { b[0] = 0xC7; return b })},
		{"bad version", mangle(func(b []byte) []byte { b[1] = 9; return b })},
		{"empty engine name", []byte{keyedMagic, keyedVersion, 0}},
		{"engine name truncated", []byte{keyedMagic, keyedVersion, 10, 'd'}},
		{"unknown engine", append([]byte{keyedMagic, keyedVersion, 2}, "zz"...)},
		{"count missing", append([]byte{keyedMagic, keyedVersion, 5}, "dense"...)},
		{"count varint overflow", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)},
		{"hostile count", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			0x80, 0x80, 0x80, 0x08, 1, 'k')}, // claims 2^24 entries
		{"zero key length", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 0)},
		{"oversized key length", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 0x81, 0x80, 0x01)}, // keyLen 16385 > MaxKeyLen
		{"key truncated", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 5, 'k', 'e')},
		{"payload length missing", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 1, 'k')},
		{"payload truncated", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 1, 'k', 200, 0xA5)},
		{"bad inner payload", append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
			1, 1, 'k', 3, 1, 2, 3)},
		{"trailing bytes", mangle(func(b []byte) []byte { return append(b, 0xEE) })},
		{"count understates entries", mangle(func(b []byte) []byte {
			b[3+len("dense")] = 0 // claim zero entries, leave the entry bytes
			return b
		})},
	}
	// Truncation at every prefix must error, never panic.
	for i := 0; i < len(valid); i++ {
		cases = append(cases, struct {
			name string
			data []byte
		}{fmt.Sprintf("prefix-%d", i), valid[:i]})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustNew(t, "dense", 2)
			s.Add("existing", []float64{42})
			before := s.Snapshot()
			if err := s.ImportMerge(tc.data); err == nil {
				t.Fatalf("malformed envelope accepted: % x", tc.data)
			}
			snapshotsEqual(t, before, s.Snapshot(), "state after rejected envelope")
		})
	}
}

// TestPartialEnvelopeFailureIsAtomic pins the decode-then-apply contract:
// an envelope whose first entry is valid but whose second is broken must
// merge nothing.
func TestPartialEnvelopeFailureIsAtomic(t *testing.T) {
	src := mustNew(t, "dense", 1)
	src.Add("aa", []float64{1})
	src.Add("bb", []float64{2})
	blob, err := src.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the tail so the second entry's payload fails validation
	// while the first decodes cleanly.
	blob = blob[:len(blob)-1]

	dst := mustNew(t, "dense", 2)
	dst.Add("aa", []float64{10})
	before := dst.Snapshot()
	if err := dst.ImportMerge(blob); err == nil {
		t.Fatal("truncated two-entry envelope accepted")
	}
	snapshotsEqual(t, before, dst.Snapshot(), "state after partially valid envelope")
}

// TestHostileCountNoHugeAlloc mirrors the accum codec gauntlet: a tiny
// envelope claiming 2^24 entries must be rejected without allocating
// entry storage for them.
func TestHostileCountNoHugeAlloc(t *testing.T) {
	payload := append(append([]byte{keyedMagic, keyedVersion, 5}, "dense"...),
		0x80, 0x80, 0x80, 0x08) // count = 2^24, no entry bytes at all
	s := mustNew(t, "dense", 1)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := s.ImportMerge(payload); err == nil {
		t.Fatal("hostile count accepted")
	}
	runtime.ReadMemStats(&after)
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 1<<20 {
		t.Fatalf("decoder allocated %d bytes for a %d-byte hostile payload", grown, len(payload))
	}
}

func TestKeyPartialsJSONPath(t *testing.T) {
	src := mustNew(t, "dense", 3)
	src.Add("x", []float64{1e-300, 1e300})
	src.Add("y", []float64{math.Inf(-1)})
	ps, err := src.ExportPartials("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Key != "x" || ps[1].Key != "y" {
		t.Fatalf("ExportPartials = %v keys, want sorted [x y]", len(ps))
	}
	// Each blob is an ordinary PR-3 engine envelope.
	for _, p := range ps {
		if name, _, err := engine.UnmarshalPartial(p.Blob); err != nil || name != "dense" {
			t.Fatalf("entry %q is not a dense engine envelope: %v", p.Key, err)
		}
	}
	dst := mustNew(t, "dense", 5)
	if err := dst.MergeKeyPartials(ps); err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, src.Snapshot(), dst.Snapshot(), "JSON-path round trip")

	// Validation happens before any state change.
	dst2 := mustNew(t, "dense", 2)
	bad := []KeyPartial{
		{Key: "ok", Blob: ps[0].Blob},
		{Key: "", Blob: ps[0].Blob},
	}
	if err := dst2.MergeKeyPartials(bad); err == nil {
		t.Fatal("empty key in partial list accepted")
	}
	if dst2.Len() != 0 {
		t.Error("failed MergeKeyPartials left state behind")
	}
	sp := mustNew(t, "sparse", 1)
	sp.Add("z", []float64{1})
	spPs, err := sp.ExportPartials("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst2.MergeKeyPartials(spPs); !errors.Is(err, ErrEngineMismatch) {
		t.Fatalf("engine mismatch in key partials: err = %v", err)
	}
}
