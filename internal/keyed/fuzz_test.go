package keyed

import (
	"bytes"
	"math"
	"testing"

	"parsum/internal/oracle"
)

// FuzzKeyedWire feeds arbitrary bytes to the keyed-envelope decoder and
// pins three properties:
//
//  1. ImportMerge never panics and never makes the store lie: on error
//     the store is bit-for-bit unchanged.
//  2. Any blob the decoder accepts re-exports to a blob that decodes to
//     the same snapshot (decode∘encode is the identity on valid states).
//  3. A store built from fuzz-derived (key, value) pairs round-trips
//     through the wire bit-identically to a math/big oracle per key.
//
// The allocation bound for hostile counts is pinned separately by
// TestHostileCountNoHugeAlloc (MemStats accounting is too noisy for a
// fuzz loop).
func FuzzKeyedWire(f *testing.F) {
	// Seed with a valid envelope and its classic mutations so coverage
	// starts at the interesting branches; more seeds live in
	// testdata/fuzz/FuzzKeyedWire.
	s := mustNew(f, "dense", 2)
	s.Add("ab", []float64{1.5, -0.25})
	s.Add("c", []float64{math.Inf(1)})
	valid, err := s.ExportAll()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, []byte("k\x00"), float64(1))
	f.Add([]byte{}, []byte{}, float64(0))
	f.Add([]byte{keyedMagic, keyedVersion, 5, 'd', 'e', 'n', 's', 'e', 0},
		[]byte("ab\x00cd"), math.Inf(1))
	f.Add(valid[:len(valid)-3], []byte("\x00"), -0.0)

	f.Fuzz(func(t *testing.T, blob []byte, keyBytes []byte, v float64) {
		// Property 1+2: decode arbitrary bytes into a store with prior
		// state; either it errors and the state is untouched, or it
		// succeeds and the merged state survives an export/import cycle.
		dst := mustNew(t, "dense", 3)
		dst.Add("prior", []float64{3, 4})
		before := dst.Snapshot()
		if err := dst.ImportMerge(blob); err != nil {
			snapshotsEqual(t, before, dst.Snapshot(), "state after rejected fuzz blob")
		} else {
			re, err := dst.ExportAll()
			if err != nil {
				t.Fatalf("accepted blob but re-export failed: %v", err)
			}
			dst2 := mustNew(t, "dense", 1)
			if err := dst2.ImportMerge(re); err != nil {
				t.Fatalf("re-exported blob rejected: %v", err)
			}
			snapshotsEqual(t, dst.Snapshot(), dst2.Snapshot(), "re-export cycle")
		}

		// Property 3: build keys from the fuzz bytes (NUL-separated,
		// clamped to MaxKeyLen, empties dropped), give each a value
		// derived from v, and check the wire round trip against the
		// oracle.
		src := mustNew(t, "dense", 2)
		want := make(map[string][]float64)
		for i, part := range bytes.Split(keyBytes, []byte{0}) {
			if len(part) == 0 {
				continue
			}
			if len(part) > MaxKeyLen {
				part = part[:MaxKeyLen]
			}
			key := string(part)
			xs := []float64{v, v * float64(i+1), -v}
			src.Add(key, xs)
			want[key] = append(want[key], xs...)
		}
		wire, err := src.ExportAll()
		if err != nil {
			t.Fatalf("export of fuzz-built store failed: %v", err)
		}
		rt := mustNew(t, "dense", 5)
		if err := rt.ImportMerge(wire); err != nil {
			t.Fatalf("round trip of fuzz-built store rejected: %v", err)
		}
		for key, xs := range want {
			got, ok := rt.Sum(key)
			if !ok {
				t.Fatalf("key %q lost in round trip", key)
			}
			ref := oracle.Sum(xs)
			if math.IsNaN(ref) {
				if !math.IsNaN(got) {
					t.Fatalf("key %q = %v, oracle NaN", key, got)
				}
				continue
			}
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("key %q = %x, oracle %x", key,
					math.Float64bits(got), math.Float64bits(ref))
			}
		}
	})
}
