package keyed

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"parsum/internal/engine"
)

// Keyed wire envelope: the frame a set of per-key exact partials travels
// in between stores — the unit of key-range rebalancing and anti-entropy
// replication. It extends the PR-3 single-partial envelope the way the
// store extends the single accumulator: the engine name is hoisted once
// (every entry shares it), then each entry is a length-prefixed key plus
// that key's accumulator payload in the accumulator's own binary codec.
//
// Layout (little-endian varints):
//
//	magic   byte = 0xC9
//	version byte = 1
//	engLen  byte (1..255)
//	engine  engLen bytes (registry name, shared by every entry)
//	count   uvarint (number of entries)
//	count × {
//	  keyLen  uvarint (1..MaxKeyLen)
//	  key     keyLen bytes
//	  payLen  uvarint
//	  payload payLen bytes (the accumulator's own MarshalBinary encoding)
//	}
//
// ExportRange emits entries sorted by key, so equal per-key state
// produces byte-identical blobs. Decoding is hardened like the PR-3
// codec: every length is checked against the bytes actually remaining
// before anything is allocated, keys beyond MaxKeyLen are rejected, and
// the claimed entry count is bounded by the payload size — arbitrary
// untrusted bytes can neither panic the decoder nor make it allocate
// more than O(len(data)). ImportMerge additionally decodes and validates
// the entire envelope before touching any partition, so a malformed or
// engine-mismatched blob leaves the store bit-for-bit unchanged.
const (
	keyedMagic   = 0xC9
	keyedVersion = 1
)

// Keyed-envelope errors. Inner payload errors come wrapped from the
// accumulator's own codec.
var (
	ErrWireTruncated = errors.New("keyed: truncated keyed envelope")
	ErrWireInvalid   = errors.New("keyed: invalid keyed envelope")
	// ErrEngineMismatch is returned by ImportMerge and MergeKeyPartials
	// when a partial was produced under a different engine than the
	// store's.
	ErrEngineMismatch = errors.New("keyed: partial engine does not match store engine")
)

// ExportAll returns the whole store as one keyed envelope — the
// anti-entropy payload a replica ships to its peers.
func (s *Store) ExportAll() ([]byte, error) { return s.ExportRange("", "") }

// ExportRange returns every key k with lo ≤ k < hi (hi == "" means no
// upper bound) as one keyed envelope, entries sorted by key. The export
// is non-destructive — rebalancing pairs it with DeleteRange — and does
// not disturb ingestion: each key is marshaled under its partition lock,
// so every entry is an exact partial of some prefix of that key's
// history. Equal state exports byte-identical blobs.
func (s *Store) ExportRange(lo, hi string) ([]byte, error) {
	type entry struct {
		key  string
		blob []byte
	}
	var entries []entry
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k, a := range p.m {
			if k < lo || (hi != "" && k >= hi) {
				continue
			}
			blob, err := a.(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				p.mu.Unlock()
				return nil, fmt.Errorf("keyed: marshaling key %q: %w", k, err)
			}
			entries = append(entries, entry{key: k, blob: blob})
		}
		p.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	name := s.eng.Name()
	size := 3 + len(name) + binary.MaxVarintLen64
	for _, e := range entries {
		size += 2*binary.MaxVarintLen64 + len(e.key) + len(e.blob)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, keyedMagic, keyedVersion, byte(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		buf = append(buf, e.key...)
		buf = binary.AppendUvarint(buf, uint64(len(e.blob)))
		buf = append(buf, e.blob...)
	}
	return buf, nil
}

// wireEntry is one decoded envelope entry: a key and a fresh accumulator
// holding its partial.
type wireEntry struct {
	key string
	acc engine.Accumulator
}

// decodeEnvelope validates a keyed envelope end to end and returns the
// decoded entries. Nothing is returned on any error, and every length is
// checked against the remaining bytes before allocation.
func decodeEnvelope(data []byte) (engineName string, entries []wireEntry, err error) {
	if len(data) < 3 {
		return "", nil, ErrWireTruncated
	}
	if data[0] != keyedMagic {
		return "", nil, fmt.Errorf("%w: bad magic %#x", ErrWireInvalid, data[0])
	}
	if data[1] != keyedVersion {
		return "", nil, fmt.Errorf("%w: unsupported version %d", ErrWireInvalid, data[1])
	}
	nameLen := int(data[2])
	if nameLen == 0 {
		return "", nil, fmt.Errorf("%w: empty engine name", ErrWireInvalid)
	}
	if len(data) < 3+nameLen {
		return "", nil, ErrWireTruncated
	}
	engineName = string(data[3 : 3+nameLen])
	e, ok := engine.Get(engineName)
	if !ok {
		return engineName, nil, fmt.Errorf("%w: unknown engine %q (registered: %v)", ErrWireInvalid, engineName, engine.Names())
	}
	if !engine.CanMarshal(e) {
		return engineName, nil, fmt.Errorf("%w: engine %q cannot decode wire partials", ErrWireInvalid, engineName)
	}
	rest := data[3+nameLen:]
	count, n := binary.Uvarint(rest)
	if n == 0 {
		return engineName, nil, ErrWireTruncated
	}
	if n < 0 {
		return engineName, nil, fmt.Errorf("%w: entry count varint overflows uint64", ErrWireInvalid)
	}
	rest = rest[n:]
	// The smallest possible entry is 4 bytes (keyLen=1 varint, 1 key
	// byte, payLen varint, and the payload's own minimum — checked again
	// per entry); a count claiming more entries than the remaining bytes
	// could hold is hostile, and rejecting it here bounds the entries
	// allocation by O(len(data)).
	if count > uint64(len(rest))/4+1 {
		return engineName, nil, fmt.Errorf("%w: %d entries claimed but only %d bytes follow", ErrWireTruncated, count, len(rest))
	}
	entries = make([]wireEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		keyLen, n := binary.Uvarint(rest)
		if n <= 0 {
			return engineName, nil, badVarint(n, "key length")
		}
		rest = rest[n:]
		if keyLen == 0 || keyLen > MaxKeyLen {
			return engineName, nil, fmt.Errorf("%w: key length %d outside [1,%d]", ErrWireInvalid, keyLen, MaxKeyLen)
		}
		if uint64(len(rest)) < keyLen {
			return engineName, nil, ErrWireTruncated
		}
		key := string(rest[:keyLen])
		rest = rest[keyLen:]
		payLen, n := binary.Uvarint(rest)
		if n <= 0 {
			return engineName, nil, badVarint(n, "payload length")
		}
		rest = rest[n:]
		if uint64(len(rest)) < payLen {
			return engineName, nil, ErrWireTruncated
		}
		acc := e.NewAccumulator()
		if err := acc.(encoding.BinaryUnmarshaler).UnmarshalBinary(rest[:payLen]); err != nil {
			return engineName, nil, fmt.Errorf("keyed: entry %q: %w", key, err)
		}
		rest = rest[payLen:]
		entries = append(entries, wireEntry{key: key, acc: acc})
	}
	if len(rest) != 0 {
		return engineName, nil, fmt.Errorf("%w: %d trailing bytes", ErrWireInvalid, len(rest))
	}
	return engineName, entries, nil
}

func badVarint(n int, what string) error {
	if n == 0 {
		return ErrWireTruncated
	}
	return fmt.Errorf("%w: %s varint overflows uint64", ErrWireInvalid, what)
}

// ImportMerge decodes a keyed envelope and folds every entry into the
// store, creating missing keys — the reducer half of the keyed exchange.
// Like Sharded.MergeBytes it returns errors rather than panicking: the
// payload is remote input. The entire envelope is decoded and validated
// before any partition is touched, so a malformed or engine-mismatched
// blob leaves the store bit-for-bit unchanged. Merging is exact and
// commutative; importing the same set of exported partials in any order
// converges every key to bit-identical sums (the CRDT property —
// entries for the same key, within or across envelopes, simply add).
func (s *Store) ImportMerge(data []byte) error {
	name, entries, err := decodeEnvelope(data)
	if err != nil {
		return err
	}
	if name != s.eng.Name() {
		return fmt.Errorf("%w (partial %q, store %q)", ErrEngineMismatch, name, s.eng.Name())
	}
	s.mergeEntries(entries)
	return nil
}

// mergeEntries folds fully validated entries in, one partition-lock
// acquisition per touched partition.
func (s *Store) mergeEntries(entries []wireEntry) {
	buckets := make(map[*partition][]wireEntry, len(s.parts))
	for _, e := range entries {
		p := s.part(e.key)
		buckets[p] = append(buckets[p], e)
	}
	for p, group := range buckets {
		p.mu.Lock()
		for _, e := range group {
			s.acc(p, e.key).Merge(e.acc)
		}
		p.mu.Unlock()
	}
}

// ExportPartials returns the keys in [lo, hi) as per-key engine wire
// envelopes (engine.MarshalPartial), sorted by key — the JSON-friendly
// form of ExportRange, each entry independently mergeable by any PR-3
// consumer.
func (s *Store) ExportPartials(lo, hi string) ([]KeyPartial, error) {
	name := s.eng.Name()
	var out []KeyPartial
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k, a := range p.m {
			if k < lo || (hi != "" && k >= hi) {
				continue
			}
			blob, err := engine.MarshalPartial(name, a)
			if err != nil {
				p.mu.Unlock()
				return nil, fmt.Errorf("keyed: marshaling key %q: %w", k, err)
			}
			out = append(out, KeyPartial{Key: k, Blob: blob})
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// MergeKeyPartials folds a set of per-key engine envelopes in — the push
// half of the JSON keyed exchange. Every entry is decoded and validated
// (including key bounds and engine match) before any partition is
// touched, preserving the malformed-input-leaves-state-unchanged
// contract of ImportMerge.
func (s *Store) MergeKeyPartials(ps []KeyPartial) error {
	entries := make([]wireEntry, 0, len(ps))
	for _, kp := range ps {
		if kp.Key == "" || len(kp.Key) > MaxKeyLen {
			return fmt.Errorf("%w: key length %d outside [1,%d]", ErrWireInvalid, len(kp.Key), MaxKeyLen)
		}
		name, acc, err := engine.UnmarshalPartial(kp.Blob)
		if err != nil {
			return fmt.Errorf("keyed: entry %q: %w", kp.Key, err)
		}
		if name != s.eng.Name() {
			return fmt.Errorf("%w (partial %q for key %q, store %q)", ErrEngineMismatch, name, kp.Key, s.eng.Name())
		}
		entries = append(entries, wireEntry{key: kp.Key, acc: acc})
	}
	s.mergeEntries(entries)
	return nil
}
