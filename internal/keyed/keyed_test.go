package keyed

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/oracle"
)

// engines every keyed test sweeps: the four wire-capable superaccumulator
// engines.
var testEngines = []string{"dense", "sparse", "small", "large"}

// partitionCounts exercises the degenerate single-partition store, a
// power of two, and an odd count that makes the modulo non-trivial.
var partitionCounts = []int{1, 4, 7}

func mustNew(t testing.TB, eng string, parts int) *Store {
	t.Helper()
	s, err := New(Options{Engine: eng, Partitions: parts})
	if err != nil {
		t.Fatalf("New(%q, %d): %v", eng, parts, err)
	}
	return s
}

// testValues returns a per-key multiset over nKeys keys with wide
// exponent spread, denormals, and exact cancellations.
func testValues(r *rand.Rand, nKeys, perKey int) map[string][]float64 {
	m := make(map[string][]float64, nKeys)
	for k := 0; k < nKeys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		xs := make([]float64, 0, perKey)
		for i := 0; i < perKey; i++ {
			x := math.Ldexp(r.Float64()*2-1, r.Intn(600)-300)
			xs = append(xs, x, -x/2) // forced partial cancellation
		}
		xs = append(xs, 5e-324, -5e-324, 0, math.Copysign(0, -1))
		m[key] = xs
	}
	return m
}

func TestAddSumPerKeyBitIdentical(t *testing.T) {
	for _, eng := range testEngines {
		for _, parts := range partitionCounts {
			t.Run(fmt.Sprintf("%s/p%d", eng, parts), func(t *testing.T) {
				s := mustNew(t, eng, parts)
				data := testValues(rand.New(rand.NewSource(1)), 20, 40)
				// Interleave ingestion across keys in small pieces.
				for off := 0; ; off += 7 {
					done := true
					for key, xs := range data {
						if off < len(xs) {
							end := min(off+7, len(xs))
							s.Add(key, xs[off:end])
							done = false
						}
					}
					if done {
						break
					}
				}
				for key, xs := range data {
					got, ok := s.Sum(key)
					if !ok {
						t.Fatalf("key %q missing", key)
					}
					want := oracle.Sum(xs)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("Sum(%q) = %x, oracle %x", key, math.Float64bits(got), math.Float64bits(want))
					}
				}
				if n := s.Len(); n != len(data) {
					t.Errorf("Len = %d, want %d", n, len(data))
				}
			})
		}
	}
}

func TestMissingAndEmptyKeys(t *testing.T) {
	s := mustNew(t, "dense", 4)
	if v, ok := s.Sum("nope"); ok || v != 0 {
		t.Errorf("Sum of missing key = (%v, %v), want (0, false)", v, ok)
	}
	// An empty Add registers the key at exact +0: presence is state.
	s.Add("present", nil)
	v, ok := s.Sum("present")
	if !ok {
		t.Fatal("empty Add did not register the key")
	}
	if math.Float64bits(v) != 0 {
		t.Errorf("empty key sum bits = %x, want +0", math.Float64bits(v))
	}
}

func TestSubIsExactDeletion(t *testing.T) {
	s := mustNew(t, "dense", 3)
	xs := []float64{1e300, -1e300, 3.5, 5e-324, math.Inf(1)}
	noise := []float64{2.25, -1e-30, math.Inf(1), math.NaN()}
	s.Add("k", xs)
	s.Add("k", noise)
	s.Sub("k", noise)
	got, _ := s.Sum("k")
	want := oracle.Sum(xs)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("after add+sub of noise: %x, want %x", math.Float64bits(got), math.Float64bits(want))
	}
	// A net deletion on a fresh key is a legal group element: adding the
	// values back cancels to +0.
	s.Sub("fresh", []float64{7.5})
	s.Add("fresh", []float64{7.5})
	if v, ok := s.Sum("fresh"); !ok || math.Float64bits(v) != 0 {
		t.Errorf("net-deleted-then-restored key = (%v,%v), want +0", v, ok)
	}
}

func TestSnapshotDeterministicAcrossPartitionsAndOrder(t *testing.T) {
	data := testValues(rand.New(rand.NewSource(2)), 30, 20)
	var ref []KeySum
	for i, parts := range []int{1, 4, 7} {
		s := mustNew(t, "dense", parts)
		// Different ingestion order per store: forward, backward, shuffled
		// split points — same per-key multiset.
		keys := make([]string, 0, len(data))
		for k := range data {
			keys = append(keys, k)
		}
		r := rand.New(rand.NewSource(int64(i + 10)))
		r.Shuffle(len(keys), func(a, b int) { keys[a], keys[b] = keys[b], keys[a] })
		for _, k := range keys {
			xs := data[k]
			cut := r.Intn(len(xs) + 1)
			s.Add(k, xs[cut:])
			s.Add(k, xs[:cut])
		}
		snap := s.Snapshot()
		if ref == nil {
			ref = snap
			continue
		}
		if len(snap) != len(ref) {
			t.Fatalf("partitions=%d: snapshot has %d keys, want %d", parts, len(snap), len(ref))
		}
		for j := range snap {
			if snap[j].Key != ref[j].Key || math.Float64bits(snap[j].Sum) != math.Float64bits(ref[j].Sum) {
				t.Errorf("partitions=%d: snapshot[%d] = %+v, want %+v", parts, j, snap[j], ref[j])
			}
		}
	}
}

func TestKeysRangeAndDeleteRange(t *testing.T) {
	s := mustNew(t, "dense", 4)
	for _, k := range []string{"b", "a", "d", "c", "e"} {
		s.Add(k, []float64{1})
	}
	if got := s.Keys(); len(got) != 5 || got[0] != "a" || got[4] != "e" {
		t.Fatalf("Keys() = %v, want sorted a..e", got)
	}
	if got := s.KeysRange("b", "d"); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("KeysRange(b,d) = %v, want [b c]", got)
	}
	if got := s.KeysRange("d", ""); len(got) != 2 || got[0] != "d" || got[1] != "e" {
		t.Errorf(`KeysRange(d,"") = %v, want [d e]`, got)
	}
	if n := s.DeleteRange("b", "d"); n != 2 {
		t.Errorf("DeleteRange removed %d, want 2", n)
	}
	if got := s.Keys(); len(got) != 3 {
		t.Errorf("after DeleteRange: Keys() = %v", got)
	}
	if _, ok := s.Sum("b"); ok {
		t.Error("deleted key still present")
	}
	// Deleted keys' accumulators are recycled; re-adding must start from
	// a clean pool value.
	s.Add("b", []float64{2})
	if v, _ := s.Sum("b"); v != 2 {
		t.Errorf("recycled accumulator dirty: Sum(b) = %v, want 2", v)
	}
	s.Reset()
	if n := s.Len(); n != 0 {
		t.Errorf("after Reset: Len = %d", n)
	}
}

func TestGroupedBatchesMatchIndividualOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var adds, subs []Batch
	individual := mustNew(t, "dense", 5)
	grouped := mustNew(t, "dense", 5)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%02d", r.Intn(25))
		xs := make([]float64, 1+r.Intn(8))
		for j := range xs {
			xs[j] = math.Ldexp(r.Float64()*2-1, r.Intn(200)-100)
		}
		if r.Intn(4) == 0 {
			subs = append(subs, Batch{Key: key, Values: xs})
			individual.Sub(key, xs)
		} else {
			adds = append(adds, Batch{Key: key, Values: xs})
			individual.Add(key, xs)
		}
	}
	grouped.AddKeyedBatches(adds)
	grouped.SubKeyedBatches(subs)
	grouped.AddKeyedBatches(nil) // no-op

	a, b := individual.Snapshot(), grouped.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || math.Float64bits(a[i].Sum) != math.Float64bits(b[i].Sum) {
			t.Errorf("entry %d: individual %+v, grouped %+v", i, a[i], b[i])
		}
	}
}

func TestMergeStores(t *testing.T) {
	a := mustNew(t, "dense", 3)
	b := mustNew(t, "dense", 5)
	a.Add("shared", []float64{1e100, 1})
	a.Add("only-a", []float64{2})
	b.Add("shared", []float64{-1e100})
	b.Add("only-b", []float64{3})
	a.Merge(b)
	if v, _ := a.Sum("shared"); v != 1 {
		t.Errorf("merged shared = %v, want 1 (exact cancellation)", v)
	}
	if v, _ := a.Sum("only-b"); v != 3 {
		t.Errorf("merged only-b = %v, want 3", v)
	}
	// b unchanged.
	if v, _ := b.Sum("shared"); v != -1e100 {
		t.Errorf("merge source mutated: %v", v)
	}
	if n := a.Len(); n != 3 {
		t.Errorf("merged Len = %d, want 3", n)
	}
}

func TestConcurrentKeyedIngestion(t *testing.T) {
	// Racing writers over overlapping keys across every partition count;
	// per-key sums must match the oracle over each key's multiset exactly.
	// Run under -race this also proves lock coverage.
	for _, parts := range partitionCounts {
		t.Run(fmt.Sprintf("p%d", parts), func(t *testing.T) {
			s := mustNew(t, "dense", parts)
			const writers, perWriter, nKeys = 8, 300, 11
			// Every writer adds deterministic values to key (i % nKeys);
			// the multiset per key is then known without coordination.
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						key := fmt.Sprintf("k%d", i%nKeys)
						v := math.Ldexp(float64(w*perWriter+i+1), (i%40)-20)
						s.Add(key, []float64{v, -v / 4})
					}
				}(w)
			}
			wg.Wait()
			want := make(map[string][]float64)
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					key := fmt.Sprintf("k%d", i%nKeys)
					v := math.Ldexp(float64(w*perWriter+i+1), (i%40)-20)
					want[key] = append(want[key], v, -v/4)
				}
			}
			for key, xs := range want {
				got, ok := s.Sum(key)
				if !ok {
					t.Fatalf("key %q missing", key)
				}
				if ref := oracle.Sum(xs); math.Float64bits(got) != math.Float64bits(ref) {
					t.Errorf("Sum(%q) = %x, oracle %x", key, math.Float64bits(got), math.Float64bits(ref))
				}
			}
		})
	}
}

func TestNewRejectsUnusableEngines(t *testing.T) {
	if _, err := New(Options{Engine: "no-such-engine"}); err == nil {
		t.Error("unknown engine accepted")
	}
	// kahan is registered but not streaming/deterministic-parallel.
	if _, err := New(Options{Engine: "kahan"}); err == nil {
		t.Error("non-streaming engine accepted")
	}
	// A streaming, deterministic-parallel engine whose accumulators
	// cannot marshal cannot back a keyed store: its state could never be
	// exchanged.
	engine.Register(engine.New("keyed-test-nomarshal",
		"test stub: streams but cannot marshal",
		engine.Caps{Streaming: true, DeterministicParallel: true},
		func(xs []float64) float64 { return 0 },
		func() engine.Accumulator { return &stubAcc{} }))
	if _, err := New(Options{Engine: "keyed-test-nomarshal"}); err == nil {
		t.Error("non-marshalable engine accepted")
	}
}

// stubAcc is a do-nothing accumulator without the binary codec.
type stubAcc struct{}

func (*stubAcc) Add(float64)                 {}
func (*stubAcc) AddSlice([]float64)          {}
func (*stubAcc) Merge(engine.Accumulator)    {}
func (*stubAcc) Round() float64              { return 0 }
func (*stubAcc) Reset()                      {}
func (s *stubAcc) Clone() engine.Accumulator { return s }

func TestKeyValidationPanics(t *testing.T) {
	s := mustNew(t, "dense", 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty key", func() { s.Add("", []float64{1}) })
	long := make([]byte, MaxKeyLen+1)
	for i := range long {
		long[i] = 'x'
	}
	mustPanic("oversized key", func() { s.Add(string(long), []float64{1}) })
	mustPanic("self-merge", func() { s.Merge(s) })
	o := mustNew(t, "sparse", 2)
	mustPanic("engine-mismatched merge", func() { s.Merge(o) })
}
