// Package keyed implements the multi-key exact aggregation store: a
// hash-partitioned map from string keys to exact accumulators, layered
// over the same engine seam as internal/shard. Where a Sharded holds one
// global sum striped across writers, a Store holds millions of
// independent sums — per-user balances, per-metric series, per-tenant
// totals — each as exact as the single-sum path: every (key, value)
// ingestion lands in that key's superaccumulator, merges are carry-free,
// and rounding happens once per query.
//
// Exact summation is a commutative group, so a Store's per-key partials
// form a state-based CRDT: two stores that exchange exported partials
// (ExportRange/ImportMerge) converge to bit-identical per-key sums no
// matter the exchange order, because merging partials is exactly adding
// group elements — commutative, associative, and independent of the
// partition of the underlying multiset. That is the anti-entropy
// guarantee a replicated counter service needs, and it is algebraic, not
// scheduling luck.
//
// Mechanically, keys hash (FNV-1a) onto one of N partitions; each
// partition is a mutex-guarded map[string]accumulator whose values are
// recycled through a sync.Pool (the fresh/recycle pattern of
// shard.Sharded), so churn from Reset/DeleteRange does not thrash the
// allocator. Batched ingestion (AddKeyedBatches) groups a whole flush by
// partition and takes each partition lock once — the batcher's
// group-commit flush applies with at most N lock acquisitions however
// many requests it coalesced.
package keyed

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"parsum/internal/core"
	"parsum/internal/engine"
)

// MaxKeyLen bounds key length everywhere — store operations panic beyond
// it (a programming error, like engine mismatches) and the wire decoder
// rejects longer keys before allocating. 4 KiB is far beyond any sane
// metric or tenant identifier while keeping a hostile envelope from
// claiming gigabyte keys.
const MaxKeyLen = 4096

// Options configures a Store; the zero value is ready to use (dense
// engine, one partition per P).
type Options struct {
	// Engine names the registered summation engine backing every key's
	// accumulator; "" means the dense superaccumulator. It must declare
	// Streaming and DeterministicParallel (the capabilities that make
	// partitioned accumulation deterministic) and its accumulators must
	// marshal (partials cross the wire).
	Engine string
	// Partitions is the number of independent key stripes; 0 means
	// GOMAXPROCS. More partitions admit more concurrent writers on
	// disjoint keys; the key→partition map is an internal detail and
	// never crosses the wire.
	Partitions int
}

// Batch is one keyed ingestion unit: a key and the values bound for its
// accumulator. The batcher's keyed flush path carries these.
type Batch struct {
	Key    string
	Values []float64
}

// KeySum is one entry of a whole-store snapshot.
type KeySum struct {
	Key string
	Sum float64
}

// KeyPartial is one key's exact partial as an engine wire envelope
// (engine.MarshalPartial) — the JSON-friendly exchange unit; the binary
// keyed envelope (ExportRange) hoists the engine name and is denser.
type KeyPartial struct {
	Key  string `json:"key"`
	Blob []byte `json:"blob"`
}

// partition is one key stripe: a mutex-guarded key→accumulator map,
// padded so neighbouring partitions do not false-share a cache line.
type partition struct {
	mu sync.Mutex
	m  map[string]engine.Accumulator
	_  [40]byte // Mutex(8) + map(8) + 40 = 56; close enough to a line
}

// Store is the hash-partitioned key→accumulator map. All methods are
// safe for concurrent use. The zero value is not usable; construct with
// New.
type Store struct {
	eng   engine.Engine
	inv   bool
	parts []partition

	accPool sync.Pool // recycled empty accumulators (fresh/recycle)
}

// New returns an empty Store. It errors when the engine is unknown,
// cannot back deterministic partitioned accumulation (needs Streaming and
// DeterministicParallel), or cannot marshal wire partials — a keyed store
// whose state cannot be exchanged would be a silo, not a replica.
func New(opt Options) (*Store, error) {
	name := opt.Engine
	if name == "" {
		name = core.EngineDense
	}
	e, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("keyed: unknown engine %q (registered: %v)", name, engine.Names())
	}
	if caps := e.Caps(); !caps.Streaming || !caps.DeterministicParallel {
		return nil, fmt.Errorf("keyed: engine %q cannot back a keyed store (needs Streaming and DeterministicParallel; has Streaming=%v DeterministicParallel=%v)",
			name, caps.Streaming, caps.DeterministicParallel)
	}
	if !engine.CanMarshal(e) {
		return nil, fmt.Errorf("keyed: engine %q cannot marshal wire partials", name)
	}
	n := opt.Partitions
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Store{eng: e, inv: e.Caps().Invertible, parts: make([]partition, n)}
	for i := range s.parts {
		s.parts[i].m = make(map[string]engine.Accumulator)
	}
	return s, nil
}

// Engine returns the name of the backing engine.
func (s *Store) Engine() string { return s.eng.Name() }

// Partitions returns the number of key stripes.
func (s *Store) Partitions() int { return len(s.parts) }

// Invertible reports whether the backing engine supports exact deletion
// (Sub). All the superaccumulator engines do.
func (s *Store) Invertible() bool { return s.inv }

func (s *Store) checkInvertible() {
	if !s.inv {
		panic(fmt.Sprintf("keyed: engine %q is not invertible (no exact deletion)", s.eng.Name()))
	}
}

// checkKey rejects the keys no store operation accepts: empty, or longer
// than MaxKeyLen. Both are programming errors at this layer — the
// network edge validates remote input and answers 400 instead.
func checkKey(key string) {
	if key == "" {
		panic("keyed: empty key")
	}
	if len(key) > MaxKeyLen {
		panic(fmt.Sprintf("keyed: key length %d exceeds MaxKeyLen %d", len(key), MaxKeyLen))
	}
}

// part returns the partition owning key (FNV-1a 64; stable across
// processes, though nothing on the wire depends on it).
func (s *Store) part(key string) *partition {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.parts[h%uint64(len(s.parts))]
}

func (s *Store) fresh() engine.Accumulator {
	if v := s.accPool.Get(); v != nil {
		return v.(engine.Accumulator)
	}
	return s.eng.NewAccumulator()
}

func (s *Store) recycle(a engine.Accumulator) {
	a.Reset()
	s.accPool.Put(a)
}

// acc returns key's accumulator inside p, creating it if absent. Caller
// holds p.mu.
func (s *Store) acc(p *partition, key string) engine.Accumulator {
	a, ok := p.m[key]
	if !ok {
		a = s.fresh()
		p.m[key] = a
	}
	return a
}

// Add accumulates every element of xs exactly into key's accumulator,
// under one partition-lock acquisition. An empty xs still registers the
// key (its exact sum is +0) — presence is part of the state.
func (s *Store) Add(key string, xs []float64) {
	checkKey(key)
	p := s.part(key)
	p.mu.Lock()
	s.acc(p, key).AddSlice(xs)
	p.mu.Unlock()
}

// Sub deletes every element of xs exactly from key's accumulator — the
// group inverse of Add, registering the key if absent (a net deletion is
// a legal group element). Panics when the engine is not Invertible.
func (s *Store) Sub(key string, xs []float64) {
	s.checkInvertible()
	checkKey(key)
	p := s.part(key)
	p.mu.Lock()
	s.acc(p, key).(engine.Inverter).SubSlice(xs)
	p.mu.Unlock()
}

// Sum returns the correctly rounded exact sum of key's multiset and
// whether the key exists. The bits are identical to summing the key's
// surviving values sequentially, whatever the ingestion interleaving.
func (s *Store) Sum(key string) (float64, bool) {
	checkKey(key)
	p := s.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.m[key]
	if !ok {
		return 0, false
	}
	return a.Round(), true
}

// CloneAcc returns a private clone of key's accumulator (and whether
// the key exists). The clone is the caller's group element to mutate
// freely — the anti-entropy repairer diffs donor and replica clones
// (donor − replica) to compute the exact correction partial without
// holding any store lock during the arithmetic.
func (s *Store) CloneAcc(key string) (engine.Accumulator, bool) {
	checkKey(key)
	p := s.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.m[key]
	if !ok {
		return nil, false
	}
	return a.Clone(), true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		n += len(p.m)
		p.mu.Unlock()
	}
	return n
}

// Keys returns every live key in sorted order.
func (s *Store) Keys() []string {
	return s.KeysRange("", "")
}

// KeysRange returns the sorted live keys k with lo ≤ k < hi; hi == ""
// means no upper bound. (lo == "" is every key from the start.)
func (s *Store) KeysRange(lo, hi string) []string {
	var keys []string
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k := range p.m {
			if k >= lo && (hi == "" || k < hi) {
				keys = append(keys, k)
			}
		}
		p.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns the whole store as sorted (key, correctly rounded
// exact sum) pairs. It is deterministic in the CRDT sense: two stores
// holding the same per-key multisets produce element-identical snapshots
// (same keys, same bits, same order), regardless of how or in what order
// the state arrived. Per-key values are each internally consistent;
// ingestion may continue concurrently, landing before or after each
// key's read per its partition lock.
func (s *Store) Snapshot() []KeySum {
	var out []KeySum
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k, a := range p.m {
			out = append(out, KeySum{Key: k, Sum: a.Round()})
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Reset empties the store, recycling every accumulator.
func (s *Store) Reset() {
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k, a := range p.m {
			delete(p.m, k)
			s.recycle(a)
		}
		p.mu.Unlock()
	}
}

// DeleteRange removes every key k with lo ≤ k < hi (hi == "" means no
// upper bound) and returns how many were removed — the local half of a
// key-range rebalance: export the range, ship it, delete it here.
func (s *Store) DeleteRange(lo, hi string) int {
	n := 0
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		for k, a := range p.m {
			if k >= lo && (hi == "" || k < hi) {
				delete(p.m, k)
				s.recycle(a)
				n++
			}
		}
		p.mu.Unlock()
	}
	return n
}

// AddKeyedBatches accumulates a whole group of keyed batches with one
// lock acquisition per touched partition: the group is bucketed by
// partition first, then each partition applies its share under one lock.
// This is the batcher's keyed flush entry point (batch.KeyedSink) — a
// coalesced flush of hundreds of requests costs at most Partitions()
// lock hops. Exactness is unaffected: every value still lands in exactly
// one key's accumulator.
func (s *Store) AddKeyedBatches(bs []Batch) {
	s.applyGrouped(bs, false)
}

// SubKeyedBatches deletes a whole group of keyed batches, grouped by
// partition like AddKeyedBatches — the deletion half of the keyed flush
// entry point. Panics when the engine is not Invertible.
func (s *Store) SubKeyedBatches(bs []Batch) {
	s.checkInvertible()
	s.applyGrouped(bs, true)
}

func (s *Store) applyGrouped(bs []Batch, sub bool) {
	if len(bs) == 0 {
		return
	}
	for _, b := range bs {
		checkKey(b.Key)
	}
	// Bucket the group by partition index, then take each partition lock
	// once. The per-call bucket slices are small (one header per batch)
	// and die young.
	buckets := make(map[*partition][]Batch, len(s.parts))
	for _, b := range bs {
		p := s.part(b.Key)
		buckets[p] = append(buckets[p], b)
	}
	for p, group := range buckets {
		p.mu.Lock()
		for _, b := range group {
			a := s.acc(p, b.Key)
			if sub {
				a.(engine.Inverter).SubSlice(b.Values)
			} else {
				a.AddSlice(b.Values)
			}
		}
		p.mu.Unlock()
	}
}

// Merge folds every key of o into s (creating missing keys); o is
// unchanged and remains usable. Both stores must share an engine; mixing
// engines panics like Accumulator.Merge. Merging is the in-process form
// of ImportMerge(o.ExportAll()) and obeys the same CRDT algebra.
func (s *Store) Merge(o *Store) {
	if s == o {
		panic("keyed: Merge of a Store with itself")
	}
	if s.eng.Name() != o.eng.Name() {
		panic(fmt.Sprintf("keyed: engine mismatch in Merge (%s vs %s)", s.eng.Name(), o.eng.Name()))
	}
	for i := range o.parts {
		op := &o.parts[i]
		op.mu.Lock()
		// Clone under o's lock, merge outside it: s.part(k) may collide
		// with a partition of o only when s == o, which is rejected above.
		for k, a := range op.m {
			clone := a.Clone()
			p := s.part(k)
			p.mu.Lock()
			s.acc(p, k).Merge(clone)
			p.mu.Unlock()
		}
		op.mu.Unlock()
	}
}
