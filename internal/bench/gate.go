package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// GateResult is the per-engine verdict of the bench-regression gate: the
// best throughput either snapshot recorded for the engine, their ratio,
// and whether the candidate stays within tolerance of the baseline.
type GateResult struct {
	Engine        string
	BaselineMops  float64 // best Mops/s across the baseline's worker counts
	CandidateMops float64
	Ratio         float64 // candidate / baseline
	Pass          bool
}

func (r GateResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-4s %-10s baseline %8.1f Mops/s  candidate %8.1f Mops/s  ratio %.2f",
		verdict, r.Engine, r.BaselineMops, r.CandidateMops, r.Ratio)
}

// bestMops returns the engine's best Mops/s across a snapshot's points,
// or false when the engine was not measured.
func bestMops(s ParallelSnapshot, engine string) (float64, bool) {
	best, found := 0.0, false
	for _, p := range s.Points {
		if p.Engine == engine && p.MopsPerS > best {
			best, found = p.MopsPerS, true
		}
	}
	return best, found
}

// Gate compares a candidate parallel-benchmark snapshot against the
// recorded baseline for the named engines: for each engine it takes the
// best Mops/s across worker counts on both sides (best-across-workers
// cancels the single- vs multi-core difference between CI shapes better
// than matching worker counts cell-by-cell) and fails the engine when the
// candidate falls below (1−tolerance)× the baseline. An engine missing
// from either snapshot is an error — a gate that silently skips what it
// was asked to guard is worse than one that fails.
func Gate(baseline, candidate ParallelSnapshot, engines []string, tolerance float64) ([]GateResult, error) {
	if tolerance < 0 || tolerance >= 1 {
		return nil, fmt.Errorf("bench: gate tolerance %g outside [0, 1)", tolerance)
	}
	var out []GateResult
	for _, e := range engines {
		b, ok := bestMops(baseline, e)
		if !ok {
			return nil, fmt.Errorf("bench: engine %q not in baseline snapshot (has: %s)", e, strings.Join(snapshotEngines(baseline), ", "))
		}
		c, ok := bestMops(candidate, e)
		if !ok {
			return nil, fmt.Errorf("bench: engine %q not in candidate snapshot (has: %s)", e, strings.Join(snapshotEngines(candidate), ", "))
		}
		r := GateResult{Engine: e, BaselineMops: b, CandidateMops: c, Ratio: c / b}
		r.Pass = c >= (1-tolerance)*b
		out = append(out, r)
	}
	return out, nil
}

// snapshotEngines lists the distinct engines a snapshot measured, in
// first-appearance order.
func snapshotEngines(s ParallelSnapshot) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range s.Points {
		if !seen[p.Engine] {
			seen[p.Engine] = true
			out = append(out, p.Engine)
		}
	}
	return out
}

// LoadParallelSnapshot reads a ParallelSnapshot JSON file (as written by
// `sumbench -figure parallel -jsonout`).
func LoadParallelSnapshot(path string) (ParallelSnapshot, error) {
	var s ParallelSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if len(s.Points) == 0 {
		return s, fmt.Errorf("bench: %s contains no benchmark points", path)
	}
	return s, nil
}
