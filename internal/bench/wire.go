package bench

import (
	"fmt"
	"math"
	"time"

	"parsum/internal/engine"
	"parsum/internal/gen"
)

// WireBench measures the wire-partial codec: per engine, the input is
// split into parts combiner partials, and the encode (MarshalPartial) and
// decode+merge (UnmarshalPartial + Merge) paths are timed best-of-reps.
// Every cell is verified: the decoded-and-merged sum must be bit-identical
// to the engine's one-shot sum of the same input, or the cell reports
// FAIL. Engines whose accumulators cannot cross the wire are noted and
// skipped.
func WireBench(n int64, delta int, engines []string, parts, reps int) Table {
	if reps < 1 {
		reps = 1
	}
	if parts < 1 {
		parts = 1
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: delta, Seed: 23}).Slice()
	t := Table{
		Title:  fmt.Sprintf("T-WIRE — partial-sum codec (n=%d, δ=%d, %d partials, best of %d)", n, delta, parts, reps),
		XLabel: "engine",
		Series: []string{"bytes/partial", "encode", "enc MB/s", "decode+merge", "dec MB/s", "exact"},
	}
	per := len(xs) / parts
	for _, name := range engines {
		e := engine.MustGet(name)
		if !engine.CanMarshal(e) {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: accumulators cannot marshal wire partials; skipped", name))
			continue
		}
		// Build the combiner partials once; encode/decode are what's timed.
		accs := make([]engine.Accumulator, parts)
		for p := 0; p < parts; p++ {
			lo, hi := p*per, (p+1)*per
			if p == parts-1 {
				hi = len(xs)
			}
			accs[p] = e.NewAccumulator()
			accs[p].AddSlice(xs[lo:hi])
		}

		var blobs [][]byte
		var wireBytes int64
		encBest := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			var bs [][]byte
			var total int64
			d := timeIt(func() {
				bs = make([][]byte, parts)
				for p, acc := range accs {
					blob, err := engine.MarshalPartial(name, acc)
					if err != nil {
						panic(err)
					}
					bs[p] = blob
					total += int64(len(blob))
				}
			})
			if d < encBest {
				encBest = d
			}
			blobs, wireBytes = bs, total
		}

		decBest := time.Duration(1<<63 - 1)
		var got float64
		for r := 0; r < reps; r++ {
			var root engine.Accumulator
			d := timeIt(func() {
				root = e.NewAccumulator()
				for _, blob := range blobs {
					_, dec, err := engine.UnmarshalPartial(blob)
					if err != nil {
						panic(err)
					}
					root.Merge(dec)
				}
			})
			if d < decBest {
				decBest = d
			}
			got = root.Round()
		}

		want := e.Sum(xs)
		exact := "yes"
		if math.Float64bits(got) != math.Float64bits(want) &&
			!(math.IsNaN(got) && math.IsNaN(want)) {
			exact = "FAIL"
		}
		mbps := func(d time.Duration) string {
			if d <= 0 {
				return "inf"
			}
			return fmt.Sprintf("%.1f", float64(wireBytes)/d.Seconds()/1e6)
		}
		t.Rows = append(t.Rows, Row{
			X: name,
			Values: map[string]string{
				"bytes/partial": fmt.Sprintf("%d", wireBytes/int64(parts)),
				"encode":        secs(encBest),
				"enc MB/s":      mbps(encBest),
				"decode+merge":  secs(decBest),
				"dec MB/s":      mbps(decBest),
				"exact":         exact,
			},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("raw input is %d bytes; partials ship superaccumulator components, so wire volume is per-partial, not per-element", 8*len(xs)))
	return t
}
