package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func snap(points ...ParallelPoint) ParallelSnapshot {
	return ParallelSnapshot{N: 1000, Reps: 1, Points: points}
}

func pt(engine string, workers int, mops float64) ParallelPoint {
	return ParallelPoint{Engine: engine, Workers: workers, MopsPerS: mops}
}

func TestGatePassAndFail(t *testing.T) {
	baseline := snap(pt("dense", 1, 30), pt("dense", 4, 40), pt("sparse", 1, 10))

	// Within tolerance: 30 ≥ 0.7 × 40.
	res, err := Gate(baseline, snap(pt("dense", 1, 30)), []string{"dense"}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Pass {
		t.Fatalf("expected pass, got %+v", res)
	}

	// Regression beyond tolerance: 20 < 0.7 × 40.
	res, err = Gate(baseline, snap(pt("dense", 2, 20)), []string{"dense"}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Pass {
		t.Fatalf("expected fail, got %+v", res[0])
	}

	// Best-across-workers on the candidate side: a slow 1-worker cell is
	// fine when another cell holds the line.
	res, err = Gate(baseline, snap(pt("dense", 1, 5), pt("dense", 4, 39)), []string{"dense"}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Pass {
		t.Fatalf("expected best-across-workers pass, got %+v", res[0])
	}

	// Improvements obviously pass.
	res, _ = Gate(baseline, snap(pt("sparse", 1, 50)), []string{"sparse"}, 0.30)
	if !res[0].Pass || res[0].Ratio < 4.9 {
		t.Fatalf("improvement mishandled: %+v", res[0])
	}
}

func TestGateErrors(t *testing.T) {
	baseline := snap(pt("dense", 1, 30))
	if _, err := Gate(baseline, snap(pt("dense", 1, 30)), []string{"sparse"}, 0.3); err == nil {
		t.Error("missing baseline engine not rejected")
	}
	if _, err := Gate(baseline, snap(pt("sparse", 1, 30)), []string{"dense"}, 0.3); err == nil {
		t.Error("missing candidate engine not rejected")
	}
	if _, err := Gate(baseline, snap(pt("dense", 1, 30)), []string{"dense"}, 1.5); err == nil {
		t.Error("tolerance ≥ 1 not rejected")
	}
	if _, err := Gate(baseline, snap(pt("dense", 1, 30)), []string{"dense"}, -0.1); err == nil {
		t.Error("negative tolerance not rejected")
	}
}

func TestLoadParallelSnapshot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, err := snap(pt("dense", 1, 30)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadParallelSnapshot(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || s.Points[0].Engine != "dense" {
		t.Fatalf("round-trip lost data: %+v", s)
	}

	if _, err := LoadParallelSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file not rejected")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := LoadParallelSnapshot(bad); err == nil {
		t.Error("malformed JSON not rejected")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"points":[]}`), 0o644)
	if _, err := LoadParallelSnapshot(empty); err == nil {
		t.Error("empty snapshot not rejected")
	}
}

// TestLoadRecordedBaseline pins that the checked-in BENCH_parallel.json
// stays loadable and contains the dense engine the CI gate guards.
func TestLoadRecordedBaseline(t *testing.T) {
	s, err := LoadParallelSnapshot("../../BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bestMops(s, "dense"); !ok {
		t.Fatal("BENCH_parallel.json has no dense-engine points")
	}
}
