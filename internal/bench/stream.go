package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"time"

	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/stream"
)

// StreamPoint is one measured cell of the sliding-window benchmark: an
// engine at a slot count and bucket size, streaming n values through a
// stream.Window with an Advance (exact eviction) every bucket values and a
// rounded Sum after every advance.
type StreamPoint struct {
	Engine   string  `json:"engine"`
	Slots    int     `json:"slots"`
	Bucket   int     `json:"bucket"` // values per bucket; window spans slots×bucket values
	NsPerOp  int64   `json:"ns_per_op"`
	MopsPerS float64 `json:"mops_per_s"`
}

// StreamSnapshot is the recorded result of StreamBench, written by
// `sumbench -figure stream -jsonout` like the parallel and ingest figures.
type StreamSnapshot struct {
	N          int64         `json:"n"`
	Delta      int           `json:"delta"`
	Dist       string        `json:"dist"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Points     []StreamPoint `json:"points"`
}

// StreamBench measures exact sliding-window throughput for the named
// engines across slot counts × bucket sizes. Every cell is verified
// against the from-scratch oracle: because the stream is fed sequentially
// and evicted FIFO, the live window is a contiguous range of the input, so
// at sampled checkpoints (and at the end) the window's Sum must be
// bit-identical to the engine's one-shot sum of that range — a throughput
// number for a drifting window would be meaningless, so a mismatch panics.
// Engines must be registered and Invertible (StreamBench panics otherwise,
// mirroring IngestBench's fail-loudly-before-timing policy).
func StreamBench(n int64, delta int, slotCounts, bucketSizes []int, engines []string, reps int) StreamSnapshot {
	if reps < 1 {
		reps = 1
	}
	for _, s := range slotCounts {
		if s < 1 {
			panic(fmt.Sprintf("bench: stream slot count %d < 1", s))
		}
	}
	for _, b := range bucketSizes {
		if b < 1 {
			panic(fmt.Sprintf("bench: stream bucket size %d < 1", b))
		}
	}
	snap := StreamSnapshot{
		N:          n,
		Delta:      delta,
		Dist:       gen.Random.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: delta, Seed: 31}).Slice()
	for _, name := range engines {
		e := engine.MustGet(name)
		if !e.Caps().Invertible {
			panic(fmt.Sprintf("bench: engine %q cannot back a sliding window (not Invertible)", name))
		}
		for _, slots := range slotCounts {
			for _, bucket := range bucketSizes {
				best := time.Duration(1<<63 - 1)
				for r := 0; r < reps; r++ {
					if d := streamOnce(xs, e, slots, bucket); d < best {
						best = d
					}
				}
				snap.Points = append(snap.Points, StreamPoint{
					Engine:   name,
					Slots:    slots,
					Bucket:   bucket,
					NsPerOp:  best.Nanoseconds(),
					MopsPerS: float64(n) / best.Seconds() / 1e6,
				})
			}
		}
	}
	return snap
}

// streamOnce times one full pass of xs through a sliding window: Add every
// value, Advance every bucket values, Sum after every advance. The oracle
// runs at ~8 checkpoints; it is part of the pass and identical in every
// cell, so it cancels out of cross-cell comparisons. The stream is fed
// sequentially and evicted FIFO, so after a advances the live window is
// exactly xs[max(0, a−slots+1)·bucket : i+1].
func streamOnce(xs []float64, e engine.Engine, slots, bucket int) time.Duration {
	w, err := stream.New(stream.Options{Engine: e.Name(), Slots: slots})
	if err != nil {
		panic("bench: " + err.Error())
	}
	checkEvery := len(xs)/8 + 1
	start := time.Now()
	advances, inBucket := 0, 0
	var sink float64
	for i, x := range xs {
		w.Add(x)
		inBucket++
		if inBucket == bucket {
			inBucket = 0
			w.Advance()
			advances++
			sink += w.Sum()
		}
		if (i+1)%checkEvery == 0 || i == len(xs)-1 {
			oldest := 0
			if kept := slots - 1; advances > kept {
				oldest = (advances - kept) * bucket
			}
			want := e.Sum(xs[oldest : i+1])
			if got := w.Sum(); math.Float64bits(got) != math.Float64bits(want) {
				panic(fmt.Sprintf("bench: stream %s slots=%d bucket=%d at %d: window %g != scratch %g",
					e.Name(), slots, bucket, i, got, want))
			}
		}
	}
	_ = sink
	return time.Since(start)
}

// Table renders the snapshot as one experiment table.
func (s StreamSnapshot) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("T-STREAM — exact sliding-window aggregation (n=%d, δ=%d, GOMAXPROCS=%d, best of %d)", s.N, s.Delta, s.GoMaxProcs, s.Reps),
		XLabel: "engine/slots/bucket",
		Series: []string{"time", "Mops/s"},
	}
	for _, p := range s.Points {
		t.Rows = append(t.Rows, Row{
			X: fmt.Sprintf("%s/%d/%d", p.Engine, p.Slots, p.Bucket),
			Values: map[string]string{
				"time":   secs(time.Duration(p.NsPerOp)),
				"Mops/s": fmt.Sprintf("%.1f", p.MopsPerS),
			},
		})
	}
	t.Notes = append(t.Notes,
		"one Advance (exact eviction) + rounded Sum per bucket; every cell verified bit-identical to re-summing the live window from scratch")
	return t
}

// JSON renders the snapshot as indented JSON.
func (s StreamSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
