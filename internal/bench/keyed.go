package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/keyed"
)

// KeyedPoint is one measured cell of the keyed-aggregation benchmark: an
// engine ingesting a fixed value stream spread round-robin over a key
// population, through a keyed store with a given partition count.
type KeyedPoint struct {
	Engine     string  `json:"engine"`
	Partitions int     `json:"partitions"`
	Keys       int     `json:"keys"`
	NsPerOp    int64   `json:"ns_per_op"` // full ingestion + snapshot
	MopsPerS   float64 `json:"mops_per_s"`
	Speedup    float64 `json:"speedup_vs_base"` // vs the same engine/keys at 1 partition
}

// KeyedSnapshot is the recorded result of KeyedBench, written by
// `sumbench -figure keyed -jsonout` the way IngestSnapshot is for the
// ingest figure.
type KeyedSnapshot struct {
	N          int64        `json:"n"`
	Delta      int          `json:"delta"`
	Dist       string       `json:"dist"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Writers    int          `json:"writers"`
	Reps       int          `json:"reps"`
	Points     []KeyedPoint `json:"points"`
}

// keyedBenchChunk is how many values ride in one keyed batch — the
// grouped-flush shape the async front-end hands AddKeyedBatches.
const keyedBenchChunk = 256

// KeyedBench measures keyed-store ingestion throughput for the named
// engines across partition counts × key populations: GOMAXPROCS writer
// goroutines pull pre-grouped keyed batches off a shared cursor and
// AddKeyedBatches them into a fresh store, then one Snapshot closes the
// cell. Every cell's per-key sums are checked bit-identical against the
// engine's sequential sum of that key's multiset — a throughput number
// for wrong bits would be meaningless — and a mismatch panics. Engines
// must satisfy keyed.New's capability gate (Streaming,
// DeterministicParallel, wire-capable); KeyedBench panics otherwise,
// mirroring IngestBench's fail-loudly-before-timing policy.
func KeyedBench(n int64, delta int, partitionList, keyCounts []int, engines []string, reps int) KeyedSnapshot {
	if reps < 1 {
		reps = 1
	}
	for _, p := range partitionList {
		if p < 1 {
			panic(fmt.Sprintf("bench: keyed partition count %d < 1", p))
		}
	}
	for _, k := range keyCounts {
		if k < 1 {
			panic(fmt.Sprintf("bench: keyed key count %d < 1", k))
		}
	}
	writers := runtime.GOMAXPROCS(0)
	snap := KeyedSnapshot{
		N:          n,
		Delta:      delta,
		Dist:       gen.Random.String(),
		GoMaxProcs: writers,
		Writers:    writers,
		Reps:       reps,
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: delta, Seed: 29}).Slice()
	for _, name := range engines {
		eng := engine.MustGet(name)
		var points []KeyedPoint
		for _, nkeys := range keyCounts {
			// Deal values round-robin to keys, then chunk each key's run
			// into keyed batches — and derive the per-key oracle from the
			// same dealt slices.
			perKey := make([][]float64, nkeys)
			for i, x := range xs {
				k := i % nkeys
				perKey[k] = append(perKey[k], x)
			}
			keys := make([]string, nkeys)
			want := make([]float64, nkeys)
			var work []keyed.Batch
			for k, vs := range perKey {
				keys[k] = fmt.Sprintf("key-%06d", k)
				want[k] = eng.Sum(vs)
				for lo := 0; lo < len(vs); lo += keyedBenchChunk {
					hi := min(lo+keyedBenchChunk, len(vs))
					work = append(work, keyed.Batch{Key: keys[k], Values: vs[lo:hi]})
				}
			}
			for _, parts := range partitionList {
				best := time.Duration(1<<63 - 1)
				for r := 0; r < reps; r++ {
					d := keyedOnce(name, parts, writers, work, keys, want)
					if d < best {
						best = d
					}
				}
				points = append(points, KeyedPoint{
					Engine:     name,
					Partitions: parts,
					Keys:       nkeys,
					NsPerOp:    best.Nanoseconds(),
					MopsPerS:   float64(n) / best.Seconds() / 1e6,
				})
			}
		}
		// Speedup baseline: per engine × key count, the lowest measured
		// partition count.
		for group := 0; group < len(points); group += len(partitionList) {
			g := points[group : group+len(partitionList)]
			base, baseP := int64(0), 0
			for _, p := range g {
				if base == 0 || p.Partitions < baseP {
					base, baseP = p.NsPerOp, p.Partitions
				}
			}
			for i := range g {
				g[i].Speedup = float64(base) / float64(g[i].NsPerOp)
			}
		}
		snap.Points = append(snap.Points, points...)
	}
	return snap
}

// keyedOnce times one full keyed ingestion: writers pull batches off a
// shared cursor, group a small run of them, and AddKeyedBatches the
// group — then a Snapshot folds every key and the result is verified
// bit-identical to the per-key oracle.
func keyedOnce(engineName string, parts, writers int, work []keyed.Batch, keys []string, want []float64) time.Duration {
	s, err := keyed.New(keyed.Options{Engine: engineName, Partitions: parts})
	if err != nil {
		panic("bench: " + err.Error())
	}
	const group = 8 // batches grouped per AddKeyedBatches call
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(group)) - group
				if lo >= len(work) {
					return
				}
				hi := min(lo+group, len(work))
				s.AddKeyedBatches(work[lo:hi])
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	d := time.Since(start)
	if len(snap) != len(keys) {
		panic(fmt.Sprintf("bench: keyed %s parts=%d: %d keys served, want %d",
			engineName, parts, len(snap), len(keys)))
	}
	for k, key := range keys {
		got, ok := s.Sum(key)
		if !ok || math.Float64bits(got) != math.Float64bits(want[k]) {
			panic(fmt.Sprintf("bench: keyed %s parts=%d key=%s: sum %g != sequential %g",
				engineName, parts, key, got, want[k]))
		}
	}
	return d
}

// Table renders the snapshot as one experiment table.
func (s KeyedSnapshot) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("T-KEYED — multi-key exact aggregation (n=%d, δ=%d, writers=%d, best of %d)", s.N, s.Delta, s.Writers, s.Reps),
		XLabel: "engine/partitions/keys",
		Series: []string{"time", "Mops/s", "speedup"},
	}
	for _, p := range s.Points {
		t.Rows = append(t.Rows, Row{
			X: fmt.Sprintf("%s/%d/%d", p.Engine, p.Partitions, p.Keys),
			Values: map[string]string{
				"time":    secs(time.Duration(p.NsPerOp)),
				"Mops/s":  fmt.Sprintf("%.1f", p.MopsPerS),
				"speedup": fmt.Sprintf("%.2fx", p.Speedup),
			},
		})
	}
	t.Notes = append(t.Notes,
		"values dealt round-robin over the key population, ingested as grouped keyed batches",
		"every cell's per-key sums verified bit-identical to the sequential engine before timing is reported")
	return t
}

// JSON renders the snapshot as indented JSON.
func (s KeyedSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
