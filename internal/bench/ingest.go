package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsum/internal/batch"
	"parsum/internal/engine"
	"parsum/internal/gen"
	"parsum/internal/shard"
)

// IngestPoint is one measured cell of the concurrent-ingestion benchmark:
// an engine at a writer count and batch size, ingesting through a Sharded
// accumulator with one shard per writer. The async columns measure the
// same workload submitted through the internal/batch front-end (bounded
// queue, size-or-deadline flush, writers retrying on rejection) instead
// of calling AddBatch directly.
type IngestPoint struct {
	Engine       string  `json:"engine"`
	Writers      int     `json:"writers"`
	Batch        int     `json:"batch"`
	NsPerOp      int64   `json:"ns_per_op"` // full ingestion + final Sum
	MopsPerS     float64 `json:"mops_per_s"`
	Speedup      float64 `json:"speedup_vs_base"` // vs the same engine/batch at its lowest writer count
	AsyncNsPerOp int64   `json:"async_ns_per_op"`
	AsyncMops    float64 `json:"async_mops_per_s"`
	AsyncRatio   float64 `json:"async_vs_sync"` // AsyncMops / MopsPerS
}

// IngestSnapshot is the recorded result of IngestBench, written by
// `sumbench -figure ingest -jsonout` the way ParallelSnapshot is for the
// parallel figure.
type IngestSnapshot struct {
	N          int64         `json:"n"`
	Delta      int           `json:"delta"`
	Dist       string        `json:"dist"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Points     []IngestPoint `json:"points"`
}

// IngestBench measures sharded concurrent ingestion throughput for the
// named engines across writer counts × batch sizes: writers pull batches
// off a shared cursor and AddBatch them into a shard.Sharded (one shard
// per writer), then one Sum() closes the cell. Every cell's result is
// checked bit-identical against the engine's sequential one-shot sum —
// a throughput number for a wrong sum would be meaningless — and a
// mismatch panics. Engines must be registered and capable of backing a
// Sharded (Streaming + DeterministicParallel); IngestBench panics
// otherwise, mirroring ParallelBench's fail-loudly-before-timing policy.
func IngestBench(n int64, delta int, writerList, batchSizes []int, engines []string, reps int) IngestSnapshot {
	if reps < 1 {
		reps = 1
	}
	for _, w := range writerList {
		if w < 1 {
			panic(fmt.Sprintf("bench: ingest writer count %d < 1", w))
		}
	}
	for _, b := range batchSizes {
		if b < 1 {
			panic(fmt.Sprintf("bench: ingest batch size %d < 1", b))
		}
	}
	snap := IngestSnapshot{
		N:          n,
		Delta:      delta,
		Dist:       gen.Random.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: delta, Seed: 23}).Slice()
	for _, name := range engines {
		want := engine.MustGet(name).Sum(xs)
		var points []IngestPoint
		for _, batch := range batchSizes {
			for _, w := range writerList {
				best := time.Duration(1<<63 - 1)
				bestAsync := best
				for r := 0; r < reps; r++ {
					d, got := ingestOnce(xs, name, w, batch)
					if math.Float64bits(got) != math.Float64bits(want) {
						panic(fmt.Sprintf("bench: ingest %s writers=%d batch=%d: sum %g != sequential %g",
							name, w, batch, got, want))
					}
					if d < best {
						best = d
					}
					d, got = ingestAsyncOnce(xs, name, w, batch)
					if math.Float64bits(got) != math.Float64bits(want) {
						panic(fmt.Sprintf("bench: async ingest %s writers=%d batch=%d: sum %g != sequential %g",
							name, w, batch, got, want))
					}
					if d < bestAsync {
						bestAsync = d
					}
				}
				syncMops := float64(n) / best.Seconds() / 1e6
				asyncMops := float64(n) / bestAsync.Seconds() / 1e6
				points = append(points, IngestPoint{
					Engine:       name,
					Writers:      w,
					Batch:        batch,
					NsPerOp:      best.Nanoseconds(),
					MopsPerS:     syncMops,
					AsyncNsPerOp: bestAsync.Nanoseconds(),
					AsyncMops:    asyncMops,
					AsyncRatio:   asyncMops / syncMops,
				})
			}
		}
		// Speedup baseline: per engine × batch, the lowest measured writer
		// count (matching ParallelBench's per-engine convention).
		for batchStart := 0; batchStart < len(points); batchStart += len(writerList) {
			group := points[batchStart : batchStart+len(writerList)]
			base, baseW := int64(0), 0
			for _, p := range group {
				if base == 0 || p.Writers < baseW {
					base, baseW = p.NsPerOp, p.Writers
				}
			}
			for i := range group {
				group[i].Speedup = float64(base) / float64(group[i].NsPerOp)
			}
		}
		snap.Points = append(snap.Points, points...)
	}
	return snap
}

// ingestOnce times one full ingestion: w writer goroutines pull
// batch-sized ranges off a shared atomic cursor and AddBatch them into a
// fresh Sharded with one shard per writer, then Sum() folds and rounds.
func ingestOnce(xs []float64, engineName string, writers, batch int) (time.Duration, float64) {
	s, err := shard.New(shard.Options{Engine: engineName, Shards: writers})
	if err != nil {
		panic("bench: " + err.Error())
	}
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wr := s.Writer()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= len(xs) {
					return
				}
				hi := min(lo+batch, len(xs))
				wr.AddBatch(xs[lo:hi])
			}
		}()
	}
	wg.Wait()
	got := s.Sum()
	return time.Since(start), got
}

// asyncPipeline is how many requests each async "writer" keeps in
// flight. Add is group commit — it returns only after the flush carrying
// its batch — so a writer submitting one batch at a time would be
// latency-bound on the flush deadline, which is not what a loaded
// service sees: concurrent HTTP clients keep many requests pending. Each
// writer therefore runs asyncPipeline submitter goroutines, the
// in-process analogue of that concurrency.
const asyncPipeline = 16

// ingestAsyncOnce times the same workload as ingestOnce submitted
// through the batch front-end: writers×asyncPipeline submitters enqueue
// batch-sized ranges into a bounded-queue Batcher (one flusher per
// writer so flush work can use the same parallelism the sync path gets)
// and spin-retry on rejection — the in-process analogue of the HTTP
// client's 429/backoff loop. The final Sum closes the cell after Close
// drains the queue.
func ingestAsyncOnce(xs []float64, engineName string, writers, batchSize int) (time.Duration, float64) {
	s, err := shard.New(shard.Options{Engine: engineName, Shards: writers})
	if err != nil {
		panic("bench: " + err.Error())
	}
	submitters := writers * asyncPipeline
	// Size the flush trigger below the total in-flight value count so
	// flushes fire on size while the pipeline stays full; the deadline
	// only catches the final partial group.
	maxBatch := submitters * batchSize / 2
	if maxBatch < batchSize {
		maxBatch = batchSize
	}
	if maxBatch > 1<<14 {
		maxBatch = 1 << 14
	}
	b := batch.New(s, batch.Options{
		QueueLen: 4 * submitters,
		MaxBatch: maxBatch,
		MaxDelay: 100 * time.Microsecond,
		Flushers: writers,
	})
	ctx := context.Background()
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(batchSize))) - batchSize
				if lo >= len(xs) {
					return
				}
				hi := min(lo+batchSize, len(xs))
				for {
					err := b.Add(ctx, xs[lo:hi])
					if err == nil {
						break
					}
					if !errors.Is(err, batch.ErrQueueFull) {
						panic("bench: " + err.Error())
					}
					// Park instead of spinning: on few cores a busy
					// retry loop starves the flusher it is waiting on.
					time.Sleep(20 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
	got := s.Sum()
	return time.Since(start), got
}

// Table renders the snapshot as one experiment table.
func (s IngestSnapshot) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("T-INGEST — sharded concurrent ingestion (n=%d, δ=%d, GOMAXPROCS=%d, best of %d)", s.N, s.Delta, s.GoMaxProcs, s.Reps),
		XLabel: "engine/writers/batch",
		Series: []string{"time", "Mops/s", "speedup", "async Mops/s", "async/sync"},
	}
	for _, p := range s.Points {
		t.Rows = append(t.Rows, Row{
			X: fmt.Sprintf("%s/%d/%d", p.Engine, p.Writers, p.Batch),
			Values: map[string]string{
				"time":         secs(time.Duration(p.NsPerOp)),
				"Mops/s":       fmt.Sprintf("%.1f", p.MopsPerS),
				"speedup":      fmt.Sprintf("%.2fx", p.Speedup),
				"async Mops/s": fmt.Sprintf("%.1f", p.AsyncMops),
				"async/sync":   fmt.Sprintf("%.2fx", p.AsyncRatio),
			},
		})
	}
	t.Notes = append(t.Notes,
		"one shard per writer; every cell's sum verified bit-identical to the sequential engine",
		"async = same workload through the internal/batch bounded-queue front-end (writers spin-retry on rejection)")
	return t
}

// JSON renders the snapshot as indented JSON.
func (s IngestSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
