package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"parsum/internal/core"
	"parsum/internal/engine"
	"parsum/internal/gen"
)

// ParallelPoint is one measured cell of the shared-memory parallel
// benchmark: an engine at a worker count.
type ParallelPoint struct {
	Engine   string  `json:"engine"`
	Workers  int     `json:"workers"`
	Chunk    int     `json:"chunk"` // effective leaf chunk (auto-tuned when Config leaves it 0)
	NsPerOp  int64   `json:"ns_per_op"`
	MopsPerS float64 `json:"mops_per_s"`
	Speedup  float64 `json:"speedup_vs_base"` // vs the same engine at its lowest measured worker count
}

// ParallelSnapshot is the recorded result of ParallelBench — the perf
// trajectory file BENCH_parallel.json that future optimisation PRs
// compare against.
type ParallelSnapshot struct {
	N          int64  `json:"n"`
	Delta      int    `json:"delta"`
	Dist       string `json:"dist"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU is runtime.NumCPU() on the measuring machine. GOMAXPROCS can
	// be set higher than the hardware offers, so a snapshot records both:
	// speedup columns measured with more workers than CPUs say nothing
	// about the algorithm's scalability (zero in snapshots predating the
	// field).
	NumCPU int             `json:"num_cpu,omitempty"`
	Reps   int             `json:"reps"` // best-of-reps wall time per cell
	Points []ParallelPoint `json:"points"`
}

// SpeedupMeaningful reports whether the snapshot's speedup columns reflect
// real hardware parallelism: false when the machine had a single CPU (or
// the snapshot predates NumCPU recording), where every multi-worker cell
// is just oversubscription overhead.
func (s ParallelSnapshot) SpeedupMeaningful() bool { return s.NumCPU > 1 }

// ParallelBench measures core.SumParallel for the named engines across
// worker counts on one generated dataset, best-of-reps per cell. Engine
// names must be registered; the engines' capability flags decide whether
// a cell truly runs in parallel or falls back to the sequential one-shot
// (the fallback is still measured — it is what a caller would get).
func ParallelBench(n int64, delta int, workerList []int, engines []string, reps int) ParallelSnapshot {
	if reps < 1 {
		reps = 1
	}
	snap := ParallelSnapshot{
		N:          n,
		Delta:      delta,
		Dist:       gen.Random.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: delta, Seed: 21}).Slice()
	for _, name := range engines {
		engine.MustGet(name) // fail loudly before timing anything
		points := make([]ParallelPoint, 0, len(workerList))
		for _, w := range workerList {
			opt := core.Options{Engine: name, Workers: w}
			best := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				d := timeIt(func() { core.SumParallel(xs, opt) })
				if d < best {
					best = d
				}
			}
			points = append(points, ParallelPoint{
				Engine:   name,
				Workers:  w,
				Chunk:    core.AutoChunk(len(xs), w),
				NsPerOp:  best.Nanoseconds(),
				MopsPerS: float64(n) / best.Seconds() / 1e6,
			})
		}
		// One stable baseline per engine: the 1-worker cell when measured,
		// else the lowest measured worker count.
		base, baseW := int64(0), 0
		for _, p := range points {
			if base == 0 || p.Workers < baseW {
				base, baseW = p.NsPerOp, p.Workers
			}
		}
		for i := range points {
			points[i].Speedup = float64(base) / float64(points[i].NsPerOp)
		}
		snap.Points = append(snap.Points, points...)
	}
	return snap
}

// Table renders the snapshot as one experiment table per engine.
func (s ParallelSnapshot) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("T-PAR — SumParallel engines (n=%d, δ=%d, GOMAXPROCS=%d, best of %d)", s.N, s.Delta, s.GoMaxProcs, s.Reps),
		XLabel: "engine/workers",
		Series: []string{"chunk", "time", "Mops/s", "speedup"},
	}
	for _, p := range s.Points {
		t.Rows = append(t.Rows, Row{
			X: fmt.Sprintf("%s/%d", p.Engine, p.Workers),
			Values: map[string]string{
				"chunk":   fmt.Sprintf("%d", p.Chunk),
				"time":    secs(time.Duration(p.NsPerOp)),
				"Mops/s":  fmt.Sprintf("%.1f", p.MopsPerS),
				"speedup": fmt.Sprintf("%.2fx", p.Speedup),
			},
		})
	}
	t.Notes = append(t.Notes,
		"engines without deterministic streaming merges fall back to their sequential one-shot Sum")
	if !s.SpeedupMeaningful() {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"measured with NumCPU=%d: speedup columns reflect oversubscription, not scalability", s.NumCPU))
	} else {
		maxW := 0
		for _, p := range s.Points {
			if p.Workers > maxW {
				maxW = p.Workers
			}
		}
		if maxW > s.NumCPU {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"worker counts above NumCPU=%d are oversubscribed; their speedup cells are not scalability evidence", s.NumCPU))
		}
	}
	return t
}

// JSON renders the snapshot as indented JSON for BENCH_parallel.json.
func (s ParallelSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
