// Package bench regenerates the paper's figures and this reproduction's
// theory-validation tables as data series (see DESIGN.md §5 for the
// experiment index). Each function returns Tables; cmd/sumbench formats
// them for the terminal and EXPERIMENTS.md records a reference run.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"parsum/internal/accum"
	"parsum/internal/baseline"
	"parsum/internal/condition"
	"parsum/internal/core"
	"parsum/internal/engine"
	"parsum/internal/extmem"
	"parsum/internal/gen"
	"parsum/internal/mapreduce"
	"parsum/internal/pram"
)

// Table is one rendered experiment: rows of an x value and named series.
type Table struct {
	Title  string
	XLabel string
	Series []string // column order
	Rows   []Row
	Notes  []string
}

// Row is one x position of a table.
type Row struct {
	X      string
	Values map[string]string
}

// Format renders a table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Series)+1)
	widths[0] = len(t.XLabel)
	for i, s := range t.Series {
		widths[i+1] = len(s)
	}
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
		for i, s := range t.Series {
			if v := r.Values[s]; len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString(pad(t.XLabel, widths[0]))
	for i, s := range t.Series {
		b.WriteString("  " + pad(s, widths[i+1]))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(pad(r.X, widths[0]))
		for i, s := range t.Series {
			b.WriteString("  " + pad(r.Values[s], widths[i+1]))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// Config bundles the common experiment knobs with paper-like defaults.
type Config struct {
	Workers   int // modeled cluster size (paper: 32)
	SplitSize int // elements per split (paper: 128MB blocks = 16M doubles)
	Seed      uint64
	Verify    bool // cross-check algorithm outputs against each other
}

// Defaults returns the configuration used by EXPERIMENTS.md.
func Defaults() Config {
	return Config{Workers: 32, SplitSize: 1 << 20, Seed: 1, Verify: true}
}

const (
	serIFast  = "iFastSum"
	serSmall  = "MR-small"
	serSparse = "MR-sparse"
)

// figureSeries measures the paper's three algorithms on one dataset and
// returns their times: sequential iFastSum wall time and the modeled
// cluster time of the two MapReduce variants.
func figureSeries(xs []float64, scratch []float64, cfg Config, workers int) (map[string]string, []string) {
	var notes []string
	copy(scratch, xs)
	var vIF float64
	dIF := timeIt(func() { vIF = baseline.IFastSumInPlace(scratch) })

	rSmall := mapreduce.Run(xs, mapreduce.Config{
		Workers: workers, SplitSize: cfg.SplitSize, Acc: mapreduce.SmallAcc, Seed: cfg.Seed,
	})
	rSparse := mapreduce.Run(xs, mapreduce.Config{
		Workers: workers, SplitSize: cfg.SplitSize, Acc: mapreduce.SparseAcc, Seed: cfg.Seed,
	})
	if cfg.Verify {
		if vIF != rSmall.Sum || vIF != rSparse.Sum {
			notes = append(notes, fmt.Sprintf("MISMATCH: iFastSum=%g small=%g sparse=%g", vIF, rSmall.Sum, rSparse.Sum))
		}
	}
	return map[string]string{
		serIFast:  secs(dIF),
		serSmall:  secs(rSmall.Stats.ClusterTime()),
		serSparse: secs(rSparse.Stats.ClusterTime()),
	}, notes
}

// Figure1 reproduces the paper's Figure 1: total running time as the input
// size grows, at fixed δ, one table per distribution.
func Figure1(sizes []int64, delta int, cfg Config) []Table {
	var out []Table
	maxN := int64(0)
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	scratch := make([]float64, maxN)
	for _, d := range gen.AllDists {
		t := Table{
			Title:  fmt.Sprintf("Figure 1 — %s (δ=%d, %d virtual workers)", d, delta, cfg.Workers),
			XLabel: "n",
			Series: []string{serIFast, serSmall, serSparse},
		}
		for _, n := range sizes {
			xs := gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: cfg.Seed}).Slice()
			vals, notes := figureSeries(xs, scratch[:n], cfg, cfg.Workers)
			t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", n), Values: vals})
			t.Notes = append(t.Notes, notes...)
		}
		out = append(out, t)
	}
	return out
}

// Figure2 reproduces the paper's Figure 2: running time as δ grows at a
// fixed input size.
func Figure2(n int64, deltas []int, cfg Config) []Table {
	var out []Table
	scratch := make([]float64, n)
	for _, d := range gen.AllDists {
		t := Table{
			Title:  fmt.Sprintf("Figure 2 — %s (n=%d, %d virtual workers)", d, n, cfg.Workers),
			XLabel: "delta",
			Series: []string{serIFast, serSmall, serSparse},
		}
		for _, delta := range deltas {
			xs := gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: cfg.Seed}).Slice()
			vals, notes := figureSeries(xs, scratch, cfg, cfg.Workers)
			t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", delta), Values: vals})
			t.Notes = append(t.Notes, notes...)
		}
		out = append(out, t)
	}
	return out
}

// Figure3 reproduces the paper's Figure 3: running time as the cluster
// size grows; iFastSum is the flat single-core reference.
func Figure3(n int64, delta int, workerList []int, cfg Config) []Table {
	var out []Table
	scratch := make([]float64, n)
	for _, d := range gen.AllDists {
		t := Table{
			Title:  fmt.Sprintf("Figure 3 — %s (n=%d, δ=%d)", d, n, delta),
			XLabel: "cores",
			Series: []string{serIFast, serSmall, serSparse},
		}
		xs := gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: cfg.Seed}).Slice()
		// iFastSum is single-core: measure once, repeat down the column.
		copy(scratch, xs)
		dIF := timeIt(func() { baseline.IFastSumInPlace(scratch) })
		for _, w := range workerList {
			rSmall := mapreduce.Run(xs, mapreduce.Config{
				Workers: w, SplitSize: cfg.SplitSize, Acc: mapreduce.SmallAcc, Seed: cfg.Seed,
			})
			rSparse := mapreduce.Run(xs, mapreduce.Config{
				Workers: w, SplitSize: cfg.SplitSize, Acc: mapreduce.SparseAcc, Seed: cfg.Seed,
			})
			t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", w), Values: map[string]string{
				serIFast:  secs(dIF),
				serSmall:  secs(rSmall.Stats.ClusterTime()),
				serSparse: secs(rSparse.Stats.ClusterTime()),
			}})
		}
		out = append(out, t)
	}
	return out
}

// PRAMTable validates Theorem 2's shape: steps grow logarithmically (with
// the carry-free constant 3 per level) and work linearly in n·K, against
// the carry-propagating ablation.
func PRAMTable(ns []int, width uint) Table {
	t := Table{
		Title:  fmt.Sprintf("T-PRAM — summation-tree steps and work (W=%d)", width),
		XLabel: "n",
		Series: []string{"cf-steps", "3·log2(n)+1", "cf-work", "cp-steps", "cp/cf-steps"},
	}
	for _, n := range ns {
		xs := gen.New(gen.Config{Dist: gen.Random, N: int64(n), Delta: 1500, Seed: 2}).Slice()
		cf, err := pram.TreeSum(xs, width, pram.EREW)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		cp, err := pram.TreeSumCarryPropagate(xs, width, pram.EREW)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", n), Values: map[string]string{
			"cf-steps":    fmt.Sprintf("%d", cf.Steps),
			"3·log2(n)+1": fmt.Sprintf("%d", 3*cf.Levels+1),
			"cf-work":     fmt.Sprintf("%d", cf.Work),
			"cp-steps":    fmt.Sprintf("%d", cp.Steps),
			"cp/cf-steps": fmt.Sprintf("%.1fx", float64(cp.Steps)/float64(cf.Steps)),
		}})
	}
	t.Notes = append(t.Notes,
		"cf = carry-free Lemma 1 merge (3 EREW steps/level); cp = carry-propagating merge (1+K steps/level)")
	return t
}

// CondTable validates Theorem 4's shape: the adaptive algorithm's rounds
// and per-element work grow with log C(X) while iFastSum's distillation
// passes grow alongside.
func CondTable(n int, gaps []int) Table {
	t := Table{
		Title:  fmt.Sprintf("T-COND — condition-number-sensitive work (n=%d)", n),
		XLabel: "gap",
		Series: []string{"log2C", "rounds", "finalR", "work/n", "iFast-passes"},
	}
	for _, gap := range gaps {
		xs := cancellationData(n, gap, 11)
		logC := condition.Log2(xs)
		// Small leaf chunks so the truncated summation tree is exercised
		// (with the default 64k chunk a 20k-element input is a single
		// exact leaf and no round ever truncates).
		_, st := core.SumAdaptive(xs, core.Options{ChunkSize: 64})
		_, passes := baseline.IFastSumStats(xs)
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", gap), Values: map[string]string{
			"log2C":        fmt.Sprintf("%.0f", logC),
			"rounds":       fmt.Sprintf("%d", st.Rounds),
			"finalR":       fmt.Sprintf("%d", st.FinalR),
			"work/n":       fmt.Sprintf("%.2f", float64(st.Work)/float64(len(xs))),
			"iFast-passes": fmt.Sprintf("%d", passes),
		}})
	}
	t.Notes = append(t.Notes,
		"gap = exponent distance between the cancelling mass and the surviving residual; log2C ≈ gap")
	return t
}

// cancellationData builds a dataset of exactly cancelling pairs whose
// exponents densely cover a band of width `gap` sitting above a unit
// residual, giving C(X) ≈ 2^gap with σ ≈ gap/W active components — so the
// truncation bound the adaptive algorithm needs grows with gap, which is
// what makes the instance genuinely condition-hard (a narrow band of huge
// values would have large C(X) but tiny σ and be easy).
func cancellationData(n, gap int, seed uint64) []float64 {
	delta := gap
	if delta < 1 {
		delta = 1
	}
	src := gen.New(gen.Config{Dist: gen.CondOne, N: int64(n), Delta: delta, Seed: seed})
	lo, _ := src.ExponentRange()
	shift := 8 - lo // place the band at [2^8, 2^(8+gap)), above the residual
	xs := make([]float64, 0, 2*n+1)
	for i := int64(0); i < int64(n); i++ {
		v := math.Ldexp(src.At(i), shift)
		xs = append(xs, v, -v)
	}
	xs = append(xs, 1)
	// Deterministic scatter so pairs are not adjacent.
	sort.SliceStable(xs, func(i, j int) bool {
		return splitmix(uint64(i)*0x9E3779B97F4A7C15) < splitmix(uint64(j)*0x9E3779B97F4A7C15)
	})
	return xs
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// EMTable validates Theorems 5/6: measured I/Os against the scan(n) and
// sort(n) formulas.
func EMTable(ns []int64, b, m int) Table {
	t := Table{
		Title:  fmt.Sprintf("T-EM — external-memory I/Os (B=%d, M=%d records)", b, m),
		XLabel: "n",
		Series: []string{"scan-IOs", "scan(n)", "sort-IOs", "sort(3n)", "sort/scan"},
	}
	for _, n := range ns {
		xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: 800, Seed: 3}).Slice()
		m1 := extmem.NewModel(b, m)
		if _, err := extmem.ScanSum(m1, extmem.FromSlice(m1, xs), 0); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("scan n=%d: %v", n, err))
			continue
		}
		m2 := extmem.NewModel(b, m)
		if _, err := extmem.SortSum(m2, extmem.FromSlice(m2, xs), 0); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("sort n=%d: %v", n, err))
			continue
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", n), Values: map[string]string{
			"scan-IOs":  fmt.Sprintf("%d", m1.IOs()),
			"scan(n)":   fmt.Sprintf("%d", m1.ScanIOs(n)),
			"sort-IOs":  fmt.Sprintf("%d", m2.IOs()),
			"sort(3n)":  fmt.Sprintf("%d", m2.SortIOs(3*n)),
			"sort/scan": fmt.Sprintf("%.1fx", float64(m2.IOs())/float64(m1.IOs())),
		}})
	}
	return t
}

// CarryTable is the Lemma 1 ablation across digit widths: the carry-free
// merge's PRAM depth is a constant 3 per level while the carry chain's is
// 1+K, growing as the radix shrinks.
func CarryTable(widths []uint, n int) Table {
	t := Table{
		Title:  fmt.Sprintf("T-ABL1 — carry-free vs carry-propagating merge depth (n=%d)", n),
		XLabel: "W",
		Series: []string{"K", "cf-steps/level", "cp-steps/level"},
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: int64(n), Delta: 1500, Seed: 4}).Slice()
	for _, w := range widths {
		cf, err := pram.TreeSum(xs, w, pram.EREW)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		cp, _ := pram.TreeSumCarryPropagate(xs, w, pram.EREW)
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", w), Values: map[string]string{
			"K":              fmt.Sprintf("%d", cf.K),
			"cf-steps/level": "3",
			"cp-steps/level": fmt.Sprintf("%d", 1+cp.K),
		}})
	}
	return t
}

// RadixTable is the design-choice ablation over the digit width W:
// sequential accumulate throughput and the components per value.
func RadixTable(widths []uint, n int64) Table {
	t := Table{
		Title:  fmt.Sprintf("T-ABL2 — radix width sweep (n=%d)", n),
		XLabel: "W",
		Series: []string{"accumulate", "Mops/s", "σ(final)"},
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: 1500, Seed: 5}).Slice()
	for _, w := range widths {
		a := accum.NewWindow(w)
		d := timeIt(func() { a.AddSlice(xs) })
		s := a.ToSparse()
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", w), Values: map[string]string{
			"accumulate": secs(d),
			"Mops/s":     fmt.Sprintf("%.1f", float64(n)/d.Seconds()/1e6),
			"σ(final)":   fmt.Sprintf("%d", s.Len()),
		}})
	}
	return t
}

// SigmaTable measures σ — the number of active superaccumulator
// components — against the exponent-range parameter δ, for each
// distribution. This is the quantity behind the paper's Figure 2
// observations: the sparse accumulator's cost grows with δ because σ does,
// while Anderson's collapses regardless of δ.
func SigmaTable(n int64, deltas []int) Table {
	t := Table{
		Title:  fmt.Sprintf("T-SIGMA — active components σ vs δ (n=%d, W=32)", n),
		XLabel: "delta",
	}
	for _, d := range gen.AllDists {
		t.Series = append(t.Series, d.String())
	}
	for _, delta := range deltas {
		vals := map[string]string{}
		for _, d := range gen.AllDists {
			xs := gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: 8}).Slice()
			a := accum.NewWindow(32)
			a.AddSlice(xs)
			vals[d.String()] = fmt.Sprintf("%d", a.ToSparse().Len())
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", delta), Values: vals})
	}
	return t
}

// CombinerTable is the combiner on/off ablation: shuffle volume and
// modeled time with and without map-side combining.
func CombinerTable(n int64, cfg Config) Table {
	t := Table{
		Title:  fmt.Sprintf("T-ABL3 — combiner ablation (n=%d, %d virtual workers)", n, cfg.Workers),
		XLabel: "combiner",
		Series: []string{"shuffle-recs", "shuffle-bytes", "cluster-time"},
	}
	xs := gen.New(gen.Config{Dist: gen.Random, N: n, Delta: 800, Seed: 6}).Slice()
	for _, off := range []bool{false, true} {
		r := mapreduce.Run(xs, mapreduce.Config{
			Workers: cfg.Workers, SplitSize: cfg.SplitSize,
			Acc: mapreduce.SparseAcc, NoCombine: off, Seed: cfg.Seed,
		})
		label := "on"
		if off {
			label = "off"
		}
		t.Rows = append(t.Rows, Row{X: label, Values: map[string]string{
			"shuffle-recs":  fmt.Sprintf("%d", r.Stats.ShuffleRecords),
			"shuffle-bytes": fmt.Sprintf("%d", r.Stats.ShuffleBytes),
			"cluster-time":  secs(r.Stats.ClusterTime()),
		}})
	}
	return t
}

// SeqTable is the sequential shoot-out: one-shot wall time of every
// registered summation engine on each distribution, with the error (in
// ulps of the correct result) of the ones that do not promise correct
// rounding. The column set is the engine registry, so a newly registered
// engine shows up here with no harness change.
func SeqTable(n int64, delta int) []Table {
	var out []Table
	engines := engine.All()
	var names []string
	for _, e := range engines {
		names = append(names, e.Name())
	}
	for _, d := range gen.AllDists {
		t := Table{
			Title:  fmt.Sprintf("T-SEQ — registered engines on %s (n=%d, δ=%d)", d, n, delta),
			XLabel: "metric",
			Series: names,
		}
		xs := gen.New(gen.Config{Dist: d, N: n, Delta: delta, Seed: 7}).Slice()
		exact := core.Sum(xs)
		times := map[string]string{}
		errs := map[string]string{}
		for _, e := range engines {
			var v float64
			dur := timeIt(func() { v = e.Sum(xs) })
			times[e.Name()] = secs(dur)
			switch {
			case v == exact:
				errs[e.Name()] = "0"
			case e.Caps().CorrectlyRounded:
				errs[e.Name()] = fmt.Sprintf("BUG(%g≠%g)", v, exact)
			default:
				errs[e.Name()] = fmt.Sprintf("%.3g", ulpsApart(exact, v))
			}
		}
		t.Rows = append(t.Rows, Row{X: "time", Values: times})
		t.Rows = append(t.Rows, Row{X: "err(ulp)", Values: errs})
		out = append(out, t)
	}
	return out
}

// ulpsApart estimates |got−want| in units of ulp(want).
func ulpsApart(want, got float64) float64 {
	if math.IsInf(got, 0) || math.IsNaN(got) {
		return math.Inf(1)
	}
	u := math.Abs(want)
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	} else {
		u = math.Nextafter(u, math.Inf(1)) - u
	}
	return math.Abs(got-want) / u
}
