package pram

import (
	"math/rand"
	"testing"

	"parsum/internal/accum"
)

// refCanonicalize is the sequential reference: the same low-to-high signed
// carry pass the accumulators use, with the final carry kept separate.
func refCanonicalize(dig []int64, w uint) ([]int64, int64) {
	mask := int64(1)<<w - 1
	out := make([]int64, len(dig))
	var c int64
	for i, v := range dig {
		t := v + c
		out[i] = t & mask
		c = t >> w
	}
	return out, c
}

func TestComposeFnExhaustive(t *testing.T) {
	// Function packing/composition over all 27 codes must satisfy
	// (a • b)(x) == b(a(x)) for all inputs.
	for a := int64(0); a < 27; a++ {
		for b := int64(0); b < 27; b++ {
			ab := composeFn(a, b)
			for _, x := range []int64{-1, 0, 1} {
				if got, want := applyFn(ab, x), applyFn(b, applyFn(a, x)); got != want {
					t.Fatalf("compose(%d,%d)(%d) = %d, want %d", a, b, x, got, want)
				}
			}
		}
	}
	for _, x := range []int64{-1, 0, 1} {
		if applyFn(identityFn, x) != x {
			t.Fatalf("identity broken at %d", x)
		}
	}
}

func TestPrefixCanonicalizeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		w := uint(8 + r.Intn(25))
		mask := int64(1)<<w - 1
		k := 1 + r.Intn(100)
		dig := make([]int64, k)
		for i := range dig {
			dig[i] = r.Int63() & mask * (1 - 2*int64(r.Intn(2))) // in [−(R−1), R−1]
		}
		res, err := PrefixCanonicalize(dig, w, EREW)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, wc := refCanonicalize(dig, w)
		if res.FinalCarry != wc {
			t.Fatalf("trial %d w=%d: carry=%d want %d", trial, w, res.FinalCarry, wc)
		}
		for i := range want {
			if res.Canonical[i] != want[i] {
				t.Fatalf("trial %d w=%d: digit %d = %d, want %d", trial, w, i, res.Canonical[i], want[i])
			}
		}
	}
}

func TestPrefixCanonicalizeStepFormula(t *testing.T) {
	// Exactly 3 + 2·log₂K steps — the paper's "parallel prefix
	// computation" at logarithmic depth, independent of the data.
	for _, k := range []int{1, 2, 5, 16, 100, 1024} {
		dig := make([]int64, k)
		for i := range dig {
			dig[i] = int64(i%3 - 1)
		}
		res, err := PrefixCanonicalize(dig, 32, EREW)
		if err != nil {
			t.Fatal(err)
		}
		pk := 1
		logk := 0
		for pk < k {
			pk <<= 1
			logk++
		}
		if want := int64(3 + 2*logk); res.Steps != want {
			t.Fatalf("k=%d: steps=%d, want %d", k, res.Steps, want)
		}
	}
}

func TestPrefixCanonicalizeValuePreserved(t *testing.T) {
	// Value check through the rounding primitive: canonical digits plus
	// the final carry must round to the same float64 as the input digits.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		w := uint(26 + r.Intn(7))
		mask := int64(1)<<w - 1
		k := 1 + r.Intn(40)
		dig := make([]int64, k)
		for i := range dig {
			dig[i] = r.Int63()&mask - r.Int63()&mask
		}
		res, err := PrefixCanonicalize(dig, w, EREW)
		if err != nil {
			t.Fatal(err)
		}
		minIdx := -10
		got := accum.RoundDigitString(append(append([]int64(nil), res.Canonical...), res.FinalCarry), minIdx, w)
		want := accum.RoundDigitString(dig, minIdx, w)
		if got != want {
			t.Fatalf("trial %d w=%d: prefix=%g direct=%g", trial, w, got, want)
		}
	}
}

func TestPrefixCanonicalizeNegative(t *testing.T) {
	// A single −1 digit: canonical form is all zeros with borrow −1.
	res, err := PrefixCanonicalize([]int64{-1, 0, 0}, 32, EREW)
	if err != nil {
		t.Fatal(err)
	}
	if res.Canonical[0] != 0xFFFFFFFF || res.Canonical[1] != 0xFFFFFFFF || res.Canonical[2] != 0xFFFFFFFF || res.FinalCarry != -1 {
		t.Fatalf("got %v carry %d", res.Canonical, res.FinalCarry)
	}
	// Empty input.
	res, err = PrefixCanonicalize(nil, 32, EREW)
	if err != nil || len(res.Canonical) != 0 || res.FinalCarry != 0 {
		t.Fatalf("empty: %+v, %v", res, err)
	}
}
