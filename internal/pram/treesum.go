package pram

import (
	"parsum/internal/accum"
	"parsum/internal/fpnum"
)

// Result reports a PRAM execution: the rounded sum, the exact step and work
// counts of the summation phase, and the layout parameters.
type Result struct {
	Sum    float64
	Steps  int64
	Work   int64
	Levels int // ⌈log₂ n⌉
	K      int // components per superaccumulator
}

// layout computes the digit-span K and memory layout for n leaves of width
// w. Node arrays live at node*K in the digit region; a parallel region of
// the same size holds the per-node carry cells.
type layout struct {
	w      uint
	k      int
	minIdx int
	n      int // padded to a power of two
	levels int
}

func newLayout(nIn int, w uint) layout {
	if w == 0 {
		w = accum.DefaultWidth
	}
	minIdx, maxIdx := accum.DigitBounds(w)
	l := layout{w: w, k: maxIdx - minIdx + 1, minIdx: minIdx}
	l.n = 1
	for l.n < nIn {
		l.n <<= 1
		l.levels++
	}
	return l
}

// dig returns the cell address of component i of tree node v (heap
// numbering: root 1, children 2v and 2v+1, leaves n..2n−1).
func (l layout) dig(v, i int) int { return v*l.k + i }

// carry returns the address of the carry cell into component i of node v.
func (l layout) carry(v, i int) int { return 2*l.n*l.k + v*l.k + i }

// TreeSum runs the paper's PRAM summation tree with Lemma 1 carry-free
// merges on a fresh machine in the given mode and returns the correctly
// rounded sum with exact step/work counts. Inputs must be finite. The
// summation phase costs exactly 1 + 3·levels steps: one conversion step
// and three EREW steps per tree level (component sums; carry computation;
// reduction plus carry application — carries are kept in processor-local
// registers between the sub-steps, so no cell is ever shared).
//
// Final rounding (the paper's steps 6–7, a parallel-prefix conversion plus
// O(1) extraction) is performed off-machine by the shared rounding
// primitive and excluded from the counts, as is the specials bookkeeping.
func TreeSum(xs []float64, w uint, mode Mode) (Result, error) {
	l := newLayout(len(xs), w)
	var res Result
	res.Levels = l.levels
	res.K = l.k
	for _, x := range xs {
		if c := fpnum.Classify(x); c != fpnum.ClassFinite && c != fpnum.ClassZero {
			return res, ErrNonFinite
		}
	}
	m := New(mode, 4*l.n*l.k)

	// Step 1 (paper step 2): each processor converts its input to an
	// (α,β)-regularized superaccumulator: O(1) chunk writes into its own
	// leaf. Padded leaves hold zero and write nothing.
	m.Step(l.n, func(p int, c *Ctx) {
		if p >= len(xs) || xs[p] == 0 {
			return
		}
		s := accum.FromFloat64(xs[p], l.w)
		idx, dig := s.Components()
		leaf := l.n + p
		for j := range idx {
			c.Write(l.dig(leaf, int(idx[j])-l.minIdx), dig[j])
		}
	})

	// Bottom-up merge: three steps per level, every pair at a level in
	// parallel, K processors per pair.
	r := int64(1) << l.w
	for nodes := l.n / 2; nodes >= 1; nodes /= 2 {
		first := nodes // nodes of this level: [nodes, 2*nodes)
		procs := nodes * l.k
		// Processor-local registers carried across the sub-steps of this
		// level (legal PRAM local state; never shared).
		pLocal := make([]int64, procs)

		// Sub-step 1: Pᵢ = Yᵢ + Zᵢ into the parent's digit array.
		m.Step(procs, func(p int, c *Ctx) {
			v := first + p/l.k
			i := p % l.k
			sum := c.Read(l.dig(2*v, i)) + c.Read(l.dig(2*v+1, i))
			c.Write(l.dig(v, i), sum)
		})
		// Sub-step 2: choose the signed carry Cᵢ₊₁ from Pᵢ alone (Lemma 1)
		// and publish it for the right neighbor; remember Wᵢ locally.
		m.Step(procs, func(p int, c *Ctx) {
			v := first + p/l.k
			i := p % l.k
			pv := c.Read(l.dig(v, i))
			var out int64
			switch {
			case pv >= r-1:
				out = 1
			case pv <= -r+1:
				out = -1
			}
			pLocal[p] = pv - out*r // Wᵢ
			if i+1 < l.k {
				c.Write(l.carry(v, i+1), out)
			} else if out != 0 {
				m.err = errTopCarry
			}
		})
		// Sub-step 3: Sᵢ = Wᵢ + Cᵢ; each carry cell is read by exactly one
		// processor.
		m.Step(procs, func(p int, c *Ctx) {
			v := first + p/l.k
			i := p % l.k
			var carryIn int64
			if i > 0 {
				carryIn = c.Read(l.carry(v, i))
			}
			c.Write(l.dig(v, i), pLocal[p]+carryIn)
		})
	}
	if m.err != nil {
		return res, m.err
	}

	// Read out the root and round off-machine (paper steps 6–7).
	root := make([]int64, l.k)
	for i := range root {
		root[i] = m.mem[l.dig(1, i)]
	}
	res.Sum = accum.RoundDigitString(root, l.minIdx, l.w)
	res.Steps = m.Steps
	res.Work = m.Work
	return res, nil
}

// TreeSumCarryPropagate is the ablation baseline: the same summation tree
// with a conventional carry-propagating merge (the representation used by
// Neal-style small superaccumulators). Each level needs one parallel
// component-add step followed by a K-step sequential carry chain executed
// by one processor per pair — the inherent dependency the paper's
// representation removes. Step count: 1 + levels·(1+K).
func TreeSumCarryPropagate(xs []float64, w uint, mode Mode) (Result, error) {
	l := newLayout(len(xs), w)
	var res Result
	res.Levels = l.levels
	res.K = l.k
	for _, x := range xs {
		if c := fpnum.Classify(x); c != fpnum.ClassFinite && c != fpnum.ClassZero {
			return res, ErrNonFinite
		}
	}
	m := New(mode, 2*l.n*l.k)
	m.Step(l.n, func(p int, c *Ctx) {
		if p >= len(xs) || xs[p] == 0 {
			return
		}
		s := accum.FromFloat64(xs[p], l.w)
		idx, dig := s.Components()
		leaf := l.n + p
		for j := range idx {
			c.Write(l.dig(leaf, int(idx[j])-l.minIdx), dig[j])
		}
	})
	mask := int64(1)<<l.w - 1
	for nodes := l.n / 2; nodes >= 1; nodes /= 2 {
		first := nodes
		procs := nodes * l.k
		m.Step(procs, func(p int, c *Ctx) {
			v := first + p/l.k
			i := p % l.k
			sum := c.Read(l.dig(2*v, i)) + c.Read(l.dig(2*v+1, i))
			c.Write(l.dig(v, i), sum)
		})
		// Sequential carry chain: one processor per pair, K dependent steps.
		carries := make([]int64, nodes)
		for i := 0; i < l.k; i++ {
			i := i
			m.Step(nodes, func(p int, c *Ctx) {
				v := first + p
				addr := l.dig(v, i)
				val := c.Read(addr) + carries[p]
				if i == l.k-1 {
					c.Write(addr, val) // top keeps its carry unreduced
					return
				}
				c.Write(addr, val&mask)
				carries[p] = val >> l.w
			})
		}
	}
	if m.err != nil {
		return res, m.err
	}
	root := make([]int64, l.k)
	for i := range root {
		root[i] = m.mem[l.dig(1, i)]
	}
	res.Sum = accum.RoundDigitString(root, l.minIdx, l.w)
	res.Steps = m.Steps
	res.Work = m.Work
	return res, nil
}

var errTopCarry = errTop{}

type errTop struct{}

func (errTop) Error() string { return "pram: carry out of the top superaccumulator component" }
