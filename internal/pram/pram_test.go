package pram

import (
	"math"
	"math/rand"
	"testing"

	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func TestMachineDetectsEREWViolations(t *testing.T) {
	m := New(EREW, 8)
	// Two processors read the same cell in one step.
	m.Step(2, func(p int, c *Ctx) { c.Read(3) })
	if m.Err() == nil {
		t.Fatal("concurrent read not detected in EREW mode")
	}
	// CREW allows it.
	m2 := New(CREW, 8)
	m2.Step(2, func(p int, c *Ctx) { c.Read(3) })
	if m2.Err() != nil {
		t.Fatalf("CREW rejected concurrent read: %v", m2.Err())
	}
	// But not concurrent writes.
	m3 := New(CREW, 8)
	m3.Step(2, func(p int, c *Ctx) { c.Write(3, int64(p)) })
	if m3.Err() == nil {
		t.Fatal("concurrent write not detected in CREW mode")
	}
	// Read/write mix is a conflict in both modes.
	m4 := New(CREW, 8)
	m4.Step(2, func(p int, c *Ctx) {
		if p == 0 {
			c.Read(5)
		} else {
			c.Write(5, 1)
		}
	})
	if m4.Err() == nil {
		t.Fatal("read/write conflict not detected")
	}
	// Same processor may read and write its own cells freely.
	m5 := New(EREW, 8)
	m5.Step(2, func(p int, c *Ctx) {
		v := c.Read(p)
		c.Write(p, v+1)
	})
	if m5.Err() != nil {
		t.Fatalf("false positive: %v", m5.Err())
	}
}

func TestTreeSumExactAndEREWClean(t *testing.T) {
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 300, Delta: 1200, Seed: 3}).Slice()
		res, err := TreeSum(xs, 32, EREW)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if want := oracle.Sum(xs); res.Sum != want {
			t.Fatalf("%v: PRAM=%g oracle=%g", d, res.Sum, want)
		}
	}
}

func TestTreeSumStepCountFormula(t *testing.T) {
	// The summation phase must cost exactly 1 + 3·⌈log₂ n⌉ steps,
	// independent of the data (the paper's O(log n) with the carry-free
	// merge's constant 3).
	for _, n := range []int{1, 2, 3, 7, 64, 100, 256} {
		xs := gen.New(gen.Config{Dist: gen.Random, N: int64(n), Delta: 600, Seed: 4}).Slice()
		res, err := TreeSum(xs, 32, EREW)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1 + 3*res.Levels)
		if res.Steps != want {
			t.Fatalf("n=%d: steps=%d, want %d", n, res.Steps, want)
		}
	}
}

func TestTreeSumWorkScalesLinearly(t *testing.T) {
	w256, _ := TreeSum(make([]float64, 256), 32, EREW)
	w1024, _ := TreeSum(make([]float64, 1024), 32, EREW)
	ratio := float64(w1024.Work) / float64(w256.Work)
	if ratio < 3.5 || ratio > 4.6 {
		t.Fatalf("work ratio 1024/256 = %.2f, want ≈4 (O(n·K) work)", ratio)
	}
}

func TestCarryPropagateAblation(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.SumZero, N: 128, Delta: 1500, Seed: 5}).Slice()
	cf, err := TreeSum(xs, 32, EREW)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := TreeSumCarryPropagate(xs, 32, EREW)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Sum != cp.Sum {
		t.Fatalf("carry-free %g != carry-propagate %g", cf.Sum, cp.Sum)
	}
	if want := int64(1 + cp.Levels*(1+cp.K)); cp.Steps != want {
		t.Fatalf("carry-propagate steps=%d, want %d", cp.Steps, want)
	}
	// The paper's point: parallel depth per level is 3 vs 1+K.
	if cf.Steps >= cp.Steps {
		t.Fatalf("carry-free (%d steps) should beat carry-propagate (%d steps)", cf.Steps, cp.Steps)
	}
}

func TestTreeSumMatchesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1600)-800)
		}
		res, err := TreeSum(xs, uint(26+r.Intn(7)), EREW)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Sum(xs); res.Sum != want {
			t.Fatalf("trial %d: PRAM=%g oracle=%g", trial, res.Sum, want)
		}
	}
}

func TestTreeSumRejectsNonFinite(t *testing.T) {
	if _, err := TreeSum([]float64{1, math.Inf(1)}, 32, EREW); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
	if _, err := TreeSumCarryPropagate([]float64{math.NaN()}, 32, EREW); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
}

func TestTreeSumEmpty(t *testing.T) {
	res, err := TreeSum(nil, 32, EREW)
	if err != nil || res.Sum != 0 {
		t.Fatalf("empty: %g, %v", res.Sum, err)
	}
}
