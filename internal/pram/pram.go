// Package pram provides a synchronous PRAM simulator with step and work
// accounting and exclusive-access checking, plus the paper's summation-tree
// algorithm implemented on it.
//
// A program runs as a sequence of synchronous steps; in each step an
// arbitrary set of processors each performs O(1) reads, local computation,
// and O(1) writes against the shared memory. The machine counts one step
// per synchronous round and one unit of work per participating processor,
// and it *verifies* the memory discipline: in EREW mode any two processors
// touching the same cell in the same step is an error; in CREW mode only
// write conflicts are.
//
// TreeSum executes the paper's bottom-up summation with the Lemma 1
// carry-free merge: every level of the binary summation tree takes exactly
// three EREW steps regardless of accumulator width, so the whole summation
// phase is 1 + 3·⌈log₂ n⌉ steps with O(n·K) work (K = number of
// superaccumulator components — Θ(1) for fixed-precision doubles, the σ(n)
// of the paper in general). TreeSumCarryPropagate is the ablation: the
// same tree with a conventional carry-propagating merge needs K steps per
// level, which is exactly the sequential chain the paper's representation
// eliminates.
package pram

import (
	"errors"
	"fmt"
)

// Mode selects the memory-access discipline the machine enforces.
type Mode int

// EREW forbids any same-cell sharing within a step; CREW allows concurrent
// reads but forbids concurrent writes (and read/write mixes).
const (
	EREW Mode = iota
	CREW
)

func (m Mode) String() string {
	if m == EREW {
		return "EREW"
	}
	return "CREW"
}

// Machine is a synchronous PRAM with access checking.
type Machine struct {
	Mode  Mode
	mem   []int64
	Steps int64
	Work  int64

	err error
	// Per-step access tracking: which processor first read/wrote each cell.
	readBy  map[int]int
	writeBy map[int]int
}

// New returns a machine with the given number of shared-memory cells, all
// zero.
func New(mode Mode, cells int) *Machine {
	return &Machine{Mode: mode, mem: make([]int64, cells)}
}

// Err returns the first memory-discipline violation, if any.
func (m *Machine) Err() error { return m.err }

// Ctx is a processor's handle to shared memory during one step.
type Ctx struct {
	m *Machine
	p int
}

// Read returns the value of a cell, checking the access discipline.
func (c *Ctx) Read(addr int) int64 {
	m := c.m
	if p, ok := m.writeBy[addr]; ok && p != c.p && m.err == nil {
		m.err = fmt.Errorf("pram: step %d: proc %d reads cell %d written by proc %d", m.Steps, c.p, addr, p)
	}
	if m.Mode == EREW {
		if p, ok := m.readBy[addr]; ok && p != c.p && m.err == nil {
			m.err = fmt.Errorf("pram: step %d: concurrent read of cell %d by procs %d and %d", m.Steps, addr, p, c.p)
		}
	}
	if _, ok := m.readBy[addr]; !ok {
		m.readBy[addr] = c.p
	}
	return m.mem[addr]
}

// Write stores a value into a cell, checking the access discipline.
func (c *Ctx) Write(addr int, v int64) {
	m := c.m
	if p, ok := m.writeBy[addr]; ok && p != c.p && m.err == nil {
		m.err = fmt.Errorf("pram: step %d: concurrent write of cell %d by procs %d and %d", m.Steps, addr, p, c.p)
	}
	if p, ok := m.readBy[addr]; ok && p != c.p && m.err == nil {
		m.err = fmt.Errorf("pram: step %d: cell %d read by proc %d and written by proc %d", m.Steps, addr, p, c.p)
	}
	if _, ok := m.writeBy[addr]; !ok {
		m.writeBy[addr] = c.p
	}
	m.mem[addr] = v
}

// Step executes one synchronous parallel step on procs processors. The
// simulator runs the processor bodies sequentially; the access tracker
// makes that equivalent to any parallel order for a program that obeys the
// discipline (which is exactly what it verifies).
func (m *Machine) Step(procs int, body func(p int, c *Ctx)) {
	m.Steps++
	m.Work += int64(procs)
	m.readBy = make(map[int]int)
	m.writeBy = make(map[int]int)
	for p := 0; p < procs; p++ {
		body(p, &Ctx{m: m, p: p})
	}
	m.readBy, m.writeBy = nil, nil
}

// ErrNonFinite is returned by the PRAM algorithms for inputs outside the
// finite range (the machine's cells model fixed-point components only).
var ErrNonFinite = errors.New("pram: non-finite input")
