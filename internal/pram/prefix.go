package pram

// The paper's step 6 converts the final (α,β)-regularized superaccumulator
// into a non-redundant form by propagating signed carries "by a parallel
// prefix computation (based on a simple lookup table based on whether the
// input carry bit is a −1, 0, or 1)". This file implements exactly that on
// the machine: every digit dᵢ induces a carry-transfer function
//
//	fᵢ : {−1,0,+1} → {−1,0,+1},  fᵢ(c) = (dᵢ + c) >> W,
//
// the carry entering digit i is the left-to-right composition
// (f₀ • f₁ • … • fᵢ₋₁)(0), and function composition is associative, so a
// Blelloch exclusive scan computes all carries in 2·log₂K + O(1) EREW
// steps with O(K) work.

// Transfer functions are packed into a single cell as a base-3 code of the
// triple (f(−1), f(0), f(+1)).
func packFn(fm1, f0, fp1 int64) int64 {
	return (fm1 + 1) + 3*(f0+1) + 9*(fp1+1)
}

func applyFn(code, c int64) int64 {
	switch c {
	case -1:
		return code%3 - 1
	case 0:
		return (code/3)%3 - 1
	default:
		return (code/9)%3 - 1
	}
}

// composeFn returns the code of "apply a, then b".
func composeFn(a, b int64) int64 {
	return packFn(
		applyFn(b, applyFn(a, -1)),
		applyFn(b, applyFn(a, 0)),
		applyFn(b, applyFn(a, 1)),
	)
}

// identityFn is the code of the identity transfer function.
var identityFn = packFn(-1, 0, 1)

// PrefixResult reports a PrefixCanonicalize execution.
type PrefixResult struct {
	Canonical  []int64 // digits in [0, R−1]
	FinalCarry int64   // carry out of the top digit (−1 for negative values)
	Steps      int64
	Work       int64
}

// PrefixCanonicalize runs the paper's step-6 signed-carry propagation on a
// fresh PRAM: given a digit string with digits in [−(R−1), R−1], it
// produces the canonical digits dᵢ' = (dᵢ + cᵢ) mod R ∈ [0, R−1] with all
// carries computed by an EREW Blelloch scan over carry-transfer functions,
// in exactly 3 + 2·log₂ K machine steps for the padded power-of-two K.
// FinalCarry (∈ {−1, 0}; positive carries are unreachable from a zero
// initial carry) has binary weight 2^(w·len(dig)): the represented value is
// Σ Canonical[i]·R^i + FinalCarry·R^len.
func PrefixCanonicalize(dig []int64, w uint, mode Mode) (PrefixResult, error) {
	var res PrefixResult
	if len(dig) == 0 {
		return res, nil
	}
	k := 1
	for k < len(dig) {
		k <<= 1
	}
	// Memory layout: [0,k) digits, [k,2k) transfer-function scan array.
	m := New(mode, 2*k)
	for i, v := range dig {
		m.mem[i] = v
	}

	// Step: build each digit's transfer function (padded digits are zero
	// and get fᵢ(c) = c>>W = −1 for c=−1 … which is exactly (0+c)>>W).
	m.Step(k, func(p int, c *Ctx) {
		d := c.Read(p)
		c.Write(k+p, packFn((d-1)>>w, d>>w, (d+1)>>w))
	})

	// Blelloch up-sweep: T[r] ← T[l] • T[r].
	for d := 1; d < k; d <<= 1 {
		d := d
		m.Step(k/(2*d), func(p int, c *Ctx) {
			i := p * 2 * d
			l := c.Read(k + i + d - 1)
			r := c.Read(k + i + 2*d - 1)
			c.Write(k+i+2*d-1, composeFn(l, r))
		})
	}

	// Save the total fold (the final carry) and seed the root with the
	// identity for the exclusive scan.
	var total int64
	m.Step(1, func(p int, c *Ctx) {
		total = c.Read(k + k - 1)
		c.Write(k+k-1, identityFn)
	})

	// Down-sweep: left gets the parent's prefix; right gets parent • left.
	for d := k / 2; d >= 1; d >>= 1 {
		d := d
		m.Step(k/(2*d), func(p int, c *Ctx) {
			i := p * 2 * d
			l := c.Read(k + i + d - 1)
			parent := c.Read(k + i + 2*d - 1)
			c.Write(k+i+d-1, parent)
			c.Write(k+i+2*d-1, composeFn(parent, l))
		})
	}

	// Step: apply the carries. After the scan, cell k+i holds the
	// composition of f₀…fᵢ₋₁; evaluating it at 0 gives the carry into i.
	mask := int64(1)<<w - 1
	m.Step(k, func(p int, c *Ctx) {
		carry := applyFn(c.Read(k+p), 0)
		c.Write(p, (c.Read(p)+carry)&mask)
	})
	if m.err != nil {
		return res, m.err
	}

	res.Canonical = make([]int64, len(dig))
	copy(res.Canonical, m.mem[:len(dig)])
	res.FinalCarry = applyFn(total, 0)
	res.Steps = m.Steps
	res.Work = m.Work
	return res, nil
}
