// Package expansion implements Shewchuk-style floating-point expansions:
// values represented exactly as sums of nonoverlapping float64 components
// in increasing-magnitude order (Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates", 1997).
//
// The paper discusses this representation as prior work: it is exact and
// adaptive, but — unlike the paper's (α,β)-regularized superaccumulator —
// its component boundaries are data-dependent (arbitrary exponents rather
// than multiples of a fixed radix), so two expansions cannot be merged
// component-wise in O(1) parallel depth; summation remains inherently
// sequential. The package exists as an exact sequential baseline and as
// the substrate for robust geometric predicates.
//
// All operations assume no intermediate overflow (|values| comfortably
// below MaxFloat64), the standard assumption of expansion arithmetic.
package expansion

import (
	"math"

	"parsum/internal/eft"
	"parsum/internal/fpnum"
)

// Expansion is a nonoverlapping expansion: components in increasing order
// of magnitude, each nonzero, whose exact sum is the represented value.
// The empty expansion represents zero.
type Expansion []float64

// FromFloat64 returns the expansion of a single float64.
func FromFloat64(x float64) Expansion {
	if x == 0 {
		return nil
	}
	return Expansion{x}
}

// Grow adds the scalar b to e, returning a nonoverlapping expansion of the
// exact sum (Shewchuk's GROW-EXPANSION with zero elimination).
func Grow(e Expansion, b float64) Expansion {
	h := make(Expansion, 0, len(e)+1)
	q := b
	for _, ei := range e {
		var lo float64
		q, lo = eft.TwoSum(q, ei)
		if lo != 0 {
			h = append(h, lo)
		}
	}
	if q != 0 {
		h = append(h, q)
	}
	return h
}

// Add returns the exact sum of two expansions (Shewchuk's
// EXPANSION-SUM: f's components grown into e one at a time, preserving the
// nonoverlapping invariant).
func Add(e, f Expansion) Expansion {
	out := e
	for _, fi := range f {
		out = Grow(out, fi)
	}
	return out
}

// Compress canonicalizes e into an equivalent expansion whose largest
// component is a good approximation of the value (Shewchuk's COMPRESS),
// usually shrinking the component count.
func Compress(e Expansion) Expansion {
	if len(e) == 0 {
		return nil
	}
	// Top-down accumulation.
	g := make(Expansion, len(e))
	q := e[len(e)-1]
	bottom := len(e) - 1
	for i := len(e) - 2; i >= 0; i-- {
		var lo float64
		q, lo = eft.FastTwoSum(q, e[i])
		if lo != 0 {
			g[bottom] = q
			bottom--
			q = lo
		}
	}
	g[bottom] = q
	// Bottom-up pass.
	h := make(Expansion, 0, len(e))
	q = g[bottom]
	for i := bottom + 1; i < len(g); i++ {
		var lo float64
		q, lo = eft.FastTwoSum(g[i], q)
		if lo != 0 {
			h = append(h, lo)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	if len(h) == 1 && h[0] == 0 {
		return nil
	}
	return h
}

// Estimate returns a one-ulp-accurate approximation of e's value (the sum
// of components, smallest first).
func Estimate(e Expansion) float64 {
	var s float64
	for _, c := range e {
		s += c
	}
	return s
}

// Check verifies the nonoverlapping increasing-magnitude invariant: every
// component is finite and nonzero, and the most significant bit of each
// component lies strictly below the least significant bit of the next.
func Check(e Expansion) bool {
	for i, c := range e {
		if c == 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			return false
		}
		if i > 0 {
			if fpnum.ExpOfMSB(e[i-1]) >= fpnum.ExpOfLSB(c) {
				return false
			}
		}
	}
	return true
}

// Sum computes the exact expansion of Σxs by repeated growing, compressing
// periodically to bound the component count. It is the package's exact
// sequential summation baseline; inputs must be finite and must not
// overflow intermediate sums.
func Sum(xs []float64) Expansion {
	var e Expansion
	budget := 64
	for _, x := range xs {
		if x == 0 {
			continue
		}
		e = Grow(e, x)
		if len(e) > budget {
			e = Compress(e)
			if len(e)*2 > budget {
				budget = len(e) * 2
			}
		}
	}
	return Compress(e)
}
