package expansion

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/accum"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

// value sums an expansion exactly with big.Float for verification.
func value(e Expansion) *big.Float {
	s := new(big.Float).SetPrec(2200)
	for _, c := range e {
		s.Add(s, new(big.Float).SetPrec(2200).SetFloat64(c))
	}
	return s
}

// round converts an expansion to the correctly rounded float64 via the
// superaccumulator (exact, few components).
func round(e Expansion) float64 {
	w := accum.NewWindow(0)
	w.AddSlice(e)
	return w.Round()
}

func valuesEqual(e Expansion, xs []float64) bool {
	want := oracle.SumBig(xs)
	return want != nil && value(e).Cmp(want) == 0
}

func TestGrowPreservesValueAndInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		var e Expansion
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(600)-300)
			e = Grow(e, xs[i])
			if !Check(e) {
				t.Fatalf("trial %d: invariant broken after %d grows: %v", trial, i+1, e)
			}
		}
		if !valuesEqual(e, xs) {
			t.Fatalf("trial %d: value not preserved", trial)
		}
	}
}

func TestAddExpansions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+r.Intn(20))
		ys := make([]float64, 1+r.Intn(20))
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(400)-200)
		}
		for i := range ys {
			ys[i] = math.Ldexp(r.Float64()*2-1, r.Intn(400)-200)
		}
		e := Sum(xs)
		f := Sum(ys)
		g := Add(e, f)
		if !Check(g) {
			t.Fatalf("Add broke invariant")
		}
		if !valuesEqual(g, append(append([]float64(nil), xs...), ys...)) {
			t.Fatalf("Add lost value")
		}
	}
}

func TestCompressShrinksAndPreserves(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+r.Intn(60))
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(800)-400)
		}
		var e Expansion
		for _, x := range xs {
			e = Grow(e, x)
		}
		c := Compress(e)
		if !Check(c) {
			t.Fatalf("Compress broke invariant: %v", c)
		}
		if len(c) > len(e) {
			t.Fatalf("Compress grew the expansion: %d → %d", len(e), len(c))
		}
		if value(c).Cmp(value(e)) != 0 {
			t.Fatalf("Compress changed the value")
		}
		// Compressed largest component approximates the value to ~1 ulp.
		if len(c) > 0 {
			v, _ := value(c).Float64()
			top := c[len(c)-1]
			if top != v && math.Nextafter(top, v) != v {
				t.Fatalf("top component %g not within 1 ulp of value %g", top, v)
			}
		}
	}
}

func TestSumMatchesOracleOnDistributions(t *testing.T) {
	for _, d := range gen.AllDists {
		// Moderate δ: expansion arithmetic is the baseline that degrades
		// with spread, so keep runtimes sane.
		xs := gen.New(gen.Config{Dist: d, N: 2000, Delta: 500, Seed: 5}).Slice()
		e := Sum(xs)
		if !Check(e) {
			t.Fatalf("%v: invariant broken", d)
		}
		got, want := round(e), oracle.Sum(xs)
		if got != want {
			t.Fatalf("%v: expansion=%g oracle=%g", d, got, want)
		}
	}
}

func TestEstimateAccuracy(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 3000, Delta: 300, Seed: 6}).Slice()
	e := Sum(xs)
	est := Estimate(e)
	exact := oracle.Sum(xs)
	if est != exact && math.Nextafter(est, exact) != exact {
		t.Fatalf("Estimate %g more than 1 ulp from %g", est, exact)
	}
}

func TestZeroHandling(t *testing.T) {
	if e := Sum([]float64{0, 0, 0}); len(e) != 0 {
		t.Fatalf("zero sum expansion = %v", e)
	}
	if e := Sum([]float64{1, -1}); len(e) != 0 {
		t.Fatalf("cancelled expansion = %v, want empty", e)
	}
	if e := FromFloat64(0); len(e) != 0 {
		t.Fatalf("FromFloat64(0) = %v", e)
	}
	if got := round(Sum(nil)); got != 0 {
		t.Fatalf("empty expansion rounds to %g", got)
	}
}

func TestExpansionQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]float64, 0, len(raw))
		for _, b := range raw {
			x := math.Float64frombits(b)
			// Expansion arithmetic assumes no overflow: bound magnitudes.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				continue
			}
			xs = append(xs, x)
		}
		e := Sum(xs)
		return Check(e) && round(e) == oracle.Sum(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
