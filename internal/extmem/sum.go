package extmem

import (
	"errors"
	"math"

	"parsum/internal/accum"
	"parsum/internal/fpnum"
)

// Component is one superaccumulator component on disk: a signed mantissa at
// digit index Idx (binary weight 2^(w·Idx)).
type Component struct {
	Idx int32
	Dig int64
}

// ErrMemory is returned by ScanSum when the accumulator cannot fit in the
// model's internal memory (σ(n) > M), the case Theorem 6 excludes.
var ErrMemory = errors.New("extmem: accumulator exceeds internal memory; use SortSum")

// specials mirrors the IEEE bookkeeping of the accumulators.
type specials struct{ nan, pos, neg bool }

func (s *specials) note(x float64) bool {
	switch fpnum.Classify(x) {
	case fpnum.ClassNaN:
		s.nan = true
	case fpnum.ClassPosInf:
		s.pos = true
	case fpnum.ClassNegInf:
		s.neg = true
	case fpnum.ClassZero:
	default:
		return false
	}
	return true
}

func (s *specials) resolve() (float64, bool) {
	switch {
	case s.nan, s.pos && s.neg:
		return math.NaN(), true
	case s.pos:
		return math.Inf(1), true
	case s.neg:
		return math.Inf(-1), true
	}
	return 0, false
}

// ScanSum implements Theorem 6: a single scan of the input with the whole
// superaccumulator resident in internal memory, using O(scan(n)) I/Os. It
// fails with ErrMemory if the accumulator's active span would exceed M
// records (by the paper's assumption σ(n) ≤ M this does not happen for
// double-precision data unless M is set artificially small).
func ScanSum(m *Model, in *File[float64], w uint) (float64, error) {
	acc := accum.NewWindow(w)
	var sp specials
	rd := in.NewReader()
	for {
		x, ok := rd.Next()
		if !ok {
			break
		}
		if sp.note(x) {
			continue
		}
		acc.Add(x)
		if acc.Span() > m.M {
			return 0, ErrMemory
		}
	}
	if v, ok := sp.resolve(); ok {
		return v, nil
	}
	return acc.Round(), nil
}

// SortSum implements Theorem 5: convert every input number to O(1)
// superaccumulator components (one scan), sort the components by exponent
// index (O(sort) I/Os), then sweep them in ascending order through a hot
// window of O(1) blocks, spilling finalized canonical digits to disk, and
// finally round from a re-scan of the spilled digit stream. Internal
// memory holds only the sort buffers and the constant-size hot window, so
// the algorithm works for any M ≥ 4B regardless of the accumulator size.
func SortSum(m *Model, in *File[float64], w uint) (float64, error) {
	if w == 0 {
		w = accum.DefaultWidth
	}
	// Step 1: convert to components.
	comps := NewFile[Component](m)
	cw := comps.NewWriter()
	var sp specials
	rd := in.NewReader()
	for {
		x, ok := rd.Next()
		if !ok {
			break
		}
		if sp.note(x) {
			continue
		}
		s := accum.FromFloat64(x, w)
		idx, dig := s.Components()
		for k := range idx {
			cw.Append(Component{Idx: idx[k], Dig: dig[k]})
		}
	}
	cw.Close()
	if v, ok := sp.resolve(); ok {
		return v, nil
	}
	if comps.Len() == 0 {
		return 0, nil
	}

	// Step 2: external sort by component index.
	sorted := ExternalSort(m, comps, func(a, b Component) bool { return a.Idx < b.Idx })

	// Steps 3–4: sweep ascending through a constant-size hot window,
	// canonicalizing and spilling digits the sweep has passed. Carries
	// only ever move upward, so a spilled digit is final.
	spill := NewFile[Component](m)
	sw := spill.NewWriter()
	const winLen = 8 // covers the ≤ ⌈84/w⌉+1 spread of one value's components
	var (
		win     [winLen]int64
		base    int32 // index of win[0]
		started bool
		carry   int64
		mask    = int64(1)<<w - 1
		adds    int
		maxAdd  = 1 << (62 - w)
	)
	emit := func() { // finalize win[0] and slide
		v := win[0] + carry
		if d := v & mask; d != 0 {
			sw.Append(Component{Idx: base, Dig: d})
		}
		carry = v >> w
		copy(win[:], win[1:])
		win[winLen-1] = 0
		base++
	}
	srd := sorted.NewReader()
	for {
		c, ok := srd.Next()
		if !ok {
			break
		}
		if !started {
			started = true
			base = c.Idx
		}
		for c.Idx >= base+winLen {
			emit()
		}
		win[c.Idx-base] += c.Dig
		if adds++; adds >= maxAdd {
			// Regularize the window in place before any digit overflows.
			var rc int64
			for i := 0; i < winLen-1; i++ {
				v := win[i] + rc
				win[i] = v & mask
				rc = v >> w
			}
			win[winLen-1] += rc
			adds = 0
		}
	}
	// Flush the window and drain the final carry.
	for i := 0; i < winLen; i++ {
		emit()
	}
	negTopIdx := int32(0)
	negative := false
	for carry != 0 && carry != -1 {
		if d := carry & mask; d != 0 {
			sw.Append(Component{Idx: base, Dig: d})
		}
		carry >>= w
		base++
	}
	if carry == -1 {
		negative = true
		negTopIdx = base // value = spilled digits − R^negTopIdx
	}
	sw.Close()

	// Step 5: round from a re-scan of the canonical digit stream.
	r := newStreamRounder(w)
	prd := spill.NewReader()
	if !negative {
		for {
			c, ok := prd.Next()
			if !ok {
				break
			}
			r.push(int(c.Idx), c.Dig)
		}
		return r.finish(false), nil
	}
	// Negative value: stream the complement |value| = R^top − Σ digits,
	// filling gaps (zero digits borrow to R−1).
	var (
		borrow int64
		cur    int32
		first  = true
	)
	next, ok := prd.Next()
	for cur = 0; ; cur++ {
		if first {
			if !ok { // no digits at all: |value| = R^top exactly
				break
			}
			cur = next.Idx
			first = false
		}
		if cur >= negTopIdx {
			break
		}
		var d int64
		if ok && next.Idx == cur {
			d = next.Dig
			next, ok = prd.Next()
		}
		v := -d + borrow
		if out := v & mask; out != 0 {
			r.push(int(cur), out)
		}
		borrow = v >> w
	}
	top := 1 + borrow // the R^top term plus accumulated borrow
	if top != 0 {
		r.push(int(negTopIdx), top)
	}
	return r.finish(true), nil
}

// streamRounder consumes canonical digits in strictly ascending index order
// (gaps are implicit zeros) and rounds the represented non-negative value,
// keeping only a constant-size ring of the most significant digits plus a
// sticky flag for everything that slid out below.
type streamRounder struct {
	w      uint
	base   int // index of ring[0]
	ring   []int64
	sticky bool
	any    bool
}

const ringLen = 16 // ≥ ⌈53/w⌉+3 digits for every supported w

func newStreamRounder(w uint) *streamRounder {
	return &streamRounder{w: w, ring: make([]int64, ringLen)}
}

func (r *streamRounder) push(idx int, dig int64) {
	if !r.any {
		r.any = true
		r.base = idx - ringLen + 1
		r.ring[ringLen-1] = dig
		return
	}
	top := r.base + ringLen - 1
	if idx <= top {
		r.ring[idx-r.base] += dig // same-position accumulation (top fix-up)
		return
	}
	shift := idx - top
	if shift >= ringLen {
		for _, d := range r.ring {
			if d != 0 {
				r.sticky = true
				break
			}
		}
		for i := range r.ring {
			r.ring[i] = 0
		}
		r.base = idx - ringLen + 1
		r.ring[ringLen-1] = dig
		return
	}
	for i := 0; i < shift; i++ {
		if r.ring[i] != 0 {
			r.sticky = true
		}
	}
	copy(r.ring, r.ring[shift:])
	for i := ringLen - shift; i < ringLen; i++ {
		r.ring[i] = 0
	}
	r.base += shift
	r.ring[ringLen-1] = dig
}

// finish rounds the accumulated value, negating the result when neg is set.
// The sticky flag is injected as a nonzero digit one position below the
// ring, which is provably below the rounding position whenever digits have
// actually slid out (see the package tests for the boundary argument).
func (r *streamRounder) finish(neg bool) float64 {
	if !r.any {
		return 0
	}
	win := make([]int64, ringLen+1)
	if r.sticky {
		win[0] = 1
	}
	copy(win[1:], r.ring)
	v := accum.RoundDigitString(win, r.base-1, r.w)
	if neg {
		return -v
	}
	return v
}
