package extmem

import (
	"container/heap"
	"sort"
)

// ExternalSort sorts f by less using the standard M-record run formation
// followed by (M/B − 1)-way merge passes, charging I/Os through the model.
// It returns a new sorted file; f is not modified.
func ExternalSort[T any](m *Model, f *File[T], less func(a, b T) bool) *File[T] {
	// Run formation: read M records at a time, sort in memory, write runs.
	var runs []*File[T]
	rd := f.NewReader()
	for {
		buf := make([]T, 0, m.M)
		for len(buf) < m.M {
			v, ok := rd.Next()
			if !ok {
				break
			}
			buf = append(buf, v)
		}
		if len(buf) == 0 {
			break
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := NewFile[T](m)
		w := run.NewWriter()
		for _, v := range buf {
			w.Append(v)
		}
		w.Close()
		runs = append(runs, run)
	}
	if len(runs) == 0 {
		return NewFile[T](m)
	}

	// Merge passes: fan-in limited by one block per input run plus one
	// output block in memory.
	fan := m.M/m.B - 1
	if fan < 2 {
		fan = 2
	}
	for len(runs) > 1 {
		var next []*File[T]
		for lo := 0; lo < len(runs); lo += fan {
			hi := lo + fan
			if hi > len(runs) {
				hi = len(runs)
			}
			next = append(next, mergeRuns(m, runs[lo:hi], less))
		}
		runs = next
	}
	return runs[0]
}

// mergeItem is a heap entry for the k-way merge.
type mergeItem[T any] struct {
	v   T
	src int
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int           { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool { return h.less(h.items[i].v, h.items[j].v) }
func (h *mergeHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x any)         { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// mergeRuns k-way merges sorted runs into one sorted run.
func mergeRuns[T any](m *Model, runs []*File[T], less func(a, b T) bool) *File[T] {
	out := NewFile[T](m)
	w := out.NewWriter()
	readers := make([]*Reader[T], len(runs))
	h := &mergeHeap[T]{less: less}
	for i, r := range runs {
		readers[i] = r.NewReader()
		if v, ok := readers[i].Next(); ok {
			h.items = append(h.items, mergeItem[T]{v, i})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := heap.Pop(h).(mergeItem[T])
		w.Append(it.v)
		if v, ok := readers[it.src].Next(); ok {
			heap.Push(h, mergeItem[T]{v, it.src})
		}
	}
	w.Close()
	return out
}
