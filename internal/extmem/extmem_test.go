package extmem

import (
	"math"
	"math/rand"
	"testing"

	"parsum/internal/accum"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func TestFileReaderWriterIOAccounting(t *testing.T) {
	m := NewModel(8, 64)
	f := NewFile[float64](m)
	w := f.NewWriter()
	for i := 0; i < 20; i++ {
		w.Append(float64(i))
	}
	w.Close()
	if m.Writes != 3 { // ⌈20/8⌉
		t.Fatalf("writes = %d, want 3", m.Writes)
	}
	r := f.NewReader()
	n := 0
	for {
		_, ok := r.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 20 || m.Reads != 3 {
		t.Fatalf("read %d records with %d block reads", n, m.Reads)
	}
}

func TestExternalSortCorrectAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 5000} {
		m := NewModel(16, 64) // tiny memory forces multiple merge passes
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		f := FromSlice(m, xs)
		s := ExternalSort(m, f, func(a, b float64) bool { return a < b })
		out := s.Slice()
		if len(out) != n {
			t.Fatalf("n=%d: sorted %d records", n, len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
		if n > 0 {
			// Measured I/Os within a small constant of the textbook bound.
			if m.IOs() > 3*m.SortIOs(int64(n))+10 {
				t.Fatalf("n=%d: %d I/Os exceeds 3·sort(n)=%d", n, m.IOs(), 3*m.SortIOs(int64(n)))
			}
		}
	}
}

func TestScanSumExactAndScanBounded(t *testing.T) {
	for _, d := range gen.AllDists {
		xs := gen.New(gen.Config{Dist: d, N: 20000, Delta: 1500, Seed: 4}).Slice()
		want := oracle.Sum(xs)
		m := NewModel(1024, 8192)
		got, err := ScanSum(m, FromSlice(m, xs), 0)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if got != want {
			t.Fatalf("%v: ScanSum=%g oracle=%g", d, got, want)
		}
		if m.IOs() > m.ScanIOs(int64(len(xs)))+2 {
			t.Fatalf("%v: %d I/Os exceeds scan(n)=%d", d, m.IOs(), m.ScanIOs(int64(len(xs))))
		}
	}
}

func TestScanSumMemoryGate(t *testing.T) {
	// δ=2000 data spans ~63 digit indices at W=32; M=40 records with a
	// window that large must be refused.
	xs := gen.New(gen.Config{Dist: gen.Random, N: 5000, Delta: 2000, Seed: 5}).Slice()
	m := NewModel(10, 40)
	if _, err := ScanSum(m, FromSlice(m, xs), 0); err == nil {
		t.Fatalf("expected ErrMemory for σ > M")
	}
}

func TestSortSumExactOnDistributions(t *testing.T) {
	for _, d := range gen.AllDists {
		for _, delta := range []int{10, 800, 2000} {
			xs := gen.New(gen.Config{Dist: d, N: 8000, Delta: delta, Seed: 6}).Slice()
			want := oracle.Sum(xs)
			m := NewModel(64, 256) // memory far smaller than the data
			got, err := SortSum(m, FromSlice(m, xs), 0)
			if err != nil {
				t.Fatalf("%v δ=%d: %v", d, delta, err)
			}
			if got != want {
				t.Fatalf("%v δ=%d: SortSum=%g oracle=%g", d, delta, got, want)
			}
		}
	}
}

func TestSortSumTinyMemory(t *testing.T) {
	// The hot-window property: SortSum succeeds with M too small for the
	// whole accumulator (ScanSum refuses the same model).
	xs := gen.New(gen.Config{Dist: gen.Random, N: 3000, Delta: 2000, Seed: 7}).Slice()
	m := NewModel(10, 40)
	if _, err := ScanSum(m, FromSlice(m, xs), 0); err == nil {
		t.Fatal("setup: ScanSum should refuse M=40")
	}
	m2 := NewModel(10, 40)
	got, err := SortSum(m2, FromSlice(m2, xs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Sum(xs); got != want {
		t.Fatalf("SortSum=%g oracle=%g", got, want)
	}
}

func TestSortSumNegativeTotalsAndEdges(t *testing.T) {
	cases := [][]float64{
		{},
		{0, 0, 0},
		{-1},
		{-1e300, 1},
		{1e300, -1e300},
		{-0x1p-1074},
		{-0x1p-1074, -0x1p-1074},
		{0x1p1000, -0x1p1000, -0x1p-1000},
		{math.MaxFloat64, math.MaxFloat64}, // overflow → +Inf
		{-math.MaxFloat64, -math.MaxFloat64},
		{math.Inf(1), 5},
		{math.Inf(1), math.Inf(-1)},
		{math.NaN(), 1},
		{-3.5, -4.25, 1e-8},
	}
	for _, xs := range cases {
		want := oracle.Sum(xs)
		m := NewModel(4, 16)
		got, err := SortSum(m, FromSlice(m, xs), 0)
		if err != nil {
			t.Fatalf("%v: %v", xs, err)
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("SortSum(%v) = %g, want %g", xs, got, want)
		}
	}
}

func TestSortSumRandomWidths(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		w := uint(8 + r.Intn(25))
		n := 1 + r.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1800)-900)
		}
		want := oracle.Sum(xs)
		m := NewModel(8, 32)
		got, err := SortSum(m, FromSlice(m, xs), w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d w=%d: SortSum=%g oracle=%g", trial, w, got, want)
		}
	}
}

func TestSortSumIOWithinSortBound(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 50000, Delta: 500, Seed: 9}).Slice()
	m := NewModel(256, 2048)
	if _, err := SortSum(m, FromSlice(m, xs), 0); err != nil {
		t.Fatal(err)
	}
	// Components ≤ 3n; conversion adds scan(n)+scan(3n); spill+rescan add
	// O(scan(σ)). Everything is O(sort(3n)).
	bound := 4 * m.SortIOs(3*int64(len(xs)))
	if m.IOs() > bound {
		t.Fatalf("%d I/Os exceeds 4·sort(3n)=%d", m.IOs(), bound)
	}
}

func TestStreamRounderAgainstDirectRounding(t *testing.T) {
	// Push canonical digit strings at random gaps and compare with direct
	// rounding of the same digits.
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		w := uint(8 + r.Intn(25))
		mask := int64(1)<<w - 1
		nd := 1 + r.Intn(30)
		idx := make([]int, nd)
		digs := make([]int64, nd)
		cur := -40 + r.Intn(10)
		for i := 0; i < nd; i++ {
			cur += 1 + r.Intn(4)
			idx[i] = cur
			digs[i] = r.Int63() & mask
			if digs[i] == 0 {
				digs[i] = 1
			}
		}
		sr := newStreamRounder(w)
		for i := range idx {
			sr.push(idx[i], digs[i])
		}
		got := sr.finish(false)
		// Direct: materialize the whole span.
		lo, hi := idx[0], idx[nd-1]
		win := make([]int64, hi-lo+1)
		for i := range idx {
			win[idx[i]-lo] += digs[i]
		}
		want := roundViaAccum(win, lo, w)
		if got != want {
			t.Fatalf("trial %d w=%d: stream=%g direct=%g", trial, w, got, want)
		}
	}
}

func roundViaAccum(win []int64, minIdx int, w uint) float64 {
	return accumRound(win, minIdx, w)
}

func accumRound(win []int64, minIdx int, w uint) float64 {
	return accum.RoundDigitString(win, minIdx, w)
}
