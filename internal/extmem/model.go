// Package extmem implements the paper's external-memory summation
// algorithms (Section 5) on a simulated I/O model in the style of
// Aggarwal–Vitter: data lives in "files" of fixed-size blocks, an algorithm
// may hold at most M records in internal memory, and the model counts every
// block read and write. ScanSum realizes Theorem 6 (O(scan(n)) I/Os when
// the accumulator fits in memory); SortSum realizes Theorem 5 (O(sort(n))
// I/Os in general, with an O(1)-block hot window over the accumulator, so
// it works even when M is far smaller than the accumulator).
package extmem

// Model is an external-memory cost model: block size B and internal memory
// capacity M, both in records, plus I/O counters. One "record" is a
// float64 or a superaccumulator component; the model charges one read
// (write) per block of B records moved in (out).
type Model struct {
	B int // records per block
	M int // internal memory capacity, in records

	Reads  int64 // blocks read
	Writes int64 // blocks written
}

// NewModel returns a model with the given block size and memory capacity.
// M must be at least 4 blocks for the sort to make progress.
func NewModel(b, m int) *Model {
	if b < 1 {
		panic("extmem: block size must be positive")
	}
	if m < 4*b {
		panic("extmem: internal memory must hold at least four blocks")
	}
	return &Model{B: b, M: m}
}

// IOs returns the total number of block transfers so far.
func (m *Model) IOs() int64 { return m.Reads + m.Writes }

// ScanIOs returns the model's scan(n) = ⌈n/B⌉, the I/O cost of one
// sequential pass over n records.
func (m *Model) ScanIOs(n int64) int64 {
	return (n + int64(m.B) - 1) / int64(m.B)
}

// SortIOs returns the textbook sort(n) bound 2·(n/B)·(1+⌈log_{M/B}(n/M)⌉)
// block transfers (read+write per pass, run formation plus merge passes).
func (m *Model) SortIOs(n int64) int64 {
	if n == 0 {
		return 0
	}
	passes := int64(1) // run formation
	runs := (n + int64(m.M) - 1) / int64(m.M)
	fan := int64(m.B)
	if f := int64(m.M/m.B) - 1; f > 1 {
		fan = f
	} else {
		fan = 2
	}
	for runs > 1 {
		runs = (runs + fan - 1) / fan
		passes++
	}
	return 2 * m.ScanIOs(n) * passes
}

// File is a sequence of records on the simulated disk.
type File[T any] struct {
	m    *Model
	data []T
}

// NewFile returns an empty file in model m.
func NewFile[T any](m *Model) *File[T] { return &File[T]{m: m} }

// FromSlice returns a file pre-populated with xs (representing input that
// is already on disk; no I/Os are charged for creating it).
func FromSlice[T any](m *Model, xs []T) *File[T] { return &File[T]{m: m, data: xs} }

// Len returns the number of records in the file.
func (f *File[T]) Len() int64 { return int64(len(f.data)) }

// Slice exposes the raw records for test verification (no I/O charged;
// tests only).
func (f *File[T]) Slice() []T { return f.data }

// Reader reads a file sequentially, charging one read per block.
type Reader[T any] struct {
	f   *File[T]
	pos int
}

// NewReader returns a sequential reader over f.
func (f *File[T]) NewReader() *Reader[T] { return &Reader[T]{f: f} }

// NewReaderAt returns a sequential reader starting at record off (charging
// reads from the containing block onward).
func (f *File[T]) NewReaderAt(off int64) *Reader[T] { return &Reader[T]{f: f, pos: int(off)} }

// Next returns the next record, charging a read at each block boundary.
func (r *Reader[T]) Next() (T, bool) {
	var zero T
	if r.pos >= len(r.f.data) {
		return zero, false
	}
	if r.pos%r.f.m.B == 0 {
		r.f.m.Reads++
	}
	v := r.f.data[r.pos]
	r.pos++
	return v, true
}

// Writer appends records to a file, charging one write per filled block and
// one for the final partial block on Close.
type Writer[T any] struct {
	f       *File[T]
	pending int
}

// NewWriter returns an appending writer for f.
func (f *File[T]) NewWriter() *Writer[T] { return &Writer[T]{f: f} }

// Append adds one record.
func (w *Writer[T]) Append(v T) {
	w.f.data = append(w.f.data, v)
	w.pending++
	if w.pending == w.f.m.B {
		w.f.m.Writes++
		w.pending = 0
	}
}

// Close flushes the final partial block, if any.
func (w *Writer[T]) Close() {
	if w.pending > 0 {
		w.f.m.Writes++
		w.pending = 0
	}
}
