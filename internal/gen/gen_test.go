package gen

import (
	"math"
	"sync"
	"testing"

	"parsum/internal/accum"
	"parsum/internal/condition"
	"parsum/internal/oracle"
)

func TestDeterministicAndChunkable(t *testing.T) {
	for _, d := range AllDists {
		cfg := Config{Dist: d, N: 1000, Delta: 100, Seed: 42}
		a := New(cfg).Slice()
		b := New(cfg).Slice()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: not deterministic at %d: %g vs %g", d, i, a[i], b[i])
			}
		}
		// Chunked generation must agree with whole-slice generation for
		// any chunk boundaries.
		s := New(cfg)
		c := make([]float64, 1000)
		for off := int64(0); off < 1000; off += 137 {
			end := off + 137
			if end > 1000 {
				end = 1000
			}
			s.Fill(c[off:end], off)
		}
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("%v: chunked generation differs at %d", d, i)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := New(Config{Dist: Random, N: 100, Delta: 50, Seed: 1}).Slice()
	b := New(Config{Dist: Random, N: 100, Delta: 50, Seed: 2}).Slice()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestCondOneProperties(t *testing.T) {
	for _, delta := range []int{1, 10, 500, 2000, 4000} {
		s := New(Config{Dist: CondOne, N: 2000, Delta: delta, Seed: 7})
		lo, hi := s.ExponentRange()
		if hi-lo != EffectiveDelta(delta) {
			t.Fatalf("δ=%d: exponent range [%d,%d) has span %d", delta, lo, hi, hi-lo)
		}
		xs := s.Slice()
		for i, x := range xs {
			if !(x > 0) || math.IsInf(x, 0) {
				t.Fatalf("δ=%d: x[%d] = %g not positive finite", delta, i, x)
			}
			e := int(math.Floor(math.Log2(x)))
			if e < lo || e >= hi {
				t.Fatalf("δ=%d: exponent %d of x[%d]=%g outside [%d,%d)", delta, e, i, x, lo, hi)
			}
		}
		if c := condition.Number(xs); c != 1 {
			t.Fatalf("δ=%d: condition number of positive data = %g, want 1", delta, c)
		}
	}
}

func TestRandomMixesSigns(t *testing.T) {
	xs := New(Config{Dist: Random, N: 4000, Delta: 100, Seed: 3}).Slice()
	pos, neg := 0, 0
	for _, x := range xs {
		if x > 0 {
			pos++
		} else if x < 0 {
			neg++
		}
	}
	if pos < 1500 || neg < 1500 {
		t.Fatalf("sign balance off: %d positive, %d negative", pos, neg)
	}
}

func TestSumZeroIsExactlyZero(t *testing.T) {
	for _, n := range []int64{2, 100, 999, 1000, 12345} {
		xs := New(Config{Dist: SumZero, N: n, Delta: 300, Seed: 9}).Slice()
		w := accum.NewWindow(0)
		w.AddSlice(xs)
		if got := w.Round(); got != 0 {
			t.Fatalf("n=%d: exact sum = %g, want 0", n, got)
		}
	}
}

func TestSumZeroNoAdjacentCancellation(t *testing.T) {
	xs := New(Config{Dist: SumZero, N: 10000, Delta: 300, Seed: 9}).Slice()
	adjacent := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] == -xs[i-1] {
			adjacent++
		}
	}
	// The permutation should scatter negations; a handful of coincidences
	// is fine, wholesale adjacency is not.
	if adjacent > len(xs)/100 {
		t.Fatalf("%d/%d adjacent cancelling pairs — negations not scattered", adjacent, len(xs))
	}
}

func TestAndersonIllConditioned(t *testing.T) {
	s := New(Config{Dist: Anderson, N: 5000, Delta: 40, Seed: 11})
	xs := s.Slice()
	// Mean subtraction: the float sum should be near zero relative to Σ|x|,
	// i.e. the condition number should be large.
	c := condition.Number(xs)
	if !(c > 100) {
		t.Fatalf("Anderson condition number = %g, want ≫ 1", c)
	}
	// The exponent range should collapse to ~log2(n) + O(1) around the
	// mean's exponent regardless of δ (the effect the paper observes in
	// Figure 2, dataset 3).
	minE, maxE := math.MaxInt32, math.MinInt32
	for _, x := range xs {
		if x == 0 {
			continue
		}
		e := int(math.Floor(math.Log2(math.Abs(x))))
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	bigS := New(Config{Dist: Anderson, N: 5000, Delta: 2000, Seed: 11})
	bigXs := bigS.Slice()
	minE2, maxE2 := math.MaxInt32, math.MinInt32
	for _, x := range bigXs {
		if x == 0 {
			continue
		}
		e := int(math.Floor(math.Log2(math.Abs(x))))
		if e < minE2 {
			minE2 = e
		}
		if e > maxE2 {
			maxE2 = e
		}
	}
	// With δ=2000 the raw spread is 2000, but after mean subtraction the
	// spread must be far smaller (dominated by the largest values).
	if maxE2-minE2 > 200 {
		t.Fatalf("Anderson δ=2000 post-subtraction exponent spread = %d, want ≪ δ", maxE2-minE2)
	}
	_ = minE
	_ = maxE
}

func TestEffectiveDeltaClamp(t *testing.T) {
	if EffectiveDelta(0) != 1 || EffectiveDelta(-5) != 1 {
		t.Fatal("EffectiveDelta must clamp below at 1")
	}
	if EffectiveDelta(5000) != 2001 {
		t.Fatalf("EffectiveDelta(5000) = %d, want 2001", EffectiveDelta(5000))
	}
	if EffectiveDelta(2000) != 2000 {
		t.Fatal("EffectiveDelta(2000) changed a legal δ")
	}
}

func TestPermIsBijection(t *testing.T) {
	s := New(Config{Dist: SumZero, N: 2000, Delta: 10, Seed: 5})
	seen := make(map[uint64]bool, 1000)
	for k := uint64(0); k < 1000; k++ {
		p := s.perm(k)
		if p >= 1000 {
			t.Fatalf("perm(%d) = %d out of range", k, p)
		}
		if seen[p] {
			t.Fatalf("perm not injective at %d", k)
		}
		seen[p] = true
	}
}

func TestGeneratedSumsMatchOracle(t *testing.T) {
	for _, d := range AllDists {
		xs := New(Config{Dist: d, N: 3000, Delta: 600, Seed: 13}).Slice()
		w := accum.NewWindow(0)
		w.AddSlice(xs)
		got, want := w.Round(), oracle.Sum(xs)
		if got != want {
			t.Fatalf("%v: accumulator=%g oracle=%g", d, got, want)
		}
	}
}

func TestConditionAgainstOracle(t *testing.T) {
	for _, d := range AllDists {
		xs := New(Config{Dist: d, N: 500, Delta: 80, Seed: 21}).Slice()
		got := condition.Number(xs)
		want := oracle.CondNumber(xs)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("%v: cond=%g, oracle=+Inf", d, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Fatalf("%v: cond=%g oracle=%g (rel %g)", d, got, want, rel)
		}
	}
}

// TestConcurrentFillSafe: Source promises safety for concurrent use;
// Anderson is the interesting case because its mean resolves lazily
// through a sync.Once on first use. Run under -race in CI.
func TestConcurrentFillSafe(t *testing.T) {
	for _, d := range AllDists {
		s := New(Config{Dist: d, N: 4096, Delta: 400, Seed: 8})
		want := s.At(0) // also resolves the Anderson mean up front on one path
		var wg sync.WaitGroup
		chunks := make([][]float64, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				chunks[w] = make([]float64, 512)
				s.Fill(chunks[w], int64(w)*512)
			}(w)
		}
		wg.Wait()
		if chunks[0][0] != want {
			t.Fatalf("%v: concurrent Fill diverged at 0", d)
		}
		for w, c := range chunks {
			for j, x := range c {
				if got := s.At(int64(w)*512 + int64(j)); got != x {
					t.Fatalf("%v: concurrent Fill diverged at %d", d, w*512+j)
				}
			}
		}
	}
}

// TestAdversarialTinyConfigs: degenerate sizes must not panic and must
// keep each distribution's defining property.
func TestAdversarialTinyConfigs(t *testing.T) {
	for _, d := range AllDists {
		for _, n := range []int64{0, 1, 2, 3} {
			s := New(Config{Dist: d, N: n, Delta: 1, Seed: 1})
			xs := s.Slice()
			if int64(len(xs)) != n {
				t.Fatalf("%v n=%d: got %d values", d, n, len(xs))
			}
			for i, x := range xs {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%v n=%d: x[%d]=%g", d, n, i, x)
				}
			}
		}
	}
	// SumZero's defining property at the smallest sizes: odd N pads with a
	// zero, so every N still sums to exactly zero.
	for _, n := range []int64{1, 2, 3} {
		xs := New(Config{Dist: SumZero, N: n, Delta: 1, Seed: 1}).Slice()
		w := accum.NewWindow(0)
		w.AddSlice(xs)
		if got := w.Round(); got != 0 {
			t.Fatalf("SumZero n=%d: sum=%g", n, got)
		}
	}
}

// TestFullDeltaAgainstOracle pins the adversarial full-exponent-range
// configuration (δ at the clamp) for every distribution against the
// math/big oracle — the harshest inputs the benchmark harness generates.
func TestFullDeltaAgainstOracle(t *testing.T) {
	for _, d := range AllDists {
		xs := New(Config{Dist: d, N: 2000, Delta: 5000, Seed: 31}).Slice()
		w := accum.NewWindow(0)
		w.AddSlice(xs)
		if got, want := w.Round(), oracle.Sum(xs); got != want {
			t.Fatalf("%v at clamped δ: accumulator=%g oracle=%g", d, got, want)
		}
	}
}
