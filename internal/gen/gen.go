// Package gen generates the four input distributions used by the paper's
// experimental evaluation (after Zhu & Hayes):
//
//  1. CondOne — randomly generated positive numbers (condition number 1).
//  2. Random — a mix of positive and negative numbers, uniform at random.
//  3. Anderson — Anderson's ill-conditioned data: random positive numbers
//     with their (floating-point) arithmetic mean subtracted from each.
//  4. SumZero — numbers whose exact real sum is zero.
//
// Each distribution is parameterized by δ, an upper bound on the range of
// input exponents (the paper's δ, at most ~2046 for doubles), and a seed.
// Generation is deterministic and chunk-addressable: Fill(dst, off)
// produces the same values for the same configuration regardless of chunk
// boundaries, so MapReduce splits can generate their own input in parallel
// — the in-memory analogue of the paper's pre-loaded HDFS blocks.
package gen

import (
	"fmt"
	"math"
	"sync"

	"parsum/internal/accum"
)

// Dist selects one of the paper's four input distributions.
type Dist int

// The four distributions of the paper's Section 6.3, in its order.
const (
	CondOne Dist = iota
	Random
	Anderson
	SumZero
)

// String returns the name used in the paper's figures.
func (d Dist) String() string {
	switch d {
	case CondOne:
		return "C(X)=1"
	case Random:
		return "Random"
	case Anderson:
		return "Anderson's"
	case SumZero:
		return "Sum=Zero"
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// AllDists lists the four distributions in the paper's presentation order.
var AllDists = []Dist{CondOne, Random, Anderson, SumZero}

// Config describes a dataset.
type Config struct {
	Dist  Dist
	N     int64  // number of values
	Delta int    // exponent-range parameter δ (≥ 1); see ExponentRange
	Seed  uint64 // PRNG seed; datasets with equal configs are identical
}

// Source generates a dataset deterministically. It is safe for concurrent
// use by multiple goroutines.
type Source struct {
	cfg      Config
	loE      int // inclusive lower bound of generated exponents
	permA    uint64
	permMask uint64
	meanOnce sync.Once
	mean     float64
}

// exponent placement: the generated exponent range is [loE, loE+δ).
// It is centered on zero when δ allows, and clamped to [minGenExp, maxGenExp]
// so that (a) values stay normal and (b) positive sums of up to ~2^40
// summands cannot overflow (maxGenExp + 1 + 40 < 1024).
const (
	minGenExp = -1021
	maxGenExp = 979
)

// EffectiveDelta returns the exponent span actually generated: δ clamped to
// the usable double-precision range (maxGenExp − minGenExp + 1 = 2001; the
// paper notes δ ≤ 2046 for doubles, our clamp additionally keeps positive
// sums finite — see DESIGN.md).
func EffectiveDelta(delta int) int {
	if delta < 1 {
		return 1
	}
	if max := maxGenExp - minGenExp + 1; delta > max {
		return max
	}
	return delta
}

// New returns a Source for cfg.
func New(cfg Config) *Source {
	if cfg.N < 0 {
		panic("gen: negative N")
	}
	d := EffectiveDelta(cfg.Delta)
	cfg.Delta = d
	lo := -d / 2
	if lo < minGenExp {
		lo = minGenExp
	}
	if lo+d-1 > maxGenExp {
		lo = maxGenExp - d + 1
	}
	s := &Source{cfg: cfg, loE: lo}
	// Parameters for the index bijection used by SumZero (see perm).
	m := uint64(cfg.N / 2)
	s.permMask = 1
	for s.permMask < m {
		s.permMask = s.permMask<<1 | 1
	}
	s.permA = splitmix(cfg.Seed ^ 0xA5A5A5A5DEADBEEF)
	return s
}

// Config returns the source's (normalized) configuration.
func (s *Source) Config() Config { return s.cfg }

// ExponentRange returns the half-open exponent range [lo, hi) of generated
// values before any mean subtraction.
func (s *Source) ExponentRange() (lo, hi int) { return s.loE, s.loE + s.cfg.Delta }

// splitmix is the splitmix64 mixing function: a bijective 64-bit hash used
// as a counter-mode PRNG so any index can be generated independently.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// raw returns the i-th base value: positive, mantissa uniform in [1, 2),
// exponent uniform in [loE, loE+δ).
func (s *Source) raw(i int64) float64 {
	h := splitmix(s.cfg.Seed + uint64(i)*0x9E3779B97F4A7C15)
	mant := 1 + float64(h>>11)*0x1p-53 // 53 bits → [1, 2)
	e := int(splitmix(h) % uint64(s.cfg.Delta))
	return math.Ldexp(mant, s.loE+e)
}

// sign returns a deterministic pseudo-random sign for index i.
func (s *Source) sign(i int64) float64 {
	if splitmix(s.cfg.Seed^uint64(i)*0xD1342543DE82EF95)&1 == 0 {
		return 1
	}
	return -1
}

// perm is a bijection on [0, N/2) built from a multiplicative bit-mix on
// the enclosing power-of-two domain with cycle walking. SumZero uses it to
// place each value's exact negation far from the value itself.
func (s *Source) perm(k uint64) uint64 {
	m := uint64(s.cfg.N / 2)
	if m <= 1 {
		return 0
	}
	x := k
	for {
		x = (x*0x9E3779B97F4A7C15 + s.permA) & s.permMask
		x ^= x >> 7
		x = (x * 0xBF58476D1CE4E5B9) & s.permMask
		x ^= x >> 11
		x &= s.permMask
		if x < m {
			return x
		}
	}
}

// At returns the i-th value of the dataset, 0 ≤ i < N.
func (s *Source) At(i int64) float64 {
	switch s.cfg.Dist {
	case CondOne:
		return s.raw(i)
	case Random:
		return s.sign(i) * s.raw(i)
	case Anderson:
		return s.raw(i) - s.Mean()
	case SumZero:
		// Odd N: the final element is 0 so pairs cancel exactly.
		if i == s.cfg.N-1 && s.cfg.N%2 == 1 {
			return 0
		}
		k := uint64(i) / 2
		if i%2 == 0 {
			return s.raw(int64(k))
		}
		return -s.raw(int64(s.perm(k)))
	}
	panic("gen: unknown distribution")
}

// Fill writes values At(off) … At(off+len(dst)−1) into dst.
func (s *Source) Fill(dst []float64, off int64) {
	if s.cfg.Dist == Anderson {
		s.Mean() // resolve once, outside the hot loop
	}
	for j := range dst {
		dst[j] = s.At(off + int64(j))
	}
}

// Slice materializes the whole dataset. Intended for n small enough to fit
// comfortably in memory.
func (s *Source) Slice() []float64 {
	xs := make([]float64, s.cfg.N)
	s.Fill(xs, 0)
	return xs
}

// Mean returns the floating-point arithmetic mean of the raw values — the
// quantity Anderson's distribution subtracts. It is computed exactly (exact
// sum, one rounding, one division) on first use and cached.
func (s *Source) Mean() float64 {
	s.meanOnce.Do(func() {
		if s.cfg.N == 0 {
			return
		}
		w := accum.NewWindow(0)
		for i := int64(0); i < s.cfg.N; i++ {
			w.Add(s.raw(i))
		}
		s.mean = w.Round() / float64(s.cfg.N)
	})
	return s.mean
}
