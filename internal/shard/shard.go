// Package shard implements the concurrent, long-lived ingestion layer: a
// sharded many-writer accumulator in which any number of goroutines
// Add/AddBatch values with (nearly) no contention, while Snapshot/Sum
// produce the correctly rounded exact sum of everything ingested so far —
// bit-identical regardless of shard count, writer interleaving, or
// snapshot timing.
//
// The determinism is not a scheduling property but an algebraic one,
// inherited from the paper's superaccumulator representation: every value
// lands in exactly one per-shard accumulator, per-shard accumulation and
// cross-shard merges are exact (the backing engine declares
// DeterministicParallel), and rounding happens once at the end. Any
// partition of the same multiset of inputs therefore merges to the same
// exact sum, so the only nondeterminism a concurrent Snapshot can observe
// is *which* racing Adds it includes — never the value a given set of
// Adds produces.
//
// Mechanically, writers stripe across shards through a sync.Pool of shard
// tokens (per-P locality keeps two running goroutines on different shards
// almost always), each shard guards its live accumulator with a mutex
// that is uncontended in the steady state, and Snapshot performs a
// read-while-write handoff: it swaps every shard's live accumulator for a
// pooled empty one, folds the taken partials through the log-depth
// Lemma 1 merge tree (core.MergeTree) into a base accumulator, and
// recycles the partials. Writers never block on the fold — only on the
// per-shard pointer swap.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"parsum/internal/core"
	"parsum/internal/engine"
)

// ErrEngineMismatch is returned by MergeBytes when a wire partial was
// produced by a different engine than the one backing the accumulator.
var ErrEngineMismatch = errors.New("shard: partial engine does not match accumulator engine")

// Options configures a Sharded accumulator; the zero value is ready to
// use (dense engine, one shard per P).
type Options struct {
	// Engine names the registered summation engine backing every shard;
	// "" means the dense superaccumulator. The engine must declare both
	// Streaming and DeterministicParallel — those capabilities are exactly
	// the contract that makes sharded ingestion deterministic.
	Engine string
	// Shards is the number of independent writer stripes; 0 means
	// GOMAXPROCS. More shards than concurrently running writers buys
	// nothing; fewer serializes writers onto shared locks (still correct,
	// just slower).
	Shards int
}

// slot is one shard: a mutex-guarded live accumulator, padded so
// neighbouring shards do not false-share a cache line.
type slot struct {
	mu  sync.Mutex
	acc engine.Accumulator
	_   [40]byte // Mutex(8) + interface(16) + 40 = 64
}

// token is a writer's cached shard assignment, recycled through a
// sync.Pool so goroutines on the same P keep hitting the same shard.
type token struct{ idx uint32 }

// Sharded is a many-writer accumulator with deterministic snapshots. All
// methods are safe for concurrent use. The zero value is not usable;
// construct with New.
type Sharded struct {
	eng    engine.Engine
	inv    bool // engine declares Invertible: Sub/SubBatch are available
	shards []slot

	tokens sync.Pool     // *token — striped shard assignment
	rr     atomic.Uint32 // round-robin seed for new tokens

	// snapMu serializes Snapshot/Sum/Reset/Merge and guards base, which
	// holds everything folded out of the shards by earlier snapshots.
	snapMu sync.Mutex
	base   engine.Accumulator

	accPool sync.Pool // recycled empty accumulators for shard handoff
}

// New returns an empty Sharded accumulator. It errors when the engine is
// unknown or does not declare the Streaming and DeterministicParallel
// capabilities a deterministic sharded accumulator requires.
func New(opt Options) (*Sharded, error) {
	name := opt.Engine
	if name == "" {
		name = core.EngineDense
	}
	e, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("shard: unknown engine %q (registered: %v)", name, engine.Names())
	}
	if caps := e.Caps(); !caps.Streaming || !caps.DeterministicParallel {
		return nil, fmt.Errorf("shard: engine %q cannot back a sharded accumulator (needs Streaming and DeterministicParallel; has Streaming=%v DeterministicParallel=%v)",
			name, caps.Streaming, caps.DeterministicParallel)
	}
	n := opt.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{eng: e, inv: e.Caps().Invertible, shards: make([]slot, n), base: e.NewAccumulator()}
	for i := range s.shards {
		s.shards[i].acc = e.NewAccumulator()
	}
	return s, nil
}

// Engine returns the name of the backing engine.
func (s *Sharded) Engine() string { return s.eng.Name() }

// Invertible reports whether the backing engine supports exact deletion
// (Sub/SubBatch). All the superaccumulator engines do.
func (s *Sharded) Invertible() bool { return s.inv }

// checkInvertible panics when the backing engine cannot delete — mixing up
// engines is a programming error, like Merge's engine-mismatch panic.
func (s *Sharded) checkInvertible() {
	if !s.inv {
		panic(fmt.Sprintf("shard: engine %q is not invertible (no exact deletion)", s.eng.Name()))
	}
}

// Shards returns the number of writer stripes.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) fresh() engine.Accumulator {
	if v := s.accPool.Get(); v != nil {
		return v.(engine.Accumulator)
	}
	return s.eng.NewAccumulator()
}

func (s *Sharded) recycle(a engine.Accumulator) {
	a.Reset()
	s.accPool.Put(a)
}

// Add accumulates x exactly into one shard.
func (s *Sharded) Add(x float64) {
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	sl.acc.Add(x)
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// AddBatch accumulates every element of xs exactly into one shard. It is
// the high-throughput ingestion call: one striped-lock acquisition per
// batch, amortizing the shard handoff cost across len(xs) values.
func (s *Sharded) AddBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	sl.acc.AddSlice(xs)
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// AddBatches accumulates every slice in batches exactly into one shard
// under a single striped-lock acquisition. It is the batcher's flush
// entry point (batch.SliceSink): a coalesced flush group applies
// without concatenating request bodies, for the same accumulation work
// the slices would have cost individually minus the per-request
// locking. Exactness is unaffected — each value still lands in exactly
// one shard accumulator.
func (s *Sharded) AddBatches(batches [][]float64) {
	if len(batches) == 0 {
		return
	}
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	for _, xs := range batches {
		sl.acc.AddSlice(xs)
	}
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// SubBatches deletes every slice in batches exactly under a single
// striped-lock acquisition — the deletion half of the batcher's flush
// entry point. Panics when the engine is not Invertible.
func (s *Sharded) SubBatches(batches [][]float64) {
	s.checkInvertible()
	if len(batches) == 0 {
		return
	}
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	inv := sl.acc.(engine.Inverter)
	for _, xs := range batches {
		inv.SubSlice(xs)
	}
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// Sub deletes x from the accumulated sum exactly, landing in one shard.
// Deletion is as exact as insertion (the backing representation is a
// group): any interleaving of adds and subs that leaves the same multiset
// snapshots to the same bits. Panics when the engine is not Invertible.
func (s *Sharded) Sub(x float64) {
	s.checkInvertible()
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	sl.acc.(engine.Inverter).Sub(x)
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// SubBatch deletes every element of xs exactly, amortizing the shard
// handoff over the batch like AddBatch. Panics when the engine is not
// Invertible.
func (s *Sharded) SubBatch(xs []float64) {
	s.checkInvertible()
	if len(xs) == 0 {
		return
	}
	t, _ := s.tokens.Get().(*token)
	if t == nil {
		t = &token{idx: s.rr.Add(1) % uint32(len(s.shards))}
	}
	sl := &s.shards[t.idx]
	sl.mu.Lock()
	sl.acc.(engine.Inverter).SubSlice(xs)
	sl.mu.Unlock()
	s.tokens.Put(t)
}

// Writer returns a handle pinned to one shard, assigned round-robin.
// Dedicated long-lived writers that keep a Writer each avoid even the
// token-pool hop of Sharded.Add; up to ⌈writers/shards⌉ writers share a
// stripe (and its lock).
func (s *Sharded) Writer() *Writer {
	return &Writer{s: s, sl: &s.shards[s.rr.Add(1)%uint32(len(s.shards))]}
}

// Writer is a shard-pinned ingestion handle; safe for concurrent use,
// though its point is one goroutine owning it.
type Writer struct {
	s  *Sharded
	sl *slot
}

// Add accumulates x exactly into the writer's shard.
func (w *Writer) Add(x float64) {
	w.sl.mu.Lock()
	w.sl.acc.Add(x)
	w.sl.mu.Unlock()
}

// AddBatch accumulates every element of xs exactly into the writer's shard.
func (w *Writer) AddBatch(xs []float64) {
	w.sl.mu.Lock()
	w.sl.acc.AddSlice(xs)
	w.sl.mu.Unlock()
}

// Sub deletes x exactly from the writer's shard (see Sharded.Sub). Panics
// when the engine is not Invertible.
func (w *Writer) Sub(x float64) {
	w.s.checkInvertible()
	w.sl.mu.Lock()
	w.sl.acc.(engine.Inverter).Sub(x)
	w.sl.mu.Unlock()
}

// SubBatch deletes every element of xs exactly from the writer's shard.
// Panics when the engine is not Invertible.
func (w *Writer) SubBatch(xs []float64) {
	w.s.checkInvertible()
	w.sl.mu.Lock()
	w.sl.acc.(engine.Inverter).SubSlice(xs)
	w.sl.mu.Unlock()
}

// drain swaps every shard's live accumulator for a pooled empty one and
// returns the taken partials. Each swap is the linearization point for
// that shard: an Add that completed before it is in the returned partial,
// one that starts after it lands in the fresh accumulator.
func (s *Sharded) drain() []engine.Accumulator {
	parts := make([]engine.Accumulator, len(s.shards))
	for i := range s.shards {
		sl := &s.shards[i]
		sl.mu.Lock()
		parts[i] = sl.acc
		sl.acc = s.fresh()
		sl.mu.Unlock()
	}
	return parts
}

// foldLocked drains the shards and merges the partials into base through
// the log-depth Lemma 1 merge tree. Caller holds snapMu.
func (s *Sharded) foldLocked() {
	delta := core.MergeTree(s.drain(), func(dst, src engine.Accumulator) engine.Accumulator {
		dst.Merge(src)
		s.recycle(src)
		return dst
	})
	s.base.Merge(delta)
	s.recycle(delta)
}

// Snapshot returns the correctly rounded exact sum of every Add/AddBatch
// that completed before it, without disturbing ingestion: writers block
// only for their own shard's accumulator swap, never for the merge or the
// rounding. The value is bit-identical to summing the same inputs
// sequentially, for every shard count and interleaving.
func (s *Sharded) Snapshot() float64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.foldLocked()
	return s.base.Round()
}

// Sum is Snapshot: the correctly rounded exact sum ingested so far.
func (s *Sharded) Sum() float64 { return s.Snapshot() }

// Reset empties the accumulator. Adds racing with Reset land before or
// after it per shard (each shard's swap is its linearization point).
func (s *Sharded) Reset() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for _, p := range s.drain() {
		s.recycle(p)
	}
	s.base.Reset()
}

// SnapshotBytes folds everything ingested so far and returns its exact
// value as a versioned wire partial (engine.MarshalPartial), suitable for
// shipping to a remote merge service. Like Snapshot it does not disturb
// ingestion, and the encoded value covers every Add/AddBatch that
// completed before the per-shard swaps. It errors only when the backing
// engine's accumulators cannot marshal (see engine.CanMarshal).
func (s *Sharded) SnapshotBytes() ([]byte, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.foldLocked()
	return engine.MarshalPartial(s.eng.Name(), s.base)
}

// MergeBytes decodes a wire partial and folds its exact contents into s —
// the reducer half of the paper's combiner→reducer exchange. Unlike Merge,
// which panics on programmer error, MergeBytes returns errors: the payload
// is remote input, and a malformed or engine-mismatched partial must not
// take the process down. The merge is exact, so pushing the same set of
// partials in any order yields a bit-identical Sum.
func (s *Sharded) MergeBytes(data []byte) error {
	name, acc, err := engine.UnmarshalPartial(data)
	if err != nil {
		return err
	}
	if name != s.eng.Name() {
		return fmt.Errorf("%w (partial %q, accumulator %q)", ErrEngineMismatch, name, s.eng.Name())
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.base.Merge(acc)
	return nil
}

// mergeMu serializes cross-instance merges so concurrent a.Merge(b) and
// b.Merge(a) cannot deadlock on the two snapMu locks.
var mergeMu sync.Mutex

// Merge folds the exact contents of o into s; o's value is unchanged and
// o remains usable. Both sides must be backed by the same engine; mixing
// engines panics (the same contract as Accumulator.Merge). Adds racing on
// either side land in that side's post-merge state per their shard swap.
func (s *Sharded) Merge(o *Sharded) {
	if s == o {
		panic("shard: Merge of a Sharded with itself")
	}
	if s.eng.Name() != o.eng.Name() {
		panic(fmt.Sprintf("shard: engine mismatch in Merge (%s vs %s)", s.eng.Name(), o.eng.Name()))
	}
	mergeMu.Lock()
	defer mergeMu.Unlock()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	o.snapMu.Lock()
	defer o.snapMu.Unlock()
	o.foldLocked()
	s.base.Merge(o.base)
}
