package shard_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	_ "parsum/internal/core" // register superaccumulator engines
	"parsum/internal/engine"
	"parsum/internal/oracle"
	"parsum/internal/shard"
)

func wireValues(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1200)-600)
	}
	return xs
}

// TestSnapshotMergeBytesRoundTrip: a partial exported from one Sharded and
// merged into another must contribute exactly, for every wire-capable
// sharded engine.
func TestSnapshotMergeBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, eng := range []string{"dense", "sparse", "small", "large"} {
		t.Run(eng, func(t *testing.T) {
			xs := wireValues(r, 5000)
			a, err := shard.New(shard.Options{Engine: eng, Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			b, err := shard.New(shard.Options{Engine: eng, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			a.AddBatch(xs[:2000])
			b.AddBatch(xs[2000:])
			blob, err := b.SnapshotBytes()
			if err != nil {
				t.Fatal(err)
			}
			if err := a.MergeBytes(blob); err != nil {
				t.Fatal(err)
			}
			want := oracle.Sum(xs)
			got := a.Sum()
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("merged sum=%g oracle=%g", got, want)
			}
			// b is unchanged and remains usable.
			w2 := oracle.Sum(xs[2000:])
			if g2 := b.Sum(); g2 != w2 {
				t.Fatalf("source sharded changed by SnapshotBytes: %g != %g", g2, w2)
			}
		})
	}
}

// TestMergeBytesConcurrentPushersBitIdentical: many goroutines pushing
// serialized partials while others ingest raw values must still produce
// the oracle's bits — the distributed determinism claim at the shard
// layer.
func TestMergeBytesConcurrentPushersBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := wireValues(r, 12000)
	s, err := shard.New(shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const pushers = 8
	slice := len(xs) / (pushers + 1)
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		part := xs[p*slice : (p+1)*slice]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := shard.New(shard.Options{Shards: 2})
			if err != nil {
				t.Error(err)
				return
			}
			w.AddBatch(part)
			blob, err := w.SnapshotBytes()
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.MergeBytes(blob); err != nil {
				t.Error(err)
			}
		}()
	}
	// One direct ingester racing the pushers, plus mid-flight snapshots.
	rest := xs[pushers*slice:]
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.AddBatch(rest)
	}()
	go func() {
		defer wg.Done()
		_ = s.Sum()
		if _, err := s.SnapshotBytes(); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if got, want := s.Sum(), oracle.Sum(xs); got != want {
		t.Fatalf("concurrent merged sum=%g oracle=%g", got, want)
	}
}

func TestMergeBytesRejectsBadInput(t *testing.T) {
	s, err := shard.New(shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1)
	if err := s.MergeBytes(nil); err == nil {
		t.Error("nil payload accepted")
	}
	if err := s.MergeBytes([]byte{0xC7, 1, 0xFF}); err == nil {
		t.Error("garbage payload accepted")
	}
	// Engine mismatch: a sparse partial into a dense-backed Sharded.
	o, err := shard.New(shard.Options{Engine: "sparse"})
	if err != nil {
		t.Fatal(err)
	}
	o.Add(2)
	blob, err := o.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MergeBytes(blob); err == nil {
		t.Error("cross-engine partial accepted")
	}
	// The failed merges must not have corrupted s.
	if got := s.Sum(); got != 1 {
		t.Fatalf("rejected merges changed the sum: %g", got)
	}
}

// TestSnapshotBytesIsAPartial pins that the exported payload decodes at
// the engine layer to the same exact value Snapshot rounds.
func TestSnapshotBytesIsAPartial(t *testing.T) {
	s, err := shard.New(shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{1e300, -1e300, 1e-300, 42.0625, -0x1p-1070}
	s.AddBatch(xs)
	blob, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	name, acc, err := engine.UnmarshalPartial(blob)
	if err != nil {
		t.Fatal(err)
	}
	if name != s.Engine() {
		t.Fatalf("partial engine %q, sharded engine %q", name, s.Engine())
	}
	if got, want := acc.Round(), oracle.Sum(xs); got != want {
		t.Fatalf("decoded partial=%g oracle=%g", got, want)
	}
}
