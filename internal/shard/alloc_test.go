package shard

import (
	"testing"

	"parsum/internal/gen"
)

// TestAddBatchZeroAlloc asserts the high-throughput ingestion call is
// allocation-free in the steady state: the shard token recycles through
// its pool and the block-structured AddSlice runs on the shard
// accumulator's existing digit array.
func TestAddBatchZeroAlloc(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 4096, Delta: 2000, Seed: 11}).Slice()
	s, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() { s.AddBatch(xs) }); avg != 0 {
		t.Fatalf("Sharded.AddBatch allocates %.1f times per call, want 0", avg)
	}
	w := s.Writer()
	if avg := testing.AllocsPerRun(50, func() { w.AddBatch(xs) }); avg != 0 {
		t.Fatalf("ShardedWriter.AddBatch allocates %.1f times per call, want 0", avg)
	}
}
