package shard

import (
	"math"
	"sync"
	"testing"

	"parsum/internal/engine"
	"parsum/internal/gen"
)

// TestSubRestoresSnapshotBits: ingesting a∪b then deleting b — through
// every combination of Sub/SubBatch on the striped and writer-pinned paths
// — snapshots bit-identically to ingesting a alone, for every engine that
// can back a window.
func TestSubRestoresSnapshotBits(t *testing.T) {
	a := dataset(t, gen.Random, 3000, 51)
	b := dataset(t, gen.SumZero, 2000, 52)
	b = append(b, math.Inf(1), math.NaN(), math.Inf(-1))
	for _, name := range []string{"dense", "sparse", "small", "large"} {
		want := engine.MustGet(name).Sum(a)
		for _, shards := range []int{1, 4} {
			s, err := New(Options{Engine: name, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if !s.Invertible() {
				t.Fatalf("%s: Invertible() = false", name)
			}
			s.AddBatch(a)
			s.AddBatch(b[:len(b)/2])
			for _, x := range b[len(b)/2:] {
				s.Add(x)
			}
			// Delete b back out through all three deletion surfaces.
			third := len(b) / 3
			s.SubBatch(b[:third])
			for _, x := range b[third : 2*third] {
				s.Sub(x)
			}
			w := s.Writer()
			w.SubBatch(b[2*third : 2*third+(len(b)-2*third)/2])
			for _, x := range b[2*third+(len(b)-2*third)/2:] {
				w.Sub(x)
			}
			if got := s.Sum(); !bitEqual(got, want) {
				t.Fatalf("%s shards=%d: %x != %x", name, shards,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestSubConcurrentWithSnapshots races adders, deleters, and snapshotters;
// the quiesced sum must be the sequential sum of the surviving multiset.
func TestSubConcurrentWithSnapshots(t *testing.T) {
	keep := dataset(t, gen.Anderson, 4000, 61)
	churn := dataset(t, gen.Random, 4000, 62)
	s, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(keep); i += 4 {
				s.Add(keep[i])
			}
			// Churn: add then fully delete a slice of values.
			var mine []float64
			for i := g; i < len(churn); i += 4 {
				mine = append(mine, churn[i])
			}
			s.AddBatch(mine)
			s.SubBatch(mine)
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = s.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	want := engine.MustGet("dense").Sum(keep)
	if got := s.Sum(); !bitEqual(got, want) {
		t.Fatalf("churned sum %x != %x", math.Float64bits(got), math.Float64bits(want))
	}
}

// TestSubPanicsWithoutInvertibleEngine pins the failure mode for engines
// that cannot delete. No registered engine is Streaming+Deterministic but
// not Invertible, so construct the panic through the internal flag.
func TestSubPanicsWithoutInvertibleEngine(t *testing.T) {
	s, err := New(Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.inv = false // simulate a non-invertible streaming engine
	for name, fn := range map[string]func(){
		"Sub":             func() { s.Sub(1) },
		"SubBatch":        func() { s.SubBatch([]float64{1}) },
		"Writer.Sub":      func() { s.Writer().Sub(1) },
		"Writer.SubBatch": func() { s.Writer().SubBatch([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on non-invertible engine did not panic", name)
				}
			}()
			fn()
		}()
	}
	if s.Invertible() {
		t.Error("Invertible() should report false")
	}
}

// TestSubBatchEmpty: deleting nothing is a no-op, not a lock dance.
func TestSubBatchEmpty(t *testing.T) {
	s, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(2.5)
	s.SubBatch(nil)
	if got := s.Sum(); got != 2.5 {
		t.Fatalf("SubBatch(nil) changed sum: %g", got)
	}
}
