package shard

import (
	"math"
	"sync"
	"testing"

	_ "parsum/internal/baseline" // register baseline engines (for rejection tests)
	"parsum/internal/core"
	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func bitEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func dataset(t *testing.T, d gen.Dist, n int64, seed uint64) []float64 {
	t.Helper()
	return gen.New(gen.Config{Dist: d, N: n, Delta: 1200, Seed: seed}).Slice()
}

func TestNewRejectsBadEngines(t *testing.T) {
	if _, err := New(Options{Engine: "no-such-engine"}); err == nil {
		t.Error("unknown engine accepted")
	}
	// adaptive is registered but neither streaming nor parallel-deterministic.
	if _, err := New(Options{Engine: "adaptive"}); err == nil {
		t.Error("non-streaming engine accepted")
	}
	// kahan streams nothing and merges nothing exactly.
	if _, err := New(Options{Engine: "kahan"}); err == nil {
		t.Error("non-deterministic engine accepted")
	}
}

func TestDefaults(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != core.EngineDense {
		t.Errorf("default engine = %q, want %q", s.Engine(), core.EngineDense)
	}
	if s.Shards() < 1 {
		t.Errorf("default shards = %d", s.Shards())
	}
	if got := s.Sum(); got != 0 {
		t.Errorf("empty Sum = %g, want 0", got)
	}
}

// TestBitIdenticalAcrossShardCounts: for every shard count and both the
// token-striped and Writer-pinned paths, the concurrent sum must be
// bit-identical to the sequential engine and to the math/big oracle.
func TestBitIdenticalAcrossShardCounts(t *testing.T) {
	for _, engName := range []string{"dense", "sparse", "small", "large"} {
		for _, d := range gen.AllDists {
			xs := dataset(t, d, 20000, 17)
			want := oracle.Sum(xs)
			for _, shards := range []int{1, 2, 4, 8} {
				s, err := New(Options{Engine: engName, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				for w := 0; w < 2*shards; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						wr := s.Writer()
						for i := w; i < len(xs); i += 2 * shards {
							if i%2 == 0 {
								wr.Add(xs[i])
							} else {
								s.Add(xs[i]) // exercise the striped-token path too
							}
						}
					}(w)
				}
				wg.Wait()
				if got := s.Sum(); !bitEqual(got, want) {
					t.Fatalf("%s/%v shards=%d: Sum=%g oracle=%g", engName, d, shards, got, want)
				}
				// Sum must be repeatable (non-destructive snapshot).
				if got := s.Snapshot(); !bitEqual(got, want) {
					t.Fatalf("%s/%v shards=%d: second Snapshot diverged", engName, d, shards)
				}
			}
		}
	}
}

// TestAddBatchMatchesAdd: batched ingestion produces the same bits as
// element-wise ingestion.
func TestAddBatchMatchesAdd(t *testing.T) {
	xs := dataset(t, gen.SumZero, 10000, 3)
	a, _ := New(Options{Shards: 4})
	b, _ := New(Options{Shards: 4})
	for _, x := range xs {
		a.Add(x)
	}
	for off := 0; off < len(xs); off += 257 {
		end := min(off+257, len(xs))
		b.AddBatch(xs[off:end])
	}
	if av, bv := a.Sum(), b.Sum(); !bitEqual(av, bv) {
		t.Fatalf("Add=%g AddBatch=%g", av, bv)
	}
}

// TestSnapshotMidIngestion: snapshots taken while the accumulator is
// mid-stream (more data coming) must be bit-identical to the oracle over
// exactly the data ingested so far.
func TestSnapshotMidIngestion(t *testing.T) {
	xs := dataset(t, gen.Random, 30000, 23)
	s, _ := New(Options{Shards: 4})
	const phases = 5
	per := len(xs) / phases
	for p := 0; p < phases; p++ {
		lo, hi := p*per, (p+1)*per
		if p == phases-1 {
			hi = len(xs)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := lo + w; i < hi; i += 8 {
					s.Add(xs[i])
				}
			}(w)
		}
		wg.Wait()
		if got, want := s.Snapshot(), oracle.Sum(xs[:hi]); !bitEqual(got, want) {
			t.Fatalf("phase %d: snapshot=%g oracle=%g", p, got, want)
		}
	}
}

// TestConcurrentSnapshotsDoNotPerturb: snapshots racing with writers must
// not change what the final sum converges to, and every racing snapshot
// must itself be a correctly rounded sum of a subset — checked here for
// the all-positive distribution, where any subset sum lies in [0, total].
func TestConcurrentSnapshotsDoNotPerturb(t *testing.T) {
	xs := dataset(t, gen.CondOne, 20000, 29)
	want := oracle.Sum(xs)
	s, _ := New(Options{Shards: 4})
	done := make(chan struct{})
	var snaps []float64
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-done:
				return
			default:
				snaps = append(snaps, s.Snapshot())
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += 4 {
				s.Add(xs[i])
			}
		}(w)
	}
	wg.Wait()
	close(done)
	snapWg.Wait()
	if got := s.Sum(); !bitEqual(got, want) {
		t.Fatalf("final Sum=%g oracle=%g", got, want)
	}
	prev := 0.0
	for i, v := range snaps {
		if v < 0 || v > want {
			t.Fatalf("snapshot %d = %g outside [0, %g]", i, v, want)
		}
		if v < prev { // all inputs positive → snapshots are monotone
			t.Fatalf("snapshot %d = %g < previous %g on positive data", i, v, prev)
		}
		prev = v
	}
}

func TestResetAndReuse(t *testing.T) {
	xs := dataset(t, gen.Random, 5000, 31)
	s, _ := New(Options{Shards: 2})
	s.AddBatch(xs)
	if s.Sum() == 0 {
		t.Fatal("sum of random data unexpectedly 0")
	}
	s.Reset()
	if got := s.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %g, want 0", got)
	}
	s.AddBatch(xs)
	if got, want := s.Sum(), oracle.Sum(xs); !bitEqual(got, want) {
		t.Fatalf("reuse after Reset: %g != %g", got, want)
	}
}

func TestMerge(t *testing.T) {
	xs := dataset(t, gen.Anderson, 8000, 37)
	half := len(xs) / 2
	a, _ := New(Options{Shards: 3})
	b, _ := New(Options{Shards: 5})
	a.AddBatch(xs[:half])
	b.AddBatch(xs[half:])
	a.Merge(b)
	if got, want := a.Sum(), oracle.Sum(xs); !bitEqual(got, want) {
		t.Fatalf("merged Sum=%g oracle=%g", got, want)
	}
	// b is unchanged and still usable.
	if got, want := b.Sum(), oracle.Sum(xs[half:]); !bitEqual(got, want) {
		t.Fatalf("merge source changed: %g != %g", got, want)
	}
	b.Add(1)
	if got, want := b.Sum(), oracle.Sum(append(append([]float64{}, xs[half:]...), 1)); !bitEqual(got, want) {
		t.Fatalf("merge source unusable after Merge: %g != %g", got, want)
	}
}

func TestMergePanics(t *testing.T) {
	a, _ := New(Options{Engine: "dense"})
	b, _ := New(Options{Engine: "sparse"})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("self-merge", func() { a.Merge(a) })
	mustPanic("engine mismatch", func() { a.Merge(b) })
}

// TestSpecials: IEEE specials flow through sharded ingestion with the
// same semantics as the sequential engines.
func TestSpecials(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"pos-inf", []float64{1, math.Inf(1), 2}, math.Inf(1)},
		{"both-inf", []float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
		{"nan", []float64{1, math.NaN()}, math.NaN()},
		{"cancel", []float64{1e300, -1e300}, 0},
	}
	for _, tc := range cases {
		s, _ := New(Options{Shards: 2})
		for _, x := range tc.xs {
			s.Add(x)
		}
		if got := s.Sum(); !bitEqual(got, tc.want) {
			t.Errorf("%s: Sum=%g want %g", tc.name, got, tc.want)
		}
	}
}

func BenchmarkShardedIngest(b *testing.B) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 1 << 16, Delta: 1200, Seed: 7}).Slice()
	s, _ := New(Options{})
	b.SetBytes(int64(len(xs) * 8))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.AddBatch(xs)
		}
	})
}
