// Package eft implements the classic error-free transformations of
// floating-point arithmetic: operations that compute both the rounded result
// of a floating-point operation and the exact rounding error, each as a
// float64.
//
// The paper calls the two-term transform AddTwo:
//
//	AddTwo(x, y) → (s, es)  with  s = x⊕y  and  x + y = s + es  exactly,
//
// citing the implementations of Dekker (1971) and Knuth (1997). TwoSum is
// Knuth's branch-free 6-operation version; FastTwoSum is Dekker's
// 3-operation version requiring |a| ≥ |b|. These are the substrate for the
// iFastSum baseline and for the expansion arithmetic used in tests.
package eft

import "math"

// TwoSum returns s = fl(a+b) and the exact error e such that a+b = s+e.
// It is Knuth's branch-free algorithm and is valid for any finite a, b
// (barring overflow of the intermediate sums).
func TwoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	av := s - bv
	e = (a - av) + (b - bv)
	return s, e
}

// FastTwoSum returns s = fl(a+b) and the exact error e such that a+b = s+e.
// It is Dekker's algorithm and requires |a| ≥ |b| (or a == 0); callers that
// cannot guarantee the ordering must use TwoSum.
func FastTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// splitFactor is 2^27+1, used by Split to halve a 53-bit significand.
const splitFactor = 1<<27 + 1

// Split decomposes a into hi + lo where each part has at most 26 significant
// bits (Dekker/Veltkamp splitting), enabling exact multiplication on
// hardware without FMA.
func Split(a float64) (hi, lo float64) {
	c := splitFactor * a
	hi = c - (c - a)
	lo = a - hi
	return hi, lo
}

// TwoProd returns p = fl(a·b) and the exact error e such that a·b = p+e,
// using math.FMA when it contributes an exactly rounded fused multiply-add.
func TwoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// TwoProdDekker returns p = fl(a·b) and the exact error e such that
// a·b = p+e computed with Veltkamp splitting only (no FMA). Exposed for
// testing TwoProd against an independent implementation.
func TwoProdDekker(a, b float64) (p, e float64) {
	p = a * b
	ahi, alo := Split(a)
	bhi, blo := Split(b)
	e = ((ahi*bhi - p) + ahi*blo + alo*bhi) + alo*blo
	return p, e
}

// Sum2 computes fl(Σx) and the running compensation using TwoSum, i.e.
// cascaded compensated summation (Ogita–Rump–Oishi Sum2). It returns the
// compensated result sum+err rounded once. It is used as a mid-accuracy
// baseline: faithful for modest condition numbers, not exact in general.
func Sum2(x []float64) float64 {
	var s, c float64
	for _, v := range x {
		var e float64
		s, e = TwoSum(s, v)
		c += e
	}
	return s + c
}
