package eft

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactSumEquals reports whether a+b == s+e exactly, using big.Float.
func exactSumEquals(a, b, s, e float64) bool {
	const prec = 300
	lhs := new(big.Float).SetPrec(prec).SetFloat64(a)
	lhs.Add(lhs, new(big.Float).SetPrec(prec).SetFloat64(b))
	rhs := new(big.Float).SetPrec(prec).SetFloat64(s)
	rhs.Add(rhs, new(big.Float).SetPrec(prec).SetFloat64(e))
	return lhs.Cmp(rhs) == 0
}

func finiteRand(r *rand.Rand) float64 {
	for {
		x := math.Float64frombits(r.Uint64())
		// Keep magnitudes in a range where x+y cannot overflow and the
		// error term cannot be below the subnormal range (EFT identities
		// hold without caveats there).
		if !math.IsNaN(x) && !math.IsInf(x, 0) && (x == 0 || (math.Abs(x) > 1e-300 && math.Abs(x) < 1e300)) {
			return x
		}
	}
}

func TestTwoSumExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := finiteRand(r), finiteRand(r)
		s, e := TwoSum(a, b)
		if s != a+b {
			t.Fatalf("TwoSum(%g,%g) s=%g, want fl(a+b)=%g", a, b, s, a+b)
		}
		if !exactSumEquals(a, b, s, e) {
			t.Fatalf("TwoSum(%g,%g) = (%g,%g): a+b ≠ s+e", a, b, s, e)
		}
	}
}

func TestFastTwoSumExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := finiteRand(r), finiteRand(r)
		if math.Abs(a) < math.Abs(b) {
			a, b = b, a
		}
		s, e := FastTwoSum(a, b)
		if !exactSumEquals(a, b, s, e) {
			t.Fatalf("FastTwoSum(%g,%g) = (%g,%g): a+b ≠ s+e", a, b, s, e)
		}
	}
}

func TestTwoSumKnownCases(t *testing.T) {
	cases := []struct{ a, b, s, e float64 }{
		{1, 0x1p-53, 1, 0x1p-53},
		{0x1p53, 1, 0x1p53, 1},
		{1, 1, 2, 0},
	}
	for _, c := range cases {
		s, e := TwoSum(c.a, c.b)
		if s != c.s {
			t.Errorf("TwoSum(%g,%g).s = %g, want %g", c.a, c.b, s, c.s)
		}
		if !exactSumEquals(c.a, c.b, s, e) {
			t.Errorf("TwoSum(%g,%g): identity violated", c.a, c.b)
		}
	}
}

func TestSplit26Bits(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := finiteRand(r)
		hi, lo := Split(a)
		if hi+lo != a {
			t.Fatalf("Split(%g): hi+lo = %g", a, hi+lo)
		}
		// Each part fits in 26 significant bits: scaling to an integer
		// representation must be exact at 26-bit width.
		for _, part := range []float64{hi, lo} {
			if part == 0 {
				continue
			}
			fr, _ := math.Frexp(part)
			m := fr * (1 << 26)
			if m != math.Trunc(m) {
				t.Fatalf("Split(%g) part %g has more than 26 bits", a, part)
			}
		}
	}
}

func TestTwoProdAgreesWithDekker(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		// Constrain magnitudes so neither product nor error over/underflows.
		a := math.Ldexp(r.Float64()*2-1, r.Intn(200)-100)
		b := math.Ldexp(r.Float64()*2-1, r.Intn(200)-100)
		p1, e1 := TwoProd(a, b)
		p2, e2 := TwoProdDekker(a, b)
		if p1 != p2 || e1 != e2 {
			t.Fatalf("TwoProd(%g,%g) = (%g,%g), Dekker gives (%g,%g)", a, b, p1, e1, p2, e2)
		}
	}
}

func TestSum2CompensatesModestConditioning(t *testing.T) {
	// Σ of n values around 1 plus tiny noise: naive drifts, Sum2 does not.
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 + float64(i%7)*0x1p-30
	}
	got := Sum2(xs)
	var want float64 = 0
	// Exact: n + 2^-30 * Σ(i mod 7) — computable in integers.
	var frac int64
	for i := 0; i < n; i++ {
		frac += int64(i % 7)
	}
	want = float64(n) + float64(frac)*0x1p-30
	if got != want {
		t.Fatalf("Sum2 = %.20g, want %.20g", got, want)
	}
}

func TestTwoSumQuick(t *testing.T) {
	f := func(ab [2]uint64) bool {
		a := math.Float64frombits(ab[0])
		b := math.Float64frombits(ab[1])
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e300 || math.Abs(b) > 1e300 {
			return true // avoid overflow of fl(a+b)
		}
		s, e := TwoSum(a, b)
		if math.IsInf(s, 0) {
			return true
		}
		return exactSumEquals(a, b, s, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
