package sumdclient

// Circuit breaker for one backend: the proxy installs one Breaker per
// sumd instance so a dead or drowning backend is cut off after a few
// consecutive failures instead of eating a full timeout per request,
// and is probed back into service with a single request per cooldown
// rather than a thundering herd.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned without sending anything when the
// backend's breaker is open. Callers distinguish it from a transport
// error: the request was never attempted, so nothing can have been
// applied.
var ErrBreakerOpen = errors.New("sumdclient: circuit breaker open")

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every request is rejected until Cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is in flight; its
	// outcome decides between Closed and another Open round.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a consecutive-failure circuit breaker. The zero value is
// usable (threshold 5, cooldown 1s). Safe for concurrent use. Install
// one on a Client via Client.Breaker; failures are transport errors and
// 5xx responses — a 4xx (including a 429 shed) proves the backend is
// alive and answering, so it closes the loop like a success.
type Breaker struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker; 0 means 5.
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// probe through; 0 means 1s.
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool             // a half-open probe is in flight
	now      func() time.Time // test seam; nil means time.Now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// State returns the current state, advancing Open to HalfOpen when the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cooldown() {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may be sent now. It returns nil for
// closed flow and for the single half-open probe, ErrBreakerOpen
// otherwise. A caller that gets nil MUST follow up with exactly one
// Record call for the request's outcome — in half-open the breaker
// holds the probe slot for that caller until it reports.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Record reports the outcome of a request Allow admitted. A success
// closes the breaker and zeroes the failure streak; a failure bumps the
// streak and opens the breaker at the threshold (immediately when it
// was a half-open probe).
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.probing = false
		b.fails = 0
	}
}
