// Package sumdclient is the worker-side half of the distributed
// aggregation protocol: a small HTTP client for a sumd merge service
// (internal/sumdsrv), plus a Combiner that plays the paper's map-side
// combiner — accumulate a slice of the input exactly in a local
// superaccumulator, then ship the serialized partial over the socket in
// one hop. Everything exchanged is an exact wire partial, so the service's
// final sum is bit-identical to summing the whole input sequentially no
// matter how work was split across combiners or when they flushed.
package sumdclient

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parsum"
	"parsum/internal/sumdsrv"
)

// Client talks to one sumd service.
//
// When the service runs the async ingestion front-end it sheds overload
// with 429 + Retry-After, guaranteeing the rejected batch left no trace
// in the accumulator — which makes a blind re-send of the same batch
// safe. Set Retry429 to have the client do that automatically with
// jittered exponential backoff. Configure the retry fields before the
// first request; they must not be mutated concurrently with use.
type Client struct {
	base string
	hc   *http.Client

	// Retry429 is the maximum number of times one request shed with
	// HTTP 429 is re-sent before the error is returned. 0 disables
	// retrying.
	Retry429 int
	// RetryBase is the first backoff delay; it doubles per attempt with
	// full jitter (a uniform draw from [d/2, d)), capped by RetryMax and
	// by the server's Retry-After hint. 0 means 2ms.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff delay, so a deep retry loop
	// (or a large Retry429) cannot doze off for minutes — or, worse,
	// overflow the shifted duration. 0 means 4s; a cap below RetryBase
	// is raised to RetryBase.
	RetryMax time.Duration
	// MaxResponseBytes caps how many bytes of a response body the client
	// will read; a larger response is an error, never a silently
	// truncated blob. 0 means sumdsrv.MaxBodyBytes — the server's
	// *default* body cap. Raise it to match a service configured with a
	// larger Options.MaxBodyBytes, or a GET /v1/keyed/partial whose
	// envelope outgrows the default.
	MaxResponseBytes int64
	// Timeout is the per-attempt deadline applied when the caller's
	// context has none — so context.Background() callers cannot hang
	// forever on a stuck backend. A caller context that already carries
	// a deadline is respected untouched (even a longer one). New sets it
	// to DefaultTimeout; negative disables the default entirely.
	Timeout time.Duration
	// Breaker, when set, gates every attempt: an open breaker fails the
	// request with ErrBreakerOpen before anything is sent, and each
	// attempted request's outcome feeds back into the breaker (transport
	// errors and 5xx responses count as failures; any completed non-5xx
	// response proves the backend alive). The proxy installs one Breaker
	// per backend client.
	Breaker *Breaker

	retried atomic.Int64
	sleep   func(ctx context.Context, d time.Duration) error // test hook
	jitter  func(n int64) int64                              // test hook; uniform draw from [0, n)
}

// DefaultTimeout is the per-attempt deadline New installs in
// Client.Timeout: generous enough for a full keyed-envelope exchange,
// short enough that a wedged backend surfaces as an error instead of a
// hung worker.
const DefaultTimeout = 30 * time.Second

// New returns a Client for the sumd service at baseURL (e.g.
// "http://127.0.0.1:8372"). hc may be nil for http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc, Timeout: DefaultTimeout, sleep: sleepCtx, jitter: rand.Int64N}
}

// apiError is a non-2xx response from the service.
type apiError struct {
	Status        int
	Message       string
	RetryAfter    time.Duration // parsed Retry-After hint; see HasRetryAfter
	HasRetryAfter bool          // the response carried a usable Retry-After
}

func (e *apiError) Error() string {
	return fmt.Sprintf("sumd: HTTP %d: %s", e.Status, e.Message)
}

// ErrorStatus returns the HTTP status behind an error the client
// returned, or 0 when the error was not an HTTP response (transport
// failure, open breaker, context cancellation). The proxy uses it to
// split "backend answered badly" from "backend unreachable".
func ErrorStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// Retried429 reports how many 429-shed requests the client has re-sent
// over its lifetime — the number of admission-control collisions, which
// load tests cross-check against the service's rejected counter.
func (c *Client) Retried429() int64 { return c.retried.Load() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do issues one request, re-sending it with jittered exponential backoff
// for up to Retry429 attempts when the service sheds it with 429 (safe:
// a 429 guarantees the batch was not applied).
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) ([]byte, error) {
	return c.doIdem(ctx, method, path, contentType, "", body)
}

// doIdem is do with an Idempotency-Key token attached to every send.
// The combiners use it so a push whose response was lost can be re-sent
// without the service applying it twice.
func (c *Client) doIdem(ctx context.Context, method, path, contentType, token string, body []byte) ([]byte, error) {
	data, err := c.doOnce(ctx, method, path, contentType, token, body)
	for attempt := 0; attempt < c.Retry429; attempt++ {
		var ae *apiError
		if err == nil || !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
			return data, err
		}
		c.retried.Add(1)
		if serr := c.sleep(ctx, c.backoff(attempt, ae)); serr != nil {
			return nil, serr
		}
		data, err = c.doOnce(ctx, method, path, contentType, token, body)
	}
	return data, err
}

// backoff returns the delay before retry number attempt (0-based):
// RetryBase<<attempt with full jitter (uniform in [d/2, d]), capped at
// RetryMax and at the server's Retry-After hint when one was given —
// the hint is an upper bound on useful waiting, since the ingest queue
// drains at least once per MaxDelay which the hint over-approximates in
// whole seconds. A hint of exactly zero means "retry immediately"
// (RFC 9110 allows it, and a drained queue serves the re-send at once),
// so the backoff curve is skipped entirely. Jitter comes from the
// per-client seam, not the global math/rand source, so seeding
// elsewhere in the process cannot correlate the retry storms of
// independent clients.
//
// The doubling stops at the cap instead of shifting blindly: the old
// `base << min(attempt, 20)` could put a 2ms base to sleep for over
// half an hour, and a caller-supplied base near an hour shifted past
// the int64 range entirely.
func (c *Client) backoff(attempt int, ae *apiError) time.Duration {
	if ae.HasRetryAfter && ae.RetryAfter == 0 {
		return 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	maxd := c.RetryMax
	if maxd <= 0 {
		maxd = 4 * time.Second
	}
	if maxd < base {
		maxd = base
	}
	d := base
	for i := 0; i < attempt && d < maxd; i++ {
		d <<= 1
		if d <= 0 { // overflowed past the int64 range
			d = maxd
			break
		}
	}
	if d > maxd {
		d = maxd
	}
	if ae.HasRetryAfter && d > ae.RetryAfter {
		d = ae.RetryAfter
	}
	return d/2 + time.Duration(c.jitter(int64(d/2)+1))
}

func (c *Client) doOnce(ctx context.Context, method, path, contentType, token string, body []byte) ([]byte, error) {
	if c.Breaker != nil {
		if err := c.Breaker.Allow(); err != nil {
			return nil, err
		}
	}
	data, status, err := c.send(ctx, method, path, contentType, token, body)
	if c.Breaker != nil {
		// Failure = nothing came back (status 0), or the backend itself
		// is broken (5xx). Any non-5xx response — including a 429 shed or
		// a 409 rejection — is a live, answering backend and closes the
		// loop like a success.
		c.Breaker.Record(status > 0 && status < 500)
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// send performs one HTTP exchange. status is nonzero whenever a
// response arrived, even one that send turns into an error — the
// breaker needs "backend answered 429" and "connection refused" to be
// distinguishable.
func (c *Client) send(ctx context.Context, method, path, contentType, token string, body []byte) (data []byte, status int, err error) {
	// Give context.Background() callers a real deadline; never tighten a
	// deadline the caller chose.
	if c.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.Timeout)
			defer cancel()
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Idempotency-Key", token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	// Read one byte past the response cap so an over-cap response is an
	// error here, not a silently truncated blob failing later.
	maxResp := c.MaxResponseBytes
	if maxResp <= 0 {
		maxResp = sumdsrv.MaxBodyBytes
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxResp+1))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if int64(len(data)) > maxResp {
		return nil, resp.StatusCode, fmt.Errorf("sumd: response to %s %s exceeds %d bytes", method, path, maxResp)
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(data))
		var je struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &je) == nil && je.Error != "" {
			msg = je.Error
		}
		ae := &apiError{Status: resp.StatusCode, Message: msg}
		ae.RetryAfter, ae.HasRetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return nil, resp.StatusCode, ae
	}
	return data, resp.StatusCode, nil
}

// parseRetryAfter parses a Retry-After header value per RFC 9110 §10.2.3:
// either non-negative delta-seconds or an HTTP-date, which may be in any
// of the three formats http.ParseTime accepts. ok reports whether the
// value was usable; a zero duration with ok true means "retry
// immediately" — the old parser required secs > 0 and so dropped that
// hint, and never understood the date form at all. A date already in the
// past clamps to zero rather than going negative.
func parseRetryAfter(v string, now time.Time) (d time.Duration, ok bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(v); err == nil {
		d := when.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// AddBatch ships xs to the service as raw little-endian float64s — exact
// for every value, including non-finite ones.
func (c *Client) AddBatch(ctx context.Context, xs []float64) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/add", "application/octet-stream", packFloats(xs))
	return err
}

// SubBatch deletes xs from the service exactly — the inverse of AddBatch.
// The service's sum after any add/sub history is bit-identical to summing
// the surviving multiset from scratch (exact for every value, including
// non-finite ones: the deletion happens in the service's in-memory group
// representation).
func (c *Client) SubBatch(ctx context.Context, xs []float64) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/sub", "application/octet-stream", packFloats(xs))
	return err
}

func packFloats(xs []float64) []byte {
	body := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(x))
	}
	return body
}

// PushPartial merges a serialized wire partial (Accumulator.MarshalBinary
// or Sharded.SnapshotBytes) into the service.
func (c *Client) PushPartial(ctx context.Context, blob []byte) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/partial", "application/octet-stream", blob)
	return err
}

// Sum returns the service's correctly rounded exact sum. The value is
// reconstructed from the served IEEE bit pattern, so the client sees the
// service's bits exactly.
func (c *Client) Sum(ctx context.Context) (float64, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/sum", "", nil)
	if err != nil {
		return 0, err
	}
	var resp struct {
		Bits string `json:"bits"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, fmt.Errorf("sumd: decoding sum response: %w", err)
	}
	bits, err := strconv.ParseUint(resp.Bits, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("sumd: bad bits field %q: %w", resp.Bits, err)
	}
	return math.Float64frombits(bits), nil
}

// SnapshotPartial returns the service's state as a wire partial, so a
// higher-level reducer can merge whole sumd instances.
func (c *Client) SnapshotPartial(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/partial", "", nil)
}

// Reset empties the service's accumulator.
func (c *Client) Reset(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/reset", "", nil)
	return err
}

// Combiner is the map-side combiner: a local exact accumulator plus the
// client to flush it through. It is not safe for concurrent use — each
// worker goroutine should own one.
type Combiner struct {
	c   *Client
	acc *parsum.Accumulator
	n   int64 // values accumulated since the last staging

	// pending is a staged partial whose push has not been acknowledged:
	// Flush serializes-and-resets the accumulator into pending *before*
	// pushing, and clears it only on a 2xx. A failed or lost-response
	// Flush therefore leaves the partial staged, and the retry re-sends
	// the identical blob under the identical idempotency token — the
	// service either merges it (the first attempt never arrived) or
	// recognizes the token and no-ops (the response was lost after the
	// merge). Either way the values land exactly once.
	pending []byte
	token   string
}

// NewCombiner returns a Combiner accumulating through the named engine
// ("" means dense). The engine must match the service's, or Flush will be
// rejected with a 409.
func (c *Client) NewCombiner(engineName string) (*Combiner, error) {
	if engineName == "" {
		engineName = "dense"
	}
	acc, err := parsum.NewAccumulatorEngine(engineName)
	if err != nil {
		return nil, err
	}
	return &Combiner{c: c, acc: acc}, nil
}

// Add accumulates x exactly into the local partial.
func (co *Combiner) Add(x float64) { co.acc.Add(x); co.n++ }

// AddSlice accumulates every element of xs exactly into the local partial.
func (co *Combiner) AddSlice(xs []float64) { co.acc.AddSlice(xs); co.n += int64(len(xs)) }

// Sub deletes x exactly from the local partial — retractions batch into
// the same combiner as insertions and flush in one hop. Exact for every
// value including non-finite ones: the partial codec carries signed
// special multiplicities, so a net retraction of a NaN or infinity
// survives the flush and cancels on the service.
func (co *Combiner) Sub(x float64) { co.acc.Sub(x); co.n++ }

// SubSlice deletes every element of xs exactly from the local partial.
func (co *Combiner) SubSlice(xs []float64) { co.acc.SubSlice(xs); co.n += int64(len(xs)) }

// Flush pushes the local partial to the service and resets the local
// accumulator so the Combiner can keep accumulating the next stretch of
// input. Flushing after every slice or once at the end yields the same
// final bits — merges are exact.
//
// Flush is safe to retry after any error: the partial is staged with an
// idempotency token before the first send (see Combiner.pending), so a
// retry can never double-apply it, even when the failure was a lost
// response to a push the service had in fact merged. A Flush with
// nothing staged and nothing accumulated is a no-op.
func (co *Combiner) Flush(ctx context.Context) error {
	if err := co.pushPending(ctx); err != nil {
		return err
	}
	if co.n == 0 {
		return nil
	}
	blob, err := co.acc.MarshalBinary()
	if err != nil {
		return err
	}
	co.acc.Reset()
	co.n = 0
	co.pending, co.token = blob, newIdemToken()
	return co.pushPending(ctx)
}

func (co *Combiner) pushPending(ctx context.Context) error {
	if co.pending == nil {
		return nil
	}
	if _, err := co.c.doIdem(ctx, http.MethodPost, "/v1/partial", "application/octet-stream", co.token, co.pending); err != nil {
		return err
	}
	co.pending, co.token = nil, ""
	return nil
}

// NewIdemToken returns a fresh idempotency token: 128 random bits in
// hex, drawn from crypto/rand so independent senders cannot collide.
// Generate one token per logical write and reuse it across every
// replica leg, retry, and hint replay of that write — the service
// dedups on the token, so the write lands exactly once per replica no
// matter how many deliveries it takes.
func NewIdemToken() string { return newIdemToken() }

// PushKeyedIdem merges a binary keyed envelope into the service under
// an explicit idempotency token (PushKeyed with caller-controlled
// dedup). It returns how many keys were merged — 0 with a nil error
// when the service recognized the token and deduplicated the push.
func (c *Client) PushKeyedIdem(ctx context.Context, token string, blob []byte) (int, error) {
	data, err := c.doIdem(ctx, http.MethodPost, "/v1/keyed/partial", "application/octet-stream", token, blob)
	if err != nil {
		return 0, err
	}
	return decodeMerged(data)
}

// newIdemToken returns a fresh idempotency token: 128 random bits in
// hex, drawn from crypto/rand so independent workers cannot collide.
func newIdemToken() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No entropy is a broken platform; fall back to the jitter
		// source rather than fail the flush.
		for i := range b {
			b[i] = byte(rand.Int64N(256))
		}
	}
	return hex.EncodeToString(b[:])
}
