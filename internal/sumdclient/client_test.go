package sumdclient

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parsum/internal/sumdsrv"
)

// TestMaxResponseBytesConfigurable is the response-cap regression test:
// the client used to hard-code the server's *default* body cap
// (sumdsrv.MaxBodyBytes), so a service configured with a larger
// Options.MaxBodyBytes could legitimately serve a partial the client
// would then refuse. The cap must be configurable per client, with the
// default unchanged.
func TestMaxResponseBytesConfigurable(t *testing.T) {
	// A "service" whose response body exceeds the 64 MiB default cap —
	// the shape of a GET /v1/partial from a server with a raised MaxBody.
	const bodyLen = sumdsrv.MaxBodyBytes + 8
	chunk := strings.Repeat("x", 1<<20)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		remaining := int64(bodyLen)
		for remaining > 0 {
			n := int64(len(chunk))
			if n > remaining {
				n = remaining
			}
			if _, err := io.WriteString(w, chunk[:n]); err != nil {
				return
			}
			remaining -= n
		}
	}))
	defer hs.Close()
	ctx := context.Background()

	// Default cap: the oversized response is an error, never a
	// truncated blob.
	c := New(hs.URL, hs.Client())
	if _, err := c.SnapshotPartial(ctx); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("default cap: err = %v, want over-cap error", err)
	}

	// Raised cap: the same response is read whole.
	c.MaxResponseBytes = bodyLen + 1
	blob, err := c.SnapshotPartial(ctx)
	if err != nil {
		t.Fatalf("raised cap: %v", err)
	}
	if int64(len(blob)) != bodyLen {
		t.Fatalf("raised cap read %d bytes, want %d", len(blob), int64(bodyLen))
	}

	// A small explicit cap binds too — the cap is the client's, not the
	// server default's.
	c.MaxResponseBytes = 1024
	if _, err := c.SnapshotPartial(ctx); err == nil || !strings.Contains(err.Error(), "exceeds 1024 bytes") {
		t.Fatalf("small cap: err = %v, want over-cap error naming the cap", err)
	}
}
