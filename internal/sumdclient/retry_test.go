package sumdclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer sheds the first reject requests to /v1/add with 429 +
// Retry-After, then accepts.
func shedServer(t *testing.T, reject int64, retryAfterSecs string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/add" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if hits.Add(1) <= reject {
			if retryAfterSecs != "" {
				w.Header().Set("Retry-After", retryAfterSecs)
			}
			http.Error(w, `{"error":"ingest queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func TestRetryOn429EventuallySucceeds(t *testing.T) {
	hs, hits := shedServer(t, 2, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 5
	c.RetryBase = time.Millisecond

	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1, 2, 3}); err != nil {
		t.Fatalf("AddBatch with retry budget: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 shed + 1 accepted)", got)
	}
	if got := c.Retried429(); got != 2 {
		t.Errorf("Retried429 = %d, want 2", got)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Attempt k waits base<<k with full jitter: a uniform draw from
	// [d/2, d], capped by the server's 1s Retry-After (not binding here).
	for k, d := range slept {
		want := c.RetryBase << k
		if d < want/2 || d > want {
			t.Errorf("backoff %d = %v, want in [%v, %v]", k, d, want/2, want)
		}
	}
}

func TestRetryBudgetExhaustedSurfacesThe429(t *testing.T) {
	hs, hits := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 3
	c.RetryBase = time.Microsecond
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	err := c.AddBatch(context.Background(), []float64{1})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget: err = %v, want apiError 429", err)
	}
	if ae.RetryAfter != time.Second {
		t.Errorf("parsed Retry-After = %v, want 1s", ae.RetryAfter)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d requests, want 4 (1 + 3 retries)", got)
	}
	if got := c.Retried429(); got != 3 {
		t.Errorf("Retried429 = %d, want 3", got)
	}
}

func TestZeroBudgetAndNon429AreNotRetried(t *testing.T) {
	hs, hits := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t.Error("slept with Retry429 = 0")
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1}); err == nil {
		t.Fatal("shed request with no budget returned nil")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}

	// Non-429 failures are not admission control and must not be re-sent.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	c2 := New(bad.URL, bad.Client())
	c2.Retry429 = 5
	c2.sleep = func(ctx context.Context, d time.Duration) error {
		t.Error("slept on a 500")
		return nil
	}
	var ae *apiError
	if err := c2.AddBatch(context.Background(), []float64{1}); !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("err = %v, want apiError 500", err)
	}
	if c2.Retried429() != 0 {
		t.Errorf("500 counted as a 429 retry")
	}
}

func TestRetrySleepHonorsContext(t *testing.T) {
	hs, _ := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 5
	c.RetryBase = time.Hour // the real sleepCtx must be interruptible

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.AddBatch(ctx, []float64{1}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled retry sleep never returned")
	}
}

func TestBackoffBounds(t *testing.T) {
	c := New("http://unused", nil)
	c.RetryBase = 2 * time.Millisecond
	noHint := &apiError{}
	for attempt := 0; attempt <= 6; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := c.backoff(attempt, noHint)
			want := c.RetryBase << attempt
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d, no hint) = %v, outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// The server's Retry-After hint caps the exponential curve.
	c.RetryBase = time.Second
	capped := &apiError{RetryAfter: 3 * time.Second, HasRetryAfter: true}
	for trial := 0; trial < 50; trial++ {
		if d := c.backoff(10, capped); d > 3*time.Second {
			t.Fatalf("Retry-After cap ignored: %v", d)
		}
	}
	// A Retry-After of exactly zero means "retry immediately", not "no
	// hint": the backoff curve is skipped, even deep into the retries.
	if d := c.backoff(7, &apiError{RetryAfter: 0, HasRetryAfter: true}); d != 0 {
		t.Fatalf("backoff with zero Retry-After = %v, want 0", d)
	}
	// Zero base falls back to the documented 2ms default.
	c.RetryBase = 0
	if d := c.backoff(0, noHint); d < time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("backoff(0, no hint) at zero base = %v, want in [1ms, 2ms]", d)
	}
	// Huge attempts must not overflow into negative durations.
	c.RetryBase = time.Second
	if d := c.backoff(63, &apiError{RetryAfter: time.Minute, HasRetryAfter: true}); d <= 0 || d > time.Minute {
		t.Fatalf("backoff at clamped attempt = %v", d)
	}
	// The jitter seam is per client, so tests (and clients) can pin it
	// without touching any global source.
	c.RetryBase = 8 * time.Millisecond
	c.jitter = func(n int64) int64 { return n - 1 }
	if d := c.backoff(0, noHint); d != 8*time.Millisecond {
		t.Fatalf("pinned max jitter: backoff = %v, want 8ms", d)
	}
	c.jitter = func(n int64) int64 { return 0 }
	if d := c.backoff(0, noHint); d != 4*time.Millisecond {
		t.Fatalf("pinned min jitter: backoff = %v, want 4ms", d)
	}
}

// TestBackoffRetryMaxCap pins the RetryMax contract: the exponential
// curve stops at the cap (default 4s) instead of shifting without
// bound — the old `base << min(attempt, 20)` slept a 2ms base for up to
// ~35 minutes and shifted an hour-scale base past the int64 range.
func TestBackoffRetryMaxCap(t *testing.T) {
	c := New("http://unused", nil)
	noHint := &apiError{}

	// Default cap: a 2ms base deep into the retries sleeps ≤ 4s, never
	// the 2ms<<20 ≈ 35min of the uncapped curve, and never negative.
	c.RetryBase = 2 * time.Millisecond
	for _, attempt := range []int{11, 20, 40, 1 << 30} {
		for trial := 0; trial < 50; trial++ {
			d := c.backoff(attempt, noHint)
			if d <= 0 || d > 4*time.Second {
				t.Fatalf("backoff(%d) = %v, outside (0, 4s]", attempt, d)
			}
		}
	}
	// The attempt that first reaches the cap sits exactly at it (pinned
	// jitter): 2ms << 11 = 4.096s > 4s.
	c.jitter = func(n int64) int64 { return n - 1 }
	if d := c.backoff(11, noHint); d != 4*time.Second {
		t.Fatalf("backoff at cap = %v, want 4s", d)
	}
	// The last attempt below the cap still follows the curve exactly.
	if d := c.backoff(10, noHint); d != 2*time.Millisecond<<10 {
		t.Fatalf("backoff below cap = %v, want %v", d, 2*time.Millisecond<<10)
	}

	// An explicit cap is honored...
	c.RetryMax = 16 * time.Millisecond
	if d := c.backoff(20, noHint); d != 16*time.Millisecond {
		t.Fatalf("explicit RetryMax: backoff = %v, want 16ms", d)
	}
	// ...and a cap below the base is raised to the base, never truncating
	// the first delay to zero.
	c.RetryMax = time.Microsecond
	if d := c.backoff(0, noHint); d != 2*time.Millisecond {
		t.Fatalf("RetryMax below base: backoff = %v, want 2ms", d)
	}

	// A base so large that doubling overflows int64 clamps to the cap.
	c.RetryBase = time.Duration(1) << 62
	c.RetryMax = 0
	for _, attempt := range []int{1, 2, 63} {
		if d := c.backoff(attempt, noHint); d != c.RetryBase {
			// cap (4s) < base, so the cap is raised to base: the delay is
			// exactly base, not a wrapped negative.
			t.Fatalf("overflow-scale base: backoff(%d) = %v, want %v", attempt, d, c.RetryBase)
		}
	}
}

// TestParseRetryAfter pins the RFC 9110 §10.2.3 grammar: non-negative
// delta-seconds (zero included — the old parser dropped it) and all
// three HTTP-date forms, with dates in the past clamping to zero.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true}, // retry immediately — distinct from "no hint"
		{"7", 7 * time.Second, true},
		{"120", 2 * time.Minute, true},
		{"-3", 0, false},
		{"1.5", 0, false},
		{"soon", 0, false},
		// IMF-fixdate, 90 s in the future.
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		// A date already in the past clamps to "retry immediately".
		{now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		// RFC 850 and asctime forms are also legal HTTP-dates.
		{now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second, true},
		{now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second, true},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestRetryAfterZeroSleepsZero drives the zero hint end to end over
// HTTP: a server shedding with Retry-After: 0 must see the re-send
// scheduled with a zero delay, where the old secs > 0 parser fell back
// to the full exponential curve.
func TestRetryAfterZeroSleepsZero(t *testing.T) {
	hs, hits := shedServer(t, 2, "0")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 5
	c.RetryBase = time.Hour // would be ruinous if the hint were dropped

	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1}); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	for i, d := range slept {
		if d != 0 {
			t.Errorf("sleep %d = %v, want 0 (Retry-After: 0)", i, d)
		}
	}
}

// TestRetryAfterHTTPDate drives the date form end to end: the parsed
// hint must cap the backoff like delta-seconds always did.
func TestRetryAfterHTTPDate(t *testing.T) {
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	hs, _ := shedServer(t, 1, date)
	c := New(hs.URL, hs.Client())
	c.Retry429 = 2
	c.RetryBase = time.Hour // only the date hint can keep this sane

	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1}); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	if slept[0] > 2*time.Second {
		t.Errorf("HTTP-date Retry-After ignored: slept %v, want ≤ 2s", slept[0])
	}
}
