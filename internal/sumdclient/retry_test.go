package sumdclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer sheds the first reject requests to /v1/add with 429 +
// Retry-After, then accepts.
func shedServer(t *testing.T, reject int64, retryAfterSecs string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/add" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if hits.Add(1) <= reject {
			if retryAfterSecs != "" {
				w.Header().Set("Retry-After", retryAfterSecs)
			}
			http.Error(w, `{"error":"ingest queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func TestRetryOn429EventuallySucceeds(t *testing.T) {
	hs, hits := shedServer(t, 2, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 5
	c.RetryBase = time.Millisecond

	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1, 2, 3}); err != nil {
		t.Fatalf("AddBatch with retry budget: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 shed + 1 accepted)", got)
	}
	if got := c.Retried429(); got != 2 {
		t.Errorf("Retried429 = %d, want 2", got)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Attempt k waits base<<k with full jitter: a uniform draw from
	// [d/2, d], capped by the server's 1s Retry-After (not binding here).
	for k, d := range slept {
		want := c.RetryBase << k
		if d < want/2 || d > want {
			t.Errorf("backoff %d = %v, want in [%v, %v]", k, d, want/2, want)
		}
	}
}

func TestRetryBudgetExhaustedSurfacesThe429(t *testing.T) {
	hs, hits := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 3
	c.RetryBase = time.Microsecond
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	err := c.AddBatch(context.Background(), []float64{1})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget: err = %v, want apiError 429", err)
	}
	if ae.RetryAfter != time.Second {
		t.Errorf("parsed Retry-After = %v, want 1s", ae.RetryAfter)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d requests, want 4 (1 + 3 retries)", got)
	}
	if got := c.Retried429(); got != 3 {
		t.Errorf("Retried429 = %d, want 3", got)
	}
}

func TestZeroBudgetAndNon429AreNotRetried(t *testing.T) {
	hs, hits := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t.Error("slept with Retry429 = 0")
		return nil
	}
	if err := c.AddBatch(context.Background(), []float64{1}); err == nil {
		t.Fatal("shed request with no budget returned nil")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}

	// Non-429 failures are not admission control and must not be re-sent.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	c2 := New(bad.URL, bad.Client())
	c2.Retry429 = 5
	c2.sleep = func(ctx context.Context, d time.Duration) error {
		t.Error("slept on a 500")
		return nil
	}
	var ae *apiError
	if err := c2.AddBatch(context.Background(), []float64{1}); !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("err = %v, want apiError 500", err)
	}
	if c2.Retried429() != 0 {
		t.Errorf("500 counted as a 429 retry")
	}
}

func TestRetrySleepHonorsContext(t *testing.T) {
	hs, _ := shedServer(t, 1<<30, "1")
	c := New(hs.URL, hs.Client())
	c.Retry429 = 5
	c.RetryBase = time.Hour // the real sleepCtx must be interruptible

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.AddBatch(ctx, []float64{1}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled retry sleep never returned")
	}
}

func TestBackoffBounds(t *testing.T) {
	const base = 2 * time.Millisecond
	for attempt := 0; attempt <= 6; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := backoff(base, attempt, 0)
			want := base << attempt
			if d < want/2 || d > want {
				t.Fatalf("backoff(%v, %d, 0) = %v, outside [%v, %v]", base, attempt, d, want/2, want)
			}
		}
	}
	// The server's Retry-After hint caps the exponential curve.
	for trial := 0; trial < 50; trial++ {
		if d := backoff(time.Second, 10, 3*time.Second); d > 3*time.Second {
			t.Fatalf("Retry-After cap ignored: %v", d)
		}
	}
	// Zero base falls back to the documented 2ms default.
	if d := backoff(0, 0, 0); d < time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("backoff(0, 0, 0) = %v, want in [1ms, 2ms]", d)
	}
	// Huge attempts must not overflow into negative durations.
	if d := backoff(time.Second, 63, time.Minute); d <= 0 || d > time.Minute {
		t.Fatalf("backoff at clamped attempt = %v", d)
	}
}
