package sumdclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the breaker's time seam: tests advance it explicitly.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, now: fc.now}, fc
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newFakeBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("failure %d: Allow() = %v, want nil while closed", i, err)
		}
		b.Record(false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("third Allow() = %v", err)
	}
	b.Record(false) // third consecutive failure trips it
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() while open = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newFakeBreaker(3, time.Second)
	for i := 0; i < 10; i++ { // alternate fail/success — never trips
		_ = b.Allow()
		b.Record(false)
		_ = b.Allow()
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed — streak must reset on success", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, fc := newFakeBreaker(1, time.Second)
	_ = b.Allow()
	b.Record(false) // threshold 1: open immediately
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() during cooldown = %v, want ErrBreakerOpen", err)
	}

	fc.advance(time.Second) // cooldown elapses → half-open
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	// Exactly one probe is admitted; a second concurrent request is not.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() = %v, want nil", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second Allow() during probe = %v, want ErrBreakerOpen", err)
	}

	// Probe fails → straight back to open for a full cooldown.
	b.Record(false)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("Allow() after failed probe must reject")
	}
	fc.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() after second cooldown = %v", err)
	}
	// Probe succeeds → closed, traffic flows.
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	for i := 0; i < 5; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow() %d after recovery = %v", i, err)
		}
		b.Record(true)
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	var b Breaker
	for i := 0; i < 4; i++ {
		_ = b.Allow()
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 4 failures = %v, want closed (default threshold 5)", got)
	}
	_ = b.Allow()
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 5 failures = %v, want open", got)
	}
	if s := BreakerHalfOpen.String(); s != "half-open" {
		t.Errorf("String() = %q", s)
	}
	if s := BreakerState(42).String(); s != "BreakerState(42)" {
		t.Errorf("String() = %q", s)
	}
}

// A client with a Breaker: 5xx responses and transport errors open it;
// once open, requests fail fast with ErrBreakerOpen without touching
// the backend; a 4xx closes the loop like a success.
func TestClientBreakerIntegration(t *testing.T) {
	var hits, mode atomic.Int64 // mode: 0=500, 1=404, 2=200
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		switch mode.Load() {
		case 0:
			w.WriteHeader(http.StatusInternalServerError)
		case 1:
			w.WriteHeader(http.StatusNotFound)
		default:
			w.Write([]byte(`{"bits":"0"}`))
		}
	}))
	defer srv.Close()

	fc := &fakeClock{t: time.Unix(0, 0)}
	c := New(srv.URL, nil)
	c.Breaker = &Breaker{Threshold: 2, Cooldown: time.Minute, now: fc.now}
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Sum(ctx); err == nil {
			t.Fatal("want error from 500 backend")
		}
	}
	before := hits.Load()
	if _, err := c.Sum(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker must not touch the backend")
	}
	if got := ErrorStatus(ErrBreakerOpen); got != 0 {
		t.Fatalf("ErrorStatus(ErrBreakerOpen) = %d, want 0", got)
	}

	// Cooldown elapses; the probe sees a 404 — backend alive → closed.
	mode.Store(1)
	fc.advance(time.Minute)
	_, err := c.Sum(ctx)
	if status := ErrorStatus(err); status != http.StatusNotFound {
		t.Fatalf("probe err = %v (status %d), want the backend's 404 through", err, status)
	}
	if got := c.Breaker.State(); got != BreakerClosed {
		t.Fatalf("state after 404 probe = %v, want closed (4xx is a live backend)", got)
	}
	mode.Store(2)
	if _, err := c.Sum(ctx); err != nil {
		t.Fatalf("Sum after recovery: %v", err)
	}
}

// Client.Timeout applies only when the caller's context has no
// deadline.
func TestClientTimeoutDefaultDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	c := New(srv.URL, nil)
	if c.Timeout != DefaultTimeout {
		t.Fatalf("New set Timeout=%v, want %v", c.Timeout, DefaultTimeout)
	}

	// Background context: the client's own deadline fires.
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := c.Sum(context.Background())
	if err == nil {
		t.Fatal("want deadline error against a stuck backend")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v — Client.Timeout did not apply", elapsed)
	}

	// Caller deadline wins: a longer caller deadline is not tightened…
	c.Timeout = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := c.Sum(ctx); err == nil {
		t.Fatal("want deadline error")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("request failed after %v — the caller's 250ms deadline was tightened by Client.Timeout", elapsed)
	}

	// …and a negative Timeout disables the default entirely.
	c.Timeout = -1
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Sum(ctx2)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request returned early with %v — negative Timeout must hang until cancel", err)
	case <-time.After(150 * time.Millisecond):
	}
	cancel2()
	if err := <-done; err == nil {
		t.Fatal("want cancellation error")
	}
}
