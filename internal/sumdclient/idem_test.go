package sumdclient

// Regression tests for the Flush double-apply hazard: a push whose
// response is lost after the service merged it used to be re-sent by the
// next Flush and applied twice. The combiners now stage each blob under
// an idempotency token, so the retry is recognized and no-opped. These
// tests drive real flushes through a proxy that applies the push and
// then drops the ack.

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"parsum"
	"parsum/internal/sumdsrv"
)

// flakyProxy forwards every request to the real service but can be armed
// to drop the next n acks to mutating pushes *after* the service has
// applied them — the lost-response failure that makes a naive retry
// double-apply.
type flakyProxy struct {
	srv  http.Handler
	mu   sync.Mutex
	drop int
}

func (p *flakyProxy) arm(n int) {
	p.mu.Lock()
	p.drop = n
	p.mu.Unlock()
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := httptest.NewRecorder()
	p.srv.ServeHTTP(rec, r)
	p.mu.Lock()
	dropped := r.Method == http.MethodPost && rec.Code/100 == 2 && p.drop > 0
	if dropped {
		p.drop--
	}
	p.mu.Unlock()
	if dropped {
		// The push was applied; its ack vanishes on the wire.
		panic(http.ErrAbortHandler)
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

func flakyService(t *testing.T) (*Client, *flakyProxy, *httptest.Server) {
	t.Helper()
	srv, err := sumdsrv.New(sumdsrv.Options{Shards: 2, KeyPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	proxy := &flakyProxy{srv: srv}
	hs := httptest.NewServer(proxy)
	t.Cleanup(hs.Close)
	return New(hs.URL, hs.Client()), proxy, hs
}

func dedupHits(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Deduped int64 `json:"deduped"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding stats %s: %v", data, err)
	}
	return st.Deduped
}

// TestCombinerFlushRetrySurvivesLostResponse: the ack to a merged push
// is dropped, the Flush errors, and the retried Flush — with more values
// accumulated in between — must leave the service holding every value
// exactly once. Ill-conditioned values make any double-apply visible in
// the final bits.
func TestCombinerFlushRetrySurvivesLostResponse(t *testing.T) {
	ctx := context.Background()
	c, proxy, hs := flakyService(t)

	first := []float64{1e16, 3.14, -1e16, 2.71, 1e-30}
	second := []float64{0.1, 0.2, -1e8, 1e8}
	oracle := parsum.Sum(append(append([]float64{}, first...), second...))

	co, err := c.NewCombiner("")
	if err != nil {
		t.Fatal(err)
	}
	co.AddSlice(first)
	proxy.arm(1)
	if err := co.Flush(ctx); err == nil {
		t.Fatal("Flush with a dropped response did not error")
	}

	// The service DID merge the blob — the ack was lost after the apply.
	got, err := c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := parsum.Sum(first); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("after lost ack: sum %x, want %x (push was not applied)",
			math.Float64bits(got), math.Float64bits(want))
	}

	// Keep accumulating, then retry: the staged blob is re-sent under its
	// original token (deduplicated) and the new blob merges once.
	co.AddSlice(second)
	if err := co.Flush(ctx); err != nil {
		t.Fatalf("retried Flush: %v", err)
	}
	got, err = c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(oracle) {
		t.Fatalf("after retry: sum %x, want oracle %x (values double-applied or lost)",
			math.Float64bits(got), math.Float64bits(oracle))
	}
	if hits := dedupHits(t, hs.URL); hits != 1 {
		t.Errorf("dedup hits = %d, want 1 (the retried blob)", hits)
	}

	// A further Flush with nothing staged and nothing accumulated is a
	// no-op and must not disturb the bits.
	if err := co.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = c.Sum(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(oracle) {
		t.Fatalf("idle Flush changed the bits: %x, want %x",
			math.Float64bits(got), math.Float64bits(oracle))
	}
}

// TestKeyedCombinerFlushRetrySurvivesLostResponse is the keyed twin: the
// ack to a merged keyed envelope is dropped, and the retried Flush must
// leave every key's bits exactly as if the envelope landed once.
func TestKeyedCombinerFlushRetrySurvivesLostResponse(t *testing.T) {
	ctx := context.Background()
	c, proxy, hs := flakyService(t)

	vals := map[string][]float64{
		"alpha": {1e16, 1.0, -1e16},
		"beta":  {0.1, 0.2, 0.3},
	}

	co, err := c.NewKeyedCombiner("")
	if err != nil {
		t.Fatal(err)
	}
	for key, xs := range vals {
		co.Add(key, xs)
	}
	proxy.arm(1)
	if _, err := co.Flush(ctx); err == nil {
		t.Fatal("keyed Flush with a dropped response did not error")
	}

	// Retried Flush: the identical envelope is recognized and no-opped,
	// so it reports 0 keys merged.
	merged, err := co.Flush(ctx)
	if err != nil {
		t.Fatalf("retried keyed Flush: %v", err)
	}
	if merged != 0 {
		t.Errorf("retried envelope merged %d keys, want 0 (deduplicated)", merged)
	}
	for key, xs := range vals {
		got, ok, err := c.SumKey(ctx, key)
		if err != nil || !ok {
			t.Fatalf("SumKey(%q): ok=%t err=%v", key, ok, err)
		}
		if want := parsum.Sum(xs); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("key %q: sum %x, want %x (envelope double-applied or lost)",
				key, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if hits := dedupHits(t, hs.URL); hits != 1 {
		t.Errorf("dedup hits = %d, want 1 (the retried envelope)", hits)
	}
}
