package sumdclient

// Keyed client surface: the worker-side half of the multi-key exact
// aggregation protocol. AddKeyed/SubKeyed/SumKey address one key of the
// service's keyed store; PullKeyed/PushKeyed exchange whole key ranges
// as binary keyed envelopes (the anti-entropy / rebalance hop); and
// KeyedCombiner is the map-side combiner for keyed data — accumulate
// locally per key, then ship the whole local store in one push.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"

	"parsum"
)

func keyQuery(key string) string { return "?key=" + url.QueryEscape(key) }

func rangeQuery(path, lo, hi string) string {
	q := url.Values{}
	if lo != "" {
		q.Set("lo", lo)
	}
	if hi != "" {
		q.Set("hi", hi)
	}
	if enc := q.Encode(); enc != "" {
		return path + "?" + enc
	}
	return path
}

// AddKeyed ships xs into key's accumulator on the service as raw
// little-endian float64s — exact for every value, including non-finite
// ones. An empty xs still registers the key at exact +0.
func (c *Client) AddKeyed(ctx context.Context, key string, xs []float64) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/add"+keyQuery(key), "application/octet-stream", packFloats(xs))
	return err
}

// SubKeyed deletes xs exactly from key's accumulator — the inverse of
// AddKeyed.
func (c *Client) SubKeyed(ctx context.Context, key string, xs []float64) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/sub"+keyQuery(key), "application/octet-stream", packFloats(xs))
	return err
}

// SumKey returns key's correctly rounded exact sum, reconstructed from
// the served IEEE bit pattern. ok is false when the service has never
// seen the key.
func (c *Client) SumKey(ctx context.Context, key string) (v float64, ok bool, err error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/sum"+keyQuery(key), "", nil)
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return 0, false, nil
		}
		return 0, false, err
	}
	v, err = decodeSumBits(data)
	return v, err == nil, err
}

func decodeSumBits(data []byte) (float64, error) {
	var resp struct {
		Bits string `json:"bits"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, fmt.Errorf("sumd: decoding sum response: %w", err)
	}
	bits, err := strconv.ParseUint(resp.Bits, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("sumd: bad bits field %q: %w", resp.Bits, err)
	}
	return math.Float64frombits(bits), nil
}

// Keys returns the service's sorted live keys x with lo ≤ x < hi;
// hi == "" means no upper bound and lo == "" no lower bound.
func (c *Client) Keys(ctx context.Context, lo, hi string) ([]string, error) {
	data, err := c.do(ctx, http.MethodGet, rangeQuery("/v1/keys", lo, hi), "", nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("sumd: decoding keys response: %w", err)
	}
	return resp.Keys, nil
}

// PullKeyed returns the service's keyed state for keys in [lo, hi) as
// one binary keyed envelope — the pull half of the keyed exchange, and
// with a remote PushKeyed the exact-rebalance hop.
func (c *Client) PullKeyed(ctx context.Context, lo, hi string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, rangeQuery("/v1/keyed/partial", lo, hi), "", nil)
}

// PushKeyed merges a binary keyed envelope (Keyed.ExportRange or a peer
// service's PullKeyed) into the service and returns how many keys were
// merged. A rejected push (malformed or engine-mismatched) leaves the
// service's keyed state bit-for-bit unchanged.
func (c *Client) PushKeyed(ctx context.Context, blob []byte) (int, error) {
	data, err := c.do(ctx, http.MethodPost, "/v1/keyed/partial", "application/octet-stream", blob)
	if err != nil {
		return 0, err
	}
	return decodeMerged(data)
}

// PullKeyedPartials returns the keys in [lo, hi) as per-key wire
// partials — the JSON form of PullKeyed for consumers that cannot carry
// binary bodies.
func (c *Client) PullKeyedPartials(ctx context.Context, lo, hi string) (engine string, ps []parsum.KeyPartial, err error) {
	q := url.Values{"format": {"json"}}
	if lo != "" {
		q.Set("lo", lo)
	}
	if hi != "" {
		q.Set("hi", hi)
	}
	data, err := c.do(ctx, http.MethodGet, "/v1/keyed/partial?"+q.Encode(), "", nil)
	if err != nil {
		return "", nil, err
	}
	var resp struct {
		Engine   string              `json:"engine"`
		Partials []parsum.KeyPartial `json:"partials"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return "", nil, fmt.Errorf("sumd: decoding keyed partials: %w", err)
	}
	return resp.Engine, resp.Partials, nil
}

// PushKeyedPartials merges per-key wire partials into the service (the
// JSON form of PushKeyed) and returns how many keys were merged.
func (c *Client) PushKeyedPartials(ctx context.Context, ps []parsum.KeyPartial) (int, error) {
	body, err := json.Marshal(struct {
		Partials []parsum.KeyPartial `json:"partials"`
	}{Partials: ps})
	if err != nil {
		return 0, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/keyed/partial", "application/json", body)
	if err != nil {
		return 0, err
	}
	return decodeMerged(data)
}

func decodeMerged(data []byte) (int, error) {
	var resp struct {
		Merged int `json:"merged"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, fmt.Errorf("sumd: decoding merge response: %w", err)
	}
	return resp.Merged, nil
}

// KeyedCombiner is the map-side combiner for keyed data: a local keyed
// store plus the client to flush it through. A worker accumulates its
// share of every key locally — one exact accumulator per touched key —
// then Flush ships the whole local state as one keyed envelope. Because
// per-key exact summation is a commutative group, flushing after every
// batch or once at the end yields the same final bits on the service,
// no matter how keys were spread across combiners. Not safe for
// concurrent use — each worker goroutine should own one.
type KeyedCombiner struct {
	c *Client
	k *parsum.Keyed

	// pending/token stage an exported envelope whose push has not been
	// acknowledged, exactly like Combiner.pending: a retried Flush
	// re-sends the identical envelope under the identical idempotency
	// token, so a lost response can never double-apply the keys.
	pending []byte
	token   string
}

// NewKeyedCombiner returns a KeyedCombiner accumulating through the
// named engine ("" means dense). The engine must match the service's,
// or Flush will be rejected with a 409.
func (c *Client) NewKeyedCombiner(engineName string) (*KeyedCombiner, error) {
	k, err := parsum.NewKeyed(parsum.KeyedOptions{Engine: engineName, Partitions: 1})
	if err != nil {
		return nil, err
	}
	return &KeyedCombiner{c: c, k: k}, nil
}

// Add accumulates every element of xs exactly into key's local partial.
func (co *KeyedCombiner) Add(key string, xs []float64) { co.k.Add(key, xs) }

// Sub deletes every element of xs exactly from key's local partial —
// retractions batch into the same combiner as insertions and flush in
// one hop.
func (co *KeyedCombiner) Sub(key string, xs []float64) { co.k.Sub(key, xs) }

// Len returns the number of locally buffered keys.
func (co *KeyedCombiner) Len() int { return co.k.Len() }

// Flush serializes the local keyed state, pushes it to the service as
// one keyed envelope, and resets the local store so the combiner can
// keep accumulating. It returns how many keys the service merged in
// this call (0 when a retried envelope was deduplicated — the service
// already held those keys from the attempt whose response was lost).
//
// Like Combiner.Flush, it is safe to retry after any error: the
// envelope is staged with an idempotency token before the first send,
// so the keys land exactly once no matter how many sends it takes.
func (co *KeyedCombiner) Flush(ctx context.Context) (int, error) {
	if co.pending != nil {
		if _, err := co.pushPending(ctx); err != nil {
			return 0, err
		}
	}
	if co.k.Len() == 0 {
		return 0, nil
	}
	blob, err := co.k.ExportAll()
	if err != nil {
		return 0, err
	}
	co.k.Reset()
	co.pending, co.token = blob, newIdemToken()
	return co.pushPending(ctx)
}

func (co *KeyedCombiner) pushPending(ctx context.Context) (int, error) {
	data, err := co.c.doIdem(ctx, http.MethodPost, "/v1/keyed/partial", "application/octet-stream", co.token, co.pending)
	if err != nil {
		return 0, err
	}
	co.pending, co.token = nil, ""
	return decodeMerged(data)
}
