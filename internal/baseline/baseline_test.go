package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsum/internal/gen"
	"parsum/internal/oracle"
)

func TestIFastSumSimple(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{42}, 42},
		{[]float64{1, 2, 3}, 6},
		{[]float64{1e100, 1, -1e100}, 1},
		{[]float64{1e100, 1, -1e100, 0x1p-1074}, 1},
		{[]float64{0x1p1023, 0x1p1023, -0x1p1023}, 0x1p1023},
		{[]float64{1, 0x1p-53}, 1},                      // tie to even
		{[]float64{1, 0x1p-53, 0x1p-1074}, 1 + 0x1p-52}, // sticky breaks tie
	}
	for _, c := range cases {
		if got := IFastSum(c.xs); got != c.want {
			t.Errorf("IFastSum(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestIFastSumMatchesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(1200)-600)
		}
		got, want := IFastSum(xs), oracle.Sum(xs)
		if got != want {
			t.Fatalf("trial %d: IFastSum=%g oracle=%g", trial, got, want)
		}
	}
}

func TestIFastSumOnPaperDistributions(t *testing.T) {
	before := DistillationStalls()
	for _, d := range gen.AllDists {
		for _, delta := range []int{10, 300, 2000} {
			xs := gen.New(gen.Config{Dist: d, N: 5000, Delta: delta, Seed: 77}).Slice()
			got, want := IFastSum(xs), oracle.Sum(xs)
			if got != want {
				t.Fatalf("%v δ=%d: IFastSum=%g oracle=%g", d, delta, got, want)
			}
		}
	}
	if DistillationStalls() != before {
		t.Fatalf("iFastSum stalled on a paper distribution")
	}
}

func TestIFastSumPassesGrowWithDifficulty(t *testing.T) {
	easy := gen.New(gen.Config{Dist: gen.CondOne, N: 20000, Delta: 30, Seed: 5}).Slice()
	hard := gen.New(gen.Config{Dist: gen.SumZero, N: 20000, Delta: 2000, Seed: 5}).Slice()
	_, pe := IFastSumStats(easy)
	_, ph := IFastSumStats(hard)
	if ph <= pe {
		t.Fatalf("expected more distillation passes on Sum=Zero δ=2000 (%d) than C(X)=1 δ=30 (%d)", ph, pe)
	}
}

func TestIFastSumOverflowFallback(t *testing.T) {
	// The exact sum is finite but the running ⊕ prefix overflows.
	xs := []float64{math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64, -math.MaxFloat64, 1}
	if got := IFastSum(xs); got != 1 {
		t.Fatalf("overflowing prefix: got %g, want 1", got)
	}
	// Genuinely infinite sums resolve per IEEE.
	if got := IFastSum([]float64{math.MaxFloat64, math.MaxFloat64}); !math.IsInf(got, 1) {
		t.Fatalf("got %g, want +Inf", got)
	}
	if got := IFastSum([]float64{math.Inf(1), 1}); !math.IsInf(got, 1) {
		t.Fatalf("got %g, want +Inf", got)
	}
	if got := IFastSum([]float64{math.Inf(1), math.Inf(-1)}); !math.IsNaN(got) {
		t.Fatalf("got %g, want NaN", got)
	}
}

func TestIFastSumDoesNotModifyInput(t *testing.T) {
	xs := []float64{1e100, 1, -1e100, 0.5}
	cp := append([]float64(nil), xs...)
	IFastSum(xs)
	for i := range xs {
		if xs[i] != cp[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestIFastSumQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]float64, 0, len(raw))
		for _, b := range raw {
			x := math.Float64frombits(b)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		return IFastSum(xs) == oracle.Sum(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveKahanNeumaierPairwiseBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for name, f := range map[string]func([]float64) float64{
		"naive": Naive, "kahan": Kahan, "neumaier": Neumaier,
		"pairwise": Pairwise, "demmelhida": DemmelHida,
	} {
		if got := f(xs); got != 15 {
			t.Errorf("%s = %g, want 15", name, got)
		}
		if got := f(nil); got != 0 {
			t.Errorf("%s(nil) = %g, want 0", name, got)
		}
	}
}

func TestNeumaierBeatsKahanOnLargeSummand(t *testing.T) {
	// Classic case: [1, 1e100, 1, -1e100] — Kahan loses the small terms.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Neumaier(xs); got != 2 {
		t.Errorf("Neumaier = %g, want 2", got)
	}
	if got := Kahan(xs); got == 2 {
		t.Skip("Kahan unexpectedly exact here; platform FMA contraction?")
	}
}

func TestPairwiseAccuracyOrdering(t *testing.T) {
	// On ill-conditioned data: |pairwise−exact| ≤ |naive−exact| is typical
	// (not guaranteed); check error bounds rather than strict ordering.
	xs := gen.New(gen.Config{Dist: gen.Anderson, N: 100000, Delta: 30, Seed: 3}).Slice()
	exact := oracle.Sum(xs)
	absSum := oracle.AbsSum(xs)
	for name, f := range map[string]func([]float64) float64{
		"kahan": Kahan, "neumaier": Neumaier, "pairwise": Pairwise,
	} {
		err := math.Abs(f(xs) - exact)
		// Generous bound: c·n·eps·Σ|x|.
		if err > 1e-10*absSum {
			t.Errorf("%s error %g too large vs Σ|x|=%g", name, err, absSum)
		}
	}
}

func TestDemmelHidaHighAccuracy(t *testing.T) {
	xs := gen.New(gen.Config{Dist: gen.Random, N: 5000, Delta: 400, Seed: 9}).Slice()
	exact := oracle.Sum(xs)
	got := DemmelHida(xs)
	if exact == 0 {
		t.Skip("degenerate exact zero")
	}
	rel := math.Abs(got-exact) / math.Abs(exact)
	if rel > 1e-9 {
		t.Fatalf("DemmelHida relative error %g", rel)
	}
}
