package baseline

import (
	"math"

	"parsum/internal/accum"
	"parsum/internal/eft"
	"parsum/internal/fpnum"
)

// IFastSum returns the correctly rounded sum of xs using the distillation
// approach of Zhu & Hayes (2009), the paper's sequential comparator. The
// input slice is not modified (use IFastSumInPlace to avoid the copy).
func IFastSum(xs []float64) float64 {
	buf := append([]float64(nil), xs...)
	return IFastSumInPlace(buf)
}

// IFastSumInPlace is IFastSum operating destructively on xs.
func IFastSumInPlace(xs []float64) float64 {
	v, _ := iFastSum(xs)
	return v
}

// IFastSumStats reports the result together with the number of distillation
// passes performed — the quantity that grows with the difficulty (condition
// number and exponent spread δ) of the input, which is what makes iFastSum
// slow on the paper's dataset 4 at large δ. The input is copied.
func IFastSumStats(xs []float64) (sum float64, passes int) {
	buf := append([]float64(nil), xs...)
	return iFastSum(buf)
}

// iFastSum distills xs in place: each pass replaces the array with the
// exact TwoSum residues of a sequential accumulation, preserving the exact
// total s + Σxᵢ, until an explicit bound on the residue certifies that s is
// the correctly rounded total.
//
// Certification: after a pass, truth = s + e₁ + E with |E| ≤ em =
// count·½ulp(max|running sum|), since every TwoSum residue is at most half
// an ulp of its rounded sum. If fl(s ± 2(|e₁|+em)) == s then the whole
// interval [s−2b, s+2b] rounds to s (rounding is monotone), so the truth
// does too; this yields correct rounding, which implies the faithful
// rounding the paper requires.
//
// Robustness beyond the published algorithm: error-free transforms break
// down if any intermediate ⊕ overflows or an input is non-finite, so a
// cheap Σ|x| pre-scan routes such inputs to the exact superaccumulator
// instead; a pass-count cap does the same for (never observed) distillation
// stalls. Tests assert the fallback stays cold on the paper's four
// distributions.
func iFastSum(xs []float64) (float64, int) {
	var absSum float64
	for _, x := range xs {
		absSum += math.Abs(x)
	}
	if math.IsInf(absSum, 0) || math.IsNaN(absSum) {
		// Possible intermediate overflow (the exact sum may still be
		// finite) or non-finite inputs: both are outside EFT territory.
		return fallback(xs), 1
	}
	var s float64
	n := len(xs)
	for i := 0; i < n; i++ {
		s, xs[i] = eft.TwoSum(s, xs[i])
	}
	const maxPasses = 1000
	for pass := 2; pass <= maxPasses; pass++ {
		count := 0
		var st, sm float64
		for i := 0; i < n; i++ {
			var b float64
			st, b = eft.TwoSum(st, xs[i])
			if b != 0 {
				xs[count] = b
				count++
				if a := math.Abs(st); a > sm {
					sm = a
				}
			}
		}
		em := float64(count) * fpnum.HalfUlp(sm)
		var e1 float64
		s, e1 = eft.TwoSum(s, st)
		// Truth = s + e1 + E with |E| ≤ em.
		if em == 0 {
			// Truth is exactly s + e1, and s = fl(s+e1) by construction.
			return s, pass
		}
		// Bracket the residue interval [e1−em, e1+em] with one-ulp slack to
		// absorb the rounding of the endpoint computations themselves; if
		// both bracketing endpoints round onto s, monotonicity of rounding
		// puts the truth there too.
		lo := math.Nextafter(e1-em, math.Inf(-1))
		hi := math.Nextafter(e1+em, math.Inf(1))
		if s+lo == s && s+hi == s {
			return s, pass
		}
		if e1 != 0 {
			xs[count] = e1
			count++
		}
		n = count
		if n == 0 {
			return s, pass
		}
	}
	distillationStalls.Add(1)
	w := accum.NewWindow(0)
	w.Add(s)
	w.AddSlice(xs[:n])
	return w.Round(), maxPasses
}

// fallback computes the exact rounded sum with a superaccumulator; used for
// inputs outside the domain of error-free transforms.
func fallback(xs []float64) float64 {
	w := accum.NewWindow(0)
	w.AddSlice(xs)
	return w.Round()
}
