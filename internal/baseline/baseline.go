// Package baseline implements the sequential summation algorithms the
// paper's evaluation compares against, plus standard mid-accuracy methods
// used as context in the sequential shoot-out benchmark:
//
//   - Naive: left-to-right ⊕ accumulation (no accuracy guarantee).
//   - Kahan: compensated summation.
//   - Neumaier: improved Kahan (Kahan–Babuška), robust to |x| > |s|.
//   - Pairwise: tree summation with O(log n) error growth.
//   - DemmelHida: sum in decreasing order of exponent (Demmel & Hida 2004);
//     highly accurate but not guaranteed faithfully rounded, exactly as the
//     paper notes in Section 1.1.
//   - IFastSum: the state-of-the-art exact sequential algorithm of
//     Zhu & Hayes (2009), the paper's Figure 1–3 comparator. Our Go
//     reimplementation follows the published distillation structure and
//     certifies correct rounding with an explicit error bound; see
//     IFastSum for the details and the (rare) superaccumulator fallback.
package baseline

import (
	"math"
	"sort"
	"sync/atomic"
)

// distillationStalls counts iFastSum invocations that exhausted the
// distillation pass budget and fell back to a superaccumulator. Tests
// assert it stays zero on the paper's four distributions.
var distillationStalls atomic.Int64

// DistillationStalls reports how many iFastSum calls hit the stall
// fallback since process start.
func DistillationStalls() int64 { return distillationStalls.Load() }

// Naive returns the left-to-right floating-point sum of xs.
func Naive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Kahan returns the compensated (Kahan) sum of xs.
func Kahan(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// Neumaier returns the Kahan–Babuška sum of xs, which remains accurate when
// individual summands exceed the running sum.
func Neumaier(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		t := s + x
		if math.Abs(s) >= math.Abs(x) {
			c += (s - t) + x
		} else {
			c += (x - t) + s
		}
		s = t
	}
	return s + c
}

// pairwiseBase is the block size below which Pairwise sums naively.
const pairwiseBase = 128

// Pairwise returns the pairwise (tree) sum of xs.
func Pairwise(xs []float64) float64 {
	if len(xs) <= pairwiseBase {
		return Naive(xs)
	}
	mid := len(xs) / 2
	return Pairwise(xs[:mid]) + Pairwise(xs[mid:])
}

// DemmelHida sums xs in decreasing order of magnitude (a proxy for the
// decreasing-exponent order of Demmel & Hida 2004). The input is not
// modified. The result is highly accurate but, as the paper points out,
// not necessarily faithfully rounded.
func DemmelHida(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Slice(ys, func(i, j int) bool {
		return math.Abs(ys[i]) > math.Abs(ys[j])
	})
	return Naive(ys)
}
