package baseline

import "parsum/internal/engine"

// Registry names of the engines this package provides. IFastSum is exact
// and correctly rounded; the rest are the non-exact comparators of the
// sequential shoot-out, registered so the bench harness and tools can
// enumerate every strategy uniformly. None of them stream: the compensated
// methods carry correction terms that do not merge exactly, so parallel
// requests fall back to the sequential one-shot Sum.
const (
	EngineIFastSum   = "ifastsum"
	EngineNaive      = "naive"
	EngineKahan      = "kahan"
	EngineNeumaier   = "neumaier"
	EnginePairwise   = "pairwise"
	EngineDemmelHida = "demmel-hida"
)

func init() {
	engine.Register(engine.New(EngineIFastSum,
		"Zhu & Hayes (2009) distillation with certified correct rounding (sequential comparator)",
		engine.Caps{Exact: true, CorrectlyRounded: true}, IFastSum, nil))
	engine.Register(engine.New(EngineNaive,
		"left-to-right floating-point accumulation (no accuracy guarantee)",
		engine.Caps{}, Naive, nil))
	engine.Register(engine.New(EngineKahan,
		"Kahan compensated summation",
		engine.Caps{}, Kahan, nil))
	engine.Register(engine.New(EngineNeumaier,
		"Kahan–Babuška summation, robust to |x| > |s|",
		engine.Caps{}, Neumaier, nil))
	engine.Register(engine.New(EnginePairwise,
		"pairwise (tree) summation with O(log n) error growth",
		engine.Caps{}, Pairwise, nil))
	engine.Register(engine.New(EngineDemmelHida,
		"decreasing-magnitude-order accumulation (Demmel & Hida 2004); accurate, not faithful",
		engine.Caps{}, DemmelHida, nil))
}
