package batch

// SizeBuckets are the upper bounds (inclusive, in values per flush) of
// the flush-size histogram; an implicit +Inf bucket follows the last.
var SizeBuckets = [...]float64{1, 8, 64, 256, 1024, 4096, 16384}

// LatencyBuckets are the upper bounds (inclusive, in seconds) of the
// flush-latency histogram; an implicit +Inf bucket follows the last.
var LatencyBuckets = [...]float64{100e-6, 500e-6, 1e-3, 5e-3, 25e-3, 100e-3, 1}

// Metrics is a flat, allocation-free snapshot of the batcher's counters.
// Every field is updated under one mutex inside the Batcher and copied
// out under the same mutex, so a snapshot is internally consistent: the
// invariants below hold in every snapshot, not just quiescent ones.
//
//	Flushes == SizeFlushes + DeadlineFlushes + DrainFlushes
//	FlushedRequests <= Enqueued
//	FlushedValues   <= EnqueuedValues
//	QueueDepth      == Enqueued - FlushedRequests  (and >= 0)
//
// Histogram fields hold per-bucket (non-cumulative) counts; the
// Prometheus exposition layer accumulates them.
type Metrics struct {
	Enqueued       int64 // requests admitted to the queue
	EnqueuedValues int64 // float64s admitted to the queue
	Rejected       int64 // requests refused because the queue was full
	KeyedEnqueued  int64 // subset of Enqueued that carried a key

	Flushes         int64 // sink flushes performed
	FlushedRequests int64 // requests completed by a flush
	FlushedValues   int64 // float64s handed to the sink
	SizeFlushes     int64 // flushes triggered by MaxBatch
	DeadlineFlushes int64 // flushes triggered by MaxDelay
	DrainFlushes    int64 // flushes triggered by Close

	KeyedFlushedRequests int64 // subset of FlushedRequests that carried a key

	QueueDepth int64 // requests admitted but not yet flushed
	FlushNs    int64 // cumulative wall time inside sink calls

	SizeHist    [len(SizeBuckets) + 1]int64    // flush sizes, per bucket
	LatencyHist [len(LatencyBuckets) + 1]int64 // flush latencies, per bucket
}

// bucketIdx returns the index of the first bucket whose upper bound
// admits v, or len(bounds) for the +Inf bucket.
func bucketIdx(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}
