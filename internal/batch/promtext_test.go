package batch

import (
	"strings"
	"testing"
)

// buildExposition writes one of every family kind through PromWriter.
func buildExposition(reqs int64) []byte {
	var w PromWriter
	w.Gauge("app_up", "whether the app is up", 1)
	w.Counter("app_requests_total", "requests served", float64(reqs))
	w.CounterVec("app_flush_cause_total", "flushes by cause", "cause",
		map[string]float64{"size": float64(reqs / 2), "deadline": float64(reqs / 4)})
	counts := []int64{reqs, 2, 1, 0}
	w.Histogram("app_flush_size", "values per flush", []float64{8, 64, 256}, counts, float64(reqs*3))
	return w.Bytes()
}

func TestPromWriterRoundTripsThroughLinter(t *testing.T) {
	fams, err := LintProm(buildExposition(100))
	if err != nil {
		t.Fatalf("linting our own exposition: %v", err)
	}
	for _, name := range []string{"app_up", "app_requests_total", "app_flush_cause_total", "app_flush_size"} {
		if fams[name] == nil {
			t.Fatalf("family %s missing after parse", name)
		}
	}
	f := fams["app_flush_size"]
	if got, _ := f.series("app_flush_size_count", ""); got != 103 {
		t.Fatalf("histogram _count = %v, want 103", got)
	}
	if v, ok := fams["app_flush_cause_total"].series("app_flush_cause_total", `cause="size"`); !ok || v != 50 {
		t.Fatalf("labelled counter series = %v (ok=%v), want 50", v, ok)
	}
}

func TestCheckMonotoneAcceptsGrowth(t *testing.T) {
	prev, err := LintProm(buildExposition(100))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LintProm(buildExposition(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(prev, cur); err != nil {
		t.Fatalf("growing counters flagged: %v", err)
	}
	// Gauges may move freely; only counters/histograms are constrained.
	if err := CheckMonotone(cur, prev); err == nil {
		t.Fatal("shrinking counters not flagged")
	}
}

func TestParsePromRejectsMalformedExpositions(t *testing.T) {
	cases := map[string]string{
		"sample before metadata": "app_x_total 1\n",
		"missing TYPE": "# HELP app_x_total help text\n" +
			"app_x_total 1\n",
		"invalid TYPE": "# HELP app_x_total h\n# TYPE app_x_total countr\napp_x_total 1\n",
		"duplicate series": "# HELP app_x_total h\n# TYPE app_x_total counter\n" +
			"app_x_total 1\napp_x_total 2\n",
		"duplicate labelled series": "# HELP app_x_total h\n# TYPE app_x_total counter\n" +
			"app_x_total{c=\"a\"} 1\napp_x_total{c=\"a\"} 2\n",
		"bad value": "# HELP app_x_total h\n# TYPE app_x_total counter\napp_x_total one\n",
		"bad name":  "# HELP 9bad h\n# TYPE 9bad counter\n9bad 1\n",
		"HELP after samples": "# HELP app_x_total h\n# TYPE app_x_total counter\napp_x_total 1\n" +
			"# HELP app_x_total again\n",
	}
	for name, text := range cases {
		if _, err := ParseProm([]byte(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
	// Distinct label values are distinct series, not duplicates.
	ok := "# HELP app_x_total h\n# TYPE app_x_total counter\n" +
		"app_x_total{c=\"a\"} 1\napp_x_total{c=\"b\"} 2\n"
	if _, err := ParseProm([]byte(ok)); err != nil {
		t.Errorf("distinct label values rejected: %v", err)
	}
}

func TestLintPromRejectsBrokenHistograms(t *testing.T) {
	head := "# HELP h_x h\n# TYPE h_x histogram\n"
	cases := map[string]string{
		"non-cumulative buckets": head +
			"h_x_bucket{le=\"1\"} 5\nh_x_bucket{le=\"2\"} 3\nh_x_bucket{le=\"+Inf\"} 5\nh_x_sum 1\nh_x_count 5\n",
		"unordered bounds": head +
			"h_x_bucket{le=\"2\"} 1\nh_x_bucket{le=\"1\"} 2\nh_x_bucket{le=\"+Inf\"} 2\nh_x_sum 1\nh_x_count 2\n",
		"missing +Inf": head +
			"h_x_bucket{le=\"1\"} 1\nh_x_sum 1\nh_x_count 1\n",
		"count mismatch": head +
			"h_x_bucket{le=\"1\"} 1\nh_x_bucket{le=\"+Inf\"} 2\nh_x_sum 1\nh_x_count 3\n",
		"missing sum": head +
			"h_x_bucket{le=\"1\"} 1\nh_x_bucket{le=\"+Inf\"} 2\nh_x_count 2\n",
		"negative counter": "# HELP c_x_total h\n# TYPE c_x_total counter\nc_x_total -1\n",
	}
	for name, text := range cases {
		if _, err := LintProm([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
}

func TestCheckMonotoneCatchesDisappearingSeries(t *testing.T) {
	full := "# HELP c_total h\n# TYPE c_total counter\nc_total{c=\"a\"} 1\nc_total{c=\"b\"} 1\n"
	partial := "# HELP c_total h\n# TYPE c_total counter\nc_total{c=\"a\"} 2\n"
	prev, err := LintProm([]byte(full))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LintProm([]byte(partial))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(prev, cur); err == nil || !strings.Contains(err.Error(), "disappeared") {
		t.Fatalf("disappearing series not flagged (err=%v)", err)
	}
}

func TestBucketIdx(t *testing.T) {
	bounds := []float64{1, 8, 64}
	for _, tc := range []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {2, 1}, {8, 1}, {64, 2}, {65, 3}} {
		if got := bucketIdx(bounds, tc.v); got != tc.want {
			t.Errorf("bucketIdx(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}
