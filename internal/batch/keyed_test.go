package batch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"parsum/internal/keyed"
	"parsum/internal/oracle"
)

func newKeyedStore(t *testing.T, parts int) *keyed.Store {
	t.Helper()
	s, err := keyed.New(keyed.Options{Engine: "dense", Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// plainSink is a minimal Sink that records the global multiset.
type plainSink struct {
	mu   sync.Mutex
	adds []float64
	subs []float64
}

func (p *plainSink) AddBatch(xs []float64) {
	p.mu.Lock()
	p.adds = append(p.adds, xs...)
	p.mu.Unlock()
}

func (p *plainSink) SubBatch(xs []float64) {
	p.mu.Lock()
	p.subs = append(p.subs, xs...)
	p.mu.Unlock()
}

// dualSink combines the global Sink with a keyed store — the shape the
// server's batcher sink takes.
type dualSink struct {
	plainSink
	store *keyed.Store
}

func (d *dualSink) AddKeyedBatches(bs []keyed.Batch) { d.store.AddKeyedBatches(bs) }
func (d *dualSink) SubKeyedBatches(bs []keyed.Batch) { d.store.SubKeyedBatches(bs) }

func newDualBatcher(t *testing.T, parts int, opt Options) (*Batcher, *dualSink) {
	t.Helper()
	sink := &dualSink{store: newKeyedStore(t, parts)}
	b := New(sink, opt)
	t.Cleanup(b.Close)
	return b, sink
}

func TestKeyedThroughBatcherBitIdentical(t *testing.T) {
	b, sink := newDualBatcher(t, 4, Options{MaxBatch: 64, QueueLen: 1024})
	want := make(map[string][]float64)
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("key-%d", wr.Intn(7))
				xs := make([]float64, 1+wr.Intn(5))
				for j := range xs {
					xs[j] = math.Ldexp(wr.Float64()*2-1, wr.Intn(300)-150)
				}
				if err := b.AddKeyed(ctx, key, xs); err != nil {
					t.Errorf("AddKeyed: %v", err)
					return
				}
				mu.Lock()
				want[key] = append(want[key], xs...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for key, xs := range want {
		got, ok := sink.store.Sum(key)
		if !ok {
			t.Fatalf("key %q missing after flushes", key)
		}
		ref := oracle.Sum(xs)
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Errorf("Sum(%q) = %x, oracle %x", key, math.Float64bits(got), math.Float64bits(ref))
		}
	}
	m := b.Metrics()
	if m.KeyedEnqueued != 6*40 {
		t.Errorf("KeyedEnqueued = %d, want %d", m.KeyedEnqueued, 6*40)
	}
	if m.KeyedFlushedRequests != m.KeyedEnqueued {
		t.Errorf("KeyedFlushedRequests = %d, want %d", m.KeyedFlushedRequests, m.KeyedEnqueued)
	}
}

// TestKeyedAndUnkeyedShareFlushes drives both kinds through one batcher
// with a dual sink: the keyed values must land per key, the unkeyed
// values in the global sink, with nothing crossing over.
func TestKeyedAndUnkeyedShareFlushes(t *testing.T) {
	b, sink := newDualBatcher(t, 2, Options{MaxBatch: 32})
	ctx := context.Background()

	var wantGlobal, wantKeyA, wantKeyB []float64
	for i := 0; i < 30; i++ {
		g := []float64{float64(i) * 1.5}
		ka := []float64{float64(i) * -0.25}
		kb := []float64{math.Ldexp(1, i-15)}
		if err := b.Add(ctx, g); err != nil {
			t.Fatal(err)
		}
		if err := b.AddKeyed(ctx, "a", ka); err != nil {
			t.Fatal(err)
		}
		if err := b.SubKeyed(ctx, "b", kb); err != nil {
			t.Fatal(err)
		}
		wantGlobal = append(wantGlobal, g...)
		wantKeyA = append(wantKeyA, ka...)
		wantKeyB = append(wantKeyB, kb...)
	}
	sink.mu.Lock()
	gotGlobal := append([]float64(nil), sink.adds...)
	nSubs := len(sink.subs)
	sink.mu.Unlock()
	if nSubs != 0 {
		t.Errorf("keyed deletions leaked into the global sink: %d values", nSubs)
	}
	if got, want := oracle.Sum(gotGlobal), oracle.Sum(wantGlobal); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("global sum = %x, want %x", math.Float64bits(got), math.Float64bits(want))
	}
	if got, _ := sink.store.Sum("a"); math.Float64bits(got) != math.Float64bits(oracle.Sum(wantKeyA)) {
		t.Errorf("key a = %v", got)
	}
	negB := oracle.Sum(wantKeyB)
	if got, _ := sink.store.Sum("b"); math.Float64bits(got) != math.Float64bits(-negB) {
		t.Errorf("key b = %v, want %v", got, -negB)
	}
}

func TestKeyedRequiresKeyedSink(t *testing.T) {
	b := New(&plainSink{}, Options{})
	defer b.Close()
	if err := b.AddKeyed(context.Background(), "k", []float64{1}); err != ErrNoKeyedSink {
		t.Errorf("AddKeyed on plain sink: err = %v, want ErrNoKeyedSink", err)
	}
	if err := b.SubKeyed(context.Background(), "k", []float64{1}); err != ErrNoKeyedSink {
		t.Errorf("SubKeyed on plain sink: err = %v, want ErrNoKeyedSink", err)
	}
}

func TestKeyedKeyValidation(t *testing.T) {
	b, sink := newDualBatcher(t, 1, Options{})
	ctx := context.Background()
	if err := b.AddKeyed(ctx, "", []float64{1}); err == nil {
		t.Error("empty key accepted")
	}
	if err := b.AddKeyed(ctx, strings.Repeat("k", keyed.MaxKeyLen+1), []float64{1}); err == nil {
		t.Error("oversized key accepted")
	}
	// An empty keyed batch registers the key — not a no-op like Add(nil).
	if err := b.AddKeyed(ctx, "registered", nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := sink.store.Sum("registered"); !ok || math.Float64bits(v) != 0 {
		t.Errorf("empty keyed batch: Sum = (%v, %v), want (+0, true)", v, ok)
	}
}
