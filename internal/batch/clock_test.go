package batch

import (
	"testing"
	"time"
)

func TestFakeClockFiresOnlyDueTimers(t *testing.T) {
	clk := NewFakeClock()
	early := clk.NewTimer()
	late := clk.NewTimer()
	early.Reset(time.Millisecond)
	late.Reset(5 * time.Millisecond)
	if clk.Armed() != 2 {
		t.Fatalf("Armed = %d, want 2", clk.Armed())
	}

	clk.Advance(2 * time.Millisecond)
	select {
	case <-early.C():
	default:
		t.Fatal("early timer did not fire at its deadline")
	}
	select {
	case <-late.C():
		t.Fatal("late timer fired before its deadline")
	default:
	}
	if clk.Armed() != 1 {
		t.Fatalf("Armed after first advance = %d, want 1", clk.Armed())
	}

	clk.Advance(3 * time.Millisecond)
	select {
	case <-late.C():
	default:
		t.Fatal("late timer did not fire once due")
	}
}

func TestFakeClockResetDrainsStaleFire(t *testing.T) {
	clk := NewFakeClock()
	tm := clk.NewTimer()
	tm.Reset(time.Millisecond)
	clk.Advance(time.Millisecond) // fire is now buffered
	tm.Reset(time.Minute)         // re-arm: the stale fire must be gone
	select {
	case <-tm.C():
		t.Fatal("Reset left a stale fire in the channel")
	default:
	}
	clk.Advance(time.Minute)
	select {
	case <-tm.C():
	default:
		t.Fatal("re-armed timer did not fire at its new deadline")
	}
}

func TestFakeClockStopPreventsFire(t *testing.T) {
	clk := NewFakeClock()
	tm := clk.NewTimer()
	tm.Reset(time.Millisecond)
	tm.Stop()
	clk.Advance(time.Hour)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if clk.Armed() != 0 {
		t.Fatalf("Armed = %d after Stop, want 0", clk.Armed())
	}
}

func TestFakeClockAdvanceIsMonotone(t *testing.T) {
	clk := NewFakeClock()
	t0 := clk.Now()
	clk.Advance(3 * time.Second)
	if got := clk.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("Now advanced by %v, want 3s", got)
	}
}

func TestRealClockTimerStartsStopped(t *testing.T) {
	tm := RealClock{}.NewTimer()
	select {
	case <-tm.C():
		t.Fatal("fresh timer fired without Reset")
	case <-time.After(5 * time.Millisecond):
	}
	tm.Reset(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("armed real timer never fired")
	}
}
