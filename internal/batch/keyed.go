package batch

// Keyed ingestion through the batcher: AddKeyed/SubKeyed submit
// (key, values) requests into the same bounded queue as Add/Sub, so
// keyed and single-sum traffic share admission control, the latency
// budget, and group commit. A flush that coalesced both kinds applies
// the keyed share with one AddKeyedBatches/SubKeyedBatches pair —
// grouped by store partition inside the sink — and the unkeyed share
// through the usual SliceSink path. Exactness is per key: however the
// flusher regroups requests, every value lands in exactly one key's
// superaccumulator, so per-key sums are bit-identical to sequential
// ingestion of each key's multiset.

import (
	"context"
	"errors"
	"fmt"

	"parsum/internal/keyed"
)

// ErrNoKeyedSink is returned by AddKeyed/SubKeyed when the sink passed
// to New does not implement KeyedSink.
var ErrNoKeyedSink = errors.New("batch: sink does not support keyed accumulation")

// KeyedSink is the optional Sink extension for multi-key exact
// aggregation; *keyed.Store (and *parsum.Keyed) implement it. The
// batcher detects it at construction, and AddKeyed/SubKeyed fail fast
// with ErrNoKeyedSink when it is absent.
type KeyedSink interface {
	AddKeyedBatches(batches []keyed.Batch)
	SubKeyedBatches(batches []keyed.Batch)
}

// AddKeyed submits xs for exact accumulation under key. Admission and
// completion semantics match Add: nil means the flush containing the
// batch completed (a subsequent per-key Sum observes it), ErrQueueFull
// means nothing was admitted. An empty xs is NOT a no-op — it registers
// the key at exact +0, mirroring keyed.Store.Add. Invalid keys (empty,
// or longer than keyed.MaxKeyLen) are rejected here with an error, not
// a panic: by the flush there is no caller left to answer to.
func (b *Batcher) AddKeyed(ctx context.Context, key string, xs []float64) error {
	if err := b.checkKeyed(key); err != nil {
		return err
	}
	return b.submit(ctx, key, xs, false)
}

// SubKeyed submits xs for exact deletion under key — the group inverse
// of AddKeyed, with identical admission semantics. The sink must support
// deletion for the values ever flushed here (the server gates
// non-invertible engines upstream, as it does for Sub).
func (b *Batcher) SubKeyed(ctx context.Context, key string, xs []float64) error {
	if err := b.checkKeyed(key); err != nil {
		return err
	}
	return b.submit(ctx, key, xs, true)
}

func (b *Batcher) checkKeyed(key string) error {
	if b.keyed == nil {
		return ErrNoKeyedSink
	}
	if key == "" {
		return fmt.Errorf("batch: empty key")
	}
	if len(key) > keyed.MaxKeyLen {
		return fmt.Errorf("batch: key length %d exceeds limit %d", len(key), keyed.MaxKeyLen)
	}
	return nil
}
