// Package batch implements the asynchronous ingestion front-end for the
// aggregation service: a latency-budgeted batcher that sits between
// request handlers and a sharded exact accumulator. Handlers enqueue
// (values, reply) items into a bounded queue; flusher goroutines drain
// it, coalescing admitted requests until either MaxBatch values are
// pending or the MaxDelay deadline set by the oldest pending request
// expires, then apply the whole group to the sink in one AddBatch /
// SubBatch call and complete every reply. When the queue is full the
// enqueue fails fast with ErrQueueFull and the accumulator is untouched,
// so the caller can answer 429 instead of blocking the accept loop.
//
// Batching is safe for exactness, not merely for throughput: the sink is
// a superaccumulator (a commutative group under exact addition), so any
// coalescing, reordering across flushers, or add/sub regrouping the
// batcher performs yields a final sum bit-identical to summing the
// accepted multiset sequentially. Admission is the only observable
// effect — which is exactly what the reply channel reports: when Add
// returns nil, the values are already folded into the sink, so any
// subsequent Sum observes them (group commit).
//
// Every counter lives in one mutex-guarded Metrics struct, updated on
// the enqueue and flush paths and copied out atomically by Metrics(),
// so a snapshot can never report more flushes than enqueues (see the
// invariants on Metrics). The enqueue hot path performs no allocations:
// items are recycled through a sync.Pool and replies travel over pooled
// one-slot channels.
package batch

import (
	"context"
	"errors"
	"sync"
	"time"

	"parsum/internal/keyed"
)

// ErrQueueFull is returned by Add/Sub when the bounded queue is at
// capacity. The batch was not admitted and the sink is untouched; the
// caller should shed load (HTTP 429) or back off and retry.
var ErrQueueFull = errors.New("batch: queue full")

// ErrClosed is returned by Add/Sub after Close.
var ErrClosed = errors.New("batch: batcher closed")

// Sink is the exact accumulator the batcher flushes into.
// *parsum.Sharded implements it.
type Sink interface {
	AddBatch(xs []float64)
	SubBatch(xs []float64)
}

// SliceSink is an optional Sink extension: a sink that can apply a
// whole flush group as a list of slices in one call spares the batcher
// the concatenation copy on multi-request flushes. *shard.Sharded and
// *parsum.Sharded implement it (one striped-lock acquisition for the
// whole group). The batcher detects it at construction and prefers it
// automatically.
type SliceSink interface {
	AddBatches(batches [][]float64)
	SubBatches(batches [][]float64)
}

// Options configures a Batcher. The zero value is usable: queue of 256
// requests, 4096-value flush threshold, 2ms latency budget, one flusher.
type Options struct {
	// QueueLen bounds the number of admitted-but-unflushed requests;
	// beyond it Add/Sub fail fast with ErrQueueFull. 0 means 256.
	QueueLen int
	// MaxBatch is the pending-value count that triggers an immediate
	// flush. A single request larger than MaxBatch flushes alone. 0
	// means 4096.
	MaxBatch int
	// MaxDelay is the latency budget: a flush happens no later than
	// MaxDelay after the oldest pending request was picked up, even if
	// MaxBatch was never reached. 0 means 2ms.
	MaxDelay time.Duration
	// Flushers is the number of concurrent flusher goroutines. More
	// than one trades the single-flusher ordering guarantee for flush
	// parallelism — harmless for exactness (the sink is a commutative
	// group) and useful when one goroutine cannot saturate the sink.
	// 0 means 1.
	Flushers int
	// Clock supplies time; nil means the wall clock. Tests inject a
	// FakeClock to make deadline flushes deterministic.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.Flushers <= 0 {
		o.Flushers = 1
	}
	if o.Clock == nil {
		o.Clock = RealClock{}
	}
	return o
}

// item is one admitted request. done is a one-slot reply channel (send,
// never close, so items recycle through the pool). A non-empty key marks
// a keyed request bound for the KeyedSink; "" is the single-sum path.
type item struct {
	key    string
	values []float64
	sub    bool
	done   chan error
}

var itemPool = sync.Pool{New: func() any { return &item{done: make(chan error, 1)} }}

type flushCause int

const (
	flushSize flushCause = iota
	flushDeadline
	flushDrain
)

// Batcher is the bounded-queue, latency-budgeted ingestion front-end.
// All methods are safe for concurrent use.
type Batcher struct {
	sink   Sink
	slices SliceSink // non-nil when sink also implements SliceSink
	keyed  KeyedSink // non-nil when sink also implements KeyedSink
	opt    Options
	ch     chan *item
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	// mu guards closed and every counter in m; the enqueue path takes it
	// once (the queue send happens inside, non-blocking), the flush path
	// once per flush.
	mu     sync.Mutex
	closed bool
	m      Metrics
}

// New starts a Batcher flushing into sink. Stop it with Close.
func New(sink Sink, opt Options) *Batcher {
	opt = opt.withDefaults()
	b := &Batcher{
		sink: sink,
		opt:  opt,
		ch:   make(chan *item, opt.QueueLen),
		stop: make(chan struct{}),
	}
	b.slices, _ = sink.(SliceSink)
	b.keyed, _ = sink.(KeyedSink)
	b.wg.Add(opt.Flushers)
	for i := 0; i < opt.Flushers; i++ {
		go b.runFlusher()
	}
	return b
}

// Options returns the resolved configuration.
func (b *Batcher) Options() Options { return b.opt }

// Metrics returns a consistent snapshot of every counter (see the
// invariants documented on Metrics). It allocates nothing.
func (b *Batcher) Metrics() Metrics {
	b.mu.Lock()
	m := b.m
	b.mu.Unlock()
	return m
}

// Add submits xs for exact accumulation. It returns nil only after the
// flush containing xs has completed, ErrQueueFull when the queue was at
// capacity (state untouched), or ctx's error if the caller gave up
// waiting — in that last case the batch was admitted and will still be
// applied. An empty xs is a no-op.
func (b *Batcher) Add(ctx context.Context, xs []float64) error {
	return b.submit(ctx, "", xs, false)
}

// Sub submits xs for exact deletion — identical admission and completion
// semantics to Add. The sink must support SubBatch for the values ever
// flushed here (the server gates non-invertible engines upstream).
func (b *Batcher) Sub(ctx context.Context, xs []float64) error {
	return b.submit(ctx, "", xs, true)
}

func (b *Batcher) submit(ctx context.Context, key string, xs []float64, sub bool) error {
	it, err := b.enqueue(key, xs, sub)
	if it == nil {
		return err
	}
	select {
	case err := <-it.done:
		it.key, it.values = "", nil
		itemPool.Put(it)
		return err
	case <-ctx.Done():
		// Admitted but the caller stopped waiting: the flusher will
		// still apply the batch and send the reply; the item is left to
		// the GC since its reply was never consumed.
		return ctx.Err()
	}
}

// enqueue admits one request, or fails fast. It returns a nil item on
// every failure and on empty unkeyed batches (err == nil then); an empty
// keyed batch is still admitted — registering the key is state.
func (b *Batcher) enqueue(key string, xs []float64, sub bool) (*item, error) {
	if len(xs) == 0 && key == "" {
		return nil, nil
	}
	it := itemPool.Get().(*item)
	it.key, it.values, it.sub = key, xs, sub
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		it.key, it.values = "", nil
		itemPool.Put(it)
		return nil, ErrClosed
	}
	select {
	case b.ch <- it:
		b.m.Enqueued++
		b.m.EnqueuedValues += int64(len(xs))
		b.m.QueueDepth++
		if key != "" {
			b.m.KeyedEnqueued++
		}
		b.mu.Unlock()
		return it, nil
	default:
		b.m.Rejected++
		b.mu.Unlock()
		it.key, it.values = "", nil
		itemPool.Put(it)
		return nil, ErrQueueFull
	}
}

// Close stops admission, flushes everything already admitted, and waits
// for the flushers to exit. Safe to call more than once.
func (b *Batcher) Close() {
	b.once.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		// No enqueue can be in flight past the closed check now (the
		// check and the send share b.mu), so the flushers see a frozen
		// queue.
		close(b.stop)
		b.wg.Wait()
	})
}

func (b *Batcher) runFlusher() {
	defer b.wg.Done()
	timer := b.opt.Clock.NewTimer()
	var pending []*item
	var sc scratch
	for {
		select {
		case it := <-b.ch:
			pending = append(pending, it)
		case <-b.stop:
			pending = drainQueued(b.ch, pending)
			b.flush(pending, &sc, flushDrain)
			return
		}
		// First member admitted: the latency budget starts now.
		timer.Reset(b.opt.MaxDelay)
		n := len(pending[0].values)
		cause := flushSize
		stopping := false
	fill:
		for n < b.opt.MaxBatch {
			select {
			case it := <-b.ch:
				pending = append(pending, it)
				n += len(it.values)
			case <-timer.C():
				cause = flushDeadline
				break fill
			case <-b.stop:
				pending = drainQueued(b.ch, pending)
				cause = flushDrain
				stopping = true
				break fill
			}
		}
		if cause != flushDeadline {
			timer.Stop()
		}
		b.flush(pending, &sc, cause)
		pending = pending[:0]
		if stopping {
			return
		}
	}
}

// drainQueued moves everything already sitting in the queue into pending
// without blocking. With several flushers draining concurrently each
// item still lands in exactly one flush.
func drainQueued(ch <-chan *item, pending []*item) []*item {
	for {
		select {
		case it := <-ch:
			pending = append(pending, it)
		default:
			return pending
		}
	}
}

// scratch is one flusher's reusable flush buffers: slice lists for the
// SliceSink path, concatenation buffers for the plain Sink fallback,
// batch lists and an item filter for the keyed path.
type scratch struct {
	addS, subS [][]float64
	add, sub   []float64
	addK, subK []keyed.Batch
	plain      []*item
}

// flush applies one coalesced group to the sink — one AddBatches /
// SubBatches call when the sink is a SliceSink (no copying), otherwise
// one concatenated AddBatch and/or SubBatch — records the counters
// under one lock, and then completes every reply. Replies come last,
// so by the time a caller's Add returns, both the sink and the metrics
// already reflect its batch.
func (b *Batcher) flush(items []*item, sc *scratch, cause flushCause) {
	if len(items) == 0 {
		return
	}
	nv := 0
	keyedN := 0
	for _, it := range items {
		nv += len(it.values)
		if it.key != "" {
			keyedN++
		}
	}
	start := b.opt.Clock.Now()
	plain := items
	if keyedN > 0 {
		// Keyed requests exist only when the sink is a KeyedSink (AddKeyed
		// gates on it before enqueueing). Split them out, apply the whole
		// keyed share in one AddKeyedBatches/SubKeyedBatches pair — at most
		// one lock hop per touched store partition — and leave the plain
		// items for the usual paths below.
		ps, addK, subK := sc.plain[:0], sc.addK[:0], sc.subK[:0]
		for _, it := range items {
			switch {
			case it.key == "":
				ps = append(ps, it)
			case it.sub:
				subK = append(subK, keyed.Batch{Key: it.key, Values: it.values})
			default:
				addK = append(addK, keyed.Batch{Key: it.key, Values: it.values})
			}
		}
		if len(addK) > 0 {
			b.keyed.AddKeyedBatches(addK)
		}
		if len(subK) > 0 {
			b.keyed.SubKeyedBatches(subK)
		}
		// Drop the value references before reusing the buffers: the
		// caller-owned slices must not stay pinned past the flush.
		for i := range addK {
			addK[i] = keyed.Batch{}
		}
		for i := range subK {
			subK[i] = keyed.Batch{}
		}
		sc.addK, sc.subK = addK, subK
		plain = ps
	}
	switch {
	case len(plain) == 0:
		// All-keyed flush: nothing for the single-sum sink.
	case len(plain) == 1:
		// Single-request flush: hand the batch straight to the sink.
		if plain[0].sub {
			b.sink.SubBatch(plain[0].values)
		} else {
			b.sink.AddBatch(plain[0].values)
		}
	case b.slices != nil:
		addS, subS := sc.addS[:0], sc.subS[:0]
		for _, it := range plain {
			if it.sub {
				subS = append(subS, it.values)
			} else {
				addS = append(addS, it.values)
			}
		}
		if len(addS) > 0 {
			b.slices.AddBatches(addS)
		}
		if len(subS) > 0 {
			b.slices.SubBatches(subS)
		}
		// Drop the value references before pooling the headers: the
		// caller-owned slices must not stay pinned past the flush.
		for i := range addS {
			addS[i] = nil
		}
		for i := range subS {
			subS[i] = nil
		}
		sc.addS, sc.subS = addS, subS
	default:
		add, sub := sc.add[:0], sc.sub[:0]
		for _, it := range plain {
			if it.sub {
				sub = append(sub, it.values...)
			} else {
				add = append(add, it.values...)
			}
		}
		if len(add) > 0 {
			b.sink.AddBatch(add)
		}
		if len(sub) > 0 {
			b.sink.SubBatch(sub)
		}
		sc.add, sc.sub = add, sub
	}
	if keyedN > 0 {
		for i := range plain {
			plain[i] = nil
		}
		sc.plain = plain[:0]
	}
	dur := b.opt.Clock.Now().Sub(start)

	b.mu.Lock()
	b.m.Flushes++
	b.m.KeyedFlushedRequests += int64(keyedN)
	b.m.FlushedRequests += int64(len(items))
	b.m.FlushedValues += int64(nv)
	b.m.QueueDepth -= int64(len(items))
	b.m.FlushNs += dur.Nanoseconds()
	b.m.SizeHist[bucketIdx(SizeBuckets[:], float64(nv))]++
	b.m.LatencyHist[bucketIdx(LatencyBuckets[:], dur.Seconds())]++
	switch cause {
	case flushSize:
		b.m.SizeFlushes++
	case flushDeadline:
		b.m.DeadlineFlushes++
	case flushDrain:
		b.m.DrainFlushes++
	}
	b.mu.Unlock()

	for _, it := range items {
		it.done <- nil
	}
}
