package batch

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the two time operations the batcher performs — reading
// the wall clock for flush-latency accounting and arming the MaxDelay
// deadline timer — so the deadline-flush tests can drive time by hand
// instead of sleeping. Production code uses RealClock.
type Clock interface {
	Now() time.Time
	// NewTimer returns a stopped timer; arm it with Reset.
	NewTimer() Timer
}

// Timer is the subset of time.Timer the flusher needs. Reset and Stop
// follow the Go 1.23 timer semantics: after Stop or Reset returns, the
// timer's channel holds no stale fire from an earlier arming.
type Timer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop()
}

// RealClock is the wall clock.
type RealClock struct{}

func (RealClock) Now() time.Time { return time.Now() }

func (RealClock) NewTimer() Timer {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return realTimer{t}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time   { return r.t.C }
func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r realTimer) Stop()                 { r.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic deadline
// tests. Advance moves time forward and fires every due timer in
// (deadline, creation) order, so "the earlier MaxDelay expires first" is
// a testable property rather than a scheduling accident.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a FakeClock at the Unix epoch.
func NewFakeClock() *FakeClock { return &FakeClock{now: time.Unix(0, 0)} }

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) NewTimer() Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clk: c, ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward by d and fires every armed timer whose
// deadline has passed, earliest deadline first (creation order breaks
// ties).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*fakeTimer
	for _, t := range c.timers {
		if t.armed && !t.when.After(now) {
			t.armed = false
			due = append(due, t)
		}
	}
	sort.SliceStable(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	// Deliver under the lock so a concurrent Reset/Stop (which drains
	// under the same lock) cannot interleave between the armed check and
	// the send. A timer fires at most once per arming and arming drains
	// the buffer, so the one-slot channel never blocks here.
	for _, t := range due {
		select {
		case t.ch <- now:
		default:
		}
	}
	c.mu.Unlock()
}

// Armed reports how many timers are currently armed — tests use it to
// wait until the flusher has set its deadline before advancing time.
func (c *FakeClock) Armed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if t.armed {
			n++
		}
	}
	return n
}

// BlockUntilArmed polls until at least n timers are armed. It is a test
// aid: enqueue, BlockUntilArmed(1), then Advance(MaxDelay).
func (c *FakeClock) BlockUntilArmed(n int) {
	for c.Armed() < n {
		time.Sleep(50 * time.Microsecond)
	}
}

type fakeTimer struct {
	clk   *FakeClock
	ch    chan time.Time
	when  time.Time
	armed bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Reset(d time.Duration) {
	t.clk.mu.Lock()
	t.when = t.clk.now.Add(d)
	t.armed = true
	t.drain()
	t.clk.mu.Unlock()
}

func (t *fakeTimer) Stop() {
	t.clk.mu.Lock()
	t.armed = false
	t.drain()
	t.clk.mu.Unlock()
}

// drain clears a pending fire so Reset/Stop match the Go 1.23 timer
// contract the flusher relies on. Caller holds clk.mu.
func (t *fakeTimer) drain() {
	select {
	case <-t.ch:
	default:
	}
}
