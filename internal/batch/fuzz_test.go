package batch_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parsum/internal/batch"
	"parsum/internal/oracle"
	"parsum/internal/shard"
)

// FuzzBatcherInterleave drives random enqueue/flush/reject schedules
// through the batcher and checks the group-commit contract against the
// math/big oracle: whatever interleaving, batch geometry, flush cause
// mix, or rejection pattern the schedule produces, the sink's final sum
// must be bit-identical to the exact sum of the *accepted* multiset
// (adds minus subs). Rejected submissions must leave no trace.
//
// The corpus seeds under testdata/fuzz cover the interesting regimes:
// single-request queues that force rejections, deadline-heavy trickles,
// and size-heavy bursts.
func FuzzBatcherInterleave(f *testing.F) {
	f.Add([]byte{1, 4, 1, 1, 0x00, 0x41, 0x12, 0x7f, 0x03})
	f.Add([]byte{8, 64, 4, 2, 0x01, 0x02, 0x43, 0x44, 0x05, 0x46, 0x07, 0x48})
	f.Add([]byte{2, 1, 2, 1, 0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip("schedule too short")
		}
		opt := batch.Options{
			QueueLen: 1 + int(data[0]%8),
			MaxBatch: 1 + int(data[1]%64),
			MaxDelay: 200 * time.Microsecond,
			Flushers: 1 + int(data[2]%2),
		}
		shards := 1 + int(data[3]%4)
		ops := data[4:]
		if len(ops) > 192 {
			ops = ops[:192]
		}

		// Pre-generate every submission deterministically: op byte picks
		// size, add-vs-sub, and retry policy; the value stream comes from
		// a seed derived from the schedule.
		seed := int64(len(ops))
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		r := rand.New(rand.NewSource(seed))
		type submission struct {
			values []float64
			sub    bool
			retry  bool
		}
		const workers = 3
		perWorker := make([][]submission, workers)
		for i, op := range ops {
			n := 1 + int(op&0x3f)%7
			xs := make([]float64, n)
			for j := range xs {
				xs[j] = math.Ldexp(r.Float64()-0.5, r.Intn(60)-30)
			}
			w := i % workers
			perWorker[w] = append(perWorker[w], submission{
				values: xs,
				sub:    op&0x40 != 0,
				retry:  op&0x80 != 0,
			})
		}

		s, err := shard.New(shard.Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		b := batch.New(s, opt)
		acceptedAdds := make([][]float64, workers)
		acceptedSubs := make([][]float64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				for _, sub := range perWorker[w] {
					attempts := 1
					if sub.retry {
						attempts = 3
					}
					var err error
					for a := 0; a < attempts; a++ {
						if sub.sub {
							err = b.Sub(ctx, sub.values)
						} else {
							err = b.Add(ctx, sub.values)
						}
						if err != batch.ErrQueueFull {
							break
						}
						time.Sleep(50 * time.Microsecond)
					}
					switch err {
					case nil:
						if sub.sub {
							acceptedSubs[w] = append(acceptedSubs[w], sub.values...)
						} else {
							acceptedAdds[w] = append(acceptedAdds[w], sub.values...)
						}
					case batch.ErrQueueFull:
						// Rejected: must not appear in the final sum.
					default:
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.Close()

		var multiset []float64
		for w := 0; w < workers; w++ {
			multiset = append(multiset, acceptedAdds[w]...)
			for _, v := range acceptedSubs[w] {
				// Exact deletion of finite v is exact accumulation of -v.
				multiset = append(multiset, -v)
			}
		}
		want := oracle.Sum(multiset)
		got := s.Sum()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("queue=%d maxBatch=%d flushers=%d shards=%d: sum %g (%016x) != oracle %g (%016x) over %d accepted values",
				opt.QueueLen, opt.MaxBatch, opt.Flushers, shards,
				got, math.Float64bits(got), want, math.Float64bits(want), len(multiset))
		}
		m := b.Metrics()
		if m.FlushedRequests != m.Enqueued || m.QueueDepth != 0 {
			t.Fatalf("post-Close metrics not drained: %+v", m)
		}
	})
}
