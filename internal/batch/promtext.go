package batch

// Prometheus text-format exposition (version 0.0.4) and a conformance
// linter for it. The writer side is what GET /metrics serves; the linter
// side is what the CI metrics-lint step runs against two consecutive
// scrapes: structural conformance (HELP/TYPE before samples, no
// duplicate series, histogram bucket coherence) plus cross-scrape
// counter monotonicity. Implementing the linter next to the writer keeps
// the exposition honest without importing a metrics dependency.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter accumulates a text-format exposition. Not safe for
// concurrent use; build one per scrape.
type PromWriter struct {
	b strings.Builder
}

func (p *PromWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one unlabelled counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	fmt.Fprintf(&p.b, "%s %s\n", name, formatValue(v))
}

// CounterVec emits one counter family with one label; pairs alternate
// labelValue, value order as given.
func (p *PromWriter) CounterVec(name, help, label string, values map[string]float64) {
	p.header(name, help, "counter")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=%q} %s\n", name, label, k, formatValue(values[k]))
	}
}

// Gauge emits one unlabelled gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(&p.b, "%s %s\n", name, formatValue(v))
}

// Histogram emits one histogram family from per-bucket counts (counts
// has len(bounds)+1 entries, the last being the +Inf bucket) and the
// observed-value sum. Bucket samples are cumulative, per the format.
func (p *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64) {
	p.header(name, help, "histogram")
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(&p.b, "%s_bucket{le=%q} %d\n", name, formatValue(bound), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(&p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(&p.b, "%s_sum %s\n", name, formatValue(sum))
	fmt.Fprintf(&p.b, "%s_count %d\n", name, cum)
}

// Bytes returns the exposition built so far.
func (p *PromWriter) Bytes() []byte { return []byte(p.b.String()) }

// PromSample is one series: a metric name, its raw label block (the text
// between the braces, "" when unlabelled), and the sample value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
}

// PromFamily is one metric family as scraped: metadata plus its samples
// in exposition order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// series returns the value of the sample with the given suffixed name
// and label block.
func (f *PromFamily) series(name, labels string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseProm parses a text-format exposition, enforcing structural
// conformance as it goes: sample lines must parse, every sample must
// belong to a family whose HELP and TYPE were declared first, TYPE must
// be valid, and no series (name + label block) may appear twice. It
// returns the families keyed by name.
func ParseProm(data []byte) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	seen := make(map[string]bool) // name + "\x00" + labels
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" { // plain comment
				continue
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name}
				fams[name] = f
			}
			switch kind {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
				}
				f.Help = rest
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: invalid TYPE %q for %s", lineNo, rest, name)
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = rest
			}
			continue
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(fams, name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE", lineNo, name)
		}
		if fam.Help == "" || fam.Type == "" {
			return nil, fmt.Errorf("line %d: family %s is missing %s", lineNo, fam.Name,
				map[bool]string{true: "HELP", false: "TYPE"}[fam.Help == ""])
		}
		key := name + "\x00" + labels
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, labels)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, PromSample{Name: name, Labels: labels, Value: val})
	}
	return fams, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", nil // free-form comment, ignored
	}
	if len(fields) < 4 {
		return "", "", "", fmt.Errorf("malformed %s line %q", fields[1], line)
	}
	if !validName(fields[2]) {
		return "", "", "", fmt.Errorf("invalid metric name %q in %s line", fields[2], fields[1])
	}
	return fields[1], fields[2], fields[3], nil
}

func parseSample(line string) (name, labels string, val float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = rest[:i], rest[i+1:j], strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample line %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value in %q: %v", line, perr)
	}
	return name, labels, v, nil
}

// familyFor resolves the family a sample belongs to: its own name, or —
// for histogram/summary children — the name with the _bucket/_sum/_count
// suffix stripped.
func familyFor(fams map[string]*PromFamily, name string) *PromFamily {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary" || f.Type == "") {
				return f
			}
		}
	}
	return nil
}

// LintProm parses data and applies the semantic checks a single scrape
// can carry: counters are finite and non-negative, histograms have
// monotone cumulative buckets ending in a +Inf bucket that equals
// _count. It returns the parsed families for cross-scrape checks.
func LintProm(data []byte) (map[string]*PromFamily, error) {
	fams, err := ParseProm(data)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || s.Value < 0 {
					return nil, fmt.Errorf("counter %s{%s} has invalid value %v", s.Name, s.Labels, s.Value)
				}
			}
		case "histogram":
			if err := lintHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func lintHistogram(f *PromFamily) error {
	prev := math.Inf(-1)
	var cum float64
	sawInf := false
	first := true
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		leStr, ok := labelValue(s.Labels, "le")
		if !ok {
			return fmt.Errorf("histogram %s bucket without le label: {%s}", f.Name, s.Labels)
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return fmt.Errorf("histogram %s has bad le %q", f.Name, leStr)
		}
		if !first && le <= prev {
			return fmt.Errorf("histogram %s buckets out of order (le=%v after %v)", f.Name, le, prev)
		}
		if s.Value < cum {
			return fmt.Errorf("histogram %s bucket le=%q not cumulative (%v < %v)", f.Name, leStr, s.Value, cum)
		}
		prev, cum, first = le, s.Value, false
		if math.IsInf(le, +1) {
			sawInf = true
		}
	}
	if first {
		return fmt.Errorf("histogram %s has no buckets", f.Name)
	}
	if !sawInf {
		return fmt.Errorf("histogram %s is missing the +Inf bucket", f.Name)
	}
	count, ok := f.series(f.Name+"_count", "")
	if !ok {
		return fmt.Errorf("histogram %s is missing _count", f.Name)
	}
	if _, ok := f.series(f.Name+"_sum", ""); !ok {
		return fmt.Errorf("histogram %s is missing _sum", f.Name)
	}
	if count != cum {
		return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", f.Name, count, cum)
	}
	return nil
}

// labelValue extracts one label's (unescaped) value from a raw label
// block like `le="0.001",code="200"`.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(k) != key {
			continue
		}
		unq, err := strconv.Unquote(strings.TrimSpace(v))
		if err != nil {
			return "", false
		}
		return unq, true
	}
	return "", false
}

// CheckMonotone verifies that no counter went backwards between two
// scrapes: every counter series (including histogram buckets, _sum and
// _count) present in prev must exist in cur with a value >= its previous
// one.
func CheckMonotone(prev, cur map[string]*PromFamily) error {
	for name, pf := range prev {
		if pf.Type != "counter" && pf.Type != "histogram" {
			continue
		}
		cf := cur[name]
		if cf == nil {
			return fmt.Errorf("counter family %s disappeared between scrapes", name)
		}
		for _, ps := range pf.Samples {
			cv, ok := cf.series(ps.Name, ps.Labels)
			if !ok {
				return fmt.Errorf("series %s{%s} disappeared between scrapes", ps.Name, ps.Labels)
			}
			if cv < ps.Value {
				return fmt.Errorf("series %s{%s} went backwards: %v -> %v", ps.Name, ps.Labels, ps.Value, cv)
			}
		}
	}
	return nil
}
